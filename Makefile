# oblivhm — reproduction of "Oblivious Algorithms for Multicores and
# Network of Processors" (IPDPS 2010).  Stdlib-only; Go >= 1.22.

GO ?= go

.PHONY: all test bench tables examples vet cover race fuzz soak clean

all: vet test

test:
	$(GO) test ./...

vet:
	gofmt -l . && $(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the paper's Table I / Table II / ablation measurements
# (EXPERIMENTS.md records a captured run).
tables:
	$(GO) run ./cmd/tables

tables-quick:
	$(GO) run ./cmd/tables -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/apsp
	$(GO) run ./examples/signal
	$(GO) run ./examples/netgraph
	$(GO) run ./examples/solver

cover:
	$(GO) test -cover ./internal/...

# Race-check the engine and the golden-metrics layer (the packages with
# real concurrency: strand goroutines and the native executor).
race:
	$(GO) test -race ./internal/core/... ./internal/harness/...

# Chaos soak: randomized algo × machine × n sweep under seeded fault
# injection with runtime invariants and the race detector, plus interleaved
# chaos-off determinism probes.  SOAKTIME=10m for longer runs.
SOAKTIME ?= 60s
soak:
	$(GO) run -race ./cmd/soak -duration=$(SOAKTIME)

# Short native fuzz runs of the SPMS sorter and the prefix scan against
# their sequential specifications.  FUZZTIME=1m fuzz for longer runs.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -fuzz=FuzzSPMSSort -fuzztime=$(FUZZTIME) ./internal/spms
	$(GO) test -fuzz=FuzzScan -fuzztime=$(FUZZTIME) ./internal/scan

clean:
	rm -f test_output.txt bench_output.txt
