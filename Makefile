# oblivhm — reproduction of "Oblivious Algorithms for Multicores and
# Network of Processors" (IPDPS 2010).  Stdlib-only; Go >= 1.22.

GO ?= go

.PHONY: all test bench tables examples vet cover clean

all: vet test

test:
	$(GO) test ./...

vet:
	gofmt -l . && $(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the paper's Table I / Table II / ablation measurements
# (EXPERIMENTS.md records a captured run).
tables:
	$(GO) run ./cmd/tables

tables-quick:
	$(GO) run ./cmd/tables -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/apsp
	$(GO) run ./examples/signal
	$(GO) run ./examples/netgraph
	$(GO) run ./examples/solver

cover:
	$(GO) test -cover ./internal/...

clean:
	rm -f test_output.txt bench_output.txt
