# oblivhm — reproduction of "Oblivious Algorithms for Multicores and
# Network of Processors" (IPDPS 2010).  Stdlib-only; Go >= 1.22.

GO ?= go

.PHONY: all test bench bench-smoke tables examples vet oblivcheck trace-check lint cover race race-parallel failure-sweep fuzz soak profile profile-rounds sweep sweep-smoke clean

all: vet test

test:
	$(GO) test ./...

# gofmt -l exits 0 even when it lists files, so check its output explicitly
# instead of relying on the && short-circuit.
vet:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi
	$(GO) vet ./...

# Build the repo's vettool and run the oblivcheck suite (obliviousness,
# determinism, hint hygiene, data-obliviousness, speculation safety) over
# every package.  See DESIGN.md §9.
oblivcheck:
	$(GO) build -o bin/oblivcheck ./cmd/oblivcheck
	$(GO) vet -vettool=$(CURDIR)/bin/oblivcheck ./...

# Trace-equality gate, the dynamic half of the data-obliviousness
# enforcement (DESIGN.md §9): every kernel in an //oblivcheck:dataoblivious
# package must produce an identical memory-access trace on two different
# random inputs of the same shape, the value-dependent kernels (sort,
# listrank) must not, and an injected secret-dependent branch must be
# caught.  Run under the race detector.
trace-check:
	$(GO) test -race -run 'TestTrace' -count=1 ./internal/harness ./internal/hm

# One-shot static-check entry point: formatting + go vet + oblivcheck, plus
# staticcheck when it is installed (CI pins and installs it; local trees
# without the binary still get the full in-repo suite).
lint: vet oblivcheck
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "lint: staticcheck not installed, skipping (CI runs it)"; fi

bench:
	$(GO) test -bench=. -benchmem ./...

# One-iteration pass over the E-series benches, serial then under each
# parallel backend and their composition: a cheap crash/divergence gate
# (OBLIVHM_PARALLEL / OBLIVHM_PARALLEL_ROUNDS make benchMO verify the
# parallel metrics against an untimed serial reference), not a timing run.
bench-smoke:
	$(GO) test -run '^$$' -bench 'E[0-9]' -benchtime 1x .
	OBLIVHM_PARALLEL=4 $(GO) test -run '^$$' -bench 'E[0-9]' -benchtime 1x .
	OBLIVHM_PARALLEL_ROUNDS=4 $(GO) test -run '^$$' -bench 'E[0-9]' -benchtime 1x .
	OBLIVHM_PARALLEL_ROUNDS=4 OBLIVHM_PARALLEL=4 $(GO) test -run '^$$' -bench 'E[0-9]' -benchtime 1x .
	$(GO) test -run '^$$' -bench 'RoundLoop' -benchtime 1x .

# Regenerate the paper's Table I / Table II / ablation measurements
# (EXPERIMENTS.md records a captured run).
tables:
	$(GO) run ./cmd/tables

tables-quick:
	$(GO) run ./cmd/tables -quick

# Run a declared experiment grid through the sweep engine and evaluate its
# hypotheses (exit 1 on any failing verdict).  Override SPEC for other
# grids, e.g. SPEC=specs/chaos_stability.json.
SPEC ?= specs/sb_vs_flat.json
sweep:
	$(GO) run ./cmd/sweep -spec $(SPEC) -hypothesis

# CI gate: a tiny spec end to end with -hypothesis, then the same grid at
# workers=1 vs workers=4 — the JSONL streams must be byte-identical (the
# determinism contract extended to the sweep layer).
sweep-smoke:
	@mkdir -p bin
	$(GO) run ./cmd/sweep -spec specs/smoke.json -hypothesis -quiet -workers 4 -out bin/smoke_w4.jsonl
	$(GO) run ./cmd/sweep -spec specs/smoke.json -hypothesis -quiet -workers 1 -out bin/smoke_w1.jsonl
	cmp bin/smoke_w1.jsonl bin/smoke_w4.jsonl

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/apsp
	$(GO) run ./examples/signal
	$(GO) run ./examples/netgraph
	$(GO) run ./examples/solver

cover:
	$(GO) test -cover ./internal/...

# Race-check the engine, the golden-metrics layer and the sweep runner
# (the packages with real concurrency: strand goroutines, the native
# executor, and the sweep worker pool incl. the rebased cmd/tables).
race:
	$(GO) test -race ./internal/core/... ./internal/harness/... ./internal/sweep ./cmd/tables

# Race-check both parallel backends end to end: stream-level machine
# equivalence, engine-level schedule equivalence (replay pipeline AND the
# phase-split parallel-rounds engine, DESIGN.md §8/§11), and the harness
# golden matrix + chaos sweep, all with real worker threads underneath.
race-parallel:
	$(GO) test -race -run 'Parallel' ./internal/hm ./internal/core ./internal/harness

# Failure-injection gate: the seeded kill/straggler/cache-fault suite and
# the 16-seed failure sweep over the golden matrix under the race detector,
# then the checked-in survivability spec end to end through the hypothesis
# harness (exit 1 unless SB provably survives one core loss within 2x).
failure-sweep:
	$(GO) test -race -run 'Failure|Watchdog|Recovery|Fault|Survivab' ./internal/core ./internal/harness ./internal/hm ./internal/sweep
	$(GO) run ./cmd/sweep -spec specs/survivability.json -hypothesis -quiet

# Chaos soak: randomized algo × machine × n sweep under seeded fault
# injection with runtime invariants and the race detector, plus interleaved
# chaos-off determinism probes and failure-plan outcome probes (disable the
# latter with `go run ./cmd/soak -failures=false`).  SOAKTIME=10m for
# longer runs.
SOAKTIME ?= 60s
soak:
	$(GO) run -race ./cmd/soak -duration=$(SOAKTIME) -failures

# Short native fuzz runs: the SPMS sorter and the prefix scan against
# their sequential specifications, and the sweep-spec parser against its
# typed-error contract.  FUZZTIME=1m fuzz for longer runs.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -fuzz=FuzzSPMSSort -fuzztime=$(FUZZTIME) ./internal/spms
	$(GO) test -fuzz=FuzzScan -fuzztime=$(FUZZTIME) ./internal/scan
	$(GO) test -fuzz=FuzzSweepSpec -fuzztime=$(FUZZTIME) ./internal/sweep

# Flame-graph starting point for perf work: profile a representative
# simulated run.  Override PROFILE_ARGS for other workloads, e.g.
# PROFILE_ARGS="-algo mm -machine mc3 -n 16384 -parallel 4 -repeat 5".
PROFILE_ARGS ?= -algo sort -machine hm4 -n 8192 -repeat 10
profile:
	$(GO) run ./cmd/hmsim $(PROFILE_ARGS) -cpuprofile cpu.out -memprofile mem.out
	@echo "inspect with: $(GO) tool pprof -top cpu.out   (or -http=:8080)"

# Re-measure the scheduler residue (DESIGN.md §11, BENCH_PR*.json): serial
# cpuprofiles of the five workloads the bench records track, then the
# cumulative share of core.(*engine).loop from each — the fraction of the
# run that stays serial under the composed parallel backends.
profile-rounds:
	@mkdir -p bin
	$(GO) build -o bin/hmsim ./cmd/hmsim
	bin/hmsim -algo scan -machine hm4 -n 16384 -repeat 20 -cpuprofile bin/rounds_scan.out
	bin/hmsim -algo mm   -machine mc3 -n 4096  -repeat 20 -cpuprofile bin/rounds_mm.out
	bin/hmsim -algo fft  -machine hm4 -n 4096  -repeat 20 -cpuprofile bin/rounds_fft.out
	bin/hmsim -algo sort -machine hm4 -n 8192  -repeat 20 -cpuprofile bin/rounds_sort.out
	bin/hmsim -algo lr   -machine mc3 -n 1024  -repeat 20 -cpuprofile bin/rounds_lr.out
	@for f in scan mm fft sort lr; do \
		echo "== $$f: cum%% of core.(*engine).loop =="; \
		$(GO) tool pprof -top -nodefraction=0 bin/hmsim bin/rounds_$$f.out 2>/dev/null \
			| grep -E '\(\*engine\)\.loop$$' || echo "  (not sampled)"; \
	done

clean:
	rm -f test_output.txt bench_output.txt cpu.out mem.out
	rm -rf bin
