package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"oblivhm/internal/core"
	"oblivhm/internal/hm"
)

func maxErr(s *core.Session, got core.C128, want []complex128) float64 {
	worst := 0.0
	for i := range want {
		if e := cmplx.Abs(s.PeekC(got, i) - want[i]); e > worst {
			worst = e
		}
	}
	return worst
}

func randInput(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	in := make([]complex128, n)
	for i := range in {
		in[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	return in
}

func TestMOFFTMatchesNaiveDFT(t *testing.T) {
	for _, mode := range []string{"sim", "native"} {
		t.Run(mode, func(t *testing.T) {
			for _, n := range []int{2, 4, 8, 16, 32, 64, 256, 1024} {
				var s *core.Session
				if mode == "sim" {
					s = core.NewSim(hm.MustMachine(hm.HM4(4, 4)))
				} else {
					s = core.NewNative(4)
				}
				in := randInput(n, int64(n))
				x := s.NewC128(n)
				for i, v := range in {
					s.PokeC(x, i, v)
				}
				s.Run(SpaceBound(n), func(c *core.Ctx) { MOFFT(c, x) })
				want := NaiveDFT(in)
				if e := maxErr(s, x, want); e > 1e-6*float64(n) {
					t.Fatalf("n=%d: max error %g", n, e)
				}
			}
		})
	}
}

func TestIterativeMatchesNaiveDFT(t *testing.T) {
	s := core.NewNative(1)
	for _, n := range []int{2, 8, 64, 512} {
		in := randInput(n, 99)
		x := s.NewC128(n)
		for i, v := range in {
			s.PokeC(x, i, v)
		}
		s.Run(SpaceBound(n), func(c *core.Ctx) { Iterative(c, x) })
		if e := maxErr(s, x, NaiveDFT(in)); e > 1e-6*float64(n) {
			t.Fatalf("iterative n=%d: max error %g", n, e)
		}
	}
}

func TestFFTOfImpulseIsFlat(t *testing.T) {
	s := core.NewNative(2)
	n := 128
	x := s.NewC128(n)
	s.PokeC(x, 0, 1)
	s.Run(SpaceBound(n), func(c *core.Ctx) { MOFFT(c, x) })
	for i := 0; i < n; i++ {
		if cmplx.Abs(s.PeekC(x, i)-1) > 1e-9 {
			t.Fatalf("impulse FFT not flat at %d: %v", i, s.PeekC(x, i))
		}
	}
}

func TestFFTOfConstantIsImpulse(t *testing.T) {
	s := core.NewNative(2)
	n := 64
	x := s.NewC128(n)
	for i := 0; i < n; i++ {
		s.PokeC(x, i, 1)
	}
	s.Run(SpaceBound(n), func(c *core.Ctx) { MOFFT(c, x) })
	if cmplx.Abs(s.PeekC(x, 0)-complex(float64(n), 0)) > 1e-9 {
		t.Fatalf("DC bin = %v, want %d", s.PeekC(x, 0), n)
	}
	for i := 1; i < n; i++ {
		if cmplx.Abs(s.PeekC(x, i)) > 1e-9 {
			t.Fatalf("bin %d = %v, want 0", i, s.PeekC(x, i))
		}
	}
}

// TestParsevalProperty: energy is preserved up to the 1/n normalisation,
// for random inputs (a numerical invariant of any correct DFT).
func TestParsevalProperty(t *testing.T) {
	s := core.NewNative(2)
	for seed := int64(0); seed < 5; seed++ {
		n := 256
		in := randInput(n, seed)
		var eIn float64
		for _, v := range in {
			eIn += real(v)*real(v) + imag(v)*imag(v)
		}
		x := s.NewC128(n)
		for i, v := range in {
			s.PokeC(x, i, v)
		}
		s.Run(SpaceBound(n), func(c *core.Ctx) { MOFFT(c, x) })
		var eOut float64
		for i := 0; i < n; i++ {
			v := s.PeekC(x, i)
			eOut += real(v)*real(v) + imag(v)*imag(v)
		}
		if math.Abs(eOut/float64(n)-eIn) > 1e-6*eIn {
			t.Fatalf("Parseval violated: in %g out/n %g", eIn, eOut/float64(n))
		}
	}
}

// TestTheorem2MissBound: MO-FFT incurs O((n/(q_i·B_i))·log_{C_i} n) misses
// per level-i cache.
func TestTheorem2MissBound(t *testing.T) {
	cfg := hm.MC3(4)
	m := hm.MustMachine(cfg)
	s := core.NewSim(m)
	n := 1 << 12
	x := s.NewC128(n)
	for i, v := range randInput(n, 5) {
		s.PokeC(x, i, v)
	}
	st := s.RunCold(SpaceBound(n), func(c *core.Ctx) { MOFFT(c, x) })
	words := int64(2 * n)
	for _, l := range st.Sim.Levels {
		b := cfg.Levels[l.Level-1].Block
		ci := cfg.Levels[l.Level-1].Capacity
		q := int64(cfg.CachesAt(l.Level))
		logCn := math.Log(float64(words)) / math.Log(float64(ci))
		if logCn < 1 {
			logCn = 1
		}
		bound := int64(40 * float64(words) / float64(q*b) * logCn)
		if l.MaxMisses > bound {
			t.Errorf("L%d max misses = %d > bound %d", l.Level, l.MaxMisses, bound)
		}
	}
}

// TestTheorem2Speedup: parallel steps scale with p for n >> p·B1.
func TestTheorem2Speedup(t *testing.T) {
	run := func(p int) int64 {
		s := core.NewSim(hm.MustMachine(hm.MC3(p)))
		n := 1 << 10
		x := s.NewC128(n)
		for i, v := range randInput(n, 7) {
			s.PokeC(x, i, v)
		}
		return s.RunCold(SpaceBound(n), func(c *core.Ctx) { MOFFT(c, x) }).Steps
	}
	if p8, p1 := run(8), run(1); p8*3 > p1 {
		t.Errorf("8-core FFT %d steps vs 1-core %d: speedup < 3", p8, p1)
	}
}

func TestInverseRoundTrip(t *testing.T) {
	s := core.NewNative(2)
	n := 256
	in := randInput(n, 31)
	x := s.NewC128(n)
	for i, v := range in {
		s.PokeC(x, i, v)
	}
	s.Run(2*SpaceBound(n), func(c *core.Ctx) {
		MOFFT(c, x)
		Inverse(c, x)
	})
	for i, v := range in {
		if cmplx.Abs(s.PeekC(x, i)-v) > 1e-9 {
			t.Fatalf("round trip lost x[%d]: %v vs %v", i, s.PeekC(x, i), v)
		}
	}
}

func TestConvolve(t *testing.T) {
	s := core.NewNative(2)
	n := 16
	a := s.NewC128(n)
	b := s.NewC128(n)
	av := []float64{1, 2, 3}
	bv := []float64{4, 5}
	for i, v := range av {
		s.PokeC(a, i, complex(v, 0))
	}
	for i, v := range bv {
		s.PokeC(b, i, complex(v, 0))
	}
	s.Run(4*SpaceBound(n), func(c *core.Ctx) { Convolve(c, a, b) })
	want := []float64{4, 13, 22, 15, 0, 0}
	for i, w := range want {
		if cmplx.Abs(s.PeekC(a, i)-complex(w, 0)) > 1e-9 {
			t.Fatalf("conv[%d] = %v, want %v", i, s.PeekC(a, i), w)
		}
	}
}
