// Package fft implements MO-FFT, the multicore-oblivious in-place FFT of
// paper Figure 3: the cache-oblivious six-step decomposition n = n1·n2
// (n2 <= n1 <= 2·n2), with the copy/transpose/twiddle steps scheduled under
// CGC (using MO-MT for the transposes) and the two waves of recursive
// sub-FFTs scheduled under CGC⇒SB.
//
// The DFT convention follows the paper: Y[i] = Σ_j X[j]·ω_n^{-ij} with
// ω_n = e^{2π√-1/n} (forward transform with negative exponent kernel).
package fft

// The FFT kernels are data-oblivious: the six-step decomposition and the
// twiddle/butterfly schedules depend on n only.  Enforced statically by
// the dataoblivious analyzer, dynamically by `make trace-check`.
//
//oblivcheck:dataoblivious

import (
	"math"
	"math/cmplx"

	"oblivhm/internal/bitint"
	"oblivhm/internal/core"
	"oblivhm/internal/transpose"
)

// SpaceBound returns the declared space bound of MO-FFT on n complex
// points, in words.  The paper states S(n) = 3n complex elements; this
// implementation transposes out-of-place through a Morton intermediate,
// which costs a constant-factor more scratch (3 square buffers of
// n1² <= 2n elements each, 2 words per element).
func SpaceBound(n int) int64 { return 12 * int64(n) }

// MOFFT computes the in-place DFT of x; x.N must be a power of two.
//
//oblivcheck:secret x
func MOFFT(c *core.Ctx, x core.C128) {
	n := x.N
	if !bitint.IsPow2(n) {
		panic("fft: length must be a power of two")
	}
	if n <= 8 {
		baseDFT(c, x)
		return
	}
	k := bitint.Log2(n)
	n1 := 1 << ((k + 1) / 2)
	n2 := 1 << (k / 2)
	A := c.NewC128(n1 * n1)
	B := c.NewC128(n1 * n1)
	scr := c.NewC128(n1 * n1)

	// Step 3 [CGC]: load X into the n1 x n2 top-left of A.
	c.PFor(n, 2, func(cc *core.Ctx, lo, hi int) {
		for t := lo; t < hi; t++ {
			i, j := t/n2, t%n2
			A.Set(cc, i*n1+j, x.At(cc, t))
		}
	})
	// Step 4 [CGC]: B = Aᵀ (rows of B now hold the columns of X's matrix).
	transpose.MOMTComplex(c, A, B, n1, scr)
	// Step 5 [CGC⇒SB]: FFT the n2 rows of length n1.
	c.SpawnCGCSB(SpaceBound(n1), n2, func(cc *core.Ctx, i int) {
		MOFFT(cc, B.Slice(i*n1, (i+1)*n1))
	})
	// Step 6 [CGC]: twiddle B[j][k1] by ω_n^{-j·k1} over the first n entries.
	c.PFor(n, 2, func(cc *core.Ctx, lo, hi int) {
		for t := lo; t < hi; t++ {
			j, k1 := t/n1, t%n1
			cc.Tick(1)
			B.Set(cc, t, B.At(cc, t)*twiddle(n, j*k1))
		}
	})
	// Step 7 [CGC]: A = Bᵀ.
	transpose.MOMTComplex(c, B, A, n1, scr)
	// Step 8 [CGC⇒SB]: FFT the first n2 entries of each of the n1 rows.
	c.SpawnCGCSB(SpaceBound(n2), n1, func(cc *core.Ctx, i int) {
		MOFFT(cc, A.Slice(i*n1, i*n1+n2))
	})
	// Step 9 [CGC]: B = Aᵀ; the first n entries of B are Y in order.
	transpose.MOMTComplex(c, A, B, n1, scr)
	// Step 10 [CGC]: copy back into X.
	c.PFor(n, 2, func(cc *core.Ctx, lo, hi int) {
		for t := lo; t < hi; t++ {
			x.Set(cc, t, B.At(cc, t))
		}
	})
}

// twiddle returns ω_n^{-e} = e^{-2πi·e/n}.
func twiddle(n, e int) complex128 {
	th := -2 * math.Pi * float64(e%n) / float64(n)
	s, c := math.Sincos(th)
	return complex(c, s)
}

// baseDFT is the O(n²) direct formula used at the recursion base.
func baseDFT(c *core.Ctx, x core.C128) {
	n := x.N
	buf := make([]complex128, n)
	for i := 0; i < n; i++ {
		buf[i] = x.At(c, i)
	}
	for i := 0; i < n; i++ {
		var acc complex128
		for j := 0; j < n; j++ {
			c.Tick(1)
			acc += buf[j] * twiddle(n, i*j)
		}
		x.Set(c, i, acc)
	}
}

// Iterative is the serial iterative radix-2 baseline (bit-reversal
// permutation followed by log n butterfly passes).  Each pass streams the
// whole array, so it incurs Θ((n/B)·log(n/B)) misses versus MO-FFT's
// Θ((n/B)·log_C n) — the gap the E5 experiment measures.
//
//oblivcheck:secret x
func Iterative(c *core.Ctx, x core.C128) {
	n := x.N
	if !bitint.IsPow2(n) {
		panic("fft: length must be a power of two")
	}
	lg := bitint.Log2(n)
	// Bit-reversal permutation.
	for i := 0; i < n; i++ {
		r := reverseBits(uint64(i), lg)
		if uint64(i) < r {
			xi, xr := x.At(c, i), x.At(c, int(r))
			x.Set(c, i, xr)
			x.Set(c, int(r), xi)
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		for start := 0; start < n; start += size {
			for j := 0; j < half; j++ {
				c.Tick(1)
				w := twiddle(size, j)
				a := x.At(c, start+j)
				b := x.At(c, start+j+half) * w
				x.Set(c, start+j, a+b)
				x.Set(c, start+j+half, a-b)
			}
		}
	}
}

func reverseBits(x uint64, bits int) uint64 {
	var r uint64
	for b := 0; b < bits; b++ {
		r = r<<1 | (x>>b)&1
	}
	return r
}

// NaiveDFT is the host-side O(n²) oracle used by tests.
func NaiveDFT(in []complex128) []complex128 {
	n := len(in)
	out := make([]complex128, n)
	for i := 0; i < n; i++ {
		var acc complex128
		for j := 0; j < n; j++ {
			acc += in[j] * cmplx.Exp(complex(0, -2*math.Pi*float64(i*j%n)/float64(n)))
		}
		out[i] = acc
	}
	return out
}

// Inverse computes the in-place inverse DFT of x (the transform with
// kernel ω_n^{+ij}, scaled by 1/n), via the conjugation identity
// IDFT(X) = conj(DFT(conj(X)))/n so the forward machinery (and its cache
// behaviour) is reused unchanged.
//
//oblivcheck:secret x
func Inverse(c *core.Ctx, x core.C128) {
	n := x.N
	conj := func() {
		c.PFor(n, 2, func(cc *core.Ctx, lo, hi int) {
			for i := lo; i < hi; i++ {
				v := x.At(cc, i)
				x.Set(cc, i, complex(real(v), -imag(v)))
			}
		})
	}
	conj()
	MOFFT(c, x)
	inv := 1 / float64(n)
	c.PFor(n, 2, func(cc *core.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			v := x.At(cc, i)
			x.Set(cc, i, complex(real(v)*inv, -imag(v)*inv))
		}
	})
}

// Convolve computes the circular convolution of a and b into a (both
// length n, a power of two) with two forward transforms, a pointwise
// product and one inverse transform.
//
//oblivcheck:secret a b
func Convolve(c *core.Ctx, a, b core.C128) {
	MOFFT(c, a)
	MOFFT(c, b)
	c.PFor(a.N, 2, func(cc *core.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			a.Set(cc, i, a.At(cc, i)*b.At(cc, i))
		}
	})
	Inverse(c, a)
}
