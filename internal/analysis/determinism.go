package analysis

import (
	"go/ast"
	"go/types"
)

// Determinism enforces the engine's frozen determinism contract on every
// non-test package under oblivhm/internal/: the golden-metrics snapshots,
// the chaos same-seed reproducibility tests, and the parallel-replay
// equivalence proofs all assume that a run is a pure function of (machine,
// workload, seed). The analyzer rejects the constructs that break that:
//
//   - wall-clock reads (time.Now, Since, Sleep, timers, tickers),
//   - the unseeded global math/rand source (package-level rand.Intn etc.;
//     an explicitly seeded rand.New(rand.NewSource(k)) stream is fine and
//     is the harness convention),
//   - iteration over a map (order is randomized per run by the runtime),
//   - sync.Map (iteration order and interleaving are unspecified),
//   - go statements outside the sanctioned entry points — the native-mode
//     executor and the parsim replay workers, which carry
//     //oblivcheck:allow annotations citing their equivalence proofs.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "engine and algorithm code must stay deterministic: no wall clock, unseeded rand, map order, sync.Map, or unsanctioned goroutines",
	Run:  runDeterminism,
}

// wallClockFuncs are the package-level time functions that read or depend
// on the wall clock or a runtime timer.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// seededRandFuncs are the math/rand package-level functions that construct
// explicit generators rather than drawing from the global source.
var seededRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 constructors.
	"NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(pass *Pass) {
	if !enginePackage(pass.Path) {
		return
	}
	eachSourceFile(pass, func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDeterministicCall(pass, n)
			case *ast.GoStmt:
				pass.Reportf(n.Pos(),
					"go statement outside the sanctioned native/parsim entry points: engine scheduling must not depend on runtime goroutine interleaving")
			case *ast.RangeStmt:
				if tv, ok := pass.TypesInfo.Types[n.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						pass.Reportf(n.Pos(),
							"iteration over a map: order is randomized per run; iterate a sorted key slice or annotate an order-independent loop")
					}
				}
			case *ast.SelectorExpr:
				if tv, ok := pass.TypesInfo.Types[n]; ok && tv.IsType() && namedFrom(tv.Type, "sync", "Map") {
					pass.Reportf(n.Pos(),
						"sync.Map use: iteration order and interleaving are unspecified; use a plain map behind the engine's round structure")
				}
			}
			return true
		})
	})
}

func checkDeterministicCall(pass *Pass, call *ast.CallExpr) {
	fn := funcObj(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	// Package-level functions only: methods on explicit *rand.Rand /
	// *time.Timer values are reached through a flagged constructor anyway.
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClockFuncs[fn.Name()] {
			pass.Reportf(call.Pos(),
				"time.%s reads the wall clock: runs must be pure functions of (machine, workload, seed)", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !seededRandFuncs[fn.Name()] {
			pass.Reportf(call.Pos(),
				"%s.%s draws from the global unseeded source: thread an explicit rand.New(rand.NewSource(seed)) stream instead (see internal/core/chaos.go for the engine-side convention)", fn.Pkg().Name(), fn.Name())
		}
	}
}
