package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// DataOblivious enforces the Ramachandran–Shi data-obliviousness contract
// (arXiv 2008.00332) on packages that opt in with a package-level
//
//	//oblivcheck:dataoblivious
//
// annotation: the memory access trace of an annotated kernel may depend on
// the *shape* of its input, never on the *values*.  Secret inputs are
// declared per function with a doc-comment directive naming parameters:
//
//	//oblivcheck:secret v
//	func PrefixSumsI64(c *core.Ctx, v core.I64) { ... }
//
// A taint walk from the tagged parameters — values loaded from a secret
// array or slice are themselves secret, values stored into an array make
// that array secret — then flags every secret-dependent
//
//   - branch (`if`/`for`/`switch` condition),
//   - index or slice bound (both Go indexing and the core array At/Set/Slice
//     accessors, plus any core.Addr-typed argument),
//   - space hint (a Task literal's Space field, a PFor trip count),
//
// because each one turns an input value into an observable address stream
// difference.  The runtime twin is the trace-equality harness
// (internal/harness, `make trace-check`): two runs on different data of the
// same shape must produce identical access traces for annotated packages.
// Register-only value branches that provably touch no memory (a min/max
// select, say) are trace-invariant yet still flagged here; suppress those
// with `//oblivcheck:allow dataoblivious: <why the trace cannot differ>`.
var DataOblivious = &Analyzer{
	Name: "dataoblivious",
	Doc:  "annotated packages make no secret-dependent branches, indices, or space hints",
	Run:  runDataOblivious,
}

// dataObliviousDirective is the package-level opt-in comment.
const dataObliviousDirective = "//oblivcheck:dataoblivious"

// secretDirective tags function parameters as secret inputs.  It lives in
// the oblivcheck: directive namespace so gofmt preserves it verbatim — a
// bare //secret would be reflowed to "// secret" and silently go dead.
const secretDirective = "//oblivcheck:secret"

func runDataOblivious(pass *Pass) {
	if !modulePackage(pass.Path) || !hasDataObliviousDirective(pass) {
		return
	}
	eachSourceFile(pass, func(f *ast.File) {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			secrets := secretParams(pass, fd)
			if len(secrets) == 0 {
				continue
			}
			w := &taintWalker{pass: pass, tainted: secrets}
			w.fixpoint(fd.Body)
			w.report(fd.Body)
		}
	})
}

func hasDataObliviousDirective(pass *Pass) bool {
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.TrimSpace(c.Text) == dataObliviousDirective {
					return true
				}
			}
		}
	}
	return false
}

// secretParams resolves a function's //oblivcheck:secret directive to parameter
// objects.  Names may be space- or comma-separated; naming something that
// is not a parameter is itself a finding, so a typo cannot silently
// un-secret an input.
func secretParams(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	if fd.Doc == nil {
		return nil
	}
	var names []string
	for _, c := range fd.Doc.List {
		if !strings.HasPrefix(c.Text, secretDirective) {
			continue
		}
		rest := c.Text[len(secretDirective):]
		if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
			continue // e.g. "//oblivcheck:secretive", not the directive
		}
		for _, tok := range strings.FieldsFunc(rest, func(r rune) bool { return r == ' ' || r == '\t' || r == ',' }) {
			names = append(names, tok)
		}
		if len(strings.TrimSpace(rest)) == 0 {
			pass.Reportf(fd.Pos(), "empty //oblivcheck:secret directive on %s: name the secret parameters, e.g. //oblivcheck:secret v", fd.Name.Name)
		}
	}
	if len(names) == 0 {
		return nil
	}
	params := make(map[string]types.Object)
	for _, field := range fd.Type.Params.List {
		for _, id := range field.Names {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				params[id.Name] = obj
			}
		}
	}
	out := make(map[types.Object]bool)
	for _, name := range names {
		obj, ok := params[name]
		if !ok {
			pass.Reportf(fd.Pos(), "//oblivcheck:secret names %q, which is not a parameter of %s", name, fd.Name.Name)
			continue
		}
		out[obj] = true
	}
	return out
}

// ---- taint propagation ----

// taintWalker tracks the set of secret-tainted objects inside one function
// body.  Container-typed objects (core array handles, Go slices, arrays,
// maps, pointers) carry taint in their *elements*: the handle's shape
// (length, base address) stays public, loads from it are secret.
// Scalar-typed objects carry taint in their value.
type taintWalker struct {
	pass    *Pass
	tainted map[types.Object]bool
	changed bool
}

// coreArrayNames are the handle types of internal/core's simulated arrays;
// their At/Set/Slice accessors are the load/store/reslice operations of the
// model.
var coreArrayNames = []string{"F64", "I64", "U64", "C128", "Pairs", "Mat"}

// isCoreArray reports whether t is one of the core array handle types.
func isCoreArray(t types.Type) bool {
	for _, name := range coreArrayNames {
		if namedFrom(t, "internal/core", name) {
			return true
		}
	}
	return false
}

// isContainer reports whether taint on an object of type t lives in its
// elements rather than its value.
func isContainer(t types.Type) bool {
	if isCoreArray(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Array, *types.Map:
		return true
	case *types.Pointer:
		_ = u
		return true
	}
	return false
}

// fixpoint iterates taint propagation over the body until no new object is
// tainted.  The body is small (one kernel), so the quadratic worst case is
// irrelevant.
func (w *taintWalker) fixpoint(body *ast.BlockStmt) {
	for {
		w.changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				w.propagateAssign(n)
			case *ast.RangeStmt:
				w.propagateRange(n)
			case *ast.GenDecl:
				w.propagateVarDecl(n)
			case *ast.CallExpr:
				w.propagateStore(n)
			}
			return true
		})
		if !w.changed {
			return
		}
	}
}

func (w *taintWalker) taint(obj types.Object) {
	if obj == nil || w.tainted[obj] {
		return
	}
	w.tainted[obj] = true
	w.changed = true
}

func (w *taintWalker) lhsObj(e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := w.pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return w.pass.TypesInfo.Uses[id]
}

// propagateAssign handles `x = e`, `x := e`, `x[i] = e` and multi-assign.
func (w *taintWalker) propagateAssign(s *ast.AssignStmt) {
	// Single call with multiple results: taint every LHS if any arg is.
	if len(s.Rhs) == 1 && len(s.Lhs) != 1 {
		if w.exprTainted(s.Rhs[0]) {
			for _, l := range s.Lhs {
				w.taint(w.lhsObj(l))
			}
		}
		return
	}
	for i, l := range s.Lhs {
		if i >= len(s.Rhs) {
			break
		}
		if !w.exprTainted(s.Rhs[i]) {
			continue
		}
		switch lhs := ast.Unparen(l).(type) {
		case *ast.Ident:
			w.taint(w.lhsObj(lhs))
		case *ast.IndexExpr:
			// Storing a secret into a container makes the container secret.
			w.taint(w.lhsObj(lhs.X))
		case *ast.StarExpr:
			w.taint(w.lhsObj(lhs.X))
		case *ast.SelectorExpr:
			w.taint(w.lhsObj(lhs.X))
		}
	}
}

// propagateStore taints the receiver of v.Set(c, i..., x) when the stored
// value x is secret: the call-form store is the core-array analogue of
// `v[i] = x`.
func (w *taintWalker) propagateStore(call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Set" || len(call.Args) == 0 {
		return
	}
	if t := w.typeOf(sel.X); t == nil || !isCoreArray(t) {
		return
	}
	if w.exprTainted(call.Args[len(call.Args)-1]) {
		w.taint(w.lhsObj(sel.X))
	}
}

// propagateRange taints the value variable when ranging over a secret
// container; the index is shape (0..n-1), not secret.
func (w *taintWalker) propagateRange(s *ast.RangeStmt) {
	if !w.containerTainted(s.X) {
		return
	}
	if s.Value != nil {
		w.taint(w.lhsObj(s.Value))
	}
}

// propagateVarDecl handles `var x = e`.
func (w *taintWalker) propagateVarDecl(d *ast.GenDecl) {
	for _, spec := range d.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, name := range vs.Names {
			if i < len(vs.Values) && w.exprTainted(vs.Values[i]) {
				w.taint(w.pass.TypesInfo.Defs[name])
			}
		}
	}
}

// exprTainted reports whether evaluating e yields a secret value (or a
// secret container — for assignment purposes the two propagate alike).
func (w *taintWalker) exprTainted(e ast.Expr) bool {
	return w.valueTainted(e) || w.containerTainted(e)
}

// valueTainted reports whether e evaluates to a secret *value*.
func (w *taintWalker) valueTainted(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := w.pass.TypesInfo.Uses[e]
		if obj == nil {
			obj = w.pass.TypesInfo.Defs[e]
		}
		return obj != nil && w.tainted[obj] && !isContainer(obj.Type())
	case *ast.IndexExpr:
		// A load from a secret container is secret; so is any index
		// operation on a secret struct/array value.
		return w.containerTainted(e.X) || w.valueTainted(e.X)
	case *ast.SelectorExpr:
		// Fields of a secret struct value are secret; shape fields of a
		// secret container (v.N, v.Base) are not.
		return w.valueTainted(e.X)
	case *ast.StarExpr:
		return w.containerTainted(e.X) || w.valueTainted(e.X)
	case *ast.UnaryExpr:
		return w.valueTainted(e.X)
	case *ast.BinaryExpr:
		return w.valueTainted(e.X) || w.valueTainted(e.Y)
	case *ast.CallExpr:
		return w.callTainted(e)
	case *ast.TypeAssertExpr:
		return w.valueTainted(e.X)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if w.exprTainted(elt) {
				return true
			}
		}
	}
	return false
}

// callTainted decides whether a call returns a secret value.
func (w *taintWalker) callTainted(call *ast.CallExpr) bool {
	// len/cap of a secret container are shape, not secret.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if id.Name == "len" || id.Name == "cap" {
			return false
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if recvType := w.typeOf(sel.X); recvType != nil && isCoreArray(recvType) {
			switch sel.Sel.Name {
			case "At":
				// A load from a secret core array is secret.
				return w.containerTainted(sel.X)
			case "Slice":
				return false // handled by containerTainted
			}
		}
	}
	// Conservatively, any other call fed a secret returns a secret: the
	// helpers kernels actually call (arithmetic, math.*, update specs) are
	// value-to-value.
	for _, arg := range call.Args {
		if w.exprTainted(arg) {
			return true
		}
	}
	return false
}

// containerTainted reports whether e evaluates to a handle over secret
// contents.
func (w *taintWalker) containerTainted(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := w.pass.TypesInfo.Uses[e]
		if obj == nil {
			obj = w.pass.TypesInfo.Defs[e]
		}
		return obj != nil && w.tainted[obj] && isContainer(obj.Type())
	case *ast.SliceExpr:
		return w.containerTainted(e.X)
	case *ast.UnaryExpr:
		return w.containerTainted(e.X)
	case *ast.StarExpr:
		return w.containerTainted(e.X)
	case *ast.CallExpr:
		// v.Slice(lo, hi) of a secret array is a secret sub-array; so are a
		// secret matrix's Sub blocks and Row views.
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "Slice", "Sub", "Row":
				if t := w.typeOf(sel.X); t != nil && isCoreArray(t) {
					return w.containerTainted(sel.X)
				}
			}
		}
	}
	return false
}

func (w *taintWalker) typeOf(e ast.Expr) types.Type {
	if tv, ok := w.pass.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// ---- sinks ----

// report walks the body once after the fixpoint and flags every sink fed a
// secret.
func (w *taintWalker) report(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			if n.Cond != nil && w.valueTainted(n.Cond) {
				w.pass.Reportf(n.Cond.Pos(),
					"secret-dependent branch: the condition derives from an //oblivcheck:secret input, so the access trace depends on data values")
			}
		case *ast.ForStmt:
			if n.Cond != nil && w.valueTainted(n.Cond) {
				w.pass.Reportf(n.Cond.Pos(),
					"secret-dependent loop bound: the condition derives from an //oblivcheck:secret input, so the trip count depends on data values")
			}
		case *ast.SwitchStmt:
			if n.Tag != nil && w.valueTainted(n.Tag) {
				w.pass.Reportf(n.Tag.Pos(),
					"secret-dependent switch: the tag derives from an //oblivcheck:secret input, so the access trace depends on data values")
			}
		case *ast.IndexExpr:
			if w.valueTainted(n.Index) {
				w.pass.Reportf(n.Index.Pos(),
					"secret-derived index: the subscript derives from an //oblivcheck:secret input, so the address stream depends on data values")
			}
		case *ast.SliceExpr:
			for _, b := range []ast.Expr{n.Low, n.High, n.Max} {
				if b != nil && w.valueTainted(b) {
					w.pass.Reportf(b.Pos(),
						"secret-derived slice bound: the bound derives from an //oblivcheck:secret input, so the address stream depends on data values")
				}
			}
		case *ast.CallExpr:
			w.reportCall(n)
		case *ast.CompositeLit:
			w.reportTaskSpace(n)
		}
		return true
	})
}

// reportCall flags secret indices handed to the core accessors and secret
// addresses or trip counts handed to any call.
func (w *taintWalker) reportCall(call *ast.CallExpr) {
	sel, _ := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	coreAccessor := false
	if sel != nil {
		if t := w.typeOf(sel.X); t != nil && isCoreArray(t) {
			switch sel.Sel.Name {
			case "At", "Set", "Slice", "Sub", "Row":
				coreAccessor = true
			}
		}
	}
	for i, arg := range call.Args {
		if coreAccessor && sel.Sel.Name == "Set" && i == len(call.Args)-1 {
			continue // Set's final argument is the stored value, not an index
		}
		t := w.typeOf(arg)
		switch {
		case t != nil && (namedFrom(t, "internal/core", "Addr") || namedFrom(t, "internal/hm", "Addr")) && w.valueTainted(arg):
			w.pass.Reportf(arg.Pos(),
				"secret-derived address: a core.Addr computed from an //oblivcheck:secret input reaches a memory operation")
		case coreAccessor && t != nil && isIntType(t) && w.valueTainted(arg):
			w.pass.Reportf(arg.Pos(),
				"secret-derived index: %s.%s is given a subscript computed from an //oblivcheck:secret input", types.ExprString(sel.X), sel.Sel.Name)
		case sel != nil && sel.Sel.Name == "PFor" && t != nil && isIntType(t) && w.valueTainted(arg):
			w.pass.Reportf(arg.Pos(),
				"secret-dependent PFor trip count: the parallel loop's size derives from an //oblivcheck:secret input")
		}
	}
}

func isIntType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// reportTaskSpace flags a core.Task literal whose Space hint is secret: the
// SB scheduler's placement (hence the whole trace) would depend on data.
func (w *taintWalker) reportTaskSpace(lit *ast.CompositeLit) {
	tv, ok := w.pass.TypesInfo.Types[lit]
	if !ok || !namedFrom(tv.Type, "internal/core", "Task") {
		return
	}
	for i, elt := range lit.Elts {
		var space ast.Expr
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Space" {
				space = kv.Value
			}
		} else if i == 0 {
			space = elt
		}
		if space != nil && w.valueTainted(space) {
			w.pass.Reportf(space.Pos(),
				"secret-dependent Space hint: the SB scheduler would place this task (and shape the trace) based on an //oblivcheck:secret input")
		}
	}
}
