package analysis_test

import (
	"testing"

	"oblivhm/internal/analysis"
	"oblivhm/internal/analysis/atest"
)

func TestSpecSafeAnalyzer(t *testing.T) {
	atest.Run(t, "testdata", analysis.SpecSafe,
		"oblivhm/internal/core/specfix", // serialize domination, spec guards, entry-state meet
	)
}
