package analysis_test

import (
	"testing"

	"oblivhm/internal/analysis"
	"oblivhm/internal/analysis/atest"
)

func TestDeterminismAnalyzer(t *testing.T) {
	atest.Run(t, "testdata", analysis.Determinism,
		"oblivhm/internal/detfix",       // the full positive/negative matrix
		"oblivhm/internal/core/parfix",  // engine scope: unsanctioned go statements still fail
		"oblivhm/internal/core/failfix", // failure hooks: wall-clock detection and watchdog goroutines still fail
		"oblivhm/cmd/drv",               // good: drivers sit outside the engine scope
	)
}
