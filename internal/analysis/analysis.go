// Package analysis is a small, stdlib-only static-analysis framework plus
// the five oblivcheck analyzers that enforce this repository's paper
// invariants at compile time:
//
//   - oblivious: algorithm packages never see machine parameters
//     (no internal/hm import, no Session.Machine(), no World.P / World.B),
//   - determinism: engine/algorithm code draws no wall-clock time, no
//     unseeded randomness, no map-iteration order, no sync.Map, and spawns
//     no goroutines outside the sanctioned native/parsim entry points,
//   - hinthygiene: every forked Task carries a non-constant space bound and
//     every engine-side join is waited on all control paths,
//   - dataoblivious: packages opting in with //oblivcheck:dataoblivious
//     make no secret-dependent branches, indices, slice bounds, addresses,
//     PFor trip counts or Space hints (//oblivcheck:secret tags name the secret
//     parameters; the trace-equality harness is the runtime cross-check),
//   - specsafe: scheduler-state reads reachable from speculative strand
//     context inside internal/core are dominated by c.serialize() or
//     guarded by st.spec (DESIGN.md §11).
//
// The API deliberately mirrors golang.org/x/tools/go/analysis (Analyzer,
// Pass, Diagnostic) so the suite can migrate to the real framework if the
// dependency ever becomes available; the repo itself is dependency-free, so
// the driver in cmd/oblivcheck speaks cmd/go's vettool JSON protocol
// directly using only go/types and go/importer.
//
// # Escape hatch
//
// A finding is suppressed by an explicit annotation naming the analyzer and
// a reason, either on the flagged line or on the line directly above it:
//
//	//oblivcheck:allow determinism: native executor, joined before return
//	go run(x)
//
// Annotations without a reason are themselves reported, so every exemption
// is documented in place.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check. Run inspects a single package and reports
// findings through the pass.
type Analyzer struct {
	Name string // short lowercase identifier, used in annotations
	Doc  string // one-line description
	Run  func(*Pass)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Path is the logical import path: the vet variant suffix
	// ("pkg [pkg.test]") is stripped by the driver.
	Path string

	diags  *[]Diagnostic
	allows map[string]map[int][]*allowAnn // filename -> line -> annotations
}

// allowAnn is one //oblivcheck:allow annotation; used tracks whether it
// actually suppressed a finding, so stale exemptions are reported instead
// of rotting in place.
type allowAnn struct {
	name string // analyzer the annotation names
	pos  token.Pos
	used bool
}

// Reportf records a finding unless an //oblivcheck:allow annotation for
// this analyzer covers the position.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.allowedAt(pos) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// Analyzers is the full oblivcheck suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{Oblivious, Determinism, HintHygiene, DataOblivious, SpecSafe}
}

// Run applies every analyzer in suite to one type-checked package and
// returns the findings sorted by position.
func Run(suite []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, path string) []Diagnostic {
	var diags []Diagnostic
	allows, allAnns := collectAllows(fset, files, &diags)
	for _, a := range suite {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Path:      path,
			diags:     &diags,
			allows:    allows,
		}
		a.Run(pass)
	}
	reportUnusedAllows(suite, allAnns, &diags)
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags
}

// reportUnusedAllows flags annotations that suppressed nothing: the finding
// they once excused is gone, so the exemption (and its reason) is stale.
// Only annotations naming an analyzer in the running suite are judged — a
// single-analyzer run cannot tell whether another analyzer's allow is live.
func reportUnusedAllows(suite []*Analyzer, allAnns []*allowAnn, diags *[]Diagnostic) {
	inSuite := make(map[string]bool, len(suite))
	for _, a := range suite {
		inSuite[a.Name] = true
	}
	for _, ann := range allAnns {
		if inSuite[ann.name] && !ann.used {
			*diags = append(*diags, Diagnostic{
				Pos:      ann.pos,
				Message:  fmt.Sprintf("unused //oblivcheck:allow %s annotation: no %s finding here to suppress; delete it", ann.name, ann.name),
				Analyzer: "oblivcheck",
			})
		}
	}
}

// ---- annotation handling ----

const allowPrefix = "//oblivcheck:allow"

// collectAllows indexes every //oblivcheck:allow annotation by file and
// line, and returns them again as a flat list in collection order for the
// unused-annotation sweep. Malformed annotations (no analyzer name or no
// reason) are reported immediately so they cannot silently suppress
// anything.
func collectAllows(fset *token.FileSet, files []*ast.File, diags *[]Diagnostic) (map[string]map[int][]*allowAnn, []*allowAnn) {
	out := make(map[string]map[int][]*allowAnn)
	var all []*allowAnn
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				rest = strings.TrimSpace(rest)
				name, reason, _ := strings.Cut(rest, ":")
				name = strings.TrimSpace(name)
				if i := strings.IndexByte(name, ' '); i >= 0 {
					// "determinism native executor" form (no colon).
					name, reason = name[:i], name[i+1:]
				}
				if name == "" || strings.TrimSpace(reason) == "" {
					*diags = append(*diags, Diagnostic{
						Pos:      c.Pos(),
						Message:  "malformed oblivcheck annotation: want //oblivcheck:allow <analyzer>: <reason>",
						Analyzer: "oblivcheck",
					})
					continue
				}
				pos := fset.Position(c.Pos())
				m := out[pos.Filename]
				if m == nil {
					m = make(map[int][]*allowAnn)
					out[pos.Filename] = m
				}
				ann := &allowAnn{name: name, pos: c.Pos()}
				m[pos.Line] = append(m[pos.Line], ann)
				all = append(all, ann)
			}
		}
	}
	return out, all
}

// allowedAt reports whether an annotation naming this analyzer sits on the
// diagnostic's line or on the line directly above it.
func (p *Pass) allowedAt(pos token.Pos) bool {
	where := p.Fset.Position(pos)
	m := p.allows[where.Filename]
	if m == nil {
		return false
	}
	for _, line := range [2]int{where.Line, where.Line - 1} {
		for _, ann := range m[line] {
			if ann.name == p.Analyzer.Name {
				ann.used = true
				return true
			}
		}
	}
	return false
}

// ---- shared scope helpers ----

// modulePrefix scopes the analyzers to this module's own packages; standard
// library and vendored units handed to the vettool are ignored.
const modulePrefix = "oblivhm/"

// LogicalPath strips cmd/go's vet variant decoration
// ("pkg [pkg.test]" -> "pkg").
func LogicalPath(importPath string) string {
	if i := strings.IndexByte(importPath, ' '); i >= 0 {
		return importPath[:i]
	}
	return importPath
}

// enginePackage reports whether path is non-test engine/algorithm code this
// suite polices: everything under oblivhm/internal/. Synthesized test-main
// packages ("pkg.test") are skipped.
func enginePackage(path string) bool {
	return strings.HasPrefix(path, modulePrefix+"internal/") && !strings.HasSuffix(path, ".test")
}

// modulePackage reports whether path belongs to this module at all
// (internal, cmd, examples), again skipping synthesized test mains.
func modulePackage(path string) bool {
	return strings.HasPrefix(path, modulePrefix) && !strings.HasSuffix(path, ".test")
}

// algorithmPackages are the packages holding MO/NO algorithm code: the
// paper's obliviousness boundary. Keys are the path segment under
// oblivhm/internal/.
var algorithmPackages = map[string]bool{
	"fft":       true,
	"gep":       true,
	"scan":      true,
	"spms":      true,
	"spmdv":     true,
	"transpose": true,
	"listrank":  true,
	"graph":     true,
	"bitint":    true,
	"noalgo":    true,
	"nogep":     true,
}

// networkPackages are the network-oblivious algorithm packages, which
// additionally may not read the machine's p or B.
var networkPackages = map[string]bool{
	"noalgo": true,
	"nogep":  true,
}

func algorithmPackage(path string) bool {
	return algorithmPackages[strings.TrimPrefix(path, modulePrefix+"internal/")]
}

func networkPackage(path string) bool {
	return networkPackages[strings.TrimPrefix(path, modulePrefix+"internal/")]
}

// isTestFile reports whether pos sits in a _test.go file; the invariants
// bind shipped code only, tests may reach machine state freely.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// eachSourceFile visits the non-test files of the pass.
func eachSourceFile(p *Pass, fn func(f *ast.File)) {
	for _, f := range p.Files {
		if isTestFile(p.Fset, f.Pos()) {
			continue
		}
		fn(f)
	}
}

// namedFrom reports whether t (after unwrapping pointers) is the named type
// pkgSuffix.name, matching the package by import-path suffix so testdata
// fixtures exercise the same code path as the real tree.
func namedFrom(t types.Type, pkgSuffix, name string) bool {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Name() != name {
		return false
	}
	return strings.HasSuffix(obj.Pkg().Path(), pkgSuffix)
}

// funcObj resolves the called function/method object of a call, if any.
func funcObj(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}
