package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestLogicalPath(t *testing.T) {
	cases := []struct{ in, want string }{
		{"oblivhm/internal/fft", "oblivhm/internal/fft"},
		{"oblivhm/internal/fft [oblivhm/internal/fft.test]", "oblivhm/internal/fft"},
		{"oblivhm/internal/fft.test", "oblivhm/internal/fft.test"},
	}
	for _, c := range cases {
		if got := LogicalPath(c.in); got != c.want {
			t.Errorf("LogicalPath(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestScopePredicates(t *testing.T) {
	cases := []struct {
		path                 string
		engine, module, algo bool
	}{
		{"oblivhm/internal/core", true, true, false},
		{"oblivhm/internal/fft", true, true, true},
		{"oblivhm/internal/noalgo", true, true, true},
		{"oblivhm/cmd/hmsim", false, true, false},
		{"oblivhm/examples/apsp", false, true, false},
		{"oblivhm/internal/fft.test", false, false, false},
		{"internal/abi", false, false, false}, // standard library
		{"fmt", false, false, false},
	}
	for _, c := range cases {
		if got := enginePackage(c.path); got != c.engine {
			t.Errorf("enginePackage(%q) = %v, want %v", c.path, got, c.engine)
		}
		if got := modulePackage(c.path); got != c.module {
			t.Errorf("modulePackage(%q) = %v, want %v", c.path, got, c.module)
		}
		if got := algorithmPackage(c.path); got != c.algo {
			t.Errorf("algorithmPackage(%q) = %v, want %v", c.path, got, c.algo)
		}
	}
	if !networkPackage("oblivhm/internal/nogep") || networkPackage("oblivhm/internal/fft") {
		t.Error("networkPackage should accept nogep and reject fft")
	}
}

const allowSrc = `package p

//oblivcheck:allow determinism: documented reason
var a int

//oblivcheck:allow oblivious: wrong analyzer for the probe below
var b int

//oblivcheck:allow
var c int

//oblivcheck:allow :
var e int

var d int //oblivcheck:allow determinism: same-line form
`

func parseAllowSrc(t *testing.T) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "allow.go", allowSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

func TestCollectAllows(t *testing.T) {
	fset, files := parseAllowSrc(t)
	var diags []Diagnostic
	allows := collectAllows(fset, files, &diags)

	// The two malformed annotations are themselves findings.
	if len(diags) != 2 {
		t.Fatalf("got %d malformed-annotation findings, want 2: %v", len(diags), diags)
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "malformed oblivcheck annotation") {
			t.Errorf("unexpected malformed-annotation message: %s", d.Message)
		}
	}

	m := allows["allow.go"]
	if m == nil {
		t.Fatal("no allow entries recorded for allow.go")
	}
	if got := m[3]; len(got) != 1 || got[0] != "determinism" {
		t.Errorf("line 3 allows = %v, want [determinism]", got)
	}
	if got := m[15]; len(got) != 1 || got[0] != "determinism" {
		t.Errorf("line 15 allows = %v, want [determinism]", got)
	}
}

func TestAllowedAtCoversLineAndLineAbove(t *testing.T) {
	fset, files := parseAllowSrc(t)
	var diags []Diagnostic
	pass := &Pass{
		Analyzer: Determinism,
		Fset:     fset,
		diags:    &diags,
		allows:   collectAllows(fset, files, &diags),
	}
	base := fset.File(files[0].Pos())
	diags = diags[:0] // discard the malformed-annotation findings for this check

	pass.Reportf(base.LineStart(4), "on the var line, annotation directly above")
	if len(diags) != 0 {
		t.Errorf("annotation on the line above should suppress, got %v", diags)
	}
	pass.Reportf(base.LineStart(15), "on the annotated line itself")
	if len(diags) != 0 {
		t.Errorf("same-line annotation should suppress, got %v", diags)
	}
	pass.Reportf(base.LineStart(7), "oblivious annotation must not cover determinism")
	if len(diags) != 1 {
		t.Errorf("mismatched analyzer name must not suppress, got %v", diags)
	}
}
