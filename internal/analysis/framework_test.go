package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

func TestLogicalPath(t *testing.T) {
	cases := []struct{ in, want string }{
		{"oblivhm/internal/fft", "oblivhm/internal/fft"},
		{"oblivhm/internal/fft [oblivhm/internal/fft.test]", "oblivhm/internal/fft"},
		{"oblivhm/internal/fft.test", "oblivhm/internal/fft.test"},
	}
	for _, c := range cases {
		if got := LogicalPath(c.in); got != c.want {
			t.Errorf("LogicalPath(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestScopePredicates(t *testing.T) {
	cases := []struct {
		path                 string
		engine, module, algo bool
	}{
		{"oblivhm/internal/core", true, true, false},
		{"oblivhm/internal/fft", true, true, true},
		{"oblivhm/internal/noalgo", true, true, true},
		{"oblivhm/cmd/hmsim", false, true, false},
		{"oblivhm/examples/apsp", false, true, false},
		{"oblivhm/internal/fft.test", false, false, false},
		{"internal/abi", false, false, false}, // standard library
		{"fmt", false, false, false},
	}
	for _, c := range cases {
		if got := enginePackage(c.path); got != c.engine {
			t.Errorf("enginePackage(%q) = %v, want %v", c.path, got, c.engine)
		}
		if got := modulePackage(c.path); got != c.module {
			t.Errorf("modulePackage(%q) = %v, want %v", c.path, got, c.module)
		}
		if got := algorithmPackage(c.path); got != c.algo {
			t.Errorf("algorithmPackage(%q) = %v, want %v", c.path, got, c.algo)
		}
	}
	if !networkPackage("oblivhm/internal/nogep") || networkPackage("oblivhm/internal/fft") {
		t.Error("networkPackage should accept nogep and reject fft")
	}
}

const allowSrc = `package p

//oblivcheck:allow determinism: documented reason
var a int

//oblivcheck:allow oblivious: wrong analyzer for the probe below
var b int

//oblivcheck:allow
var c int

//oblivcheck:allow :
var e int

var d int //oblivcheck:allow determinism: same-line form
`

func parseAllowSrc(t *testing.T) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "allow.go", allowSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

func TestCollectAllows(t *testing.T) {
	fset, files := parseAllowSrc(t)
	var diags []Diagnostic
	allows, _ := collectAllows(fset, files, &diags)

	// The two malformed annotations are themselves findings.
	if len(diags) != 2 {
		t.Fatalf("got %d malformed-annotation findings, want 2: %v", len(diags), diags)
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "malformed oblivcheck annotation") {
			t.Errorf("unexpected malformed-annotation message: %s", d.Message)
		}
	}

	m := allows["allow.go"]
	if m == nil {
		t.Fatal("no allow entries recorded for allow.go")
	}
	if got := m[3]; len(got) != 1 || got[0].name != "determinism" {
		t.Errorf("line 3 allows = %v, want [determinism]", got)
	}
	if got := m[15]; len(got) != 1 || got[0].name != "determinism" {
		t.Errorf("line 15 allows = %v, want [determinism]", got)
	}
}

func TestAllowedAtCoversLineAndLineAbove(t *testing.T) {
	fset, files := parseAllowSrc(t)
	var diags []Diagnostic
	allows, _ := collectAllows(fset, files, &diags)
	pass := &Pass{
		Analyzer: Determinism,
		Fset:     fset,
		diags:    &diags,
		allows:   allows,
	}
	base := fset.File(files[0].Pos())
	diags = diags[:0] // discard the malformed-annotation findings for this check

	pass.Reportf(base.LineStart(4), "on the var line, annotation directly above")
	if len(diags) != 0 {
		t.Errorf("annotation on the line above should suppress, got %v", diags)
	}
	pass.Reportf(base.LineStart(15), "on the annotated line itself")
	if len(diags) != 0 {
		t.Errorf("same-line annotation should suppress, got %v", diags)
	}
	pass.Reportf(base.LineStart(7), "oblivious annotation must not cover determinism")
	if len(diags) != 1 {
		t.Errorf("mismatched analyzer name must not suppress, got %v", diags)
	}
}

// TestUnusedAllowReported covers the stale-exemption sweep: an annotation
// that suppresses nothing is itself a finding — but only when the analyzer
// it names is part of the running suite, so single-analyzer runs (atest)
// cannot misjudge another analyzer's annotations.
func TestUnusedAllowReported(t *testing.T) {
	const src = `package p

//oblivcheck:allow determinism: nothing left here to excuse
var x = 1
`
	check := func(suite []*Analyzer) []Diagnostic {
		t.Helper()
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files := []*ast.File{f}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		pkg, err := (&types.Config{}).Check("oblivhm/internal/p", fset, files, info)
		if err != nil {
			t.Fatal(err)
		}
		return Run(suite, fset, files, pkg, info, "oblivhm/internal/p")
	}

	diags := check([]*Analyzer{Determinism})
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "unused //oblivcheck:allow determinism") {
		t.Errorf("suite containing determinism: got %v, want one unused-allow finding", diags)
	}
	if diags := check([]*Analyzer{Oblivious}); len(diags) != 0 {
		t.Errorf("suite without determinism must not judge its allows, got %v", diags)
	}
}
