// Package graph is an oblivious-analyzer fixture for the annotation
// escape hatch: the violation below is explicitly allowed with a reason,
// so it must not be reported.
package graph

//oblivcheck:allow oblivious: fixture probing the annotation escape hatch
import "oblivhm/internal/hm"

var _ = hm.Config{}
