// Package fft is an oblivious-analyzer fixture: an algorithm package that
// illegally imports the machine model.
package fft

import (
	"oblivhm/internal/core"
	"oblivhm/internal/hm" // want `imports the machine model`
)

// Use leaks a machine parameter into algorithm code.
func Use(c *core.Ctx, cfg hm.Config) string {
	_ = c
	return cfg.Name
}
