package fft

import "oblivhm/internal/hm" // fine: _test.go files may see the machine

var _ = hm.Config{}
