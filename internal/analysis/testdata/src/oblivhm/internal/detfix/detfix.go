// Package detfix exercises the determinism analyzer: wall-clock reads,
// unseeded randomness, map iteration, sync.Map, and goroutine spawns, with
// seeded/annotated counterparts that must stay silent.
package detfix

import (
	"math/rand"
	"sync"
	"time"
)

// Clock reads the wall clock.
func Clock() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

// GlobalRand draws from the global unseeded source.
func GlobalRand() int {
	return rand.Intn(10) // want `draws from the global unseeded source`
}

// SeededRand threads an explicit seed: the sanctioned convention.
func SeededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// MapOrder folds over a map in iteration order.
func MapOrder(m map[string]int) int {
	total := 0
	for _, v := range m { // want `iteration over a map`
		total -= v
	}
	return total
}

// SyncMapUse declares a sync.Map.
func SyncMapUse() {
	var m sync.Map // want `sync\.Map use`
	m.Store(1, 2)
}

// Spawn launches an unsanctioned goroutine.
func Spawn(fn func()) {
	go fn() // want `go statement outside the sanctioned`
}

// SanctionedSpawn carries the escape hatch with a reason.
func SanctionedSpawn(fn func()) {
	//oblivcheck:allow determinism: fixture for the annotation escape hatch
	go fn()
}

// SortedKeys is the annotated order-independent collection idiom.
func SortedKeys(m map[string]int) []string {
	var ks []string
	//oblivcheck:allow determinism: key collection, sorted by the caller
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}
