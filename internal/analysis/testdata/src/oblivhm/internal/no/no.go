// Package no is a testdata stub of the network-oblivious substrate.
package no

// World is the M(p,B) machine: N is the problem's PE count (the recursion
// shape an NO algorithm may name), P and B are machine parameters it may
// not.
type World struct {
	N int
	P int
	B int
}
