// Package dofix exercises the dataoblivious analyzer: a package that opts
// in with the directive below may make no secret-dependent branches,
// indices, slice bounds, addresses, or space hints.
package dofix

//oblivcheck:dataoblivious

import "oblivhm/internal/core"

// ShapeOnly is the clean baseline: the loop bound v.N is shape, not
// secret, and values only flow into arithmetic.
//
//oblivcheck:secret v
func ShapeOnly(c *core.Ctx, v core.I64) int64 {
	var sum int64
	for i := 0; i < v.N; i++ {
		sum += v.At(c, i)
	}
	return sum
}

// Branch tests a value loaded from the secret array.
//
//oblivcheck:secret v
func Branch(c *core.Ctx, v core.I64) int64 {
	x := v.At(c, 0)
	if x > 0 { // want `secret-dependent branch`
		return 1
	}
	return 0
}

// LoopBound trips on a secret-derived trip count.
//
//oblivcheck:secret v
func LoopBound(c *core.Ctx, v core.I64) {
	n := v.At(c, 0)
	for i := int64(0); i < n; i++ { // want `secret-dependent loop bound`
		_ = i
	}
}

// SwitchTag switches on a secret load.
//
//oblivcheck:secret v
func SwitchTag(c *core.Ctx, v core.I64) {
	switch v.At(c, 1) { // want `secret-dependent switch`
	}
}

// CoreIndex hands a secret-derived subscript to a core accessor.
//
//oblivcheck:secret v
func CoreIndex(c *core.Ctx, v core.I64, dst core.I64) {
	k := int(v.At(c, 0))
	dst.Set(c, k, 1) // want `secret-derived index: dst\.Set`
}

// CoreSliceBound reslices by a secret-derived bound.
//
//oblivcheck:secret v
func CoreSliceBound(c *core.Ctx, v core.I64, dst core.I64) core.I64 {
	k := int(v.At(c, 0))
	return dst.Slice(0, k) // want `secret-derived index: dst\.Slice`
}

// GoIndex covers native Go containers: values loaded from a secret slice
// are secret, and a secret subscript is an address-stream leak.  The
// column pins keep the two same-line findings apart.
//
//oblivcheck:secret xs
func GoIndex(xs []int64, out []int64) {
	i := xs[0]
	j := xs[1]
	out[i] = out[j] // want 6:`secret-derived index` 15:`secret-derived index`
}

// GoSliceBound reslices a Go slice by a secret bound.
//
//oblivcheck:secret xs
func GoSliceBound(xs []int64) []int64 {
	k := int(xs[0])
	return xs[:k] // want `secret-derived slice bound`
}

// AddrSink computes a raw address from a secret value.
//
//oblivcheck:secret v
func AddrSink(c *core.Ctx, v core.I64) int64 {
	a := core.Addr(v.At(c, 2))
	return c.LoadI(a) // want `secret-derived address`
}

// TripCount forks a parallel loop whose width is secret.
//
//oblivcheck:secret v
func TripCount(c *core.Ctx, v core.I64) {
	n := int(v.At(c, 0))
	c.PFor(0, n, 8, func(cc *core.Ctx, i int) { _ = i }) // want `secret-dependent PFor trip count`
}

// SpaceHint declares a task space bound derived from a secret: the SB
// scheduler would place the task (and shape the trace) based on data.
//
//oblivcheck:secret v
func SpaceHint(c *core.Ctx, v core.I64) {
	s := v.At(c, 0)
	c.SpawnSB(core.Task{Space: s, Fn: func(cc *core.Ctx) {}}) // want `secret-dependent Space hint`
}

// StoreTaint: storing a secret into a container taints the container, and
// loads from it stay secret.
//
//oblivcheck:secret x
func StoreTaint(c *core.Ctx, x int64, dst core.I64, tmp []int64) {
	tmp[0] = x
	k := tmp[1]
	_ = dst.At(c, int(k)) // want `secret-derived index: dst\.At`
}

// StoreValueIsData: Set's final argument is the stored value, not an
// address — writing a secret at a public index is exactly what an
// oblivious kernel does.
//
//oblivcheck:secret x
func StoreValueIsData(c *core.Ctx, x int64, dst core.I64) {
	dst.Set(c, 0, x)
}

// SetStoreTaint: the call-form store taints the receiver array, so a
// later load from it is secret.
//
//oblivcheck:secret x
func SetStoreTaint(c *core.Ctx, x int64, dst core.I64, out core.I64) {
	dst.Set(c, 0, x)
	k := int(dst.At(c, 0))
	out.Set(c, k, 1) // want `secret-derived index: out\.Set`
}

// SliceKeepsTaint: a sub-array of a secret array stays secret.
//
//oblivcheck:secret v
func SliceKeepsTaint(c *core.Ctx, v core.I64) {
	half := v.Slice(0, v.N/2)
	if half.At(c, 0) > 0 { // want `secret-dependent branch`
		return
	}
}

// Select is the sanctioned escape hatch: a register-only compare whose
// two sides touch no memory cannot move the trace.
//
//oblivcheck:secret v
func Select(c *core.Ctx, v core.I64) int64 {
	x := v.At(c, 0)
	y := v.At(c, 1)
	//oblivcheck:allow dataoblivious: register-only min select, no memory operation on either side
	if x < y {
		return x
	}
	return y
}

// BadName names a non-parameter, so a typo cannot silently un-secret an
// input.
//
//oblivcheck:secret w
func BadName(c *core.Ctx, v core.I64) {} // want `not a parameter of BadName`

// EmptyDirective forgets the parameter list.
//
//oblivcheck:secret
func EmptyDirective(c *core.Ctx, v core.I64) {} // want `empty //oblivcheck:secret directive on EmptyDirective`
