// Package listrank is an oblivious-analyzer fixture: algorithm code that
// reads machine parameters through the Session.Machine() door.
package listrank

import "oblivhm/internal/core"

// Peek adapts to the core count, which an oblivious algorithm must not.
func Peek(c *core.Ctx) int {
	return c.Session().Machine().Cores // want `Session\.Machine\(\)`
}
