// Package hm is a testdata stub of the machine model: just enough surface
// for the oblivious analyzer fixtures to type-check.
package hm

// Config is a machine description an algorithm must never see.
type Config struct {
	Name string
}

// Presets mimics the real preset table.
func Presets() map[string]Config { return nil }
