// Package noalgo is an oblivious-analyzer fixture for the NO rule: an
// algorithm may name N, the recursion shape, but never p or B.
package noalgo

import "oblivhm/internal/no"

// Shape reads N: the declared recursion shape, always legal.
func Shape(w *no.World) int { return w.N }

// LeakP branches on the processor count.
func LeakP(w *no.World) int { return w.P } // want `World\.P`

// LeakB branches on the block size.
func LeakB(w *no.World) int { return w.B } // want `World\.B`
