// Package specfix exercises the specsafe analyzer: scheduler-state reads
// reachable from speculative context must be dominated by c.serialize()
// (DESIGN.md §11).  The types mirror internal/core's shape; the package
// lives under the core path so the analyzer's scope predicate fires.
package specfix

type strand struct {
	spec bool
}

func (st *strand) charge(n int64)          { _ = n }
func (st *strand) park()                   {}
func (st *strand) deferFork(fn func(*Ctx)) { _ = fn }

type deque struct{ buf []int }

func (q *deque) empty() bool { return len(q.buf) == 0 }

type join struct {
	pending int
}

type engine struct {
	flat      bool // configuration, frozen at setup: safelisted
	steal     bool // configuration: safelisted
	clock     int64
	live      int
	runq      []deque
	freeJoins []*join
}

// Session owns the engine; its own fields are not scheduler state.
type Session struct {
	eng *engine
}

// Task mirrors the forked-task shape with a dynamic body.
type Task struct {
	Fn func(*Ctx)
}

// Ctx is the strand-side execution context.
type Ctx struct {
	s  *Session
	st *strand
}

// serialize stands in for the real speculation barrier; the analyzer
// special-cases it by name and receiver.
func (c *Ctx) serialize() {}
