package specfix

// Bad reads engine state straight off the speculative path.
func (c *Ctx) Bad() int64 {
	return c.s.eng.clock // want `engine\.clock`
}

// Good serializes first: everything after the barrier runs in the serial
// phase.
func (c *Ctx) Good() int64 {
	c.serialize()
	return c.s.eng.clock
}

// Stale charges after serializing: the strand may suspend and resume as a
// speculator, so the earlier serialize no longer covers the read.
func (c *Ctx) Stale() int64 {
	c.serialize()
	c.st.charge(1)
	return c.s.eng.clock // want `engine\.clock`
}

// Config reads safelisted configuration, fine at any state.
func (c *Ctx) Config() bool {
	return c.s.eng.flat && c.s.eng.steal
}

// GuardPos: inside `if st.spec` the strand is definitely speculating; once
// the guarded branch returns, the fall-through side definitely is not.
func (c *Ctx) GuardPos() int {
	if st := c.st; st != nil && st.spec {
		return c.s.eng.live // want `engine\.live`
	}
	return c.s.eng.live
}

// GuardNeg: the then-branch of `!st.spec` is non-speculating; the
// fall-through after it may be speculating.
func (c *Ctx) GuardNeg() int {
	if !c.st.spec {
		return c.s.eng.live
	}
	return c.s.eng.live // want `engine\.live`
}

// WaitJoin mirrors the PR 7 bug shape: join state follows the same rule.
func (c *Ctx) WaitJoin(jn *join) {
	if jn.pending != 0 { // want `join\.pending`
		c.st.park()
	}
	c.serialize()
	if jn.pending != 0 {
		c.st.park()
	}
}

// CallsHelperUnsafe and CallsHelperSafe reach helper from an unserialized
// and a serialized site; the entry-state meet keeps the worst one, so the
// read inside helper is flagged.
func (c *Ctx) CallsHelperUnsafe() int { return c.helper() }

func (c *Ctx) CallsHelperSafe() int {
	c.serialize()
	return c.helper()
}

func (c *Ctx) helper() int {
	return c.s.eng.live // want `engine\.live`
}

// CallsOnlySafe reaches onlySafe from serialized sites only, so its body
// checks clean under that privilege.
func (c *Ctx) CallsOnlySafe() int {
	c.serialize()
	return c.onlySafe()
}

func (c *Ctx) onlySafe() int {
	return c.s.eng.live
}

// DeferredFork: closures handed to deferFork run on the engine thread
// during the commit walk, so they are exempt.
func (c *Ctx) DeferredFork() {
	if st := c.st; st != nil && st.spec {
		st.deferFork(func(cc *Ctx) {
			cc.s.eng.live++
		})
		return
	}
	c.s.eng.live++
}

// Closure: any other function literal may become a forked strand's root
// and speculate, whatever the state at its creation site.
func (c *Ctx) Closure() func() int {
	c.serialize()
	return func() int {
		return c.s.eng.live // want `engine\.live`
	}
}

// RunTask: a dynamic call reaches algorithm code, which charges on every
// access — the serialization is gone by the time control returns.
func (c *Ctx) RunTask(t Task) int {
	c.serialize()
	t.Fn(c)
	return c.s.eng.live // want `engine\.live`
}

// Allowed demonstrates the escape hatch with a documented reason.
func (c *Ctx) Allowed() int64 {
	//oblivcheck:allow specsafe: fixture exercising the escape hatch
	return c.s.eng.clock
}
