// Package parfix pins the determinism analyzer's goroutine rule inside the
// engine scope after the parallel-rounds change: the real internal/core now
// carries two sanctioned `go` sites (the strand coroutine in runStrand and
// the speculative launch in speculate()), both annotated with the
// commit-order equivalence argument — and this fixture proves that a NEW,
// unsanctioned `go` statement in internal/core still fails the check, so
// the annotation is a per-site escape hatch, not a package-wide waiver.
package parfix

// strand is a stub of the engine's schedulable unit.
type strand struct {
	resume chan int64
	yield  chan struct{}
}

func (st *strand) main() {
	<-st.resume
	st.yield <- struct{}{}
}

// SpeculativeLaunch mirrors the sanctioned site in parround.go: the
// annotation cites the argument that makes the concurrency unobservable.
func SpeculativeLaunch(fronts []*strand) {
	for _, st := range fronts {
		//oblivcheck:allow determinism: speculative strand launch — pure rounds are replayed by the serial commit walk in (round, core) order, byte-identical to the serial schedule
		go st.main()
	}
}

// UnsanctionedLaunch is the regression the rule exists for: engine code
// spawning a goroutine without an equivalence argument.
func UnsanctionedLaunch(st *strand) {
	go st.main() // want `go statement outside the sanctioned`
}
