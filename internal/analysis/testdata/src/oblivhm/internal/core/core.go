// Package core is a testdata stub of the execution context: the Ctx/Task
// surface algorithms program against, plus the engine-side join free list
// the hinthygiene analyzer polices.
package core

// Ctx is the oblivious execution context.
type Ctx struct {
	s *Session
	e *engine
}

// Task is a forked task with a declared space bound.
type Task struct {
	Space int64
	Fn    func(*Ctx)
	Label string
}

// SpawnSB forks tasks under the SB hint.
func (c *Ctx) SpawnSB(tasks ...Task) {
	for _, t := range tasks {
		if t.Fn != nil {
			t.Fn(c)
		}
	}
}

// Session returns the owning session.
func (c *Ctx) Session() *Session { return c.s }

// Session allocates scratch space and, for non-algorithm code, exposes the
// machine.
type Session struct {
	m Machine
}

// Machine is the stub machine handle.
type Machine struct {
	Cores int
}

// Machine returns the machine handle; algorithm packages may not call it.
func (s *Session) Machine() *Machine { return &s.m }

// NewF64 allocates scratch space; always allowed.
func (s *Session) NewF64(n int) []float64 { return make([]float64, n) }

type join struct {
	pending int
}

type engine struct{}

func (e *engine) newJoin() *join { return &join{} }

func (e *engine) putJoin(jn *join) { _ = jn }

func (c *Ctx) waitJoin(jn *join) { _ = jn }
