package core

// Control-path fixtures for the hinthygiene join checker: a join taken
// from the free list must be released on every path out of the function.

func (c *Ctx) goodLinear() {
	jn := c.e.newJoin()
	for i := 0; i < 3; i++ {
		jn.pending++
	}
	c.waitJoin(jn)
}

func (c *Ctx) goodBranchedReturns(early bool) {
	jn := c.e.newJoin()
	if early {
		jn.pending++
		c.waitJoin(jn)
		return
	}
	c.waitJoin(jn)
}

func (c *Ctx) goodDeferredRelease() {
	jn := c.e.newJoin()
	defer c.e.putJoin(jn)
	jn.pending++
}

func (c *Ctx) goodEarlyOutBeforeJoin(n int) {
	if n == 0 {
		return // fine: no join taken yet
	}
	jn := c.e.newJoin()
	c.waitJoin(jn)
}

func (c *Ctx) badEarlyReturn(early bool) {
	jn := c.e.newJoin()
	if early {
		return // want `return without releasing the join`
	}
	c.waitJoin(jn)
}

func (c *Ctx) badLeakOnFallthrough() {
	jn := c.e.newJoin() // want `not released by waitJoin/putJoin on the fall-through path`
	jn.pending++
}

func (c *Ctx) badBranchMisses(early bool) {
	jn := c.e.newJoin() // want `not released by waitJoin/putJoin on the fall-through path`
	if early {
		c.waitJoin(jn)
	}
}
