package core

// Addr is a simulated machine address.
type Addr int64

// I64 is a handle over a simulated int64 array: N and Base are shape, the
// elements live in simulated memory behind At/Set.
type I64 struct {
	N    int
	Base Addr
}

func (v I64) At(c *Ctx, i int) int64     { _ = i; return 0 }
func (v I64) Set(c *Ctx, i int, x int64) { _, _ = i, x }
func (v I64) Slice(lo, hi int) I64       { return I64{N: hi - lo, Base: v.Base + Addr(lo)} }

// LoadI reads one word at a raw address.
func (c *Ctx) LoadI(a Addr) int64 { _ = a; return 0 }

// PFor forks hi-lo data-parallel strands with a per-strand space hint.
func (c *Ctx) PFor(lo, hi int, space int64, body func(*Ctx, int)) {
	_ = space
	for i := lo; i < hi; i++ {
		body(c, i)
	}
}
