// Package failfix pins the determinism analyzer against the failure-
// injection layer's temptations: real fault-tolerant runtimes detect
// failures with wall-clock heartbeats and background watchdog goroutines,
// but the engine's frozen contract extends to failure schedules — same
// config + seed must give a byte-identical kill/straggler/fault schedule
// and byte-identical recovery actions.  This fixture proves the analyzer
// still rejects failure hooks built on the wall clock or on unsanctioned
// goroutines, so recovery stays a function of the virtual round counter.
package failfix

import "time"

// failEvent is a stub of the engine's scheduled failure event.
type failEvent struct {
	round int64
	core  int
}

// injector is a stub of the engine-side failure injector.
type injector struct {
	events []failEvent
	round  int64
	dead   uint64
}

// FireScheduled is the sanctioned shape: failures fire off the virtual
// round counter, derived from the plan seed — no clock, no goroutine.
func (f *injector) FireScheduled() {
	f.round++
	for _, ev := range f.events {
		if ev.round <= f.round {
			f.dead |= 1 << uint(ev.core)
		}
	}
}

// HeartbeatDetect is the regression the wall-clock rule exists for: a
// failure detector keyed on real time would make the failure schedule (and
// so the recovery actions) differ between runs.
func (f *injector) HeartbeatDetect(last time.Time) bool {
	return time.Since(last) > time.Second // want `time.Since reads the wall clock`
}

// DeadlineKill reads the wall clock to decide when a core dies.
func (f *injector) DeadlineKill(c int) {
	if time.Now().Unix()%2 == 0 { // want `time.Now reads the wall clock`
		f.dead |= 1 << uint(c)
	}
}

// WatchdogGoroutine is the other regression: a background monitor thread
// observing the engine from outside the round structure.  Detection must
// happen at round boundaries on the engine goroutine, not on a racing
// watcher.
func (f *injector) WatchdogGoroutine(trip func()) {
	go func() { // want `go statement outside the sanctioned`
		time.Sleep(time.Millisecond) // want `time.Sleep reads the wall clock`
		trip()
	}()
}
