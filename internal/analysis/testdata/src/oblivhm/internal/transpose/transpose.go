// Package transpose is an oblivious-analyzer fixture with only legal
// behaviour: Ctx access and scratch allocation through Session.
package transpose

import "oblivhm/internal/core"

// Recursive allocates scratch without touching machine state.
func Recursive(c *core.Ctx, n int) []float64 {
	return c.Session().NewF64(n)
}
