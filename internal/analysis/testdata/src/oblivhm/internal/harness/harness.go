// Package harness is an oblivious-analyzer negative fixture: it is not an
// algorithm package, so importing the machine model is its job.
package harness

import "oblivhm/internal/hm"

// Machines wires machine configurations to drivers.
func Machines() map[string]hm.Config { return hm.Presets() }
