// Package gep exercises the hinthygiene Task rules: every forked task
// declares a space bound derived from its input size.
package gep

import "oblivhm/internal/core"

// SpaceBound is the declared s(τ) for an n×n problem.
func SpaceBound(n int) int64 { return int64(4 * n * n) }

// Recurse forks with bounds derived from the subproblem size: legal.
func Recurse(c *core.Ctx, n int) {
	if n <= 1 {
		return
	}
	sp := SpaceBound(n / 2)
	c.SpawnSB(
		core.Task{Space: 2 * sp, Fn: func(cc *core.Ctx) { Recurse(cc, n/2) }},
		core.Task{Space: sp, Fn: func(cc *core.Ctx) { Recurse(cc, n/2) }},
	)
}

// Positional uses the positional literal form with a derived bound: legal.
func Positional(c *core.Ctx, n int) {
	c.SpawnSB(core.Task{SpaceBound(n), nil, "leaf"})
}

// BadConstant hard-codes the bound.
func BadConstant(c *core.Ctx) {
	c.SpawnSB(core.Task{Space: 4096, Fn: nil}) // want `constant 4096`
}

// BadMissing declares no bound at all (an implicit zero).
func BadMissing(c *core.Ctx) {
	c.SpawnSB(core.Task{Fn: nil}) // want `Task literal without a Space bound`
}

// BadPositionalConstant hard-codes the bound positionally.
func BadPositionalConstant(c *core.Ctx) {
	c.SpawnSB(core.Task{64, nil, "leaf"}) // want `constant 64`
}

// Audited carries the escape hatch for a hand-audited fixed bound.
func Audited(c *core.Ctx) {
	//oblivcheck:allow hinthygiene: fixed-size leaf buffer, bound audited by hand
	c.SpawnSB(core.Task{Space: 64, Fn: nil})
}
