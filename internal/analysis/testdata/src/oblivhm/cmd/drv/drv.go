// Package drv is a determinism-analyzer negative fixture: drivers under
// cmd/ sit outside the engine scope and may read the wall clock freely.
package drv

import "time"

// Elapsed times a run; legal outside oblivhm/internal/.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start)
}
