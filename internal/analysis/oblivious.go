package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// Oblivious enforces the paper's MO/NO definition on the algorithm
// packages: resource-oblivious code names no machine parameter.
//
//   - No algorithm package may import the machine model (internal/hm)
//     outside _test.go files. Algorithms see only core.Ctx, whose API
//     exposes memory access and the three scheduler hints.
//   - No algorithm may call Session.Machine(), the one door from Ctx back
//     to the machine configuration (Session itself stays reachable for
//     scratch allocation).
//   - Network-oblivious algorithm packages (noalgo, nogep) may not read
//     World.P or World.B: an NO algorithm's communication pattern is a
//     function of N alone, p and B exist only in the runtime's accounting.
var Oblivious = &Analyzer{
	Name: "oblivious",
	Doc:  "algorithm packages must not import internal/hm or read machine parameters",
	Run:  runOblivious,
}

func runOblivious(pass *Pass) {
	if !algorithmPackage(pass.Path) {
		return
	}
	network := networkPackage(pass.Path)
	eachSourceFile(pass, func(f *ast.File) {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == modulePrefix+"internal/hm" || strings.HasSuffix(path, "/internal/hm") {
				pass.Reportf(imp.Pos(),
					"algorithm package %s imports the machine model %q: obliviousness forbids naming machine parameters outside _test.go files", pass.Pkg.Name(), path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if fn := funcObj(pass.TypesInfo, n); fn != nil && fn.Name() == "Machine" {
					if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && namedFrom(sig.Recv().Type(), "internal/core", "Session") {
						pass.Reportf(n.Pos(),
							"algorithm code calls Session.Machine(): machine parameters are not visible to oblivious algorithms")
					}
				}
			case *ast.SelectorExpr:
				if !network {
					return true
				}
				name := n.Sel.Name
				if name != "P" && name != "B" {
					return true
				}
				if tv, ok := pass.TypesInfo.Types[n.X]; ok && namedFrom(tv.Type, "internal/no", "World") {
					pass.Reportf(n.Sel.Pos(),
						"network-oblivious algorithm reads World.%s: only N (the recursion shape) may be named, p and B belong to the runtime", name)
				}
			}
			return true
		})
	})
}
