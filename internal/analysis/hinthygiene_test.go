package analysis_test

import (
	"testing"

	"oblivhm/internal/analysis"
	"oblivhm/internal/analysis/atest"
)

func TestHintHygieneAnalyzer(t *testing.T) {
	atest.Run(t, "testdata", analysis.HintHygiene,
		"oblivhm/internal/gep",  // Task space bounds: derived, constant, missing, annotated
		"oblivhm/internal/core", // engine join pairing on all control paths
	)
}
