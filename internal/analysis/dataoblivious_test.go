package analysis_test

import (
	"testing"

	"oblivhm/internal/analysis"
	"oblivhm/internal/analysis/atest"
)

func TestDataObliviousAnalyzer(t *testing.T) {
	atest.Run(t, "testdata", analysis.DataOblivious,
		"oblivhm/internal/dofix", // taint walk: branches, indices, addresses, space hints
	)
}
