package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SpecSafe encodes DESIGN.md §11's serialize rule as a static check over
// internal/core: every read of scheduler state reachable from speculative
// context must be dominated by a c.serialize() call.
//
// Under parallel rounds (core.WithParallelRounds) a strand's pure stretch
// may execute concurrently with the engine's serial phases.  Scheduler
// state — the engine's mutable fields, join and cacheSlot contents, the
// run-queue deques — is only coherent during the serial phases, so a Ctx
// method (code that can run on a speculating strand) may touch it only
//
//   - after c.serialize(), which pauses a speculator until the commit walk
//     reaches its round, and before anything that can suspend the strand (a
//     charge, a park, a call into algorithm code): suspension can hand the
//     strand back as a speculator, invalidating the serialization; or
//   - on the non-speculating side of an `st.spec` guard.
//
// The walk is interprocedural: it starts at the exported Ctx methods
// (entered from algorithm code, possibly speculating), tracks the
// serialized/possibly-speculating state through branches and calls, and
// propagates the worst entry state over same-package call edges — so the
// inline-spawn helpers called only after serialize are checked under that
// privilege, and an engine helper reached from an unserialized site is
// flagged inside its body.  Closures handed to deferFork are exempt: they
// run on the engine thread during the commit walk by construction.  The
// strand methods (charge, park, specReport, ...) are the engine⇄strand
// protocol layer whose safety is the channel handshake itself, not the
// serialize rule; calls to them conservatively invalidate serialization.
//
// This is the analyzer that would have caught the stale jn.pending read
// fixed in PR 7 at vet time instead of via a 16-seed chaos sweep.
var SpecSafe = &Analyzer{
	Name: "specsafe",
	Doc:  "scheduler-state reads reachable from speculative context are dominated by c.serialize()",
	Run:  runSpecSafe,
}

// specSafePathPrefix scopes the analyzer to the engine package (and its
// testdata twin, which shares the path prefix).
const specSafePathPrefix = modulePrefix + "internal/core"

func specSafePath(path string) bool {
	return path == specSafePathPrefix || strings.HasPrefix(path, specSafePathPrefix+"/")
}

// engineSafeFields are the engine fields a speculating strand may read:
// configuration and structure frozen at session setup (the slot *pointers*
// are structure; the cacheSlot contents are not).  Every other engine field
// is scheduler state.  New engine fields are unsafe by default — mutable
// state added later fails vet until it is either safelisted here with an
// argument or guarded by serialize.
var engineSafeFields = map[string]bool{
	"s": true, "m": true, "quantum": true, "flat": true, "steal": true,
	"reference": true, "chaos": true, "verify": true, "prWorkers": true,
	"watchdog": true, "wdClock": true, "fail": true, "trace": true,
	"prSpecHook": true, "slots": true,
}

// specUnsafeTypes are the named types whose fields are scheduler state
// wholesale (the engine type is special-cased via engineSafeFields).
var specUnsafeTypes = map[string]bool{
	"join": true, "cacheSlot": true, "deque": true, "pending": true,
}

func runSpecSafe(pass *Pass) {
	if !specSafePath(pass.Path) {
		return
	}
	a := &specAnalysis{
		pass:     pass,
		funcs:    make(map[*types.Func]*ast.FuncDecl),
		entry:    make(map[*types.Func]bool),
		reached:  make(map[*types.Func]bool),
		charges:  make(map[*types.Func]int),
		deferred: make(map[*ast.FuncLit]bool),
		reported: make(map[token.Pos]bool),
	}
	a.collect()
	a.solve()
	a.report()
}

type specAnalysis struct {
	pass      *Pass
	funcs     map[*types.Func]*ast.FuncDecl // same-package functions with bodies
	declOrder []*types.Func                 // a.funcs keys in source order
	entry     map[*types.Func]bool          // true = entered serialized/non-speculative
	reached   map[*types.Func]bool          // reachable from speculative context
	charges   map[*types.Func]int           // mayCharge memo: 0 unknown, 1 in progress, 2 no, 3 yes
	deferred  map[*ast.FuncLit]bool         // closures handed to deferFork: exempt
	worklist  []*types.Func
	reporting bool
	reported  map[token.Pos]bool
}

// collect indexes the package's functions and seeds the worklist with the
// exported Ctx methods — the surface algorithm code can call from inside a
// (possibly speculated) round.
func (a *specAnalysis) collect() {
	eachSourceFile(a.pass, func(f *ast.File) {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := a.pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			a.funcs[fn] = fd
			a.declOrder = append(a.declOrder, fn)
			// Pre-mark deferFork closure arguments anywhere in the body.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "deferFork" {
					for _, arg := range call.Args {
						if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
							a.deferred[lit] = true
						}
					}
				}
				return true
			})
		}
	})
	// Seed the roots in source order so the fixpoint walk (and with it any
	// partial-progress behavior) is deterministic run to run.
	for _, fn := range a.declOrder {
		if a.isCtxMethod(fn) && fn.Exported() {
			a.meetEntry(fn, false)
		}
	}
}

func (a *specAnalysis) recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

func (a *specAnalysis) isCtxMethod(fn *types.Func) bool    { return a.recvTypeName(fn) == "Ctx" }
func (a *specAnalysis) isStrandMethod(fn *types.Func) bool { return a.recvTypeName(fn) == "strand" }

// isSerialize recognizes the privilege-granting Ctx.serialize itself, which
// is excluded from the walk (its body is the speculation protocol).
func (a *specAnalysis) isSerialize(fn *types.Func) bool {
	return fn.Name() == "serialize" && a.isCtxMethod(fn)
}

// meetEntry lowers a function's entry state and schedules (re)walking.
// Entries only move safe -> unsafe, so the fixpoint terminates.
func (a *specAnalysis) meetEntry(fn *types.Func, safe bool) {
	if a.isStrandMethod(fn) || a.isSerialize(fn) {
		return
	}
	if _, ok := a.funcs[fn]; !ok {
		return
	}
	cur, known := a.entry[fn]
	if !known {
		a.entry[fn] = safe
		a.reached[fn] = true
		a.worklist = append(a.worklist, fn)
		return
	}
	if cur && !safe {
		a.entry[fn] = false
		a.worklist = append(a.worklist, fn)
	}
}

func (a *specAnalysis) solve() {
	for len(a.worklist) > 0 {
		fn := a.worklist[len(a.worklist)-1]
		a.worklist = a.worklist[:len(a.worklist)-1]
		a.walkFunc(fn)
	}
}

func (a *specAnalysis) report() {
	a.reporting = true
	// Deterministic order: report in source order of the declarations.
	for _, fn := range a.declOrder {
		if a.reached[fn] {
			a.walkFunc(fn)
		}
	}
}

func (a *specAnalysis) walkFunc(fn *types.Func) {
	fd := a.funcs[fn]
	w := &specWalker{a: a, safe: a.entry[fn]}
	w.walkStmts(fd.Body.List)
}

// mayCharge reports whether calling fn can suspend the strand: directly (a
// strand charge/park/report), through a dynamic call (algorithm code charges
// on every access), or transitively.  Suspension invalidates serialization —
// the strand may resume as a speculator.
func (a *specAnalysis) mayCharge(fn *types.Func) bool {
	if a.isStrandMethod(fn) {
		return true
	}
	if a.isSerialize(fn) {
		return false
	}
	switch a.charges[fn] {
	case 1, 2: // in progress (assume no: cycles resolve optimistically) or no
		return false
	case 3:
		return true
	}
	fd, ok := a.funcs[fn]
	if !ok {
		return false // other package or no body: cannot reach strand state
	}
	a.charges[fn] = 1
	result := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if result {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee, dynamic := a.resolveCall(call)
		if dynamic {
			result = true
			return false
		}
		if callee != nil && callee != fn && callee.Pkg() == a.pass.Pkg && a.mayCharge(callee) {
			result = true
			return false
		}
		return true
	})
	if result {
		a.charges[fn] = 3
	} else {
		a.charges[fn] = 2
	}
	return result
}

// resolveCall returns the statically-known callee, or dynamic=true for a
// call through a function value (field, parameter, variable).  Builtins and
// type conversions are neither.
func (a *specAnalysis) resolveCall(call *ast.CallExpr) (callee *types.Func, dynamic bool) {
	fun := ast.Unparen(call.Fun)
	if tv, ok := a.pass.TypesInfo.Types[fun]; ok && tv.IsType() {
		return nil, false // conversion
	}
	var id *ast.Ident
	switch fun := fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.FuncLit:
		return nil, false // immediately-invoked literal: walked in place
	default:
		return nil, true
	}
	switch obj := a.pass.TypesInfo.Uses[id].(type) {
	case *types.Func:
		return obj, false
	case *types.Builtin:
		return nil, false
	case *types.TypeName:
		return nil, false
	default:
		return nil, true // func-typed var, field, or parameter
	}
}

// ---- the state walker ----

type specWalker struct {
	a    *specAnalysis
	safe bool
}

func (w *specWalker) walkStmts(list []ast.Stmt) (terminated bool) {
	for _, s := range list {
		if w.walkStmt(s) {
			return true
		}
	}
	return false
}

func (w *specWalker) walkStmt(s ast.Stmt) (terminated bool) {
	switch s := s.(type) {
	case nil:
		return false
	case *ast.BlockStmt:
		return w.walkStmts(s.List)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.scanExpr(e)
		}
		return true
	case *ast.BranchStmt:
		// continue/break/goto end the straight-line path.
		return true
	case *ast.IfStmt:
		return w.walkIf(s)
	case *ast.ForStmt:
		w.walkStmt(s.Init)
		w.scanExpr(s.Cond)
		before := w.safe
		w.walkStmts(s.Body.List)
		w.walkStmt(s.Post)
		// Second pass with the met state so back-edge effects are sound.
		w.safe = w.safe && before
		w.walkStmts(s.Body.List)
		w.walkStmt(s.Post)
		w.scanExpr(s.Cond)
		w.safe = w.safe && before
		return false
	case *ast.RangeStmt:
		w.scanExpr(s.X)
		before := w.safe
		w.walkStmts(s.Body.List)
		w.safe = w.safe && before
		w.walkStmts(s.Body.List)
		w.safe = w.safe && before
		return false
	case *ast.SwitchStmt:
		w.walkStmt(s.Init)
		w.scanExpr(s.Tag)
		return w.walkCases(s.Body)
	case *ast.TypeSwitchStmt:
		w.walkStmt(s.Init)
		return w.walkCases(s.Body)
	case *ast.SelectStmt:
		return w.walkCases(s.Body)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.scanExpr(e)
		}
		for _, e := range s.Lhs {
			w.scanExpr(e)
		}
		return false
	case *ast.ExprStmt:
		w.scanExpr(s.X)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
		return false
	case *ast.IncDecStmt:
		w.scanExpr(s.X)
		return false
	case *ast.DeferStmt:
		// The deferred call runs at an unknowable later state.
		saved := w.safe
		w.safe = false
		w.scanExpr(s.Call)
		w.safe = saved
		return false
	case *ast.GoStmt:
		saved := w.safe
		w.safe = false
		w.scanExpr(s.Call)
		w.safe = saved
		return false
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.scanExpr(v)
					}
				}
			}
		}
		return false
	case *ast.SendStmt:
		w.scanExpr(s.Chan)
		w.scanExpr(s.Value)
		return false
	}
	return false
}

func (w *specWalker) walkCases(body *ast.BlockStmt) (terminated bool) {
	entry := w.safe
	out := entry
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.scanExpr(e)
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				w.walkStmt(c.Comm)
			}
			stmts = c.Body
		}
		w.safe = entry
		if !w.walkStmts(stmts) {
			out = out && w.safe
		}
	}
	w.safe = out
	return false
}

func (w *specWalker) walkIf(s *ast.IfStmt) (terminated bool) {
	w.walkStmt(s.Init)
	w.scanExpr(s.Cond)
	guard, negated := specGuardCond(w.a.pass.TypesInfo, s.Cond)
	entry := w.safe
	switch {
	case guard && !negated:
		// `if st.spec { ... }`: the then-branch is definitely speculating,
		// the else/fall-through side is definitely not.
		w.safe = false
		tb := w.walkStmts(s.Body.List)
		thenExit := w.safe
		w.safe = true
		var eb bool
		elseExit := true
		if s.Else != nil {
			eb = w.walkStmt(s.Else)
			elseExit = w.safe
		}
		switch {
		case tb && (s.Else != nil && eb):
			return true
		case tb:
			w.safe = elseExit
		case s.Else != nil && eb:
			w.safe = thenExit
		default:
			w.safe = thenExit && elseExit
		}
		return false
	case guard && negated:
		// `if !st.spec { ... }`: then-branch non-speculative, fall-through
		// speculating.
		w.safe = true
		tb := w.walkStmts(s.Body.List)
		thenExit := w.safe
		w.safe = false
		var eb bool
		elseExit := false
		if s.Else != nil {
			eb = w.walkStmt(s.Else)
			elseExit = w.safe
		}
		switch {
		case tb && (s.Else != nil && eb):
			return true
		case tb:
			w.safe = elseExit
		case s.Else != nil && eb:
			w.safe = thenExit
		default:
			w.safe = thenExit && elseExit
		}
		return false
	}
	tb := w.walkStmts(s.Body.List)
	thenExit := w.safe
	w.safe = entry
	var eb bool
	elseExit := entry
	if s.Else != nil {
		eb = w.walkStmt(s.Else)
		elseExit = w.safe
	}
	switch {
	case tb && eb:
		return true
	case tb:
		w.safe = elseExit
	case eb:
		w.safe = thenExit
	default:
		w.safe = thenExit && elseExit
	}
	return false
}

// specGuardCond reports whether cond tests a strand's spec flag, and with
// which polarity ("st.spec" vs "!st.spec").  Conjunctions like
// `st != nil && st.spec` keep the positive polarity.
func specGuardCond(info *types.Info, cond ast.Expr) (found, negated bool) {
	var visit func(e ast.Expr, neg bool)
	visit = func(e ast.Expr, neg bool) {
		switch e := ast.Unparen(e).(type) {
		case *ast.UnaryExpr:
			if e.Op == token.NOT {
				visit(e.X, !neg)
			}
		case *ast.BinaryExpr:
			visit(e.X, neg)
			visit(e.Y, neg)
		case *ast.SelectorExpr:
			if e.Sel.Name != "spec" {
				return
			}
			if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
				if named := namedOf(sel.Recv()); named != nil && named.Obj().Name() == "strand" {
					found, negated = true, neg
				}
			}
		}
	}
	visit(cond, false)
	return found, negated
}

func namedOf(t types.Type) *types.Named {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// scanExpr walks one expression in evaluation-ish order: operand reads are
// checked at the current state, then each call applies its state effect.
func (w *specWalker) scanExpr(e ast.Expr) {
	switch e := e.(type) {
	case nil:
		return
	case *ast.Ident, *ast.BasicLit:
		return
	case *ast.ParenExpr:
		w.scanExpr(e.X)
	case *ast.SelectorExpr:
		w.scanExpr(e.X)
		w.checkSelector(e)
	case *ast.IndexExpr:
		w.scanExpr(e.X)
		w.scanExpr(e.Index)
	case *ast.SliceExpr:
		w.scanExpr(e.X)
		w.scanExpr(e.Low)
		w.scanExpr(e.High)
		w.scanExpr(e.Max)
	case *ast.StarExpr:
		w.scanExpr(e.X)
	case *ast.UnaryExpr:
		w.scanExpr(e.X)
	case *ast.BinaryExpr:
		w.scanExpr(e.X)
		w.scanExpr(e.Y)
	case *ast.TypeAssertExpr:
		w.scanExpr(e.X)
	case *ast.KeyValueExpr:
		w.scanExpr(e.Value)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			w.scanExpr(elt)
		}
	case *ast.FuncLit:
		w.walkLit(e)
	case *ast.CallExpr:
		w.scanExpr(e.Fun)
		for _, arg := range e.Args {
			if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok && w.a.deferred[lit] {
				continue // deferFork closure: runs on the engine thread
			}
			w.scanExpr(arg)
		}
		w.applyCall(e)
	}
}

// walkLit checks a function literal.  Its body runs at an unknowable later
// moment — as a forked strand's root, possibly speculating — so it is
// walked from the unsafe entry state regardless of the creation site.
func (w *specWalker) walkLit(lit *ast.FuncLit) {
	if w.a.deferred[lit] {
		return
	}
	inner := &specWalker{a: w.a, safe: false}
	inner.walkStmts(lit.Body.List)
}

// applyCall propagates the current state into a same-package callee and
// applies the call's effect on the caller's state.
func (w *specWalker) applyCall(call *ast.CallExpr) {
	callee, dynamic := w.a.resolveCall(call)
	if dynamic {
		// A call through a function value reaches algorithm code, which
		// charges on every access: the strand may suspend and resume
		// speculating.
		w.safe = false
		return
	}
	if callee == nil || callee.Pkg() != w.a.pass.Pkg {
		return
	}
	if w.a.isSerialize(callee) {
		w.safe = true
		return
	}
	if !w.a.reporting {
		w.a.meetEntry(callee, w.safe)
	}
	if w.a.mayCharge(callee) {
		w.safe = false
	}
}

// checkSelector flags a scheduler-state field access outside serialized
// context.
func (w *specWalker) checkSelector(sel *ast.SelectorExpr) {
	if w.safe {
		return
	}
	s, ok := w.a.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	named := namedOf(s.Recv())
	if named == nil || named.Obj().Pkg() == nil || !specSafePath(named.Obj().Pkg().Path()) {
		return
	}
	typeName := named.Obj().Name()
	field := sel.Sel.Name
	switch {
	case typeName == "engine" && !engineSafeFields[field]:
	case specUnsafeTypes[typeName]:
	default:
		return
	}
	if !w.a.reporting || w.a.reported[sel.Sel.Pos()] {
		return
	}
	w.a.reported[sel.Sel.Pos()] = true
	w.a.pass.Reportf(sel.Sel.Pos(),
		"scheduler state %s.%s read while possibly speculating: dominate it with c.serialize(), or guard the speculative side with st.spec (DESIGN.md §11)", typeName, field)
}
