package analysis_test

import (
	"testing"

	"oblivhm/internal/analysis"
	"oblivhm/internal/analysis/atest"
)

func TestObliviousAnalyzer(t *testing.T) {
	atest.Run(t, "testdata", analysis.Oblivious,
		"oblivhm/internal/fft",       // bad: imports internal/hm (and shows _test.go exemption)
		"oblivhm/internal/listrank",  // bad: reads Session.Machine()
		"oblivhm/internal/noalgo",    // bad: NO algorithm reads World.P / World.B
		"oblivhm/internal/transpose", // good: Ctx + Session allocation only
		"oblivhm/internal/graph",     // good: violation covered by //oblivcheck:allow
		"oblivhm/internal/harness",   // good: not an algorithm package
	)
}
