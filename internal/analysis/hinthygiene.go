package analysis

import (
	"go/ast"
	"go/types"
)

// HintHygiene enforces the SB hint's contract at both ends of the API.
//
// Algorithm side: every core.Task composite literal must declare a Space
// bound, and the bound must be derived from the task's input size — a
// non-constant expression. A constant (or missing, hence zero) bound is
// how a task lies its way past the admission control that the paper's
// space-bounded scheduler depends on.
//
// Engine side (package internal/core): every join taken from the free list
// with newJoin must be handed back on every control path, via waitJoin (or
// putJoin directly) before the function returns. A leaked join is a strand
// that can never be unparked — the deadlock backstop catches it at run
// time, this catches it at vet time.
var HintHygiene = &Analyzer{
	Name: "hinthygiene",
	Doc:  "every SpawnSB task carries a derived space bound; every engine join is waited on all control paths",
	Run:  runHintHygiene,
}

func runHintHygiene(pass *Pass) {
	if !modulePackage(pass.Path) {
		return
	}
	eachSourceFile(pass, func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[lit]
			if !ok || !namedFrom(tv.Type, "internal/core", "Task") {
				return true
			}
			checkTaskLit(pass, lit)
			return true
		})
	})
	if enginePackage(pass.Path) {
		eachSourceFile(pass, func(f *ast.File) {
			checkJoinPaths(pass, f)
		})
	}
}

// checkTaskLit validates the Space field of one core.Task literal.
func checkTaskLit(pass *Pass, lit *ast.CompositeLit) {
	var space ast.Expr
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Space" {
				space = kv.Value
			}
			continue
		}
		// Positional form: Space is the first field.
		if i == 0 {
			space = elt
		}
	}
	if space == nil {
		pass.Reportf(lit.Pos(),
			"Task literal without a Space bound: the SB scheduler admits tasks by their declared space, an absent bound is an implicit 0")
		return
	}
	if tv, ok := pass.TypesInfo.Types[space]; ok && tv.Value != nil {
		pass.Reportf(space.Pos(),
			"Task space bound is the constant %s: the paper's s(τ) must be derived from the task's input size, not hard-coded", tv.Value)
	}
}

// ---- engine join pairing ----

// checkJoinPaths verifies, per function body (FuncDecl and FuncLit bodies
// are separate scopes), that a join obtained from newJoin is released by
// waitJoin/putJoin on every control path.
func checkJoinPaths(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch n := n.(type) {
		case *ast.FuncDecl:
			body = n.Body
		case *ast.FuncLit:
			body = n.Body
		default:
			return true
		}
		if body != nil {
			checkJoinBody(pass, body)
		}
		return true
	})
}

// joinTracker walks one function body tracking a single join variable.
type joinTracker struct {
	pass    *Pass
	obj     types.Object // the join variable, nil until newJoin is seen
	newPos  ast.Node     // the newJoin assignment, for fall-off reports
	created bool
}

func checkJoinBody(pass *Pass, body *ast.BlockStmt) {
	t := &joinTracker{pass: pass}
	joined, terminated := t.walkStmts(body.List, false)
	if t.created && !terminated && !joined {
		pass.Reportf(t.newPos.Pos(),
			"join from newJoin is not released by waitJoin/putJoin on the fall-through path")
	}
}

// walkStmts walks a statement list. joined says whether the tracked join
// has been released on the path entering the list; the returns are the
// release state on the fall-through path and whether every path through
// the list terminates (return/panic).
func (t *joinTracker) walkStmts(list []ast.Stmt, joined bool) (joinedOut, terminated bool) {
	for _, s := range list {
		joined, terminated = t.walkStmt(s, joined)
		if terminated {
			return joined, true
		}
	}
	return joined, false
}

func (t *joinTracker) walkStmt(s ast.Stmt, joined bool) (joinedOut, terminated bool) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		if !t.created && t.captureNewJoin(s) {
			return false, false // tracking starts un-joined
		}
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if t.isRelease(call) {
				return true, false
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return joined, true
			}
		}
	case *ast.DeferStmt:
		if t.isRelease(s.Call) {
			// A deferred release covers every later path.
			return true, false
		}
	case *ast.ReturnStmt:
		if t.created && !joined {
			t.pass.Reportf(s.Pos(),
				"return without releasing the join from newJoin: every spawn must be matched by a waitJoin on all control paths")
		}
		return joined, true
	case *ast.BlockStmt:
		return t.walkStmts(s.List, joined)
	case *ast.LabeledStmt:
		return t.walkStmt(s.Stmt, joined)
	case *ast.IfStmt:
		jb, tb := t.walkStmts(s.Body.List, joined)
		je, te := joined, false
		if s.Else != nil {
			je, te = t.walkStmt(s.Else, joined)
		}
		switch {
		case tb && te:
			return joined, true
		case tb:
			return je, false
		case te:
			return jb, false
		default:
			return jb && je, false
		}
	case *ast.ForStmt:
		// The body may run zero times: keep the entry state for the
		// fall-through path, but still flag returns inside the body.
		t.walkStmts(s.Body.List, joined)
		return joined, false
	case *ast.RangeStmt:
		t.walkStmts(s.Body.List, joined)
		return joined, false
	case *ast.SwitchStmt:
		return t.walkCases(s.Body, joined)
	case *ast.TypeSwitchStmt:
		return t.walkCases(s.Body, joined)
	case *ast.SelectStmt:
		return t.walkCases(s.Body, joined)
	}
	return joined, false
}

// walkCases handles switch/select clause bodies conservatively: clauses are
// checked for unreleased returns, and the fall-through keeps the entry
// state (a missing default always falls through unchanged).
func (t *joinTracker) walkCases(body *ast.BlockStmt, joined bool) (joinedOut, terminated bool) {
	for _, clause := range body.List {
		switch c := clause.(type) {
		case *ast.CaseClause:
			t.walkStmts(c.Body, joined)
		case *ast.CommClause:
			t.walkStmts(c.Body, joined)
		}
	}
	return joined, false
}

// captureNewJoin recognizes `jn := e.newJoin()` and begins tracking jn.
func (t *joinTracker) captureNewJoin(s *ast.AssignStmt) bool {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := funcObj(t.pass.TypesInfo, call)
	if fn == nil || fn.Name() != "newJoin" {
		return false
	}
	id, ok := s.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	obj := t.pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = t.pass.TypesInfo.Uses[id]
	}
	if obj == nil {
		return false
	}
	t.obj, t.newPos, t.created = obj, s, true
	return true
}

// isRelease recognizes waitJoin(jn) / putJoin(jn) for the tracked jn.
func (t *joinTracker) isRelease(call *ast.CallExpr) bool {
	if !t.created {
		return false
	}
	fn := funcObj(t.pass.TypesInfo, call)
	if fn == nil || (fn.Name() != "waitJoin" && fn.Name() != "putJoin") {
		return false
	}
	for _, arg := range call.Args {
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok && t.pass.TypesInfo.Uses[id] == t.obj {
			return true
		}
	}
	return false
}
