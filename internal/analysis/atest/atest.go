// Package atest is a small stdlib-only analogue of
// golang.org/x/tools/go/analysis/analysistest: it loads GOPATH-style
// fixture packages from a testdata directory, runs one analyzer over them,
// and matches the findings against `// want` expectations in the fixture
// source.
//
// Fixture layout mirrors analysistest: testdata/src/<import/path>/*.go.
// Imports between fixture packages resolve inside the testdata tree;
// standard-library imports are type-checked from $GOROOT source, so the
// harness needs no pre-compiled export data and works offline.
//
// An expectation is a comment on the flagged line:
//
//	w.P // want `World\.P`
//
// Each backquoted or double-quoted string is a regular expression that
// must match the message of exactly one finding on that line; findings
// without a matching expectation, and expectations without a finding, both
// fail the test.  A pattern may pin the finding's column with a `N:`
// prefix, which disambiguates two findings of the same shape on one line:
//
//	a[i] += a[j] // want 4:`secret-derived index` 12:`secret-derived index`
//
// Expectations are matched per file, so multi-file fixture packages work:
// each finding is matched against the wants of the file it occurred in.
package atest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"oblivhm/internal/analysis"
)

// Run loads each fixture package under testdata/src, applies the analyzer,
// and reports every mismatch between findings and // want expectations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	l := newLoader(testdata)
	for _, path := range pkgPaths {
		p, err := l.load(path)
		if err != nil {
			t.Errorf("loading fixture %s: %v", path, err)
			continue
		}
		diags := analysis.Run([]*analysis.Analyzer{a}, l.fset, p.files, p.pkg, p.info, path)
		checkExpectations(t, l.fset, path, p.files, diags)
	}
}

// ---- fixture loading ----

type loadedPkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

type loader struct {
	fset *token.FileSet
	src  string // testdata/src
	pkgs map[string]*loadedPkg
	std  types.Importer
}

func newLoader(testdata string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset: fset,
		src:  filepath.Join(testdata, "src"),
		pkgs: make(map[string]*loadedPkg),
		std:  importer.ForCompiler(fset, "source", nil),
	}
}

// Import resolves an import encountered while type-checking a fixture:
// fixture-tree packages load recursively, anything else is stdlib.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	dir := filepath.Join(l.src, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.pkg, nil
	}
	return l.std.Import(path)
}

func (l *loader) load(path string) (*loadedPkg, error) {
	if p, ok := l.pkgs[path]; ok {
		if p == nil {
			return nil, fmt.Errorf("import cycle through %s", path)
		}
		return p, nil
	}
	l.pkgs[path] = nil // cycle guard
	dir := filepath.Join(l.src, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	cfg := &types.Config{Importer: l}
	pkg, err := cfg.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	p := &loadedPkg{pkg: pkg, files: files, info: info}
	l.pkgs[path] = p
	return p, nil
}

// ---- expectation matching ----

type want struct {
	file string
	line int
	col  int // 0 = any column
	rx   *regexp.Regexp
	text string
}

// wantRx pulls the quoted expectations — each optionally pinned to a
// column by a `N:` prefix — out of a `// want` comment.
var wantRx = regexp.MustCompile("(?:([0-9]+):)?(?:`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\")")

func checkExpectations(t *testing.T, fset *token.FileSet, path string, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRx.FindAllStringSubmatch(text[len("want "):], -1) {
					col := 0
					if m[1] != "" {
						col, _ = strconv.Atoi(m[1])
					}
					lit := m[2]
					if m[3] != "" || lit == "" {
						if unq, err := strconv.Unquote(`"` + m[3] + `"`); err == nil {
							lit = unq
						}
					}
					rx, err := regexp.Compile(lit)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, lit, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, col: col, rx: rx, text: lit})
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.rx == nil || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.col != 0 && w.col != pos.Column {
				continue
			}
			if w.rx.MatchString(d.Message) {
				w.rx = nil // consumed
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected finding in %s: %s", pos, path, d.Message)
		}
	}
	for _, w := range wants {
		if w.rx == nil {
			continue
		}
		if w.col != 0 {
			t.Errorf("%s:%d:%d: expected finding matching %q at this column, got none", w.file, w.line, w.col, w.text)
		} else {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.text)
		}
	}
}
