// Package transpose implements MO-MT, the multicore-oblivious matrix
// transposition algorithm of paper Figure 2, together with two baselines
// used by the experiment harness: a naive parallel transpose and the
// recursive cache-oblivious transpose (whose parallelisation has Θ(log n)
// critical path, versus MO-MT's optimal O(B1) — the point made under
// Theorem 1).
package transpose

// The transpose kernels are data-oblivious: the Morton routing depends on
// indices only, so the access trace is a function of the matrix shape.
// The dataoblivious analyzer enforces this statically; the trace-equality
// harness (`make trace-check`) confirms it at runtime.
//
//oblivcheck:dataoblivious

import (
	"fmt"

	"oblivhm/internal/bitint"
	"oblivhm/internal/core"
)

// SpaceBound returns the space bound of MO-MT on an n×n matrix: input,
// output and the bit-interleaved intermediate.
func SpaceBound(n int) int64 { return 3 * int64(n) * int64(n) }

// MOMT transposes the n×n matrix A into AT using the CGC-scheduled
// algorithm of Figure 2: two parallel loops routed through an intermediate
// array I holding A in bit-interleaved (Morton) order.  A and AT must be
// dense row-major (stride == cols) square matrices with n a power of two;
// A and AT may not alias.
//
//oblivcheck:secret A AT I
func MOMT(c *core.Ctx, A, AT core.Mat, I core.F64) {
	n := A.Rows
	mustSquarePow2(A)
	mustSquarePow2(AT)
	if I.N < n*n {
		I = c.NewF64(n * n)
	}
	nn := n * n
	// Step 1 [CGC]: I[k] = A[β⁻¹(k)] — store A in Morton order.
	c.PFor(nn, 1, func(cc *core.Ctx, lo, hi int) {
		for k := lo; k < hi; k++ {
			i, j := bitint.Deinterleave(uint64(k))
			I.Set(cc, k, A.At(cc, int(i), int(j)))
		}
	})
	// Step 2 [CGC]: AT[i,j] = I[β(j,i)].
	c.PFor(nn, 1, func(cc *core.Ctx, lo, hi int) {
		for k := lo; k < hi; k++ {
			i, j := k/n, k%n
			AT.Set(cc, i, j, I.At(cc, int(bitint.Interleave(uint64(j), uint64(i)))))
		}
	})
}

// MOMTInPlaceRowFFT is the variant MO-FFT needs: it transposes A into AT
// where both are given as flat vectors of complex numbers interpreted as
// n×n row-major matrices.  The intermediate stores bit-interleaved complex
// values (two words per element).
//
//oblivcheck:secret a at scratch
func MOMTComplex(c *core.Ctx, a, at core.C128, n int, scratch core.C128) {
	if a.N < n*n || at.N < n*n {
		panic("transpose: complex views too small")
	}
	if scratch.N < n*n {
		scratch = c.NewC128(n * n)
	}
	nn := n * n
	c.PFor(nn, 2, func(cc *core.Ctx, lo, hi int) {
		for k := lo; k < hi; k++ {
			i, j := bitint.Deinterleave(uint64(k))
			scratch.Set(cc, k, a.At(cc, int(i)*n+int(j)))
		}
	})
	c.PFor(nn, 2, func(cc *core.Ctx, lo, hi int) {
		for k := lo; k < hi; k++ {
			i, j := k/n, k%n
			at.Set(cc, k, scratch.At(cc, int(bitint.Interleave(uint64(j), uint64(i)))))
		}
	})
}

// Naive is the baseline parallel transpose: a CGC loop over rows of AT
// reading columns of A.  Column-order reads destroy spatial locality, so it
// incurs Θ(n²) misses once n exceeds the cache size (vs MO-MT's n²/B).
//
//oblivcheck:secret A AT
func Naive(c *core.Ctx, A, AT core.Mat) {
	n := A.Rows
	c.PFor(n, n, func(cc *core.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 0; j < n; j++ {
				AT.Set(cc, i, j, A.At(cc, j, i))
			}
		}
	})
}

// Recursive is the parallel cache-oblivious recursive transpose: split the
// matrix into quadrants and recurse, swapping the off-diagonal quadrants.
// Scheduled with SB (space bound 2m² per subproblem).  Its critical path is
// Θ(log n), which is why the paper prefers the constant-depth MO-MT.
//
//oblivcheck:secret A AT
func Recursive(c *core.Ctx, A, AT core.Mat) {
	n := A.Rows
	if n <= 8 {
		for i := 0; i < n; i++ {
			for j := 0; j < A.Cols; j++ {
				AT.Set(c, j, i, A.At(c, i, j))
			}
		}
		return
	}
	a11, a12, a21, a22 := A.Quads()
	t11, t12, t21, t22 := AT.Quads()
	space := int64(n) * int64(n) / 2 // 2*(n/2)^2 per recursive task
	c.SpawnSB(
		core.Task{Space: space, Fn: func(cc *core.Ctx) { Recursive(cc, a11, t11) }},
		core.Task{Space: space, Fn: func(cc *core.Ctx) { Recursive(cc, a12, t21) }},
		core.Task{Space: space, Fn: func(cc *core.Ctx) { Recursive(cc, a21, t12) }},
		core.Task{Space: space, Fn: func(cc *core.Ctx) { Recursive(cc, a22, t22) }},
	)
}

func mustSquarePow2(m core.Mat) {
	if m.Rows != m.Cols || m.Stride != m.Cols || !bitint.IsPow2(m.Rows) {
		panic(fmt.Sprintf("transpose: need dense square power-of-two matrix, got %dx%d stride %d",
			m.Rows, m.Cols, m.Stride))
	}
}

// RectWords transposes the r×cols row-major word matrix src into dst
// (cols×r, row-major) with the cache-oblivious recursive schedule: split
// the larger dimension in half and recurse.  It is the workhorse behind the
// sorting algorithm's count-matrix reshapes, where r and cols are arbitrary
// (not powers of two).
//
//oblivcheck:secret src dst
func RectWords(c *core.Ctx, src, dst core.U64, r, cols int) {
	rectWords(c, src, dst, 0, 0, r, cols, r, cols)
}

// rectWords transposes the (r0,c0)+(rr×cc) tile.  rs and cs are the full
// matrix dimensions (src is rs×cs, dst is cs×rs).
func rectWords(c *core.Ctx, src, dst core.U64, r0, c0, rr, cc, rs, cs int) {
	if rr <= 8 && cc <= 8 {
		for i := r0; i < r0+rr; i++ {
			for j := c0; j < c0+cc; j++ {
				dst.Set(c, j*rs+i, src.At(c, i*cs+j))
			}
		}
		return
	}
	if rr >= cc {
		h := rr / 2
		rectWords(c, src, dst, r0, c0, h, cc, rs, cs)
		rectWords(c, src, dst, r0+h, c0, rr-h, cc, rs, cs)
	} else {
		h := cc / 2
		rectWords(c, src, dst, r0, c0, rr, h, rs, cs)
		rectWords(c, src, dst, r0, c0+h, rr, cc-h, rs, cs)
	}
}
