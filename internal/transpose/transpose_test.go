package transpose

import (
	"math/rand"
	"testing"

	"oblivhm/internal/core"
	"oblivhm/internal/hm"
)

func fillRandom(s *core.Session, m core.Mat, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			s.PokeM(m, i, j, rng.Float64())
		}
	}
}

func checkTransposed(t *testing.T, s *core.Session, A, AT core.Mat) {
	t.Helper()
	for i := 0; i < A.Rows; i++ {
		for j := 0; j < A.Cols; j++ {
			if s.PeekM(AT, j, i) != s.PeekM(A, i, j) {
				t.Fatalf("AT[%d][%d] = %v, want %v", j, i, s.PeekM(AT, j, i), s.PeekM(A, i, j))
			}
		}
	}
}

func TestMOMTCorrect(t *testing.T) {
	for _, mode := range []string{"sim", "native"} {
		t.Run(mode, func(t *testing.T) {
			for _, n := range []int{2, 8, 32, 64} {
				var s *core.Session
				if mode == "sim" {
					s = core.NewSim(hm.MustMachine(hm.HM4(4, 4)))
				} else {
					s = core.NewNative(4)
				}
				A := s.NewMat(n, n)
				AT := s.NewMat(n, n)
				I := s.NewF64(n * n)
				fillRandom(s, A, int64(n))
				s.Run(SpaceBound(n), func(c *core.Ctx) { MOMT(c, A, AT, I) })
				checkTransposed(t, s, A, AT)
			}
		})
	}
}

func TestMOMTComplex(t *testing.T) {
	s := core.NewNative(4)
	n := 16
	a := s.NewC128(n * n)
	at := s.NewC128(n * n)
	for i := 0; i < n*n; i++ {
		s.PokeC(a, i, complex(float64(i), -float64(i)))
	}
	s.Run(SpaceBound(n)*2, func(c *core.Ctx) { MOMTComplex(c, a, at, n, core.C128{}) })
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if s.PeekC(at, j*n+i) != s.PeekC(a, i*n+j) {
				t.Fatalf("complex transpose wrong at %d,%d", i, j)
			}
		}
	}
}

func TestBaselinesCorrect(t *testing.T) {
	s := core.NewNative(4)
	n := 32
	A := s.NewMat(n, n)
	fillRandom(s, A, 7)
	ATn := s.NewMat(n, n)
	ATr := s.NewMat(n, n)
	s.Run(SpaceBound(n), func(c *core.Ctx) {
		Naive(c, A, ATn)
		Recursive(c, A, ATr)
	})
	checkTransposed(t, s, A, ATn)
	checkTransposed(t, s, A, ATr)
}

func TestMOMTPanicsOnBadShape(t *testing.T) {
	s := core.NewNative(1)
	A := s.NewMat(8, 8)
	AT := s.NewMat(8, 8)
	bad := A.Sub(0, 0, 4, 4) // stride != cols
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for strided view")
		}
	}()
	s.Run(SpaceBound(8), func(c *core.Ctx) { MOMT(c, bad, AT, core.F64{}) })
}

// TestTheorem1MissBound: MO-MT incurs O(n²/(q_i·B_i) + B_i) misses per
// level-i cache (Theorem 1).  We check max-per-cache misses against the
// formula with a generous constant, and that the naive baseline is
// asymptotically worse at L1.
func TestTheorem1MissBound(t *testing.T) {
	cfg := hm.MC3(4)
	n := 128 // n² = 16384 >= C2? C2 = 2^16; relax: still dominated by scans
	m := hm.MustMachine(cfg)
	s := core.NewSim(m)
	A := s.NewMat(n, n)
	AT := s.NewMat(n, n)
	I := s.NewF64(n * n)
	fillRandom(s, A, 1)
	st := s.RunCold(SpaceBound(n), func(c *core.Ctx) { MOMT(c, A, AT, I) })
	for _, l := range st.Sim.Levels {
		b := cfg.Levels[l.Level-1].Block
		q := int64(cfg.CachesAt(l.Level))
		bound := 24 * (int64(n)*int64(n)/(q*b) + b)
		if l.MaxMisses > bound {
			t.Errorf("L%d max misses = %d > bound %d", l.Level, l.MaxMisses, bound)
		}
	}

	// Naive transpose at L1: each of the n² column-order reads of A misses
	// once n*B1 exceeds C1 — so it must be >> 4x MO-MT's traffic.
	s2 := core.NewSim(hm.MustMachine(cfg))
	A2 := s2.NewMat(n, n)
	AT2 := s2.NewMat(n, n)
	fillRandom(s2, A2, 1)
	st2 := s2.RunCold(SpaceBound(n), func(c *core.Ctx) { Naive(c, A2, AT2) })
	if st2.Sim.Levels[0].TotalMisses < 4*st.Sim.Levels[0].TotalMisses {
		t.Errorf("naive L1 misses %d not >> MO-MT %d",
			st2.Sim.Levels[0].TotalMisses, st.Sim.Levels[0].TotalMisses)
	}
}

// TestTheorem1ParallelSpeedup: MO-MT has O(n²/p + B1) parallel steps; the
// 8-core machine must be several times faster than the 1-core one.
func TestTheorem1ParallelSpeedup(t *testing.T) {
	run := func(cfg hm.Config) int64 {
		s := core.NewSim(hm.MustMachine(cfg))
		n := 64
		A := s.NewMat(n, n)
		AT := s.NewMat(n, n)
		I := s.NewF64(n * n)
		fillRandom(s, A, 3)
		return s.RunCold(SpaceBound(n), func(c *core.Ctx) { MOMT(c, A, AT, I) }).Steps
	}
	par := run(hm.MC3(8))
	seq := run(hm.MC3(1))
	if par*4 > seq {
		t.Errorf("speedup too low: 8-core %d steps vs 1-core %d", par, seq)
	}
}

// TestRecursiveCriticalPath: the recursive baseline's span grows with log n
// while MO-MT's stays flat; with ample cores, recursive steps must exceed
// MO-MT steps for large n (the reason Figure 2 exists).
func TestRecursiveVsMOMTSpan(t *testing.T) {
	cfg := hm.MC3(8)
	n := 128
	mo := func() int64 {
		s := core.NewSim(hm.MustMachine(cfg))
		A, AT, I := s.NewMat(n, n), s.NewMat(n, n), s.NewF64(n*n)
		fillRandom(s, A, 5)
		return s.RunCold(SpaceBound(n), func(c *core.Ctx) { MOMT(c, A, AT, I) }).Steps
	}()
	rec := func() int64 {
		s := core.NewSim(hm.MustMachine(cfg))
		A, AT := s.NewMat(n, n), s.NewMat(n, n)
		fillRandom(s, A, 5)
		return s.RunCold(SpaceBound(n), func(c *core.Ctx) { Recursive(c, A, AT) }).Steps
	}()
	// Not a strict dominance claim at this size; but recursive must not be
	// dramatically faster (it does a third of the memory traffic: no
	// intermediate) and both must complete.  Sanity ratio:
	if mo > 6*rec {
		t.Errorf("MO-MT %d steps vs recursive %d: constant blowup too large", mo, rec)
	}
}

func TestRectWords(t *testing.T) {
	s := core.NewNative(2)
	for _, dim := range [][2]int{{1, 1}, {3, 7}, {16, 16}, {13, 40}, {100, 3}} {
		r, c := dim[0], dim[1]
		src := s.NewU64(r * c)
		dst := s.NewU64(r * c)
		for i := 0; i < r*c; i++ {
			s.PokeU(src, i, uint64(i)*3+1)
		}
		s.Run(int64(2*r*c), func(cc *core.Ctx) { RectWords(cc, src, dst, r, c) })
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				if s.PeekU(dst, j*r+i) != s.PeekU(src, i*c+j) {
					t.Fatalf("%dx%d: dst[%d][%d] wrong", r, c, j, i)
				}
			}
		}
	}
}
