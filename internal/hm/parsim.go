package hm

// Parallel cache replay (DESIGN.md §8).
//
// The engine charges every load/store exactly one virtual operation whether
// it hits or misses, so the scheduler's decisions — round boundaries, budget
// exhaustion, admissions, placements, steals, chaos draws — are completely
// independent of cache state.  The cache hierarchy is a pure observer of the
// access stream.  That is the determinism contract's gift to parallelism:
// the stream can be recorded on the execution thread and replayed into the
// cache model on other OS threads, and every counter comes out byte-identical
// to the serial walk because each cache consumes exactly its serial input
// sequence in its serial order.
//
// Sharding is vertical, by cache subtree.  Let split be the deepest level
// whose cache count exceeds one (q is monotone nonincreasing going up, so
// levels above split all have a single cache).  The tree below and including
// level split partitions into q_split disjoint subtrees, one per level-split
// cache; each subtree is one shard, replayed by the worker pool.  Levels
// above split form a single chain replayed by a dedicated in-order worker.
// This decomposition is exact:
//
//   - An access by core c touches, at levels <= split, only caches of c's
//     shard (its path), so per-shard replay in global segment order
//     reproduces each cache's serial access sequence.
//   - Coherence invalidations at level i <= split only ever target level-i
//     caches, each of which lies in exactly one shard; a shard derives them
//     from the full stream (its own cores' accesses plus the write records
//     of foreign segments) against shard-local holder masks, which
//     partition the serial holder masks.
//   - Levels above split have q = 1: the only cache is on every core's
//     path, so it can never receive an off-path invalidation, and its
//     holder bit is write-only (invalidateOffPath masks it out).  The chain
//     worker therefore needs no holder bookkeeping at all.
//   - A record reaches level split+1 in the serial walk iff it missed every
//     level <= split; shards forward exactly those records, in order.
//
// When split is 0 (a single-core machine: the private-L1 rule forces
// q_1 = p) there are no shards and the chain worker replays whole segments
// from level 1.
//
// Lifecycle: the pipeline starts lazily on the first sealed batch, is
// drained by sync() (a fence batch round-trips through the chain worker),
// and torn down by stop(); the core engine stops the pipeline at the end of
// every run so sessions need no Close.  Batches are recycled through a
// bounded free list, which also backpressures the recording thread when the
// replay falls behind.

import (
	"math/bits"
	"runtime"
	"sync"
)

const (
	// parSegCap caps one segment (a maximal single-core run of accesses).
	// The engine's lockstep rounds switch cores every `quantum` operations,
	// so most segments are far smaller; the cap only matters during solo
	// batch grants.
	parSegCap = 4096
	// parBatchRecs is the record count at which a batch is sealed and
	// handed to the pipeline.
	parBatchRecs = 1 << 16
	// parMaxBatches bounds in-flight batches; once the pipeline is this far
	// behind, the recording thread blocks on the recycle list.
	parMaxBatches = 8
	// parMaxEpochBatches bounds in-flight epoch batches (zero-copy loans of
	// fan-in arrays, dispatchFanEpoch).  They recycle through their own free
	// list: their segments alias loaned arrays, so they must never enter the
	// regular batch pool.
	parMaxEpochBatches = 4
)

// parSeg is a maximal run of consecutive accesses issued by one core.
// Segment order across a batch sequence is global issue order (the engine
// records from a single goroutine), which is what shard and chain replay
// rely on.
type parSeg struct {
	core int
	recs []uint64 // addr<<1 | writeBit, in issue order
	// wrecs duplicates the write records (in order) when coherence sharding
	// is active: foreign shards only need a segment's writes, and scanning
	// the full stream once per shard would multiply the replay work by the
	// shard count.  Processing a foreign segment's writes as one block is
	// order-exact: segments never interleave, so every serial interleaving
	// constraint is between whole segments, which the batch order preserves.
	wrecs []uint64
}

// parBatch is the unit of pipeline work: sealed segments plus, per segment,
// the records that missed every shard level (filled by the owning shard,
// consumed in order by the chain worker).  When ep is non-nil the batch is
// an epoch batch: segs/nseg/nrec are unused and the work is the loaned
// fan-in chunk grid described by ep, with out indexed by chunk.
type parBatch struct {
	segs  []*parSeg
	nseg  int
	nrec  int
	out   [][]uint64
	ep    *fanEpoch
	fence chan struct{} // non-nil marks a drain fence, not data
}

// fanEpoch is a zero-copy loan of fan-in recording arrays (fanin.go) into
// the pipeline: the chunks of rounds [lo, hi) for the listed cores, sliced
// on demand from the loaned arrays via the recorded round marks.  The arrays
// are read-only while loaned (the engine thread may itself still read later
// chunks of the same arrays through FlushFanChunk); the recording side only
// writes to fresh arrays after StartRoundFanIn swaps the loaned ones out.
// Chunk k = (r-lo)*len(cores) + ci is core cores[ci]'s round-r chunk —
// (round, core) lexicographic, the serial commit order.
type fanEpoch struct {
	cores  []int
	lo, hi int
	recs   [][]uint64 // [ci]: loaned record array of cores[ci]
	wrecs  [][]uint64 // [ci]: loaned write side-list, trackWrites only
	marks  [][]int    // [ci]: loaned round marks
	wmarks [][]int    // [ci]: loaned write-side round marks, trackWrites only
}

func (ep *fanEpoch) nchunks() int { return (ep.hi - ep.lo) * len(ep.cores) }

// chunk slices core cores[ci]'s records for absolute round r from the
// loaned arrays, exactly as roundFanIn.fanChunk would.  Bulk ranges cover
// only completed rounds, so r < len(marks) always.
func (ep *fanEpoch) chunk(ci, r int) []uint64 {
	marks := ep.marks[ci]
	lo := 0
	if r > 0 {
		lo = marks[r-1]
	}
	return ep.recs[ci][lo:marks[r]]
}

// wchunk is chunk over the writes-only side list.
func (ep *fanEpoch) wchunk(ci, r int) []uint64 {
	wmarks := ep.wmarks[ci]
	lo := 0
	if r > 0 {
		lo = wmarks[r-1]
	}
	return ep.wrecs[ci][lo:wmarks[r]]
}

type parTask struct {
	b  *parBatch
	sh *parShard
	wg *sync.WaitGroup
}

// parShard owns one level-split subtree: levels 1..levels of the cores in
// [coreLo, coreHi).  All its mutable state (its caches, its holder masks)
// is touched only by the worker currently running this shard's task, and
// batches are fanned one at a time, so shard replay needs no locks.
type parShard struct {
	sim            *parSim
	coreLo, coreHi int
	levels         int        // replays cache levels 1..levels
	base           []int      // base[i]: ByLevel[i] index of this shard's first cache
	ownLocal       [][]uint64 // [core-coreLo][i]: shard-local holder bit of the core's level-(i+1) cache
	holders        [][]uint64 // shard-local holder masks by level, nil without coherence
}

// parSim is the replay pipeline attached to a Machine.
type parSim struct {
	m           *Machine
	workers     int  // shard workers to run (requested; capped at shard count)
	split       int  // shard levels; levels split+1..h replay on the chain worker
	trackWrites bool // coherence + multiple shards: segments keep a writes-only side list

	shards []*parShard

	// Recording state (execution thread only).
	cur     *parSeg
	b       *parBatch
	nalloc  int
	nallocE int
	// Array pools harvested from recycled epoch batches (execution thread
	// only): proven-quiescent former fan-in arrays, handed back to
	// StartRoundFanIn as replacements for freshly loaned ones.
	fanU64  [][]uint64
	fanInts [][]int

	// Pipeline state.
	started  bool
	nworkers int
	pending  chan *parBatch // sealed batches, in issue order
	taskCh   chan parTask   // shard fan-out
	chainCh  chan *parBatch // batches with shard replay done, still in order
	freeB    chan *parBatch // recycled batches
	freeE    chan *parBatch // recycled epoch batches (loaned arrays attached)
	wg       sync.WaitGroup
}

// EnableParallelReplay switches the machine's cache simulation to the
// parallel replay pipeline.  workers <= 0 selects GOMAXPROCS.  Counters and
// stats stay byte-identical to the serial walk; reading them (Stats,
// ResetStats, FlushCaches) drains the pipeline first.  Callers that create
// pipelines outside a core session should StopReplay when done to release
// the worker goroutines.
func (m *Machine) EnableParallelReplay(workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if m.par != nil {
		m.par.workers = workers
		return
	}
	split := 0
	for i := len(m.ByLevel); i >= 1; i-- {
		if len(m.ByLevel[i-1]) > 1 {
			split = i
			break
		}
	}
	p := &parSim{m: m, workers: workers, split: split}
	p.trackWrites = m.Cfg.Coherence && split > 0
	p.freeB = make(chan *parBatch, parMaxBatches)
	p.freeE = make(chan *parBatch, parMaxEpochBatches)
	if split > 0 {
		nsh := len(m.ByLevel[split-1])
		coresPer := m.Cores() / nsh
		for s := 0; s < nsh; s++ {
			sh := &parShard{
				sim:    p,
				coreLo: s * coresPer,
				coreHi: (s + 1) * coresPer,
				levels: split,
				base:   make([]int, split),
			}
			for i := 0; i < split; i++ {
				sh.base[i] = s * (len(m.ByLevel[i]) / nsh)
			}
			if m.Cfg.Coherence {
				sh.holders = make([][]uint64, split)
				sh.ownLocal = make([][]uint64, coresPer)
				for c := 0; c < coresPer; c++ {
					sh.ownLocal[c] = make([]uint64, split)
					for i := 0; i < split; i++ {
						sh.ownLocal[c][i] = 1 << uint(m.path[sh.coreLo+c][i].Index-sh.base[i])
					}
				}
			}
			p.shards = append(p.shards, sh)
		}
	}
	m.par = p
}

// ParallelReplay reports whether the parallel replay pipeline is enabled.
func (m *Machine) ParallelReplay() bool { return m.par != nil }

// SyncReplay drains the replay pipeline: on return every recorded access has
// been applied to the caches.  No-op when parallel replay is off or idle.
func (m *Machine) SyncReplay() {
	if m.par != nil {
		m.par.sync()
	}
}

// StopReplay drains the pipeline and releases its goroutines.  The machine
// stays in parallel mode: the next access restarts the pipeline lazily.
func (m *Machine) StopReplay() {
	if m.par != nil {
		m.par.stop()
	}
}

// record appends one access to the current segment, sealing segments on core
// switches and batches on size.  Execution thread only.
func (p *parSim) record(core int, a Addr, write bool) {
	s := p.cur
	if s == nil || s.core != core || len(s.recs) >= parSegCap {
		s = p.nextSeg(core)
	}
	rec := uint64(a) << 1
	if write {
		rec |= 1
		if p.trackWrites {
			s.wrecs = append(s.wrecs, rec)
		}
	}
	s.recs = append(s.recs, rec)
}

// recordBulk appends a whole pre-recorded chunk of accesses by one core (a
// fan-in round, fanin.go) as fresh segments, splitting at parSegCap.  The
// chunk's write side-list is precomputed by the fan-in recorder, so the
// common whole-chunk case moves straight in; only oversized chunks
// (quantum > parSegCap) pay a scan to apportion the writes.  Execution
// thread only, like record.
func (p *parSim) recordBulk(core int, recs, wrecs []uint64) {
	for len(recs) > 0 {
		n := len(recs)
		if n > parSegCap {
			n = parSegCap
		}
		s := p.nextSeg(core)
		s.recs = append(s.recs, recs[:n]...)
		if p.trackWrites {
			if n == len(recs) {
				s.wrecs = append(s.wrecs, wrecs...)
				wrecs = nil
			} else {
				w := 0
				for _, rec := range recs[:n] {
					w += int(rec & 1)
				}
				s.wrecs = append(s.wrecs, wrecs[:w]...)
				wrecs = wrecs[w:]
			}
		}
		recs = recs[n:]
	}
}

// nextSeg seals the current segment, flushes the batch if full, and opens a
// fresh segment for core.
func (p *parSim) nextSeg(core int) *parSeg {
	b := p.b
	if p.cur != nil {
		b.nrec += len(p.cur.recs)
		p.cur = nil
		if b.nrec >= parBatchRecs {
			p.dispatch(b)
			b = nil
		}
	}
	if b == nil {
		b = p.takeBatch()
		p.b = b
	}
	var s *parSeg
	if b.nseg < len(b.segs) {
		s = b.segs[b.nseg]
		s.recs, s.wrecs = s.recs[:0], s.wrecs[:0]
	} else {
		s = &parSeg{recs: make([]uint64, 0, parSegCap)}
		b.segs = append(b.segs, s)
	}
	b.nseg++
	s.core = core
	p.cur = s
	return s
}

// takeBatch returns a recycled batch, or a fresh one while under the
// in-flight cap; at the cap it blocks until the chain worker recycles one,
// backpressuring the recording thread.
func (p *parSim) takeBatch() *parBatch {
	if p.nalloc < parMaxBatches {
		select {
		case b := <-p.freeB:
			b.nseg, b.nrec = 0, 0
			return b
		default:
			p.nalloc++
			return &parBatch{}
		}
	}
	b := <-p.freeB
	b.nseg, b.nrec = 0, 0
	return b
}

// dispatchFanEpoch hands a whole bulk-committed epoch — the chunks of
// rounds [lo, hi) for the given cores — to the pipeline as one zero-copy
// batch, instead of the engine thread re-walking chunk boundaries and
// copying each chunk into segments via recordBulk.  Returns the number of
// records dispatched (0 for an all-empty range, in which case nothing is
// loaned).  Execution thread only.
func (p *parSim) dispatchFanEpoch(f *roundFanIn, cores []int, lo, hi int) int64 {
	var total int64
	for _, c := range cores {
		b := &f.bufs[c]
		start := 0
		if lo > 0 {
			start = b.marks[lo-1]
		}
		total += int64(b.marks[hi-1] - start)
	}
	if total == 0 {
		return 0
	}
	// Seal and dispatch the open regular batch first: pending is FIFO, and
	// the epoch's records must reach every cache after all earlier ones.
	if p.cur != nil {
		p.b.nrec += len(p.cur.recs)
		p.cur = nil
	}
	if p.b != nil && p.b.nseg > 0 {
		b := p.b
		p.b = nil
		p.dispatch(b)
	}
	eb := p.takeEpochBatch()
	ep := eb.ep
	ep.cores = append(ep.cores[:0], cores...)
	ep.lo, ep.hi = lo, hi
	ep.recs, ep.wrecs = ep.recs[:0], ep.wrecs[:0]
	ep.marks, ep.wmarks = ep.marks[:0], ep.wmarks[:0]
	for _, c := range cores {
		b := &f.bufs[c]
		b.loaned = true
		ep.recs = append(ep.recs, b.recs)
		ep.marks = append(ep.marks, b.marks)
		if f.trackWrites {
			ep.wrecs = append(ep.wrecs, b.wrecs)
			ep.wmarks = append(ep.wmarks, b.wmarks)
		}
	}
	p.dispatch(eb)
	return total
}

// takeEpochBatch returns a recycled epoch batch (harvesting its loaned
// arrays into the fan-array pools first), or a fresh one while under the
// epoch cap; at the cap it blocks until the chain worker recycles one.
func (p *parSim) takeEpochBatch() *parBatch {
	if p.nallocE < parMaxEpochBatches {
		select {
		case b := <-p.freeE:
			p.reclaimEpoch(b)
			return b
		default:
			p.nallocE++
			return &parBatch{ep: &fanEpoch{}}
		}
	}
	b := <-p.freeE
	p.reclaimEpoch(b)
	return b
}

// reclaimEpoch harvests a recycled epoch batch's loaned arrays into the
// fan-array pools.  The batch came back through freeE, so the whole
// pipeline is provably done reading them; the recording side stopped
// writing them when StartRoundFanIn swapped them out of the fan buffers.
func (p *parSim) reclaimEpoch(b *parBatch) {
	ep := b.ep
	p.fanU64 = append(p.fanU64, ep.recs...)
	p.fanU64 = append(p.fanU64, ep.wrecs...)
	p.fanInts = append(p.fanInts, ep.marks...)
	p.fanInts = append(p.fanInts, ep.wmarks...)
	ep.recs, ep.wrecs = ep.recs[:0], ep.wrecs[:0]
	ep.marks, ep.wmarks = ep.marks[:0], ep.wmarks[:0]
}

// takeFanU64 pops a pooled record array for StartRoundFanIn (nil when the
// pool is empty — the fan buffer then grows a fresh one by appending).
func (p *parSim) takeFanU64() []uint64 {
	if n := len(p.fanU64); n > 0 {
		a := p.fanU64[n-1]
		p.fanU64[n-1] = nil
		p.fanU64 = p.fanU64[:n-1]
		return a[:0]
	}
	return nil
}

// takeFanInts is takeFanU64 for mark arrays.
func (p *parSim) takeFanInts() []int {
	if n := len(p.fanInts); n > 0 {
		a := p.fanInts[n-1]
		p.fanInts[n-1] = nil
		p.fanInts = p.fanInts[:n-1]
		return a[:0]
	}
	return nil
}

func (p *parSim) dispatch(b *parBatch) {
	if !p.started {
		p.start()
	}
	p.pending <- b
}

func (p *parSim) start() {
	p.pending = make(chan *parBatch, parMaxBatches)
	p.chainCh = make(chan *parBatch, parMaxBatches)
	nw := p.workers
	if nw > len(p.shards) {
		nw = len(p.shards)
	}
	p.nworkers = nw
	p.wg.Add(2 + nw)
	if nw > 0 {
		p.taskCh = make(chan parTask, len(p.shards))
		for i := 0; i < nw; i++ {
			//oblivcheck:allow determinism: sanctioned parsim entry point — shard replay is proven byte-identical to the serial path by the stream-equivalence tests
			go p.workerLoop()
		}
	}
	//oblivcheck:allow determinism: sanctioned parsim entry point — per-batch barrier keeps each shard single-threaded
	go p.dispatchLoop()
	//oblivcheck:allow determinism: sanctioned parsim entry point — ordered chain replay of the single-cache upper levels
	go p.chainLoop()
	p.started = true
}

// dispatchLoop fans each batch across every shard and forwards it, still in
// order, to the chain worker once all shards are done.  The per-batch
// barrier is what keeps each shard single-threaded.
func (p *parSim) dispatchLoop() {
	defer p.wg.Done()
	if p.taskCh != nil {
		defer close(p.taskCh)
	}
	var wg sync.WaitGroup
	for b := range p.pending {
		n := b.nseg
		if b.ep != nil {
			n = b.ep.nchunks()
		}
		if b.fence == nil && n > 0 && len(p.shards) > 0 {
			for len(b.out) < n {
				b.out = append(b.out, nil)
			}
			if p.nworkers == 1 {
				for _, sh := range p.shards {
					sh.run(b)
				}
			} else {
				wg.Add(len(p.shards))
				for _, sh := range p.shards {
					p.taskCh <- parTask{b, sh, &wg}
				}
				wg.Wait()
			}
		}
		p.chainCh <- b
	}
	close(p.chainCh)
}

func (p *parSim) workerLoop() {
	defer p.wg.Done()
	for t := range p.taskCh {
		t.sh.run(t.b)
		t.wg.Done()
	}
}

// chainLoop replays the single-cache chain above the split level, in global
// order.  With no shards (single-core machines) it replays whole segments
// from level 1.  It also recycles batches and releases fences, so a fence
// arriving here proves every earlier record is fully applied.
func (p *parSim) chainLoop() {
	defer p.wg.Done()
	m := p.m
	h1 := len(m.ByLevel)
	for b := range p.chainCh {
		if b.fence != nil {
			close(b.fence)
			continue
		}
		if b.ep != nil {
			ep := b.ep
			nc := len(ep.cores)
			sharded := len(p.shards) > 0
			for r := ep.lo; r < ep.hi; r++ {
				for ci := range ep.cores {
					k := (r-ep.lo)*nc + ci
					recs := ep.chunk(ci, r)
					if sharded {
						recs = b.out[k]
					}
					for _, rec := range recs {
						a, write := int64(rec>>1), rec&1 != 0
						for i := p.split; i < h1; i++ {
							if m.ByLevel[i][0].access(a>>m.shift[i], write) {
								break
							}
						}
					}
					if sharded {
						b.out[k] = b.out[k][:0]
					}
				}
			}
			p.freeE <- b // never blocks: nallocE <= parMaxEpochBatches == cap
			continue
		}
		for k := 0; k < b.nseg; k++ {
			recs := b.segs[k].recs
			if len(p.shards) > 0 {
				recs = b.out[k]
			}
			for _, rec := range recs {
				a, write := int64(rec>>1), rec&1 != 0
				for i := p.split; i < h1; i++ {
					if m.ByLevel[i][0].access(a>>m.shift[i], write) {
						break
					}
				}
			}
			if len(p.shards) > 0 {
				b.out[k] = b.out[k][:0]
			}
		}
		p.freeB <- b // never blocks: nalloc <= parMaxBatches == cap
	}
}

// sync seals and flushes the open batch, then round-trips a fence through
// the pipeline.  On return the caches reflect every recorded access.
func (p *parSim) sync() {
	if p.cur != nil {
		p.b.nrec += len(p.cur.recs)
		p.cur = nil
	}
	if p.b != nil && p.b.nseg > 0 {
		b := p.b
		p.b = nil
		p.dispatch(b)
	}
	if !p.started {
		return
	}
	f := &parBatch{fence: make(chan struct{})}
	p.pending <- f
	<-f.fence
}

// stop drains the pipeline and joins its goroutines; recording may resume
// afterwards and restarts the pipeline lazily.
func (p *parSim) stop() {
	p.sync()
	if !p.started {
		return
	}
	close(p.pending)
	p.wg.Wait()
	p.started = false
	p.pending, p.chainCh, p.taskCh = nil, nil, nil
}

// resetHolders clears the shard-local coherence masks (the parallel
// counterpart of FlushCaches zeroing Machine.holders).
func (p *parSim) resetHolders() {
	for _, sh := range p.shards {
		for _, h := range sh.holders {
			for i := range h {
				h[i] = 0
			}
		}
	}
}

// run replays one batch against the shard: its own cores' segments walk the
// shard's cache levels exactly like Machine.access; foreign segments
// contribute only their writes, as coherence invalidations.  Segments are
// visited in batch order = global issue order.
func (sh *parShard) run(b *parBatch) {
	if b.ep != nil {
		sh.runEpoch(b)
		return
	}
	coherent := sh.holders != nil
	for k := 0; k < b.nseg; k++ {
		seg := b.segs[k]
		if seg.core >= sh.coreLo && seg.core < sh.coreHi {
			sh.runOwnRecs(b, k, seg.core, seg.recs)
		} else if coherent {
			for _, rec := range seg.wrecs {
				sh.invalidateLocal(nil, int64(rec>>1))
			}
		}
	}
}

// runEpoch is run over an epoch batch: the chunk grid is walked in
// (round, core) order — the serial interleaving — slicing each chunk
// straight out of the loaned fan-in arrays.  Own-core chunks replay the
// shard levels; foreign chunks contribute their writes as invalidations.
func (sh *parShard) runEpoch(b *parBatch) {
	ep := b.ep
	coherent := sh.holders != nil
	nc := len(ep.cores)
	for r := ep.lo; r < ep.hi; r++ {
		for ci, core := range ep.cores {
			if core >= sh.coreLo && core < sh.coreHi {
				sh.runOwnRecs(b, (r-ep.lo)*nc+ci, core, ep.chunk(ci, r))
			} else if coherent {
				for _, rec := range ep.wchunk(ci, r) {
					sh.invalidateLocal(nil, int64(rec>>1))
				}
			}
		}
	}
}

// runOwnRecs mirrors the level loop of Machine.access over the shard's
// levels, collecting records that miss every one of them into b.out[k] for
// the chain worker.
func (sh *parShard) runOwnRecs(b *parBatch, k, core int, recs []uint64) {
	m := sh.sim.m
	path := m.path[core]
	coherent := sh.holders != nil
	var own []uint64
	if coherent {
		own = sh.ownLocal[core-sh.coreLo]
	}
	out := b.out[k][:0]
	for _, rec := range recs {
		a, write := int64(rec>>1), rec&1 != 0
		hit := false
		for i := 0; i < sh.levels; i++ {
			blk := a >> m.shift[i]
			if path[i].access(blk, write) {
				hit = true
				break
			}
			if coherent {
				sh.setHolder(i, blk, own[i])
			}
		}
		if !hit {
			out = append(out, rec)
		}
		if write && coherent {
			sh.invalidateLocal(own, a)
		}
	}
	b.out[k] = out
}

// setHolder is Machine.setHolder against the shard-local masks.
func (sh *parShard) setHolder(i int, b int64, bit uint64) {
	h := sh.holders[i]
	if b >= int64(len(h)) {
		n := int64(len(h)) * 2
		if n < b+1 {
			n = b + 1
		}
		if n < 1024 {
			n = 1024
		}
		grown := make([]uint64, n)
		copy(grown, h)
		h = grown
		sh.holders[i] = h
	}
	h[b] |= bit
}

// invalidateLocal is Machine.invalidateOffPath restricted to the shard:
// every holder except keep's bits (nil for a foreign write, whose own path
// lies in another shard) loses the enclosing block at each shard level.
func (sh *parShard) invalidateLocal(keep []uint64, a int64) {
	m := sh.sim.m
	for i := 0; i < sh.levels; i++ {
		h := sh.holders[i]
		b := a >> m.shift[i]
		if b >= int64(len(h)) {
			continue
		}
		var own uint64
		if keep != nil {
			own = keep[i]
		}
		rest := h[b] &^ own
		if rest == 0 {
			continue
		}
		level := m.ByLevel[i]
		for rest != 0 {
			j := bits.TrailingZeros64(rest)
			rest &= rest - 1
			level[sh.base[i]+j].invalidate(b)
		}
		h[b] &= own
	}
}
