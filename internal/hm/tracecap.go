package hm

// Trace capture: a rolling chained digest over the machine's (core, addr,
// write) access stream, in issue order.  The data-obliviousness harness
// (internal/harness, DESIGN.md §9) runs an annotated algorithm twice on
// different random data of identical shape and requires the two digests to
// match — the dynamic ground truth behind the static `dataoblivious`
// analyzer.  The digest is O(1) state regardless of trace length: each
// access is folded into a 64-bit FNV-1a-style chain, so capturing a
// billion-access run costs two multiplies per access and no memory.
//
// Capture records at Load/Store issue time, which is the deterministic
// serial program order only under the serial backend: the parallel replay
// pipeline reorders nothing at issue time (it records in program order too),
// but the parallel-rounds backend issues speculative per-core streams whose
// interleaving is thread-timing dependent.  StartTrace therefore refuses a
// machine wired for parallel replay, and the harness keeps trace runs on
// the default serial engine.

const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// traceCap is the in-flight capture state.
type traceCap struct {
	hash uint64
	n    int64
}

// fold chains one 64-bit word into the digest, byte order fixed so the
// digest is platform-independent.
func (t *traceCap) fold(x uint64) {
	h := t.hash
	for i := 0; i < 8; i++ {
		h = (h ^ (x & 0xff)) * fnvPrime64
		x >>= 8
	}
	t.hash = h
}

// note records one access.  Core and write share a word; the address gets
// its own, so (core=1, addr=2) and (core=2, addr=1) chain differently.
func (t *traceCap) note(core int, a Addr, write bool) {
	x := uint64(core) << 1
	if write {
		x |= 1
	}
	t.fold(x)
	t.fold(uint64(a))
	t.n++
}

// TraceDigest summarises one captured access stream.
type TraceDigest struct {
	Hash     uint64 // chained digest of the (core, addr, write) stream
	Accesses int64  // stream length, so "equal hash" also implies equal length
}

// StartTrace begins capturing the access stream into a fresh digest.  Peek
// and Poke bypass capture the same way they bypass the cache model: input
// initialisation and output verification are not part of the measured trace.
// Panics if the machine is wired for the parallel replay or parallel-rounds
// backends, whose issue order is not the serial program order.
func (m *Machine) StartTrace() {
	if m.par != nil || (m.fan != nil && m.fan.on) {
		panic("hm: StartTrace on a machine with a parallel backend; trace capture is serial-order only")
	}
	m.trace = &traceCap{hash: fnvOffset64}
}

// EndTrace stops capturing and returns the digest of the stream since
// StartTrace.  Calling it with no capture in flight returns a zero digest.
func (m *Machine) EndTrace() TraceDigest {
	t := m.trace
	m.trace = nil
	if t == nil {
		return TraceDigest{}
	}
	return TraceDigest{Hash: t.hash, Accesses: t.n}
}

// Tracing reports whether a capture is in flight.
func (m *Machine) Tracing() bool { return m.trace != nil }
