package hm

import (
	"strings"
	"testing"
)

func TestPresetsValidate(t *testing.T) {
	for name, cfg := range Presets() {
		if err := cfg.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", name, err)
		}
	}
}

func TestCoreCounts(t *testing.T) {
	cases := []struct {
		cfg   Config
		cores int
	}{
		{Seq(), 1},
		{MC3(8), 8},
		{HM4(4, 4), 16},
		{HM5(2, 4, 4), 32},
	}
	for _, c := range cases {
		if got := c.cfg.Cores(); got != c.cores {
			t.Errorf("%s: cores = %d, want %d", c.cfg.Name, got, c.cores)
		}
	}
}

func TestCachesAtAndCoresUnder(t *testing.T) {
	cfg := HM5(2, 4, 4) // 32 cores
	// q_i = product of arities above level i.
	wantQ := []int{32, 16, 4, 1}
	wantPU := []int{1, 2, 8, 32}
	for i := 1; i <= 4; i++ {
		if got := cfg.CachesAt(i); got != wantQ[i-1] {
			t.Errorf("q_%d = %d, want %d", i, got, wantQ[i-1])
		}
		if got := cfg.CoresUnder(i); got != wantPU[i-1] {
			t.Errorf("p'_%d = %d, want %d", i, got, wantPU[i-1])
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []struct {
		name string
		cfg  Config
		frag string
	}{
		{"no levels", Config{Name: "x"}, "no cache levels"},
		{"l1 shared", Config{Name: "x", Levels: []LevelSpec{{Capacity: 64, Block: 8, Arity: 2}}}, "p_1 = 1"},
		{"non pow2", Config{Name: "x", Levels: []LevelSpec{{Capacity: 96, Block: 8, Arity: 1}}}, "powers of two"},
		{"not tall", Config{Name: "x", Levels: []LevelSpec{{Capacity: 64, Block: 16, Arity: 1}}}, "not tall"},
		{"shrinking capacity", Config{Name: "x", Levels: []LevelSpec{
			{Capacity: 1 << 10, Block: 8, Arity: 1},
			{Capacity: 1 << 9, Block: 8, Arity: 2},
		}}, "not strictly larger"},
		{"slow-growing capacity", Config{Name: "x", Levels: []LevelSpec{
			{Capacity: 1 << 10, Block: 8, Arity: 1},
			{Capacity: 1 << 11, Block: 8, Arity: 4},
		}}, "C_i >= p_i*C_{i-1}"},
		{"zero fan-out", Config{Name: "x", Levels: []LevelSpec{
			{Capacity: 1 << 10, Block: 8, Arity: 1},
			{Capacity: 1 << 14, Block: 8, Arity: 0},
		}}, "fan-out (arity) must be >= 1"},
		{"oversized fan-out", Config{Name: "x", Levels: []LevelSpec{
			{Capacity: 1 << 10, Block: 8, Arity: 1},
			{Capacity: 1 << 20, Block: 8, Arity: 65},
		}}, "64-core limit"},
		{"shrinking block", Config{Name: "x", Levels: []LevelSpec{
			{Capacity: 1 << 10, Block: 16, Arity: 1},
			{Capacity: 1 << 12, Block: 8, Arity: 2},
		}}, "smaller than"},
		{"too many cores", Config{Name: "x", Levels: []LevelSpec{
			{Capacity: 1 << 10, Block: 8, Arity: 1},
			{Capacity: 1 << 20, Block: 8, Arity: 128},
		}}, "exceeds"},
	}
	for _, b := range bad {
		err := b.cfg.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted invalid config", b.name)
			continue
		}
		if !strings.Contains(err.Error(), b.frag) {
			t.Errorf("%s: error %q does not mention %q", b.name, err, b.frag)
		}
	}
}

func TestConfigString(t *testing.T) {
	s := MC3(4).String()
	for _, frag := range []string{"mc3", "p=4", "L1:", "L2:"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}
