package hm

// This file provides the geometry of cache "shadows" (paper §III): the
// shadow of a level-i cache λ consists of the p'_i cores that share λ and
// all lower-level caches between those cores and λ.  Because the simulator
// builds the tree contiguously, shadows are contiguous index ranges.

// Under returns the level-j caches in the shadow of λ (j <= λ.Level),
// left to right.  Under(λ, λ.Level) is the one-element slice {λ}.
func (m *Machine) Under(lambda *Cache, j int) []*Cache {
	if j > lambda.Level {
		return nil
	}
	qj := len(m.ByLevel[j-1])
	qi := len(m.ByLevel[lambda.Level-1])
	per := qj / qi
	lo := lambda.Index * per
	return m.ByLevel[j-1][lo : lo+per]
}

// ShadowCores returns the half-open core range [lo, hi) under λ.
func (m *Machine) ShadowCores(lambda *Cache) (lo, hi int) {
	return lambda.CoreLo, lambda.CoreHi
}

// SmallestFit returns the smallest cache level i (1-based) whose capacity
// C_i is at least space, or the top level if none fits (tasks larger than
// the largest cache are anchored at the top, where only cold traffic is
// guaranteed anyway).
func (m *Machine) SmallestFit(space int64) int {
	for i, l := range m.Cfg.Levels {
		if l.Capacity >= space {
			return i + 1
		}
	}
	return len(m.Cfg.Levels)
}

// LCA returns the lowest common cache of two cores (the smallest-level
// cache whose shadow contains both).
func (m *Machine) LCA(a, b int) *Cache {
	for _, c := range m.path[a] {
		if b >= c.CoreLo && b < c.CoreHi {
			return c
		}
	}
	return m.Top()
}
