package hm

import "testing"

// The digest must separate streams that differ in any tuple component —
// core, address, or direction — and in length.
func TestTraceDigestSeparatesStreams(t *testing.T) {
	digest := func(f func(t *traceCap)) uint64 {
		tc := &traceCap{hash: fnvOffset64}
		f(tc)
		return tc.hash
	}
	base := digest(func(tc *traceCap) { tc.note(1, 2, false) })
	for name, h := range map[string]uint64{
		"core":  digest(func(tc *traceCap) { tc.note(2, 2, false) }),
		"addr":  digest(func(tc *traceCap) { tc.note(1, 3, false) }),
		"write": digest(func(tc *traceCap) { tc.note(1, 2, true) }),
		"swap":  digest(func(tc *traceCap) { tc.note(2, 1, false) }),
		"len":   digest(func(tc *traceCap) { tc.note(1, 2, false); tc.note(1, 2, false) }),
	} {
		if h == base {
			t.Errorf("%s variation did not change the digest (%016x)", name, base)
		}
	}
	if again := digest(func(tc *traceCap) { tc.note(1, 2, false) }); again != base {
		t.Errorf("identical streams disagree: %016x vs %016x", base, again)
	}
}

func TestTraceCaptureLifecycle(t *testing.T) {
	m := MustMachine(Seq())
	if m.Tracing() {
		t.Fatal("fresh machine should not be tracing")
	}
	if d := m.EndTrace(); d != (TraceDigest{}) {
		t.Fatalf("EndTrace without capture: got %+v", d)
	}
	a := m.Alloc(16)
	m.StartTrace()
	if !m.Tracing() {
		t.Fatal("StartTrace did not arm capture")
	}
	m.Store(0, a, 7)
	if got := m.Load(0, a); got != 7 {
		t.Fatalf("Load after Store: got %d", got)
	}
	m.Peek(a)      // bypasses capture
	m.Poke(a+1, 9) // bypasses capture
	d := m.EndTrace()
	if m.Tracing() {
		t.Fatal("EndTrace left capture armed")
	}
	if d.Accesses != 2 {
		t.Fatalf("captured %d accesses, want 2 (Peek/Poke must bypass)", d.Accesses)
	}
	m.StartTrace()
	m.Store(0, a, 7)
	m.Load(0, a)
	if d2 := m.EndTrace(); d2 != d {
		t.Fatalf("replaying the same stream changed the digest: %+v vs %+v", d2, d)
	}
}
