package hm

// Stream-level equivalence of the parallel replay pipeline (parsim.go)
// against the serial access walk: identical pseudo-random load/store
// sequences driven into two machines of the same preset — one serial, one
// with EnableParallelReplay — must leave every cache with byte-identical
// stats and residency, across every preset (coherent trees, the
// set-associative variant, and the single-core chain) and across worker
// counts.  The streams deliberately mix per-core working sets with a shared
// hot region (coherence ping-ponging), long single-core runs (crossing the
// segment cap) and enough volume to seal several batches.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

const parTestHeap = 1 << 15

// driveStream issues n identical accesses to both machines.  Loads are
// value-checked on the spot; the caller compares cache state afterwards.
func driveStream(t *testing.T, serial, par *Machine, seed int64, n int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	p := serial.Cores()
	i := 0
	for i < n {
		core := rng.Intn(p)
		runLen := 1 + rng.Intn(64)
		if rng.Intn(16) == 0 {
			// Long single-core run: crosses parSegCap, so segment sealing
			// on size (not just on core switch) gets exercised.
			runLen = parSegCap + rng.Intn(parSegCap)
		}
		for k := 0; k < runLen && i < n; k++ {
			var a Addr
			if rng.Intn(3) == 0 {
				a = Addr(rng.Int63n(512)) // shared hot region: ping-ponging
			} else {
				a = Addr(int64(core)*1024 + rng.Int63n(1024))
			}
			if rng.Intn(3) == 0 {
				v := uint64(i)
				serial.Store(core, a, v)
				par.Store(core, a, v)
			} else {
				sv, pv := serial.Load(core, a), par.Load(core, a)
				if sv != pv {
					t.Fatalf("access %d: load core %d addr %d: serial=%d parallel=%d", i, core, a, sv, pv)
				}
			}
			i++
		}
	}
}

// compareMachines asserts per-cache equality of stats and residency plus the
// aggregate snapshot.  Snapshot/Stats drain the pipeline.
func compareMachines(t *testing.T, serial, par *Machine, tag string) {
	t.Helper()
	ss, ps := serial.Stats(), par.Stats()
	for i, level := range serial.ByLevel {
		for j, c := range level {
			pc := par.ByLevel[i][j]
			if c.Stats != pc.Stats {
				t.Errorf("%s: L%d[%d] stats diverge:\n  serial   %+v\n  parallel %+v", tag, i+1, j, c.Stats, pc.Stats)
			}
			if c.resident != pc.resident {
				t.Errorf("%s: L%d[%d] residency diverges: serial %d, parallel %d", tag, i+1, j, c.resident, pc.resident)
			}
		}
	}
	if serial.Accesses != par.Accesses {
		t.Errorf("%s: access counts diverge: serial %d, parallel %d", tag, serial.Accesses, par.Accesses)
	}
	if !reflect.DeepEqual(ss, ps) {
		t.Errorf("%s: snapshots diverge:\n  serial   %+v\n  parallel %+v", tag, ss, ps)
	}
}

func newPair(t *testing.T, cfg Config, workers int) (serial, par *Machine) {
	t.Helper()
	serial, par = MustMachine(cfg), MustMachine(cfg)
	serial.Alloc(parTestHeap)
	par.Alloc(parTestHeap)
	par.EnableParallelReplay(workers)
	return serial, par
}

// TestParallelReplayMatchesSerial is the core stream-equivalence matrix:
// every preset × worker counts spanning fewer and more workers than shards.
func TestParallelReplayMatchesSerial(t *testing.T) {
	for name, cfg := range Presets() {
		for _, workers := range []int{1, 3, 8} {
			t.Run(fmt.Sprintf("%s/w%d", name, workers), func(t *testing.T) {
				serial, par := newPair(t, cfg, workers)
				defer par.StopReplay()
				driveStream(t, serial, par, 42, 300_000)
				compareMachines(t, serial, par, name)
			})
		}
	}
}

// TestParallelReplayLifecycle exercises the drain points mid-stream: a Stats
// read (sync), a FlushCaches (cold restart incl. shard holder reset) and a
// StopReplay (teardown + lazy restart) must all leave the two machines in
// lockstep.
func TestParallelReplayLifecycle(t *testing.T) {
	serial, par := newPair(t, HM4(4, 4), 4)
	defer par.StopReplay()

	driveStream(t, serial, par, 1, 60_000)
	compareMachines(t, serial, par, "mid-stream stats")

	driveStream(t, serial, par, 2, 60_000)
	serial.FlushCaches()
	par.FlushCaches()
	compareMachines(t, serial, par, "post-flush")

	driveStream(t, serial, par, 3, 60_000)
	par.StopReplay() // pipeline restarts lazily on the next access
	driveStream(t, serial, par, 4, 60_000)
	compareMachines(t, serial, par, "post-stop restart")

	serial.ResetStats()
	par.ResetStats()
	driveStream(t, serial, par, 5, 60_000)
	compareMachines(t, serial, par, "post-reset")
}

// TestParallelReplayShardGeometry pins the split rule: the deepest level
// with more than one cache owns the shards, everything above replays on the
// chain worker, and single-core machines have no shards at all.
func TestParallelReplayShardGeometry(t *testing.T) {
	cases := []struct {
		cfg     Config
		split   int
		nshards int
	}{
		{Seq(), 0, 0},
		{MC3(8), 1, 8},
		{MC3Assoc(8), 1, 8},
		{HM4(4, 4), 2, 4},
		{HM5(2, 4, 4), 3, 4},
	}
	for _, tc := range cases {
		m := MustMachine(tc.cfg)
		m.EnableParallelReplay(4)
		if m.par.split != tc.split || len(m.par.shards) != tc.nshards {
			t.Errorf("%s: split=%d shards=%d, want split=%d shards=%d",
				tc.cfg.Name, m.par.split, len(m.par.shards), tc.split, tc.nshards)
		}
		for s, sh := range m.par.shards {
			want := m.Cores() / tc.nshards
			if sh.coreHi-sh.coreLo != want || sh.coreLo != s*want {
				t.Errorf("%s: shard %d covers cores [%d,%d), want width %d", tc.cfg.Name, s, sh.coreLo, sh.coreHi, want)
			}
		}
	}
}
