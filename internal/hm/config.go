// Package hm implements the hierarchical multi-level multicore (HM) machine
// model of Chowdhury, Silvestri, Blakeley and Ramachandran (IPDPS 2010).
//
// An HM machine with h levels consists of p cores, each with a private
// level-1 cache, a hierarchy of caches of finite but increasing sizes at
// levels 1..h-1 successively shared by larger groups of cores, and an
// arbitrarily large shared memory at level h.  The package provides a
// deterministic, word-addressed simulator of this machine: every load and
// store issued by a (virtual) core walks its cache path, fully associative
// LRU caches record block transfers, and per-cache miss counters realise the
// paper's cache-complexity measure (the maximum number of block transfers
// into and out of any single level-i cache).
//
// The simulator is the measurement substrate for the multicore-oblivious
// runtime in package core: algorithms never see the machine description,
// only the scheduler does.
package hm

import (
	"fmt"
	"strings"
)

// LevelSpec describes one cache level of an HM machine.
//
// Capacity and Block are measured in 64-bit words.  Arity is the number of
// level-(i-1) units (caches, or cores for level 1) that share one cache at
// this level; it corresponds to the paper's parameter p_i.  The paper fixes
// p_1 = 1 (each core has a private L1), so the level-1 spec must have
// Arity 1.
type LevelSpec struct {
	Capacity int64 // C_i, words
	Block    int64 // B_i, words
	Arity    int   // p_i: level-(i-1) units sharing one level-i cache
	Ways     int   // associativity in blocks; 0 = fully associative (ideal cache)
}

// Config describes an HM machine: Levels[0] is the level-1 (private) cache,
// Levels[h-2] is the level-(h-1) cache below the shared memory.  The paper's
// p_h = 1 convention is realised by always building exactly one cache at the
// topmost level.
type Config struct {
	Name      string
	Levels    []LevelSpec
	Coherence bool // charge invalidations for writes to blocks cached off-path (ping-ponging)
}

// NumLevels returns h, counting the shared memory as level h.
func (c Config) NumLevels() int { return len(c.Levels) + 1 }

// Cores returns p, the total number of cores: the product of the arities of
// levels 2..h-1 (level 1 has arity 1 by the p_1 = 1 convention).
func (c Config) Cores() int {
	p := 1
	for _, l := range c.Levels {
		p *= l.Arity
	}
	return p
}

// CachesAt returns q_i, the number of caches at 1-based cache level i: the
// product of the arities strictly above level i.
func (c Config) CachesAt(level int) int {
	q := 1
	for j := level; j < len(c.Levels); j++ { // Levels[j] is level j+1
		q *= c.Levels[j].Arity
	}
	return q
}

// CoresUnder returns p'_i, the number of cores subtended by one level-i
// cache: the product of the arities of levels 1..i.
func (c Config) CoresUnder(level int) int {
	p := 1
	for j := 0; j < level; j++ {
		p *= c.Levels[j].Arity
	}
	return p
}

// Validate checks the structural constraints of the HM model:
//
//   - at least one cache level;
//   - p_1 = 1 (private L1s);
//   - capacities and block sizes positive, powers of two, with
//     B_i | C_i and B_{i-1} | B_i (so B_{i-1} <= B_i);
//   - fan-outs (arities) between 1 and the 64-core simulator limit;
//   - strictly growing capacities with C_i >= p_i * C_{i-1} (the paper's
//     C_i >= c_i p_i C_{i-1} with c_i >= 1);
//   - tall caches: C_i >= B_i^2;
//   - at most 64 cores (a simulator limit used by the coherence bitmasks).
//
// Every violation returns a descriptive error naming the offending level,
// so malformed configs surface as errors through NewMachine and the
// harness/CLIs rather than as panics.
func (c Config) Validate() error {
	if len(c.Levels) == 0 {
		return fmt.Errorf("hm: config %q has no cache levels", c.Name)
	}
	if c.Levels[0].Arity != 1 {
		return fmt.Errorf("hm: level-1 arity must be 1 (p_1 = 1, private L1s), got %d", c.Levels[0].Arity)
	}
	for i, l := range c.Levels {
		lv := i + 1
		if l.Capacity <= 0 || l.Block <= 0 {
			return fmt.Errorf("hm: level %d: capacity and block must be positive", lv)
		}
		if l.Capacity&(l.Capacity-1) != 0 || l.Block&(l.Block-1) != 0 {
			return fmt.Errorf("hm: level %d: capacity %d and block %d must be powers of two", lv, l.Capacity, l.Block)
		}
		if l.Capacity%l.Block != 0 {
			return fmt.Errorf("hm: level %d: block %d must divide capacity %d", lv, l.Block, l.Capacity)
		}
		if l.Capacity < l.Block*l.Block {
			return fmt.Errorf("hm: level %d: not tall (C=%d < B^2=%d)", lv, l.Capacity, l.Block*l.Block)
		}
		if l.Arity < 1 {
			return fmt.Errorf("hm: level %d: fan-out (arity) must be >= 1, got %d", lv, l.Arity)
		}
		if l.Arity > 64 {
			return fmt.Errorf("hm: level %d: fan-out %d exceeds the simulator's 64-core limit", lv, l.Arity)
		}
		if i > 0 {
			prev := c.Levels[i-1]
			if l.Block < prev.Block {
				return fmt.Errorf("hm: level %d: block %d smaller than level %d block %d", lv, l.Block, lv-1, prev.Block)
			}
			if l.Block%prev.Block != 0 {
				return fmt.Errorf("hm: level %d: block %d not a multiple of level %d block %d", lv, l.Block, lv-1, prev.Block)
			}
			if l.Capacity <= prev.Capacity {
				return fmt.Errorf("hm: level %d: capacity %d not strictly larger than level %d capacity %d (sizes must grow up the hierarchy)",
					lv, l.Capacity, lv-1, prev.Capacity)
			}
			if l.Capacity < int64(l.Arity)*prev.Capacity {
				return fmt.Errorf("hm: level %d: C_i=%d violates C_i >= p_i*C_{i-1} = %d*%d",
					lv, l.Capacity, l.Arity, prev.Capacity)
			}
		}
	}
	if p := c.Cores(); p > 64 {
		return fmt.Errorf("hm: %d cores exceeds the simulator limit of 64", p)
	}
	return nil
}

// String renders a compact description such as
// "hm5[p=32 L1:1x1024/16 L2:16x8192/32 ...]".
func (c Config) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s[p=%d", c.Name, c.Cores())
	for i, l := range c.Levels {
		fmt.Fprintf(&b, " L%d:%dx%d/%d", i+1, c.CachesAt(i+1), l.Capacity, l.Block)
	}
	b.WriteString("]")
	return b.String()
}

// Preset configurations.  Sizes are deliberately small so that simulated
// workloads exhibit all cache levels at laptop-scale problem sizes; the
// ratios respect the HM constraints.

// Seq returns a sequential (single core) two-cache-level machine, the
// "possible sequential cache hierarchy at the highest level" of the model.
func Seq() Config {
	return Config{
		Name: "seq",
		Levels: []LevelSpec{
			{Capacity: 1 << 10, Block: 1 << 4, Arity: 1},
			{Capacity: 1 << 14, Block: 1 << 5, Arity: 1},
		},
	}
}

// MC3 returns the 3-level multicore model of Blelloch et al. (SODA 2008):
// p cores with private L1s below a single shared L2.
func MC3(p int) Config {
	return Config{
		Name: "mc3",
		Levels: []LevelSpec{
			{Capacity: 1 << 10, Block: 1 << 4, Arity: 1},
			{Capacity: 1 << 16, Block: 1 << 5, Arity: p},
		},
		Coherence: true,
	}
}

// HM4 returns a 4-level machine: groups*per cores, "per" cores per L2,
// one shared L3.
func HM4(groups, per int) Config {
	return Config{
		Name: "hm4",
		Levels: []LevelSpec{
			{Capacity: 1 << 9, Block: 1 << 3, Arity: 1},
			{Capacity: 1 << 13, Block: 1 << 4, Arity: per},
			{Capacity: 1 << 18, Block: 1 << 5, Arity: groups},
		},
		Coherence: true,
	}
}

// HM5 returns a 5-level machine shaped like the paper's Figure 1:
// p = a2*a3*a4 cores, L2s shared by a2 cores, L3s by a3 L2s, one L4.
func HM5(a2, a3, a4 int) Config {
	return Config{
		Name: "hm5",
		Levels: []LevelSpec{
			{Capacity: 1 << 9, Block: 1 << 3, Arity: 1},
			{Capacity: 1 << 12, Block: 1 << 4, Arity: a2},
			{Capacity: 1 << 16, Block: 1 << 5, Arity: a3},
			{Capacity: 1 << 20, Block: 1 << 5, Arity: a4},
		},
		Coherence: true,
	}
}

// MC3Assoc returns MC3 with 8-way set-associative caches instead of the
// ideal fully associative ones — the knob for measuring how far the
// ideal-cache assumption of the analysis carries.
func MC3Assoc(p int) Config {
	cfg := MC3(p)
	cfg.Name = "mc3a"
	for i := range cfg.Levels {
		cfg.Levels[i].Ways = 8
	}
	return cfg
}

// Presets returns the named stock machines used by the experiment harness.
func Presets() map[string]Config {
	return map[string]Config{
		"seq":  Seq(),
		"mc3":  MC3(8),
		"mc3a": MC3Assoc(8),
		"hm4":  HM4(4, 4),
		"hm5":  HM5(2, 4, 4),
	}
}
