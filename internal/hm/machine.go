package hm

import (
	"fmt"
	"math"
	"math/bits"
)

// Addr is a word address in the machine's shared memory.
type Addr int64

// Machine is a concrete HM machine instance: the cache tree, the cores, the
// shared memory contents, and the bump allocator.  All methods are intended
// to be called from a single goroutine at a time (the core engine serialises
// simulated cores), so Machine does no locking.
type Machine struct {
	Cfg Config

	// ByLevel[i-1] holds the q_i caches of level i, left to right, so that
	// cache j at level i covers cores [j*p'_i, (j+1)*p'_i).
	ByLevel [][]*Cache

	// path[c][i-1] is the level-i cache above core c.
	path [][]*Cache

	mem  []uint64
	heap Addr

	// shift[i-1] is log2 of the level-i block size (blocks are validated to
	// be powers of two), so address->block on the access path is a shift.
	shift []uint

	// holders[i-1] maps a level-i block id to the bitmask of level-i cache
	// indices holding it, to make coherence invalidation O(h) per write.
	// Dense slices keyed by block id, grown on demand; a zero mask means no
	// off-path copies.  nil when the config disables coherence.
	holders [][]uint64

	// ownMask[c][i-1] is the holder bit of the level-i cache on core c's
	// path, precomputed so the per-write invalidation scan avoids the
	// path pointer chase.
	ownMask [][]uint64

	// par, when non-nil, streams every Load/Store into the parallel replay
	// pipeline (parsim.go) instead of the in-line access walk.  The holders
	// machinery above goes unused in that mode: each shard keeps its own
	// partition of the masks.
	par *parSim

	// fan, while fan.on, diverts Load/Store into per-core record buffers so
	// the engine's parallel-rounds backend can run strands of distinct cores
	// on concurrent OS threads (fanin.go).  Checked before par: recorded
	// chunks reach par (or the serial walk) later, via FlushFanChunk, in the
	// serial (round, core) order.
	fan *roundFanIn

	// trace, when non-nil, chains every Load/Store into a rolling digest of
	// the access stream (tracecap.go) for the data-obliviousness harness.
	// Orthogonal to the backends above, but only meaningful on the serial
	// one; StartTrace enforces that.
	trace *traceCap

	// Steps is advanced by the engine (virtual time); kept here so stats
	// snapshots carry both time and traffic.
	Steps int64

	Accesses int64 // total loads+stores issued

	// Faults counts transient cache faults injected by InjectCacheFault
	// (core.WithFailures).  Not reset by ResetStats: a fault is a machine
	// event, not run traffic.
	Faults int64
}

// NewMachine validates cfg and builds the cache tree.
func NewMachine(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{Cfg: cfg}
	h1 := len(cfg.Levels) // number of cache levels = h-1
	p := cfg.Cores()
	m.ByLevel = make([][]*Cache, h1)
	for i := h1; i >= 1; i-- {
		spec := cfg.Levels[i-1]
		q := cfg.CachesAt(i)
		pu := cfg.CoresUnder(i)
		level := make([]*Cache, q)
		for j := 0; j < q; j++ {
			level[j] = &Cache{
				Level:  i,
				Index:  j,
				Block:  spec.Block,
				Cap:    spec.Capacity / spec.Block,
				Ways:   spec.Ways,
				CoreLo: j * pu,
				CoreHi: (j + 1) * pu,
			}
			if i < h1 {
				level[j].parent = m.ByLevel[i][j/cfg.Levels[i].Arity]
			}
		}
		m.ByLevel[i-1] = level
	}
	m.path = make([][]*Cache, p)
	for c := 0; c < p; c++ {
		m.path[c] = make([]*Cache, h1)
		for i := 1; i <= h1; i++ {
			m.path[c][i-1] = m.ByLevel[i-1][c/cfg.CoresUnder(i)]
		}
	}
	m.shift = make([]uint, h1)
	for i := 0; i < h1; i++ {
		m.shift[i] = uint(bits.TrailingZeros64(uint64(cfg.Levels[i].Block)))
	}
	if cfg.Coherence {
		m.holders = make([][]uint64, h1)
		m.ownMask = make([][]uint64, p)
		for c := 0; c < p; c++ {
			m.ownMask[c] = make([]uint64, h1)
			for i := 0; i < h1; i++ {
				m.ownMask[c][i] = 1 << uint(m.path[c][i].Index)
			}
		}
	}
	return m, nil
}

// MustMachine builds a machine from cfg, panicking on invalid configs.
// Intended only for tests using the stock presets; everything user-facing
// (harness, CLIs, examples) goes through NewMachine and propagates the
// validation error.
func MustMachine(cfg Config) *Machine {
	m, err := NewMachine(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// AddressError reports a load or store outside the allocated heap — an
// algorithm bug the simulator turns into a typed panic, which the core
// engine recovers into a RunError instead of crashing with a bare runtime
// index error.
type AddressError struct {
	Core  int
	Addr  Addr
	Write bool
	Heap  int64 // allocated heap size in words at the time of the access
}

func (e *AddressError) Error() string {
	op := "load"
	if e.Write {
		op = "store"
	}
	return fmt.Sprintf("hm: core %d: %s at address %d outside the allocated heap [0, %d)", e.Core, op, e.Addr, e.Heap)
}

// Cores returns p.
func (m *Machine) Cores() int { return len(m.path) }

// CacheOf returns the level-i cache above core c.
func (m *Machine) CacheOf(core, level int) *Cache { return m.path[core][level-1] }

// Top returns the single level-(h-1) cache.
func (m *Machine) Top() *Cache { return m.ByLevel[len(m.ByLevel)-1][0] }

// Alloc reserves n words, aligned to the level-1 block size so that CGC
// chunking can respect block boundaries.  The shared memory is arbitrarily
// large in the model; the simulator grows it on demand.
func (m *Machine) Alloc(n int64) Addr {
	if m.fan != nil && m.fan.on {
		// Growing m.mem would race the speculative strands reading it, and
		// the bump pointer's value would depend on thread interleaving.  The
		// engine serialises allocation (core.Ctx allocators); a direct
		// Session-level allocation from inside a concurrently running strand
		// is a bug at the call site, surfaced deterministically here.
		panic("hm: Alloc during a parallel execution phase; allocate through the strand's Ctx so the engine can serialise it")
	}
	b1 := m.Cfg.Levels[0].Block
	a := (m.heap + Addr(b1) - 1) / Addr(b1) * Addr(b1)
	m.heap = a + Addr(n)
	if int64(m.heap) > int64(len(m.mem)) {
		grown := make([]uint64, int64(m.heap)*2)
		copy(grown, m.mem)
		m.mem = grown
	}
	return a
}

// HeapWords returns the current size of the allocated heap in words.
func (m *Machine) HeapWords() int64 { return int64(m.heap) }

// access walks core's cache path from level 1 upward, stopping at the first
// hit (or memory), installing the block into every missed level on the path.
func (m *Machine) access(core int, a Addr, write bool) {
	m.Accesses++
	path := m.path[core]
	// L1 hit fast path: the overwhelmingly common case, kept free of the
	// level loop and the cache.access call overhead.
	c1 := path[0]
	if c1.inited {
		b := int64(a) >> m.shift[0]
		if s := c1.lookup(b); s != nilSlot {
			c1.Stats.Hits++
			c1.touch(c1.setOf(b), s)
			if write {
				c1.slots[s].dirty = true
				if m.holders != nil {
					m.invalidateOffPath(core, a)
				}
			}
			return
		}
	}
	for i, c := range path {
		b := int64(a) >> m.shift[i]
		if c.access(b, write) {
			break
		}
		if m.holders != nil {
			m.setHolder(i, b, 1<<uint(c.Index))
		}
	}
	if write && m.holders != nil {
		m.invalidateOffPath(core, a)
	}
}

// setHolder marks a level-(i+1) cache as holding block b, growing the dense
// holder slice on demand.
func (m *Machine) setHolder(i int, b int64, bit uint64) {
	h := m.holders[i]
	if b >= int64(len(h)) {
		n := int64(len(h)) * 2
		if n < b+1 {
			n = b + 1
		}
		if n < 1024 {
			n = 1024
		}
		grown := make([]uint64, n)
		copy(grown, h)
		h = grown
		m.holders[i] = h
	}
	h[b] |= bit
}

// invalidateOffPath models ping-ponging: a write by core invalidates every
// copy of the containing block held by a cache not on core's path.  The
// model says the hardware support causing ping-ponging is at the size of
// B_1; caches at higher levels track their own (larger) block ids, so the
// invalidation clears the enclosing level-i block from off-path level-i
// caches.
func (m *Machine) invalidateOffPath(core int, a Addr) {
	owns := m.ownMask[core]
	for i, level := range m.ByLevel {
		h := m.holders[i]
		b := int64(a) >> m.shift[i]
		if b >= int64(len(h)) {
			continue
		}
		rest := h[b] &^ owns[i]
		if rest == 0 {
			continue // no off-path copies
		}
		for rest != 0 {
			j := bits.TrailingZeros64(rest)
			rest &= rest - 1
			level[j].invalidate(b)
		}
		h[b] &= owns[i]
	}
}

// Load reads the word at a on behalf of core.  Out-of-heap addresses panic
// with a typed *AddressError (recovered into a RunError by the engine).
func (m *Machine) Load(core int, a Addr) uint64 {
	if a < 0 || a >= m.heap {
		panic(&AddressError{Core: core, Addr: a, Heap: int64(m.heap)})
	}
	if t := m.trace; t != nil {
		t.note(core, a, false)
	}
	if f := m.fan; f != nil && f.on {
		f.record(core, a, false)
	} else if m.par != nil {
		m.Accesses++
		m.par.record(core, a, false)
	} else {
		m.access(core, a, false)
	}
	return m.mem[a]
}

// Store writes the word at a on behalf of core.
func (m *Machine) Store(core int, a Addr, v uint64) {
	if a < 0 || a >= m.heap {
		panic(&AddressError{Core: core, Addr: a, Write: true, Heap: int64(m.heap)})
	}
	if t := m.trace; t != nil {
		t.note(core, a, true)
	}
	if f := m.fan; f != nil && f.on {
		f.record(core, a, true)
	} else if m.par != nil {
		m.Accesses++
		m.par.record(core, a, true)
	} else {
		m.access(core, a, true)
	}
	m.mem[a] = v
}

// Peek reads without touching caches or counters (for verification).
func (m *Machine) Peek(a Addr) uint64 { return m.mem[a] }

// Poke writes without touching caches or counters (for initialisation that
// should not be charged to the measured computation).
func (m *Machine) Poke(a Addr, v uint64) {
	if int64(a) >= int64(len(m.mem)) {
		grown := make([]uint64, (int64(a)+1)*2)
		copy(grown, m.mem)
		m.mem = grown
	}
	m.mem[a] = v
}

// PeekF64 / PokeF64 are float64 views of Peek/Poke.
func (m *Machine) PeekF64(a Addr) float64    { return math.Float64frombits(m.Peek(a)) }
func (m *Machine) PokeF64(a Addr, v float64) { m.Poke(a, math.Float64bits(v)) }

// ResetStats zeroes every cache counter and the access/step counters;
// contents and heap are preserved.  Any in-flight parallel replay is drained
// first so the zeroing cannot race a counter update.
func (m *Machine) ResetStats() {
	m.SyncReplay()
	for _, level := range m.ByLevel {
		for _, c := range level {
			c.ResetStats()
		}
	}
	m.Steps = 0
	m.Accesses = 0
}

// InjectCacheFault models a transient fault at the level-level cache with
// the given index: every resident block is dropped on the floor (contents
// are lost, the next access to each block is a compulsory miss again) while
// the cache's traffic counters survive, so miss monotonicity — part of the
// engine's runtime invariants — holds across the fault.  Memory stays
// authoritative in the HM model (caches are inclusive of nothing below and
// write back on eviction in the counters only; m.mem always holds the
// current value), so a fault can never lose data — only locality.  Returns
// the number of blocks dropped.
//
// Stale holder-mask bits for the faulted cache are left in place
// deliberately: a later off-path invalidation of a non-resident block is a
// counted-nowhere no-op (Cache.invalidate checks residency first), and the
// shard-local masks of the parallel replay pipeline tolerate staleness the
// same way, so serial and parallel replay stay byte-identical across faults.
func (m *Machine) InjectCacheFault(level, index int) int64 {
	m.SyncReplay()
	c := m.ByLevel[level-1][index]
	dropped := c.Resident()
	c.Flush()
	m.Faults++
	return dropped
}

// FlushCaches empties every cache (cold restart) and resets stats.
func (m *Machine) FlushCaches() {
	m.SyncReplay()
	if m.par != nil {
		m.par.resetHolders()
	}
	for i, level := range m.ByLevel {
		for _, c := range level {
			c.Flush()
		}
		if m.holders != nil {
			h := m.holders[i]
			for j := range h {
				h[j] = 0
			}
		}
	}
	m.ResetStats()
}

// LevelStats aggregates the traffic of the q_i caches at one level.
type LevelStats struct {
	Level       int
	Caches      int
	MaxMisses   int64 // the paper's cache complexity: max over caches at the level
	TotalMisses int64
	MaxXfers    int64 // max over caches of transfers in+out
	TotalXfers  int64
	Invalid     int64
}

// Snapshot summarises a run.
type Snapshot struct {
	Steps    int64
	Accesses int64
	Levels   []LevelStats
}

// Stats returns the current per-level aggregates, draining any in-flight
// parallel replay first so the snapshot is exact.
func (m *Machine) Stats() Snapshot {
	m.SyncReplay()
	s := Snapshot{Steps: m.Steps, Accesses: m.Accesses}
	for i, level := range m.ByLevel {
		ls := LevelStats{Level: i + 1, Caches: len(level)}
		for _, c := range level {
			ls.TotalMisses += c.Stats.Misses
			ls.TotalXfers += c.Stats.Transfers()
			ls.Invalid += c.Stats.Invalidations
			if c.Stats.Misses > ls.MaxMisses {
				ls.MaxMisses = c.Stats.Misses
			}
			if t := c.Stats.Transfers(); t > ls.MaxXfers {
				ls.MaxXfers = t
			}
		}
		s.Levels = append(s.Levels, ls)
	}
	return s
}

// String formats the snapshot as an aligned table.
func (s Snapshot) String() string {
	out := fmt.Sprintf("steps=%d accesses=%d\n", s.Steps, s.Accesses)
	out += fmt.Sprintf("%-6s %6s %12s %12s %12s %10s\n", "level", "caches", "maxMiss", "totMiss", "maxXfer", "invalid")
	for _, l := range s.Levels {
		out += fmt.Sprintf("L%-5d %6d %12d %12d %12d %10d\n",
			l.Level, l.Caches, l.MaxMisses, l.TotalMisses, l.MaxXfers, l.Invalid)
	}
	return out
}
