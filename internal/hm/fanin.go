package hm

// Per-core access fan-in for the parallel-rounds engine backend (DESIGN.md
// §11).  During a speculative execution phase the engine runs the front
// strand of several cores on real OS threads at once.  Each strand's memory
// accesses cannot walk the cache hierarchy directly — the walk mutates
// shared cache state and its serial order is part of the determinism
// contract — so in fan-in mode Load/Store touch only the data array (safe:
// concurrently runnable strands have disjoint footprints, the fork-join
// race-freedom the chaos sweeps already pin) and append an access record to
// a buffer owned by the issuing core.  No two strands share a core within a
// phase, so the buffers need no locks; the phase boundaries (channel
// handoffs in the engine) provide the happens-before edges.
//
// Strands mark round boundaries in their buffer as they cross them.  After
// the phase, the engine's serial commit walk replays the recorded chunks in
// (round, core) order — exactly the serial interleaving — by handing each
// chunk to FlushFanChunk, which either walks the cache hierarchy in-line or
// bulk-appends the chunk to the parallel replay pipeline (parsim.go) when
// WithParallel is composed on top.  Either way every cache consumes its
// serial input sequence in its serial order, so all counters stay
// byte-identical to the serial engine.

// fanBuf is one core's recording buffer for the current speculative phase.
type fanBuf struct {
	recs   []uint64 // addr<<1 | writeBit, in issue order
	wrecs  []uint64 // writes only, kept when the replay pipeline shards coherence
	marks  []int    // end offset in recs of each completed round
	wmarks []int    // end offset in wrecs of each completed round
	loaned bool     // arrays handed zero-copy to an epoch dispatch (parsim.go)
}

// roundFanIn is the fan-in state attached to a Machine while a speculative
// phase (or its commit walk) is in flight.
type roundFanIn struct {
	on          bool // intercept Load/Store (speculative phase only)
	trackWrites bool // parallel replay with coherence shards wants write side-lists
	epoched     bool // this phase already loaned its arrays to an epoch dispatch
	bufs        []fanBuf
}

// StartRoundFanIn switches the machine into fan-in recording: until
// EndRoundFanIn, Load and Store touch only the data array and append to the
// issuing core's buffer.  The caller (the engine) guarantees that at most
// one OS thread issues accesses for any given core during the phase.
func (m *Machine) StartRoundFanIn() {
	if m.fan == nil {
		m.fan = &roundFanIn{bufs: make([]fanBuf, m.Cores())}
	}
	f := m.fan
	f.trackWrites = m.par != nil && m.par.trackWrites
	f.epoched = false
	for c := range f.bufs {
		b := &f.bufs[c]
		if b.loaned {
			// The arrays were handed zero-copy to the replay pipeline by an
			// epoch dispatch and may still be replaying: swap in arrays the
			// pipeline has verifiably finished with (reclaimed on the engine
			// thread from recycled epoch batches), or start empty.
			b.loaned = false
			p := m.par
			b.recs, b.wrecs = p.takeFanU64(), p.takeFanU64()
			b.marks, b.wmarks = p.takeFanInts(), p.takeFanInts()
		}
		b.recs, b.wrecs = b.recs[:0], b.wrecs[:0]
		b.marks, b.wmarks = b.marks[:0], b.wmarks[:0]
	}
	f.on = true
}

// EndRoundFanIn stops intercepting Load/Store.  The recorded buffers stay
// available for FlushFanChunk until the next StartRoundFanIn.
func (m *Machine) EndRoundFanIn() {
	if m.fan != nil {
		m.fan.on = false
	}
}

// MarkRound records a round boundary in core's buffer: everything appended
// since the previous mark belongs to the round just completed.
func (m *Machine) MarkRound(core int) {
	b := &m.fan.bufs[core]
	b.marks = append(b.marks, len(b.recs))
	if m.fan.trackWrites {
		b.wmarks = append(b.wmarks, len(b.wrecs))
	}
}

// fanChunk returns the record slices of core's chunk for the given 0-based
// round: recs[marks[r-1]:marks[r]], with the region past the last mark (a
// partial round, cut short by a scheduler interaction) addressed by
// round == len(marks).
func (f *roundFanIn) fanChunk(core, round int) (recs, wrecs []uint64) {
	b := &f.bufs[core]
	lo, wlo := 0, 0
	if round > 0 {
		lo = b.marks[round-1]
		if f.trackWrites {
			wlo = b.wmarks[round-1]
		}
	}
	hi, whi := len(b.recs), len(b.wrecs)
	if round < len(b.marks) {
		hi = b.marks[round]
		if f.trackWrites {
			whi = b.wmarks[round]
		}
	}
	if f.trackWrites {
		return b.recs[lo:hi], b.wrecs[wlo:whi]
	}
	return b.recs[lo:hi], nil
}

// FlushFanChunk applies core's recorded chunk for the given round to the
// cache model: in-line through the serial access walk, or as a bulk append
// to the parallel replay pipeline when one is attached.  Chunks must be
// flushed in (round, core) lexicographic order — the serial interleaving —
// which is exactly the order the engine's commit walk visits turns in.
func (m *Machine) FlushFanChunk(core, round int) {
	recs, wrecs := m.fan.fanChunk(core, round)
	if len(recs) == 0 {
		return
	}
	if m.par != nil {
		// The replay pipeline's own fast path counts at record time
		// (Load/Store do m.Accesses++ before par.record), so bulk appends
		// count here; the serial walk counts inside m.access itself.
		m.Accesses += int64(len(recs))
		m.par.recordBulk(core, recs, wrecs)
		return
	}
	for _, rec := range recs {
		m.access(core, Addr(rec>>1), rec&1 != 0)
	}
}

// FlushFanRounds applies the recorded chunks of every listed core for the
// whole round range [lo, hi) — rmax complete rounds bulk-committed by the
// engine — in (round, core) lexicographic order, the serial interleaving.
// cores must be in ascending order (the engine's turn order within a
// round).  With a replay pipeline attached the first bulk range of a phase
// dispatches as one zero-copy epoch batch (dispatchFanEpoch); later ranges
// of the same phase fall back to per-chunk bulk appends, because the
// arrays can only be loaned out once per phase.
func (m *Machine) FlushFanRounds(cores []int, lo, hi int) {
	f := m.fan
	if m.par != nil {
		if !f.epoched {
			if n := m.par.dispatchFanEpoch(f, cores, lo, hi); n > 0 {
				f.epoched = true
				// Mirror the record-time counting of the Load/Store fast
				// path, like FlushFanChunk does.
				m.Accesses += n
			}
			return
		}
		for r := lo; r < hi; r++ {
			for _, c := range cores {
				m.FlushFanChunk(c, r)
			}
		}
		return
	}
	for r := lo; r < hi; r++ {
		for _, c := range cores {
			recs, _ := f.fanChunk(c, r)
			for _, rec := range recs {
				m.access(c, Addr(rec>>1), rec&1 != 0)
			}
		}
	}
}

// fanRecord is the fan-in fast path shared by Load and Store: data access
// plus a record append on the issuing core's buffer.
func (f *roundFanIn) record(core int, a Addr, write bool) {
	b := &f.bufs[core]
	rec := uint64(a) << 1
	if write {
		rec |= 1
		if f.trackWrites {
			b.wrecs = append(b.wrecs, rec)
		}
	}
	b.recs = append(b.recs, rec)
}
