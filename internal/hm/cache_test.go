package hm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestCache(capBlocks, block int64) *Cache {
	return &Cache{Level: 1, Index: 0, Block: block, Cap: capBlocks}
}

func TestCacheHitMiss(t *testing.T) {
	c := newTestCache(4, 8)
	if c.access(0, false) {
		t.Fatal("cold access hit")
	}
	if !c.access(0, false) {
		t.Fatal("second access missed")
	}
	if c.Stats.Misses != 1 || c.Stats.Hits != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newTestCache(2, 8)
	c.access(1, false)
	c.access(2, false)
	c.access(1, false) // 2 is now LRU
	c.access(3, false) // evicts 2
	if !c.Contains(1) || c.Contains(2) || !c.Contains(3) {
		t.Fatalf("LRU order wrong: 1=%v 2=%v 3=%v", c.Contains(1), c.Contains(2), c.Contains(3))
	}
	if c.Stats.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", c.Stats.Evictions)
	}
}

func TestCacheWritebackOnDirtyEviction(t *testing.T) {
	c := newTestCache(1, 8)
	c.access(1, true)  // dirty
	c.access(2, false) // evicts dirty 1
	if c.Stats.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Stats.Writebacks)
	}
	c.access(3, false) // evicts clean 2
	if c.Stats.Writebacks != 1 {
		t.Fatalf("clean eviction counted a writeback")
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := newTestCache(4, 8)
	c.access(7, true)
	c.invalidate(7)
	if c.Contains(7) {
		t.Fatal("block still resident after invalidate")
	}
	if c.Stats.Invalidations != 1 || c.Stats.Writebacks != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
	// Invalidating an absent block is a no-op.
	c.invalidate(99)
	if c.Stats.Invalidations != 1 {
		t.Fatal("absent invalidate counted")
	}
	// The freed slot is reusable without eviction.
	c.access(8, false)
	if c.Stats.Evictions != 0 {
		t.Fatal("reuse of freed slot evicted")
	}
}

// TestCacheNeverExceedsCapacity is a property test: under random access
// sequences the resident set never exceeds capacity and the hit/miss
// bookkeeping stays consistent.
func TestCacheNeverExceedsCapacity(t *testing.T) {
	prop := func(seed int64, capLog uint8) bool {
		capBlocks := int64(1) << (capLog%6 + 1) // 2..64
		c := newTestCache(capBlocks, 8)
		rng := rand.New(rand.NewSource(seed))
		for k := 0; k < 2000; k++ {
			b := int64(rng.Intn(200))
			c.access(b, rng.Intn(2) == 0)
			if c.Resident() > capBlocks {
				return false
			}
			if rng.Intn(10) == 0 {
				c.invalidate(int64(rng.Intn(200)))
			}
		}
		return c.Stats.Hits+c.Stats.Misses == 2000
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestCacheMatchesReferenceLRU cross-checks the linked-list implementation
// against a straightforward slice-based LRU model.
func TestCacheMatchesReferenceLRU(t *testing.T) {
	const capBlocks = 8
	c := newTestCache(capBlocks, 8)
	var ref []int64 // ref[0] is MRU
	refAccess := func(b int64) bool {
		for i, x := range ref {
			if x == b {
				ref = append(ref[:i], ref[i+1:]...)
				ref = append([]int64{b}, ref...)
				return true
			}
		}
		ref = append([]int64{b}, ref...)
		if len(ref) > capBlocks {
			ref = ref[:capBlocks]
		}
		return false
	}
	rng := rand.New(rand.NewSource(42))
	for k := 0; k < 5000; k++ {
		b := int64(rng.Intn(20))
		gotHit := c.access(b, false)
		wantHit := refAccess(b)
		if gotHit != wantHit {
			t.Fatalf("step %d block %d: hit=%v want %v", k, b, gotHit, wantHit)
		}
	}
	for _, b := range ref {
		if !c.Contains(b) {
			t.Fatalf("reference holds %d but cache does not", b)
		}
	}
}

// TestSetAssociativeConflicts: a direct-mapped cache (Ways=1) thrashes on
// addresses that collide in one set, while the fully associative cache of
// the same capacity holds them all.
func TestSetAssociativeConflicts(t *testing.T) {
	run := func(ways int) int64 {
		c := &Cache{Level: 1, Index: 0, Block: 8, Cap: 8, Ways: ways}
		// Blocks 0, 8, 16, 24 collide in set 0 when nsets=8 (direct mapped).
		for round := 0; round < 50; round++ {
			for _, b := range []int64{0, 8, 16, 24} {
				c.access(b, false)
			}
		}
		return c.Stats.Misses
	}
	direct := run(1)
	full := run(0)
	if full > 8 {
		t.Fatalf("fully associative missed %d times on 4 blocks", full)
	}
	if direct < 150 {
		t.Fatalf("direct mapped only missed %d times on a conflict set", direct)
	}
}

// TestSetAssocMatchesFullWhenOneSet: Ways == Cap must behave exactly like
// fully associative.
func TestSetAssocMatchesFullWhenOneSet(t *testing.T) {
	a := &Cache{Level: 1, Index: 0, Block: 8, Cap: 8, Ways: 8}
	b := &Cache{Level: 1, Index: 0, Block: 8, Cap: 8, Ways: 0}
	rng := rand.New(rand.NewSource(3))
	for k := 0; k < 3000; k++ {
		blk := int64(rng.Intn(40))
		if a.access(blk, false) != b.access(blk, false) {
			t.Fatalf("step %d: divergence", k)
		}
	}
}

// TestSetAssocNeverExceedsSetCapacity: property test over random traces.
func TestSetAssocNeverExceedsSetCapacity(t *testing.T) {
	prop := func(seed int64) bool {
		c := &Cache{Level: 1, Index: 0, Block: 8, Cap: 16, Ways: 4}
		rng := rand.New(rand.NewSource(seed))
		perSet := make(map[int64]map[int64]bool)
		for k := 0; k < 2000; k++ {
			b := int64(rng.Intn(100))
			c.access(b, rng.Intn(2) == 0)
		}
		// Recover residency per set from the index.
		for b := int64(0); b < 100; b++ {
			if c.Contains(b) {
				s := b % 4
				if perSet[s] == nil {
					perSet[s] = map[int64]bool{}
				}
				perSet[s][b] = true
			}
		}
		for _, m := range perSet {
			if len(m) > 4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
