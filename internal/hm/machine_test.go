package hm

import (
	"testing"
)

func TestMachineTreeGeometry(t *testing.T) {
	m := MustMachine(HM5(2, 4, 4)) // 32 cores
	if m.Cores() != 32 {
		t.Fatalf("cores = %d", m.Cores())
	}
	if got := len(m.ByLevel); got != 4 {
		t.Fatalf("cache levels = %d", got)
	}
	// Shadows are contiguous and nested.
	for c := 0; c < m.Cores(); c++ {
		prevLo, prevHi := c, c+1
		for lv := 1; lv <= 4; lv++ {
			ca := m.CacheOf(c, lv)
			if c < ca.CoreLo || c >= ca.CoreHi {
				t.Fatalf("core %d outside its L%d shadow [%d,%d)", c, lv, ca.CoreLo, ca.CoreHi)
			}
			if ca.CoreLo > prevLo || ca.CoreHi < prevHi {
				t.Fatalf("L%d shadow not nested", lv)
			}
			prevLo, prevHi = ca.CoreLo, ca.CoreHi
		}
	}
	if m.Top().CoreLo != 0 || m.Top().CoreHi != 32 {
		t.Fatalf("top shadow = [%d,%d)", m.Top().CoreLo, m.Top().CoreHi)
	}
}

func TestUnderAndLCA(t *testing.T) {
	m := MustMachine(HM5(2, 4, 4))
	l3 := m.CacheOf(0, 3)
	l2s := m.Under(l3, 2)
	if len(l2s) != 4 {
		t.Fatalf("L2s under first L3 = %d, want 4", len(l2s))
	}
	l1s := m.Under(l3, 1)
	if len(l1s) != 8 {
		t.Fatalf("L1s under first L3 = %d, want 8", len(l1s))
	}
	if got := m.Under(l3, 3); len(got) != 1 || got[0] != l3 {
		t.Fatal("Under at own level should return itself")
	}
	if lca := m.LCA(0, 1); lca.Level != 2 {
		t.Fatalf("LCA(0,1) level = %d, want 2 (share an L2)", lca.Level)
	}
	if lca := m.LCA(0, 2); lca.Level != 3 {
		t.Fatalf("LCA(0,2) level = %d, want 3", lca.Level)
	}
	if lca := m.LCA(0, 31); lca.Level != 4 {
		t.Fatalf("LCA(0,31) level = %d, want 4", lca.Level)
	}
}

func TestSmallestFit(t *testing.T) {
	m := MustMachine(HM4(4, 4)) // C = 2^9, 2^13, 2^18
	cases := []struct {
		space int64
		level int
	}{{1, 1}, {512, 1}, {513, 2}, {1 << 13, 2}, {1 << 14, 3}, {1 << 30, 3}}
	for _, c := range cases {
		if got := m.SmallestFit(c.space); got != c.level {
			t.Errorf("SmallestFit(%d) = %d, want %d", c.space, got, c.level)
		}
	}
}

func TestAllocAlignedAndGrows(t *testing.T) {
	m := MustMachine(MC3(2))
	b1 := m.Cfg.Levels[0].Block
	a := m.Alloc(10)
	b := m.Alloc(3)
	if int64(a)%b1 != 0 || int64(b)%b1 != 0 {
		t.Fatalf("allocations not B1-aligned: %d %d", a, b)
	}
	if b <= a {
		t.Fatal("allocations overlap")
	}
	big := m.Alloc(1 << 20)
	m.Store(0, big+(1<<20)-1, 7)
	if m.Peek(big+(1<<20)-1) != 7 {
		t.Fatal("store to grown memory lost")
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	m := MustMachine(MC3(2))
	a := m.Alloc(16)
	for i := Addr(0); i < 16; i++ {
		m.Store(0, a+i, uint64(i*i))
	}
	for i := Addr(0); i < 16; i++ {
		if got := m.Load(1, a+i); got != uint64(i*i) {
			t.Fatalf("mem[%d] = %d", i, got)
		}
	}
}

// TestScanMissCount checks the fundamental property the whole harness rests
// on: scanning n contiguous words costs ~n/B_i misses at level i.
func TestScanMissCount(t *testing.T) {
	m := MustMachine(MC3(4))
	n := int64(1 << 12)
	a := m.Alloc(n)
	for i := int64(0); i < n; i++ {
		m.Load(0, a+Addr(i))
	}
	st := m.Stats()
	for _, l := range st.Levels {
		b := m.Cfg.Levels[l.Level-1].Block
		want := n / b
		if l.TotalMisses < want || l.TotalMisses > want+2 {
			t.Errorf("L%d misses = %d, want ~%d", l.Level, l.TotalMisses, want)
		}
	}
}

// TestReuseHitsInCache checks temporal locality: re-scanning data that fits
// in L2 but not L1 hits in L2.
func TestReuseHitsInCache(t *testing.T) {
	m := MustMachine(MC3(4)) // C1 = 2^10, C2 = 2^16
	n := int64(1 << 12)      // fits L2, not L1
	a := m.Alloc(n)
	for i := int64(0); i < n; i++ {
		m.Load(0, a+Addr(i))
	}
	first := m.Stats()
	for i := int64(0); i < n; i++ {
		m.Load(0, a+Addr(i))
	}
	second := m.Stats()
	l2new := second.Levels[1].TotalMisses - first.Levels[1].TotalMisses
	if l2new != 0 {
		t.Errorf("second scan took %d L2 misses, want 0", l2new)
	}
	l1new := second.Levels[0].TotalMisses - first.Levels[0].TotalMisses
	if l1new < n/m.Cfg.Levels[0].Block {
		t.Errorf("second scan should still miss in the small L1 (got %d)", l1new)
	}
}

// TestPingPonging checks that interleaved writes to one block by two cores
// under different L1s cause invalidations (ping-ponging), while
// block-respecting writes do not.
func TestPingPonging(t *testing.T) {
	m := MustMachine(MC3(2))
	a := m.Alloc(2) // same B1 block
	for k := 0; k < 100; k++ {
		m.Store(0, a, uint64(k))
		m.Store(1, a+1, uint64(k))
	}
	st := m.Stats()
	if st.Levels[0].Invalid < 100 {
		t.Errorf("interleaved writes: L1 invalidations = %d, want >= 100", st.Levels[0].Invalid)
	}

	m2 := MustMachine(MC3(2))
	b1 := m2.Cfg.Levels[0].Block
	b := m2.Alloc(2 * b1)
	for k := 0; k < 100; k++ {
		m2.Store(0, b, uint64(k))
		m2.Store(1, b+Addr(b1), uint64(k))
	}
	if st2 := m2.Stats(); st2.Levels[0].Invalid != 0 {
		t.Errorf("block-disjoint writes: L1 invalidations = %d, want 0", st2.Levels[0].Invalid)
	}
}

func TestResetAndFlush(t *testing.T) {
	m := MustMachine(MC3(2))
	a := m.Alloc(64)
	m.Store(0, a, 1)
	m.ResetStats()
	if st := m.Stats(); st.Accesses != 0 || st.Levels[0].TotalMisses != 0 {
		t.Fatal("ResetStats left counters")
	}
	// After ResetStats (not flush) the block is still cached.
	m.Load(0, a)
	if st := m.Stats(); st.Levels[0].TotalMisses != 0 {
		t.Fatal("block was evicted by ResetStats")
	}
	m.FlushCaches()
	m.Load(0, a)
	if st := m.Stats(); st.Levels[0].TotalMisses != 1 {
		t.Fatal("FlushCaches did not empty caches")
	}
	if m.Peek(a) != 1 {
		t.Fatal("flush destroyed memory contents")
	}
}

func TestSnapshotString(t *testing.T) {
	m := MustMachine(MC3(2))
	a := m.Alloc(8)
	m.Load(0, a)
	if s := m.Stats().String(); len(s) == 0 {
		t.Fatal("empty snapshot string")
	}
}
