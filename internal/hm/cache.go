package hm

// Cache is one cache in the hierarchy.  The HM model does not constrain
// associativity and the cache-oblivious literature assumes ideal (fully
// associative LRU) caches; that is the default here (Ways = 0).  A positive
// Ways value makes the cache set-associative with LRU within each set — an
// extension knob for studying how far the ideal-cache assumption carries
// (see the associativity tests and the ablation benchmarks).
//
// Cache state is a set of resident block ids; block id b at a level with
// block size B covers word addresses [b*B, (b+1)*B).
type Cache struct {
	Level int // 1-based cache level
	Index int // index among the q_i caches of this level, left to right
	Block int64
	Cap   int64 // capacity in blocks
	Ways  int   // 0 = fully associative; else blocks per set

	parent *Cache // nil at the topmost cache level
	// CoreLo/CoreHi delimit the contiguous range of cores in this cache's
	// shadow: cores [CoreLo, CoreHi).
	CoreLo, CoreHi int

	Stats CacheStats

	// LRU bookkeeping: slot-indexed doubly linked lists (one per set) plus
	// a block->slot map.  Set s owns slots [s*ways, (s+1)*ways).
	slots  []slot
	index  map[int64]int32
	head   []int32 // per-set most recently used
	tail   []int32 // per-set least recently used
	free   []int32 // per-set free-slot list head, chained through next
	nsets  int64
	ways   int64
	inited bool
}

type slot struct {
	block      int64
	prev, next int32
	dirty      bool
}

// CacheStats counts block traffic at a single cache.
type CacheStats struct {
	Hits          int64
	Misses        int64 // block transfers into the cache
	Evictions     int64
	Writebacks    int64 // dirty block transfers out
	Invalidations int64 // coherence invalidations received (ping-ponging)
}

// Transfers returns block transfers into and out of the cache, the quantity
// the paper's cache complexity bounds.
func (s CacheStats) Transfers() int64 { return s.Misses + s.Writebacks }

const nilSlot = int32(-1)

func (c *Cache) init() {
	c.ways = int64(c.Ways)
	if c.ways <= 0 || c.ways > c.Cap {
		c.ways = c.Cap
	}
	c.nsets = c.Cap / c.ways
	c.slots = make([]slot, c.Cap)
	c.index = make(map[int64]int32, c.Cap*2)
	c.head = make([]int32, c.nsets)
	c.tail = make([]int32, c.nsets)
	c.free = make([]int32, c.nsets)
	for s := int64(0); s < c.nsets; s++ {
		lo, hi := s*c.ways, (s+1)*c.ways
		for i := lo; i < hi; i++ {
			c.slots[i].prev = nilSlot
			c.slots[i].next = int32(i) + 1
		}
		c.slots[hi-1].next = nilSlot
		c.free[s] = int32(lo)
		c.head[s], c.tail[s] = nilSlot, nilSlot
	}
	c.inited = true
}

// setOf maps a block id to its set.
func (c *Cache) setOf(b int64) int64 {
	if c.nsets <= 1 {
		return 0
	}
	return b % c.nsets
}

// Contains reports whether block b is resident (no LRU update, no counters).
func (c *Cache) Contains(b int64) bool {
	if !c.inited {
		return false
	}
	_, ok := c.index[b]
	return ok
}

// touch moves an already-resident slot to its set's MRU position.
func (c *Cache) touch(set int64, s int32) {
	if c.head[set] == s {
		return
	}
	sl := &c.slots[s]
	if sl.prev != nilSlot {
		c.slots[sl.prev].next = sl.next
	}
	if sl.next != nilSlot {
		c.slots[sl.next].prev = sl.prev
	}
	if c.tail[set] == s {
		c.tail[set] = sl.prev
	}
	sl.prev = nilSlot
	sl.next = c.head[set]
	if c.head[set] != nilSlot {
		c.slots[c.head[set]].prev = s
	}
	c.head[set] = s
	if c.tail[set] == nilSlot {
		c.tail[set] = s
	}
}

// access looks up block b, updating LRU order and hit/miss counters.  On a
// miss the block is installed, evicting its set's LRU block if necessary
// (counting a writeback if it was dirty).  write marks the block dirty.
// Returns true on hit.
func (c *Cache) access(b int64, write bool) bool {
	if !c.inited {
		c.init()
	}
	if s, ok := c.index[b]; ok {
		c.Stats.Hits++
		c.touch(c.setOf(b), s)
		if write {
			c.slots[s].dirty = true
		}
		return true
	}
	c.Stats.Misses++
	c.install(b, write)
	return false
}

// install places block b at its set's MRU position, evicting if full.
func (c *Cache) install(b int64, dirty bool) {
	if !c.inited {
		c.init()
	}
	set := c.setOf(b)
	var s int32
	if c.free[set] != nilSlot {
		s = c.free[set]
		c.free[set] = c.slots[s].next
	} else {
		// Evict the set's LRU.
		s = c.tail[set]
		victim := &c.slots[s]
		c.Stats.Evictions++
		if victim.dirty {
			c.Stats.Writebacks++
		}
		delete(c.index, victim.block)
		c.tail[set] = victim.prev
		if c.tail[set] != nilSlot {
			c.slots[c.tail[set]].next = nilSlot
		} else {
			c.head[set] = nilSlot
		}
	}
	c.slots[s] = slot{block: b, prev: nilSlot, next: c.head[set], dirty: dirty}
	if c.head[set] != nilSlot {
		c.slots[c.head[set]].prev = s
	}
	c.head[set] = s
	if c.tail[set] == nilSlot {
		c.tail[set] = s
	}
	c.index[b] = s
}

// invalidate removes block b if resident, counting an invalidation.  A dirty
// victim counts a writeback (its data must move before another core's copy
// becomes authoritative).
func (c *Cache) invalidate(b int64) {
	if !c.inited {
		return
	}
	s, ok := c.index[b]
	if !ok {
		return
	}
	set := c.setOf(b)
	c.Stats.Invalidations++
	sl := &c.slots[s]
	if sl.dirty {
		c.Stats.Writebacks++
	}
	delete(c.index, b)
	if sl.prev != nilSlot {
		c.slots[sl.prev].next = sl.next
	} else {
		c.head[set] = sl.next
	}
	if sl.next != nilSlot {
		c.slots[sl.next].prev = sl.prev
	} else {
		c.tail[set] = sl.prev
	}
	sl.next = c.free[set]
	sl.prev = nilSlot
	c.free[set] = s
}

// Flush empties the cache without counting traffic (used between runs).
func (c *Cache) Flush() {
	c.inited = false
	c.slots = nil
	c.index = nil
	c.head, c.tail, c.free = nil, nil, nil
}

// ResetStats zeroes the traffic counters, keeping contents.
func (c *Cache) ResetStats() { c.Stats = CacheStats{} }
