package hm

// Cache is one cache in the hierarchy.  The HM model does not constrain
// associativity and the cache-oblivious literature assumes ideal (fully
// associative LRU) caches; that is the default here (Ways = 0).  A positive
// Ways value makes the cache set-associative with LRU within each set — an
// extension knob for studying how far the ideal-cache assumption carries
// (see the associativity tests and the ablation benchmarks).
//
// Cache state is a set of resident block ids; block id b at a level with
// block size B covers word addresses [b*B, (b+1)*B).
type Cache struct {
	Level int // 1-based cache level
	Index int // index among the q_i caches of this level, left to right
	Block int64
	Cap   int64 // capacity in blocks
	Ways  int   // 0 = fully associative; else blocks per set

	parent *Cache // nil at the topmost cache level
	// CoreLo/CoreHi delimit the contiguous range of cores in this cache's
	// shadow: cores [CoreLo, CoreHi).
	CoreLo, CoreHi int

	Stats CacheStats

	// LRU bookkeeping: slot-indexed doubly linked lists (one per set) plus
	// a block->slot index.  Set s owns slots [s*ways, (s+1)*ways).  The
	// index is a dense slice keyed by block id (block ids are bounded by
	// heap/Block, so it stays small) — this is the simulator's hottest
	// lookup and a map here dominated whole-run profiles.
	slots   []slot
	index   []int32 // block id -> slot, nilSlot when absent
	head    []int32 // per-set most recently used
	tail    []int32 // per-set least recently used
	free    []int32 // per-set free-slot list head, chained through next
	nsets   int64
	setMask int64 // nsets-1 when nsets is a power of two, else -1
	ways    int64

	// Timestamp LRU (small sets): recency is a per-slot stamp and the
	// eviction victim is the set's minimum stamp — exactly the linked-list
	// tail — but a hit costs one store instead of a list reposition.
	// Eviction pays an O(ways) victim scan, which is fine precisely when
	// sets are small (evictions are as rare as misses).  stamp == nil
	// selects the linked-list implementation for large fully-associative
	// caches, where the scan would dominate miss-heavy runs.
	stamp []int64
	tick  int64

	resident int64 // blocks currently held
	inited   bool
}

// stampLRUMax bounds the per-eviction victim scan of timestamp LRU: caches
// whose sets are larger keep the linked-list implementation.  64 covers the
// L1s (touched on every access, tiny scan) while miss-heavy upper levels,
// where an O(set) scan per eviction would outweigh the cheap touches, stay
// on the O(1)-eviction list.
const stampLRUMax = 64

type slot struct {
	block      int64
	prev, next int32
	dirty      bool
}

// CacheStats counts block traffic at a single cache.
type CacheStats struct {
	Hits          int64
	Misses        int64 // block transfers into the cache
	Evictions     int64
	Writebacks    int64 // dirty block transfers out
	Invalidations int64 // coherence invalidations received (ping-ponging)
}

// Transfers returns block transfers into and out of the cache, the quantity
// the paper's cache complexity bounds.
func (s CacheStats) Transfers() int64 { return s.Misses + s.Writebacks }

const nilSlot = int32(-1)

func (c *Cache) init() {
	c.ways = int64(c.Ways)
	if c.ways <= 0 || c.ways > c.Cap {
		c.ways = c.Cap
	}
	c.nsets = c.Cap / c.ways
	c.setMask = -1
	if c.nsets&(c.nsets-1) == 0 {
		c.setMask = c.nsets - 1
	}
	// Arrays are retained across Flush (see there) and reused when the
	// geometry is unchanged, so repeated cold runs allocate nothing: the
	// grown index keeps its final size and is re-filled with nilSlot.
	if int64(len(c.slots)) != c.Cap {
		c.slots = make([]slot, c.Cap)
	}
	for i := range c.index {
		c.index[i] = nilSlot
	}
	if c.ways <= stampLRUMax {
		if int64(len(c.stamp)) != c.Cap {
			c.stamp = make([]int64, c.Cap)
			c.tick = 1
		}
		// Reused stamps stay monotonic (tick is not reset), so stale
		// values can never shadow fresh ones.
	} else {
		c.stamp = nil
	}
	if int64(len(c.head)) != c.nsets {
		c.head = make([]int32, c.nsets)
		c.tail = make([]int32, c.nsets)
		c.free = make([]int32, c.nsets)
	}
	for s := int64(0); s < c.nsets; s++ {
		lo, hi := s*c.ways, (s+1)*c.ways
		for i := lo; i < hi; i++ {
			c.slots[i].prev = nilSlot
			c.slots[i].next = int32(i) + 1
		}
		c.slots[hi-1].next = nilSlot
		c.free[s] = int32(lo)
		c.head[s], c.tail[s] = nilSlot, nilSlot
	}
	c.resident = 0
	c.inited = true
}

// setOf maps a block id to its set.
func (c *Cache) setOf(b int64) int64 {
	if c.setMask >= 0 {
		return b & c.setMask
	}
	return b % c.nsets
}

// lookup returns the slot holding block b, or nilSlot.
func (c *Cache) lookup(b int64) int32 {
	if b >= int64(len(c.index)) {
		return nilSlot
	}
	return c.index[b]
}

// setIndex records block b in slot s, growing the dense index on demand.
func (c *Cache) setIndex(b int64, s int32) {
	if b >= int64(len(c.index)) {
		n := int64(len(c.index)) * 2
		if n < b+1 {
			n = b + 1
		}
		if n < 1024 {
			n = 1024
		}
		grown := make([]int32, n)
		copy(grown, c.index)
		for i := len(c.index); i < len(grown); i++ {
			grown[i] = nilSlot
		}
		c.index = grown
	}
	c.index[b] = s
}

// Contains reports whether block b is resident (no LRU update, no counters).
func (c *Cache) Contains(b int64) bool {
	if !c.inited {
		return false
	}
	return c.lookup(b) != nilSlot
}

// Resident returns the number of blocks currently held (always <= Cap).
func (c *Cache) Resident() int64 { return c.resident }

// Parent returns the next cache up on this cache's path to memory, or nil at
// the topmost level.  The failure-recovery layer (core.WithFailures) walks
// this chain to find a surviving core when a whole cache shadow is dead.
func (c *Cache) Parent() *Cache { return c.parent }

// touch moves an already-resident slot to its set's MRU position.
func (c *Cache) touch(set int64, s int32) {
	if c.stamp != nil {
		c.stamp[s] = c.tick
		c.tick++
		return
	}
	if c.head[set] == s {
		return
	}
	sl := &c.slots[s]
	if sl.prev != nilSlot {
		c.slots[sl.prev].next = sl.next
	}
	if sl.next != nilSlot {
		c.slots[sl.next].prev = sl.prev
	}
	if c.tail[set] == s {
		c.tail[set] = sl.prev
	}
	sl.prev = nilSlot
	sl.next = c.head[set]
	if c.head[set] != nilSlot {
		c.slots[c.head[set]].prev = s
	}
	c.head[set] = s
	if c.tail[set] == nilSlot {
		c.tail[set] = s
	}
}

// access looks up block b, updating LRU order and hit/miss counters.  On a
// miss the block is installed, evicting its set's LRU block if necessary
// (counting a writeback if it was dirty).  write marks the block dirty.
// Returns true on hit.
func (c *Cache) access(b int64, write bool) bool {
	if !c.inited {
		c.init()
	}
	if s := c.lookup(b); s != nilSlot {
		c.Stats.Hits++
		c.touch(c.setOf(b), s)
		if write {
			c.slots[s].dirty = true
		}
		return true
	}
	c.Stats.Misses++
	c.install(b, write)
	return false
}

// install places block b at its set's MRU position, evicting if full.
func (c *Cache) install(b int64, dirty bool) {
	if !c.inited {
		c.init()
	}
	set := c.setOf(b)
	var s int32
	if c.free[set] != nilSlot {
		s = c.free[set]
		c.free[set] = c.slots[s].next
		c.resident++
	} else if c.stamp != nil {
		// Evict the set's LRU: the minimum stamp (scan only runs when the
		// set is full, i.e. once per miss).
		lo, hi := set*c.ways, (set+1)*c.ways
		s = int32(lo)
		min := c.stamp[lo]
		for i := lo + 1; i < hi; i++ {
			if c.stamp[i] < min {
				min, s = c.stamp[i], int32(i)
			}
		}
		victim := &c.slots[s]
		c.Stats.Evictions++
		if victim.dirty {
			c.Stats.Writebacks++
		}
		c.index[victim.block] = nilSlot
	} else {
		// Evict the set's LRU: the list tail.
		s = c.tail[set]
		victim := &c.slots[s]
		c.Stats.Evictions++
		if victim.dirty {
			c.Stats.Writebacks++
		}
		c.index[victim.block] = nilSlot
		c.tail[set] = victim.prev
		if c.tail[set] != nilSlot {
			c.slots[c.tail[set]].next = nilSlot
		} else {
			c.head[set] = nilSlot
		}
	}
	if c.stamp != nil {
		c.slots[s] = slot{block: b, prev: nilSlot, next: nilSlot, dirty: dirty}
		c.stamp[s] = c.tick
		c.tick++
		c.setIndex(b, s)
		return
	}
	c.slots[s] = slot{block: b, prev: nilSlot, next: c.head[set], dirty: dirty}
	if c.head[set] != nilSlot {
		c.slots[c.head[set]].prev = s
	}
	c.head[set] = s
	if c.tail[set] == nilSlot {
		c.tail[set] = s
	}
	c.setIndex(b, s)
}

// invalidate removes block b if resident, counting an invalidation.  A dirty
// victim counts a writeback (its data must move before another core's copy
// becomes authoritative).
func (c *Cache) invalidate(b int64) {
	if !c.inited {
		return
	}
	s := c.lookup(b)
	if s == nilSlot {
		return
	}
	set := c.setOf(b)
	c.Stats.Invalidations++
	sl := &c.slots[s]
	if sl.dirty {
		c.Stats.Writebacks++
	}
	c.index[b] = nilSlot
	if c.stamp != nil {
		sl.next = c.free[set]
		sl.prev = nilSlot
		sl.dirty = false
		c.free[set] = s
		c.resident--
		return
	}
	if sl.prev != nilSlot {
		c.slots[sl.prev].next = sl.next
	} else {
		c.head[set] = sl.next
	}
	if sl.next != nilSlot {
		c.slots[sl.next].prev = sl.prev
	} else {
		c.tail[set] = sl.prev
	}
	sl.next = c.free[set]
	sl.prev = nilSlot
	c.free[set] = s
	c.resident--
}

// Flush empties the cache without counting traffic (used between runs).
// The backing arrays are kept and recycled by the next init, so a flush
// costs O(1) and repeated cold runs are allocation-free.
func (c *Cache) Flush() {
	c.inited = false
	c.resident = 0
}

// ResetStats zeroes the traffic counters, keeping contents.
func (c *Cache) ResetStats() { c.Stats = CacheStats{} }
