package hm

import (
	"reflect"
	"testing"
)

// TestInjectCacheFault: a transient fault drops a cache's resident blocks
// while keeping its traffic counters (miss monotonicity for the verified
// engine) and memory authoritative; the next access to a dropped block is a
// compulsory miss again.
func TestInjectCacheFault(t *testing.T) {
	m := MustMachine(MC3(4))
	base := m.Alloc(1 << 10)
	for i := int64(0); i < 256; i++ {
		m.Store(0, base+Addr(i), uint64(i))
	}
	l1 := m.ByLevel[0][0]
	if l1.Resident() == 0 {
		t.Fatal("L1[0] empty after 256 stores")
	}
	preStats := l1.Stats
	preResident := l1.Resident()

	dropped := m.InjectCacheFault(1, 0)
	if dropped != preResident {
		t.Fatalf("InjectCacheFault dropped %d blocks, cache held %d", dropped, preResident)
	}
	if l1.Resident() != 0 {
		t.Fatalf("faulted cache still holds %d blocks", l1.Resident())
	}
	if l1.Stats != preStats {
		t.Fatalf("fault changed traffic counters: %+v -> %+v", preStats, l1.Stats)
	}
	if m.Faults != 1 {
		t.Fatalf("machine Faults = %d, want 1", m.Faults)
	}
	// Memory stays authoritative: the data survives, only locality is lost.
	for i := int64(0); i < 256; i++ {
		if got := m.Peek(base + Addr(i)); got != uint64(i) {
			t.Fatalf("mem[%d] = %d after fault, want %d", i, got, i)
		}
	}
	// Re-touching a dropped block pays a fresh compulsory miss.
	preMisses := l1.Stats.Misses
	if m.Load(0, base) != 0 {
		t.Fatal("reload after fault returned wrong value")
	}
	if l1.Stats.Misses != preMisses+1 {
		t.Fatalf("reload after fault: misses %d -> %d, want +1", preMisses, l1.Stats.Misses)
	}
	// ResetStats does not clear the fault counter: faults are machine
	// events, not per-run traffic.
	m.ResetStats()
	if m.Faults != 1 {
		t.Fatalf("ResetStats cleared Faults: %d", m.Faults)
	}
}

// TestInjectCacheFaultParallelReplayEquivalent: the same access/fault
// sequence replayed through the parallel pipeline yields byte-identical
// counters — a fault drains the pipeline first and stale holder-mask bits
// are harmless on both backends.
func TestInjectCacheFaultParallelReplayEquivalent(t *testing.T) {
	run := func(parallel bool) Snapshot {
		m := MustMachine(HM4(2, 2))
		if parallel {
			m.EnableParallelReplay(3)
			defer m.StopReplay()
		}
		base := m.Alloc(1 << 12)
		for i := int64(0); i < 512; i++ {
			m.Store(int(i)%m.Cores(), base+Addr(i*3%1024), uint64(i))
		}
		m.InjectCacheFault(1, 1)
		m.InjectCacheFault(2, 0)
		for i := int64(0); i < 512; i++ {
			m.Load(int(i)%m.Cores(), base+Addr(i*7%1024))
		}
		return m.Stats()
	}
	serial, par := run(false), run(true)
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("fault sequence diverged between backends:\nserial %+v\npar    %+v", serial, par)
	}
}
