package hm

// Stream-level equivalence of the round fan-in flush paths (fanin.go)
// against the plain serial access walk.  A synthetic driver records
// per-core, per-round access chunks through StartRoundFanIn/MarkRound —
// exactly what the engine's speculative phase produces — and flushes them
// in (round, core) lexicographic order through FlushFanRounds and
// FlushFanChunk; a second machine of the same preset consumes the same
// stream in that serial interleaving directly.  Every cache must end with
// byte-identical stats and residency, and the access counters must agree,
// across the serial flush branch, the zero-copy epoch dispatch into the
// replay pipeline, the epoched per-chunk fallback, and partial rounds.

import (
	"fmt"
	"math/rand"
	"testing"
)

// fanAcc is one planned access: writes stay inside the issuing core's own
// region (the engine's fork-join race-freedom contract), loads roam across
// all regions plus a shared hot range so coherent presets see real
// invalidation traffic through the write side-lists.
type fanAcc struct {
	a     Addr
	write bool
}

// planFanPhase builds rounds+1 rows of per-core chunks; the last row is the
// partial round (recorded but never marked).
func planFanPhase(rng *rand.Rand, cores []int, ncores, rounds, perRound int) [][][]fanAcc {
	plan := make([][][]fanAcc, rounds+1)
	for r := range plan {
		plan[r] = make([][]fanAcc, ncores)
		for _, c := range cores {
			n := 1 + rng.Intn(perRound)
			if r == rounds {
				n = rng.Intn(perRound) // partial rounds may be empty
			}
			chunk := make([]fanAcc, n)
			for i := range chunk {
				if rng.Intn(3) == 0 {
					chunk[i] = fanAcc{a: Addr(int64(c)*1024 + rng.Int63n(1024)), write: true}
				} else if rng.Intn(3) == 0 {
					chunk[i] = fanAcc{a: Addr(rng.Int63n(512))} // shared hot region
				} else {
					chunk[i] = fanAcc{a: Addr(int64(rng.Intn(ncores))*1024 + rng.Int63n(1024))}
				}
			}
			plan[r][c] = chunk
		}
	}
	return plan
}

// driveFanPhase records the plan into fan's fan-in buffers (per core, in
// round order, marking completed rounds), replays the serial interleaving
// into serial directly, then flushes fan's buffers: one bulk range
// [0, bulkHi), a second bulk range [bulkHi, rounds) — which on a pipeline
// machine exercises the epoched per-chunk fallback — and finally the
// per-core partial chunks.
func driveFanPhase(t *testing.T, serial, fan *Machine, plan [][][]fanAcc, cores []int, bulkHi int) {
	t.Helper()
	rounds := len(plan) - 1
	fan.StartRoundFanIn()
	for _, c := range cores {
		for r := 0; r <= rounds; r++ {
			for _, ac := range plan[r][c] {
				if ac.write {
					fan.Store(c, ac.a, uint64(ac.a))
				} else {
					fan.Load(c, ac.a)
				}
			}
			if r < rounds {
				fan.MarkRound(c)
			}
		}
	}
	fan.EndRoundFanIn()

	for r := 0; r <= rounds; r++ {
		for _, c := range cores {
			for _, ac := range plan[r][c] {
				if ac.write {
					serial.Store(c, ac.a, uint64(ac.a))
				} else {
					serial.Load(c, ac.a)
				}
			}
		}
	}

	fan.FlushFanRounds(cores, 0, bulkHi)
	fan.FlushFanRounds(cores, bulkHi, rounds)
	for _, c := range cores {
		fan.FlushFanChunk(c, rounds)
	}
}

// TestFlushFanRoundsSerialWalk pins the pipeline-free branch of
// FlushFanRounds: bulk ranges walk the cache hierarchy in-line in
// (round, core) order, including a core subset and trailing partial rounds.
func TestFlushFanRoundsSerialWalk(t *testing.T) {
	for _, cfg := range []Config{MC3(8), HM4(4, 4)} {
		t.Run(cfg.Name, func(t *testing.T) {
			serial, fan := MustMachine(cfg), MustMachine(cfg)
			serial.Alloc(parTestHeap)
			fan.Alloc(parTestHeap)
			rng := rand.New(rand.NewSource(7))
			all := make([]int, fan.Cores())
			for i := range all {
				all[i] = i
			}
			subset := all[:len(all)-1]
			for phase := 0; phase < 4; phase++ {
				cores := all
				if phase%2 == 1 {
					cores = subset
				}
				plan := planFanPhase(rng, cores, fan.Cores(), 12, 24)
				driveFanPhase(t, serial, fan, plan, cores, 9)
			}
			compareMachines(t, serial, fan, cfg.Name)
		})
	}
}

// TestParallelFanEpochDispatch pins the zero-copy epoch dispatch into the
// replay pipeline: the first bulk range of each phase loans the fan arrays
// out as a single epoch batch, the second bulk range of the same phase must
// take the per-chunk fallback, partial rounds flush through the ordinary
// bulk-append path, and running more phases than parMaxEpochBatches forces
// batch recycling plus the loaned-array swap in StartRoundFanIn.  Coherent
// presets route the recorded write side-lists through the shard
// invalidation walk.
func TestParallelFanEpochDispatch(t *testing.T) {
	for name, cfg := range Presets() {
		for _, workers := range []int{2, 4} {
			t.Run(fmt.Sprintf("%s/w%d", name, workers), func(t *testing.T) {
				serial, fan := MustMachine(cfg), MustMachine(cfg)
				serial.Alloc(parTestHeap)
				fan.Alloc(parTestHeap)
				fan.EnableParallelReplay(workers)
				defer fan.StopReplay()
				rng := rand.New(rand.NewSource(11))
				cores := make([]int, fan.Cores())
				for i := range cores {
					cores[i] = i
				}
				phases := 3 * parMaxEpochBatches // forces epoch batch reuse
				for phase := 0; phase < phases; phase++ {
					plan := planFanPhase(rng, cores, fan.Cores(), 10, 32)
					driveFanPhase(t, serial, fan, plan, cores, 7)
					if phase == phases/2 {
						// Mid-run drain: Stats syncs the pipeline while the
						// current arrays are still loaned out, so the next
						// StartRoundFanIn must swap in reclaimed ones.
						compareMachines(t, serial, fan, fmt.Sprintf("%s mid-run", name))
					}
				}
				compareMachines(t, serial, fan, name)
			})
		}
	}
}
