package gep

import "oblivhm/internal/core"

// Solvers built on the Gaussian-elimination GEP instance: after IGEP with
// Gauss() the matrix holds U in its upper triangle and L·diag(U) residue
// below, from which triangular solves recover x with A·x = b.  These make
// the paper's flagship instance usable as a linear-algebra building block.

// TransitiveClosure returns the GEP instance computing the reflexive
// transitive closure of a boolean adjacency matrix (entries 0/1):
// x[i,j] ← max(x[i,j], min(x[i,k], x[k,j])) over the full update set —
// Floyd–Warshall on the boolean semiring.
func TransitiveClosure() Spec {
	return Spec{
		F: func(x, u, v, w float64) float64 {
			r := u
			if v < u {
				r = v
			}
			if r > x {
				return r
			}
			return x
		},
		S: Full{},
	}
}

// SolveLU solves A·x = b given the in-place Gauss() elimination result
// (see LU): forward substitution with the implicit unit-lower factor, then
// back substitution with U.  b is overwritten with x.  Runs as a sequence
// of CGC loops (one per pivot), matching the elimination's data layout.
//
//oblivcheck:secret lu b
func SolveLU(c *core.Ctx, lu core.Mat, b core.F64) {
	n := lu.Rows
	// Forward: y[i] = b[i] − Σ_{k<i} L[i,k]·y[k], L[i,k] = lu[i,k]/lu[k,k].
	for k := 0; k < n; k++ {
		yk := b.At(c, k)
		pivot := lu.At(c, k, k)
		c.PFor(n-k-1, 1, func(cc *core.Ctx, lo, hi int) {
			for t := lo; t < hi; t++ {
				i := k + 1 + t
				cc.Tick(1)
				b.Set(cc, i, b.At(cc, i)-lu.At(cc, i, k)/pivot*yk)
			}
		})
	}
	// Back: x[i] = (y[i] − Σ_{k>i} U[i,k]·x[k]) / U[i,i].
	for k := n - 1; k >= 0; k-- {
		xk := b.At(c, k) / lu.At(c, k, k)
		b.Set(c, k, xk)
		c.PFor(k, 1, func(cc *core.Ctx, lo, hi int) {
			for i := lo; i < hi; i++ {
				cc.Tick(1)
				b.Set(cc, i, b.At(cc, i)-lu.At(cc, i, k)*xk)
			}
		})
	}
}

// Determinant returns det(A) from the Gauss() elimination result: the
// product of the pivots.
func Determinant(s *core.Session, lu core.Mat) float64 {
	det := 1.0
	for k := 0; k < lu.Rows; k++ {
		det *= s.PeekM(lu, k, k)
	}
	return det
}
