package gep

import "oblivhm/internal/core"

// I-GEP (appendix of the paper): four recursive functions 𝒜, ℬ, 𝒞, 𝒟
// distinguished by how much the input matrices X ≡ x[I,J], U ≡ x[I,K],
// V ≡ x[K,J], W ≡ x[K,K] overlap.  Each performs the updates in
// Σ_f ∩ (I×J×K) through eight recursive calls on quadrants; the initial
// call is 𝒜(x,x,x,x).  Parallel recursive calls are forked with the SB
// hint using the declared space bounds S_𝒜(m)=m², S_ℬ=S_𝒞=2m², S_𝒟=4m²
// (Theorem 5).
//
// The recursion carries the index origins (i0, j0, k0) of the intervals
// I, J, K so that Σ_f membership can be tested globally.

// baseSize is the side length at which the recursion switches to the
// reference triple loop over the block.  The paper recurses to 1×1; any
// small constant preserves both correctness (the base executes updates in
// the canonical k,i,j order) and the block-level access pattern, while
// keeping the simulator's call overhead bounded.
const baseSize = 4

type igepCall struct {
	g Spec
}

// IGEP runs the I-GEP computation 𝒜(x,x,x,x) on the n×n matrix x.
// n must be a power of two.
//
//oblivcheck:secret x
func IGEP(c *core.Ctx, x core.Mat, g Spec) {
	r := igepCall{g: g}
	r.funcA(c, x, x, x, x, x.Rows, 0, 0, 0)
}

// SpaceBound is the space bound of the initial call in words.
func SpaceBound(n int) int64 { return int64(n) * int64(n) }

// base executes all updates of Σ_f within the cube at (i0,j0,k0) of side m
// in the canonical k, i, j order.
func (r igepCall) base(c *core.Ctx, X, U, V, W core.Mat, m, i0, j0, k0 int) {
	// Every update reads all four operands afresh: X, U, V, W may alias in
	// functions 𝒜, ℬ and 𝒞, so caching any of them across writes would
	// change the semantics.
	for k := 0; k < m; k++ {
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				if r.g.S.Has(i0+i, j0+j, k0+k) {
					c.Tick(1)
					X.Set(c, i, j, r.g.F(X.At(c, i, j), U.At(c, i, k), V.At(c, k, j), W.At(c, k, k)))
				}
			}
		}
	}
}

// funcA: X ≡ U ≡ V ≡ W ≡ x[I,I].
func (r igepCall) funcA(c *core.Ctx, X, U, V, W core.Mat, m, i0, j0, k0 int) {
	if !r.g.S.Intersects(i0, j0, k0, m) {
		return
	}
	if m <= baseSize {
		r.base(c, X, U, V, W, m, i0, j0, k0)
		return
	}
	h := m / 2
	x11, x12, x21, x22 := X.Quads()
	u11, u12, u21, u22 := U.Quads()
	v11, v12, v21, v22 := V.Quads()
	w11, w22 := quadDiag(W)
	sp := int64(h) * int64(h)

	r.funcA(c, x11, u11, v11, w11, h, i0, j0, k0)
	c.SpawnSB(
		core.Task{Space: 2 * sp, Fn: func(cc *core.Ctx) { r.funcB(cc, x12, u11, v12, w11, h, i0, j0+h, k0) }},
		core.Task{Space: 2 * sp, Fn: func(cc *core.Ctx) { r.funcC(cc, x21, u21, v11, w11, h, i0+h, j0, k0) }},
	)
	r.funcD(c, x22, u21, v12, w11, h, i0+h, j0+h, k0)
	r.funcA(c, x22, u22, v22, w22, h, i0+h, j0+h, k0+h)
	c.SpawnSB(
		core.Task{Space: 2 * sp, Fn: func(cc *core.Ctx) { r.funcB(cc, x21, u22, v21, w22, h, i0+h, j0, k0+h) }},
		core.Task{Space: 2 * sp, Fn: func(cc *core.Ctx) { r.funcC(cc, x12, u12, v22, w22, h, i0, j0+h, k0+h) }},
	)
	r.funcD(c, x11, u12, v21, w22, h, i0, j0, k0+h)
}

// funcB: X ≡ V ≡ x[I,J], U ≡ W ≡ x[I,I] (here the K interval equals I).
func (r igepCall) funcB(c *core.Ctx, X, U, V, W core.Mat, m, i0, j0, k0 int) {
	if !r.g.S.Intersects(i0, j0, k0, m) {
		return
	}
	if m <= baseSize {
		r.base(c, X, U, V, W, m, i0, j0, k0)
		return
	}
	h := m / 2
	x11, x12, x21, x22 := X.Quads()
	u11, u12, u21, u22 := U.Quads()
	v11, v12, v21, v22 := V.Quads()
	w11, w22 := quadDiag(W)
	sp := int64(h) * int64(h)

	c.SpawnSB(
		core.Task{Space: 2 * sp, Fn: func(cc *core.Ctx) { r.funcB(cc, x11, u11, v11, w11, h, i0, j0, k0) }},
		core.Task{Space: 2 * sp, Fn: func(cc *core.Ctx) { r.funcB(cc, x12, u11, v12, w11, h, i0, j0+h, k0) }},
	)
	c.SpawnSB(
		core.Task{Space: 4 * sp, Fn: func(cc *core.Ctx) { r.funcD(cc, x21, u21, v11, w11, h, i0+h, j0, k0) }},
		core.Task{Space: 4 * sp, Fn: func(cc *core.Ctx) { r.funcD(cc, x22, u21, v12, w11, h, i0+h, j0+h, k0) }},
	)
	c.SpawnSB(
		core.Task{Space: 2 * sp, Fn: func(cc *core.Ctx) { r.funcB(cc, x21, u22, v21, w22, h, i0+h, j0, k0+h) }},
		core.Task{Space: 2 * sp, Fn: func(cc *core.Ctx) { r.funcB(cc, x22, u22, v22, w22, h, i0+h, j0+h, k0+h) }},
	)
	c.SpawnSB(
		core.Task{Space: 4 * sp, Fn: func(cc *core.Ctx) { r.funcD(cc, x11, u12, v21, w22, h, i0, j0, k0+h) }},
		core.Task{Space: 4 * sp, Fn: func(cc *core.Ctx) { r.funcD(cc, x12, u12, v22, w22, h, i0, j0+h, k0+h) }},
	)
}

// funcC: X ≡ U ≡ x[I,J], V ≡ W ≡ x[J,J] (here the K interval equals J).
func (r igepCall) funcC(c *core.Ctx, X, U, V, W core.Mat, m, i0, j0, k0 int) {
	if !r.g.S.Intersects(i0, j0, k0, m) {
		return
	}
	if m <= baseSize {
		r.base(c, X, U, V, W, m, i0, j0, k0)
		return
	}
	h := m / 2
	x11, x12, x21, x22 := X.Quads()
	u11, u12, u21, u22 := U.Quads()
	v11, v12, v21, v22 := V.Quads()
	w11, w22 := quadDiag(W)
	sp := int64(h) * int64(h)

	c.SpawnSB(
		core.Task{Space: 2 * sp, Fn: func(cc *core.Ctx) { r.funcC(cc, x11, u11, v11, w11, h, i0, j0, k0) }},
		core.Task{Space: 2 * sp, Fn: func(cc *core.Ctx) { r.funcC(cc, x21, u21, v11, w11, h, i0+h, j0, k0) }},
	)
	c.SpawnSB(
		core.Task{Space: 4 * sp, Fn: func(cc *core.Ctx) { r.funcD(cc, x12, u11, v12, w11, h, i0, j0+h, k0) }},
		core.Task{Space: 4 * sp, Fn: func(cc *core.Ctx) { r.funcD(cc, x22, u21, v12, w11, h, i0+h, j0+h, k0) }},
	)
	c.SpawnSB(
		core.Task{Space: 2 * sp, Fn: func(cc *core.Ctx) { r.funcC(cc, x12, u12, v22, w22, h, i0, j0+h, k0+h) }},
		core.Task{Space: 2 * sp, Fn: func(cc *core.Ctx) { r.funcC(cc, x22, u22, v22, w22, h, i0+h, j0+h, k0+h) }},
	)
	c.SpawnSB(
		core.Task{Space: 4 * sp, Fn: func(cc *core.Ctx) { r.funcD(cc, x11, u12, v21, w22, h, i0, j0, k0+h) }},
		core.Task{Space: 4 * sp, Fn: func(cc *core.Ctx) { r.funcD(cc, x21, u22, v21, w22, h, i0+h, j0, k0+h) }},
	)
}

// funcD: X, U, V, W pairwise non-overlapping (I∩K = ∅, J∩K = ∅).
func (r igepCall) funcD(c *core.Ctx, X, U, V, W core.Mat, m, i0, j0, k0 int) {
	if !r.g.S.Intersects(i0, j0, k0, m) {
		return
	}
	if m <= baseSize {
		r.base(c, X, U, V, W, m, i0, j0, k0)
		return
	}
	h := m / 2
	x11, x12, x21, x22 := X.Quads()
	u11, u12, u21, u22 := U.Quads()
	v11, v12, v21, v22 := V.Quads()
	w11, w22 := quadDiag(W)
	sp := int64(h) * int64(h)

	c.SpawnSB(
		core.Task{Space: 4 * sp, Fn: func(cc *core.Ctx) { r.funcD(cc, x11, u11, v11, w11, h, i0, j0, k0) }},
		core.Task{Space: 4 * sp, Fn: func(cc *core.Ctx) { r.funcD(cc, x12, u11, v12, w11, h, i0, j0+h, k0) }},
		core.Task{Space: 4 * sp, Fn: func(cc *core.Ctx) { r.funcD(cc, x21, u21, v11, w11, h, i0+h, j0, k0) }},
		core.Task{Space: 4 * sp, Fn: func(cc *core.Ctx) { r.funcD(cc, x22, u21, v12, w11, h, i0+h, j0+h, k0) }},
	)
	c.SpawnSB(
		core.Task{Space: 4 * sp, Fn: func(cc *core.Ctx) { r.funcD(cc, x11, u12, v21, w22, h, i0, j0, k0+h) }},
		core.Task{Space: 4 * sp, Fn: func(cc *core.Ctx) { r.funcD(cc, x12, u12, v22, w22, h, i0, j0+h, k0+h) }},
		core.Task{Space: 4 * sp, Fn: func(cc *core.Ctx) { r.funcD(cc, x21, u22, v21, w22, h, i0+h, j0, k0+h) }},
		core.Task{Space: 4 * sp, Fn: func(cc *core.Ctx) { r.funcD(cc, x22, u22, v22, w22, h, i0+h, j0+h, k0+h) }},
	)
}

// quadDiag returns the diagonal quadrants W11, W22 used by every function
// (W12/W21 are never read).
func quadDiag(w core.Mat) (w11, w22 core.Mat) {
	a, _, _, d := w.Quads()
	return a, d
}

// MatMul computes C += A·B by invoking I-GEP function 𝒟 with the three
// disjoint matrices (X=C, U=A, V=B) and the full update set; W is unused by
// the MulAdd function and is passed as B.  n must be a power of two.
//
//oblivcheck:secret C A B
func MatMul(c *core.Ctx, C, A, B core.Mat) {
	r := igepCall{g: MulAdd()}
	n := C.Rows
	// Give D disjoint index cubes so Σ tests stay trivially true: origins 0.
	r.funcD(c, C, A, B, B, n, 0, 0, 0)
}

// MatMulSpace is the space bound of MatMul in words (S_𝒟 = 4m²).
func MatMulSpace(n int) int64 { return 4 * int64(n) * int64(n) }
