// Package gep implements the Gaussian Elimination Paradigm (paper §V): the
// GEP specification (an update function f and an update set Σ_f), the
// reference triple-loop evaluator of Figure 5, the cache-oblivious
// recursive I-GEP (appendix functions 𝒜, ℬ, 𝒞, 𝒟) scheduled with the SB
// hint per Theorem 5, and the paper's named instances: Floyd–Warshall
// all-pairs shortest paths, Gaussian elimination / LU decomposition without
// pivoting, and matrix multiplication.
package gep

// The GEP evaluators are data-oblivious: the update set Σ_f is tested on
// indices, never on matrix values, so the access trace depends only on
// (n, Σ_f).  Enforced statically by the dataoblivious analyzer,
// dynamically by `make trace-check`.
//
//oblivcheck:dataoblivious

import (
	"math"

	"oblivhm/internal/core"
)

// Func is the GEP update function f : S⁴ → S applied as
// x[i,j] ← f(x[i,j], x[i,k], x[k,j], x[k,k]).
type Func func(x, u, v, w float64) float64

// Sigma is the update set Σ_f: Has reports membership of ⟨i,j,k⟩ and
// Intersects reports whether Σ_f meets the cube [i0,i0+m)×[j0,j0+m)×[k0,k0+m)
// (the emptiness test on line 1 of every I-GEP function).
type Sigma interface {
	Has(i, j, k int) bool
	Intersects(i0, j0, k0, m int) bool
}

// Spec is one GEP computation.
type Spec struct {
	F Func
	S Sigma
}

// Full is the complete update set [0,n)³ (Floyd–Warshall, matrix
// multiplication).
type Full struct{}

func (Full) Has(i, j, k int) bool              { return true }
func (Full) Intersects(i0, j0, k0, m int) bool { return true }

// Strict is the update set {⟨i,j,k⟩ : i > k ∧ j > k} (Gaussian elimination
// without pivoting: step k updates the trailing submatrix).
type Strict struct{}

func (Strict) Has(i, j, k int) bool { return i > k && j > k }

func (Strict) Intersects(i0, j0, k0, m int) bool {
	return i0+m-1 > k0 && j0+m-1 > k0
}

// Floyd returns the Floyd–Warshall instance: f = min(x, u+v) over the full
// update set.  The matrix holds path weights with +Inf for "no edge".
func Floyd() Spec {
	return Spec{
		F: func(x, u, v, w float64) float64 { return math.Min(x, u+v) },
		S: Full{},
	}
}

// Gauss returns Gaussian elimination without pivoting: at step k the
// trailing submatrix is updated by x ← x − u·v/w.  On termination the upper
// triangle holds U; L is recoverable as L[i,k] = x[i,k]/x[k,k] (see LU).
func Gauss() Spec {
	return Spec{
		F: func(x, u, v, w float64) float64 { return x - u*v/w },
		S: Strict{},
	}
}

// MulAdd is the matrix-multiplication update f = x + u·v (used through
// function 𝒟 with three disjoint matrices).
func MulAdd() Spec {
	return Spec{
		F: func(x, u, v, w float64) float64 { return x + u*v },
		S: Full{},
	}
}

// Reference runs the triple loop of Figure 5: the definitional semantics of
// a GEP computation, used as the correctness oracle and as the unblocked
// baseline in the E4 experiment.
//
//oblivcheck:secret x
func Reference(c *core.Ctx, x core.Mat, g Spec) {
	n := x.Rows
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if g.S.Has(i, j, k) {
					c.Tick(1)
					x.Set(c, i, j, g.F(x.At(c, i, j), x.At(c, i, k), x.At(c, k, j), x.At(c, k, k)))
				}
			}
		}
	}
}

// Commutative samples the paper's §V-B commutativity condition
// f(f(y,u1,v1,w1),u2,v2,w2) = f(f(y,u2,v2,w2),u1,v1,w1) on a grid of
// arguments, returning false on the first violation found.  All the named
// instances above are commutative.
func Commutative(f Func) bool {
	vals := []float64{-2, -0.5, 0, 1, 3, 7.5}
	for _, y := range vals {
		for _, u1 := range vals {
			for _, v1 := range vals {
				for _, u2 := range vals {
					for _, v2 := range vals {
						w1, w2 := u1+1.25, v2+2.5 // avoid zero pivots
						a := f(f(y, u1, v1, w1), u2, v2, w2)
						b := f(f(y, u2, v2, w2), u1, v1, w1)
						if diff := math.Abs(a - b); diff > 1e-9*(1+math.Abs(a)) {
							return false
						}
					}
				}
			}
		}
	}
	return true
}

// LU extracts L (unit lower triangular) and U (upper triangular) from the
// in-place result of running Gauss() on a matrix: U is the upper triangle
// and L[i,k] = x[i,k]/x[k,k] for i > k.
func LU(s *core.Session, x core.Mat) (l, u core.Mat) {
	n := x.Rows
	l = s.NewMat(n, n)
	u = s.NewMat(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := s.PeekM(x, i, j)
			switch {
			case i == j:
				s.PokeM(l, i, j, 1)
				s.PokeM(u, i, j, v)
			case i < j:
				s.PokeM(u, i, j, v)
			default:
				s.PokeM(l, i, j, v/s.PeekM(x, j, j))
			}
		}
	}
	return l, u
}
