package gep

import (
	"math"
	"math/rand"
	"testing"

	"oblivhm/internal/core"
	"oblivhm/internal/hm"
)

func randMat(s *core.Session, n int, seed int64) core.Mat {
	m := s.NewMat(n, n)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s.PokeM(m, i, j, rng.Float64()*4-2)
		}
	}
	return m
}

func copyMat(s *core.Session, src core.Mat) core.Mat {
	dst := s.NewMat(src.Rows, src.Cols)
	for i := 0; i < src.Rows; i++ {
		for j := 0; j < src.Cols; j++ {
			s.PokeM(dst, i, j, s.PeekM(src, i, j))
		}
	}
	return dst
}

func matsClose(s *core.Session, a, b core.Mat, tol float64) (int, int, bool) {
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			x, y := s.PeekM(a, i, j), s.PeekM(b, i, j)
			if math.Abs(x-y) > tol*(1+math.Abs(x)) {
				return i, j, false
			}
		}
	}
	return 0, 0, true
}

// TestIGEPMatchesReference: I-GEP must produce exactly what Figure 5's
// triple loop produces, for Floyd–Warshall and Gaussian elimination, on
// both executors.
func TestIGEPMatchesReference(t *testing.T) {
	specs := map[string]Spec{"floyd": Floyd(), "gauss": gaussSafe()}
	for _, mode := range []string{"sim", "native"} {
		for name, g := range specs {
			t.Run(mode+"/"+name, func(t *testing.T) {
				for _, n := range []int{4, 8, 16, 32} {
					var s *core.Session
					if mode == "sim" {
						s = core.NewSim(hm.MustMachine(hm.HM4(4, 4)))
					} else {
						s = core.NewNative(4)
					}
					x := randPosMat(s, n, int64(n))
					ref := copyMat(s, x)
					s.Run(SpaceBound(n), func(c *core.Ctx) { IGEP(c, x, g) })
					s.Run(SpaceBound(n), func(c *core.Ctx) { Reference(c, ref, g) })
					if i, j, ok := matsClose(s, x, ref, 1e-9); !ok {
						t.Fatalf("n=%d: I-GEP diverges from reference at (%d,%d): %v vs %v",
							n, i, j, s.PeekM(x, i, j), s.PeekM(ref, i, j))
					}
				}
			})
		}
	}
}

// gaussSafe wraps Gauss with diagonally dominant inputs provided by
// randPosMat, so no pivot vanishes.
func gaussSafe() Spec { return Gauss() }

func randPosMat(s *core.Session, n int, seed int64) core.Mat {
	m := s.NewMat(n, n)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := rng.Float64() + 0.5
			if i == j {
				v += float64(2 * n) // diagonal dominance keeps pivots away from 0
			}
			s.PokeM(m, i, j, v)
		}
	}
	return m
}

// TestFloydWarshallKnownGraph: APSP on a small graph with known distances.
func TestFloydWarshallKnownGraph(t *testing.T) {
	inf := math.Inf(1)
	// 0 →1 (1), 1→2 (2), 0→2 (5), 2→3 (1), 3→0 (10)
	w := [][]float64{
		{0, 1, 5, inf},
		{inf, 0, 2, inf},
		{inf, inf, 0, 1},
		{10, inf, inf, 0},
	}
	want := [][]float64{
		{0, 1, 3, 4},
		{13, 0, 2, 3},
		{11, 12, 0, 1},
		{10, 11, 13, 0},
	}
	s := core.NewNative(2)
	x := s.NewMat(4, 4)
	for i := range w {
		for j := range w[i] {
			s.PokeM(x, i, j, w[i][j])
		}
	}
	s.Run(SpaceBound(4), func(c *core.Ctx) { IGEP(c, x, Floyd()) })
	for i := range want {
		for j := range want[i] {
			if got := s.PeekM(x, i, j); got != want[i][j] {
				t.Errorf("dist[%d][%d] = %v, want %v", i, j, got, want[i][j])
			}
		}
	}
}

// TestGaussLUFactorisation: running Gauss() and extracting L, U must give
// L·U = A for diagonally dominant A.
func TestGaussLUFactorisation(t *testing.T) {
	s := core.NewNative(4)
	n := 16
	a := randPosMat(s, n, 3)
	orig := copyMat(s, a)
	s.Run(SpaceBound(n), func(c *core.Ctx) { IGEP(c, a, Gauss()) })
	l, u := LU(s, a)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc float64
			for k := 0; k < n; k++ {
				acc += s.PeekM(l, i, k) * s.PeekM(u, k, j)
			}
			if want := s.PeekM(orig, i, j); math.Abs(acc-want) > 1e-6*(1+math.Abs(want)) {
				t.Fatalf("LU[%d][%d] = %v, want %v", i, j, acc, want)
			}
		}
	}
}

// TestMatMulAgainstNaive: the 𝒟-based multiplication equals the naive one.
func TestMatMulAgainstNaive(t *testing.T) {
	for _, mode := range []string{"sim", "native"} {
		t.Run(mode, func(t *testing.T) {
			var s *core.Session
			if mode == "sim" {
				s = core.NewSim(hm.MustMachine(hm.HM4(4, 4)))
			} else {
				s = core.NewNative(4)
			}
			n := 32
			A := randMat(s, n, 1)
			B := randMat(s, n, 2)
			C1 := s.NewMat(n, n)
			C2 := s.NewMat(n, n)
			s.Run(MatMulSpace(n), func(c *core.Ctx) { MatMul(c, C1, A, B) })
			s.Run(MatMulSpace(n), func(c *core.Ctx) { NaiveMatMul(c, C2, A, B) })
			if i, j, ok := matsClose(s, C1, C2, 1e-9); !ok {
				t.Fatalf("matmul mismatch at (%d,%d)", i, j)
			}
		})
	}
}

func TestTiledMatMul(t *testing.T) {
	s := core.NewNative(4)
	n := 24 // non-power-of-two exercises edge tiles
	A := randMat(s, n, 4)
	B := randMat(s, n, 5)
	C1 := s.NewMat(n, n)
	C2 := s.NewMat(n, n)
	s.Run(MatMulSpace(n), func(c *core.Ctx) {
		TiledMatMul(c, C1, A, B, 7)
		NaiveMatMul(c, C2, A, B)
	})
	if i, j, ok := matsClose(s, C1, C2, 1e-9); !ok {
		t.Fatalf("tiled matmul mismatch at (%d,%d)", i, j)
	}
}

func TestCommutativityOfInstances(t *testing.T) {
	if !Commutative(Floyd().F) {
		t.Error("Floyd–Warshall min-plus update reported non-commutative")
	}
	if !Commutative(MulAdd().F) {
		t.Error("MulAdd update reported non-commutative")
	}
	// A deliberately non-commutative update: f = x*u + v (order matters).
	if Commutative(func(x, u, v, w float64) float64 { return x*u + v }) {
		t.Error("non-commutative update reported commutative")
	}
}

func TestSigmaIntersects(t *testing.T) {
	s := Strict{}
	if s.Intersects(0, 0, 4, 4) {
		t.Error("cube i,j in [0,4) k in [4,8) cannot satisfy i>k")
	}
	if !s.Intersects(4, 4, 0, 4) {
		t.Error("cube with i,j > k must intersect")
	}
	if !s.Intersects(0, 0, 0, 4) {
		t.Error("diagonal cube contains i=1,j=1,k=0")
	}
}

// TestTheorem5MissBound: I-GEP incurs O(n³/(q_i·B_i·√C_i)) misses per
// level-i cache (plus the cold n²/B_i term).
func TestTheorem5MissBound(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated n=64 GEP is slow")
	}
	cfg := hm.MC3(4)
	m := hm.MustMachine(cfg)
	s := core.NewSim(m)
	n := 64
	x := randPosMat(s, n, 9)
	st := s.RunCold(SpaceBound(n), func(c *core.Ctx) { IGEP(c, x, Floyd()) })
	n3 := int64(n) * int64(n) * int64(n)
	for _, l := range st.Sim.Levels {
		spec := cfg.Levels[l.Level-1]
		q := int64(cfg.CachesAt(l.Level))
		sqrtC := int64(math.Sqrt(float64(spec.Capacity)))
		bound := 32 * (n3/(q*spec.Block*sqrtC) + int64(n)*int64(n)/(q*spec.Block) + spec.Block)
		if l.MaxMisses > bound {
			t.Errorf("L%d max misses = %d > bound %d", l.Level, l.MaxMisses, bound)
		}
	}
}

// TestIGEPBeatsReferenceOnCacheMisses: the recursive schedule must incur
// far fewer L1 misses than the unblocked triple loop once the matrix
// exceeds L1 (the whole point of I-GEP).
func TestIGEPBeatsReferenceOnCacheMisses(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated n=64 GEP is slow")
	}
	cfg := hm.MC3(1) // sequential: isolates cache behaviour
	n := 64          // n² = 4096 >> C1 = 1024
	runIGEP := func() int64 {
		s := core.NewSim(hm.MustMachine(cfg))
		x := randPosMat(s, n, 9)
		return s.RunCold(SpaceBound(n), func(c *core.Ctx) { IGEP(c, x, Floyd()) }).Sim.Levels[0].TotalMisses
	}()
	runRef := func() int64 {
		s := core.NewSim(hm.MustMachine(cfg))
		x := randPosMat(s, n, 9)
		return s.RunCold(SpaceBound(n), func(c *core.Ctx) { Reference(c, x, Floyd()) }).Sim.Levels[0].TotalMisses
	}()
	if runIGEP*2 > runRef {
		t.Errorf("I-GEP L1 misses %d not well below reference %d", runIGEP, runRef)
	}
}

func TestTransitiveClosure(t *testing.T) {
	s := core.NewNative(2)
	n := 16
	rng := rand.New(rand.NewSource(17))
	adj := make([][]bool, n)
	x := s.NewMat(n, n)
	for i := range adj {
		adj[i] = make([]bool, n)
		adj[i][i] = true
		s.PokeM(x, i, i, 1)
	}
	for k := 0; k < 20; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		adj[u][v] = true
		s.PokeM(x, u, v, 1)
	}
	s.Run(SpaceBound(n), func(c *core.Ctx) { IGEP(c, x, TransitiveClosure()) })
	// Oracle: repeated squaring of the boolean relation.
	reach := adj
	for it := 0; it < n; it++ {
		next := make([][]bool, n)
		for i := range next {
			next[i] = append([]bool(nil), reach[i]...)
			for k := 0; k < n; k++ {
				if reach[i][k] {
					for j := 0; j < n; j++ {
						next[i][j] = next[i][j] || reach[k][j]
					}
				}
			}
		}
		reach = next
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := 0.0
			if reach[i][j] {
				want = 1
			}
			if got := s.PeekM(x, i, j); got != want {
				t.Fatalf("closure[%d][%d] = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestSolveLU(t *testing.T) {
	for _, mode := range []string{"sim", "native"} {
		t.Run(mode, func(t *testing.T) {
			var s *core.Session
			if mode == "sim" {
				s = core.NewSim(hm.MustMachine(hm.MC3(4)))
			} else {
				s = core.NewNative(4)
			}
			n := 16
			a := randPosMat(s, n, 23)
			orig := copyMat(s, a)
			// Known solution: x*, b = A x*.
			xstar := make([]float64, n)
			for i := range xstar {
				xstar[i] = float64(i%5) - 2
			}
			b := s.NewF64(n)
			for i := 0; i < n; i++ {
				acc := 0.0
				for j := 0; j < n; j++ {
					acc += s.PeekM(orig, i, j) * xstar[j]
				}
				s.PokeF(b, i, acc)
			}
			s.Run(SpaceBound(n), func(c *core.Ctx) {
				IGEP(c, a, Gauss())
				SolveLU(c, a, b)
			})
			for i := 0; i < n; i++ {
				if got := s.PeekF(b, i); math.Abs(got-xstar[i]) > 1e-6 {
					t.Fatalf("x[%d] = %v, want %v", i, got, xstar[i])
				}
			}
		})
	}
}

func TestDeterminant(t *testing.T) {
	s := core.NewNative(1)
	// det([[2,1],[1,3]]) = 5.
	a := s.NewMat(2, 2)
	s.PokeM(a, 0, 0, 2)
	s.PokeM(a, 0, 1, 1)
	s.PokeM(a, 1, 0, 1)
	s.PokeM(a, 1, 1, 3)
	s.Run(SpaceBound(2), func(c *core.Ctx) { IGEP(c, a, Gauss()) })
	if got := Determinant(s, a); math.Abs(got-5) > 1e-12 {
		t.Fatalf("det = %v, want 5", got)
	}
}
