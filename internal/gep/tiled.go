package gep

import "oblivhm/internal/core"

// TiledMatMul is the resource-AWARE baseline (in the spirit of the tiled
// I-GEP of [11], which the paper contrasts with the oblivious approach):
// C += A·B with an explicit tile size chosen from the machine's cache
// capacity.  It exists so the benchmarks can compare the oblivious
// algorithm against a hand-tuned one; by construction it is not
// multicore-oblivious.
//
//oblivcheck:secret C A B
func TiledMatMul(c *core.Ctx, C, A, B core.Mat, tile int) {
	n := C.Rows
	if tile <= 0 || tile > n {
		tile = n
	}
	nt := (n + tile - 1) / tile
	// Parallelise over tile rows of C (each C tile is owned by one task).
	c.PFor(nt*nt, tile*tile, func(cc *core.Ctx, lo, hi int) {
		for t := lo; t < hi; t++ {
			ib, jb := (t/nt)*tile, (t%nt)*tile
			for kb := 0; kb < n; kb += tile {
				for i := ib; i < min(ib+tile, n); i++ {
					for k := kb; k < min(kb+tile, n); k++ {
						aik := A.At(cc, i, k)
						for j := jb; j < min(jb+tile, n); j++ {
							cc.Tick(1)
							C.Set(cc, i, j, C.At(cc, i, j)+aik*B.At(cc, k, j))
						}
					}
				}
			}
		}
	})
}

// NaiveMatMul is the unblocked serial baseline C += A·B.
//
//oblivcheck:secret C A B
func NaiveMatMul(c *core.Ctx, C, A, B core.Mat) {
	n := C.Rows
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			aik := A.At(c, i, k)
			for j := 0; j < n; j++ {
				c.Tick(1)
				C.Set(c, i, j, C.At(c, i, j)+aik*B.At(c, k, j))
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
