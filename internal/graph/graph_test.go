package graph

import (
	"math/rand"
	"testing"

	"oblivhm/internal/core"
	"oblivhm/internal/hm"
)

// hostTree builds a random tree on n vertices (edge i+1 -> random earlier
// vertex) and returns its edges plus reference parent/depth/subtree arrays
// computed serially with the given root.
func hostTree(n int, seed int64) (edges [][2]int, children [][]int) {
	rng := rand.New(rand.NewSource(seed))
	children = make([][]int, n)
	for v := 1; v < n; v++ {
		p := rng.Intn(v)
		edges = append(edges, [2]int{p, v})
		children[p] = append(children[p], v)
	}
	return edges, children
}

func refTreeStats(n, root int, children [][]int) (parent, depth, size []int) {
	parent = make([]int, n)
	depth = make([]int, n)
	size = make([]int, n)
	parent[root] = -1
	var dfs func(v int)
	dfs = func(v int) {
		size[v] = 1
		for _, w := range children[v] {
			parent[w] = v
			depth[w] = depth[v] + 1
			dfs(w)
			size[v] += size[w]
		}
	}
	dfs(root)
	return parent, depth, size
}

func TestTreeOpsAgainstDFS(t *testing.T) {
	for _, mode := range []string{"sim", "native"} {
		t.Run(mode, func(t *testing.T) {
			for _, n := range []int{2, 3, 10, 64, 300} {
				var s *core.Session
				if mode == "sim" {
					s = core.NewSim(hm.MustMachine(hm.HM4(4, 4)))
				} else {
					s = core.NewNative(4)
				}
				edges, children := hostTree(n, int64(n))
				wantP, wantD, wantS := refTreeStats(n, 0, children)
				tr := Tree{N: n, Root: 0, Arcs: BuildArcs(s, edges)}
				var st TreeStats
				s.Run(SpaceBound(n, 2*len(edges)), func(c *core.Ctx) { st = TreeOps(c, tr) })
				for v := 0; v < n; v++ {
					if got := s.PeekI(st.Parent, v); got != int64(wantP[v]) {
						t.Fatalf("n=%d parent[%d] = %d, want %d", n, v, got, wantP[v])
					}
					if got := s.PeekI(st.Depth, v); got != int64(wantD[v]) {
						t.Fatalf("n=%d depth[%d] = %d, want %d", n, v, got, wantD[v])
					}
					if got := s.PeekI(st.Subsize, v); got != int64(wantS[v]) {
						t.Fatalf("n=%d subsize[%d] = %d, want %d", n, v, got, wantS[v])
					}
				}
			}
		})
	}
}

// TestTreeOpsPreorder: preorder numbers must be a permutation of 0..n-1
// with every parent numbered before its children.
func TestTreeOpsPreorder(t *testing.T) {
	s := core.NewNative(4)
	n := 200
	edges, _ := hostTree(n, 9)
	tr := Tree{N: n, Root: 0, Arcs: BuildArcs(s, edges)}
	var st TreeStats
	s.Run(SpaceBound(n, 4*n), func(c *core.Ctx) { st = TreeOps(c, tr) })
	seen := make([]bool, n)
	for v := 0; v < n; v++ {
		p := int(s.PeekI(st.Pre, v))
		if p < 0 || p >= n || seen[p] {
			t.Fatalf("preorder not a permutation at %d (%d)", v, p)
		}
		seen[p] = true
		if par := s.PeekI(st.Parent, v); par >= 0 {
			if s.PeekI(st.Pre, int(par)) >= int64(p) {
				t.Fatalf("parent %d numbered after child %d", par, v)
			}
		}
	}
}

func TestEulerTourIsSingleChain(t *testing.T) {
	s := core.NewNative(2)
	n := 50
	edges, _ := hostTree(n, 4)
	tr := Tree{N: n, Root: 0, Arcs: BuildArcs(s, edges)}
	var tour struct {
		succ core.I64
		m    int
	}
	s.Run(SpaceBound(n, 4*n), func(c *core.Ctx) {
		_, tl, _ := EulerTour(c, tr)
		tour.succ = tl.Succ
		tour.m = tl.N
	})
	// Follow successors from the head: must visit all 2(n-1) arcs once.
	succs := make([]int, tour.m)
	indeg := make([]int, tour.m)
	for i := range succs {
		succs[i] = int(s.PeekI(tour.succ, i))
		if succs[i] >= 0 {
			indeg[succs[i]]++
		}
	}
	head := -1
	for i, d := range indeg {
		if d == 0 {
			if head != -1 {
				t.Fatal("multiple heads")
			}
			head = i
		}
	}
	visited := 0
	for v := head; v >= 0; v = succs[v] {
		visited++
		if visited > tour.m {
			t.Fatal("tour has a cycle")
		}
	}
	if visited != tour.m {
		t.Fatalf("tour visits %d arcs, want %d", visited, tour.m)
	}
}

func randomGraph(n, m int, seed int64) [][2]int {
	rng := rand.New(rand.NewSource(seed))
	seen := map[[2]int]bool{}
	var edges [][2]int
	for len(edges) < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		edges = append(edges, [2]int{u, v})
	}
	return edges
}

func samePartition(n int, a, b []int) bool {
	repA := map[int]int{}
	repB := map[int]int{}
	for v := 0; v < n; v++ {
		ra, okA := repA[a[v]]
		rb, okB := repB[b[v]]
		switch {
		case !okA && !okB:
			repA[a[v]] = v
			repB[b[v]] = v
		case okA != okB || ra != rb:
			return false
		}
	}
	return true
}

func TestCCAgainstUnionFind(t *testing.T) {
	for _, mode := range []string{"sim", "native"} {
		t.Run(mode, func(t *testing.T) {
			cases := []struct{ n, m int }{{2, 1}, {10, 5}, {100, 60}, {300, 900}, {500, 120}}
			for _, tc := range cases {
				var s *core.Session
				if mode == "sim" {
					s = core.NewSim(hm.MustMachine(hm.HM4(4, 4)))
				} else {
					s = core.NewNative(4)
				}
				edges := randomGraph(tc.n, tc.m, int64(tc.n*tc.m))
				arcs := BuildArcs(s, edges)
				comp := s.NewI64(tc.n)
				s.Run(SpaceBound(tc.n, arcs.N), func(c *core.Ctx) { CC(c, tc.n, arcs, comp) })
				got := make([]int, tc.n)
				for v := 0; v < tc.n; v++ {
					got[v] = int(s.PeekI(comp, v))
				}
				want := SerialCC(tc.n, edges)
				if !samePartition(tc.n, got, want) {
					t.Fatalf("n=%d m=%d: component partition differs", tc.n, tc.m)
				}
			}
		})
	}
}

func TestCCNoEdges(t *testing.T) {
	s := core.NewNative(2)
	n := 20
	comp := s.NewI64(n)
	arcs := s.NewPairs(0)
	s.Run(SpaceBound(n, 0), func(c *core.Ctx) { CC(c, n, arcs, comp) })
	for v := 0; v < n; v++ {
		if s.PeekI(comp, v) != int64(v) {
			t.Fatalf("isolated vertex %d mislabelled", v)
		}
	}
}

func TestCCForest(t *testing.T) {
	// Two trees plus isolated vertices — the forest case the paper lists.
	s := core.NewNative(2)
	edges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {5, 6}, {6, 7}}
	n := 10
	arcs := BuildArcs(s, edges)
	comp := s.NewI64(n)
	s.Run(SpaceBound(n, arcs.N), func(c *core.Ctx) { CC(c, n, arcs, comp) })
	got := make([]int, n)
	for v := 0; v < n; v++ {
		got[v] = int(s.PeekI(comp, v))
	}
	if !samePartition(n, got, SerialCC(n, edges)) {
		t.Fatal("forest components wrong")
	}
}

func TestPackUnpack(t *testing.T) {
	u, v := Unpack(Pack(123456, 654321))
	if u != 123456 || v != 654321 {
		t.Fatalf("pack round trip: %d %d", u, v)
	}
}
