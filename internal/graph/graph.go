// Package graph implements the multicore-oblivious graph algorithms of
// paper §VI: the Euler-tour technique, tree computations (rooting, parent,
// traversal numbering, vertex depth, subtree size) built on MO-LR, and
// connected components by hook-and-contract with O(1) sorts and scans per
// contraction round (the adjacency-list adaptation of Chin–Lam–Chen the
// paper describes, with the same recursive-contraction structure).
package graph

import (
	"oblivhm/internal/core"
	"oblivhm/internal/listrank"
	"oblivhm/internal/scan"
	"oblivhm/internal/spms"
)

// Arcs are directed edges packed into record keys: Key = u<<32 | v.
// An undirected graph stores both (u,v) and (v,u).

// Pack encodes an arc.
func Pack(u, v int) uint64 { return uint64(u)<<32 | uint64(v) }

// Unpack decodes an arc.
func Unpack(k uint64) (u, v int) { return int(k >> 32), int(k & 0xffffffff) }

// BuildArcs materialises the symmetric arc list of an undirected edge list
// (host-side construction).
func BuildArcs(s *core.Session, edges [][2]int) core.Pairs {
	arcs := s.NewPairs(2 * len(edges))
	for i, e := range edges {
		s.PokeP(arcs, 2*i, core.Pair{Key: Pack(e[0], e[1])})
		s.PokeP(arcs, 2*i+1, core.Pair{Key: Pack(e[1], e[0])})
	}
	return arcs
}

// SpaceBound is the declared space bound for the graph algorithms on n
// vertices and m arcs, in words.
func SpaceBound(n, m int) int64 { return 24 * int64(n+m) }

// ---- Euler tour and tree computations ----

// Tree is a rooted tree given by its symmetric arc list (2·(n-1) arcs).
type Tree struct {
	N    int
	Root int
	Arcs core.Pairs
}

// TreeStats is the output of TreeOps.
type TreeStats struct {
	Parent  core.I64 // Parent[root] = -1
	Depth   core.I64 // edge distance from the root
	Pre     core.I64 // preorder number (root = 0)
	Subsize core.I64 // subtree size (root = n)
}

// EulerTour builds the Euler tour of the tree as a linked list over the
// arcs sorted by (src, dst): the successor of arc (u,v) is the arc out of v
// following (v,u) in v's cyclic adjacency order, and the tour is cut into a
// list starting at the root's first arc.  Returns the sorted arcs, the
// tour list, and the rev table (index of each arc's reversal).
func EulerTour(c *core.Ctx, t Tree) (arcs core.Pairs, tour listrank.List, rev core.I64) {
	m := t.Arcs.N
	arcs = c.NewPairs(m)
	scan.CopyPairs(c, arcs, t.Arcs)
	spms.Sort(c, arcs) // by (src, dst)

	// rev[i] = position of (dst_i, src_i): sorting the reversed keys yields
	// the same key multiset in the same order, so the k-th reversed record
	// corresponds to position k.
	r := c.NewPairs(m)
	c.PFor(m, 2, func(cc *core.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			u, v := Unpack(arcs.Key(cc, i))
			r.Set(cc, i, core.Pair{Key: Pack(v, u), Val: uint64(i)})
		}
	})
	spms.Sort(c, r)
	rev = c.NewI64(m)
	c.PFor(m, 2, func(cc *core.Ctx, lo, hi int) {
		for k := lo; k < hi; k++ {
			rev.Set(cc, int(r.At(cc, k).Val), int64(k))
		}
	})

	// first[v] = start of v's out-arc group.
	first := c.NewI64(t.N)
	scan.FillI64(c, first, -1)
	c.PFor(m, 2, func(cc *core.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			u, _ := Unpack(arcs.Key(cc, i))
			if i == 0 {
				first.Set(cc, u, int64(i))
			} else if pu, _ := Unpack(arcs.Key(cc, i-1)); pu != u {
				first.Set(cc, u, int64(i))
			}
		}
	})

	head := int(first.At(c, t.Root))
	tour = listrank.List{N: m, Succ: c.NewI64(m), Pred: c.NewI64(m)}
	scan.FillI64(c, tour.Pred, -1)
	c.PFor(m, 2, func(cc *core.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			j := int(rev.At(cc, i)) // arc (v, u)
			v, _ := Unpack(arcs.Key(cc, j))
			nxt := j + 1
			if nxt >= m {
				nxt = int(first.At(cc, v))
			} else if nu, _ := Unpack(arcs.Key(cc, nxt)); nu != v {
				nxt = int(first.At(cc, v))
			}
			if nxt == head {
				tour.Succ.Set(cc, i, -1) // cut the Euler cycle at the root
			} else {
				tour.Succ.Set(cc, i, int64(nxt))
			}
		}
	})
	c.PFor(m, 1, func(cc *core.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			if sv := tour.Succ.At(cc, i); sv >= 0 {
				tour.Pred.Set(cc, int(sv), int64(i))
			}
		}
	})
	return arcs, tour, rev
}

// TreeOps computes parent, depth, preorder number and subtree size for
// every vertex, using the Euler tour + three weighted list rankings.
func TreeOps(c *core.Ctx, t Tree) TreeStats {
	s := c.Session()
	st := TreeStats{
		Parent:  c.NewI64(t.N),
		Depth:   c.NewI64(t.N),
		Pre:     c.NewI64(t.N),
		Subsize: c.NewI64(t.N),
	}
	if t.N == 1 {
		s.PokeI(st.Parent, 0, -1)
		s.PokeI(st.Subsize, 0, 1)
		return st
	}
	arcs, tour, rev := EulerTour(c, t)
	m := arcs.N

	// Unit-weight ranking gives tour positions: pos(a) = m-1-rank(a).
	pos := c.NewI64(m)
	listrank.MOLR(c, tour, pos)
	c.PFor(m, 1, func(cc *core.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			pos.Set(cc, i, int64(m-1)-pos.At(cc, i))
		}
	})

	// Down arcs advance into a child; ±1 suffix sums give depth, down-flag
	// suffix sums give preorder.
	down := c.NewI64(m)
	wpm := c.NewI64(m)
	c.PFor(m, 1, func(cc *core.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			if pos.At(cc, i) < pos.At(cc, int(rev.At(cc, i))) {
				down.Set(cc, i, 1)
				wpm.Set(cc, i, 1)
			} else {
				down.Set(cc, i, 0)
				wpm.Set(cc, i, -1)
			}
		}
	})
	sufPM := c.NewI64(m)
	listrank.RankWeighted(c, tour, wpm, sufPM)
	sufDown := c.NewI64(m)
	listrank.RankWeighted(c, tour, down, sufDown)
	totalDown := int64(t.N - 1)

	// Scatter per down arc (u,v): unique per v != root.
	c.PFor(m, 2, func(cc *core.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			if down.At(cc, i) == 0 {
				continue
			}
			u, v := Unpack(arcs.Key(cc, i))
			st.Parent.Set(cc, v, int64(u))
			// prefix-inclusive(a) = total − suffix(a) + w(a); Σ(±1) = 0.
			st.Depth.Set(cc, v, 1-sufPM.At(cc, i))
			st.Pre.Set(cc, v, totalDown-sufDown.At(cc, i)+1)
			st.Subsize.Set(cc, v, (pos.At(cc, int(rev.At(cc, i)))-pos.At(cc, i)+1)/2)
		}
	})
	s.PokeI(st.Parent, t.Root, -1)
	s.PokeI(st.Depth, t.Root, 0)
	s.PokeI(st.Pre, t.Root, 0)
	s.PokeI(st.Subsize, t.Root, int64(t.N))
	return st
}

// ---- connected components ----

// CC computes connected components of the n-vertex graph with the given
// symmetric arc list: comp[v] ends up equal for exactly the vertices in the
// same component.  Each round hooks every vertex to its minimum neighbour,
// contracts the resulting stars by pointer jumping, relabels and
// deduplicates the arc list, and repeats until no arcs remain (<= log n
// rounds, each O(1) sorts and scans).
func CC(c *core.Ctx, n int, arcs core.Pairs, comp core.I64) {
	c.PFor(n, 1, func(cc *core.Ctx, lo, hi int) {
		for v := lo; v < hi; v++ {
			comp.Set(cc, v, int64(v))
		}
	})
	cur := c.NewPairs(arcs.N)
	scan.CopyPairs(c, cur, arcs)
	m := arcs.N

	for round := 0; m > 0 && round < 64; round++ {
		live := cur.Slice(0, m)
		spms.Sort(c, live)

		// Hook to the minimum neighbour (first arc of each src group).
		parent := c.NewI64(n)
		c.PFor(n, 1, func(cc *core.Ctx, lo, hi int) {
			for v := lo; v < hi; v++ {
				parent.Set(cc, v, int64(v))
			}
		})
		c.PFor(m, 2, func(cc *core.Ctx, lo, hi int) {
			for i := lo; i < hi; i++ {
				u, v := Unpack(live.Key(cc, i))
				isFirst := i == 0
				if !isFirst {
					pu, _ := Unpack(live.Key(cc, i-1))
					isFirst = pu != u
				}
				if isFirst && v < u {
					parent.Set(cc, u, int64(v))
				}
			}
		})
		// Pointer-jump the pseudo-forest to its roots (parent[v] <= v, so
		// the forest is acyclic and log n rounds suffice).
		for j := 1; j < 2*n; j *= 2 {
			p2 := c.NewI64(n)
			c.PFor(n, 1, func(cc *core.Ctx, lo, hi int) {
				for v := lo; v < hi; v++ {
					p2.Set(cc, v, parent.At(cc, int(parent.At(cc, v))))
				}
			})
			parent = p2
		}

		// Compose the round's contraction into the global labels.
		c.PFor(n, 1, func(cc *core.Ctx, lo, hi int) {
			for v := lo; v < hi; v++ {
				comp.Set(cc, v, parent.At(cc, int(comp.At(cc, v))))
			}
		})

		// Relabel arcs, drop self-loops, deduplicate.
		relab := c.NewPairs(m)
		c.PFor(m, 2, func(cc *core.Ctx, lo, hi int) {
			for i := lo; i < hi; i++ {
				u, v := Unpack(live.Key(cc, i))
				relab.Set(cc, i, core.Pair{Key: Pack(int(parent.At(cc, u)), int(parent.At(cc, v)))})
			}
		})
		spms.Sort(c, relab)
		next := c.NewPairs(m)
		m = scan.PackPairsIndexed(c, next, relab, func(cc *core.Ctx, i int, p core.Pair) bool {
			u, v := Unpack(p.Key)
			if u == v {
				return false
			}
			return i == 0 || relab.Key(cc, i-1) != p.Key
		})
		cur = next
	}
}

// SerialCC is the host-side union-find oracle used in tests and examples.
func SerialCC(n int, edges [][2]int) []int {
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range edges {
		a, b := find(e[0]), find(e[1])
		if a != b {
			if a > b {
				a, b = b, a
			}
			parent[b] = a
		}
	}
	out := make([]int, n)
	for v := range out {
		out[v] = find(v)
	}
	return out
}
