package integration

// Differential executor tests: the same algorithm code runs once on the
// simulated HM machine (Ctx.st != nil, every access walking the cache
// tree) and once on native goroutines (Ctx.st == nil), over randomized
// inputs and several machine shapes.  Outputs must be bit-identical —
// scheduling is allowed to change performance, never results.  This pins
// the obliviousness boundary for the three dense kernels the paper builds
// on: FFT, matrix transposition and I-GEP.

import (
	"math"
	"math/rand"
	"testing"

	"oblivhm/internal/core"
	"oblivhm/internal/fft"
	"oblivhm/internal/gep"
	"oblivhm/internal/hm"
	"oblivhm/internal/transpose"
)

// diffMachines are the simulated shapes each workload runs on; all of them
// and the native run must produce the same words.
func diffMachines() map[string]hm.Config {
	return map[string]hm.Config{
		"mc3": hm.MC3(8),
		"hm4": hm.HM4(4, 4),
		"seq": hm.Seq(),
	}
}

// differential runs fn under native and every simulated shape and requires
// bit-identical output words.
func differential(t *testing.T, name string, fn func(s *core.Session) []uint64) {
	t.Helper()
	want := fn(core.NewNative(4))
	for mname, cfg := range diffMachines() {
		got := fn(core.NewSim(hm.MustMachine(cfg)))
		wordsEqual(t, name+"/"+mname, got, want)
	}
}

func TestDifferentialFFT(t *testing.T) {
	for _, n := range []int{8, 64, 256} {
		for seed := int64(1); seed <= 3; seed++ {
			n, seed := n, seed
			fn := func(s *core.Session) []uint64 {
				rng := rand.New(rand.NewSource(seed))
				x := s.NewC128(n)
				for i := 0; i < n; i++ {
					s.PokeC(x, i, complex(rng.NormFloat64(), rng.NormFloat64()))
				}
				s.Run(fft.SpaceBound(n), func(c *core.Ctx) { fft.MOFFT(c, x) })
				out := make([]uint64, 2*n)
				for i := 0; i < n; i++ {
					v := s.PeekC(x, i)
					out[2*i] = math.Float64bits(real(v))
					out[2*i+1] = math.Float64bits(imag(v))
				}
				return out
			}
			differential(t, "fft", fn)
		}
	}
}

func TestDifferentialTranspose(t *testing.T) {
	for _, n := range []int{4, 32, 128} {
		for seed := int64(1); seed <= 2; seed++ {
			n, seed := n, seed
			fn := func(s *core.Session) []uint64 {
				rng := rand.New(rand.NewSource(seed))
				A := s.NewMat(n, n)
				AT := s.NewMat(n, n)
				for i := 0; i < n; i++ {
					for j := 0; j < n; j++ {
						s.PokeM(A, i, j, rng.NormFloat64())
					}
				}
				s.Run(transpose.SpaceBound(n), func(c *core.Ctx) {
					transpose.MOMT(c, A, AT, core.F64{})
				})
				out := make([]uint64, n*n)
				for i := 0; i < n; i++ {
					for j := 0; j < n; j++ {
						out[i*n+j] = math.Float64bits(s.PeekM(AT, i, j))
					}
				}
				return out
			}
			differential(t, "transpose", fn)
		}
	}
}

func TestDifferentialIGEP(t *testing.T) {
	specs := map[string]func() gep.Spec{
		"floyd": gep.Floyd, // min-plus: no floating-point reassociation at all
		"gauss": gep.Gauss, // every cell's update chain is fixed by the recursion
	}
	for sname, spec := range specs {
		for _, n := range []int{16, 64} {
			for seed := int64(1); seed <= 2; seed++ {
				sname, spec, n, seed := sname, spec, n, seed
				fn := func(s *core.Session) []uint64 {
					rng := rand.New(rand.NewSource(seed))
					x := s.NewMat(n, n)
					for i := 0; i < n; i++ {
						for j := 0; j < n; j++ {
							// Diagonally dominant, so Gauss stays stable
							// without pivoting.
							v := float64(rng.Intn(64) + 1)
							if i == j {
								v += float64(64 * n)
							}
							s.PokeM(x, i, j, v)
						}
					}
					s.Run(gep.SpaceBound(n), func(c *core.Ctx) { gep.IGEP(c, x, spec()) })
					out := make([]uint64, n*n)
					for i := 0; i < n; i++ {
						for j := 0; j < n; j++ {
							out[i*n+j] = math.Float64bits(s.PeekM(x, i, j))
						}
					}
					return out
				}
				differential(t, sname, fn)
			}
		}
	}
}
