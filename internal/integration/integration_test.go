// Package integration holds cross-module, cross-executor tests: the same
// algorithm code must produce bit-identical results on the simulated HM
// machine and on native goroutines, and the algorithm pipelines the paper
// composes (sorting inside list ranking inside graph algorithms; FFT over
// transposes) must agree with independent oracles end to end.
package integration

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"oblivhm/internal/core"
	"oblivhm/internal/fft"
	"oblivhm/internal/gep"
	"oblivhm/internal/graph"
	"oblivhm/internal/hm"
	"oblivhm/internal/listrank"
	"oblivhm/internal/spmdv"
	"oblivhm/internal/spms"
	"oblivhm/internal/transpose"
)

// both runs fn on a fresh simulated and a fresh native session and hands
// the sessions to check for comparison.
func both(t *testing.T, fn func(s *core.Session) []uint64) (sim, nat []uint64) {
	t.Helper()
	sim = fn(core.NewSim(hm.MustMachine(hm.HM4(4, 4))))
	nat = fn(core.NewNative(4))
	return sim, nat
}

func wordsEqual(t *testing.T, name string, a, b []uint64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: lengths differ", name)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: executors diverge at %d: %x vs %x", name, i, a[i], b[i])
		}
	}
}

// TestExecutorsAgreeBitForBit: sort, transpose, GEP (min-plus — no float
// reassociation) and list ranking produce identical words under both
// executors.
func TestExecutorsAgreeBitForBit(t *testing.T) {
	t.Run("sort", func(t *testing.T) {
		n := 3000
		fn := func(s *core.Session) []uint64 {
			rng := rand.New(rand.NewSource(9))
			v := s.NewPairs(n)
			for i := 0; i < n; i++ {
				s.PokeP(v, i, core.Pair{Key: rng.Uint64() % 512, Val: uint64(i)})
			}
			s.Run(spms.SpaceBound(n), func(c *core.Ctx) { spms.Sort(c, v) })
			out := make([]uint64, 2*n)
			for i := 0; i < n; i++ {
				p := s.PeekP(v, i)
				out[2*i], out[2*i+1] = p.Key, p.Val
			}
			return out
		}
		sim, nat := both(t, fn)
		wordsEqual(t, "sort", sim, nat)
	})

	t.Run("floyd", func(t *testing.T) {
		n := 32
		fn := func(s *core.Session) []uint64 {
			rng := rand.New(rand.NewSource(11))
			x := s.NewMat(n, n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					s.PokeM(x, i, j, float64(rng.Intn(50)+1))
				}
			}
			s.Run(gep.SpaceBound(n), func(c *core.Ctx) { gep.IGEP(c, x, gep.Floyd()) })
			out := make([]uint64, n*n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					out[i*n+j] = math.Float64bits(s.PeekM(x, i, j))
				}
			}
			return out
		}
		sim, nat := both(t, fn)
		wordsEqual(t, "floyd", sim, nat)
	})

	t.Run("listrank", func(t *testing.T) {
		n := 1200
		fn := func(s *core.Session) []uint64 {
			perm := rand.New(rand.NewSource(13)).Perm(n)
			l := listrank.FromPerm(s, perm)
			rank := s.NewI64(n)
			s.Run(listrank.SpaceBound(n), func(c *core.Ctx) { listrank.MOLR(c, l, rank) })
			out := make([]uint64, n)
			for i := range out {
				out[i] = uint64(s.PeekI(rank, i))
			}
			return out
		}
		sim, nat := both(t, fn)
		wordsEqual(t, "listrank", sim, nat)
	})

	t.Run("transpose", func(t *testing.T) {
		n := 64
		fn := func(s *core.Session) []uint64 {
			A := s.NewMat(n, n)
			AT := s.NewMat(n, n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					s.PokeM(A, i, j, float64(i*n+j))
				}
			}
			s.Run(transpose.SpaceBound(n), func(c *core.Ctx) {
				transpose.MOMT(c, A, AT, core.F64{})
			})
			out := make([]uint64, n*n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					out[i*n+j] = math.Float64bits(s.PeekM(AT, i, j))
				}
			}
			return out
		}
		sim, nat := both(t, fn)
		wordsEqual(t, "transpose", sim, nat)
	})
}

// TestFFTConvolutionPipeline: MO-FFT forward, pointwise multiply, inverse
// (via conjugation) on the simulated machine reproduces direct convolution.
func TestFFTConvolutionPipeline(t *testing.T) {
	s := core.NewSim(hm.MustMachine(hm.MC3(4)))
	a := []float64{1, 2, 3, 4}
	b := []float64{5, 6, 7}
	n := 8
	fa := s.NewC128(n)
	fb := s.NewC128(n)
	for i, v := range a {
		s.PokeC(fa, i, complex(v, 0))
	}
	for i, v := range b {
		s.PokeC(fb, i, complex(v, 0))
	}
	s.Run(2*fft.SpaceBound(n), func(c *core.Ctx) {
		fft.MOFFT(c, fa)
		fft.MOFFT(c, fb)
		c.PFor(n, 2, func(cc *core.Ctx, lo, hi int) {
			for i := lo; i < hi; i++ {
				fa.Set(cc, i, cmplx.Conj(fa.At(cc, i)*fb.At(cc, i)))
			}
		})
		fft.MOFFT(c, fa)
	})
	want := make([]float64, n)
	for i, x := range a {
		for j, y := range b {
			want[i+j] += x * y
		}
	}
	for i := 0; i < n; i++ {
		got := real(cmplx.Conj(s.PeekC(fa, i))) / float64(n)
		if math.Abs(got-want[i]) > 1e-9 {
			t.Fatalf("conv[%d] = %v, want %v", i, got, want[i])
		}
	}
}

// TestTreePipelineOnSim: Euler tour + tree ops (which compose sorting and
// three list rankings) on the simulated machine against the DFS oracle.
func TestTreePipelineOnSim(t *testing.T) {
	s := core.NewSim(hm.MustMachine(hm.HM4(4, 4)))
	n := 120
	rng := rand.New(rand.NewSource(21))
	var edges [][2]int
	children := make([][]int, n)
	for v := 1; v < n; v++ {
		p := rng.Intn(v)
		edges = append(edges, [2]int{p, v})
		children[p] = append(children[p], v)
	}
	tr := graph.Tree{N: n, Root: 0, Arcs: graph.BuildArcs(s, edges)}
	var st graph.TreeStats
	s.Run(graph.SpaceBound(n, 4*n), func(c *core.Ctx) { st = graph.TreeOps(c, tr) })

	depth := make([]int, n)
	size := make([]int, n)
	var dfs func(v int) int
	dfs = func(v int) int {
		size[v] = 1
		for _, w := range children[v] {
			depth[w] = depth[v] + 1
			size[v] += dfs(w)
		}
		return size[v]
	}
	dfs(0)
	for v := 0; v < n; v++ {
		if got := s.PeekI(st.Depth, v); got != int64(depth[v]) {
			t.Fatalf("depth[%d] = %d, want %d", v, got, depth[v])
		}
		if got := s.PeekI(st.Subsize, v); got != int64(size[v]) {
			t.Fatalf("size[%d] = %d, want %d", v, got, size[v])
		}
	}
}

// TestSpMDVPowerIteration: repeated MO-SpM-DV drives a power iteration on
// a grid Laplacian shifted to be positive definite — a realistic solver
// inner loop composed on the simulated machine.
func TestSpMDVPowerIteration(t *testing.T) {
	s := core.NewSim(hm.MustMachine(hm.MC3(4)))
	side := 16
	n := side * side
	// I + small * L is positive with dominant eigenvector ~ constant.
	var es []spmdv.Entry
	for _, e := range spmdv.GridEntries(side, spmdv.SeparatorOrderGrid(side)) {
		v := -0.05 * e.V
		if e.I == e.J {
			v += 1
		}
		es = append(es, spmdv.Entry{I: e.I, J: e.J, V: v})
	}
	a := spmdv.FromEntries(s, n, es)
	x := s.NewF64(n)
	y := s.NewF64(n)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < n; i++ {
		s.PokeF(x, i, rng.Float64())
	}
	for it := 0; it < 30; it++ {
		s.Run(spmdv.SpaceBound(n), func(c *core.Ctx) { spmdv.MOSpMDV(c, a, x, y) })
		// normalise and swap (host side).
		norm := 0.0
		for i := 0; i < n; i++ {
			norm += s.PeekF(y, i) * s.PeekF(y, i)
		}
		norm = math.Sqrt(norm)
		for i := 0; i < n; i++ {
			s.PokeF(x, i, s.PeekF(y, i)/norm)
		}
	}
	// Convergence check: x is (near) an eigenvector, i.e. A·x ≈ λ·x with a
	// small relative residual.
	s.Run(spmdv.SpaceBound(n), func(c *core.Ctx) { spmdv.MOSpMDV(c, a, x, y) })
	var num, den float64
	for i := 0; i < n; i++ {
		num += s.PeekF(x, i) * s.PeekF(y, i)
		den += s.PeekF(x, i) * s.PeekF(x, i)
	}
	lambda := num / den
	var resid float64
	for i := 0; i < n; i++ {
		d := s.PeekF(y, i) - lambda*s.PeekF(x, i)
		resid += d * d
	}
	if math.Sqrt(resid) > 0.05*math.Abs(lambda) {
		t.Fatalf("power iteration not converged: residual %v at lambda %v", math.Sqrt(resid), lambda)
	}
}

// TestSortInsideGraphPipelineDeterminism: CC (which runs sorting and
// prefix sums internally) is deterministic across repeated simulated runs.
func TestSortInsideGraphPipelineDeterminism(t *testing.T) {
	run := func() (int64, []int64) {
		s := core.NewSim(hm.MustMachine(hm.HM4(4, 4)))
		n := 300
		rng := rand.New(rand.NewSource(33))
		var edges [][2]int
		for k := 0; k < 400; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				edges = append(edges, [2]int{u, v})
			}
		}
		arcs := graph.BuildArcs(s, edges)
		comp := s.NewI64(n)
		st := s.RunCold(graph.SpaceBound(n, arcs.N), func(c *core.Ctx) { graph.CC(c, n, arcs, comp) })
		out := make([]int64, n)
		for i := range out {
			out[i] = s.PeekI(comp, i)
		}
		return st.Sim.Levels[0].TotalMisses, out
	}
	m1, c1 := run()
	m2, c2 := run()
	if m1 != m2 {
		t.Fatalf("misses differ across identical runs: %d vs %d", m1, m2)
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("labels differ at %d", i)
		}
	}
}
