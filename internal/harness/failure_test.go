package harness

// Failure-injection golden matrix: the determinism contract extended to
// degraded mode.  The engine promises that a failure option set (failstop1,
// straggler2x, faulty) derives a byte-identical failure schedule from its
// frozen seed and that detection, migration and re-execution are themselves
// deterministic — so the full (metrics, recovery report) tuple is pinned
// against a JSON snapshot exactly like the healthy goldens.  The matrix is
// restricted to output-writing algorithms (mm, mt, spmdv): re-executing a
// killed strand of an in-place workload is deterministic but lossy, while
// these recompute their outputs from untouched inputs, so the results stay
// verifiable too.
//
// Regenerate (only when a schedule change is intended and reviewed) with
//
//	go test ./internal/harness -run TestGoldenFailureMatrix -update

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"oblivhm/internal/core"
)

var (
	failureAlgos    = []string{"mm", "mt", "spmdv"}
	failureMachines = []string{"mc3", "hm4", "hm5"}
	failureSets     = []string{"failstop1", "straggler2x", "faulty"}
)

const failureN = 1 << 10

// failureSnapshot is the snapshotted slice of a degraded-mode MOResult:
// the usual metric tuple plus the recovery report.
type failureSnapshot struct {
	Metrics  goldenMetrics        `json:"metrics"`
	Recovery *core.RecoveryReport `json:"recovery"`
}

func measureFailure(t *testing.T, algo, machine, set string) failureSnapshot {
	t.Helper()
	res, err := Run(RunConfig{Algo: algo, Machine: machine, N: failureN, Options: set})
	if err != nil {
		t.Fatalf("%s/%s/%s: %v", algo, machine, set, err)
	}
	if res.Recovery == nil {
		t.Fatalf("%s/%s/%s: failure option set produced no recovery report", algo, machine, set)
	}
	m := goldenMetrics{Steps: res.Steps, PlacedAt: res.PlacedAt, Steals: res.Steals}
	for _, l := range res.Levels {
		m.MaxMisses = append(m.MaxMisses, l.MaxMisses)
	}
	return failureSnapshot{Metrics: m, Recovery: res.Recovery}
}

// TestGoldenFailureMatrix pins {mm, mt, spmdv} × {mc3, hm4, hm5} × the three
// failure option sets against testdata/golden_failures.json.  Any change to
// schedule derivation, kill/migration order, re-execution accounting or the
// degraded-mode metrics fails here.
func TestGoldenFailureMatrix(t *testing.T) {
	got := make(map[string]failureSnapshot)
	for _, algo := range failureAlgos {
		for _, machine := range failureMachines {
			for _, set := range failureSets {
				key := fmt.Sprintf("%s/%s/%s", algo, machine, set)
				got[key] = measureFailure(t, algo, machine, set)
			}
		}
	}
	path := filepath.Join("testdata", "golden_failures.json")
	if *update {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d snapshots to %s", len(got), path)
		return
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden snapshot %s (run with -update to create): %v", path, err)
	}
	want := map[string]failureSnapshot{}
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("corrupt golden snapshot %s: %v", path, err)
	}
	if len(want) != len(got) {
		t.Errorf("%s: snapshot has %d entries, matrix has %d (run -update after reviewing)", path, len(want), len(got))
	}
	var keys []string
	for k := range got {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		w, ok := want[k]
		if !ok {
			t.Errorf("%s: no snapshot for %s (run -update after reviewing)", path, k)
			continue
		}
		if !reflect.DeepEqual(w, got[k]) {
			t.Errorf("%s: degraded-mode schedule drifted:\n  want %+v / %+v\n  got  %+v / %+v",
				k, w.Metrics, w.Recovery, got[k].Metrics, got[k].Recovery)
		}
	}
}

// failureOutcome is one observation of a failure-injected run for the
// determinism sweep: either a snapshot or an error string, never both.
type failureOutcome struct {
	snap failureSnapshot
	err  string
}

func observeFailure(algo, machine string, n int, set string, seed int64) failureOutcome {
	opts, oerr := OptionSet(set)
	if oerr != nil {
		return failureOutcome{err: oerr.Error()}
	}
	if seed != 0 {
		opts = append(opts, core.WithChaos(seed))
	}
	res, err := RunMO(algo, machine, n, opts...)
	if err != nil {
		return failureOutcome{err: err.Error()}
	}
	m := goldenMetrics{Steps: res.Steps, PlacedAt: res.PlacedAt, Steals: res.Steals}
	for _, l := range res.Levels {
		m.MaxMisses = append(m.MaxMisses, l.MaxMisses)
	}
	return failureOutcome{snap: failureSnapshot{Metrics: m, Recovery: res.Recovery}}
}

// TestFailureSweepDeterministicOutcome composes each failure option set with
// chaosSeeds chaos seeds over a rotating subset of the golden pairs and runs
// every cell twice: the outcome — metrics plus recovery report, or a typed
// error rendered as a string — must repeat exactly.  Chaos perturbs the
// schedule per seed, the failure plan stays frozen per set; the combination
// is the hardest reproducibility case the engine supports.
func TestFailureSweepDeterministicOutcome(t *testing.T) {
	pairs := []struct{ algo, machine string }{
		{"mm", "mc3"},
		{"mt", "hm4"},
		{"spmdv", "hm5"},
	}
	for i, p := range pairs {
		i, p := i, p
		for _, set := range failureSets {
			set := set
			t.Run(fmt.Sprintf("%s/%s/%s", p.algo, p.machine, set), func(t *testing.T) {
				t.Parallel()
				seeds := make([]int64, 0, chaosSeeds)
				for s := 0; s < chaosSeeds; s++ {
					seeds = append(seeds, int64(s))
				}
				if testing.Short() {
					seeds = []int64{int64(i % chaosSeeds), int64((i + 5) % chaosSeeds)}
				}
				for _, seed := range seeds {
					a := observeFailure(p.algo, p.machine, 1<<9, set, seed)
					b := observeFailure(p.algo, p.machine, 1<<9, set, seed)
					if a.err != b.err || !reflect.DeepEqual(a.snap, b.snap) {
						t.Fatalf("seed %d: two runs disagree:\n  %+v %q\n  %+v %q",
							seed, a.snap, a.err, b.snap, b.err)
					}
				}
			})
		}
	}
}

// TestFailureParallelRoundsByteIdentical: recovery serializes the epoch —
// WithParallelRounds composed with a failure option set must reproduce the
// serial degraded-mode tuple byte for byte at every worker count.
func TestFailureParallelRoundsByteIdentical(t *testing.T) {
	for _, set := range failureSets {
		serial := measureFailure(t, "mm", "hm4", set)
		for _, workers := range []int{2, 4, 8} {
			opts, err := OptionSet(set)
			if err != nil {
				t.Fatal(err)
			}
			res, err := RunMO("mm", "hm4", failureN, append(opts, core.WithParallelRounds(workers))...)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", set, workers, err)
			}
			m := goldenMetrics{Steps: res.Steps, PlacedAt: res.PlacedAt, Steals: res.Steals}
			for _, l := range res.Levels {
				m.MaxMisses = append(m.MaxMisses, l.MaxMisses)
			}
			got := failureSnapshot{Metrics: m, Recovery: res.Recovery}
			if !reflect.DeepEqual(serial, got) {
				t.Errorf("%s workers=%d diverged from serial:\n  serial %+v / %+v\n  par    %+v / %+v",
					set, workers, serial.Metrics, serial.Recovery, got.Metrics, got.Recovery)
			}
		}
	}
}
