package harness

import (
	"fmt"

	"oblivhm/internal/core"
	"oblivhm/internal/hm"
)

// This file is the dynamic half of the data-obliviousness enforcement
// (DESIGN.md §9): the static `dataoblivious` analyzer proves the absence of
// secret-dependent branches and indexing in annotated packages, and the
// trace-equality harness checks the property it implies at runtime — the
// memory access trace of a data-oblivious kernel is a function of the input
// *shape* only, never the input *values*.  TraceMO runs one (algo, machine,
// n) workload with an explicit data seed under hm trace capture; TraceEqual
// runs it twice on different seeds (identical shape, different values) and
// compares the chained digests.  `make trace-check` gates both directions:
// the annotated kernels must be trace-equal, the value-dependent ones
// (sort, listrank) must not be reported equal by accident.

// TraceResult is one captured run.
type TraceResult struct {
	Algo    string
	Machine string
	N       int
	Seed    int64
	Digest  hm.TraceDigest
}

func (r TraceResult) String() string {
	return fmt.Sprintf("%-8s machine=%-4s n=%-8d seed=%-4d accesses=%-10d trace=%016x",
		r.Algo, r.Machine, r.N, r.Seed, r.Digest.Accesses, r.Digest.Hash)
}

// TraceMO runs the named workload cold on the named machine with inputs
// drawn from the given data seed, capturing the access stream.  Trace
// capture is serial-order only, so no engine options are accepted: the run
// uses the default serial backend.
func TraceMO(algo, machine string, n int, seed int64) (TraceResult, error) {
	cfg, err := Machine(machine)
	if err != nil {
		return TraceResult{}, err
	}
	m, err := hm.NewMachine(cfg)
	if err != nil {
		return TraceResult{}, err
	}
	s := core.NewSim(m)
	m.StartTrace()
	_, _, err = runWorkloadChecked(s, algo, n, seed)
	d := m.EndTrace()
	if err != nil {
		return TraceResult{}, err
	}
	return TraceResult{Algo: algo, Machine: machine, N: n, Seed: seed, Digest: d}, nil
}

// TraceEqual runs algo twice on different random data of identical shape
// and reports whether the two access-stream digests match, returning both
// captures for reporting.  Equal digests on a value-dependent kernel would
// be a (vanishingly unlikely) hash collision or a harness bug; unequal
// digests on an //oblivcheck:dataoblivious kernel are a data-obliviousness
// violation the static analyzer missed.
func TraceEqual(algo, machine string, n int, seedA, seedB int64) (equal bool, a, b TraceResult, err error) {
	if seedA == seedB {
		return false, a, b, fmt.Errorf("trace-equality needs two distinct data seeds, got %d twice", seedA)
	}
	a, err = TraceMO(algo, machine, n, seedA)
	if err != nil {
		return false, a, b, err
	}
	b, err = TraceMO(algo, machine, n, seedB)
	if err != nil {
		return false, a, b, err
	}
	return a.Digest == b.Digest, a, b, nil
}

// TraceOblivious lists the workloads whose packages carry the
// //oblivcheck:dataoblivious annotation: these must pass TraceEqual on any
// seed pair.  Kept next to the annotation set by the trace-check test.
func TraceOblivious() []string {
	return []string{"mt", "mt-naive", "scan", "fft", "fft-iter", "mm", "mm-tiled", "gep", "gep-ref"}
}

// TraceValueDependent lists the workloads whose access trace legitimately
// depends on input values — the negative fixtures of the trace gate.
func TraceValueDependent() []string {
	return []string{"sort", "lr", "lr-wyllie"}
}
