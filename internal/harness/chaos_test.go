package harness

// Chaos sweep over the golden workload pairs: every algo × machine pair the
// determinism contract pins must also complete under seeded fault injection
// (WithChaos perturbs steal victims, admission timing, quantum sizes and
// placement tie-breaks) with the engine's runtime invariants checked after
// every round.  This is the robustness half of the contract: chaos off means
// byte-identical goldens (golden_test.go); chaos on means different
// schedules, same termination, no invariant violations, no races.

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"oblivhm/internal/core"
	"oblivhm/internal/hm"
	"oblivhm/internal/no"
)

const chaosSeeds = 16

// chaosSweepCases returns the golden suite flattened to (machine, case)
// pairs in deterministic order.
func chaosSweepCases() []struct {
	machine string
	gc      goldenCase
} {
	suite := goldenSuite()
	var machines []string
	for m := range suite {
		machines = append(machines, m)
	}
	sort.Strings(machines)
	var out []struct {
		machine string
		gc      goldenCase
	}
	for _, m := range machines {
		for _, gc := range suite[m] {
			out = append(out, struct {
				machine string
				gc      goldenCase
			}{m, gc})
		}
	}
	return out
}

// TestChaosSweepGoldenPairs runs every golden algo × machine pair under
// chaos across chaosSeeds seeds.  Completion is the assertion: a hang would
// trip the deadlock backstop (surfacing as a *DeadlockError through the
// checked harness path), and WithChaos enables the invariant checker, so a
// conservation or occupancy violation fails the run with an
// *InvariantError.  In -short mode each case gets a rotating pair of seeds
// instead of all of them, keeping the smoke cheap while the full sweep runs
// in CI and `make soak`.
func TestChaosSweepGoldenPairs(t *testing.T) {
	cases := chaosSweepCases()
	for i, c := range cases {
		i, c := i, c
		t.Run(c.machine+"/"+c.gc.key(), func(t *testing.T) {
			t.Parallel()
			seeds := make([]int64, 0, chaosSeeds)
			for s := 0; s < chaosSeeds; s++ {
				seeds = append(seeds, int64(s))
			}
			if testing.Short() {
				seeds = []int64{int64(i % chaosSeeds), int64((i + 7) % chaosSeeds)}
			}
			for _, seed := range seeds {
				opts := append(c.gc.opts(), core.WithChaos(seed))
				if _, err := RunMO(c.gc.Algo, c.machine, c.gc.N, opts...); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

// TestChaosSameSeedReproducible: chaos is deterministic per seed — the
// perturbed schedule is still a schedule, so the full metric tuple must
// repeat when the seed does.
func TestChaosSameSeedReproducible(t *testing.T) {
	for _, gc := range []goldenCase{
		{Algo: "sort", N: 1 << 9},
		{Algo: "mm", N: 1 << 10},
		{Algo: "lr", N: 1 << 8, Opt: "steal"},
	} {
		for seed := int64(1); seed <= 3; seed++ {
			run := func() goldenMetrics {
				res, err := RunMO(gc.Algo, "hm4", gc.N, append(gc.opts(), core.WithChaos(seed))...)
				if err != nil {
					t.Fatalf("%s seed %d: %v", gc.key(), seed, err)
				}
				m := goldenMetrics{Steps: res.Steps, PlacedAt: res.PlacedAt, Steals: res.Steals}
				for _, l := range res.Levels {
					m.MaxMisses = append(m.MaxMisses, l.MaxMisses)
				}
				return m
			}
			a, b := run(), run()
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%s seed %d: two chaos runs disagree:\n  %+v\n  %+v", gc.key(), seed, a, b)
			}
		}
	}
}

// TestMalformedConfigReturnsError: config validation surfaces as an error
// through the harness, never a panic (satellite of the robustness pass).
func TestMalformedConfigReturnsError(t *testing.T) {
	bad := []struct {
		name string
		cfg  hm.Config
	}{
		{"shrinking capacity", hm.Config{Name: "bad", Levels: []hm.LevelSpec{
			{Capacity: 1 << 12, Block: 1 << 4, Arity: 1},
			{Capacity: 1 << 10, Block: 1 << 4, Arity: 4},
		}}},
		{"block not dividing", hm.Config{Name: "bad", Levels: []hm.LevelSpec{
			{Capacity: 1 << 10, Block: 1 << 4, Arity: 1},
			{Capacity: 1 << 14, Block: 3 * (1 << 3), Arity: 4},
		}}},
		{"zero fan-out", hm.Config{Name: "bad", Levels: []hm.LevelSpec{
			{Capacity: 1 << 10, Block: 1 << 4, Arity: 1},
			{Capacity: 1 << 14, Block: 1 << 4, Arity: 0},
		}}},
		{"private L1 violated", hm.Config{Name: "bad", Levels: []hm.LevelSpec{
			{Capacity: 1 << 10, Block: 1 << 4, Arity: 2},
		}}},
	}
	for _, tc := range bad {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("%s: panicked instead of returning an error: %v", tc.name, r)
				}
			}()
			if _, err := RunMOOnConfig("scan", tc.cfg, 1<<10); err == nil {
				t.Errorf("%s: no error from RunMOOnConfig", tc.name)
			}
		}()
	}
}

// TestInvalidNOShapeReturnsError: PE-count and shape violations in the NO
// substrate come back as errors wrapping no.ErrUsage, not stack traces.
func TestInvalidNOShapeReturnsError(t *testing.T) {
	bad := []struct {
		algo    string
		n, p, b int
	}{
		{"fft", 1000, 7, 4},    // p does not divide N
		{"fft", 1 << 10, 0, 4}, // zero processors
		{"mt", 961, 8, 4},      // p does not divide the n^2 PE count
		{"sort", 1000, 8, 4},   // N not a power of two
		{"prefix", 1000, 8, 4}, // N not a power of two
	}
	for _, tc := range bad {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("%s(n=%d,p=%d): panicked instead of returning an error: %v", tc.algo, tc.n, tc.p, r)
				}
			}()
			_, err := RunNO(tc.algo, tc.n, tc.p, tc.b)
			if err == nil {
				t.Errorf("%s(n=%d,p=%d): no error", tc.algo, tc.n, tc.p)
				return
			}
			if !errors.Is(err, no.ErrUsage) {
				t.Errorf("%s(n=%d,p=%d): error %v does not wrap no.ErrUsage", tc.algo, tc.n, tc.p, err)
			}
		}()
	}
}

// TestChaosOffMatchesGolden double-checks additivity at the harness level:
// a run with no options and a run with WithInvariants (checks on, chaos off)
// agree metric for metric — the invariant checker is read-only.
func TestChaosOffMatchesGolden(t *testing.T) {
	for _, gc := range []goldenCase{
		{Algo: "fft", N: 1 << 9},
		{Algo: "gep", N: 1 << 10},
	} {
		plain, err := RunMO(gc.Algo, "mc3", gc.N)
		if err != nil {
			t.Fatal(err)
		}
		checked, err := RunMO(gc.Algo, "mc3", gc.N, core.WithInvariants())
		if err != nil {
			t.Fatal(err)
		}
		got := fmt.Sprintf("%d/%v/%v/%d", checked.Steps, metricMisses(checked), checked.PlacedAt, checked.Steals)
		want := fmt.Sprintf("%d/%v/%v/%d", plain.Steps, metricMisses(plain), plain.PlacedAt, plain.Steals)
		if got != want {
			t.Errorf("%s: WithInvariants changed the schedule: %s vs %s", gc.key(), got, want)
		}
	}
}

func metricMisses(r MOResult) []int64 {
	var mm []int64
	for _, l := range r.Levels {
		mm = append(mm, l.MaxMisses)
	}
	return mm
}
