package harness

// Programmatic run entry shared by every experiment driver.  cmd/tables,
// cmd/sweep and the internal/sweep runner all funnel through Run, so a
// sweep row, a table cell and a golden snapshot are guaranteed to be the
// same measurement: one cold run of (algo, machine, n) under a named
// engine-option set and an optional chaos seed.

import (
	"fmt"
	"sort"
	"strings"

	"oblivhm/internal/core"
)

// RunConfig identifies one simulated experiment — the cell of a sweep grid.
// The zero Seed means chaos off; any other value runs the workload under
// the deterministic fault injector with that seed (core.WithChaos).
type RunConfig struct {
	Algo    string
	Machine string
	N       int
	Options string // named engine-option set, see OptionSet
	Seed    int64  // chaos seed; 0 = chaos off
}

// optionSets are the named engine-option bundles an experiment can select.
// The names are part of the determinism contract surface: golden snapshots
// (golden_test.go), sweep specs and CHANGES-visible CLIs all refer to
// schedules by these names, so entries are append-only.
var optionSets = map[string]func() []core.Opt{
	"default": func() []core.Opt { return nil },
	"steal":   func() []core.Opt { return []core.Opt{core.WithStealing()} },
	"flat":    func() []core.Opt { return []core.Opt{core.WithFlatScheduler()} },
	"q8":      func() []core.Opt { return []core.Opt{core.WithQuantum(8)} },
	"par2":    func() []core.Opt { return []core.Opt{core.WithParallel(2)} },
	"par4":    func() []core.Opt { return []core.Opt{core.WithParallel(4)} },
	"pr2":     func() []core.Opt { return []core.Opt{core.WithParallelRounds(2)} },
	"pr4":     func() []core.Opt { return []core.Opt{core.WithParallelRounds(4)} },
	"pr2par2": func() []core.Opt { return []core.Opt{core.WithParallelRounds(2), core.WithParallel(2)} },
	"pr4par4": func() []core.Opt { return []core.Opt{core.WithParallelRounds(4), core.WithParallel(4)} },
	"pr4steal": func() []core.Opt {
		return []core.Opt{core.WithParallelRounds(4), core.WithStealing()}
	},

	// Failure-injection sets (PR 8).  Each carries a watchdog so a workload
	// whose restartability assumption breaks down livelocks into a typed
	// *core.FailureError rather than a hang; the failure seed is part of the
	// name's frozen schedule (the per-run chaos Seed stays independent).
	"failstop1": func() []core.Opt {
		return []core.Opt{
			core.WithFailures(1, core.FailurePlan{KillCores: 1}),
			core.WithWatchdog(1 << 20),
		}
	},
	"straggler2x": func() []core.Opt {
		return []core.Opt{
			core.WithFailures(2, core.FailurePlan{Stragglers: 2, SlowFactor: 2}),
			core.WithWatchdog(1 << 20),
		}
	},
	"faulty": func() []core.Opt {
		return []core.Opt{
			core.WithFailures(3, core.FailurePlan{KillCores: 1, Stragglers: 1, SlowFactor: 2, CacheFaults: 4}),
			core.WithWatchdog(1 << 20),
		}
	},
}

// OptionSets lists the valid option-set names, sorted.
func OptionSets() []string {
	var names []string
	//oblivcheck:allow determinism: key collection for a name listing — sorted below
	for n := range optionSets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// OptionSet resolves a named engine-option set.  The empty name is a
// synonym for "default" (no options), so callers that leave the field
// blank get the stock CGC⇒SB schedule.
func OptionSet(name string) ([]core.Opt, error) {
	if name == "" {
		name = "default"
	}
	mk, ok := optionSets[name]
	if !ok {
		return nil, fmt.Errorf("unknown option set %q (have %s)", name, strings.Join(OptionSets(), ", "))
	}
	return mk(), nil
}

// Run executes the configured workload cold on the named machine and
// returns the measured metrics.  It is a pure function of its argument:
// same RunConfig, byte-identical MOResult (the engine's frozen determinism
// contract, extended to named option sets and chaos seeds).
func Run(cfg RunConfig) (MOResult, error) {
	opts, err := OptionSet(cfg.Options)
	if err != nil {
		return MOResult{}, err
	}
	if cfg.Seed != 0 {
		opts = append(opts, core.WithChaos(cfg.Seed))
	}
	return RunMO(cfg.Algo, cfg.Machine, cfg.N, opts...)
}
