// Package harness wires the algorithm packages to the experiment drivers
// (cmd/hmsim, cmd/nosim, cmd/tables, the root benchmarks): named workloads,
// named machines, predicted-vs-measured bookkeeping for every table and
// figure reproduced from the paper.
package harness

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"oblivhm/internal/core"
	"oblivhm/internal/fft"
	"oblivhm/internal/gep"
	"oblivhm/internal/graph"
	"oblivhm/internal/hm"
	"oblivhm/internal/listrank"
	"oblivhm/internal/no"
	"oblivhm/internal/noalgo"
	"oblivhm/internal/nogep"
	"oblivhm/internal/scan"
	"oblivhm/internal/spmdv"
	"oblivhm/internal/spms"
	"oblivhm/internal/transpose"
)

// Machine looks up a stock HM configuration by name.
func Machine(name string) (hm.Config, error) {
	cfg, ok := hm.Presets()[name]
	if !ok {
		var names []string
		//oblivcheck:allow determinism: key collection for an error message — sorted below
		for n := range hm.Presets() {
			names = append(names, n)
		}
		sort.Strings(names)
		return hm.Config{}, fmt.Errorf("unknown machine %q (have %s)", name, strings.Join(names, ", "))
	}
	return cfg, nil
}

// LevelReport compares measured per-level misses with the paper's formula.
type LevelReport struct {
	Level     int
	Caches    int
	MaxMisses int64
	Predicted float64 // the Table II cache-complexity formula, unit constant
	Ratio     float64 // measured / predicted: should be stable across levels/sizes
}

// MOResult is one simulated-machine run.
type MOResult struct {
	Algo    string
	Machine string
	N       int
	Steps   int64
	Work    int64 // total accesses
	Levels  []LevelReport

	// PlacedAt[i] is the number of tasks anchored at cache level i+1 and
	// Steals the number of strand migrations (stealing extension).  Together
	// with Steps and the per-level MaxMisses they form the engine's
	// determinism contract: the golden-metrics tests pin all four byte for
	// byte across engine rewrites.
	PlacedAt []int
	Steals   int64

	// Recovery is the degraded-mode report of a failure-injected run
	// (failstop1/straggler2x/faulty option sets); nil when failure injection
	// is off.  Part of the frozen contract: the golden failure matrix pins
	// it byte for byte.
	Recovery *core.RecoveryReport
}

func (r MOResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s machine=%-4s n=%-8d steps=%-10d accesses=%d\n", r.Algo, r.Machine, r.N, r.Steps, r.Work)
	fmt.Fprintf(&b, "  %-5s %6s %12s %14s %8s\n", "level", "caches", "maxMisses", "predicted", "ratio")
	for _, l := range r.Levels {
		fmt.Fprintf(&b, "  L%-4d %6d %12d %14.0f %8.2f\n", l.Level, l.Caches, l.MaxMisses, l.Predicted, l.Ratio)
	}
	return b.String()
}

// MOAlgos lists the runnable multicore-oblivious workloads.
func MOAlgos() []string {
	return []string{"mt", "mt-naive", "scan", "fft", "fft-iter", "sort", "mm", "mm-tiled", "gep", "gep-ref", "spmdv", "spmdv-rand", "lr", "lr-wyllie", "cc"}
}

// RunMO runs the named workload cold on the named machine and returns the
// measured counters together with the per-level Table II predictions.
func RunMO(algo, machine string, n int, opts ...core.Opt) (MOResult, error) {
	cfg, err := Machine(machine)
	if err != nil {
		return MOResult{}, err
	}
	return RunMOOnConfig(algo, cfg, n, opts...)
}

// RunMOOnConfig is RunMO for an explicit machine configuration (used by the
// speedup sweeps, which vary the core count).
func RunMOOnConfig(algo string, cfg hm.Config, n int, opts ...core.Opt) (MOResult, error) {
	m, err := hm.NewMachine(cfg)
	if err != nil {
		return MOResult{}, err
	}
	s := core.NewSim(m, opts...)
	st, predict, err := runWorkloadChecked(s, algo, n, defaultDataSeed)
	if err != nil {
		return MOResult{}, err
	}
	res := MOResult{Algo: algo, Machine: cfg.Name, N: n, Steps: st.Steps, Work: st.Sim.Accesses, Steals: s.Steals(), Recovery: st.Recovery}
	for lv := 1; lv <= len(cfg.Levels); lv++ {
		res.PlacedAt = append(res.PlacedAt, s.PlacedAt(lv))
	}
	for _, l := range st.Sim.Levels {
		spec := cfg.Levels[l.Level-1]
		q := cfg.CachesAt(l.Level)
		pred := predict(float64(n), float64(q), float64(spec.Block), float64(spec.Capacity))
		lr := LevelReport{Level: l.Level, Caches: l.Caches, MaxMisses: l.MaxMisses, Predicted: pred}
		if pred > 0 {
			lr.Ratio = float64(l.MaxMisses) / pred
		}
		res.Levels = append(res.Levels, lr)
	}
	return res, nil
}

// predictFn maps (n, q_i, B_i, C_i) to the Table II per-cache miss formula.
type predictFn func(n, q, b, c float64) float64

// runWorkloadChecked is runWorkload with panic-to-error recovery: the
// engine's typed failures (a panicking strand as *core.RunError, a wedged
// schedule as *core.DeadlockError, a violated invariant as
// *core.InvariantError) surface as returned errors instead of crashing the
// caller.  Anything else — a bug in the harness itself — still panics.
func runWorkloadChecked(s *core.Session, algo string, n int, seed int64) (st core.RunStats, p predictFn, err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok && core.IsRunFailure(e) {
				err = e
				return
			}
			panic(r)
		}
	}()
	return runWorkload(s, algo, n, seed)
}

// defaultDataSeed is the input-generation seed behind every golden metric:
// RunMO and friends are pure functions of (algo, machine, n) because they
// always build inputs from this seed.  The trace-equality harness
// (trace.go) is the one caller that varies the seed — two runs on different
// data of identical shape must produce identical access traces for the
// kernels annotated //oblivcheck:dataoblivious.
const defaultDataSeed = 42

// runWorkload builds the input for algo at size n from the seeded stream,
// runs it cold, and returns the stats plus the prediction formula.
//
// Input generation draws from an explicitly seeded rand.New(rand.NewSource)
// stream threaded through the builders — never the global math/rand source —
// so every golden metric is a pure function of (algo, machine, n, seed).
// This is the harness-side counterpart of the engine's chaos PRNG convention
// (internal/core/chaos.go) and is what the oblivcheck determinism analyzer
// enforces: package-level rand functions are findings, seeded streams pass.
// The stream stays math/rand (not splitmix64) because the golden snapshots
// pin the inputs it produced at seed time.
func runWorkload(s *core.Session, algo string, n int, seed int64) (core.RunStats, predictFn, error) {
	rng := rand.New(rand.NewSource(seed))
	switch algo {
	case "mt", "mt-naive":
		side := intSqrt(n)
		A := s.NewMat(side, side)
		AT := s.NewMat(side, side)
		I := s.NewF64(side * side)
		for i := 0; i < side; i++ {
			for j := 0; j < side; j++ {
				s.PokeM(A, i, j, rng.Float64())
			}
		}
		run := func(c *core.Ctx) { transpose.MOMT(c, A, AT, I) }
		if algo == "mt-naive" {
			run = func(c *core.Ctx) { transpose.Naive(c, A, AT) }
		}
		st := s.RunCold(transpose.SpaceBound(side), run)
		return st, func(n, q, b, c float64) float64 { return n/(q*b) + b }, nil

	case "scan":
		v := s.NewI64(n)
		for i := 0; i < n; i++ {
			s.PokeI(v, i, int64(rng.Intn(1<<20)))
		}
		st := s.RunCold(int64(2*n), func(c *core.Ctx) { scan.PrefixSumsI64(c, v) })
		return st, func(n, q, b, c float64) float64 { return n / (q * b) }, nil

	case "fft", "fft-iter":
		x := s.NewC128(n)
		for i := 0; i < n; i++ {
			s.PokeC(x, i, complex(rng.Float64(), rng.Float64()))
		}
		run := func(c *core.Ctx) { fft.MOFFT(c, x) }
		if algo == "fft-iter" {
			run = func(c *core.Ctx) { fft.Iterative(c, x) }
		}
		st := s.RunCold(fft.SpaceBound(n), run)
		return st, func(nn, q, b, c float64) float64 {
			w := 2 * nn
			return w / (q * b) * logBase(c, w)
		}, nil

	case "sort":
		v := s.NewPairs(n)
		for i := 0; i < n; i++ {
			s.PokeP(v, i, core.Pair{Key: rng.Uint64(), Val: uint64(i)})
		}
		st := s.RunCold(spms.SpaceBound(n), func(c *core.Ctx) { spms.Sort(c, v) })
		return st, func(nn, q, b, c float64) float64 {
			w := 2 * nn
			return w / (q * b) * logBase(c, w)
		}, nil

	case "mm", "mm-tiled":
		side := intSqrt(n)
		A := randMat(s, rng, side)
		B := randMat(s, rng, side)
		C := s.NewMat(side, side)
		run := func(c *core.Ctx) { gep.MatMul(c, C, A, B) }
		if algo == "mm-tiled" {
			tile := int(math.Sqrt(float64(s.Machine().Cfg.Levels[0].Capacity) / 4))
			run = func(c *core.Ctx) { gep.TiledMatMul(c, C, A, B, tile) }
		}
		st := s.RunCold(gep.MatMulSpace(side), run)
		return st, mmPredict(side), nil

	case "gep", "gep-ref":
		side := intSqrt(n)
		x := randMat(s, rng, side)
		run := func(c *core.Ctx) { gep.IGEP(c, x, gep.Floyd()) }
		if algo == "gep-ref" {
			run = func(c *core.Ctx) { gep.Reference(c, x, gep.Floyd()) }
		}
		st := s.RunCold(gep.SpaceBound(side), run)
		return st, mmPredict(side), nil

	case "spmdv", "spmdv-rand":
		side := intSqrt(n)
		var perm []int
		if algo == "spmdv" {
			perm = spmdv.SeparatorOrderGrid(side)
		} else {
			perm = rng.Perm(side * side)
		}
		a := spmdv.FromEntries(s, side*side, spmdv.GridEntries(side, perm))
		x := s.NewF64(side * side)
		y := s.NewF64(side * side)
		for i := 0; i < side*side; i++ {
			s.PokeF(x, i, rng.Float64())
		}
		st := s.RunCold(spmdv.SpaceBound(side*side), func(c *core.Ctx) { spmdv.MOSpMDV(c, a, x, y) })
		return st, func(nn, q, b, c float64) float64 {
			return nn / q * (1/b + 1/math.Sqrt(c))
		}, nil

	case "lr", "lr-wyllie":
		perm := rng.Perm(n)
		l := listrank.FromPerm(s, perm)
		rank := s.NewI64(n)
		run := func(c *core.Ctx) { listrank.MOLR(c, l, rank) }
		if algo == "lr-wyllie" {
			run = func(c *core.Ctx) { listrank.Wyllie(c, l, rank) }
		}
		st := s.RunCold(listrank.SpaceBound(n), run)
		return st, func(nn, q, b, c float64) float64 {
			return 2 * nn / (q * b) * logBase(c, nn)
		}, nil

	case "cc":
		edges := randomEdges(n, 2*n, rng)
		arcs := graph.BuildArcs(s, edges)
		comp := s.NewI64(n)
		st := s.RunCold(graph.SpaceBound(n, arcs.N), func(c *core.Ctx) { graph.CC(c, n, arcs, comp) })
		return st, func(nn, q, b, c float64) float64 {
			w := 3 * nn
			return w / (q * b) * logBase(c, w) * math.Log2(w)
		}, nil
	}
	return core.RunStats{}, nil, fmt.Errorf("unknown MO algorithm %q (have %s)", algo, strings.Join(MOAlgos(), ", "))
}

func mmPredict(side int) predictFn {
	return func(_, q, b, c float64) float64 {
		n3 := float64(side) * float64(side) * float64(side)
		return n3 / (q * b * math.Sqrt(c))
	}
}

// NOResult is one network-oblivious run.
type NOResult struct {
	Algo       string
	N, P, B    int
	Comm       int64
	Predicted  float64
	Ratio      float64
	Comp       int64
	Supersteps int
	DBSPTime   float64
}

func (r NOResult) String() string {
	return fmt.Sprintf("%-8s N=%-8d p=%-3d B=%-3d comm=%-8d predicted=%-10.0f ratio=%-6.2f comp=%-10d supersteps=%-6d dbsp=%.0f",
		r.Algo, r.N, r.P, r.B, r.Comm, r.Predicted, r.Ratio, r.Comp, r.Supersteps, r.DBSPTime)
}

// NOAlgos lists the runnable network-oblivious workloads.
func NOAlgos() []string {
	return []string{"mt", "prefix", "fft", "sort", "sort-bitonic", "lr", "cc", "ngep", "ngep-d", "mm"}
}

// RunNO runs the named NO workload on M(p,B) and reports communication
// against the Table II formula.  Machine-shape violations (p not dividing
// n, non-power-of-two PE counts, ...) come back as errors wrapping
// no.ErrUsage rather than panics, so CLIs can print a usage hint.
func RunNO(algo string, n, p, b int) (res NOResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok && errors.Is(e, no.ErrUsage) {
				err = e
				return
			}
			panic(r)
		}
	}()
	rng := rand.New(rand.NewSource(7))
	var w *no.World
	var predicted float64
	switch algo {
	case "mt":
		side := intSqrt(n)
		w = no.NewWorld(side*side, p, b)
		val := make([]uint64, side*side)
		for i := range val {
			val[i] = uint64(i)
		}
		noalgo.Transpose(w, side, val)
		predicted = float64(side*side) / float64(p*b)

	case "prefix":
		w = no.NewWorld(n, p, b)
		val := make([]uint64, n)
		for i := range val {
			val[i] = uint64(i % 3)
		}
		noalgo.PrefixSums(w, val)
		predicted = math.Log2(float64(p))

	case "fft":
		w = no.NewWorld(n, p, b)
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.Float64(), 0)
		}
		noalgo.FFT(w, x)
		predicted = float64(n) / float64(p*b) * logBase(float64(n)/float64(p), float64(n))

	case "sort", "sort-bitonic":
		w = no.NewWorld(n, p, b)
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = rng.Uint64()
		}
		if algo == "sort" {
			noalgo.ColumnSort(w, keys)
			predicted = float64(n) / float64(p*b) // the paper's columnsort bound
		} else {
			noalgo.BitonicSort(w, keys)
			lg := math.Log2(float64(n))
			predicted = float64(n) / float64(p*b) * lg * lg // log² above columnsort
		}

	case "lr":
		w = no.NewWorld(n, p, b)
		perm := rng.Perm(n)
		succ := make([]int, n)
		pred := make([]int, n)
		for i := 0; i < n; i++ {
			succ[perm[i]], pred[perm[i]] = -1, -1
			if i+1 < n {
				succ[perm[i]] = perm[i+1]
			}
			if i > 0 {
				pred[perm[i]] = perm[i-1]
			}
		}
		noalgo.ListRank(w, succ, pred)
		predicted = float64(n)/float64(p*b) + math.Sqrt(float64(n)/float64(p)*math.Log2(math.Log2(float64(n))))

	case "cc":
		w = no.NewWorld(n, p, b)
		adj := make([][]int, n)
		for _, e := range randomEdges(n, 2*n, rng) {
			adj[e[0]] = append(adj[e[0]], e[1])
			adj[e[1]] = append(adj[e[1]], e[0])
		}
		noalgo.ConnectedComponents(w, adj)
		nn := float64(3 * n)
		predicted = nn/float64(p*b) + math.Sqrt(nn/float64(p))*math.Log2(nn)

	case "ngep", "ngep-d", "mm":
		side := intSqrt(n)
		pes := side * side / 4
		if pes < p {
			pes = p
		}
		w = no.NewWorld(pes, p, b)
		e := &nogep.Engine{W: w, Spec: gep.Floyd(), UseDStar: algo != "ngep-d"}
		in := make([]float64, side*side)
		for i := range in {
			in[i] = rng.Float64()
		}
		if algo == "mm" {
			e.Spec = gep.MulAdd()
			e.RunMatMul(side, make([]float64, side*side), in, in)
		} else {
			e.RunGEP(side, in)
		}
		predicted = float64(side*side) / (math.Sqrt(float64(p)) * float64(b))

	default:
		return NOResult{}, fmt.Errorf("unknown NO algorithm %q (have %s)", algo, strings.Join(NOAlgos(), ", "))
	}
	res = NOResult{
		Algo: algo, N: n, P: p, B: b,
		Comm: w.Comm(), Predicted: predicted,
		Comp: w.Computation(), Supersteps: w.Supersteps(),
	}
	if predicted > 0 {
		res.Ratio = float64(res.Comm) / predicted
	}
	// D-BSP with a geometric g vector and uniform blocks.
	if pp := w.P; pp&(pp-1) == 0 && pp > 1 {
		logP := 0
		for 1<<logP < pp {
			logP++
		}
		g := make([]float64, logP)
		bs := make([]int64, logP)
		for i := range g {
			g[i] = float64(int64(1) << uint(logP-i)) // farther clusters cost more
			bs[i] = int64(b)
		}
		res.DBSPTime = w.DBSPTime(g, bs)
	}
	return res, nil
}

// ---- shared input builders ----

func randMat(s *core.Session, rng *rand.Rand, side int) core.Mat {
	m := s.NewMat(side, side)
	for i := 0; i < side; i++ {
		for j := 0; j < side; j++ {
			v := rng.Float64() + 0.5
			if i == j {
				v += float64(2 * side)
			}
			s.PokeM(m, i, j, v)
		}
	}
	return m
}

func randomEdges(n, m int, rng *rand.Rand) [][2]int {
	seen := map[[2]int]bool{}
	var edges [][2]int
	for len(edges) < m && len(edges) < n*(n-1)/2 {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		edges = append(edges, [2]int{u, v})
	}
	return edges
}

func intSqrt(n int) int {
	r := 1
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

// logBase returns max(1, log_c(w)).
func logBase(c, w float64) float64 {
	if c <= 1 {
		return 1
	}
	l := math.Log(w) / math.Log(c)
	if l < 1 {
		return 1
	}
	return l
}
