package harness

// Golden-metrics regression tests: the engine's determinism contract.
//
// The simulated executor promises that a given (algorithm, machine, options)
// triple produces byte-identical metrics on every run and across engine
// rewrites: virtual Steps, the per-level MaxMisses cache complexity,
// the per-level PlacedAt anchoring counts, and the Steals counter.  These
// tests pin that contract against JSON snapshots under testdata/ that were
// generated from the seed engine, before the fast-path rework; any scheduler
// or simulator change that shifts a single metric fails here.
//
// Regenerate (only when a metric change is intended and reviewed) with
//
//	go test ./internal/harness -run TestGoldenMetrics -update

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"oblivhm/internal/core"
)

var update = flag.Bool("update", false, "rewrite the golden metric snapshots in testdata/")

// goldenCase is one workload pinned by the contract.  Opt names an engine
// option set so that scheduler variants (stealing, flat placement, other
// quanta) are pinned too.
type goldenCase struct {
	Algo string
	N    int
	Opt  string // "" | "steal" | "flat" | "q8"
}

func (g goldenCase) key() string {
	k := fmt.Sprintf("%s/n%d", g.Algo, g.N)
	if g.Opt != "" {
		k += "/" + g.Opt
	}
	return k
}

func (g goldenCase) opts() []core.Opt {
	opts, err := OptionSet(g.Opt)
	if err != nil {
		panic("unknown golden option set " + g.Opt + ": " + err.Error())
	}
	return opts
}

// goldenMetrics is the snapshotted slice of an MOResult.
type goldenMetrics struct {
	Steps     int64   `json:"steps"`
	MaxMisses []int64 `json:"maxMisses"` // per cache level, 1..h-1
	PlacedAt  []int   `json:"placedAt"`  // per cache level, 1..h-1
	Steals    int64   `json:"steals"`
}

func allAlgoCases() []goldenCase {
	sizes := map[string]int{
		"mt": 1 << 10, "mt-naive": 1 << 10,
		"scan": 1 << 12,
		"fft":  1 << 9, "fft-iter": 1 << 9,
		"sort": 1 << 9,
		"mm":   1 << 10, "mm-tiled": 1 << 10,
		"gep": 1 << 10, "gep-ref": 1 << 10,
		"spmdv": 1 << 10, "spmdv-rand": 1 << 10,
		"lr": 1 << 8, "lr-wyllie": 1 << 8,
		"cc": 1 << 7,
	}
	var cases []goldenCase
	for _, algo := range MOAlgos() {
		n, ok := sizes[algo]
		if !ok {
			panic("golden sizes missing algo " + algo)
		}
		cases = append(cases, goldenCase{Algo: algo, N: n})
	}
	return cases
}

// goldenSuite maps machine name -> pinned workloads.  Every registered MO
// algorithm runs on the two stock machines the benchmarks use (mc3, hm4);
// hm5 / mc3a / seq pin deeper hierarchies, set-associativity and the
// single-core (pure solo batching) schedule on a representative subset, and
// the Opt variants pin the stealing / flat / fine-quantum schedules.
func goldenSuite() map[string][]goldenCase {
	return map[string][]goldenCase{
		"mc3": allAlgoCases(),
		"hm4": append(allAlgoCases(),
			goldenCase{Algo: "sort", N: 1 << 9, Opt: "steal"},
			goldenCase{Algo: "mm", N: 1 << 10, Opt: "flat"},
			goldenCase{Algo: "mt", N: 1 << 10, Opt: "q8"},
		),
		"hm5": {
			{Algo: "scan", N: 1 << 12},
			{Algo: "sort", N: 1 << 9},
			{Algo: "mm", N: 1 << 10},
			{Algo: "lr", N: 1 << 8},
		},
		"mc3a": {
			{Algo: "fft", N: 1 << 9},
			{Algo: "sort", N: 1 << 9},
		},
		"seq": {
			{Algo: "scan", N: 1 << 12},
			{Algo: "fft", N: 1 << 9},
			{Algo: "sort", N: 1 << 9},
		},
	}
}

func goldenPath(machine string) string {
	return filepath.Join("testdata", "golden_"+machine+".json")
}

func measure(t *testing.T, machine string, gc goldenCase) goldenMetrics {
	t.Helper()
	res, err := RunMO(gc.Algo, machine, gc.N, gc.opts()...)
	if err != nil {
		t.Fatalf("%s on %s: %v", gc.key(), machine, err)
	}
	m := goldenMetrics{Steps: res.Steps, PlacedAt: res.PlacedAt, Steals: res.Steals}
	for _, l := range res.Levels {
		m.MaxMisses = append(m.MaxMisses, l.MaxMisses)
	}
	return m
}

func TestGoldenMetrics(t *testing.T) {
	suite := goldenSuite()
	var machines []string
	for m := range suite {
		machines = append(machines, m)
	}
	sort.Strings(machines)
	for _, machine := range machines {
		machine := machine
		cases := suite[machine]
		t.Run(machine, func(t *testing.T) {
			got := make(map[string]goldenMetrics, len(cases))
			for _, gc := range cases {
				got[gc.key()] = measure(t, machine, gc)
			}
			path := goldenPath(machine)
			if *update {
				buf, err := json.MarshalIndent(got, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %d snapshots to %s", len(got), path)
				return
			}
			buf, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden snapshot %s (run with -update to create): %v", path, err)
			}
			want := map[string]goldenMetrics{}
			if err := json.Unmarshal(buf, &want); err != nil {
				t.Fatalf("corrupt golden snapshot %s: %v", path, err)
			}
			if len(want) != len(got) {
				t.Errorf("%s: snapshot has %d entries, suite has %d (run -update after reviewing)", path, len(want), len(got))
			}
			var keys []string
			for k := range got {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				w, ok := want[k]
				if !ok {
					t.Errorf("%s: no snapshot for %s (run -update after reviewing)", path, k)
					continue
				}
				if !reflect.DeepEqual(w, got[k]) {
					t.Errorf("%s: metrics drifted from the seed engine:\n  want %+v\n  got  %+v", k, w, got[k])
				}
			}
		})
	}
}

// TestGoldenMetricsRerunStable: two runs of the same workload in one process
// must agree with each other even without snapshots on disk — the in-process
// half of the determinism contract (catches map-iteration or scheduling
// nondeterminism directly, with a clearer failure than a snapshot diff).
func TestGoldenMetricsRerunStable(t *testing.T) {
	for _, gc := range []goldenCase{
		{Algo: "sort", N: 1 << 9},
		{Algo: "fft", N: 1 << 9},
		{Algo: "gep", N: 1 << 10},
		{Algo: "sort", N: 1 << 9, Opt: "steal"},
	} {
		a := measure(t, "hm4", gc)
		b := measure(t, "hm4", gc)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: two in-process runs disagree: %+v vs %+v", gc.key(), a, b)
		}
	}
}
