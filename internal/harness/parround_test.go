package harness

// Parallel-rounds-vs-serial equivalence at the harness level, mirroring
// parallel_test.go for the phase-split engine backend (DESIGN.md §11): the
// full golden algo × machine matrix re-run under core.WithParallelRounds —
// alone and composed with the core.WithParallel replay pipeline — must
// reproduce the serial metric tuple byte for byte at every worker count,
// and the 16-seed chaos sweep must reproduce the serial chaos schedules
// (chaos runs serialize the whole loop, so this pins the documented
// fallback).  Together with golden_test.go this closes the loop: serial ==
// goldens, parallel rounds == serial, therefore parallel rounds == goldens.
//
// CI runs this file under -race (the workflow's parallel-equivalence step):
// the speculation phase is the only place the engine runs several strands
// at the same real instant, so the race detector is the half of the
// contract the metrics cannot show.

import (
	"reflect"
	"sort"
	"testing"

	"oblivhm/internal/core"
)

// measureParRounds is measure() with WithParallelRounds(workers) appended,
// plus WithParallel(workers) when composed is set.
func measureParRounds(t *testing.T, machine string, gc goldenCase, workers int, composed bool) goldenMetrics {
	t.Helper()
	opts := append(gc.opts(), core.WithParallelRounds(workers))
	if composed {
		opts = append(opts, core.WithParallel(workers))
	}
	res, err := RunMO(gc.Algo, machine, gc.N, opts...)
	if err != nil {
		t.Fatalf("%s on %s (pr workers=%d composed=%v): %v", gc.key(), machine, workers, composed, err)
	}
	return metricsTuple(res)
}

// forkHeavyPair extends the parallel-rounds matrix and chaos sweep beyond
// the golden suite: recursive FFT forks a full fan of subproblems at every
// tree node, and the q8 option set shrinks the quantum so forks land in
// nearly every round — the admission-heaviest schedule we can drive.  It
// exercises the deferred-fork replay (speculators surviving their own
// admissions) far harder than the stock golden cases, whose long pure
// stretches rarely interleave forks with speculation.
var forkHeavyPair = struct {
	machine string
	gc      goldenCase
}{"hm5", goldenCase{Algo: "fft", N: 1 << 8, Opt: "q8"}}

// TestParallelRoundsMatchSerialGoldenMatrix: the full golden suite at every
// worker count, parallel-rounds alone and composed with the replay
// pipeline, plus the fork-heavy pair.  In -short mode each case keeps one
// rotating worker count.
func TestParallelRoundsMatchSerialGoldenMatrix(t *testing.T) {
	suite := goldenSuite()
	suite[forkHeavyPair.machine] = append(suite[forkHeavyPair.machine], forkHeavyPair.gc)
	var machines []string
	for m := range suite {
		machines = append(machines, m)
	}
	sort.Strings(machines)
	for _, machine := range machines {
		machine := machine
		cases := suite[machine]
		t.Run(machine, func(t *testing.T) {
			t.Parallel()
			for i, gc := range cases {
				serial := measure(t, machine, gc)
				workers := parallelWorkerCounts
				if testing.Short() {
					workers = parallelWorkerCounts[i%len(parallelWorkerCounts) : i%len(parallelWorkerCounts)+1]
				}
				for _, w := range workers {
					if pr := measureParRounds(t, machine, gc, w, false); !reflect.DeepEqual(serial, pr) {
						t.Errorf("%s pr workers=%d diverged from serial:\n  serial          %+v\n  parallel-rounds %+v",
							gc.key(), w, serial, pr)
					}
					if pr := measureParRounds(t, machine, gc, w, true); !reflect.DeepEqual(serial, pr) {
						t.Errorf("%s pr+par workers=%d diverged from serial:\n  serial   %+v\n  composed %+v",
							gc.key(), w, serial, pr)
					}
				}
			}
		})
	}
}

// TestParallelRoundsChaosSweepMatchesSerial: for every machine-shape pair
// and chaos seed, WithParallelRounds must land on the identical perturbed
// schedule — chaos serializes the loop, and this sweep pins that the
// option's presence alone changes nothing.  -short keeps a rotating pair
// of seeds per case.
func TestParallelRoundsChaosSweepMatchesSerial(t *testing.T) {
	pairs := append(append([]struct {
		machine string
		gc      goldenCase
	}{}, parallelChaosPairs...), forkHeavyPair)
	for i, pc := range pairs {
		i, pc := i, pc
		t.Run(pc.machine+"/"+pc.gc.key(), func(t *testing.T) {
			t.Parallel()
			seeds := make([]int64, 0, chaosSeeds)
			for s := 0; s < chaosSeeds; s++ {
				seeds = append(seeds, int64(s))
			}
			if testing.Short() {
				seeds = []int64{int64(i % chaosSeeds), int64((i + 5) % chaosSeeds)}
			}
			for _, seed := range seeds {
				serialRes, err := RunMO(pc.gc.Algo, pc.machine, pc.gc.N, append(pc.gc.opts(), core.WithChaos(seed))...)
				if err != nil {
					t.Fatalf("serial seed %d: %v", seed, err)
				}
				serial := metricsTuple(serialRes)
				for _, w := range parallelWorkerCounts {
					prRes, err := RunMO(pc.gc.Algo, pc.machine, pc.gc.N,
						append(pc.gc.opts(), core.WithChaos(seed), core.WithParallelRounds(w))...)
					if err != nil {
						t.Fatalf("seed %d pr workers=%d: %v", seed, w, err)
					}
					if pr := metricsTuple(prRes); !reflect.DeepEqual(serial, pr) {
						t.Errorf("seed %d pr workers=%d: chaos schedule diverged:\n  serial          %+v\n  parallel-rounds %+v",
							seed, w, serial, pr)
					}
				}
			}
		})
	}
}

// TestParallelRoundsOptionSets: the named pr* option sets resolve and run —
// a sweep/CLI smoke over one small case per set, pinned against "default".
func TestParallelRoundsOptionSets(t *testing.T) {
	base, err := Run(RunConfig{Algo: "sort", Machine: "mc3", N: 1 << 7})
	if err != nil {
		t.Fatalf("default: %v", err)
	}
	want := metricsTuple(base)
	for _, name := range []string{"pr2", "pr4", "pr2par2", "pr4par4"} {
		res, err := Run(RunConfig{Algo: "sort", Machine: "mc3", N: 1 << 7, Options: name})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := metricsTuple(res); !reflect.DeepEqual(want, got) {
			t.Errorf("%s diverged from default:\n  default %+v\n  %s %+v", name, want, name, got)
		}
	}
	// pr4steal changes the schedule (stealing on), so only check it runs.
	if _, err := Run(RunConfig{Algo: "sort", Machine: "mc3", N: 1 << 7, Options: "pr4steal"}); err != nil {
		t.Fatalf("pr4steal: %v", err)
	}
}
