package harness

// Trace-equality tests: the dynamic cross-check of the static
// `dataoblivious` verdicts (DESIGN.md §9).  Three directions are gated:
//
//  1. every kernel in an //oblivcheck:dataoblivious-annotated package is
//     trace-equal across data seeds (the annotation is dynamically true),
//  2. the value-dependent kernels (sort, listrank) are NOT trace-equal —
//     the harness has the power to distinguish, so direction 1 is not
//     vacuous,
//  3. an injected secret-dependent branch — the same leak the analyzer
//     fixture internal/analysis/testdata/.../dofix flags statically — makes
//     the traces diverge at runtime too.
//
// `make trace-check` runs this file under -race.

import (
	"math/rand"
	"testing"

	"oblivhm/internal/core"
	"oblivhm/internal/hm"
	"oblivhm/internal/scan"
)

// traceSize picks an input size per algo: big enough to exercise recursion
// and placement, small enough to keep two runs per algo cheap.
func traceSize(algo string) int {
	switch algo {
	case "mm", "mm-tiled", "gep", "gep-ref":
		return 1024 // 32x32
	case "mt", "mt-naive":
		return 4096 // 64x64
	default:
		return 4096
	}
}

func TestTraceEqualObliviousKernels(t *testing.T) {
	for _, algo := range TraceOblivious() {
		algo := algo
		t.Run(algo, func(t *testing.T) {
			eq, a, b, err := TraceEqual(algo, "hm4", traceSize(algo), 1, 2)
			if err != nil {
				t.Fatalf("TraceEqual(%s): %v", algo, err)
			}
			if a.Digest.Accesses == 0 {
				t.Fatalf("%s: empty trace — capture not wired through?", algo)
			}
			if !eq {
				t.Errorf("%s: annotated data-oblivious kernel is not trace-equal across data seeds:\n  %s\n  %s", algo, a, b)
			}
		})
	}
}

func TestTraceDistinguishesValueDependentKernels(t *testing.T) {
	for _, algo := range TraceValueDependent() {
		algo := algo
		t.Run(algo, func(t *testing.T) {
			eq, a, b, err := TraceEqual(algo, "hm4", 4096, 1, 2)
			if err != nil {
				t.Fatalf("TraceEqual(%s): %v", algo, err)
			}
			if eq {
				t.Errorf("%s: value-dependent kernel reported trace-equal — the harness has lost its distinguishing power:\n  %s\n  %s", algo, a, b)
			}
		})
	}
}

// TestTraceSameSeedIsEqual pins the baseline: identical (algo, machine, n,
// seed) runs produce identical digests even for value-dependent kernels,
// so any inequality in the tests above is attributable to the data.
func TestTraceSameSeedIsEqual(t *testing.T) {
	for _, algo := range []string{"scan", "sort"} {
		a, err := TraceMO(algo, "hm4", 2048, 7)
		if err != nil {
			t.Fatalf("TraceMO(%s): %v", algo, err)
		}
		b, err := TraceMO(algo, "hm4", 2048, 7)
		if err != nil {
			t.Fatalf("TraceMO(%s): %v", algo, err)
		}
		if a.Digest != b.Digest {
			t.Errorf("%s: same-seed runs disagree: %s vs %s", algo, a, b)
		}
	}
}

func TestTraceEqualRejectsSameSeed(t *testing.T) {
	if _, _, _, err := TraceEqual("scan", "hm4", 1024, 3, 3); err == nil {
		t.Fatal("TraceEqual with identical seeds should refuse")
	}
}

// leakyScan is the runtime twin of the analyzer fixture's secret-dependent
// branch: a prefix-sum wrapper that issues an extra load whenever an input
// value crosses a threshold.  Statically this is exactly what the
// dataoblivious analyzer flags (branch on a value loaded from a secret
// slice); dynamically its trace must depend on the data.
func leakyScan(c *core.Ctx, v core.I64) {
	for i := 0; i < v.N; i++ {
		if v.At(c, i) > 1<<19 { // secret-dependent branch: extra access on one side
			v.At(c, i)
		}
	}
	scan.PrefixSumsI64(c, v)
}

// traceLeaky runs leakyScan under capture with values drawn from seed.
func traceLeaky(t *testing.T, seed int64) hm.TraceDigest {
	t.Helper()
	m := hm.MustMachine(hm.Presets()["hm4"])
	s := core.NewSim(m)
	const n = 2048
	v := s.NewI64(n)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		s.PokeI(v, i, int64(rng.Intn(1<<20)))
	}
	m.StartTrace()
	s.RunCold(int64(2*n), func(c *core.Ctx) { leakyScan(c, v) })
	return m.EndTrace()
}

// TestTraceCatchesInjectedLeak is the dynamic half of the bidirectional
// gate: the static half is the dofix fixture failing the dataoblivious
// analyzer, the CI self-test injects the same pattern into internal/scan
// and requires `go vet -vettool` to fail.
func TestTraceCatchesInjectedLeak(t *testing.T) {
	a := traceLeaky(t, 1)
	b := traceLeaky(t, 2)
	if a.Accesses == 0 || b.Accesses == 0 {
		t.Fatal("empty leaky traces — capture not wired through?")
	}
	if a == b {
		t.Errorf("injected secret-dependent branch not visible in the trace: %016x/%d on both seeds", a.Hash, a.Accesses)
	}
}

func TestStartTraceRefusesParallelBackend(t *testing.T) {
	m := hm.MustMachine(hm.Presets()["hm4"])
	core.NewSim(m, core.WithParallel(2))
	defer func() {
		if recover() == nil {
			t.Fatal("StartTrace on a parallel-replay machine should panic")
		}
	}()
	m.StartTrace()
}
