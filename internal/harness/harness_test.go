package harness

import (
	"strings"
	"testing"
)

func TestRunMOAllAlgos(t *testing.T) {
	for _, algo := range MOAlgos() {
		algo := algo
		t.Run(algo, func(t *testing.T) {
			n := 1 << 10
			if algo == "cc" || algo == "lr" || algo == "lr-wyllie" {
				n = 1 << 8
			}
			res, err := RunMO(algo, "mc3", n)
			if err != nil {
				t.Fatal(err)
			}
			if res.Steps <= 0 || res.Work <= 0 {
				t.Fatalf("no work recorded: %+v", res)
			}
			if len(res.Levels) != 2 {
				t.Fatalf("mc3 has 2 cache levels, reported %d", len(res.Levels))
			}
			for _, l := range res.Levels {
				if l.Predicted <= 0 {
					t.Errorf("L%d predicted = %v", l.Level, l.Predicted)
				}
			}
			if s := res.String(); !strings.Contains(s, algo) {
				t.Errorf("String() missing algo name: %q", s)
			}
		})
	}
}

func TestRunMOUnknowns(t *testing.T) {
	if _, err := RunMO("nope", "mc3", 64); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := RunMO("mt", "nope", 64); err == nil {
		t.Error("unknown machine accepted")
	}
}

func TestRunNOAllAlgos(t *testing.T) {
	for _, algo := range NOAlgos() {
		algo := algo
		t.Run(algo, func(t *testing.T) {
			res, err := RunNO(algo, 1<<8, 4, 2)
			if err != nil {
				t.Fatal(err)
			}
			if res.Supersteps <= 0 {
				t.Fatalf("no supersteps: %+v", res)
			}
			if res.Comm < 0 || res.Predicted <= 0 {
				t.Fatalf("bad accounting: %+v", res)
			}
			if s := res.String(); !strings.Contains(s, algo) {
				t.Errorf("String() missing algo name: %q", s)
			}
		})
	}
}

func TestRunNOUnknown(t *testing.T) {
	if _, err := RunNO("nope", 64, 4, 2); err == nil {
		t.Error("unknown NO algorithm accepted")
	}
}

// TestMORatioStability is the harness-level shape check behind
// EXPERIMENTS.md: for the flagship rows, measured/predicted stays within a
// bounded band when the input quadruples.
func TestMORatioStability(t *testing.T) {
	for _, algo := range []string{"mt", "scan", "spmdv"} {
		r1, err := RunMO(algo, "mc3", 1<<12)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := RunMO(algo, "mc3", 1<<14)
		if err != nil {
			t.Fatal(err)
		}
		a, b := r1.Levels[1].Ratio, r2.Levels[1].Ratio
		if b > 3*a+1 {
			t.Errorf("%s: L2 ratio jumped %0.2f -> %0.2f over 4x size", algo, a, b)
		}
	}
}
