package harness

// Parallel-vs-serial equivalence at the harness level: the full golden
// algo × machine matrix re-run under core.WithParallel must reproduce the
// serial metric tuple byte for byte, for every worker count, and a 16-seed
// chaos sweep must reproduce the serial *chaos* schedules too (the seeded
// perturbation stream lives on the engine goroutine, so thread interleaving
// in the replay pipeline cannot touch it).  Together with golden_test.go
// this closes the loop: serial == goldens, parallel == serial, therefore
// parallel == goldens.
//
// CI runs this file under -race (the workflow's parallel-equivalence step);
// that is the half of the contract the metrics cannot show.

import (
	"reflect"
	"sort"
	"testing"

	"oblivhm/internal/core"
)

var parallelWorkerCounts = []int{2, 4, 8}

// measureParallel is measure() with WithParallel(workers) appended.
func measureParallel(t *testing.T, machine string, gc goldenCase, workers int, extra ...core.Opt) goldenMetrics {
	t.Helper()
	opts := append(gc.opts(), extra...)
	opts = append(opts, core.WithParallel(workers))
	res, err := RunMO(gc.Algo, machine, gc.N, opts...)
	if err != nil {
		t.Fatalf("%s on %s (workers=%d): %v", gc.key(), machine, workers, err)
	}
	m := goldenMetrics{Steps: res.Steps, PlacedAt: res.PlacedAt, Steals: res.Steals}
	for _, l := range res.Levels {
		m.MaxMisses = append(m.MaxMisses, l.MaxMisses)
	}
	return m
}

// TestParallelMatchesSerialGoldenMatrix: the full golden suite, every worker
// count against a serial run of the same case.  In -short mode each case
// keeps one rotating worker count instead of all three.
func TestParallelMatchesSerialGoldenMatrix(t *testing.T) {
	suite := goldenSuite()
	var machines []string
	for m := range suite {
		machines = append(machines, m)
	}
	sort.Strings(machines)
	for _, machine := range machines {
		machine := machine
		cases := suite[machine]
		t.Run(machine, func(t *testing.T) {
			t.Parallel()
			for i, gc := range cases {
				serial := measure(t, machine, gc)
				workers := parallelWorkerCounts
				if testing.Short() {
					workers = parallelWorkerCounts[i%len(parallelWorkerCounts) : i%len(parallelWorkerCounts)+1]
				}
				for _, w := range workers {
					if par := measureParallel(t, machine, gc, w); !reflect.DeepEqual(serial, par) {
						t.Errorf("%s workers=%d diverged from serial:\n  serial   %+v\n  parallel %+v",
							gc.key(), w, serial, par)
					}
				}
			}
		})
	}
}

// parallelChaosPairs covers all five machine shapes with sizes small enough
// that the 16-seed × worker-count sweep stays cheap (chaos implies per-round
// invariant checks, which drain the replay pipeline every round — the
// worst case for the parallel backend, which is exactly why it is swept).
var parallelChaosPairs = []struct {
	machine string
	gc      goldenCase
}{
	{"mc3", goldenCase{Algo: "sort", N: 1 << 7}},
	{"mc3", goldenCase{Algo: "scan", N: 1 << 10}},
	{"mc3a", goldenCase{Algo: "fft", N: 1 << 7}},
	{"hm4", goldenCase{Algo: "mm", N: 1 << 8}},
	{"hm4", goldenCase{Algo: "sort", N: 1 << 7, Opt: "steal"}},
	{"hm4", goldenCase{Algo: "mt", N: 1 << 8, Opt: "q8"}},
	{"hm5", goldenCase{Algo: "lr", N: 1 << 6}},
	{"seq", goldenCase{Algo: "fft", N: 1 << 7}},
}

// TestParallelChaosSweepMatchesSerial: for every pair and every chaos seed,
// the parallel run must land on the identical perturbed schedule.  -short
// keeps a rotating pair of seeds per case, mirroring the serial chaos sweep.
func TestParallelChaosSweepMatchesSerial(t *testing.T) {
	for i, pc := range parallelChaosPairs {
		i, pc := i, pc
		t.Run(pc.machine+"/"+pc.gc.key(), func(t *testing.T) {
			t.Parallel()
			seeds := make([]int64, 0, chaosSeeds)
			for s := 0; s < chaosSeeds; s++ {
				seeds = append(seeds, int64(s))
			}
			if testing.Short() {
				seeds = []int64{int64(i % chaosSeeds), int64((i + 5) % chaosSeeds)}
			}
			for _, seed := range seeds {
				serialRes, err := RunMO(pc.gc.Algo, pc.machine, pc.gc.N, append(pc.gc.opts(), core.WithChaos(seed))...)
				if err != nil {
					t.Fatalf("serial seed %d: %v", seed, err)
				}
				serial := metricsTuple(serialRes)
				for _, w := range parallelWorkerCounts {
					parRes, err := RunMO(pc.gc.Algo, pc.machine, pc.gc.N,
						append(pc.gc.opts(), core.WithChaos(seed), core.WithParallel(w))...)
					if err != nil {
						t.Fatalf("seed %d workers=%d: %v", seed, w, err)
					}
					if par := metricsTuple(parRes); !reflect.DeepEqual(serial, par) {
						t.Errorf("seed %d workers=%d: chaos schedule diverged:\n  serial   %+v\n  parallel %+v",
							seed, w, serial, par)
					}
				}
			}
		})
	}
}

func metricsTuple(r MOResult) goldenMetrics {
	m := goldenMetrics{Steps: r.Steps, PlacedAt: r.PlacedAt, Steals: r.Steals}
	for _, l := range r.Levels {
		m.MaxMisses = append(m.MaxMisses, l.MaxMisses)
	}
	return m
}
