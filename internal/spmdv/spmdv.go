// Package spmdv implements MO-SpM-DV (paper Figure 4): multicore-oblivious
// sparse matrix × dense vector multiplication for matrices whose support
// graphs have good edge separators, together with the separator machinery
// the paper assumes as preprocessing — synthetic support graphs (2-D grids,
// trees, bands), recursive-bisection separator trees, and the induced
// leaf-order reordering of rows and columns (Theorem 4 requires the input
// reordered by the left-to-right order of separator-tree leaves).
package spmdv

import (
	"math"
	"slices"

	"oblivhm/internal/core"
)

// Sparse is the paper's (A_v, A_0) row-major representation: Av holds the
// nonzeros sorted by (row, col), each as a (col, float64-bits) record;
// A0[i] is the start of row i in Av, with A0[n] = nnz.
type Sparse struct {
	N  int
	Av core.Pairs
	A0 core.I64
}

// Entry is one nonzero for matrix construction.
type Entry struct {
	I, J int
	V    float64
}

// FromEntries builds the (A_v, A_0) representation from an unordered entry
// list (host-side preprocessing, unaccounted).
func FromEntries(s *core.Session, n int, entries []Entry) Sparse {
	cmp := func(a, b Entry) int {
		if a.I != b.I {
			return a.I - b.I
		}
		return a.J - b.J
	}
	es := entries
	if !slices.IsSortedFunc(es, cmp) {
		es = append([]Entry(nil), entries...)
		slices.SortFunc(es, cmp)
	}
	sp := Sparse{N: n, Av: s.NewPairs(len(es)), A0: s.NewI64(n + 1)}
	row := 0
	for k, e := range es {
		s.PokeP(sp.Av, k, core.Pair{Key: uint64(e.J), Val: math.Float64bits(e.V)})
		for row <= e.I {
			s.PokeI(sp.A0, row, int64(k))
			row++
		}
	}
	for ; row <= n; row++ {
		s.PokeI(sp.A0, row, int64(len(es)))
	}
	return sp
}

// SpaceBound is the declared space bound of a subtask covering m rows, in
// words.  The paper's S(m) = 4m counts unit-size elements; our Av records
// are two words, so the bound is scaled accordingly.
func SpaceBound(m int) int64 { return 8 * int64(m) }

// MOSpMDV computes y = A·x following Figure 4: binary recursion over the
// row range, each level forking two parallel subtasks under the CGC⇒SB
// hint with space bound S(m).
func MOSpMDV(c *core.Ctx, a Sparse, x, y core.F64) {
	moSpMDV(c, a, x, y, 0, a.N-1)
}

func moSpMDV(c *core.Ctx, a Sparse, x, y core.F64, k1, k2 int) {
	if k1 == k2 {
		acc := 0.0
		lo := int(a.A0.At(c, k1))
		hi := int(a.A0.At(c, k1+1))
		for k := lo; k < hi; k++ {
			p := a.Av.At(c, k)
			c.Tick(1)
			acc += math.Float64frombits(p.Val) * x.At(c, int(p.Key))
		}
		y.Set(c, k1, acc)
		return
	}
	k := (k1 + k2) / 2
	c.SpawnCGCSB(SpaceBound(k2-k1+1)/2, 2, func(cc *core.Ctx, idx int) {
		if idx == 0 {
			moSpMDV(cc, a, x, y, k1, k)
		} else {
			moSpMDV(cc, a, x, y, k+1, k2)
		}
	})
}

// Serial is the oracle: a plain row-major traversal.
func Serial(c *core.Ctx, a Sparse, x, y core.F64) {
	for i := 0; i < a.N; i++ {
		acc := 0.0
		lo, hi := int(a.A0.At(c, i)), int(a.A0.At(c, i+1))
		for k := lo; k < hi; k++ {
			p := a.Av.At(c, k)
			c.Tick(1)
			acc += math.Float64frombits(p.Val) * x.At(c, int(p.Key))
		}
		y.Set(c, i, acc)
	}
}

// ---- synthetic support graphs and separator reordering ----

// GridEntries returns the entries of the Laplacian-like matrix of a
// side×side 5-point grid (self loop + 4 neighbours), whose support graph
// satisfies an n^{1/2}-edge separator theorem.  Vertex numbering follows
// the given permutation perm (perm[gridIndex] = matrix index); pass nil for
// the natural row-major order.
func GridEntries(side int, perm []int) []Entry {
	id := func(x, y int) int {
		g := x*side + y
		if perm != nil {
			return perm[g]
		}
		return g
	}
	es := make([]Entry, 0, 5*side*side)
	for x := 0; x < side; x++ {
		for y := 0; y < side; y++ {
			u := id(x, y)
			es = append(es, Entry{u, u, 4})
			if x > 0 {
				es = append(es, Entry{u, id(x-1, y), -1})
			}
			if x < side-1 {
				es = append(es, Entry{u, id(x+1, y), -1})
			}
			if y > 0 {
				es = append(es, Entry{u, id(x, y-1), -1})
			}
			if y < side-1 {
				es = append(es, Entry{u, id(x, y+1), -1})
			}
		}
	}
	return es
}

// SeparatorOrderGrid returns the permutation induced by the left-to-right
// leaf order of a recursive-bisection separator tree of the side×side grid
// (alternating axis cuts — the Lipton–Tarjan-style preprocessing Theorem 4
// assumes).  perm[x*side+y] = new index.
func SeparatorOrderGrid(side int) []int {
	perm := make([]int, side*side)
	next := 0
	var rec func(x0, x1, y0, y1 int)
	rec = func(x0, x1, y0, y1 int) {
		if x1-x0 == 1 && y1-y0 == 1 {
			perm[x0*side+y0] = next
			next++
			return
		}
		if x1-x0 >= y1-y0 {
			mid := (x0 + x1) / 2
			rec(x0, mid, y0, y1)
			rec(mid, x1, y0, y1)
		} else {
			mid := (y0 + y1) / 2
			rec(x0, x1, y0, mid)
			rec(x0, x1, mid, y1)
		}
	}
	rec(0, side, 0, side)
	return perm
}

// TreeEntries returns the adjacency (+self) entries of a complete binary
// tree on n vertices in separator-friendly (in-order) numbering.  Trees
// satisfy an O(1)-edge separator theorem (ε → 0).
func TreeEntries(n int) []Entry {
	var es []Entry
	for u := 0; u < n; u++ {
		es = append(es, Entry{u, u, 2})
		l, r := 2*u+1, 2*u+2
		if l < n {
			es = append(es, Entry{u, l, -1}, Entry{l, u, -1})
		}
		if r < n {
			es = append(es, Entry{u, r, -1}, Entry{r, u, -1})
		}
	}
	return es
}

// BandEntries returns a banded matrix with the given half-bandwidth (a path
// power graph: the friendliest separator structure).
func BandEntries(n, halfBand int) []Entry {
	var es []Entry
	for i := 0; i < n; i++ {
		for j := i - halfBand; j <= i+halfBand; j++ {
			if j < 0 || j >= n {
				continue
			}
			v := 1.0 / float64(1+abs(i-j))
			es = append(es, Entry{i, j, v})
		}
	}
	return es
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
