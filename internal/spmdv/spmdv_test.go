package spmdv

import (
	"math"
	"math/rand"
	"testing"

	"oblivhm/internal/core"
	"oblivhm/internal/hm"
)

func hostMultiply(n int, es []Entry, x []float64) []float64 {
	y := make([]float64, n)
	for _, e := range es {
		y[e.I] += e.V * x[e.J]
	}
	return y
}

func runMOSpMDV(t *testing.T, s *core.Session, n int, es []Entry, seed int64) ([]float64, []float64) {
	t.Helper()
	a := FromEntries(s, n, es)
	x := s.NewF64(n)
	y := s.NewF64(n)
	rng := rand.New(rand.NewSource(seed))
	hx := make([]float64, n)
	for i := range hx {
		hx[i] = rng.Float64()*2 - 1
		s.PokeF(x, i, hx[i])
	}
	s.Run(SpaceBound(n), func(c *core.Ctx) { MOSpMDV(c, a, x, y) })
	got := make([]float64, n)
	for i := range got {
		got[i] = s.PeekF(y, i)
	}
	return got, hostMultiply(n, es, hx)
}

func TestMOSpMDVCorrect(t *testing.T) {
	for _, mode := range []string{"sim", "native"} {
		t.Run(mode, func(t *testing.T) {
			var s *core.Session
			if mode == "sim" {
				s = core.NewSim(hm.MustMachine(hm.HM4(4, 4)))
			} else {
				s = core.NewNative(4)
			}
			for _, side := range []int{1, 2, 5, 16} {
				n := side * side
				got, want := runMOSpMDV(t, s, n, GridEntries(side, nil), int64(side))
				for i := range want {
					if math.Abs(got[i]-want[i]) > 1e-9 {
						t.Fatalf("side=%d: y[%d] = %v, want %v", side, i, got[i], want[i])
					}
				}
			}
		})
	}
}

func TestSerialMatchesMO(t *testing.T) {
	s := core.NewNative(2)
	n := 64
	es := BandEntries(n, 3)
	a := FromEntries(s, n, es)
	x := s.NewF64(n)
	y1 := s.NewF64(n)
	y2 := s.NewF64(n)
	for i := 0; i < n; i++ {
		s.PokeF(x, i, float64(i%7)-3)
	}
	s.Run(SpaceBound(n), func(c *core.Ctx) {
		MOSpMDV(c, a, x, y1)
		Serial(c, a, x, y2)
	})
	for i := 0; i < n; i++ {
		if s.PeekF(y1, i) != s.PeekF(y2, i) {
			t.Fatalf("y[%d]: MO %v vs serial %v", i, s.PeekF(y1, i), s.PeekF(y2, i))
		}
	}
}

func TestTreeAndBandCorrect(t *testing.T) {
	s := core.NewNative(2)
	for name, gen := range map[string]struct {
		n  int
		es []Entry
	}{
		"tree": {31, TreeEntries(31)},
		"band": {50, BandEntries(50, 4)},
	} {
		got, want := runMOSpMDV(t, s, gen.n, gen.es, 3)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("%s: y[%d] = %v, want %v", name, i, got[i], want[i])
			}
		}
	}
}

func TestSeparatorOrderGridIsPermutation(t *testing.T) {
	for _, side := range []int{1, 2, 3, 8, 16} {
		perm := SeparatorOrderGrid(side)
		seen := make([]bool, side*side)
		for _, p := range perm {
			if p < 0 || p >= side*side || seen[p] {
				t.Fatalf("side=%d: not a permutation", side)
			}
			seen[p] = true
		}
	}
}

// TestSeparatorOrderLocality: under the separator leaf order, most edges of
// the grid connect nearby indices — the property Theorem 4's analysis uses.
func TestSeparatorOrderLocality(t *testing.T) {
	side := 32
	perm := SeparatorOrderGrid(side)
	near, far := 0, 0
	for _, e := range GridEntries(side, perm) {
		if e.I == e.J {
			continue
		}
		if abs(e.I-e.J) <= 4*side {
			near++
		} else {
			far++
		}
	}
	if far*4 > near {
		t.Fatalf("separator order leaves %d far edges vs %d near", far, near)
	}
}

// TestTheorem4ReorderingHelps: with the separator reordering, SpM-DV on a
// grid incurs significantly fewer cache misses than with a random vertex
// order (the pathological case the reordering exists to avoid).
func TestTheorem4ReorderingHelps(t *testing.T) {
	side := 64 // n = 4096 > C1
	n := side * side
	run := func(perm []int) int64 {
		s := core.NewSim(hm.MustMachine(hm.MC3(4)))
		got, want := runMOSpMDVBench(s, n, GridEntries(side, perm))
		_ = got
		_ = want
		return got
	}
	sep := run(SeparatorOrderGrid(side))
	rng := rand.New(rand.NewSource(42))
	rperm := rng.Perm(n)
	random := run(rperm)
	if sep*3 > random*2 {
		t.Errorf("separator order L1 misses %d not well below random order %d", sep, random)
	}
}

// runMOSpMDVBench runs one multiplication cold and returns L1 total misses.
func runMOSpMDVBench(s *core.Session, n int, es []Entry) (int64, int64) {
	a := FromEntries(s, n, es)
	x := s.NewF64(n)
	y := s.NewF64(n)
	for i := 0; i < n; i++ {
		s.PokeF(x, i, 1)
	}
	st := s.RunCold(SpaceBound(n), func(c *core.Ctx) { MOSpMDV(c, a, x, y) })
	return st.Sim.Levels[0].TotalMisses, st.Steps
}

// TestTheorem4Speedup: parallel steps scale with cores.
func TestTheorem4Speedup(t *testing.T) {
	side := 48
	n := side * side
	es := GridEntries(side, SeparatorOrderGrid(side))
	run := func(p int) int64 {
		s := core.NewSim(hm.MustMachine(hm.MC3(p)))
		_, steps := runMOSpMDVBench(s, n, es)
		return steps
	}
	if p8, p1 := run(8), run(1); p8*3 > p1 {
		t.Errorf("8-core SpM-DV %d steps vs 1-core %d: speedup < 3", p8, p1)
	}
}

func TestFromEntriesLayout(t *testing.T) {
	s := core.NewNative(1)
	es := []Entry{{1, 2, 5}, {0, 1, 3}, {1, 0, 2}, {2, 2, 7}}
	a := FromEntries(s, 3, es)
	if s.PeekI(a.A0, 0) != 0 || s.PeekI(a.A0, 1) != 1 || s.PeekI(a.A0, 2) != 3 || s.PeekI(a.A0, 3) != 4 {
		t.Fatalf("row pointers wrong: %d %d %d %d",
			s.PeekI(a.A0, 0), s.PeekI(a.A0, 1), s.PeekI(a.A0, 2), s.PeekI(a.A0, 3))
	}
	p := s.PeekP(a.Av, 1)
	if p.Key != 0 || math.Float64frombits(p.Val) != 2 {
		t.Fatalf("row 1 not sorted by column: %+v", p)
	}
}
