package scan

import (
	"math/rand"
	"testing"
	"testing/quick"

	"oblivhm/internal/core"
	"oblivhm/internal/hm"
)

func sessions(t testing.TB) map[string]*core.Session {
	return map[string]*core.Session{
		"sim":    core.NewSim(hm.MustMachine(hm.HM4(4, 4))),
		"native": core.NewNative(4),
	}
}

func TestPrefixSumsI64(t *testing.T) {
	for name, s := range sessions(t) {
		t.Run(name, func(t *testing.T) {
			for _, n := range []int{1, 2, 3, 5, 8, 100, 1023, 4096} {
				v := s.NewI64(n)
				want := make([]int64, n)
				acc := int64(0)
				for i := 0; i < n; i++ {
					x := int64(i%7 - 3)
					s.PokeI(v, i, x)
					acc += x
					want[i] = acc
				}
				s.Run(int64(2*n), func(c *core.Ctx) { PrefixSumsI64(c, v) })
				for i := 0; i < n; i++ {
					if got := s.PeekI(v, i); got != want[i] {
						t.Fatalf("n=%d: prefix[%d] = %d, want %d", n, i, got, want[i])
					}
				}
			}
		})
	}
}

func TestExclusiveSums(t *testing.T) {
	s := core.NewNative(2)
	n := 257
	v := s.NewI64(n)
	for i := 0; i < n; i++ {
		s.PokeI(v, i, 2)
	}
	var total int64
	s.Run(int64(2*n), func(c *core.Ctx) { total = ExclusiveSumsI64(c, v) })
	if total != int64(2*n) {
		t.Fatalf("total = %d, want %d", total, 2*n)
	}
	for i := 0; i < n; i++ {
		if got := s.PeekI(v, i); got != int64(2*i) {
			t.Fatalf("excl[%d] = %d, want %d", i, got, 2*i)
		}
	}
}

func TestPrefixSumsProperty(t *testing.T) {
	prop := func(seed int64, nn uint16) bool {
		n := int(nn)%500 + 1
		rng := rand.New(rand.NewSource(seed))
		s := core.NewNative(3)
		v := s.NewI64(n)
		want := make([]int64, n)
		acc := int64(0)
		for i := 0; i < n; i++ {
			x := int64(rng.Intn(2001) - 1000)
			s.PokeI(v, i, x)
			acc += x
			want[i] = acc
		}
		s.Run(int64(2*n), func(c *core.Ctx) { PrefixSumsI64(c, v) })
		for i := 0; i < n; i++ {
			if s.PeekI(v, i) != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixSumsF64(t *testing.T) {
	s := core.NewNative(2)
	n := 100
	v := s.NewF64(n)
	for i := 0; i < n; i++ {
		s.PokeF(v, i, 0.5)
	}
	s.Run(int64(2*n), func(c *core.Ctx) { PrefixSumsF64(c, v) })
	for i := 0; i < n; i++ {
		if got := s.PeekF(v, i); got != 0.5*float64(i+1) {
			t.Fatalf("prefix[%d] = %v", i, got)
		}
	}
}

func TestReduceAndMax(t *testing.T) {
	for name, s := range sessions(t) {
		t.Run(name, func(t *testing.T) {
			n := 1000
			v := s.NewI64(n)
			for i := 0; i < n; i++ {
				s.PokeI(v, i, int64(i))
			}
			var sum int64
			var mx uint64
			s.Run(int64(2*n), func(c *core.Ctx) {
				sum = SumI64(c, v)
				mx = ReduceU64(c, core.U64{Base: v.Base, N: v.N}, MaxU, 0)
			})
			if sum != int64(n*(n-1)/2) {
				t.Fatalf("sum = %d", sum)
			}
			if mx != uint64(n-1) {
				t.Fatalf("max = %d", mx)
			}
		})
	}
}

func TestFillCopyIota(t *testing.T) {
	s := core.NewNative(2)
	n := 300
	a := s.NewU64(n)
	b := s.NewU64(n)
	s.Run(int64(2*n), func(c *core.Ctx) {
		FillU64(c, a, 7)
		IotaU64(c, b, 100)
		CopyU64(c, a.Slice(0, 10), b.Slice(5, 15))
	})
	if s.PeekU(a, 0) != 105 || s.PeekU(a, 9) != 114 || s.PeekU(a, 10) != 7 {
		t.Fatalf("fill/copy wrong: %d %d %d", s.PeekU(a, 0), s.PeekU(a, 9), s.PeekU(a, 10))
	}
	if s.PeekU(b, n-1) != uint64(100+n-1) {
		t.Fatal("iota wrong")
	}
}

func TestPackPairs(t *testing.T) {
	for name, s := range sessions(t) {
		t.Run(name, func(t *testing.T) {
			n := 512
			src := s.NewPairs(n)
			dst := s.NewPairs(n)
			for i := 0; i < n; i++ {
				s.PokeP(src, i, core.Pair{Key: uint64(i), Val: uint64(i * 2)})
			}
			cnt := 0
			s.Run(int64(4*n), func(c *core.Ctx) {
				cnt = PackPairs(c, dst, src, func(p core.Pair) bool { return p.Key%3 == 0 })
			})
			want := 0
			for i := 0; i < n; i++ {
				if i%3 == 0 {
					got := s.PeekP(dst, want)
					if got.Key != uint64(i) || got.Val != uint64(2*i) {
						t.Fatalf("packed[%d] = %+v, want key %d", want, got, i)
					}
					want++
				}
			}
			if cnt != want {
				t.Fatalf("count = %d, want %d", cnt, want)
			}
		})
	}
}

// TestPrefixMissBound checks Theorem-style cache behaviour: prefix sums on
// n words incur O(n/B_i) misses per level (constant factor <= 8 for the
// contraction tree's extra passes).
func TestPrefixMissBound(t *testing.T) {
	m := hm.MustMachine(hm.MC3(4))
	s := core.NewSim(m)
	n := 1 << 14
	v := s.NewI64(n)
	for i := 0; i < n; i++ {
		s.PokeI(v, i, 1)
	}
	st := s.RunCold(int64(2*n), func(c *core.Ctx) { PrefixSumsI64(c, v) })
	for _, l := range st.Sim.Levels {
		b := m.Cfg.Levels[l.Level-1].Block
		bound := 8 * int64(n) / b
		if l.TotalMisses > bound {
			t.Errorf("L%d misses = %d > %d (8n/B)", l.Level, l.TotalMisses, bound)
		}
	}
}

// TestScanCriticalPath: §III-A claims scans run in O(B1·log n) parallel
// steps (beyond the n/p work term).  With many cores and a modest n, the
// measured steps must stay within a constant of n/p + B1·log2(n).
func TestScanCriticalPath(t *testing.T) {
	cfg := hm.HM5(2, 4, 4) // 32 cores
	m := hm.MustMachine(cfg)
	s := core.NewSim(m)
	n := 1 << 12
	v := s.NewI64(n)
	for i := 0; i < n; i++ {
		s.PokeI(v, i, 1)
	}
	st := s.RunCold(int64(2*n), func(c *core.Ctx) { PrefixSumsI64(c, v) })
	b1 := float64(cfg.Levels[0].Block)
	logn := 12.0
	bound := int64(25 * (float64(n)/float64(cfg.Cores()) + b1*logn))
	if st.Steps > bound {
		t.Errorf("prefix steps = %d > %d (25·(n/p + B1·log n))", st.Steps, bound)
	}
}

func TestFillI64AndCopyPairs(t *testing.T) {
	s := core.NewNative(2)
	v := s.NewI64(100)
	src := s.NewPairs(50)
	dst := s.NewPairs(50)
	for i := 0; i < 50; i++ {
		s.PokeP(src, i, core.Pair{Key: uint64(i), Val: uint64(i * i)})
	}
	s.Run(512, func(c *core.Ctx) {
		FillI64(c, v, -3)
		CopyPairs(c, dst, src)
	})
	for i := 0; i < 100; i++ {
		if s.PeekI(v, i) != -3 {
			t.Fatalf("fill wrong at %d", i)
		}
	}
	for i := 0; i < 50; i++ {
		if p := s.PeekP(dst, i); p.Key != uint64(i) || p.Val != uint64(i*i) {
			t.Fatalf("copy wrong at %d", i)
		}
	}
}

func TestPackPairsIndexedDedup(t *testing.T) {
	// The canonical use: deduplicate a sorted record stream.
	s := core.NewNative(2)
	keys := []uint64{1, 1, 2, 5, 5, 5, 9}
	src := s.NewPairs(len(keys))
	dst := s.NewPairs(len(keys))
	for i, k := range keys {
		s.PokeP(src, i, core.Pair{Key: k})
	}
	cnt := 0
	s.Run(256, func(c *core.Ctx) {
		cnt = PackPairsIndexed(c, dst, src, func(cc *core.Ctx, i int, p core.Pair) bool {
			return i == 0 || src.Key(cc, i-1) != p.Key
		})
	})
	want := []uint64{1, 2, 5, 9}
	if cnt != len(want) {
		t.Fatalf("count = %d, want %d", cnt, len(want))
	}
	for i, k := range want {
		if s.PeekP(dst, i).Key != k {
			t.Fatalf("dedup[%d] = %d, want %d", i, s.PeekP(dst, i).Key, k)
		}
	}
	// Empty input is a no-op.
	s.Run(16, func(c *core.Ctx) {
		if PackPairsIndexed(c, dst, s.NewPairs(0), func(cc *core.Ctx, i int, p core.Pair) bool { return true }) != 0 {
			t.Error("empty pack returned nonzero")
		}
	})
}

func TestMaxUBothBranches(t *testing.T) {
	if MaxU(3, 5) != 5 || MaxU(5, 3) != 5 || MaxU(4, 4) != 4 {
		t.Fatal("MaxU wrong")
	}
}
