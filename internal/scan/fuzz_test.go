package scan

// Native fuzz target for the parallel prefix sum: arbitrary byte strings
// become signed word sequences, scanned on a small simulated machine and
// compared against the sequential specification.  Run longer with
// `make fuzz`.

import (
	"testing"

	"oblivhm/internal/core"
	"oblivhm/internal/hm"
)

func FuzzScan(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add([]byte{1, 2, 3, 4, 5})
	f.Add([]byte{0xff, 0xff, 0xff, 0})
	f.Add([]byte{0x80, 0x7f, 0x80, 0x7f, 1, 1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		if len(data) > 1024 {
			data = data[:1024]
		}
		n := len(data)
		s := core.NewSim(hm.MustMachine(hm.HM4(2, 2)))
		v := s.NewI64(n)
		want := make([]int64, n)
		acc := int64(0)
		for i, b := range data {
			x := int64(int8(b)) // signed, so cancellation paths are hit
			s.PokeI(v, i, x)
			acc += x
			want[i] = acc
		}
		s.Run(int64(2*n), func(c *core.Ctx) { PrefixSumsI64(c, v) })
		for i := 0; i < n; i++ {
			if got := s.PeekI(v, i); got != want[i] {
				t.Fatalf("n=%d: prefix[%d] = %d, want %d", n, i, got, want[i])
			}
		}
	})
}
