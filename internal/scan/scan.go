// Package scan implements multicore-oblivious scans — prefix sums,
// reductions, fills, copies and stream compaction — scheduled with the CGC
// hint.  Scans are the "balanced parallel (BP) computations" glue used by
// the paper's sorting, list-ranking and graph algorithms (§III-C, §VI).
//
// The prefix sum uses the standard contraction tree: pair up adjacent
// elements with a CGC loop, recurse on the n/2 partial sums, and expand with
// a second CGC loop.  Per the paper (§III-A) this runs in O(B1·log n)
// parallel steps and Θ(n/(q_i·B_i)) cache misses at every level.
package scan

// The scan kernels are data-oblivious: their access traces depend on the
// input shape only, never on element values.  The directive below opts the
// package into the dataoblivious analyzer; //oblivcheck:secret tags on each kernel
// name the arrays whose *values* are secret.  The runtime cross-check is
// the trace-equality harness (internal/harness, `make trace-check`).
//
//oblivcheck:dataoblivious

import "oblivhm/internal/core"

// Op is an associative binary operation on words.
type Op func(a, b uint64) uint64

// AddU is uint64 addition (also correct for two's-complement int64).
func AddU(a, b uint64) uint64 { return a + b }

// MaxU is uint64 maximum.
func MaxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// InclusiveU64 replaces v[i] with op(v[0], ..., v[i]) in place.
// scratch must have capacity >= v.N (it is fully overwritten); pass a
// zero-value U64 to let the scan allocate its own scratch.
//
//oblivcheck:secret v scratch
func InclusiveU64(c *core.Ctx, v core.U64, scratch core.U64, op Op) {
	if v.N <= 1 {
		return
	}
	if scratch.N < v.N {
		scratch = c.NewU64(v.N)
	}
	inclusive(c, v, scratch, op)
}

//oblivcheck:secret v scratch
func inclusive(c *core.Ctx, v core.U64, scratch core.U64, op Op) {
	n := v.N
	if n <= 4 {
		acc := v.At(c, 0)
		for i := 1; i < n; i++ {
			acc = op(acc, v.At(c, i))
			v.Set(c, i, acc)
		}
		return
	}
	half := n / 2
	s := scratch.Slice(0, half)
	// Contract: s[i] = v[2i] ⊕ v[2i+1].
	c.PFor(half, 1, func(cc *core.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			s.Set(cc, i, op(v.At(cc, 2*i), v.At(cc, 2*i+1)))
		}
	})
	inclusive(c, s, scratch.Slice(half, scratch.N), op)
	// Expand: v[2i] = S[i-1] ⊕ v[2i], v[2i+1] = S[i]; odd tail folds in.
	c.PFor(half, 1, func(cc *core.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			if i > 0 {
				v.Set(cc, 2*i, op(s.At(cc, i-1), v.At(cc, 2*i)))
			}
			v.Set(cc, 2*i+1, s.At(cc, i))
		}
	})
	if n%2 == 1 {
		v.Set(c, n-1, op(v.At(c, n-2), v.At(c, n-1)))
	}
}

// ExclusiveU64 replaces v[i] with identity ⊕ v[0] ⊕ ... ⊕ v[i-1] in place
// and returns the total.
//
//oblivcheck:secret v scratch
func ExclusiveU64(c *core.Ctx, v core.U64, scratch core.U64, op Op, identity uint64) uint64 {
	if v.N == 0 {
		return identity
	}
	InclusiveU64(c, v, scratch, op)
	total := v.At(c, v.N-1)
	// Shift right by one with a CGC loop over a temp copy.
	tmp := c.NewU64(v.N)
	CopyU64(c, tmp, v)
	c.PFor(v.N, 1, func(cc *core.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			if i == 0 {
				v.Set(cc, 0, identity)
			} else {
				v.Set(cc, i, tmp.At(cc, i-1))
			}
		}
	})
	return total
}

// PrefixSumsI64 is an inclusive in-place integer prefix sum.
//
//oblivcheck:secret v
func PrefixSumsI64(c *core.Ctx, v core.I64) {
	InclusiveU64(c, core.U64{Base: v.Base, N: v.N}, core.U64{}, AddU)
}

// ExclusiveSumsI64 is an exclusive in-place integer prefix sum returning
// the total.
//
//oblivcheck:secret v
func ExclusiveSumsI64(c *core.Ctx, v core.I64) int64 {
	return int64(ExclusiveU64(c, core.U64{Base: v.Base, N: v.N}, core.U64{}, AddU, 0))
}

// PrefixSumsF64 is an inclusive in-place float prefix sum.
//
//oblivcheck:secret v
func PrefixSumsF64(c *core.Ctx, v core.F64) {
	op := func(a, b uint64) uint64 {
		return f2u(u2f(a) + u2f(b))
	}
	InclusiveU64(c, core.U64{Base: v.Base, N: v.N}, core.U64{}, op)
}

// ReduceU64 returns v[0] ⊕ ... ⊕ v[n-1] without modifying v, via a CGC
// loop producing per-segment partials followed by a recursive reduce.
//
//oblivcheck:secret v
func ReduceU64(c *core.Ctx, v core.U64, op Op, identity uint64) uint64 {
	n := v.N
	if n == 0 {
		return identity
	}
	if n <= 8 {
		acc := identity
		for i := 0; i < n; i++ {
			acc = op(acc, v.At(c, i))
		}
		return acc
	}
	half := (n + 1) / 2
	s := c.NewU64(half)
	c.PFor(half, 1, func(cc *core.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			if 2*i+1 < n {
				s.Set(cc, i, op(v.At(cc, 2*i), v.At(cc, 2*i+1)))
			} else {
				s.Set(cc, i, v.At(cc, 2*i))
			}
		}
	})
	return ReduceU64(c, s, op, identity)
}

// SumI64 returns the sum of an integer vector.
//
//oblivcheck:secret v
func SumI64(c *core.Ctx, v core.I64) int64 {
	return int64(ReduceU64(c, core.U64{Base: v.Base, N: v.N}, AddU, 0))
}

// FillU64 sets every element of v to x with a CGC loop.
func FillU64(c *core.Ctx, v core.U64, x uint64) {
	c.PFor(v.N, 1, func(cc *core.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			v.Set(cc, i, x)
		}
	})
}

// FillI64 sets every element of v to x.
func FillI64(c *core.Ctx, v core.I64, x int64) {
	FillU64(c, core.U64{Base: v.Base, N: v.N}, uint64(x))
}

// CopyU64 copies src into dst (same length) with a CGC loop.
func CopyU64(c *core.Ctx, dst, src core.U64) {
	c.PFor(src.N, 1, func(cc *core.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			dst.Set(cc, i, src.At(cc, i))
		}
	})
}

// CopyPairs copies src into dst (same length) with a CGC loop.
func CopyPairs(c *core.Ctx, dst, src core.Pairs) {
	c.PFor(src.N, 2, func(cc *core.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			dst.Set(cc, i, src.At(cc, i))
		}
	})
}

// IotaU64 sets v[i] = start + i.
func IotaU64(c *core.Ctx, v core.U64, start uint64) {
	c.PFor(v.N, 1, func(cc *core.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			v.Set(cc, i, start+uint64(i))
		}
	})
}

// PackPairs writes the records of src satisfying pred into dst (contiguous,
// stable) and returns their count.  Implemented with O(1) CGC loops and one
// prefix sum, as the paper's BP computations prescribe.
func PackPairs(c *core.Ctx, dst, src core.Pairs, pred func(core.Pair) bool) int {
	n := src.N
	if n == 0 {
		return 0
	}
	flags := c.NewI64(n)
	c.PFor(n, 2, func(cc *core.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			if pred(src.At(cc, i)) {
				flags.Set(cc, i, 1)
			} else {
				flags.Set(cc, i, 0)
			}
		}
	})
	total := ExclusiveSumsI64(c, flags)
	c.PFor(n, 2, func(cc *core.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			p := src.At(cc, i)
			if pred(p) {
				dst.Set(cc, int(flags.At(cc, i)), p)
			}
		}
	})
	return int(total)
}

func u2f(x uint64) float64 { return float64frombits(x) }
func f2u(x float64) uint64 { return float64bits(x) }

// PackPairsIndexed is PackPairs with an index- and context-aware predicate
// (for stream compactions that compare neighbouring records, e.g. sorted
// deduplication).  The predicate must be deterministic per index.
func PackPairsIndexed(c *core.Ctx, dst, src core.Pairs, pred func(cc *core.Ctx, i int, p core.Pair) bool) int {
	n := src.N
	if n == 0 {
		return 0
	}
	flags := c.NewI64(n)
	c.PFor(n, 2, func(cc *core.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			if pred(cc, i, src.At(cc, i)) {
				flags.Set(cc, i, 1)
			} else {
				flags.Set(cc, i, 0)
			}
		}
	})
	total := ExclusiveSumsI64(c, flags)
	c.PFor(n, 2, func(cc *core.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			p := src.At(cc, i)
			if pred(cc, i, p) {
				dst.Set(cc, int(flags.At(cc, i)), p)
			}
		}
	})
	return int(total)
}
