package scan

import "math"

func float64bits(x float64) uint64     { return math.Float64bits(x) }
func float64frombits(x uint64) float64 { return math.Float64frombits(x) }
