// Package nogep implements N-GEP (paper §V-B): the network-oblivious
// Gaussian Elimination Paradigm on the M(N) machine, built from the
// recursive structure of I-GEP with the 𝒟* reordering that eliminates
// duplicate quadrant reads for commutative GEP computations (Table I).
//
// Matrices are distributed in Morton (bit-interleaved) order over
// contiguous PE groups, so each quadrant of a matrix occupies a contiguous
// quarter of its group.  A recursive call executes on the PE subgroup
// owning its writable X quadrant; the read operands U, V, W are routed to
// that subgroup by explicit messages, which is exactly where N-GEP's
// communication volume comes from.  Parallel calls of a round execute in
// superstep lockstep (their traffic shares supersteps), so the recorded
// h-relations match the model's cost.
//
// The original I-GEP 𝒟 ordering is also provided (UseDStar=false) to
// measure the Table I difference: with 𝒟, the quadrants U11/U21 (round 1)
// and U12/U22 (round 2) are each read by two parallel subcalls and must be
// sent twice.
package nogep

import (
	"fmt"
	"math"

	"oblivhm/internal/bitint"
	"oblivhm/internal/gep"
	"oblivhm/internal/no"
)

// buf is one matrix buffer distributed over PEs [Lo, Lo+Q) in Morton
// order: PE Lo+p holds slots [p*SlotsPer, (p+1)*SlotsPer).
type buf struct {
	Lo, Q    int
	M        int // dimension; M*M total slots
	SlotsPer int
	Data     [][]float64 // [pe-Lo][localSlot]
}

func newBuf(lo, q, m int) *buf {
	sp := m * m / q
	d := make([][]float64, q)
	for i := range d {
		d[i] = make([]float64, sp)
	}
	return &buf{Lo: lo, Q: q, M: m, SlotsPer: sp, Data: d}
}

// view is a square submatrix of a buf: slots [SB, SB+M²).
type view struct {
	B  *buf
	SB int
	M  int
}

func (v view) quad(t int) view { h := v.M / 2; return view{v.B, v.SB + t*h*h, h} }

// peRange returns the PE interval covering the view's slots.
func (v view) peRange() (lo, hi int) {
	lo = v.B.Lo + v.SB/v.B.SlotsPer
	hi = v.B.Lo + (v.SB+v.M*v.M-1)/v.B.SlotsPer + 1
	return lo, hi
}

func (v view) sameAs(o view) bool { return v.B == o.B && v.SB == o.SB && v.M == o.M }

// get/set address element (i,j) of the view (local coordinates).
func (v view) slot(i, j int) (pe, loc int) {
	z := v.SB + int(bitint.Interleave(uint64(i), uint64(j)))
	return v.B.Lo + z/v.B.SlotsPer, z % v.B.SlotsPer
}

func (v view) get(i, j int) float64 {
	pe, loc := v.slot(i, j)
	return v.B.Data[pe-v.B.Lo][loc]
}

func (v view) set(i, j int, x float64) {
	pe, loc := v.slot(i, j)
	v.B.Data[pe-v.B.Lo][loc] = x
}

// Engine runs one GEP computation over a World.
type Engine struct {
	W        *no.World
	Spec     gep.Spec
	UseDStar bool
}

// call is one pending function invocation.
type call struct {
	kind       byte // 'A', 'B', 'C', 'D'
	x, u, v, w view
	i0, j0, k0 int
}

// RunGEP executes the full computation 𝒜(x,x,x,x) on an M×M matrix
// distributed over all N PEs; in/out are host-side row-major copies.
func (g *Engine) RunGEP(m int, in []float64) []float64 {
	x := g.distribute(m, in)
	xv := view{B: x, SB: 0, M: m}
	g.exec([]call{{kind: 'A', x: xv, u: xv, v: xv, w: xv}})
	return g.collect(x)
}

// RunMatMul executes C += A·B through function 𝒟 on three disjoint
// distributed matrices.
func (g *Engine) RunMatMul(m int, cin, a, b []float64) []float64 {
	cb := g.distribute(m, cin)
	ab := g.distribute(m, a)
	bb := g.distribute(m, b)
	g.exec([]call{{
		kind: 'D',
		x:    view{B: cb, M: m},
		u:    view{B: ab, M: m},
		v:    view{B: bb, M: m},
		w:    view{B: bb, M: m},
	}})
	return g.collect(cb)
}

func (g *Engine) distribute(m int, host []float64) *buf {
	n := g.W.N
	if !bitint.IsPow2(m) || m*m%n != 0 || m*m < n {
		panic(fmt.Sprintf("nogep: need power-of-two m with m² >= N and N | m² (m=%d, N=%d)", m, n))
	}
	b := newBuf(0, n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			v := view{B: b, M: m}
			v.set(i, j, host[i*m+j])
		}
	}
	return b
}

func (g *Engine) collect(b *buf) []float64 {
	m := b.M
	out := make([]float64, m*m)
	v := view{B: b, M: m}
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			out[i*m+j] = v.get(i, j)
		}
	}
	return out
}

// exec runs a set of parallel calls (disjoint executing groups) in
// superstep lockstep: first a combined localisation phase that routes every
// remote read operand to its executing subgroup, then either one local
// compute superstep (single-PE groups) or phase-aligned recursion.
func (g *Engine) exec(calls []call) {
	live := calls[:0:0]
	for _, c := range calls {
		if g.Spec.S.Intersects(c.i0, c.j0, c.k0, c.x.M) {
			live = append(live, c)
		}
	}
	if len(live) == 0 {
		return
	}
	live = g.localize(live)

	lo0, hi0 := live[0].x.peRange()
	if hi0-lo0 == 1 {
		g.baseCompute(live)
		return
	}
	// Phase-aligned recursion: every call expands into the same number of
	// rounds (kinds within a set are {A}, {B,C}, or {D}).
	nph := phases(live[0].kind)
	for ph := 0; ph < nph; ph++ {
		var next []call
		for _, c := range live {
			next = append(next, g.expand(c, ph)...)
		}
		g.exec(next)
	}
}

func phases(kind byte) int {
	if kind == 'A' {
		return 6
	}
	if kind == 'D' {
		return 2
	}
	return 4
}

// expand returns the subcalls of phase ph of call c (quadrant views and
// shifted Σ origins).
func (g *Engine) expand(c call, ph int) []call {
	h := c.x.M / 2
	// Quadrant helpers: t = 2*rowHalf + colHalf.
	xq := func(t int) view { return c.x.quad(t) }
	uq := func(t int) view { return c.u.quad(t) }
	vq := func(t int) view { return c.v.quad(t) }
	wq := func(t int) view { return c.w.quad(t) }
	mk := func(kind byte, xt, ut, vt, wt int) call {
		return call{
			kind: kind,
			x:    xq(xt), u: uq(ut), v: vq(vt), w: wq(wt),
			i0: c.i0 + (xt>>1)*h,
			j0: c.j0 + (xt&1)*h,
			k0: c.k0 + (ut&1)*h,
		}
	}
	const (
		q11 = 0
		q12 = 1
		q21 = 2
		q22 = 3
	)
	switch c.kind {
	case 'A':
		switch ph {
		case 0:
			return []call{mk('A', q11, q11, q11, q11)}
		case 1:
			return []call{mk('B', q12, q11, q12, q11), mk('C', q21, q21, q11, q11)}
		case 2:
			return []call{mk('D', q22, q21, q12, q11)}
		case 3:
			return []call{mk('A', q22, q22, q22, q22)}
		case 4:
			return []call{mk('B', q21, q22, q21, q22), mk('C', q12, q12, q22, q22)}
		case 5:
			return []call{mk('D', q11, q12, q21, q22)}
		}
	case 'B':
		switch ph {
		case 0:
			return []call{mk('B', q11, q11, q11, q11), mk('B', q12, q11, q12, q11)}
		case 1:
			return []call{mk('D', q21, q21, q11, q11), mk('D', q22, q21, q12, q11)}
		case 2:
			return []call{mk('B', q21, q22, q21, q22), mk('B', q22, q22, q22, q22)}
		case 3:
			return []call{mk('D', q11, q12, q21, q22), mk('D', q12, q12, q22, q22)}
		}
	case 'C':
		switch ph {
		case 0:
			return []call{mk('C', q11, q11, q11, q11), mk('C', q21, q21, q11, q11)}
		case 1:
			return []call{mk('D', q12, q11, q12, q11), mk('D', q22, q21, q12, q11)}
		case 2:
			return []call{mk('C', q12, q12, q22, q22), mk('C', q22, q22, q22, q22)}
		case 3:
			return []call{mk('D', q11, q12, q21, q22), mk('D', q21, q22, q21, q22)}
		}
	case 'D':
		if g.UseDStar {
			// Table I right column.
			if ph == 0 {
				return []call{
					mk('D', q11, q11, q11, q11),
					mk('D', q12, q12, q22, q22),
					mk('D', q21, q22, q21, q22),
					mk('D', q22, q21, q12, q11),
				}
			}
			return []call{
				mk('D', q11, q12, q21, q22),
				mk('D', q12, q11, q12, q11),
				mk('D', q21, q21, q11, q11),
				mk('D', q22, q22, q22, q22),
			}
		}
		// Table I left column (I-GEP's 𝒟).
		if ph == 0 {
			return []call{
				mk('D', q11, q11, q11, q11),
				mk('D', q12, q11, q12, q11),
				mk('D', q21, q21, q11, q11),
				mk('D', q22, q21, q12, q11),
			}
		}
		return []call{
			mk('D', q11, q12, q21, q22),
			mk('D', q12, q12, q22, q22),
			mk('D', q21, q22, q21, q22),
			mk('D', q22, q22, q22, q22),
		}
	}
	panic("nogep: bad phase")
}

// localize routes every remote read operand of every call onto the call's
// executing PE group, in one combined 2-superstep phase.  Operands that
// alias the call's X (or a previously localized operand of the same call)
// are shared, not copied.
func (g *Engine) localize(calls []call) []call {
	type cp struct {
		src view
		dst *buf
	}
	var copies []cp
	out := make([]call, len(calls))
	for ci, c := range calls {
		lo, hi := c.x.peRange()
		q := hi - lo
		ops := [3]*view{&c.u, &c.v, &c.w}
		done := make([]view, 0, 3)
		dsts := make([]*buf, 0, 3)
		for _, op := range ops {
			if op.sameAs(c.x) {
				*op = c.x
				continue
			}
			olo, ohi := op.peRange()
			if olo >= lo && ohi <= hi {
				continue // already resident within this group: reads are local
			}
			reused := false
			for di, d := range done {
				if op.sameAs(d) {
					*op = view{B: dsts[di], SB: 0, M: op.M}
					reused = true
					break
				}
			}
			if reused {
				continue
			}
			dq := q
			if dq > op.M*op.M {
				dq = op.M * op.M
			}
			dst := newBuf(lo, dq, op.M)
			copies = append(copies, cp{src: *op, dst: dst})
			done = append(done, *op)
			dsts = append(dsts, dst)
			*op = view{B: dst, SB: 0, M: op.M}
		}
		out[ci] = c
	}
	if len(copies) == 0 {
		return out
	}
	// One combined routing phase: every PE sends the contiguous runs of
	// source slots it owns; receivers store into their local slots.
	w := g.W
	w.Step(func(e *no.Env) {
		pe := e.PE()
		for _, t := range copies {
			b := t.src.B
			if pe < b.Lo || pe >= b.Lo+b.Q {
				continue
			}
			mySlotLo := (pe - b.Lo) * b.SlotsPer
			mySlotHi := mySlotLo + b.SlotsPer
			lo := max(mySlotLo, t.src.SB)
			hi := min(mySlotHi, t.src.SB+t.src.M*t.src.M)
			for z := lo; z < hi; {
				dz := z - t.src.SB // destination slot
				dpe := t.dst.Lo + dz/t.dst.SlotsPer
				runEnd := min(hi, z+(t.dst.SlotsPer-dz%t.dst.SlotsPer))
				payload := make([]uint64, 0, 2+runEnd-z)
				payload = append(payload, uint64(bufID(t.dst)), uint64(dz%t.dst.SlotsPer))
				for zz := z; zz < runEnd; zz++ {
					payload = append(payload, f2u(b.Data[pe-b.Lo][zz-mySlotLo]))
				}
				e.Send(dpe, 0, payload...)
				z = runEnd
			}
		}
	})
	w.Step(func(e *no.Env) {
		pe := e.PE()
		for _, m := range e.Inbox() {
			id := int(m.Data[0])
			loc := int(m.Data[1])
			for _, t := range copies {
				if bufID(t.dst) != id {
					continue
				}
				if pe < t.dst.Lo || pe >= t.dst.Lo+t.dst.Q {
					continue
				}
				for k, wv := range m.Data[2:] {
					t.dst.Data[pe-t.dst.Lo][loc+k] = u2f(wv)
				}
				break
			}
		}
	})
	return out
}

// baseCompute executes all calls of the set locally (each on its single
// owning PE) in one superstep, in the canonical k,i,j order.
func (g *Engine) baseCompute(calls []call) {
	w := g.W
	w.Step(func(e *no.Env) {
		pe := e.PE()
		for _, c := range calls {
			lo, _ := c.x.peRange()
			if lo != pe {
				continue
			}
			m := c.x.M
			for k := 0; k < m; k++ {
				for i := 0; i < m; i++ {
					for j := 0; j < m; j++ {
						if !g.Spec.S.Has(c.i0+i, c.j0+j, c.k0+k) {
							continue
						}
						e.Work(1)
						c.x.set(i, j, g.Spec.F(c.x.get(i, j), c.u.get(i, k), c.v.get(k, j), c.w.get(k, k)))
					}
				}
			}
		}
	})
}

// bufID gives a stable per-buf identity for message routing within one
// localisation phase.
var bufIDs = map[*buf]int{}
var nextBufID int

func bufID(b *buf) int {
	if id, ok := bufIDs[b]; ok {
		return id
	}
	nextBufID++
	bufIDs[b] = nextBufID
	return nextBufID
}

func f2u(x float64) uint64 { return math.Float64bits(x) }
func u2f(x uint64) float64 { return math.Float64frombits(x) }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
