package nogep

import (
	"math"
	"math/rand"
	"testing"

	"oblivhm/internal/core"
	"oblivhm/internal/gep"
	"oblivhm/internal/no"
)

// refGEP runs the Figure-5 triple loop on the host.
func refGEP(m int, x []float64, g gep.Spec) []float64 {
	out := append([]float64(nil), x...)
	for k := 0; k < m; k++ {
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				if g.S.Has(i, j, k) {
					out[i*m+j] = g.F(out[i*m+j], out[i*m+k], out[k*m+j], out[k*m+k])
				}
			}
		}
	}
	return out
}

func randMat(m int, seed int64, diagBoost float64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, m*m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			x[i*m+j] = rng.Float64() + 0.5
			if i == j {
				x[i*m+j] += diagBoost
			}
		}
	}
	return x
}

func close2(a, b []float64, tol float64) int {
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol*(1+math.Abs(b[i])) {
			return i
		}
	}
	return -1
}

// TestNGEPMatchesReference: N-GEP (with 𝒟*) on the distributed machine
// must equal the host triple loop for the commutative instances.
func TestNGEPMatchesReference(t *testing.T) {
	for _, m := range []int{4, 8, 16, 32} {
		for _, pes := range []int{4, 16} {
			if m*m < pes {
				continue
			}
			t.Run("", func(t *testing.T) {
				// Floyd–Warshall.
				w := no.NewWorld(pes, minInt(4, pes), 2)
				e := &Engine{W: w, Spec: gep.Floyd(), UseDStar: true}
				in := randMat(m, int64(m), 0)
				got := e.RunGEP(m, in)
				want := refGEP(m, in, gep.Floyd())
				if i := close2(got, want, 1e-9); i >= 0 {
					t.Fatalf("floyd m=%d pes=%d: mismatch at %d: %v vs %v", m, pes, i, got[i], want[i])
				}
				// Gaussian elimination (diagonally dominant).
				w2 := no.NewWorld(pes, minInt(4, pes), 2)
				e2 := &Engine{W: w2, Spec: gep.Gauss(), UseDStar: true}
				in2 := randMat(m, int64(m)+99, float64(2*m))
				got2 := e2.RunGEP(m, in2)
				want2 := refGEP(m, in2, gep.Gauss())
				if i := close2(got2, want2, 1e-6); i >= 0 {
					t.Fatalf("gauss m=%d pes=%d: mismatch at %d: %v vs %v", m, pes, i, got2[i], want2[i])
				}
			})
		}
	}
}

// TestNGEPDOrderingAlsoCorrect: for commutative computations the original
// 𝒟 ordering gives the same answer (§V-B equivalence).
func TestNGEPDOrderingAlsoCorrect(t *testing.T) {
	m, pes := 16, 16
	in := randMat(m, 5, 0)
	want := refGEP(m, in, gep.Floyd())
	for _, star := range []bool{false, true} {
		w := no.NewWorld(pes, 4, 2)
		e := &Engine{W: w, Spec: gep.Floyd(), UseDStar: star}
		got := e.RunGEP(m, in)
		if i := close2(got, want, 1e-9); i >= 0 {
			t.Fatalf("star=%v: mismatch at %d", star, i)
		}
	}
}

// TestTableIDStarReducesComm: the E10 experiment in miniature — with the
// 𝒟* ordering no U/V quadrant is read twice in a round, so the recorded
// communication must be strictly below the 𝒟 ordering's.
func TestTableIDStarReducesComm(t *testing.T) {
	m, pes := 32, 64
	a := randMat(m, 1, 0)
	b := randMat(m, 2, 0)
	cin := make([]float64, m*m)
	comm := func(star bool) int64 {
		w := no.NewWorld(pes, 8, 4)
		e := &Engine{W: w, Spec: gep.MulAdd(), UseDStar: star}
		e.RunMatMul(m, cin, a, b)
		return w.Comm()
	}
	cd, cds := comm(false), comm(true)
	if cds >= cd {
		t.Errorf("D* comm %d not below D comm %d", cds, cd)
	}
}

// TestNGEPMatMul: the 𝒟 path computes C += A·B.
func TestNGEPMatMul(t *testing.T) {
	m, pes := 16, 16
	a := randMat(m, 3, 0)
	b := randMat(m, 4, 0)
	cin := make([]float64, m*m)
	w := no.NewWorld(pes, 4, 2)
	e := &Engine{W: w, Spec: gep.MulAdd(), UseDStar: true}
	got := e.RunMatMul(m, cin, a, b)
	want := make([]float64, m*m)
	for i := 0; i < m; i++ {
		for k := 0; k < m; k++ {
			for j := 0; j < m; j++ {
				want[i*m+j] += a[i*m+k] * b[k*m+j]
			}
		}
	}
	if i := close2(got, want, 1e-9); i >= 0 {
		t.Fatalf("matmul mismatch at %d: %v vs %v", i, got[i], want[i])
	}
}

// TestNGEPMatchesIGEP: the network-oblivious and multicore-oblivious
// implementations agree bit-for-bit on min-plus (no float reassociation).
func TestNGEPMatchesIGEP(t *testing.T) {
	m := 16
	in := randMat(m, 8, 0)
	w := no.NewWorld(16, 4, 2)
	e := &Engine{W: w, Spec: gep.Floyd(), UseDStar: true}
	got := e.RunGEP(m, in)

	s := core.NewNative(2)
	x := s.NewMat(m, m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			s.PokeM(x, i, j, in[i*m+j])
		}
	}
	s.Run(gep.SpaceBound(m), func(c *core.Ctx) { gep.IGEP(c, x, gep.Floyd()) })
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if got[i*m+j] != s.PeekM(x, i, j) {
				t.Fatalf("N-GEP vs I-GEP differ at (%d,%d)", i, j)
			}
		}
	}
}

// TestTheorem6CommScaling: communication scales like m²/(√p·B): doubling
// B roughly halves it.
func TestTheorem6CommScaling(t *testing.T) {
	m, pes := 32, 64
	in := randMat(m, 6, 0)
	comm := func(b int) int64 {
		w := no.NewWorld(pes, 8, b)
		e := &Engine{W: w, Spec: gep.Floyd(), UseDStar: true}
		e.RunGEP(m, in)
		return w.Comm()
	}
	c1, c2 := comm(2), comm(8)
	if c2*2 > c1 {
		t.Errorf("4x block size: comm %d -> %d, want < half", c1, c2)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
