package sweep

import (
	"errors"
	"strings"
	"testing"
)

// validSpec is the parse-success baseline the error table mutates away
// from.
const validSpec = `{
  "name": "t",
  "algos": ["sort", "mm"],
  "machines": ["hm4"],
  "sizes": [256, 512],
  "seeds": [0, 1],
  "options": ["default", "flat"],
  "hypotheses": [
    {
      "name": "x",
      "kind": "crossover",
      "metric": "misses.L2",
      "subject": {"algo": "mm", "options": "default"},
      "baseline": {"algo": "mm", "options": "flat"},
      "min_ratio": 1.5,
      "at_or_below_n": 512
    },
    {
      "name": "s",
      "kind": "stability",
      "metric": "steps",
      "epsilon": 0.1
    }
  ]
}`

func TestParseValidSpec(t *testing.T) {
	spec, err := Parse([]byte(validSpec))
	if err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if got := len(Expand(spec)); got != 2*1*2*2*2 {
		t.Fatalf("grid size = %d, want 16", got)
	}
}

func TestParseNormalizesDefaults(t *testing.T) {
	spec, err := Parse([]byte(`{"algos":["sort"],"machines":["mc3"],"sizes":[64],"options":[""]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Seeds) != 1 || spec.Seeds[0] != 0 {
		t.Errorf("seeds not defaulted to [0]: %v", spec.Seeds)
	}
	if len(spec.Options) != 1 || spec.Options[0] != "default" {
		t.Errorf("empty option name not canonicalized: %v", spec.Options)
	}
	grid := Expand(spec)
	if len(grid) != 1 || grid[0].Options != "default" {
		t.Errorf("grid = %v", grid)
	}
}

// TestParseErrors is the table of rejection cases: every one must come
// back as a *SpecError naming the offending field.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		name  string
		json  string
		field string // wanted SpecError.Field
		msg   string // substring of the message
	}{
		{
			name:  "malformed json",
			json:  `{"algos": [`,
			field: "json",
			msg:   "malformed",
		},
		{
			name:  "trailing garbage",
			json:  `{"algos":["sort"],"machines":["mc3"],"sizes":[64]} {"again":1}`,
			field: "json",
			msg:   "trailing data",
		},
		{
			name:  "unknown top-level field",
			json:  `{"algoss": ["sort"], "machines": ["mc3"], "sizes": [64]}`,
			field: "algoss",
			msg:   "unknown field",
		},
		{
			name:  "wrong axis type",
			json:  `{"algos": "sort", "machines": ["mc3"], "sizes": [64]}`,
			field: "algos",
			msg:   "want []string",
		},
		{
			name:  "empty algos axis",
			json:  `{"machines": ["mc3"], "sizes": [64]}`,
			field: "algos",
			msg:   "empty axis",
		},
		{
			name:  "unknown algorithm",
			json:  `{"algos": ["sort", "quicksort"], "machines": ["mc3"], "sizes": [64]}`,
			field: "algos[1]",
			msg:   `unknown algorithm "quicksort"`,
		},
		{
			name:  "duplicate algorithm",
			json:  `{"algos": ["sort", "sort"], "machines": ["mc3"], "sizes": [64]}`,
			field: "algos[1]",
			msg:   "duplicate",
		},
		{
			name:  "empty machines axis",
			json:  `{"algos": ["sort"], "sizes": [64]}`,
			field: "machines",
			msg:   "empty axis",
		},
		{
			name:  "unknown machine",
			json:  `{"algos": ["sort"], "machines": ["hm9"], "sizes": [64]}`,
			field: "machines[0]",
			msg:   `unknown machine preset "hm9"`,
		},
		{
			name:  "empty sizes axis",
			json:  `{"algos": ["sort"], "machines": ["mc3"]}`,
			field: "sizes",
			msg:   "empty axis",
		},
		{
			name:  "non-positive size",
			json:  `{"algos": ["sort"], "machines": ["mc3"], "sizes": [64, 0]}`,
			field: "sizes[1]",
			msg:   "positive",
		},
		{
			name:  "duplicate size",
			json:  `{"algos": ["sort"], "machines": ["mc3"], "sizes": [64, 64]}`,
			field: "sizes[1]",
			msg:   "duplicate",
		},
		{
			name:  "duplicate seed",
			json:  `{"algos": ["sort"], "machines": ["mc3"], "sizes": [64], "seeds": [1, 1]}`,
			field: "seeds[1]",
			msg:   "duplicate",
		},
		{
			name:  "unknown option set",
			json:  `{"algos": ["sort"], "machines": ["mc3"], "sizes": [64], "options": ["warp"]}`,
			field: "options[0]",
			msg:   `unknown option set "warp"`,
		},
		{
			name:  "duplicate option via normalization",
			json:  `{"algos": ["sort"], "machines": ["mc3"], "sizes": [64], "options": ["", "default"]}`,
			field: "options[1]",
			msg:   "duplicate",
		},
		{
			name: "hypothesis without name",
			json: `{"algos": ["sort"], "machines": ["mc3"], "sizes": [64],
			        "hypotheses": [{"kind": "stability", "metric": "steps", "epsilon": 0.1}]}`,
			field: "hypotheses[0].name",
			msg:   "needs a name",
		},
		{
			name: "unknown hypothesis kind",
			json: `{"algos": ["sort"], "machines": ["mc3"], "sizes": [64],
			        "hypotheses": [{"name": "h", "kind": "anova", "metric": "steps"}]}`,
			field: "hypotheses[0].kind",
			msg:   `unknown kind "anova"`,
		},
		{
			name: "bad metric",
			json: `{"algos": ["sort"], "machines": ["mc3"], "sizes": [64],
			        "hypotheses": [{"name": "h", "kind": "stability", "metric": "misses.LX", "epsilon": 0.1}]}`,
			field: "hypotheses[0].metric",
			msg:   "bad metric",
		},
		{
			name: "crossover without min_ratio",
			json: `{"algos": ["sort"], "machines": ["mc3"], "sizes": [64],
			        "hypotheses": [{"name": "h", "kind": "crossover", "metric": "steps",
			                        "subject": {"algo": "sort"}, "baseline": {"algo": "sort", "options": "flat"}}]}`,
			field: "hypotheses[0].min_ratio",
			msg:   "min_ratio > 0",
		},
		{
			name: "crossover selector without algo",
			json: `{"algos": ["sort"], "machines": ["mc3"], "sizes": [64],
			        "hypotheses": [{"name": "h", "kind": "crossover", "metric": "steps", "min_ratio": 1,
			                        "baseline": {"algo": "sort"}}]}`,
			field: "hypotheses[0].subject.algo",
			msg:   "must pin an algorithm",
		},
		{
			name: "crossover selector off the axis",
			json: `{"algos": ["sort"], "machines": ["mc3"], "sizes": [64],
			        "hypotheses": [{"name": "h", "kind": "crossover", "metric": "steps", "min_ratio": 1,
			                        "subject": {"algo": "mm"}, "baseline": {"algo": "sort"}}]}`,
			field: "hypotheses[0].subject.algo",
			msg:   "not on the algos axis",
		},
		{
			name: "crossover ambiguous machine",
			json: `{"algos": ["sort"], "machines": ["mc3", "hm4"], "sizes": [64],
			        "hypotheses": [{"name": "h", "kind": "crossover", "metric": "steps", "min_ratio": 1,
			                        "subject": {"algo": "sort"}, "baseline": {"algo": "sort", "options": "flat"}}]}`,
			field: "hypotheses[0].subject.machine",
			msg:   "must pin one",
		},
		{
			name: "crossover subject equals baseline",
			json: `{"algos": ["sort"], "machines": ["mc3"], "sizes": [64],
			        "hypotheses": [{"name": "h", "kind": "crossover", "metric": "steps", "min_ratio": 1,
			                        "subject": {"algo": "sort"}, "baseline": {"algo": "sort"}}]}`,
			field: "hypotheses[0].baseline",
			msg:   "same rows",
		},
		{
			name: "stability without epsilon",
			json: `{"algos": ["sort"], "machines": ["mc3"], "sizes": [64], "seeds": [1, 2],
			        "hypotheses": [{"name": "h", "kind": "stability", "metric": "steps"}]}`,
			field: "hypotheses[0].epsilon",
			msg:   "epsilon > 0",
		},
		{
			name: "stability with one seed",
			json: `{"algos": ["sort"], "machines": ["mc3"], "sizes": [64],
			        "hypotheses": [{"name": "h", "kind": "stability", "metric": "steps", "epsilon": 0.1}]}`,
			field: "hypotheses[0].kind",
			msg:   "need >= 2",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.json))
			if err == nil {
				t.Fatal("spec accepted, want rejection")
			}
			var se *SpecError
			if !errors.As(err, &se) {
				t.Fatalf("error is %T, want *SpecError: %v", err, err)
			}
			if se.Field != tc.field {
				t.Errorf("field = %q, want %q (err: %v)", se.Field, tc.field, err)
			}
			if !strings.Contains(se.Msg, tc.msg) {
				t.Errorf("msg = %q, want substring %q", se.Msg, tc.msg)
			}
		})
	}
}

func TestParseMetric(t *testing.T) {
	good := map[string]metricSel{
		"steps":     {kind: "steps"},
		"work":      {kind: "work"},
		"steals":    {kind: "steals"},
		"misses.L1": {kind: "misses", level: 1},
		"misses.L3": {kind: "misses", level: 3},
		"ratio.L2":  {kind: "ratio", level: 2},
	}
	for in, want := range good {
		got, err := parseMetric(in)
		if err != nil || got != want {
			t.Errorf("parseMetric(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, in := range []string{"", "missteps", "misses", "misses.L0", "misses.L-1", "ratio.Lx", "steps.L1"} {
		if _, err := parseMetric(in); err == nil {
			t.Errorf("parseMetric(%q) accepted, want error", in)
		}
	}
}

func TestExpandOrderAndHashes(t *testing.T) {
	spec, err := Parse([]byte(validSpec))
	if err != nil {
		t.Fatal(err)
	}
	grid := Expand(spec)
	// Axis nesting: algos → machines → sizes → options → seeds.
	wantFirst := []string{
		"sort/hm4/n256/default/s0",
		"sort/hm4/n256/default/s1",
		"sort/hm4/n256/flat/s0",
		"sort/hm4/n256/flat/s1",
		"sort/hm4/n512/default/s0",
	}
	for i, want := range wantFirst {
		if got := grid[i].Key(); got != want {
			t.Errorf("grid[%d] = %s, want %s", i, got, want)
		}
	}
	if grid[len(grid)-1].Key() != "mm/hm4/n512/flat/s1" {
		t.Errorf("grid tail = %s", grid[len(grid)-1].Key())
	}
	seen := make(map[string]bool)
	for _, c := range grid {
		h := c.Hash()
		if seen[h] {
			t.Fatalf("duplicate config hash %s for %s", h, c.Key())
		}
		seen[h] = true
	}
}
