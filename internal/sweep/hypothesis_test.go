package sweep

// Detector unit tests on synthetic rows, plus the golden hypothesis suite:
// checked-in specs over the golden algo × machine matrix whose verdicts
// are pinned in testdata/golden_verdicts.json.  Regenerate (only when a
// verdict change is intended and reviewed) with
//
//	go test ./internal/sweep -run TestGoldenHypotheses -update

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"oblivhm/internal/harness"
)

var update = flag.Bool("update", false, "rewrite testdata/golden_verdicts.json")

// synthRow builds a row with the given per-level misses and steps.
func synthRow(algo, opt string, n int, seed int64, steps int64, misses ...int64) Row {
	r := Row{Config: Config{Algo: algo, Machine: "hm4", N: n, Options: opt, Seed: seed}, Steps: steps}
	r.Hash = r.Config.Hash()
	for i, m := range misses {
		r.Levels = append(r.Levels, harness.LevelReport{Level: i + 1, MaxMisses: m})
	}
	return r
}

func synthSpec(sizes []int, seeds []int64, hyp ...Hypothesis) *Spec {
	return &Spec{
		Algos: []string{"mm"}, Machines: []string{"hm4"}, Sizes: sizes,
		Seeds: seeds, Options: []string{"default", "flat"}, Hypotheses: hyp,
	}
}

func TestCrossoverDetector(t *testing.T) {
	hyp := Hypothesis{
		Name: "h", Kind: "crossover", Metric: "misses.L1",
		Subject:  Selector{Algo: "mm", Options: "default"},
		Baseline: Selector{Algo: "mm", Options: "flat"},
		MinRatio: 1.5, AtOrBelowN: 1024,
	}
	mk := func(ratios map[int][2]int64) []Row {
		var rows []Row
		for _, n := range []int{256, 512, 1024} {
			pair := ratios[n]
			rows = append(rows,
				synthRow("mm", "default", n, 0, 100, pair[0]),
				synthRow("mm", "flat", n, 0, 100, pair[1]))
		}
		return rows
	}

	t.Run("crossover at declared bound passes", func(t *testing.T) {
		spec := synthSpec([]int{256, 512, 1024}, nil, hyp)
		// ratio: 1.0, 1.0, 2.0 — crossover at 1024.
		vs := Evaluate(spec, mk(map[int][2]int64{256: {100, 100}, 512: {100, 100}, 1024: {100, 200}}))
		if !vs[0].Pass || vs[0].CrossoverN != 1024 {
			t.Fatalf("verdict = %+v", vs[0])
		}
	})
	t.Run("no crossover fails", func(t *testing.T) {
		spec := synthSpec([]int{256, 512, 1024}, nil, hyp)
		vs := Evaluate(spec, mk(map[int][2]int64{256: {100, 100}, 512: {100, 100}, 1024: {100, 120}}))
		if vs[0].Pass || vs[0].CrossoverN != 0 {
			t.Fatalf("verdict = %+v", vs[0])
		}
		if !strings.Contains(vs[0].Detail, "no crossover") {
			t.Errorf("detail = %s", vs[0].Detail)
		}
	})
	t.Run("non-sustained win does not count", func(t *testing.T) {
		spec := synthSpec([]int{256, 512, 1024}, nil, hyp)
		// wins at 512, loses again at 1024: the suffix rule rejects it.
		vs := Evaluate(spec, mk(map[int][2]int64{256: {100, 100}, 512: {100, 300}, 1024: {100, 100}}))
		if vs[0].Pass {
			t.Fatalf("verdict = %+v", vs[0])
		}
	})
	t.Run("crossover above bound fails", func(t *testing.T) {
		h := hyp
		h.AtOrBelowN = 512
		spec := synthSpec([]int{256, 512, 1024}, nil, h)
		vs := Evaluate(spec, mk(map[int][2]int64{256: {100, 100}, 512: {100, 100}, 1024: {100, 200}}))
		if vs[0].Pass || vs[0].CrossoverN != 1024 {
			t.Fatalf("verdict = %+v", vs[0])
		}
		if !strings.Contains(vs[0].Detail, "above the declared bound") {
			t.Errorf("detail = %s", vs[0].Detail)
		}
	})
	t.Run("zero bound accepts any crossover", func(t *testing.T) {
		h := hyp
		h.AtOrBelowN = 0
		spec := synthSpec([]int{256, 512, 1024}, nil, h)
		vs := Evaluate(spec, mk(map[int][2]int64{256: {100, 200}, 512: {100, 200}, 1024: {100, 200}}))
		if !vs[0].Pass || vs[0].CrossoverN != 256 {
			t.Fatalf("verdict = %+v", vs[0])
		}
	})
	t.Run("errored supporting row fails with diagnostic", func(t *testing.T) {
		spec := synthSpec([]int{256}, nil, hyp)
		rows := mk(map[int][2]int64{256: {100, 200}})[:2]
		rows[0].Err = "boom"
		vs := Evaluate(spec, rows)
		if vs[0].Pass || !strings.Contains(vs[0].Detail, "errored") {
			t.Fatalf("verdict = %+v", vs[0])
		}
	})
	t.Run("metric level beyond machine fails gracefully", func(t *testing.T) {
		h := hyp
		h.Metric = "misses.L9"
		spec := synthSpec([]int{256}, nil, h)
		vs := Evaluate(spec, mk(map[int][2]int64{256: {100, 200}})[:2])
		if vs[0].Pass || !strings.Contains(vs[0].Detail, "cache levels") {
			t.Fatalf("verdict = %+v", vs[0])
		}
	})
}

func TestStabilityDetector(t *testing.T) {
	hyp := Hypothesis{Name: "s", Kind: "stability", Metric: "steps", Epsilon: 0.05}
	t.Run("within epsilon passes", func(t *testing.T) {
		spec := synthSpec([]int{256}, []int64{1, 2}, hyp)
		vs := Evaluate(spec, []Row{
			synthRow("mm", "default", 256, 1, 100, 10),
			synthRow("mm", "default", 256, 2, 103, 10),
		})
		if !vs[0].Pass {
			t.Fatalf("verdict = %+v", vs[0])
		}
		if want := (103.0 - 100.0) / 101.5; vs[0].Spread != want {
			t.Errorf("spread = %g, want %g", vs[0].Spread, want)
		}
	})
	t.Run("beyond epsilon fails", func(t *testing.T) {
		spec := synthSpec([]int{256}, []int64{1, 2}, hyp)
		vs := Evaluate(spec, []Row{
			synthRow("mm", "default", 256, 1, 100, 10),
			synthRow("mm", "default", 256, 2, 120, 10),
		})
		if vs[0].Pass || !strings.Contains(vs[0].Detail, "exceeds epsilon") {
			t.Fatalf("verdict = %+v", vs[0])
		}
	})
	t.Run("empty filter match fails", func(t *testing.T) {
		h := hyp
		h.Filter = Selector{Algo: "mm", Options: "steal"}
		spec := synthSpec([]int{256}, []int64{1, 2}, h)
		vs := Evaluate(spec, []Row{synthRow("mm", "default", 256, 1, 100, 10)})
		if vs[0].Pass || !strings.Contains(vs[0].Detail, "matched no rows") {
			t.Fatalf("verdict = %+v", vs[0])
		}
	})
	t.Run("single-seed group fails", func(t *testing.T) {
		spec := synthSpec([]int{256}, []int64{1, 2}, hyp)
		vs := Evaluate(spec, []Row{synthRow("mm", "default", 256, 1, 100, 10)})
		if vs[0].Pass || !strings.Contains(vs[0].Detail, "single seed") {
			t.Fatalf("verdict = %+v", vs[0])
		}
	})
}

func TestSurvivabilityDetector(t *testing.T) {
	hyp := Hypothesis{
		Name: "v", Kind: "survivability", Metric: "steps",
		Subject:  Selector{Algo: "mm", Options: "failstop1"},
		Baseline: Selector{Algo: "mm", Options: "default"},
		MaxRatio: 2.0, MinDead: 1,
	}
	// synthSpec declares options {default, flat}; widen for the failure set.
	mkSpec := func(h Hypothesis) *Spec {
		s := synthSpec([]int{256, 512}, nil, h)
		s.Options = []string{"default", "failstop1"}
		return s
	}
	mk := func(deadAt256, deadAt512 int, subj256, subj512 int64) []Row {
		rows := []Row{
			synthRow("mm", "default", 256, 0, 100, 10),
			synthRow("mm", "default", 512, 0, 200, 10),
			synthRow("mm", "failstop1", 256, 0, subj256, 10),
			synthRow("mm", "failstop1", 512, 0, subj512, 10),
		}
		rows[2].DeadCores = deadAt256
		rows[3].DeadCores = deadAt512
		return rows
	}

	t.Run("bounded degradation with real failures passes", func(t *testing.T) {
		vs := Evaluate(mkSpec(hyp), mk(1, 1, 150, 380))
		if !vs[0].Pass {
			t.Fatalf("verdict = %+v", vs[0])
		}
		if vs[0].WorstRatio != 1.9 {
			t.Errorf("worst ratio = %g, want 1.9", vs[0].WorstRatio)
		}
	})
	t.Run("degradation beyond max_ratio fails", func(t *testing.T) {
		vs := Evaluate(mkSpec(hyp), mk(1, 1, 150, 500))
		if vs[0].Pass || !strings.Contains(vs[0].Detail, "exceeds max_ratio") {
			t.Fatalf("verdict = %+v", vs[0])
		}
		if vs[0].WorstRatio != 2.5 {
			t.Errorf("worst ratio = %g, want 2.5", vs[0].WorstRatio)
		}
	})
	t.Run("failure plan that never fired fails", func(t *testing.T) {
		vs := Evaluate(mkSpec(hyp), mk(1, 0, 150, 380))
		if vs[0].Pass || !strings.Contains(vs[0].Detail, "never fired") {
			t.Fatalf("verdict = %+v", vs[0])
		}
	})
	t.Run("zero min_dead skips the fired check", func(t *testing.T) {
		h := hyp
		h.MinDead = 0
		vs := Evaluate(mkSpec(h), mk(0, 0, 150, 380))
		if !vs[0].Pass {
			t.Fatalf("verdict = %+v", vs[0])
		}
	})
	t.Run("errored supporting row fails with diagnostic", func(t *testing.T) {
		rows := mk(1, 1, 150, 380)
		rows[2].Err = "boom"
		vs := Evaluate(mkSpec(hyp), rows)
		if vs[0].Pass || !strings.Contains(vs[0].Detail, "errored") {
			t.Fatalf("verdict = %+v", vs[0])
		}
	})
	t.Run("no shared sizes fails", func(t *testing.T) {
		vs := Evaluate(mkSpec(hyp), mk(1, 1, 150, 380)[:2])
		if vs[0].Pass || !strings.Contains(vs[0].Detail, "no sizes") {
			t.Fatalf("verdict = %+v", vs[0])
		}
	})
}

// ---- golden suite ----

// goldenSpecs are the checked-in specs whose verdicts are pinned; they run
// over the same golden algo × machine matrix as internal/harness.
var goldenSpecs = []string{"golden_crossover.json", "golden_stability.json", "golden_survivability.json"}

func TestGoldenHypotheses(t *testing.T) {
	got := make(map[string][]Verdict)
	for _, name := range goldenSpecs {
		data, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Fatal(err)
		}
		spec, err := Parse(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Verdicts must be identical at any worker count: evaluate the
		// rows from a serial and a fanned-out sweep.
		for _, workers := range []int{1, 4} {
			rows, err := Collect(spec, workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			verdicts := Evaluate(spec, rows)
			if prev, ok := got[name]; ok && !reflect.DeepEqual(prev, verdicts) {
				t.Fatalf("%s: verdicts differ between worker counts\n%v\nvs\n%v", name, prev, verdicts)
			}
			got[name] = verdicts
		}
		for _, v := range got[name] {
			if !v.Pass {
				t.Errorf("%s: golden hypothesis failed: %s", name, v)
			}
		}
	}

	goldenPath := filepath.Join("testdata", "golden_verdicts.json")
	if *update {
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	var want map[string][]Verdict
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	for _, name := range goldenSpecs {
		if !reflect.DeepEqual(want[name], got[name]) {
			t.Errorf("%s: verdicts diverge from golden snapshot (regenerate with -update if intended)\nwant: %s\ngot:  %s",
				name, mustJSON(want[name]), mustJSON(got[name]))
		}
	}
}

// TestDemoSpecHypotheses pins the acceptance claim: the checked-in demo
// spec reproduces the paper-grounded SB-vs-flat crossover on hm4 as
// passing verdicts, deterministically across worker counts.
func TestDemoSpecHypotheses(t *testing.T) {
	for _, name := range []string{"sb_vs_flat.json", "chaos_stability.json", "smoke.json", "survivability.json"} {
		data, err := os.ReadFile(filepath.Join("..", "..", "specs", name))
		if err != nil {
			t.Fatal(err)
		}
		spec, err := Parse(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var prev []Verdict
		for _, workers := range []int{1, 4} {
			rows, err := Collect(spec, workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			verdicts := Evaluate(spec, rows)
			if len(verdicts) == 0 {
				t.Fatalf("%s: no verdicts", name)
			}
			for _, v := range verdicts {
				if !v.Pass {
					t.Errorf("%s workers=%d: %s", name, workers, v)
				}
			}
			if prev != nil && !reflect.DeepEqual(prev, verdicts) {
				t.Errorf("%s: verdicts differ between worker counts", name)
			}
			prev = verdicts
		}
	}
}

func mustJSON(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Sprintf("<%v>", err)
	}
	return string(b)
}
