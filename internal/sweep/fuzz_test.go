package sweep

// FuzzSweepSpec fuzzes the spec parser: any byte string must either parse
// into a spec whose grid expands cleanly or come back as a typed
// *SpecError — never a panic, never an untyped error.  Wired into
// `make fuzz`.

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func FuzzSweepSpec(f *testing.F) {
	f.Add([]byte(validSpec))
	f.Add([]byte(`{"algos":["sort"],"machines":["mc3"],"sizes":[64]}`))
	f.Add([]byte(`{"algos":["sort","sort"],"machines":["mc3"],"sizes":[64]}`))
	f.Add([]byte(`{"algos": [`))
	f.Add([]byte(`{"algoss": 1}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte(`{"algos":["sort"],"machines":["mc3"],"sizes":[64],
	  "hypotheses":[{"name":"h","kind":"crossover","metric":"misses.L1",
	  "subject":{"algo":"sort"},"baseline":{"algo":"sort","options":"flat"},"min_ratio":2}]}`))
	// The checked-in specs are seed inputs too.
	for _, p := range []string{"golden_crossover.json", "golden_stability.json"} {
		if data, err := os.ReadFile(filepath.Join("testdata", p)); err == nil {
			f.Add(data)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := Parse(data)
		if err != nil {
			var se *SpecError
			if !errors.As(err, &se) {
				t.Fatalf("Parse returned untyped error %T: %v", err, err)
			}
			if se.Field == "" || se.Msg == "" {
				t.Fatalf("SpecError without field or message: %+v", se)
			}
			return
		}
		// Accepted specs must expand without panicking and without
		// duplicate configs.
		grid := Expand(spec)
		seen := make(map[string]bool, len(grid))
		for _, c := range grid {
			k := c.Key()
			if seen[k] {
				t.Fatalf("accepted spec expands to duplicate config %s", k)
			}
			seen[k] = true
		}
	})
}
