package sweep

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Verdict is the evaluated outcome of one declared hypothesis: pass/fail
// plus the quantities the detector computed and the keys of the rows that
// support the decision.  Verdicts are a pure function of (spec, rows), so
// the golden tests pin them byte for byte.
type Verdict struct {
	Name       string   `json:"name"`
	Kind       string   `json:"kind"`
	Pass       bool     `json:"pass"`
	CrossoverN int      `json:"crossover_n,omitempty"` // crossover: smallest n from which subject wins
	Spread     float64  `json:"spread,omitempty"`      // stability: worst relative spread observed
	WorstRatio float64  `json:"worst_ratio,omitempty"` // survivability: worst subject/baseline ratio observed
	Detail     string   `json:"detail"`
	Rows       []string `json:"rows,omitempty"` // supporting row keys, sorted
}

func (v Verdict) String() string {
	status := "FAIL"
	if v.Pass {
		status = "PASS"
	}
	return fmt.Sprintf("%-4s %-9s %s: %s", status, v.Kind, v.Name, v.Detail)
}

// Evaluate runs every declared hypothesis against the measured rows and
// returns one verdict per hypothesis, in declaration order.  Data-level
// problems (missing rows, a metric level the machine does not have, errored
// runs in the supporting set) fail the verdict with a diagnostic detail
// rather than erroring out: a sweep report should always render.
func Evaluate(spec *Spec, rows []Row) []Verdict {
	verdicts := make([]Verdict, 0, len(spec.Hypotheses))
	for _, h := range spec.Hypotheses {
		switch h.Kind {
		case "crossover":
			verdicts = append(verdicts, evalCrossover(spec, h, rows))
		case "stability":
			verdicts = append(verdicts, evalStability(spec, h, rows))
		case "survivability":
			verdicts = append(verdicts, evalSurvivability(spec, h, rows))
		default:
			verdicts = append(verdicts, Verdict{
				Name: h.Name, Kind: h.Kind,
				Detail: fmt.Sprintf("unknown hypothesis kind %q", h.Kind),
			})
		}
	}
	return verdicts
}

// seriesOver averages the metric across the seed axis for every size with
// at least one matching non-error row, returning size → mean and the keys
// of the contributing rows.
func seriesOver(sel Selector, m metricSel, rows []Row) (map[int]float64, []string, error) {
	sum := make(map[int]float64)
	cnt := make(map[int]int)
	var keys []string
	for _, r := range rows {
		if !sel.matches(r.Config) {
			continue
		}
		if r.Err != "" {
			return nil, nil, fmt.Errorf("supporting row %s errored: %s", r.Key(), r.Err)
		}
		v, err := m.valueOf(r)
		if err != nil {
			return nil, nil, err
		}
		sum[r.N] += v
		cnt[r.N]++
		keys = append(keys, r.Key())
	}
	mean := make(map[int]float64, len(sum))
	//oblivcheck:allow determinism: aggregation only — every consumer iterates the size axis in sorted order
	for n, s := range sum {
		mean[n] = s / float64(cnt[n])
	}
	sort.Strings(keys)
	return mean, keys, nil
}

// evalCrossover finds the smallest grid size at and above which the
// baseline/subject metric ratio stays >= MinRatio — the point where the
// subject schedule starts (and keeps) winning.  The hypothesis passes iff
// that crossover exists and sits at or below AtOrBelowN (any crossover
// passes when AtOrBelowN is 0).
func evalCrossover(spec *Spec, h Hypothesis, rows []Row) Verdict {
	v := Verdict{Name: h.Name, Kind: h.Kind}
	m, err := parseMetric(h.Metric)
	if err != nil {
		v.Detail = err.Error()
		return v
	}
	subj, subjKeys, err := seriesOver(h.Subject, m, rows)
	if err != nil {
		v.Detail = fmt.Sprintf("subject %s: %v", h.Subject, err)
		return v
	}
	base, baseKeys, err := seriesOver(h.Baseline, m, rows)
	if err != nil {
		v.Detail = fmt.Sprintf("baseline %s: %v", h.Baseline, err)
		return v
	}
	var sizes []int
	for _, n := range spec.Sizes {
		_, inS := subj[n]
		_, inB := base[n]
		if inS && inB {
			sizes = append(sizes, n)
		}
	}
	if len(sizes) == 0 {
		v.Detail = fmt.Sprintf("no sizes with both subject (%s) and baseline (%s) rows", h.Subject, h.Baseline)
		return v
	}
	sort.Ints(sizes)

	ratio := func(n int) float64 {
		s := subj[n]
		if s <= 0 {
			s = 1 // count metrics: a zero-cost subject wins at any baseline
		}
		return base[n] / s
	}
	// Walk sizes descending: the crossover is the lowest size of the
	// maximal winning suffix.
	crossover := 0
	for i := len(sizes) - 1; i >= 0; i-- {
		if ratio(sizes[i]) < h.MinRatio {
			break
		}
		crossover = sizes[i]
	}
	var parts []string
	for _, n := range sizes {
		parts = append(parts, fmt.Sprintf("n=%d %.2f", n, ratio(n)))
	}
	v.Rows = append(subjKeys, baseKeys...)
	sort.Strings(v.Rows)
	desc := fmt.Sprintf("%s baseline/subject on %s: %s", h.Metric, h.Subject, strings.Join(parts, ", "))
	switch {
	case crossover == 0:
		v.Detail = fmt.Sprintf("%s — no crossover: ratio < %.2f at the largest size", desc, h.MinRatio)
	case h.AtOrBelowN > 0 && crossover > h.AtOrBelowN:
		v.CrossoverN = crossover
		v.Detail = fmt.Sprintf("%s — crossover at n=%d, above the declared bound n=%d", desc, crossover, h.AtOrBelowN)
	default:
		v.Pass = true
		v.CrossoverN = crossover
		v.Detail = fmt.Sprintf("%s — subject sustains ratio >= %.2f from n=%d", desc, h.MinRatio, crossover)
	}
	return v
}

// evalSurvivability checks graceful degradation: at every size with both a
// failure-injected subject and a healthy baseline row, the subject/baseline
// metric ratio must stay <= MaxRatio, and (when MinDead > 0) every subject
// row must report at least MinDead dead cores — the second clause rejects a
// vacuous pass where the failure schedule never fired within the run.
func evalSurvivability(spec *Spec, h Hypothesis, rows []Row) Verdict {
	v := Verdict{Name: h.Name, Kind: h.Kind}
	m, err := parseMetric(h.Metric)
	if err != nil {
		v.Detail = err.Error()
		return v
	}
	subj, subjKeys, err := seriesOver(h.Subject, m, rows)
	if err != nil {
		v.Detail = fmt.Sprintf("subject %s: %v", h.Subject, err)
		return v
	}
	base, baseKeys, err := seriesOver(h.Baseline, m, rows)
	if err != nil {
		v.Detail = fmt.Sprintf("baseline %s: %v", h.Baseline, err)
		return v
	}
	var sizes []int
	for _, n := range spec.Sizes {
		_, inS := subj[n]
		_, inB := base[n]
		if inS && inB {
			sizes = append(sizes, n)
		}
	}
	if len(sizes) == 0 {
		v.Detail = fmt.Sprintf("no sizes with both subject (%s) and baseline (%s) rows", h.Subject, h.Baseline)
		return v
	}
	sort.Ints(sizes)
	v.Rows = append(subjKeys, baseKeys...)
	sort.Strings(v.Rows)

	worst, worstN := 0.0, 0
	var parts []string
	for _, n := range sizes {
		b := base[n]
		if b <= 0 {
			b = 1 // count metrics: a zero-cost baseline still bounds the ratio
		}
		r := subj[n] / b
		parts = append(parts, fmt.Sprintf("n=%d %.2f", n, r))
		if r > worst {
			worst, worstN = r, n
		}
	}
	v.WorstRatio = worst
	desc := fmt.Sprintf("%s subject/baseline on %s: %s", h.Metric, h.Subject, strings.Join(parts, ", "))

	if h.MinDead > 0 {
		checked := 0
		for _, r := range rows {
			if !h.Subject.matches(r.Config) {
				continue
			}
			checked++
			if r.DeadCores < h.MinDead {
				v.Detail = fmt.Sprintf("%s — subject row %s lost %d core(s), need >= %d: the failure plan never fired",
					desc, r.Key(), r.DeadCores, h.MinDead)
				return v
			}
		}
		if checked == 0 {
			v.Detail = fmt.Sprintf("subject %s matched no rows", h.Subject)
			return v
		}
	}
	if worst > h.MaxRatio {
		v.Detail = fmt.Sprintf("%s — degradation %.2f at n=%d exceeds max_ratio %.2f", desc, worst, worstN, h.MaxRatio)
		return v
	}
	v.Pass = true
	v.Detail = fmt.Sprintf("%s — degradation <= %.2f at every size (worst %.2f at n=%d)", desc, h.MaxRatio, worst, worstN)
	return v
}

// evalStability checks that the metric's relative spread across the seed
// axis stays within Epsilon for every (algo, machine, n, options) group
// matched by the filter.  Spread is (max-min)/mean — zero when chaos
// perturbation leaves the metric untouched.
func evalStability(spec *Spec, h Hypothesis, rows []Row) Verdict {
	v := Verdict{Name: h.Name, Kind: h.Kind}
	m, err := parseMetric(h.Metric)
	if err != nil {
		v.Detail = err.Error()
		return v
	}
	type group struct {
		key  string
		vals []float64
	}
	byKey := make(map[string]*group)
	var order []string // group keys in row (= grid) order
	var keys []string
	for _, r := range rows {
		if !h.Filter.matches(r.Config) {
			continue
		}
		if r.Err != "" {
			v.Detail = fmt.Sprintf("supporting row %s errored: %s", r.Key(), r.Err)
			return v
		}
		val, err := m.valueOf(r)
		if err != nil {
			v.Detail = err.Error()
			return v
		}
		gk := fmt.Sprintf("%s/%s/n%d/%s", r.Algo, r.Machine, r.N, r.Options)
		g, ok := byKey[gk]
		if !ok {
			g = &group{key: gk}
			byKey[gk] = g
			order = append(order, gk)
		}
		g.vals = append(g.vals, val)
		keys = append(keys, r.Key())
	}
	if len(order) == 0 {
		v.Detail = fmt.Sprintf("filter %s matched no rows", h.Filter)
		return v
	}
	worst, worstKey := -1.0, ""
	short := ""
	for _, gk := range order {
		g := byKey[gk]
		if len(g.vals) < 2 {
			short = gk
			continue
		}
		lo, hi, sum := math.Inf(1), math.Inf(-1), 0.0
		for _, x := range g.vals {
			lo, hi, sum = math.Min(lo, x), math.Max(hi, x), sum+x
		}
		mean := sum / float64(len(g.vals))
		spread := 0.0
		if mean != 0 {
			spread = (hi - lo) / mean
		} else if hi != lo {
			spread = math.Inf(1)
		}
		if spread > worst {
			worst, worstKey = spread, gk
		}
	}
	if worst < 0 {
		v.Detail = fmt.Sprintf("group %s has a single seed; stability needs the seed axis (%d declared)", short, len(spec.Seeds))
		return v
	}
	sort.Strings(keys)
	v.Rows = keys
	v.Spread = worst
	if worst <= h.Epsilon {
		v.Pass = true
		v.Detail = fmt.Sprintf("%s spread across %d seeds <= %.4f on every group (worst %.4f at %s)",
			h.Metric, len(spec.Seeds), h.Epsilon, worst, worstKey)
	} else {
		v.Detail = fmt.Sprintf("%s spread %.4f at %s exceeds epsilon %.4f", h.Metric, worst, worstKey, h.Epsilon)
	}
	return v
}
