package sweep

import (
	"fmt"

	"oblivhm/internal/harness"
)

// Row is one measured grid cell: the config, its hash, and the metric
// slice of the harness result.  Engine failures (a chaos-provoked typed
// error, a workload that rejects its input size) land in Err instead of
// aborting the sweep, so one bad cell cannot sink a thousand-run grid.
type Row struct {
	Config
	Hash     string                `json:"hash"`
	Steps    int64                 `json:"steps"`
	Work     int64                 `json:"work"`
	Steals   int64                 `json:"steals"`
	PlacedAt []int                 `json:"placedAt,omitempty"`
	Levels   []harness.LevelReport `json:"levels,omitempty"`

	// Degraded-mode columns, populated only when the option set injects
	// failures (failstop1/straggler2x/faulty): cores lost, strands migrated
	// off dead cores, strands re-executed from their spawn closures, and the
	// fraction of executed work that was re-execution.
	DeadCores  int     `json:"deadCores,omitempty"`
	Migrated   int64   `json:"migrated,omitempty"`
	Reexec     int64   `json:"reexec,omitempty"`
	ReexecFrac float64 `json:"reexecFrac,omitempty"`

	Err string `json:"err,omitempty"`
}

// Result reconstructs the harness view of the row, so formatters built on
// harness.MOResult (cmd/tables) render sweep rows identically to direct
// runs.
func (r Row) Result() harness.MOResult {
	return harness.MOResult{
		Algo:     r.Algo,
		Machine:  r.Machine,
		N:        r.N,
		Steps:    r.Steps,
		Work:     r.Work,
		Levels:   r.Levels,
		PlacedAt: r.PlacedAt,
		Steals:   r.Steals,
	}
}

// RunnerOpts tunes one sweep execution.
type RunnerOpts struct {
	// Workers is the fan-out width; <= 1 runs on a single worker.  The
	// emitted row stream is byte-identical for every worker count.
	Workers int
	// Done holds config hashes already present in the output (resume):
	// matching grid cells are skipped, not re-run and not re-emitted.
	Done map[string]bool
	// Progress, when non-nil, is called after every completed run with the
	// number of finished and total runs of this invocation.  It runs on
	// the caller's goroutine.
	Progress func(done, total int)
}

// Run expands the validated spec, executes every config not already in
// opts.Done, and hands rows to emit in grid order.  The fan-out is across
// runs: each worker goroutine owns an independent deterministic simulation,
// and a reorder buffer on the calling goroutine re-sequences completions,
// so emit sees the same byte stream whether Workers is 1 or 64.  An emit
// error stops the sweep (in-flight runs are drained first) and is returned.
func Run(spec *Spec, opts RunnerOpts, emit func(Row) error) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	todo := Expand(spec)
	if len(opts.Done) > 0 {
		kept := todo[:0]
		for _, c := range todo {
			if !opts.Done[c.Hash()] {
				kept = append(kept, c)
			}
		}
		todo = kept
	}
	if len(todo) == 0 {
		return nil
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(todo) {
		workers = len(todo)
	}

	type indexed struct {
		idx int
		row Row
	}
	jobs := make(chan int)
	results := make(chan indexed, workers)
	for w := 0; w < workers; w++ {
		//oblivcheck:allow determinism: sweep fan-out is across independent deterministic runs; the reorder buffer below re-emits rows in grid order, so the output is a pure function of the spec
		go func() {
			for idx := range jobs {
				results <- indexed{idx: idx, row: runOne(todo[idx])}
			}
		}()
	}

	// The calling goroutine both feeds the job channel and re-sequences
	// completions through a reorder buffer, so emit (and any Writer behind
	// it) never needs locking and always sees grid order.  On an emit
	// error the feed channel goes nil (never selected), the loop drains
	// the in-flight runs, and every worker exits via the close below.
	var emitErr error
	pending := make(map[int]Row)
	submitted, finished, nextEmit := 0, 0, 0
	for finished < submitted || (emitErr == nil && submitted < len(todo)) {
		var feed chan<- int
		if emitErr == nil && submitted < len(todo) {
			feed = jobs
		}
		select {
		case feed <- submitted:
			submitted++
			continue
		case r := <-results:
			finished++
			pending[r.idx] = r.row
		}
		for {
			row, ok := pending[nextEmit]
			if !ok {
				break
			}
			delete(pending, nextEmit)
			nextEmit++
			if emitErr == nil {
				emitErr = emit(row)
			}
		}
		if opts.Progress != nil {
			opts.Progress(finished, len(todo))
		}
	}
	close(jobs)
	return emitErr
}

// Collect runs the spec and returns every row in grid order — the
// in-memory entry used by cmd/tables and the hypothesis evaluator.
func Collect(spec *Spec, workers int) ([]Row, error) {
	var rows []Row
	err := Run(spec, RunnerOpts{Workers: workers}, func(r Row) error {
		rows = append(rows, r)
		return nil
	})
	return rows, err
}

// runOne measures a single grid cell through the shared harness entry.
func runOne(c Config) Row {
	row := Row{Config: c, Hash: c.Hash()}
	res, err := harness.Run(harness.RunConfig{
		Algo: c.Algo, Machine: c.Machine, N: c.N, Options: c.Options, Seed: c.Seed,
	})
	if err != nil {
		row.Err = err.Error()
		return row
	}
	row.Steps = res.Steps
	row.Work = res.Work
	row.Steals = res.Steals
	row.PlacedAt = res.PlacedAt
	row.Levels = res.Levels
	if rec := res.Recovery; rec != nil {
		row.DeadCores = len(rec.DeadCores)
		row.Migrated = int64(rec.MigratedStrands)
		row.Reexec = int64(rec.ReexecStrands)
		row.ReexecFrac = rec.ReexecWorkFraction()
	}
	return row
}

// String renders the row compactly for logs and progress lines.
func (r Row) String() string {
	if r.Err != "" {
		return fmt.Sprintf("%s: error: %s", r.Key(), r.Err)
	}
	return fmt.Sprintf("%s: steps=%d work=%d steals=%d", r.Key(), r.Steps, r.Work, r.Steals)
}
