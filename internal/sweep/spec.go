// Package sweep turns the deterministic simulator into a controlled-
// experiment engine.  A Spec declares a grid of (algorithm, machine,
// input size, chaos seed, engine-option) configurations plus optional
// hypotheses — machine-checkable predictions over the measured metrics.
// The runner expands the grid, fans the runs out across worker goroutines
// (each run is an independent deterministic simulation, so the fan-out is
// embarrassingly parallel, unlike the intra-run replay axis), and streams
// rows to JSONL/CSV in grid order regardless of worker count: the engine's
// determinism contract (same config + seed → byte-identical metrics)
// extends to the sweep layer byte for byte.
//
// Hypotheses come in three kinds, all grounded in the paper's comparative
// claims:
//
//   - "crossover": a subject schedule beats a baseline schedule on a metric
//     at and above some input size (e.g. SB beats the flat proportionate
//     slice on hm4 once the working set spills the shared caches — the E13
//     ablation, and Cole–Ramachandran's space-bounded scheduler bounds);
//   - "stability": a metric is stable within ε across chaos seeds (the
//     robustness half of the determinism contract: schedule perturbation
//     must not move the cache-complexity envelope);
//   - "survivability": a failure-injected schedule degrades gracefully —
//     the degraded/healthy metric ratio stays within a declared bound while
//     the failure plan verifiably fired (e.g. SB loses < 2x makespan at one
//     dead core of 8).
package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"oblivhm/internal/harness"
	"oblivhm/internal/hm"
)

// Spec declares a sweep: one value list per grid axis, plus optional
// hypotheses evaluated over the measured rows.  Axes left empty default to
// a single neutral value (Seeds → [0] = chaos off, Options → ["default"]).
type Spec struct {
	Name     string   `json:"name,omitempty"`
	Algos    []string `json:"algos"`
	Machines []string `json:"machines"`
	Sizes    []int    `json:"sizes"`
	Seeds    []int64  `json:"seeds,omitempty"`
	Options  []string `json:"options,omitempty"`

	Hypotheses []Hypothesis `json:"hypotheses,omitempty"`
}

// Hypothesis is one declared prediction.  Kind selects the detector and
// which of the remaining fields apply:
//
//   - "crossover": Subject and Baseline select two schedules sharing the
//     size axis; the detector finds the smallest grid size at and above
//     which baseline/subject ≥ MinRatio on Metric, and the hypothesis
//     passes iff that crossover exists and sits at or below AtOrBelowN.
//   - "stability": Filter selects rows; within every (algo, machine, n,
//     options) group the relative spread of Metric across the seed axis
//     must stay ≤ Epsilon.
//   - "survivability": Subject selects a failure-injected schedule, Baseline
//     its healthy counterpart; the degraded subject/baseline Metric ratio
//     must stay ≤ MaxRatio at every shared size, and (when MinDead > 0)
//     every subject row must have lost at least MinDead cores, proving the
//     failures actually fired.
type Hypothesis struct {
	Name   string `json:"name"`
	Kind   string `json:"kind"`   // "crossover" | "stability" | "survivability"
	Metric string `json:"metric"` // "steps" | "work" | "steals" | "dead_cores" | "migrated" | "reexec" | "reexec_frac" | "misses.L<k>" | "ratio.L<k>"

	// crossover fields.
	Subject    Selector `json:"subject,omitempty"`
	Baseline   Selector `json:"baseline,omitempty"`
	MinRatio   float64  `json:"min_ratio,omitempty"`
	AtOrBelowN int      `json:"at_or_below_n,omitempty"`

	// stability fields.
	Filter  Selector `json:"filter,omitempty"`
	Epsilon float64  `json:"epsilon,omitempty"`

	// survivability fields (Subject and Baseline as for crossover).
	MaxRatio float64 `json:"max_ratio,omitempty"`
	MinDead  int     `json:"min_dead,omitempty"`
}

// Selector picks rows out of the grid.  Empty fields match any value;
// Options selects the "default" set explicitly by name (the empty string
// means "any", as for the other fields).
type Selector struct {
	Algo    string `json:"algo,omitempty"`
	Machine string `json:"machine,omitempty"`
	Options string `json:"options,omitempty"`
}

func (s Selector) matches(c Config) bool {
	if s.Algo != "" && s.Algo != c.Algo {
		return false
	}
	if s.Machine != "" && s.Machine != c.Machine {
		return false
	}
	if s.Options != "" && s.Options != c.Options {
		return false
	}
	return true
}

func (s Selector) String() string {
	var parts []string
	if s.Algo != "" {
		parts = append(parts, "algo="+s.Algo)
	}
	if s.Machine != "" {
		parts = append(parts, "machine="+s.Machine)
	}
	if s.Options != "" {
		parts = append(parts, "options="+s.Options)
	}
	if len(parts) == 0 {
		return "(any)"
	}
	return strings.Join(parts, " ")
}

// SpecError is the typed validation failure: Field names the offending
// spec field (with an index for axis entries, e.g. "algos[2]"), Msg says
// what is wrong with it.  Parse and Validate return nothing else, so spec
// authors always get a field to fix and fuzzing can assert the error
// contract.
type SpecError struct {
	Field string
	Msg   string
}

func (e *SpecError) Error() string { return "sweep spec: " + e.Field + ": " + e.Msg }

func specErrf(field, format string, args ...any) *SpecError {
	return &SpecError{Field: field, Msg: fmt.Sprintf(format, args...)}
}

// Parse decodes and validates a JSON spec.  Unknown fields are rejected
// (they are almost always typos of axis names) and every failure is a
// *SpecError naming the offending field.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var spec Spec
	if err := dec.Decode(&spec); err != nil {
		return nil, jsonSpecError(err)
	}
	// Trailing garbage after the spec object is a malformed file, not an
	// extended one.
	if dec.More() {
		return nil, specErrf("json", "trailing data after spec object")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &spec, nil
}

// jsonSpecError maps an encoding/json failure onto the SpecError contract,
// extracting the offending field name when the decoder reports one.
func jsonSpecError(err error) *SpecError {
	msg := err.Error()
	if name, ok := strings.CutPrefix(msg, "json: unknown field "); ok {
		if name = strings.Trim(name, "\""); name == "" {
			return specErrf("json", "unknown field with empty name")
		}
		return specErrf(name, "unknown field")
	}
	var ute *json.UnmarshalTypeError
	if ok := asJSONTypeError(err, &ute); ok && ute.Field != "" {
		return specErrf(ute.Field, "want %s, got JSON %s", ute.Type, ute.Value)
	}
	return specErrf("json", "malformed spec: %s", msg)
}

func asJSONTypeError(err error, target **json.UnmarshalTypeError) bool {
	if ute, ok := err.(*json.UnmarshalTypeError); ok {
		*target = ute
		return true
	}
	return false
}

// Validate normalizes the spec in place (defaulting the seed and option
// axes) and checks every axis value and hypothesis, returning a *SpecError
// naming the first offending field.  A validated spec expands to a
// duplicate-free grid: per-axis uniqueness makes the cartesian product
// unique.
func (s *Spec) Validate() error {
	s.normalize()

	if len(s.Algos) == 0 {
		return specErrf("algos", "empty axis: at least one algorithm is required")
	}
	known := make(map[string]bool)
	for _, a := range harness.MOAlgos() {
		known[a] = true
	}
	if err := uniqueStrings("algos", s.Algos, func(i int, v string) error {
		if !known[v] {
			return specErrf(field("algos", i), "unknown algorithm %q (have %s)", v, strings.Join(harness.MOAlgos(), ", "))
		}
		return nil
	}); err != nil {
		return err
	}

	if len(s.Machines) == 0 {
		return specErrf("machines", "empty axis: at least one machine preset is required")
	}
	presets := hm.Presets()
	if err := uniqueStrings("machines", s.Machines, func(i int, v string) error {
		if _, ok := presets[v]; !ok {
			names := presetNames(presets)
			return specErrf(field("machines", i), "unknown machine preset %q (have %s)", v, strings.Join(names, ", "))
		}
		return nil
	}); err != nil {
		return err
	}

	if len(s.Sizes) == 0 {
		return specErrf("sizes", "empty axis: at least one input size is required")
	}
	seenN := make(map[int]bool)
	for i, n := range s.Sizes {
		if n <= 0 {
			return specErrf(field("sizes", i), "input size must be positive, got %d", n)
		}
		if seenN[n] {
			return specErrf(field("sizes", i), "duplicate value %d", n)
		}
		seenN[n] = true
	}

	seenSeed := make(map[int64]bool)
	for i, sd := range s.Seeds {
		if seenSeed[sd] {
			return specErrf(field("seeds", i), "duplicate value %d", sd)
		}
		seenSeed[sd] = true
	}

	if err := uniqueStrings("options", s.Options, func(i int, v string) error {
		if _, err := harness.OptionSet(v); err != nil {
			return specErrf(field("options", i), "%v", err)
		}
		return nil
	}); err != nil {
		return err
	}

	for i := range s.Hypotheses {
		if err := s.validateHypothesis(i); err != nil {
			return err
		}
	}
	return nil
}

// normalize fills defaulted axes and canonicalizes option-set names so the
// grid key of a config never depends on spelling ("" vs "default").
func (s *Spec) normalize() {
	if len(s.Seeds) == 0 {
		s.Seeds = []int64{0}
	}
	if len(s.Options) == 0 {
		s.Options = []string{"default"}
	}
	for i, o := range s.Options {
		if o == "" {
			s.Options[i] = "default"
		}
	}
}

func (s *Spec) validateHypothesis(i int) error {
	h := &s.Hypotheses[i]
	hf := func(sub string) string { return fmt.Sprintf("hypotheses[%d].%s", i, sub) }
	if h.Name == "" {
		return specErrf(hf("name"), "hypothesis needs a name")
	}
	if _, err := parseMetric(h.Metric); err != nil {
		return specErrf(hf("metric"), "%v", err)
	}
	switch h.Kind {
	case "crossover":
		if h.MinRatio <= 0 {
			return specErrf(hf("min_ratio"), "crossover needs min_ratio > 0, got %g", h.MinRatio)
		}
		if h.AtOrBelowN < 0 {
			return specErrf(hf("at_or_below_n"), "must be >= 0, got %d", h.AtOrBelowN)
		}
		for _, sel := range []struct {
			name string
			s    Selector
		}{{"subject", h.Subject}, {"baseline", h.Baseline}} {
			if sel.s.Algo == "" {
				return specErrf(hf(sel.name+".algo"), "crossover selectors must pin an algorithm")
			}
			if err := s.checkSelector(hf(sel.name), sel.s); err != nil {
				return err
			}
			if len(s.Machines) > 1 && sel.s.Machine == "" {
				return specErrf(hf(sel.name+".machine"), "spec sweeps %d machines; crossover selectors must pin one", len(s.Machines))
			}
		}
		if h.Subject == h.Baseline {
			return specErrf(hf("baseline"), "subject and baseline select the same rows (%s)", h.Subject)
		}
	case "stability":
		if h.Epsilon <= 0 {
			return specErrf(hf("epsilon"), "stability needs epsilon > 0, got %g", h.Epsilon)
		}
		if len(s.Seeds) < 2 {
			return specErrf(hf("kind"), "stability compares across seeds; spec declares %d seed(s), need >= 2", len(s.Seeds))
		}
		if err := s.checkSelector(hf("filter"), h.Filter); err != nil {
			return err
		}
	case "survivability":
		if h.MaxRatio <= 0 {
			return specErrf(hf("max_ratio"), "survivability needs max_ratio > 0, got %g", h.MaxRatio)
		}
		if h.MinDead < 0 {
			return specErrf(hf("min_dead"), "must be >= 0, got %d", h.MinDead)
		}
		for _, sel := range []struct {
			name string
			s    Selector
		}{{"subject", h.Subject}, {"baseline", h.Baseline}} {
			if sel.s.Algo == "" {
				return specErrf(hf(sel.name+".algo"), "survivability selectors must pin an algorithm")
			}
			if err := s.checkSelector(hf(sel.name), sel.s); err != nil {
				return err
			}
			if len(s.Machines) > 1 && sel.s.Machine == "" {
				return specErrf(hf(sel.name+".machine"), "spec sweeps %d machines; survivability selectors must pin one", len(s.Machines))
			}
		}
		if h.Subject == h.Baseline {
			return specErrf(hf("baseline"), "subject and baseline select the same rows (%s)", h.Subject)
		}
	default:
		return specErrf(hf("kind"), "unknown kind %q (have crossover, stability, survivability)", h.Kind)
	}
	return nil
}

// checkSelector rejects selectors that can never match the declared axes —
// a silent empty match would make a hypothesis vacuously fail at evaluation
// time with a far less helpful message.
func (s *Spec) checkSelector(fieldName string, sel Selector) error {
	if sel.Algo != "" && !contains(s.Algos, sel.Algo) {
		return specErrf(fieldName+".algo", "%q is not on the algos axis %v", sel.Algo, s.Algos)
	}
	if sel.Machine != "" && !contains(s.Machines, sel.Machine) {
		return specErrf(fieldName+".machine", "%q is not on the machines axis %v", sel.Machine, s.Machines)
	}
	if sel.Options != "" && !contains(s.Options, sel.Options) {
		return specErrf(fieldName+".options", "%q is not on the options axis %v", sel.Options, s.Options)
	}
	return nil
}

// ---- metric selectors ----

// metricSel is a parsed metric name: a scalar counter or a per-level
// series indexed by cache level.
type metricSel struct {
	kind  string // "steps" | "work" | "steals" | "dead_cores" | "migrated" | "reexec" | "reexec_frac" | "misses" | "ratio"
	level int    // 1-based cache level for misses/ratio
}

func (m metricSel) String() string {
	if m.level > 0 {
		return fmt.Sprintf("%s.L%d", m.kind, m.level)
	}
	return m.kind
}

// parseMetric parses "steps", "work", "steals", the degraded-mode counters
// "dead_cores", "migrated", "reexec", "reexec_frac", or the per-level series
// "misses.L<k>" / "ratio.L<k>" (k >= 1; misses is the per-level max miss
// count, ratio the measured/predicted Table II ratio).
func parseMetric(s string) (metricSel, error) {
	switch s {
	case "steps", "work", "steals", "dead_cores", "migrated", "reexec", "reexec_frac":
		return metricSel{kind: s}, nil
	case "":
		return metricSel{}, fmt.Errorf("empty metric (want steps, work, steals, dead_cores, migrated, reexec, reexec_frac, misses.L<k> or ratio.L<k>)")
	}
	kind, lvl, ok := strings.Cut(s, ".L")
	if ok && (kind == "misses" || kind == "ratio") {
		k, err := strconv.Atoi(lvl)
		if err == nil && k >= 1 {
			return metricSel{kind: kind, level: k}, nil
		}
	}
	return metricSel{}, fmt.Errorf("bad metric %q (want steps, work, steals, dead_cores, migrated, reexec, reexec_frac, misses.L<k> or ratio.L<k>)", s)
}

// valueOf extracts the metric from a measured row.
func (m metricSel) valueOf(r Row) (float64, error) {
	switch m.kind {
	case "steps":
		return float64(r.Steps), nil
	case "work":
		return float64(r.Work), nil
	case "steals":
		return float64(r.Steals), nil
	case "dead_cores":
		return float64(r.DeadCores), nil
	case "migrated":
		return float64(r.Migrated), nil
	case "reexec":
		return float64(r.Reexec), nil
	case "reexec_frac":
		return r.ReexecFrac, nil
	case "misses", "ratio":
		if m.level < 1 || m.level > len(r.Levels) {
			return 0, fmt.Errorf("metric %s: row %s has cache levels 1..%d", m, r.Key(), len(r.Levels))
		}
		l := r.Levels[m.level-1]
		if m.kind == "misses" {
			return float64(l.MaxMisses), nil
		}
		return l.Ratio, nil
	}
	return 0, fmt.Errorf("unknown metric kind %q", m.kind)
}

// ---- small helpers ----

func field(axis string, i int) string { return fmt.Sprintf("%s[%d]", axis, i) }

func uniqueStrings(axis string, vals []string, check func(int, string) error) error {
	seen := make(map[string]bool)
	for i, v := range vals {
		if err := check(i, v); err != nil {
			return err
		}
		if seen[v] {
			return specErrf(field(axis, i), "duplicate value %q", v)
		}
		seen[v] = true
	}
	return nil
}

func contains(vals []string, v string) bool {
	for _, x := range vals {
		if x == v {
			return true
		}
	}
	return false
}

func presetNames(presets map[string]hm.Config) []string {
	var names []string
	//oblivcheck:allow determinism: key collection for an error message — sorted below
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
