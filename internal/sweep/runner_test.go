package sweep

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"
)

// testSpec is a small real grid (fast workloads, tiny sizes) used by the
// determinism and resume tests.
func testSpec() *Spec {
	return &Spec{
		Name:     "runner-test",
		Algos:    []string{"scan", "mm"},
		Machines: []string{"mc3", "hm4"},
		Sizes:    []int{1 << 8, 1 << 10},
		Seeds:    []int64{0, 1},
		Options:  []string{"default", "flat"},
	}
}

func runToJSONL(t *testing.T, spec *Spec, workers int) string {
	t.Helper()
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	if err := Run(spec, RunnerOpts{Workers: workers}, w.Write); err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestSweepDeterminism is the determinism contract extended to the sweep
// layer: the same spec produces byte-identical JSONL on repeated runs and
// across worker counts — both as emitted (the reorder buffer guarantees
// grid order) and as sorted line sets.
func TestSweepDeterminism(t *testing.T) {
	spec := testSpec()
	first := runToJSONL(t, spec, 1)
	if first == "" {
		t.Fatal("no output")
	}
	if n := strings.Count(first, "\n"); n != len(Expand(spec)) {
		t.Fatalf("rows = %d, want %d", n, len(Expand(spec)))
	}
	again := runToJSONL(t, spec, 1)
	if again != first {
		t.Error("same spec, workers=1, twice: output differs")
	}
	for _, workers := range []int{4, 13} {
		par := runToJSONL(t, spec, workers)
		if par != first {
			t.Errorf("workers=%d: emitted stream differs from workers=1", workers)
		}
		if sortLines(par) != sortLines(first) {
			t.Errorf("workers=%d: even the sorted line sets differ", workers)
		}
	}
}

func sortLines(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TestSweepResume splits a grid into a "prior" half and a resumed run and
// requires prior + resumed emissions to reproduce the full run exactly.
func TestSweepResume(t *testing.T) {
	spec := testSpec()
	full := runToJSONL(t, spec, 2)
	lines := strings.SplitAfter(full, "\n")

	cut := len(Expand(spec)) / 2
	prior := strings.Join(lines[:cut], "")
	done, rows, err := ReadDone(strings.NewReader(prior))
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != cut || len(rows) != cut {
		t.Fatalf("ReadDone: %d hashes, %d rows, want %d", len(done), len(rows), cut)
	}

	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	if err := Run(spec, RunnerOpts{Workers: 3, Done: done}, w.Write); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := prior + buf.String(); got != full {
		t.Error("prior + resumed output differs from the uninterrupted run")
	}
}

// TestSweepEmitErrorStops verifies an emit failure aborts the sweep: the
// error surfaces, no further rows are emitted, and the call still returns
// (all in-flight workers drained).
func TestSweepEmitErrorStops(t *testing.T) {
	spec := testSpec()
	boom := errors.New("disk full")
	var emitted int
	err := Run(spec, RunnerOpts{Workers: 4}, func(r Row) error {
		emitted++
		if emitted == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if emitted != 3 {
		t.Errorf("emit called %d times after error, want exactly 3", emitted)
	}
}

// TestRunnerRecordsEngineErrors pins the error-row contract: a workload
// that rejects its input size lands in Row.Err, the sweep completes, and
// ReadDone refuses to mark the errored cell done.
func TestRunnerRecordsEngineErrors(t *testing.T) {
	// mt needs a dense square power-of-two matrix; n=512 gives side 22.
	spec := &Spec{Algos: []string{"mt"}, Machines: []string{"mc3"}, Sizes: []int{512}}
	rows, err := Collect(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Err == "" {
		t.Fatalf("want one errored row, got %+v", rows)
	}
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	if err := w.Write(rows[0]); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	done, _, err := ReadDone(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 0 {
		t.Errorf("errored row counted as done: %v", done)
	}
}

// TestProgressReporting checks the callback sees every completion and a
// consistent total.
func TestProgressReporting(t *testing.T) {
	spec := &Spec{Algos: []string{"scan"}, Machines: []string{"mc3"}, Sizes: []int{64, 128, 256}}
	var calls []string
	err := Run(spec, RunnerOpts{Workers: 2, Progress: func(done, total int) {
		calls = append(calls, fmt.Sprintf("%d/%d", done, total))
	}}, func(Row) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 3 || calls[len(calls)-1] != "3/3" {
		t.Errorf("progress calls = %v", calls)
	}
}

func TestCSVWriter(t *testing.T) {
	spec := &Spec{Algos: []string{"scan"}, Machines: []string{"mc3"}, Sizes: []int{256}}
	rows, err := Collect(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := NewCSVWriter(&buf)
	for _, r := range rows {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want header + 1 row, got %d lines:\n%s", len(lines), buf.String())
	}
	if lines[0] != strings.Join(csvHeader, ",") {
		t.Errorf("header = %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "scan,mc3,256,default,0,") {
		t.Errorf("row = %s", lines[1])
	}
}

func TestReadRowsTornTail(t *testing.T) {
	spec := &Spec{Algos: []string{"scan"}, Machines: []string{"mc3"}, Sizes: []int{64, 128}}
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	if err := Run(spec, RunnerOpts{}, w.Write); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	full := buf.String()

	torn := full[:len(full)-10] // cut mid-way through the final JSON object
	rows, err := ReadRows(strings.NewReader(torn))
	if err != nil {
		t.Fatalf("torn tail must be tolerated: %v", err)
	}
	if len(rows) != 1 {
		t.Fatalf("want 1 intact row from torn file, got %d", len(rows))
	}

	garbage := "not json at all\n" + full
	if _, err := ReadRows(strings.NewReader(garbage)); err == nil {
		t.Error("mid-file garbage accepted")
	}
}
