package sweep

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Writer consumes rows in grid order.  Both implementations are plain
// streaming encoders: a row is on the wire before the next run finishes,
// so a killed sweep loses at most the rows still in the bufio window.
type Writer interface {
	Write(Row) error
	Flush() error
}

// JSONLWriter streams one JSON object per line.  JSONL is the resumable
// format: every row carries its config hash, and ReadDone recovers the
// completed set from a partial file.
type JSONLWriter struct {
	enc *json.Encoder
	buf *bufio.Writer
}

func NewJSONLWriter(w io.Writer) *JSONLWriter {
	buf := bufio.NewWriter(w)
	return &JSONLWriter{enc: json.NewEncoder(buf), buf: buf}
}

func (w *JSONLWriter) Write(r Row) error { return w.enc.Encode(r) }
func (w *JSONLWriter) Flush() error      { return w.buf.Flush() }

// csvHeader is the fixed CSV schema.  Per-level series are
// semicolon-joined so the column set does not depend on the machine axis.
var csvHeader = []string{
	"algo", "machine", "n", "options", "seed", "hash",
	"steps", "work", "steals", "misses", "placed_at",
	"dead_cores", "migrated", "reexec", "reexec_frac", "err",
}

// CSVWriter streams rows in the fixed csvHeader schema.
type CSVWriter struct {
	w      *csv.Writer
	header bool
}

func NewCSVWriter(w io.Writer) *CSVWriter { return &CSVWriter{w: csv.NewWriter(w)} }

func (w *CSVWriter) Write(r Row) error {
	if !w.header {
		w.header = true
		if err := w.w.Write(csvHeader); err != nil {
			return err
		}
	}
	misses := make([]string, len(r.Levels))
	for i, l := range r.Levels {
		misses[i] = strconv.FormatInt(l.MaxMisses, 10)
	}
	placed := make([]string, len(r.PlacedAt))
	for i, p := range r.PlacedAt {
		placed[i] = strconv.Itoa(p)
	}
	return w.w.Write([]string{
		r.Algo, r.Machine, strconv.Itoa(r.N), r.Options,
		strconv.FormatInt(r.Seed, 10), r.Hash,
		strconv.FormatInt(r.Steps, 10), strconv.FormatInt(r.Work, 10),
		strconv.FormatInt(r.Steals, 10),
		strings.Join(misses, ";"), strings.Join(placed, ";"),
		strconv.Itoa(r.DeadCores), strconv.FormatInt(r.Migrated, 10),
		strconv.FormatInt(r.Reexec, 10),
		strconv.FormatFloat(r.ReexecFrac, 'g', -1, 64), r.Err,
	})
}

func (w *CSVWriter) Flush() error {
	w.w.Flush()
	return w.w.Error()
}

// ReadRows parses a JSONL result stream back into rows, tolerating a
// truncated final line (the expected shape of a killed sweep).
func ReadRows(r io.Reader) ([]Row, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	var rows []Row
	for i, text := range lines {
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		var row Row
		if err := json.Unmarshal([]byte(text), &row); err != nil {
			// A torn final line is the expected shape of a killed sweep
			// and is simply re-run on resume; garbage earlier is not.
			if i == len(lines)-1 {
				break
			}
			return nil, fmt.Errorf("sweep results line %d: %w", i+1, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ReadDone extracts the config-hash set from a JSONL result stream: the
// resume key set.  Rows that errored are not counted as done, so a resumed
// sweep retries them.
func ReadDone(r io.Reader) (map[string]bool, []Row, error) {
	rows, err := ReadRows(r)
	if err != nil {
		return nil, nil, err
	}
	done := make(map[string]bool, len(rows))
	for _, row := range rows {
		if row.Err == "" && row.Hash != "" {
			done[row.Hash] = true
		}
	}
	return done, rows, nil
}
