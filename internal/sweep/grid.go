package sweep

import (
	"fmt"
	"hash/fnv"
)

// Config is one grid cell: the sweep-layer mirror of harness.RunConfig.
// Its JSON field names are the row schema of every output format.
type Config struct {
	Algo    string `json:"algo"`
	Machine string `json:"machine"`
	N       int    `json:"n"`
	Options string `json:"options"`
	Seed    int64  `json:"seed"`
}

// Key is the canonical human-readable identity of a config.  It is the
// stable sort/dedup key of the sweep layer: resume matching, hypothesis
// supporting-row lists and test assertions all speak in keys.
func (c Config) Key() string {
	return fmt.Sprintf("%s/%s/n%d/%s/s%d", c.Algo, c.Machine, c.N, c.Options, c.Seed)
}

// Hash is the config's FNV-1a identity as stored in output rows; resumed
// sweeps skip configs whose hash is already present in the output file.
func (c Config) Hash() string {
	h := fnv.New64a()
	h.Write([]byte(c.Key()))
	return fmt.Sprintf("%016x", h.Sum64())
}

// Expand materializes the validated spec's grid in declaration order, axes
// nested algos → machines → sizes → options → seeds (outermost first).
// Per-axis uniqueness (enforced by Validate) makes the product
// duplicate-free, so the expansion is exactly len(algos)·len(machines)·
// len(sizes)·len(options)·len(seeds) configs, in an order that is a pure
// function of the spec.
func Expand(s *Spec) []Config {
	grid := make([]Config, 0, len(s.Algos)*len(s.Machines)*len(s.Sizes)*len(s.Options)*len(s.Seeds))
	for _, algo := range s.Algos {
		for _, mach := range s.Machines {
			for _, n := range s.Sizes {
				for _, opt := range s.Options {
					for _, seed := range s.Seeds {
						grid = append(grid, Config{Algo: algo, Machine: mach, N: n, Options: opt, Seed: seed})
					}
				}
			}
		}
	}
	return grid
}
