// Package bitint implements the bit-interleaving index map β used by the
// multicore-oblivious matrix transposition algorithm MO-MT (paper Figure 2).
//
// For an n×n matrix with n a power of two, β(i,j) is the row-major position
// obtained by interleaving the bits of i and j (a Morton / Z-order code):
// bit b of i lands at position 2b+1 and bit b of j at position 2b.  The
// paper assumes β and β⁻¹ are constant-time operations; the
// implementations here use the standard O(1) magic-mask dilation.
package bitint

// spread inserts a zero bit above every bit of the low 32 bits of x.
func spread(x uint64) uint64 {
	x &= 0xffffffff
	x = (x | x<<16) & 0x0000ffff0000ffff
	x = (x | x<<8) & 0x00ff00ff00ff00ff
	x = (x | x<<4) & 0x0f0f0f0f0f0f0f0f
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}

// squash is the inverse of spread: it extracts the even-position bits.
func squash(x uint64) uint64 {
	x &= 0x5555555555555555
	x = (x | x>>1) & 0x3333333333333333
	x = (x | x>>2) & 0x0f0f0f0f0f0f0f0f
	x = (x | x>>4) & 0x00ff00ff00ff00ff
	x = (x | x>>8) & 0x0000ffff0000ffff
	x = (x | x>>16) & 0x00000000ffffffff
	return x
}

// Interleave returns β(i,j): the Morton code with the bits of i at odd
// positions and the bits of j at even positions.  Both i and j must fit in
// 32 bits.
func Interleave(i, j uint64) uint64 { return spread(i)<<1 | spread(j) }

// Deinterleave returns β⁻¹(k): the (i, j) pair whose Morton code is k.
func Deinterleave(k uint64) (i, j uint64) { return squash(k >> 1), squash(k) }

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// Log2 returns floor(log2(n)) for n >= 1.
func Log2(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

// CeilPow2 returns the smallest power of two >= n (n >= 1).
func CeilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
