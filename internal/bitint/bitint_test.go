package bitint

import (
	"testing"
	"testing/quick"
)

func TestInterleaveSmall(t *testing.T) {
	// i=0b10, j=0b01 → bits: i1 j1 i0 j0 = 1 0 0 1 = 9.
	if got := Interleave(2, 1); got != 9 {
		t.Fatalf("Interleave(2,1) = %d, want 9", got)
	}
	if got := Interleave(0, 0); got != 0 {
		t.Fatalf("Interleave(0,0) = %d", got)
	}
	if got := Interleave(1, 0); got != 2 {
		t.Fatalf("Interleave(1,0) = %d, want 2", got)
	}
	if got := Interleave(0, 1); got != 1 {
		t.Fatalf("Interleave(0,1) = %d, want 1", got)
	}
}

func TestRoundTripProperty(t *testing.T) {
	prop := func(i, j uint32) bool {
		k := Interleave(uint64(i), uint64(j))
		ri, rj := Deinterleave(k)
		return ri == uint64(i) && rj == uint64(j)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInterleaveBijectiveOnSquare(t *testing.T) {
	const n = 32
	seen := make(map[uint64]bool)
	for i := uint64(0); i < n; i++ {
		for j := uint64(0); j < n; j++ {
			k := Interleave(i, j)
			if k >= n*n {
				t.Fatalf("β(%d,%d) = %d out of range", i, j, k)
			}
			if seen[k] {
				t.Fatalf("β(%d,%d) = %d collides", i, j, k)
			}
			seen[k] = true
		}
	}
}

// TestMortonLocality captures the property MO-MT's analysis rests on: a
// row-major segment of t consecutive entries maps under β into O(1)
// sequences each spanning at most O(t^2) positions.
func TestMortonLocality(t *testing.T) {
	const n = 1 << 8
	for _, tlen := range []uint64{4, 16, 64} {
		for _, start := range []uint64{0, 37, 1000, n*n - tlen} {
			codes := make([]uint64, 0, tlen)
			for k := start; k < start+tlen; k++ {
				i, j := k/n, k%n
				codes = append(codes, Interleave(i, j))
			}
			sortU64(codes)
			// Greedily group codes into clusters of span <= t^2; the paper's
			// analysis needs O(1) such clusters.
			clusters := 1
			lo := codes[0]
			for _, c := range codes[1:] {
				if c-lo > tlen*tlen {
					clusters++
					lo = c
				}
			}
			if clusters > 6 {
				t.Errorf("segment of %d at %d forms %d Morton clusters of span t^2 (> 6)", tlen, start, clusters)
			}
		}
	}
}

func sortU64(v []uint64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

func TestPow2Helpers(t *testing.T) {
	if !IsPow2(1) || !IsPow2(64) || IsPow2(0) || IsPow2(48) {
		t.Fatal("IsPow2 wrong")
	}
	if Log2(1) != 0 || Log2(2) != 1 || Log2(1024) != 10 || Log2(1023) != 9 {
		t.Fatal("Log2 wrong")
	}
	if CeilPow2(1) != 1 || CeilPow2(3) != 4 || CeilPow2(64) != 64 {
		t.Fatal("CeilPow2 wrong")
	}
}
