package listrank

import (
	"math/rand"
	"testing"
	"testing/quick"

	"oblivhm/internal/core"
	"oblivhm/internal/hm"
)

func checkRanks(t *testing.T, s *core.Session, perm []int, rank core.I64) {
	t.Helper()
	n := len(perm)
	for pos, v := range perm {
		want := int64(n - 1 - pos)
		if got := s.PeekI(rank, v); got != want {
			t.Fatalf("rank[%d] (position %d) = %d, want %d", v, pos, got, want)
		}
	}
}

func TestMOLRRandomLists(t *testing.T) {
	for _, mode := range []string{"sim", "native"} {
		t.Run(mode, func(t *testing.T) {
			for _, n := range []int{1, 2, 5, 33, 100, 700, 2000} {
				var s *core.Session
				if mode == "sim" {
					s = core.NewSim(hm.MustMachine(hm.HM4(4, 4)))
				} else {
					s = core.NewNative(4)
				}
				perm := rand.New(rand.NewSource(int64(n))).Perm(n)
				l := FromPerm(s, perm)
				rank := s.NewI64(n)
				s.Run(SpaceBound(n), func(c *core.Ctx) { MOLR(c, l, rank) })
				checkRanks(t, s, perm, rank)
			}
		})
	}
}

func TestMOLRIdentityAndReverse(t *testing.T) {
	s := core.NewNative(2)
	n := 257
	id := make([]int, n)
	rev := make([]int, n)
	for i := 0; i < n; i++ {
		id[i] = i
		rev[i] = n - 1 - i
	}
	for name, perm := range map[string][]int{"identity": id, "reverse": rev} {
		l := FromPerm(s, perm)
		rank := s.NewI64(n)
		s.Run(SpaceBound(n), func(c *core.Ctx) { MOLR(c, l, rank) })
		t.Run(name, func(t *testing.T) { checkRanks(t, s, perm, rank) })
	}
}

func TestWyllieAndSerialAgree(t *testing.T) {
	s := core.NewNative(4)
	n := 500
	perm := rand.New(rand.NewSource(77)).Perm(n)
	l := FromPerm(s, perm)
	r1 := s.NewI64(n)
	r2 := s.NewI64(n)
	s.Run(SpaceBound(n), func(c *core.Ctx) {
		Wyllie(c, l, r1)
		SerialRank(c, l, r2)
	})
	checkRanks(t, s, perm, r1)
	checkRanks(t, s, perm, r2)
}

func TestColorsAreProper(t *testing.T) {
	s := core.NewNative(2)
	for _, n := range []int{2, 3, 10, 500} {
		perm := rand.New(rand.NewSource(int64(n))).Perm(n)
		l := FromPerm(s, perm)
		var col core.I64
		s.Run(SpaceBound(n), func(c *core.Ctx) { col = Colors(c, l) })
		maxC := int64(0)
		for v := 0; v < n; v++ {
			cv := s.PeekI(col, v)
			if cv > maxC {
				maxC = cv
			}
			sv := s.PeekI(l.Succ, v)
			if sv >= 0 && s.PeekI(col, int(sv)) == cv {
				t.Fatalf("n=%d: adjacent nodes %d,%d share color %d", n, v, sv, cv)
			}
		}
		if n > 64 && maxC > 13 {
			t.Errorf("n=%d: %d colors after %d DCF rounds, want <= 14", n, maxC+1, colorRounds)
		}
	}
}

func TestMOISIsIndependentAndLarge(t *testing.T) {
	for _, n := range []int{40, 100, 1000} {
		s := core.NewNative(4)
		perm := rand.New(rand.NewSource(int64(n) * 3)).Perm(n)
		l := FromPerm(s, perm)
		inS := s.NewI64(n)
		s.Run(SpaceBound(n), func(c *core.Ctx) { MOIS(c, l, inS) })
		size := 0
		for v := 0; v < n; v++ {
			if s.PeekI(inS, v) == 0 {
				continue
			}
			size++
			if sv := s.PeekI(l.Succ, v); sv >= 0 && s.PeekI(inS, int(sv)) != 0 {
				t.Fatalf("n=%d: adjacent nodes %d and %d both selected", n, v, sv)
			}
		}
		if size*3 < n-2 {
			t.Errorf("n=%d: independent set size %d < n/3", n, size)
		}
	}
}

func TestMOISProperty(t *testing.T) {
	prop := func(seed int64, nn uint16) bool {
		n := int(nn)%300 + 2
		s := core.NewNative(2)
		perm := rand.New(rand.NewSource(seed)).Perm(n)
		l := FromPerm(s, perm)
		inS := s.NewI64(n)
		s.Run(SpaceBound(n), func(c *core.Ctx) { MOIS(c, l, inS) })
		count := 0
		for v := 0; v < n; v++ {
			if s.PeekI(inS, v) == 0 {
				continue
			}
			count++
			if sv := s.PeekI(l.Succ, v); sv >= 0 && s.PeekI(inS, int(sv)) != 0 {
				return false
			}
		}
		return count >= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestGather(t *testing.T) {
	s := core.NewNative(2)
	n := 200
	idx := s.NewI64(n)
	vals := s.NewI64(n)
	for i := 0; i < n; i++ {
		s.PokeI(idx, i, int64((i*7)%n))
		s.PokeI(vals, i, int64(i*i))
	}
	var out core.I64
	s.Run(SpaceBound(n), func(c *core.Ctx) { out = Gather(c, idx, vals) })
	for i := 0; i < n; i++ {
		j := (i * 7) % n
		if got := s.PeekI(out, i); got != int64(j*j) {
			t.Fatalf("gather[%d] = %d, want %d", i, got, j*j)
		}
	}
}

// TestTheorem7Speedup: MO-LR's parallel steps shrink with core count.
func TestTheorem7Speedup(t *testing.T) {
	run := func(p int) int64 {
		s := core.NewSim(hm.MustMachine(hm.MC3(p)))
		n := 1 << 10
		perm := rand.New(rand.NewSource(5)).Perm(n)
		l := FromPerm(s, perm)
		rank := s.NewI64(n)
		return s.RunCold(SpaceBound(n), func(c *core.Ctx) { MOLR(c, l, rank) }).Steps
	}
	if p8, p1 := run(8), run(1); p8*2 > p1 {
		t.Errorf("8-core MO-LR %d steps vs 1-core %d: speedup < 2", p8, p1)
	}
}

// TestTheorem7MissShape: doubling n roughly doubles MO-LR cache misses
// (the bound is O((n/(q·B))·log_C n + lower-order terms)).
func TestTheorem7MissShape(t *testing.T) {
	run := func(n int) int64 {
		s := core.NewSim(hm.MustMachine(hm.MC3(4)))
		perm := rand.New(rand.NewSource(5)).Perm(n)
		l := FromPerm(s, perm)
		rank := s.NewI64(n)
		return s.RunCold(SpaceBound(n), func(c *core.Ctx) { MOLR(c, l, rank) }).Sim.Levels[0].TotalMisses
	}
	m1, m2 := run(1<<11), run(1<<13)
	// Ideal n·log_C n growth over 4x is ~4.7; the tiny simulated caches add
	// a working-set crossover between these sizes, so allow 7.  The guard is
	// against superlinear blowup (pointer-chasing would be ~16).
	if ratio := float64(m2) / float64(m1); ratio > 7 {
		t.Errorf("L1 misses grew %.2fx over 4x n; want near-linear (<= 7)", ratio)
	}
}
