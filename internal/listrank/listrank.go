// Package listrank implements MO-LR, the multicore-oblivious list-ranking
// algorithm of paper §VI-A, and MO-IS (Figure 6), its independent-set
// subroutine:
//
//   - colors are computed by applying Cole–Vishkin deterministic coin
//     flipping to the (temporarily circular) list a constant number of
//     times, giving O(log log n) colors;
//   - colors are processed in increasing order; the nodes of a color are
//     sorted by identifier, duplicate-marked nodes (neighbours of already
//     selected nodes) are discarded, the rest join the independent set, and
//     duplicates of their neighbours are pushed into later color groups;
//   - the independent set (a constant fraction of the list) is spliced out,
//     accumulating link weights; the contracted list is ranked recursively,
//     and the solution is extended to the removed nodes.
//
// Per contraction level the work is O(1) sorts (package spms, under
// CGC⇒SB) and O(log log n) scans (package scan, under CGC), as the paper
// prescribes.
//
// Rank semantics: rank(v) = w(v) + rank(succ(v)) with rank past the end
// being 0; at the top level w(v) = 1 for internal nodes and 0 for the
// tail, so rank(v) is the distance from v to the end of the list.
package listrank

import (
	"oblivhm/internal/core"
	"oblivhm/internal/scan"
	"oblivhm/internal/spms"
)

// List is a doubly linked list embedded in arrays: Succ[v] / Pred[v] are
// node indices, -1 marks the tail's successor and the head's predecessor.
type List struct {
	N          int
	Succ, Pred core.I64
}

// SpaceBound is the declared space bound of MO-LR on n nodes, in words.
func SpaceBound(n int) int64 { return 24 * int64(n) }

// baseSize is the cutoff below which ranking is done by a serial chase.
const baseSize = 32

// colorRounds is how many times deterministic coin flipping is applied
// (the paper applies it twice; its footnote 3 allows any constant k >= 2 —
// three rounds gives <= 13 colors for any feasible n).
const colorRounds = 3

// colorShift packs (color, id) into one key: colors fit comfortably below
// 2^20 after the DCF rounds, ids below 2^40.
const colorShift = 40

// MOLR computes rank[v] = distance (number of links) from v to the end of
// the list, for every node.
func MOLR(c *core.Ctx, l List, rank core.I64) {
	w := c.NewI64(l.N)
	c.PFor(l.N, 1, func(cc *core.Ctx, lo, hi int) {
		for v := lo; v < hi; v++ {
			if l.Succ.At(cc, v) < 0 {
				w.Set(cc, v, 0)
			} else {
				w.Set(cc, v, 1)
			}
		}
	})
	molr(c, l, w, rank)
}

func molr(c *core.Ctx, l List, w, rank core.I64) {
	n := l.N
	if n <= baseSize {
		serialRankW(c, l, w, rank)
		return
	}

	inS := c.NewI64(n)
	MOIS(c, l, inS)

	// Contract: splice out the independent set, accumulating weights.
	newIdx := c.NewI64(n)
	c.PFor(n, 1, func(cc *core.Ctx, lo, hi int) {
		for v := lo; v < hi; v++ {
			newIdx.Set(cc, v, 1-inS.At(cc, v))
		}
	})
	m := int(scan.ExclusiveSumsI64(c, newIdx))

	sub := List{N: m, Succ: c.NewI64(m), Pred: c.NewI64(m)}
	subW := c.NewI64(m)
	oldOf := c.NewI64(m)
	c.PFor(n, 1, func(cc *core.Ctx, lo, hi int) {
		for v := lo; v < hi; v++ {
			if inS.At(cc, v) != 0 {
				continue
			}
			nv := int(newIdx.At(cc, v))
			oldOf.Set(cc, nv, int64(v))
			wv := w.At(cc, v)
			sv := l.Succ.At(cc, v)
			if sv >= 0 && inS.At(cc, int(sv)) != 0 {
				// Successor is removed: bridge over it.  Its own successor
				// is kept (independence), possibly -1 if it was the tail.
				wv += w.At(cc, int(sv))
				sv = l.Succ.At(cc, int(sv))
			}
			pv := l.Pred.At(cc, v)
			if pv >= 0 && inS.At(cc, int(pv)) != 0 {
				pv = l.Pred.At(cc, int(pv))
			}
			if sv >= 0 {
				sv = newIdx.At(cc, int(sv))
			}
			if pv >= 0 {
				pv = newIdx.At(cc, int(pv))
			}
			sub.Succ.Set(cc, nv, sv)
			sub.Pred.Set(cc, nv, pv)
			subW.Set(cc, nv, wv)
		}
	})

	subRank := c.NewI64(m)
	molr(c, sub, subW, subRank)

	// Extend: kept nodes copy their contracted rank; removed nodes add
	// their weight to their (kept) successor's rank.
	c.PFor(m, 1, func(cc *core.Ctx, lo, hi int) {
		for nv := lo; nv < hi; nv++ {
			rank.Set(cc, int(oldOf.At(cc, nv)), subRank.At(cc, nv))
		}
	})
	c.PFor(n, 1, func(cc *core.Ctx, lo, hi int) {
		for v := lo; v < hi; v++ {
			if inS.At(cc, v) == 0 {
				continue
			}
			sv := l.Succ.At(cc, v)
			if sv < 0 {
				rank.Set(cc, v, w.At(cc, v)) // removed tail: rank = w (0 at top level)
			} else {
				rank.Set(cc, v, w.At(cc, v)+rank.At(cc, int(sv)))
			}
		}
	})
}

// MOIS computes an independent set of the list (Figure 6), setting
// inS[v] = 1 for members.  Among any three consecutive nodes at least one
// is selected, so |S| >= n/3.
func MOIS(c *core.Ctx, l List, inS core.I64) {
	n := l.N
	color := Colors(c, l)
	ncol := int(scan.ReduceU64(c, core.U64{Base: color.Base, N: n}, scan.MaxU, 0)) + 1

	// Steps 3+5 fused: sorting (color, id) records groups nodes by color
	// with each group pre-sorted by identifier.
	rec := c.NewPairs(n)
	c.PFor(n, 2, func(cc *core.Ctx, lo, hi int) {
		for v := lo; v < hi; v++ {
			rec.Set(cc, v, core.Pair{Key: uint64(color.At(cc, v))<<colorShift | uint64(v), Val: uint64(v)})
		}
	})
	spms.Sort(c, rec)

	// Segment bounds per color, found by a CGC boundary scan.
	starts := c.NewI64(ncol + 1)
	scan.FillI64(c, starts, int64(n))
	c.PFor(n, 2, func(cc *core.Ctx, lo, hi int) {
		for k := lo; k < hi; k++ {
			cj := int(rec.Key(cc, k) >> colorShift)
			if k == 0 || int(rec.Key(cc, k-1)>>colorShift) != cj {
				starts.Set(cc, cj, int64(k))
			}
		}
	})
	// Empty colors inherit the next start (scan right to left, host side
	// over <= O(log log n) colors).
	bounds := make([]int, ncol+1)
	bounds[ncol] = n
	for j := ncol - 1; j >= 0; j-- {
		b := int(starts.At(c, j))
		if b == n { // empty color
			b = bounds[j+1]
		}
		bounds[j] = b
	}

	// Lay out the per-color group buffers with 3x headroom (paper: at most
	// 3·n_j records ever enter group j) and copy the originals in.
	gbase := make([]int, ncol)
	glen := make([]int, ncol)
	off := 0
	for j := 0; j < ncol; j++ {
		gbase[j] = off
		glen[j] = bounds[j+1] - bounds[j]
		off += 3*glen[j] + 4
	}
	groups := c.NewPairs(off)
	c.PFor(n, 2, func(cc *core.Ctx, lo, hi int) {
		for k := lo; k < hi; k++ {
			p := rec.At(cc, k)
			cj := int(p.Key >> colorShift)
			groups.Set(cc, gbase[cj]+(k-bounds[cj]), core.Pair{Key: p.Val, Val: 0})
		}
	})

	scan.FillI64(c, inS, 0)
	// Steps 4-7: one iteration per color, each O(1) sorts and scans.
	for j := 0; j < ncol; j++ {
		if glen[j] == 0 {
			continue
		}
		seg := groups.Slice(gbase[j], gbase[j]+glen[j])
		spms.Sort(c, seg) // duplicates become adjacent (sorted by id)
		// Step 6 [CGC]: select ids occurring exactly once; push duplicate
		// records for the neighbours of every selected node.
		dupSeg := c.NewPairs(2 * seg.N)
		c.PFor(seg.N, 2, func(cc *core.Ctx, lo, hi int) {
			for k := lo; k < hi; k++ {
				id := seg.Key(cc, k)
				uniq := (k == 0 || seg.Key(cc, k-1) != id) &&
					(k == seg.N-1 || seg.Key(cc, k+1) != id)
				d0 := core.Pair{Key: ^uint64(0), Val: 0}
				d1 := d0
				if uniq {
					v := int(id)
					inS.Set(cc, v, 1)
					if sv := l.Succ.At(cc, v); sv >= 0 {
						d0 = core.Pair{Key: uint64(color.At(cc, int(sv)))<<colorShift | uint64(sv), Val: 1}
					}
					if pv := l.Pred.At(cc, v); pv >= 0 {
						d1 = core.Pair{Key: uint64(color.At(cc, int(pv)))<<colorShift | uint64(pv), Val: 1}
					}
				}
				dupSeg.Set(cc, 2*k, d0)
				dupSeg.Set(cc, 2*k+1, d1)
			}
		})
		// Step 7 [CGC]: route duplicates into the later color groups.
		for j2 := j + 1; j2 < ncol; j2++ {
			tgt := groups.Slice(gbase[j2]+glen[j2], gbase[j2]+3*(bounds[j2+1]-bounds[j2])+4)
			cnt := scan.PackPairs(c, tgt, dupSeg, func(p core.Pair) bool {
				return p.Key != ^uint64(0) && int(p.Key>>colorShift) == j2
			})
			// Strip the color tag so group records stay (id, isDup).
			c.PFor(cnt, 2, func(cc *core.Ctx, lo, hi int) {
				for k := lo; k < hi; k++ {
					p := tgt.At(cc, k)
					tgt.Set(cc, k, core.Pair{Key: p.Key & (1<<colorShift - 1), Val: 1})
				}
			})
			glen[j2] += cnt
		}
	}
}

// Colors computes an O(log log n)-coloring of the list by applying
// deterministic coin flipping colorRounds times (Figure 6, step 1).  The
// list is treated as circular for coloring only, so every node has a
// successor to compare against; adjacent nodes always get distinct colors.
func Colors(c *core.Ctx, l List) core.I64 {
	n := l.N
	color := c.NewI64(n)
	c.PFor(n, 1, func(cc *core.Ctx, lo, hi int) {
		for v := lo; v < hi; v++ {
			color.Set(cc, v, int64(v))
		}
	})
	if n == 1 {
		return color
	}
	head := FindHead(c, l)
	next := c.NewI64(n)
	c.PFor(n, 1, func(cc *core.Ctx, lo, hi int) {
		for v := lo; v < hi; v++ {
			sv := l.Succ.At(cc, v)
			if sv < 0 {
				sv = int64(head) // close the ring
			}
			next.Set(cc, v, sv)
		}
	})
	for r := 0; r < colorRounds; r++ {
		sc := Gather(c, next, color)
		nc := c.NewI64(n)
		c.PFor(n, 1, func(cc *core.Ctx, lo, hi int) {
			for v := lo; v < hi; v++ {
				cv := uint64(color.At(cc, v))
				cs := uint64(sc.At(cc, v))
				k := int64(0)
				if cv != cs {
					d := cv ^ cs
					for d&1 == 0 {
						d >>= 1
						k++
					}
				}
				cc.Tick(1)
				nc.Set(cc, v, 2*k+int64((cv>>uint64(k))&1))
			}
		})
		color = nc
	}
	return color
}

// Gather returns out with out[v] = vals[idx[v]] (idx[v] >= 0 required),
// implemented with O(1) sorts and scans (the paper's step-2 idiom): route
// requests to the data by sorting on the target, read the values with a
// monotone scan, route replies back by sorting on the requester.
func Gather(c *core.Ctx, idx, vals core.I64) core.I64 {
	n := idx.N
	req := c.NewPairs(n)
	c.PFor(n, 2, func(cc *core.Ctx, lo, hi int) {
		for v := lo; v < hi; v++ {
			req.Set(cc, v, core.Pair{Key: uint64(idx.At(cc, v)), Val: uint64(v)})
		}
	})
	spms.Sort(c, req)
	rep := c.NewPairs(n)
	c.PFor(n, 2, func(cc *core.Ctx, lo, hi int) {
		for k := lo; k < hi; k++ {
			p := req.At(cc, k)
			rep.Set(cc, k, core.Pair{Key: p.Val, Val: uint64(vals.At(cc, int(p.Key)))})
		}
	})
	spms.Sort(c, rep)
	out := c.NewI64(n)
	c.PFor(n, 1, func(cc *core.Ctx, lo, hi int) {
		for v := lo; v < hi; v++ {
			out.Set(cc, v, int64(rep.At(cc, v).Val))
		}
	})
	return out
}

// FindHead locates the node with no predecessor via a CGC reduction.
func FindHead(c *core.Ctx, l List) int {
	h := c.NewU64(l.N)
	c.PFor(l.N, 1, func(cc *core.Ctx, lo, hi int) {
		for v := lo; v < hi; v++ {
			if l.Pred.At(cc, v) < 0 {
				h.Set(cc, v, uint64(v))
			} else {
				h.Set(cc, v, 0)
			}
		}
	})
	return int(scan.ReduceU64(c, h, scan.MaxU, 0))
}

// serialRankW is the base case: chase the list from the head and assign
// rank(v) = w(v) + rank(succ(v)), rank past the end = 0.
func serialRankW(c *core.Ctx, l List, w, rank core.I64) {
	if l.N == 0 {
		return
	}
	order := make([]int, 0, l.N)
	v := FindHead(c, l)
	for v >= 0 {
		order = append(order, v)
		v = int(l.Succ.At(c, v))
	}
	prev := int64(0)
	for i := len(order) - 1; i >= 0; i-- {
		r := w.At(c, order[i]) + prev
		rank.Set(c, order[i], r)
		prev = r
	}
}

// Wyllie is the pointer-jumping baseline: Θ(n·log n) work, log n rounds of
// full-array jumps.
func Wyllie(c *core.Ctx, l List, rank core.I64) {
	n := l.N
	w := c.NewI64(n)
	nxt := c.NewI64(n)
	c.PFor(n, 1, func(cc *core.Ctx, lo, hi int) {
		for v := lo; v < hi; v++ {
			sv := l.Succ.At(cc, v)
			nxt.Set(cc, v, sv)
			if sv < 0 {
				w.Set(cc, v, 0)
			} else {
				w.Set(cc, v, 1)
			}
		}
	})
	for stride := 1; stride < 2*n; stride *= 2 {
		w2 := c.NewI64(n)
		n2 := c.NewI64(n)
		c.PFor(n, 1, func(cc *core.Ctx, lo, hi int) {
			for v := lo; v < hi; v++ {
				sv := nxt.At(cc, v)
				if sv < 0 {
					w2.Set(cc, v, w.At(cc, v))
					n2.Set(cc, v, -1)
				} else {
					w2.Set(cc, v, w.At(cc, v)+w.At(cc, int(sv)))
					n2.Set(cc, v, nxt.At(cc, int(sv)))
				}
			}
		})
		w, nxt = w2, n2
	}
	scan.CopyU64(c, core.U64{Base: rank.Base, N: n}, core.U64{Base: w.Base, N: n})
}

// SerialRank is the sequential oracle.
func SerialRank(c *core.Ctx, l List, rank core.I64) {
	w := c.NewI64(l.N)
	for v := 0; v < l.N; v++ {
		if l.Succ.At(c, v) < 0 {
			w.Set(c, v, 0)
		} else {
			w.Set(c, v, 1)
		}
	}
	serialRankW(c, l, w, rank)
}

// FromPerm builds the list visiting perm[0], perm[1], ..., perm[n-1] in
// order (host-side construction).
func FromPerm(s *core.Session, perm []int) List {
	n := len(perm)
	l := List{N: n, Succ: s.NewI64(n), Pred: s.NewI64(n)}
	for i := 0; i < n; i++ {
		if i+1 < n {
			s.PokeI(l.Succ, perm[i], int64(perm[i+1]))
		} else {
			s.PokeI(l.Succ, perm[i], -1)
		}
		if i > 0 {
			s.PokeI(l.Pred, perm[i], int64(perm[i-1]))
		} else {
			s.PokeI(l.Pred, perm[i], -1)
		}
	}
	return l
}

// RankWeighted ranks with explicit link weights:
// rank(v) = w(v) + rank(succ(v)), with rank past the end = 0.  Used by the
// Euler-tour tree computations, which rank the tour under several weight
// assignments.
func RankWeighted(c *core.Ctx, l List, w, rank core.I64) { molr(c, l, w, rank) }
