package core

// Admission-discipline regression tests: the space-bound scheduler must
// serialise tasks whose combined space exceeds a cache's capacity (queueing
// them in Q(λ) and admitting as reservations release), and the engine must
// detect — with a stable, descriptive panic — configurations that can never
// make progress.

import (
	"fmt"
	"testing"

	"oblivhm/internal/hm"
)

// TestAdmissionSerialises: 8 tasks each reserving a full L2 on a machine
// with only 2 L2 caches.  At most two can hold reservations at once; the
// rest must wait in the anchor queues and all must eventually complete.
func TestAdmissionSerialises(t *testing.T) {
	cfg := hm.HM4(2, 2) // 4 cores, 2 L2s
	c2 := cfg.Levels[1].Capacity
	m := hm.MustMachine(cfg)
	s := NewSim(m)
	const k = 8
	v := s.NewI64(k)
	s.Run(c2*2, func(c *Ctx) {
		var tasks []Task
		for i := 0; i < k; i++ {
			i := i
			tasks = append(tasks, Task{Space: c2, Fn: func(cc *Ctx) {
				cc.StoreI(v.Base+Addr(i), int64(i)+100)
			}})
		}
		c.SpawnSB(tasks...)
	})
	for i := 0; i < k; i++ {
		if got := s.PeekI(v, i); got != int64(i)+100 {
			t.Errorf("task %d never ran: v[%d] = %d", i, i, got)
		}
	}
	if got := s.PlacedAt(2); got != k {
		t.Errorf("PlacedAt(2) = %d, want %d (every task anchored at an L2)", got, k)
	}
}

// TestAdmissionSerialisesUnderPressureCompletes is the same discipline
// driven harder: tasks fork recursively while holding reservations, so
// admits happen from finish paths deep in the round loop.
func TestAdmissionSerialisesUnderPressureCompletes(t *testing.T) {
	cfg := hm.HM4(2, 2)
	c2 := cfg.Levels[1].Capacity
	m := hm.MustMachine(cfg)
	s := NewSim(m)
	total := 0
	s.Run(c2*4, func(c *Ctx) {
		var tasks []Task
		for i := 0; i < 6; i++ {
			tasks = append(tasks, Task{Space: c2, Fn: func(cc *Ctx) {
				cc.SpawnSB(
					Task{Space: c2 / 4, Fn: func(c2x *Ctx) { c2x.Tick(10) }},
					Task{Space: c2 / 4, Fn: func(c2x *Ctx) { c2x.Tick(10) }},
				)
				total++ // strands run one at a time; no data race
			}})
		}
		c.SpawnSB(tasks...)
	})
	if total != 6 {
		t.Fatalf("completed %d of 6 reservation-holding tasks", total)
	}
}

// TestOversizeTaskStillAdmitted pins the escape hatch that keeps the
// discipline deadlock-free: a task bigger than its anchor cache is admitted
// anyway once the cache is otherwise empty (slot.anchd == 0), rather than
// waiting forever for space that cannot exist.
func TestOversizeTaskStillAdmitted(t *testing.T) {
	cfg := hm.HM4(2, 2)
	c1 := cfg.Levels[0].Capacity
	m := hm.MustMachine(cfg)
	s := NewSim(m, WithFlatScheduler()) // flat: everything anchors at an L1
	ran := false
	s.Run(1<<16, func(c *Ctx) {
		c.SpawnSB(Task{Space: c1 * 2, Fn: func(cc *Ctx) { ran = true }})
	})
	if !ran {
		t.Fatal("oversize task never admitted")
	}
}

// TestDeadlockPanicMessage pins the engine's stuck-configuration report.
// The public scheduling discipline is deadlock-free by construction (the
// nested fallback and the oversize escape hatch above), so the detector is
// a backstop against engine bugs; this test fabricates the stuck state
// directly — a queued task behind a reservation whose holder never
// finishes — and asserts the diagnostic it would print.
func TestDeadlockPanicMessage(t *testing.T) {
	m := hm.MustMachine(hm.HM4(2, 2))
	s := NewSim(m)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("stuck configuration did not panic")
		}
		want := "core: deadlock: 1 live strands all blocked, 1 queued tasks"
		if got := fmt.Sprint(r); got != want {
			t.Fatalf("panic message = %q, want %q", got, want)
		}
	}()
	s.Run(1<<12, func(c *Ctx) {
		e := s.eng
		slot := e.slotOf(m.CacheOf(0, 1))
		slot.used = slot.cache.Cap * slot.cache.Block // phantom reservation
		slot.anchd = 1
		jn := e.newJoin()
		jn.pending = 1
		e.placeAnchored(slot, pending{space: 1, jn: jn, fn: func(*Ctx) {}})
		c.waitJoin(jn) // parks behind a task that can never be admitted
	})
}
