package core

// Admission-discipline regression tests: the space-bound scheduler must
// serialise tasks whose combined space exceeds a cache's capacity (queueing
// them in Q(λ) and admitting as reservations release), and the engine must
// detect — with a stable, descriptive panic — configurations that can never
// make progress.

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"oblivhm/internal/hm"
)

// TestAdmissionSerialises: 8 tasks each reserving a full L2 on a machine
// with only 2 L2 caches.  At most two can hold reservations at once; the
// rest must wait in the anchor queues and all must eventually complete.
func TestAdmissionSerialises(t *testing.T) {
	cfg := hm.HM4(2, 2) // 4 cores, 2 L2s
	c2 := cfg.Levels[1].Capacity
	m := hm.MustMachine(cfg)
	s := NewSim(m)
	const k = 8
	v := s.NewI64(k)
	s.Run(c2*2, func(c *Ctx) {
		var tasks []Task
		for i := 0; i < k; i++ {
			i := i
			tasks = append(tasks, Task{Space: c2, Fn: func(cc *Ctx) {
				cc.StoreI(v.Base+Addr(i), int64(i)+100)
			}})
		}
		c.SpawnSB(tasks...)
	})
	for i := 0; i < k; i++ {
		if got := s.PeekI(v, i); got != int64(i)+100 {
			t.Errorf("task %d never ran: v[%d] = %d", i, i, got)
		}
	}
	if got := s.PlacedAt(2); got != k {
		t.Errorf("PlacedAt(2) = %d, want %d (every task anchored at an L2)", got, k)
	}
}

// TestAdmissionSerialisesUnderPressureCompletes is the same discipline
// driven harder: tasks fork recursively while holding reservations, so
// admits happen from finish paths deep in the round loop.
func TestAdmissionSerialisesUnderPressureCompletes(t *testing.T) {
	cfg := hm.HM4(2, 2)
	c2 := cfg.Levels[1].Capacity
	m := hm.MustMachine(cfg)
	s := NewSim(m)
	total := 0
	s.Run(c2*4, func(c *Ctx) {
		var tasks []Task
		for i := 0; i < 6; i++ {
			tasks = append(tasks, Task{Space: c2, Fn: func(cc *Ctx) {
				cc.SpawnSB(
					Task{Space: c2 / 4, Fn: func(c2x *Ctx) { c2x.Tick(10) }},
					Task{Space: c2 / 4, Fn: func(c2x *Ctx) { c2x.Tick(10) }},
				)
				total++ // strands run one at a time; no data race
			}})
		}
		c.SpawnSB(tasks...)
	})
	if total != 6 {
		t.Fatalf("completed %d of 6 reservation-holding tasks", total)
	}
}

// TestOversizeTaskStillAdmitted pins the escape hatch that keeps the
// discipline deadlock-free: a task bigger than its anchor cache is admitted
// anyway once the cache is otherwise empty (slot.anchd == 0), rather than
// waiting forever for space that cannot exist.
func TestOversizeTaskStillAdmitted(t *testing.T) {
	cfg := hm.HM4(2, 2)
	c1 := cfg.Levels[0].Capacity
	m := hm.MustMachine(cfg)
	s := NewSim(m, WithFlatScheduler()) // flat: everything anchors at an L1
	ran := false
	s.Run(1<<16, func(c *Ctx) {
		c.SpawnSB(Task{Space: c1 * 2, Fn: func(cc *Ctx) { ran = true }})
	})
	if !ran {
		t.Fatal("oversize task never admitted")
	}
}

// stuckRun wedges the engine on purpose: an over-admission state — a
// phantom reservation filling an L1 with a task queued behind it whose
// holder never finishes — that the backstop must diagnose.  The public
// scheduling discipline is deadlock-free by construction (the nested
// fallback and the oversize escape hatch above), so the detector guards
// against engine bugs; the test fabricates the stuck state directly.
func stuckRun(s *Session, m *hm.Machine) (RunStats, error) {
	return s.TryRun(1<<12, func(c *Ctx) {
		e := s.eng
		slot := e.slotOf(m.CacheOf(0, 1))
		slot.used = slot.cache.Cap * slot.cache.Block // phantom reservation
		slot.anchd = 1
		jn := e.newJoin()
		jn.pending = 1
		e.placeAnchored(slot, pending{space: 1, jn: jn, fn: func(*Ctx) {}, label: "starveling"})
		c.waitJoin(jn) // parks behind a task that can never be admitted
	})
}

// TestDeadlockForensics trips the backstop and asserts the structured
// report diagnoses the wedge: the starved cache slot is named with its
// occupancy and the queued task's space demand, and the parked root strand
// appears with its anchor.
func TestDeadlockForensics(t *testing.T) {
	m := hm.MustMachine(hm.HM4(2, 2))
	s := NewSim(m)
	_, err := stuckRun(s, m)
	if err == nil {
		t.Fatal("stuck configuration did not fail")
	}
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("stuck configuration returned %T (%v), want *DeadlockError", err, err)
	}
	r := de.Report
	if r.Live != 1 || r.Queued != 1 || r.Runnable != 0 {
		t.Errorf("report counts = live %d, runnable %d, queued %d; want 1, 0, 1", r.Live, r.Runnable, r.Queued)
	}
	if got := r.Starved(); len(got) != 1 || got[0] != "L1[0]" {
		t.Errorf("Starved() = %v, want [L1[0]]", got)
	}
	var starved *SlotState
	for i := range r.Slots {
		if r.Slots[i].Name() == "L1[0]" {
			starved = &r.Slots[i]
		}
	}
	if starved == nil {
		t.Fatalf("report slots %v do not include the starved L1[0]", r.Slots)
	}
	if starved.Queued != 1 || len(starved.Demands) != 1 || starved.Demands[0] != 1 {
		t.Errorf("starved slot = %+v, want 1 queued task with space demand 1", *starved)
	}
	if starved.Used != starved.Capacity || starved.Anchored != 1 {
		t.Errorf("starved slot occupancy = %d/%d with %d anchored, want full with 1 anchored",
			starved.Used, starved.Capacity, starved.Anchored)
	}
	if len(r.Blocked) != 1 || r.Blocked[0].Label != "root" || r.Blocked[0].AnchorLevel != 2 {
		t.Errorf("blocked strands = %+v, want the root strand parked at its L2 anchor", r.Blocked)
	}
	for _, frag := range []string{"L1[0]", "used 512/512", "pending space demands: [1]", `task "root"`, "starved: L1[0]"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("rendered report missing %q:\n%s", frag, err.Error())
		}
	}
}

// TestDeadlockStillPanicsThroughRun pins the historical contract: callers
// using Run (not TryRun) still get a panic, now carrying the forensics.
func TestDeadlockStillPanicsThroughRun(t *testing.T) {
	m := hm.MustMachine(hm.HM4(2, 2))
	s := NewSim(m)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("stuck configuration did not panic through Run")
		}
		if _, ok := r.(*DeadlockError); !ok {
			t.Fatalf("Run panicked with %T, want *DeadlockError", r)
		}
		if !strings.Contains(fmt.Sprint(r), "starved: L1[0]") {
			t.Errorf("panic value does not name the starved slot: %v", r)
		}
	}()
	s.Run(1<<12, func(c *Ctx) {
		e := s.eng
		slot := e.slotOf(m.CacheOf(0, 1))
		slot.used = slot.cache.Cap * slot.cache.Block
		slot.anchd = 1
		jn := e.newJoin()
		jn.pending = 1
		e.placeAnchored(slot, pending{space: 1, jn: jn, fn: func(*Ctx) {}})
		c.waitJoin(jn)
	})
}
