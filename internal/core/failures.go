package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"oblivhm/internal/hm"
)

// Failure injection and deterministic self-healing recovery.
//
// The paper's premise is that oblivious algorithms cannot see machine
// parameters — so the machine should be free to change underneath them,
// including losing cores mid-run.  WithFailures(seed, plan) attaches a
// seeded failure domain to a simulated session:
//
//   - fail-stop core deaths at deterministic virtual rounds: the core's run
//     queue is drained (unstarted strands migrate to survivors, in-flight
//     strands are killed and re-executed from their recorded spawn
//     closures), its parked strands are killed the same way, and the core
//     never receives work again;
//   - straggler cores: a per-core slowdown factor divides the core's
//     per-round operation budget from the start of the run, modelling a
//     core that runs slower than its siblings;
//   - transient cache faults: a cache loses its contents at a deterministic
//     round (hm.InjectCacheFault) while memory stays authoritative, so the
//     post-fault rounds pay compulsory misses again.
//
// Recovery protocol.  Every strand records the closure it was spawned from
// (strand.fn), so a killed in-flight strand is replaced by a fresh strand
// running the same closure on the least-loaded surviving core under the
// dead strand's anchor (walking up the cache hierarchy when the whole
// shadow is dead — the top cache covers every core and kills are capped at
// p-1 victims, so a survivor always exists).  The replacement inherits the
// dead strand's join and space reservation, so fork-join counting and the
// admission discipline are untouched: the parent still sees exactly one
// completion per child, and Q(λ) still drains.  Children forked by the dead
// strand before it died keep running and signal its now-orphaned join
// harmlessly; the replacement re-forks its own children, and that
// duplicated work is measured as the re-executed work fraction.  The whole
// protocol runs on the engine goroutine between rounds — recovery is
// goroutine-free and therefore as deterministic as the scheduler itself.
//
// Restartability assumption.  Re-executing a partially run task is the
// MapReduce fail-stop model: it is exact for tasks that write outputs as a
// pure function of inputs they do not overwrite (mm, mt, spmdv, the
// harness's failure golden matrix) and a deterministic-but-lossy
// approximation for in-place algorithms, whose re-executed runs still
// terminate with frozen metrics but may compute different values.  The
// determinism contract extends to failures either way: same config + seed
// → byte-identical failure schedule, recovery actions and metrics.
//
// Interplay with the fast paths: failures disable solo batch grants (a
// locally committed batch would skip the round boundaries failure events
// fire at) and parallel rounds (recovery mutates scheduler state between
// rounds, so the epoch is serialized by construction, exactly like chaos);
// both fast paths are observably equivalent to the serial lockstep, so a
// plan with no events reproduces the default metrics bit for bit.

// FailurePlan declares what a seeded failure domain injects.  The zero
// plan injects nothing (and still freezes the schedule: WithFailures with
// an empty plan reproduces the default metrics).
type FailurePlan struct {
	KillCores   int   // fail-stop core deaths, capped at p-1 so a survivor always exists
	Stragglers  int   // cores running at a reduced per-round budget, capped at p
	SlowFactor  int64 // straggler budget divisor; <= 1 defaults to 2
	CacheFaults int   // transient cache faults (contents dropped, counters kept)

	// HorizonRounds bounds the virtual round at which deaths and faults
	// fire: events land in [1, HorizonRounds].  <= 0 defaults to 128, early
	// enough that even small workloads run most of their life degraded.
	HorizonRounds int
}

// validate rejects nonsensical plans with a typed *FailureError (kind
// "plan") before the run starts.
func (p FailurePlan) validate() error {
	bad := func(field string, v int64) error {
		return &FailureError{Kind: "plan", Detail: fmt.Sprintf("%s must be >= 0, got %d", field, v)}
	}
	switch {
	case p.KillCores < 0:
		return bad("KillCores", int64(p.KillCores))
	case p.Stragglers < 0:
		return bad("Stragglers", int64(p.Stragglers))
	case p.SlowFactor < 0:
		return bad("SlowFactor", p.SlowFactor)
	case p.CacheFaults < 0:
		return bad("CacheFaults", int64(p.CacheFaults))
	case p.HorizonRounds < 0:
		return bad("HorizonRounds", int64(p.HorizonRounds))
	}
	return nil
}

// failEventKind discriminates scheduled failure events.
type failEventKind int

const (
	fkKill failEventKind = iota
	fkFault
)

// failEvent is one scheduled failure: a core death or a cache fault firing
// at a virtual round.
type failEvent struct {
	round        int64
	kind         failEventKind
	core         int // fkKill: victim core
	level, index int // fkFault: cache coordinates
}

// failInj is the failure-domain state attached to an engine.  The schedule
// in events is re-derived identically at the start of every run from
// (seed, plan, machine shape), so repeated runs replay the same failures.
type failInj struct {
	seed int64
	plan FailurePlan

	events   []failEvent
	next     int     // next unfired event index
	round    int64   // loop rounds completed (failures disable batching, so rounds == iterations)
	dead     uint64  // bitmask of dead cores
	slow     []int64 // per-core budget divisor; 0/1 = full speed
	fired    bool    // at least one event has fired
	missBase []int64 // per-level total misses at the first event

	rep RecoveryReport
}

// derive (re)computes the failure schedule for a run on a p-core machine.
// Everything is drawn from a splitmix64 stream seeded by the failure seed —
// the same generator chaos uses — so the schedule is a pure function of
// (seed, plan, machine shape).
func (f *failInj) derive(p int, m *hm.Machine) {
	f.rep = RecoveryReport{Seed: f.seed}
	f.events = f.events[:0]
	f.next, f.round, f.dead = 0, 0, 0
	f.fired, f.missBase = false, nil
	if f.slow == nil || len(f.slow) != p {
		f.slow = make([]int64, p)
	}
	for i := range f.slow {
		f.slow[i] = 0
	}
	rng := chaosRNG{state: uint64(f.seed)}
	rng.next() // decorrelate nearby seeds, as in newChaos

	horizon := f.plan.HorizonRounds
	if horizon <= 0 {
		horizon = 128
	}
	kills := f.plan.KillCores
	if kills > p-1 {
		kills = p - 1
	}
	perm := make([]int, p)
	for i := range perm {
		perm[i] = i
	}
	// Distinct victims via a partial Fisher-Yates walk: capping at p-1
	// distinct cores guarantees a survivor, which the recovery redirect
	// relies on.
	for i := 0; i < kills; i++ {
		j := i + rng.intn(p-i)
		perm[i], perm[j] = perm[j], perm[i]
		f.events = append(f.events, failEvent{
			round: int64(1 + rng.intn(horizon)), kind: fkKill, core: perm[i],
		})
	}

	slowf := f.plan.SlowFactor
	if slowf <= 1 {
		slowf = 2
	}
	stragglers := f.plan.Stragglers
	if stragglers > p {
		stragglers = p
	}
	for i := range perm {
		perm[i] = i
	}
	// Stragglers are slow from round 0 (a core that was always the weak
	// sibling); overlap with later deaths is harmless — slowdown is moot
	// once the core is dead.
	for i := 0; i < stragglers; i++ {
		j := i + rng.intn(p-i)
		perm[i], perm[j] = perm[j], perm[i]
		f.slow[perm[i]] = slowf
		f.rep.StragglerCores = append(f.rep.StragglerCores, perm[i])
	}
	sort.Ints(f.rep.StragglerCores)
	if stragglers > 0 {
		f.rep.SlowFactor = slowf
	}

	for i := 0; i < f.plan.CacheFaults; i++ {
		lv := 1 + rng.intn(len(m.ByLevel))
		f.events = append(f.events, failEvent{
			round: int64(1 + rng.intn(horizon)), kind: fkFault,
			level: lv, index: rng.intn(len(m.ByLevel[lv-1])),
		})
	}
	// Stable sort: same-round events keep derivation order (kills before
	// faults, earlier draws first), part of the frozen schedule.
	sort.SliceStable(f.events, func(a, b int) bool { return f.events[a].round < f.events[b].round })
}

// coreBudget applies the straggler slowdown to a core's per-round budget.
func (f *failInj) coreBudget(c int, budget int64) int64 {
	if s := f.slow[c]; s > 1 {
		budget /= s
		if budget < 1 {
			budget = 1
		}
	}
	return budget
}

// fireFailures fires every event scheduled at or before the current round,
// reporting whether any action ran (a recovery round counts as progress for
// the deadlock backstop: replacements and migrations re-arm the schedule).
// Called at the top of every loop iteration while failures are enabled.
func (e *engine) fireFailures() bool {
	f := e.fail
	f.round++
	acted, killed := false, false
	for f.next < len(f.events) && f.events[f.next].round <= f.round {
		ev := f.events[f.next]
		f.next++
		e.noteFirstFailure()
		switch ev.kind {
		case fkKill:
			e.killCore(ev.core)
			acted, killed = true, true
		case fkFault:
			dropped := e.m.InjectCacheFault(ev.level, ev.index)
			f.rep.CacheFaults++
			f.rep.FaultedBlocks += dropped
			e.emit(EvFault, -1, ev.level, ev.index, dropped)
			acted = true
		}
	}
	if killed {
		f.rep.RecoveryRounds++
	}
	return acted
}

// noteFirstFailure stamps the clock and the per-level miss baseline at the
// first fired event, from which the post-failure miss deltas are computed.
func (e *engine) noteFirstFailure() {
	f := e.fail
	if f.fired {
		return
	}
	f.fired = true
	f.rep.FirstFailureClock = e.clock
	e.m.SyncReplay()
	f.missBase = make([]int64, len(e.slots))
	for i, level := range e.slots {
		var tot int64
		for _, sl := range level {
			tot += sl.cache.Stats.Misses
		}
		f.missBase[i] = tot
	}
}

// killCore fail-stops core c: drain its run queue (migrating unstarted
// strands, killing started ones), kill its parked strands, and mark it dead
// so no placement ever targets it again.
func (e *engine) killCore(c int) {
	f := e.fail
	if f.dead&(1<<uint(c)) != 0 {
		return
	}
	f.dead |= 1 << uint(c)
	f.rep.DeadCores = append(f.rep.DeadCores, c)
	e.emit(EvCoreFail, c, 0, 0, 0)
	for {
		st := e.pop(c)
		if st == nil {
			break
		}
		if st.started {
			e.killStrand(st)
		} else {
			e.migrateStrand(st)
		}
	}
	// Parked strands die too: their stacks reference the dead core.  The
	// blocked list mutates as killStrand untracks, so collect first; the
	// list order is engine-serial and therefore deterministic.
	var victims []*strand
	for _, st := range e.blockedL {
		if st.core == c {
			victims = append(victims, st)
		}
	}
	for _, st := range victims {
		e.killStrand(st)
	}
	e.active &^= 1 << uint(c)
}

// migrateStrand retargets an unstarted strand from a dead core to a
// surviving core under its anchor.  Nothing ran yet, so only the core
// changes — the same invariant the stealing extension relies on.
func (e *engine) migrateStrand(st *strand) {
	target := e.redirectCore(st.anchor)
	e.load[st.core]--
	e.load[target]++
	st.core, st.ctx.core = target, target
	e.emit(EvMigrate, target, st.anchor.Level, st.anchor.Index, 0)
	e.enqueue(st)
	e.fail.rep.MigratedStrands++
}

// poisonBudget is the sentinel grant that tells a parked strand goroutine
// to unwind: recv panics with killedStrand, the panic is recovered by the
// pooled worker loop like any task failure, and killStrand consumes the
// resulting yDone.  Real budgets are always positive.
const poisonBudget = int64(math.MinInt64)

// killedStrand is the private panic value of a poisoned strand.
type killedStrand struct{}

// killStrand kills an in-flight strand of a dead core and re-executes its
// work: the strand goroutine is unwound via the resume-channel poison (a
// strict ping-pong turn, so the protocol invariants hold), its engine
// accounting — including inline-spawn frames open on its stack — is rolled
// back, and a replacement strand running the same recorded closure is
// enqueued on a surviving core with the dead strand's join and reservation.
func (e *engine) killStrand(st *strand) {
	f := e.fail
	if st.blockIdx >= 0 {
		e.untrackBlocked(st)
	}
	if st.waitingOn != nil {
		// Orphan the join the dead strand was parked on: its last child's
		// completion must not resurrect the dead strand.  The join leaks
		// (never recycled) — the replacement waits on a fresh one.
		st.waitingOn.waiter = nil
		st.waitingOn = nil
	}
	fn, jn, label, anchor := st.fn, st.jn, st.label, st.anchor
	reserved, resSpace := st.reserved, st.resSpace

	// Unwind the goroutine.  The strand is parked in recv (inside
	// chargeSlow, park or requeue); the poison makes recv panic with
	// killedStrand, which unwinds the task function and surfaces as a yDone
	// through the pooled worker loop's recover.
	st.grant = 0
	st.resume <- poisonBudget
	msg := <-st.yield
	if msg.kind != yDone {
		panic(fmt.Sprintf("core: poisoned strand yielded %d, want yDone", msg.kind))
	}

	// Roll back inline-spawn frames the panic skipped over: each open frame
	// had incremented live/load for its inline child, and anchored frames
	// hold a space reservation to release (innermost first).
	for i := len(st.inline) - 1; i >= 0; i-- {
		fr := st.inline[i]
		e.live--
		e.load[st.core]--
		if fr.slot != nil {
			fr.slot.used -= fr.space
			fr.slot.anchd--
			e.admit(fr.slot)
		}
	}
	st.inline = st.inline[:0]

	st.done = true
	e.live--
	e.load[st.core]--
	f.rep.KilledStrands++
	st.fn, st.jn, st.reserved, st.waitingOn = nil, nil, nil, nil
	e.pool = append(e.pool, st)

	// Replacement: same closure, same join, same reservation, surviving
	// core.  A replacement of a replacement stays tagged recov.
	target := e.redirectCore(anchor)
	ns := e.newStrand(target, anchor, jn, fn, label)
	ns.reserved, ns.resSpace = reserved, resSpace
	ns.recov = true
	f.rep.ReexecStrands++
	e.emit(EvReexec, ns.core, anchor.Level, anchor.Index, resSpace)
	e.enqueue(ns)
}

// markRecov propagates the re-execution tag to strands descending from a
// replacement, so their operations count toward the re-executed work
// fraction.  No-op when failures are off (recov is never set then).
func (e *engine) markRecov(st *strand, parentRecov bool) {
	if parentRecov && e.fail != nil {
		st.recov = true
		e.fail.rep.ReexecStrands++
	}
}

// redirectCore picks the least-loaded surviving core under anchor, walking
// up the cache hierarchy while the whole shadow is dead.  The scan order
// (ascending core, strictly-smaller displaces) matches leastLoadedCore, so
// redirected placement stays inside the frozen total order.
func (e *engine) redirectCore(anchor *hm.Cache) int {
	dead := e.fail.dead
	for c := anchor; c != nil; c = c.Parent() {
		best, bestLoad := -1, int(^uint(0)>>1)
		for i := c.CoreLo; i < c.CoreHi; i++ {
			if dead&(1<<uint(i)) != 0 {
				continue
			}
			if e.load[i] < bestLoad {
				best, bestLoad = i, e.load[i]
			}
		}
		if best >= 0 {
			return best
		}
	}
	panic("core: no surviving core (kills are capped at p-1, so this is an engine bug)")
}

// ---- options ----

// WithFailures attaches a seeded failure domain to a simulated session:
// fail-stop core deaths, straggler slowdowns and transient cache faults
// drawn deterministically from (seed, plan), with self-healing recovery of
// the work lost to dead cores.  Same seed, plan, workload and machine →
// byte-identical failure schedule, recovery actions and metrics.  The
// recovery hot path runs entirely on the engine goroutine; parallel rounds
// (WithParallelRounds) are serialized by construction, exactly as under
// chaos.  See RunStats.Recovery for the degraded-mode report.
func WithFailures(seed int64, plan FailurePlan) Opt {
	return func(s *Session) {
		if s.eng != nil {
			s.eng.fail = &failInj{seed: seed, plan: plan}
		}
	}
}

// WithWatchdog bounds a run to the given number of virtual rounds: a run
// still live past the budget returns a *FailureError (kind "watchdog",
// errors.Is-matchable against ErrWatchdog) carrying the scheduler forensics
// instead of hanging.  The watchdog is observation-only below the budget —
// it cannot change a schedule — so metrics are untouched for any run that
// finishes in time.  rounds <= 0 disables it.
func WithWatchdog(rounds int64) Opt {
	return func(s *Session) {
		if s.eng != nil {
			s.eng.watchdog = rounds
		}
	}
}

// ---- the degraded-mode report ----

// RecoveryReport summarises what a failure-injected run survived: which
// cores died and when, what the scheduler migrated and re-executed, and
// what the degradation cost in work and misses.  Attached to
// RunStats.Recovery (nil when failures are off); a pure function of
// (config, seed), pinned by the harness golden failure matrix.
type RecoveryReport struct {
	Seed           int64 `json:"seed"`
	DeadCores      []int `json:"dead_cores,omitempty"`      // in death order
	StragglerCores []int `json:"straggler_cores,omitempty"` // ascending
	SlowFactor     int64 `json:"slow_factor,omitempty"`
	CacheFaults    int   `json:"cache_faults,omitempty"`
	FaultedBlocks  int64 `json:"faulted_blocks,omitempty"`

	MigratedStrands int `json:"migrated_strands,omitempty"` // unstarted strands moved off dead cores
	KilledStrands   int `json:"killed_strands,omitempty"`   // in-flight strands unwound
	ReexecStrands   int `json:"reexec_strands,omitempty"`   // replacements plus their re-forked descendants
	RecoveryRounds  int `json:"recovery_rounds,omitempty"`  // rounds in which a kill-recovery ran

	FirstFailureClock int64 `json:"first_failure_clock,omitempty"`
	TotalOps          int64 `json:"total_ops"`  // operations granted to all strands
	ReexecOps         int64 `json:"reexec_ops"` // operations granted to recovery-tagged strands

	// PostFailureMissDelta[i] is the growth of level-(i+1) total misses
	// after the first failure event — the locality cost of the degraded
	// phase.  nil when no event fired.
	PostFailureMissDelta []int64 `json:"post_failure_miss_delta,omitempty"`
}

// ReexecWorkFraction is the share of all granted operations spent on
// re-executed (recovery-tagged) strands.
func (r *RecoveryReport) ReexecWorkFraction() float64 {
	if r.TotalOps <= 0 {
		return 0
	}
	return float64(r.ReexecOps) / float64(r.TotalOps)
}

func (r *RecoveryReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "recovery report (failure seed %d):\n", r.Seed)
	if len(r.DeadCores) > 0 {
		fmt.Fprintf(&b, "  dead cores: %v (first failure at clock %d)\n", r.DeadCores, r.FirstFailureClock)
		fmt.Fprintf(&b, "  recovery: %d migrated, %d killed in flight, %d re-executed strands over %d recovery rounds\n",
			r.MigratedStrands, r.KilledStrands, r.ReexecStrands, r.RecoveryRounds)
	} else {
		b.WriteString("  dead cores: none\n")
	}
	if len(r.StragglerCores) > 0 {
		fmt.Fprintf(&b, "  stragglers: %v at 1/%d budget\n", r.StragglerCores, r.SlowFactor)
	}
	if r.CacheFaults > 0 {
		fmt.Fprintf(&b, "  cache faults: %d (%d resident blocks dropped)\n", r.CacheFaults, r.FaultedBlocks)
	}
	fmt.Fprintf(&b, "  work: %d ops total, %d re-executed (%.2f%%)\n",
		r.TotalOps, r.ReexecOps, 100*r.ReexecWorkFraction())
	if len(r.PostFailureMissDelta) > 0 {
		b.WriteString("  post-failure miss delta:")
		for i, d := range r.PostFailureMissDelta {
			fmt.Fprintf(&b, " L%d=%d", i+1, d)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// report clones the run's recovery state into the externally visible
// RecoveryReport, computing the post-failure miss deltas from the baseline
// stamped at the first event.
func (f *failInj) report(e *engine) *RecoveryReport {
	rep := f.rep
	rep.DeadCores = append([]int(nil), f.rep.DeadCores...)
	rep.StragglerCores = append([]int(nil), f.rep.StragglerCores...)
	if f.missBase != nil {
		e.m.SyncReplay()
		rep.PostFailureMissDelta = make([]int64, len(e.slots))
		for i, level := range e.slots {
			var tot int64
			for _, sl := range level {
				tot += sl.cache.Stats.Misses
			}
			rep.PostFailureMissDelta[i] = tot - f.missBase[i]
		}
	}
	return &rep
}
