package core

import (
	"strings"
	"testing"

	"oblivhm/internal/hm"
)

func tracedRun(t *testing.T) *Trace {
	t.Helper()
	tr := &Trace{}
	m := hm.MustMachine(hm.HM4(4, 4))
	s := NewSim(m, WithTrace(tr))
	n := 1 << 12
	v := s.NewI64(n)
	s.Run(int64(2*n), func(c *Ctx) {
		c.PFor(n, 1, func(cc *Ctx, lo, hi int) {
			for i := lo; i < hi; i++ {
				v.Set(cc, i, 1)
			}
		})
		c.SpawnCGCSB(256, 8, func(cc *Ctx, idx int) { cc.Tick(100) })
	})
	return tr
}

func TestTraceRecordsDecisions(t *testing.T) {
	tr := tracedRun(t)
	counts := map[EventKind]int{}
	for _, e := range tr.Events {
		counts[e.Kind]++
	}
	if counts[EvAnchor] < 9 { // root + 8 CGC⇒SB subtasks
		t.Errorf("anchors recorded = %d, want >= 9", counts[EvAnchor])
	}
	if counts[EvChunk] == 0 {
		t.Error("no CGC chunk events recorded")
	}
	if counts[EvDone] == 0 {
		t.Error("no completion events recorded")
	}
	// Times are monotone non-decreasing (events are appended in engine
	// order and the clock never goes backwards).
	last := int64(0)
	for _, e := range tr.Events {
		if e.Time < last {
			t.Fatalf("trace time went backwards: %d after %d", e.Time, last)
		}
		last = e.Time
	}
}

func TestTraceSummaryAndTimeline(t *testing.T) {
	tr := tracedRun(t)
	sum := tr.Summary()
	for _, frag := range []string{"anchor", "chunk", "done", "anchors at L"} {
		if !strings.Contains(sum, frag) {
			t.Errorf("summary missing %q:\n%s", frag, sum)
		}
	}
	tl := tr.Timeline(16, 40)
	if !strings.Contains(tl, "core  0") || !strings.Contains(tl, "#") {
		t.Errorf("timeline missing content:\n%s", tl)
	}
	tr.Reset()
	if len(tr.Events) != 0 {
		t.Error("Reset left events")
	}
	if got := tr.Timeline(4, 10); !strings.Contains(got, "empty") {
		t.Errorf("empty trace timeline = %q", got)
	}
}

func TestTraceOffByDefault(t *testing.T) {
	m := hm.MustMachine(hm.MC3(2))
	s := NewSim(m)
	v := s.NewI64(64)
	s.Run(128, func(c *Ctx) {
		c.PFor(64, 1, func(cc *Ctx, lo, hi int) {
			for i := lo; i < hi; i++ {
				v.Set(cc, i, 1)
			}
		})
	})
	// Nothing to assert beyond "does not crash": tracing must be a strict
	// no-op when not configured.
}
