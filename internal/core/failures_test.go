package core

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"oblivhm/internal/hm"
)

// failWorkload is a restartable (idempotent) fork-join workload: every write
// is a pure function of the element index, so re-executing any killed strand
// from its spawn closure reproduces the same heap.  It mixes PFor chunks,
// recursive SB forks and enough Tick weight that runs span many rounds —
// failure events at small horizons always land mid-run.
func failWorkload(s *Session, n int) (I64, func(*Ctx)) {
	v := s.NewI64(n)
	var rec func(c *Ctx, lo, hi int)
	rec = func(c *Ctx, lo, hi int) {
		if hi-lo <= n/8 {
			c.PFor(hi-lo, 1, func(cc *Ctx, a, b int) {
				for i := a; i < b; i++ {
					cc.Tick(4)
					v.Set(cc, lo+i, int64(3*(lo+i)+1))
				}
			})
			return
		}
		mid := (lo + hi) / 2
		c.SpawnSB(
			Task{Space: int64(mid-lo) * 2, Label: "fw-left", Fn: func(cc *Ctx) { rec(cc, lo, mid) }},
			Task{Space: int64(hi-mid) * 2, Label: "fw-right", Fn: func(cc *Ctx) { rec(cc, mid, hi) }},
		)
	}
	return v, func(c *Ctx) {
		// The opening root-level PFor parks a long-lived chunk strand on
		// every core, so small-horizon failure events always find in-flight
		// work on whichever core they hit.
		c.PFor(n, 1, func(cc *Ctx, a, b int) {
			for i := a; i < b; i++ {
				cc.Tick(4)
				v.Set(cc, i, int64(3*i+1))
			}
		})
		rec(c, 0, n)
	}
}

func checkFailHeap(t *testing.T, s *Session, v I64, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if got := s.PeekI(v, i); got != int64(3*i+1) {
			t.Fatalf("v[%d] = %d, want %d (lost or corrupted work)", i, got, 3*i+1)
		}
	}
}

// failOutcome is everything a failure-injected run freezes.
type failOutcome struct {
	Steps    int64
	Sim      hm.Snapshot
	Recovery RecoveryReport
	Err      string
}

func runFailure(t *testing.T, cfg hm.Config, n int, opts ...Opt) failOutcome {
	t.Helper()
	m := hm.MustMachine(cfg)
	s := NewSim(m, opts...)
	v, root := failWorkload(s, n)
	// Anchor the root at the top-level cache so the opening PFor spans every
	// core — kills on any core then always find work to recover.
	space := cfg.Levels[len(cfg.Levels)-1].Capacity
	if space < int64(2*n) {
		space = int64(2 * n)
	}
	st, err := s.TryRunCold(space, root)
	if err != nil {
		return failOutcome{Err: err.Error()}
	}
	checkFailHeap(t, s, v, n)
	out := failOutcome{Steps: st.Steps, Sim: st.Sim}
	if st.Recovery != nil {
		out.Recovery = *st.Recovery
	}
	return out
}

var failPlan = FailurePlan{KillCores: 1, HorizonRounds: 8}

func TestFailuresKillAndRecover(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  hm.Config
	}{
		{"mc3", hm.MC3(8)}, {"hm4", hm.HM4(4, 4)}, {"hm5", hm.HM5(2, 2, 2)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 4; seed++ {
				out := runFailure(t, tc.cfg, 2048, WithFailures(seed, failPlan))
				if out.Err != "" {
					t.Fatalf("seed %d: run failed: %s", seed, out.Err)
				}
				r := out.Recovery
				if len(r.DeadCores) != 1 {
					t.Fatalf("seed %d: dead cores %v, want exactly 1", seed, r.DeadCores)
				}
				if r.KilledStrands+r.MigratedStrands == 0 {
					t.Errorf("seed %d: a core died but nothing was migrated or killed", seed)
				}
				if r.ReexecStrands < r.KilledStrands {
					t.Errorf("seed %d: reexec %d < killed %d", seed, r.ReexecStrands, r.KilledStrands)
				}
				if r.TotalOps <= 0 {
					t.Errorf("seed %d: TotalOps = %d, want > 0", seed, r.TotalOps)
				}
				if fr := r.ReexecWorkFraction(); fr < 0 || fr >= 1 {
					t.Errorf("seed %d: re-exec work fraction %v out of range", seed, fr)
				}
			}
		})
	}
}

// TestFailuresDeterministic: same config + seed → byte-identical schedule,
// recovery actions and metrics; different seeds pick different victims at
// least once.
func TestFailuresDeterministic(t *testing.T) {
	plan := FailurePlan{KillCores: 2, Stragglers: 2, SlowFactor: 3, CacheFaults: 2, HorizonRounds: 16}
	seen := map[string]bool{}
	for seed := int64(1); seed <= 6; seed++ {
		a := runFailure(t, hm.MC3(8), 2048, WithFailures(seed, plan))
		b := runFailure(t, hm.MC3(8), 2048, WithFailures(seed, plan))
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d not reproducible:\n%+v\n%+v", seed, a, b)
		}
		seen[a.Recovery.String()] = true
	}
	if len(seen) < 2 {
		t.Fatalf("6 seeds produced %d distinct failure schedules, want variety", len(seen))
	}
}

// TestFailuresNoopPlanMatchesDefault: attaching a failure domain that never
// fires (or a watchdog under budget) must not change a single metric —
// disabling the batching fast path is observably equivalent.
func TestFailuresNoopPlanMatchesDefault(t *testing.T) {
	base := runFailure(t, hm.HM4(4, 4), 2048)
	noop := runFailure(t, hm.HM4(4, 4), 2048, WithFailures(7, FailurePlan{}))
	wd := runFailure(t, hm.HM4(4, 4), 2048, WithWatchdog(1<<20))
	if base.Steps != noop.Steps || !reflect.DeepEqual(base.Sim, noop.Sim) {
		t.Errorf("empty failure plan changed metrics: steps %d vs %d", base.Steps, noop.Steps)
	}
	if noop.Recovery.TotalOps <= 0 {
		t.Errorf("noop plan: TotalOps = %d, want > 0", noop.Recovery.TotalOps)
	}
	if len(noop.Recovery.DeadCores) != 0 || noop.Recovery.ReexecOps != 0 {
		t.Errorf("noop plan reported failures: %+v", noop.Recovery)
	}
	if !reflect.DeepEqual(base, wd) {
		t.Errorf("under-budget watchdog changed the run:\n%+v\n%+v", base, wd)
	}
}

// TestFailuresStragglersInflateMakespan: slowing cores down must cost
// virtual time but never correctness.
func TestFailuresStragglersInflateMakespan(t *testing.T) {
	base := runFailure(t, hm.MC3(8), 2048)
	slow := runFailure(t, hm.MC3(8), 2048,
		WithFailures(3, FailurePlan{Stragglers: 4, SlowFactor: 4}))
	if slow.Err != "" {
		t.Fatalf("straggler run failed: %s", slow.Err)
	}
	if len(slow.Recovery.StragglerCores) != 4 || slow.Recovery.SlowFactor != 4 {
		t.Fatalf("straggler report wrong: %+v", slow.Recovery)
	}
	if slow.Steps <= base.Steps {
		t.Errorf("4 cores at 1/4 speed did not inflate makespan: %d vs %d", slow.Steps, base.Steps)
	}
}

// TestFailuresCacheFaults: transient faults drop resident blocks, count on
// the machine, and never violate miss monotonicity (composed with the
// invariant checker).
func TestFailuresCacheFaults(t *testing.T) {
	out := runFailure(t, hm.HM4(4, 4), 2048,
		WithFailures(5, FailurePlan{CacheFaults: 6, HorizonRounds: 32}), WithInvariants())
	if out.Err != "" {
		t.Fatalf("fault run failed: %s", out.Err)
	}
	if out.Recovery.CacheFaults != 6 {
		t.Fatalf("fired %d faults, want 6", out.Recovery.CacheFaults)
	}
	if out.Recovery.FirstFailureClock <= 0 {
		t.Errorf("FirstFailureClock = %d, want > 0", out.Recovery.FirstFailureClock)
	}
	if len(out.Recovery.PostFailureMissDelta) == 0 {
		t.Errorf("no post-failure miss deltas recorded")
	}
}

// TestFailuresComposeWithChaos: chaos perturbation + failure injection stay
// jointly deterministic per seed pair, with invariants checked every round.
func TestFailuresComposeWithChaos(t *testing.T) {
	plan := FailurePlan{KillCores: 1, CacheFaults: 2, HorizonRounds: 16}
	for seed := int64(1); seed <= 3; seed++ {
		a := runFailure(t, hm.MC3(8), 1024, WithChaos(seed), WithFailures(seed+10, plan))
		b := runFailure(t, hm.MC3(8), 1024, WithChaos(seed), WithFailures(seed+10, plan))
		if a.Err != "" {
			t.Fatalf("seed %d: chaos+failures run failed: %s", seed, a.Err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: chaos+failures not reproducible:\n%+v\n%+v", seed, a, b)
		}
		if len(a.Recovery.DeadCores) != 1 {
			t.Fatalf("seed %d: dead cores %v, want 1", seed, a.Recovery.DeadCores)
		}
	}
}

// TestFailuresSerializeParallelRounds: recovery serializes the epoch, so
// WithParallelRounds at any worker count is byte-identical to the serial
// failure run.
func TestFailuresSerializeParallelRounds(t *testing.T) {
	serial := runFailure(t, hm.MC3(8), 2048, WithFailures(2, failPlan))
	for _, w := range []int{2, 4, 8} {
		par := runFailure(t, hm.MC3(8), 2048, WithFailures(2, failPlan), WithParallelRounds(w))
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("workers=%d diverged from serial:\n%+v\n%+v", w, serial, par)
		}
	}
}

// TestFailuresWithStealing: the dead-core skip must hold on the full-scan
// (stealing) path too — no strand is ever stolen for a dead core.
func TestFailuresWithStealing(t *testing.T) {
	out := runFailure(t, hm.MC3(8), 2048, WithFailures(4, failPlan), WithStealing())
	if out.Err != "" {
		t.Fatalf("stealing+failures run failed: %s", out.Err)
	}
	if len(out.Recovery.DeadCores) != 1 {
		t.Fatalf("dead cores %v, want 1", out.Recovery.DeadCores)
	}
}

// TestWatchdogTurnsLivelockIntoError: a run that never finishes trips the
// watchdog as a typed *FailureError carrying forensics, instead of hanging.
func TestWatchdogTurnsLivelockIntoError(t *testing.T) {
	s := NewSim(hm.MustMachine(hm.MC3(4)), WithWatchdog(64))
	_, err := s.TryRun(1<<10, func(c *Ctx) {
		for {
			c.Tick(1)
		}
	})
	if !errors.Is(err, ErrWatchdog) {
		t.Fatalf("err = %v, want ErrWatchdog match", err)
	}
	var fe *FailureError
	if !errors.As(err, &fe) {
		t.Fatalf("err = %T, want *FailureError", err)
	}
	if fe.Kind != "watchdog" || fe.Forensics == nil || fe.Clock <= 0 {
		t.Fatalf("watchdog error incomplete: %+v", fe)
	}
	if fe.Recovery != nil {
		t.Fatalf("watchdog without WithFailures carried a recovery report")
	}
	if !IsRunFailure(err) {
		t.Fatal("FailureError not classified as run failure")
	}
}

// TestWatchdogWithFailuresCarriesRecovery: a watchdog trip during an
// injected run reports the recovery state accumulated so far.
func TestWatchdogWithFailuresCarriesRecovery(t *testing.T) {
	s := NewSim(hm.MustMachine(hm.MC3(8)),
		WithFailures(1, FailurePlan{KillCores: 1, HorizonRounds: 4}), WithWatchdog(64))
	_, err := s.TryRun(1<<10, func(c *Ctx) {
		c.PFor(8*64, 1, func(cc *Ctx, lo, hi int) {
			for {
				cc.Tick(1)
			}
		})
	})
	var fe *FailureError
	if !errors.As(err, &fe) {
		t.Fatalf("err = %v, want *FailureError", err)
	}
	if fe.Recovery == nil {
		t.Fatal("watchdog trip under WithFailures lost the recovery report")
	}
	if len(fe.Recovery.DeadCores) != 1 {
		t.Fatalf("recovery report at trip time: %+v, want 1 dead core", fe.Recovery)
	}
}

// TestFailurePlanValidation: nonsense plans are rejected before the run as
// kind-"plan" FailureErrors.
func TestFailurePlanValidation(t *testing.T) {
	for _, plan := range []FailurePlan{
		{KillCores: -1}, {Stragglers: -2}, {SlowFactor: -1}, {CacheFaults: -3}, {HorizonRounds: -4},
	} {
		s := NewSim(hm.MustMachine(hm.MC3(4)), WithFailures(1, plan))
		_, err := s.TryRun(64, func(c *Ctx) {})
		var fe *FailureError
		if !errors.As(err, &fe) || fe.Kind != "plan" {
			t.Fatalf("plan %+v: err = %v, want plan-kind *FailureError", plan, err)
		}
		if errors.Is(err, ErrWatchdog) {
			t.Fatalf("plan error matched ErrWatchdog")
		}
	}
}

// TestFailureErrorChains: the typed-error taxonomy stays errors.Is/As
// navigable across all four failure kinds.
func TestFailureErrorChains(t *testing.T) {
	cases := []struct {
		err   error
		is    error
		chain string
	}{
		{&FailureError{Kind: "watchdog", Clock: 320, Detail: "x"}, ErrWatchdog, "watchdog"},
		{&RunError{Label: "t", Value: ErrWatchdog}, ErrWatchdog, "run-wrapping-sentinel"},
	}
	for _, tc := range cases {
		if !errors.Is(tc.err, tc.is) {
			t.Errorf("%s: errors.Is failed for %v", tc.chain, tc.err)
		}
	}
	// As must discriminate between the failure types, never cross-match.
	var de *DeadlockError
	var ie *InvariantError
	var fe *FailureError
	werr := error(&FailureError{Kind: "watchdog"})
	if errors.As(werr, &de) || errors.As(werr, &ie) {
		t.Error("FailureError cross-matched Deadlock/Invariant")
	}
	if !errors.As(werr, &fe) {
		t.Error("FailureError failed to As-match itself")
	}
	for _, err := range []error{
		&RunError{}, &DeadlockError{}, &InvariantError{}, &FailureError{},
	} {
		if !IsRunFailure(err) {
			t.Errorf("%T not classified as run failure", err)
		}
	}
	if IsRunFailure(errors.New("misc")) {
		t.Error("plain error classified as run failure")
	}
}

// TestRecoveryReportString pins the report rendering to its load-bearing
// content: every section present, fractions formatted.
func TestRecoveryReportString(t *testing.T) {
	r := &RecoveryReport{
		Seed: 42, DeadCores: []int{3}, StragglerCores: []int{1, 5}, SlowFactor: 2,
		CacheFaults: 2, FaultedBlocks: 17, MigratedStrands: 4, KilledStrands: 2,
		ReexecStrands: 6, RecoveryRounds: 1, FirstFailureClock: 320,
		TotalOps: 1000, ReexecOps: 250, PostFailureMissDelta: []int64{10, 20, 30},
	}
	got := r.String()
	for _, want := range []string{
		"failure seed 42", "dead cores: [3]", "clock 320",
		"4 migrated", "2 killed in flight", "6 re-executed strands", "1 recovery rounds",
		"stragglers: [1 5] at 1/2 budget",
		"cache faults: 2 (17 resident blocks dropped)",
		"1000 ops total, 250 re-executed (25.00%)",
		"L1=10 L2=20 L3=30",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q:\n%s", want, got)
		}
	}
	if f := r.ReexecWorkFraction(); f != 0.25 {
		t.Errorf("ReexecWorkFraction = %v, want 0.25", f)
	}
	empty := &RecoveryReport{Seed: 7}
	if s := empty.String(); !strings.Contains(s, "dead cores: none") {
		t.Errorf("empty report rendering: %s", s)
	}
	if (&RecoveryReport{}).ReexecWorkFraction() != 0 {
		t.Error("zero-ops fraction not 0")
	}
}

// TestFailuresTraceEvents: failure actions appear in the trace with their
// dedicated kinds.
func TestFailuresTraceEvents(t *testing.T) {
	var tr Trace
	m := hm.MustMachine(hm.MC3(8))
	s := NewSim(m, WithTrace(&tr),
		WithFailures(1, FailurePlan{KillCores: 1, CacheFaults: 2, HorizonRounds: 8}))
	v, root := failWorkload(s, 2048)
	if _, err := s.TryRunCold(4096, root); err != nil {
		t.Fatal(err)
	}
	checkFailHeap(t, s, v, 2048)
	kinds := map[EventKind]int{}
	for _, ev := range tr.Events {
		kinds[ev.Kind]++
	}
	if kinds[EvCoreFail] != 1 {
		t.Errorf("corefail events = %d, want 1", kinds[EvCoreFail])
	}
	if kinds[EvFault] != 2 {
		t.Errorf("fault events = %d, want 2", kinds[EvFault])
	}
	if kinds[EvMigrate]+kinds[EvReexec] == 0 {
		t.Errorf("no migrate/reexec events recorded: %v", kinds)
	}
}

// TestFailuresSingleCoreMachine: KillCores is clamped to p-1, so a
// single-core machine never loses its only core.
func TestFailuresSingleCoreMachine(t *testing.T) {
	out := runFailure(t, hm.Seq(), 512, WithFailures(9, FailurePlan{KillCores: 3, HorizonRounds: 4}))
	if out.Err != "" {
		t.Fatalf("seq run failed: %s", out.Err)
	}
	if len(out.Recovery.DeadCores) != 0 {
		t.Fatalf("single-core machine lost cores: %v", out.Recovery.DeadCores)
	}
}
