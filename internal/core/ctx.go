package core

import (
	"math"
	"sync"

	"oblivhm/internal/hm"
)

// Ctx is the multicore-oblivious execution context handed to algorithm
// code.  It exposes exactly two things: word-granular memory access, and the
// paper's three scheduler hints (PFor = CGC, SpawnSB = SB, SpawnCGCSB =
// CGC⇒SB).  No machine parameter is reachable through it, which is the
// obliviousness boundary of the whole system.
type Ctx struct {
	s      *Session
	core   int
	anchor *hm.Cache // nil in native mode
	st     *strand   // nil in native mode
}

// ---- memory access ----

// LoadU loads the word at address a, charging one virtual operation.
func (c *Ctx) LoadU(a Addr) uint64 {
	if c.st != nil {
		c.st.charge(1)
		return c.s.mach.Load(c.core, a)
	}
	return c.s.nmem.load(a)
}

// StoreU stores v at address a, charging one virtual operation.
func (c *Ctx) StoreU(a Addr, v uint64) {
	if c.st != nil {
		c.st.charge(1)
		c.s.mach.Store(c.core, a, v)
		return
	}
	c.s.nmem.store(a, v)
}

// LoadF / StoreF are float64 views.
func (c *Ctx) LoadF(a Addr) float64     { return math.Float64frombits(c.LoadU(a)) }
func (c *Ctx) StoreF(a Addr, v float64) { c.StoreU(a, math.Float64bits(v)) }

// LoadI / StoreI are int64 views.
func (c *Ctx) LoadI(a Addr) int64     { return int64(c.LoadU(a)) }
func (c *Ctx) StoreI(a Addr, v int64) { c.StoreU(a, uint64(v)) }

// Tick charges n virtual operations of pure computation (no memory access).
func (c *Ctx) Tick(n int64) {
	if c.st != nil {
		c.st.charge(n)
	}
}

// serialize pauses a speculatively executing strand (parround.go) until the
// engine's commit walk reaches its core's current round: everything past
// this point may read or mutate scheduler state, which only the serial
// phases may touch.  No-op on a strand that is not speculating and in
// native mode, so the machinery calls it unconditionally.
//
// Two kinds of scheduler interaction remain serialize points: reads whose
// result changes the strand's own execution (waitJoin's pending check, the
// inline-spawn decision and epilogues, allocation), and anything under
// chaos/verify/reference/failures (those runs never speculate at all).
// Plain fork placements are NOT serialize points anymore: a speculating
// strand records them into its deferral buffer (deferFork) for the commit
// walk to replay at the exact serial round, and keeps running — but every
// fork loop still re-checks spec after each charge, because a charge can
// suspend the strand mid-loop and a later round boundary can resume it as a
// speculator.
func (c *Ctx) serialize() {
	if st := c.st; st != nil && st.spec {
		st.specReport(yieldMsg{kind: ySerialize})
	}
}

// newJoin allocates the join for a fork site.  The engine free list is
// engine state — two speculators (or a speculator and the engine thread)
// must never touch it at the same real instant — so a speculating strand
// gets a fresh local join instead.  Join identity is unobservable: the local
// join behaves identically and enters the free list when waitJoin recycles
// it on the engine thread.
func (c *Ctx) newJoin() *join {
	if st := c.st; st != nil && st.spec {
		return &join{}
	}
	return c.s.eng.newJoin()
}

// ---- CGC: coarse-grained contiguous scheduling ----

// PFor is a parallel for loop over [0, n) scheduled with the CGC hint: the
// index range is decomposed into contiguous segments of near-equal length,
// segment boundaries respect level-1 block boundaries (each segment scans at
// least B_1 words, idling cores if necessary), and the j-th segment runs on
// the j-th core under the shadow of the calling task's anchor cache.
//
// elemWords is the size of one loop element in words, so the scheduler can
// convert the block constraint into index units; body receives a contiguous
// subrange [lo, hi).
func (c *Ctx) PFor(n, elemWords int, body func(cc *Ctx, lo, hi int)) {
	if n <= 0 {
		return
	}
	if elemWords <= 0 {
		elemWords = 1
	}
	if c.st == nil {
		c.nativePFor(n, body)
		return
	}
	e := c.s.eng
	lo, hi := c.anchor.CoreLo, c.anchor.CoreHi
	k := hi - lo
	b1 := c.s.mach.Cfg.Levels[0].Block
	grain := int(b1) / elemWords
	if grain < 1 {
		grain = 1
	}
	nchunks := (n + grain - 1) / grain
	if nchunks > k {
		nchunks = k
	}
	if nchunks <= 1 {
		body(c, 0, n)
		return
	}
	// Chunk size rounded up to a grain multiple so segment boundaries land
	// on B_1 block boundaries (arrays are B_1-aligned).
	cs := (n + nchunks - 1) / nchunks
	cs = (cs + grain - 1) / grain * grain
	jn := c.newJoin()
	myChunk := -1
	for j := 0; j*cs < n; j++ {
		clo, chi := j*cs, (j+1)*cs
		if chi > n {
			chi = n
		}
		target := lo + j
		if target == c.core {
			myChunk = j
			continue
		}
		c.st.charge(1)
		clo2, chi2 := clo, chi
		fn := func(cc *Ctx) { body(cc, clo2, chi2) }
		words := int64(chi2-clo2) * int64(elemWords)
		// The charge can suspend the strand mid-loop, and a later round
		// boundary can resume it as a speculator — so re-check spec after
		// every charge.  A speculating strand records the fork for the
		// commit walk to replay at this exact round (admission-surviving
		// speculation, parround.go) and keeps running its pure stretch.
		if st := c.st; st.spec {
			rec := st.recov
			st.deferFork(func(e *engine) { e.forkChunk(target, jn, fn, words, rec) })
			continue
		}
		e.forkChunk(target, jn, fn, words, c.st.recov)
	}
	if myChunk >= 0 {
		clo, chi := myChunk*cs, (myChunk+1)*cs
		if chi > n {
			chi = n
		}
		body(c, clo, chi)
	}
	c.waitJoin(jn)
}

func (c *Ctx) nativePFor(n int, body func(cc *Ctx, lo, hi int)) {
	k := c.s.workers
	if k > n {
		k = n
	}
	if k <= 1 {
		body(c, 0, n)
		return
	}
	cs := (n + k - 1) / k
	var wg sync.WaitGroup
	for j := 0; j*cs < n; j++ {
		clo, chi := j*cs, (j+1)*cs
		if chi > n {
			chi = n
		}
		if !c.s.gov.tryAcquire() {
			body(c, clo, chi)
			continue
		}
		wg.Add(1)
		//oblivcheck:allow determinism: native-mode executor — real parallelism is the point; joined before return, failures funneled through noteNativeFailure
		go func(lo, hi int) {
			defer wg.Done()
			defer c.s.gov.release()
			defer func() {
				if r := recover(); r != nil {
					c.s.noteNativeFailure(r)
				}
			}()
			body(&Ctx{s: c.s}, lo, hi)
		}(clo, chi)
	}
	wg.Wait()
	c.s.rethrowNative()
}

// ---- SB: space-bound scheduling ----

// Task is a forked task with a declared space bound (the paper's s(τ), an
// upper bound in words on the task's working space).  Label is optional and
// only surfaces in failure diagnostics (RunError, deadlock forensics).
type Task struct {
	Space int64
	Fn    func(*Ctx)
	Label string
}

// SpawnSB forks the given tasks under the SB hint and waits for all of them.
// Each task τ' forked by a task anchored at a level-i cache λ is anchored at
// the least-loaded cache at the smallest level j <= i-1 with s(τ') <= C_j
// under the shadow of λ; tasks too big for level i-1 stay at λ.  A cache
// admits concurrently anchored tasks while their total space fits, queueing
// the rest in Q(λ).
func (c *Ctx) SpawnSB(tasks ...Task) {
	if len(tasks) == 0 {
		return
	}
	if c.st == nil {
		c.nativeSpawn(tasks)
		return
	}
	e := c.s.eng
	lam := c.anchor
	i := lam.Level
	if i == 1 || lam.CoreHi-lam.CoreLo == 1 {
		for _, t := range tasks {
			t.Fn(c)
		}
		return
	}
	// A single forked task that the scheduler would start right here runs
	// inline on the parent strand (same schedule, no strand round-trip).
	// inlineSB reads and mutates scheduler state, so serialize first — the
	// inline decision changes the parent's own execution and cannot be
	// deferred.
	if len(tasks) == 1 {
		c.serialize()
		if c.inlineSB(tasks[0]) {
			return
		}
	}
	jn := c.newJoin()
	for _, t := range tasks {
		c.st.charge(1)
		// Re-check spec after the charge (see PFor): a speculating strand
		// defers the placement to the commit walk and keeps going.
		if st := c.st; st.spec {
			rec := st.recov
			st.deferFork(func(e *engine) { e.forkSB(lam, jn, t, rec) })
			continue
		}
		e.forkSB(lam, jn, t, c.st.recov)
	}
	c.waitJoin(jn)
}

// ---- CGC⇒SB scheduling ----

// SpawnCGCSB forks m uniform subtasks, each with the same space bound, and
// waits for all of them.  Per the paper: with the parent anchored at λ, the
// scheduler finds the smallest level i with C_i >= space and the smallest
// level j with at most m level-j caches under the shadow of λ, and
// distributes the subtasks evenly and contiguously across the level-t caches
// under λ for t = max(i, j).
func (c *Ctx) SpawnCGCSB(space int64, m int, task func(cc *Ctx, idx int)) {
	if m <= 0 {
		return
	}
	if c.st == nil {
		tasks := make([]Task, m)
		for idx := 0; idx < m; idx++ {
			id := idx
			tasks[idx] = Task{Space: space, Fn: func(cc *Ctx) { task(cc, id) }}
		}
		c.nativeSpawn(tasks)
		return
	}
	e := c.s.eng
	lam := c.anchor
	if lam.CoreHi-lam.CoreLo == 1 || m == 1 {
		for idx := 0; idx < m; idx++ {
			task(c, idx)
		}
		return
	}
	// The level computation below reads only immutable machine structure, so
	// a speculating strand may run it; the state-dependent placement of each
	// child is what defers (see PFor).
	t := 1
	i := 1
	if !e.flat {
		i = e.m.SmallestFit(space)
		if i > lam.Level {
			i = lam.Level
		}
		j := lam.Level
		for lv := 1; lv <= lam.Level; lv++ {
			if len(e.m.Under(lam, lv)) <= m {
				j = lv
				break
			}
		}
		t = i
		if j > t {
			t = j
		}
		if t > lam.Level {
			t = lam.Level
		}
	}
	jn := c.newJoin()
	if !e.flat && t > i && m < len(e.m.Under(lam, i)) && i < lam.Level {
		// Small fan-out (fewer subtasks than level-i caches): the paper's
		// even-contiguous distribution at level t would pin recursive binary
		// forks at λ forever.  This is the "generate a sufficient number of
		// tasks through recursive forking" case (§III-C): place the few
		// subtasks SB-style at the least-loaded level-i caches so the
		// recursion descends the hierarchy and later forks find enough
		// parallelism.
		for idx := 0; idx < m; idx++ {
			c.st.charge(1)
			id := idx
			fn := func(cc *Ctx) { task(cc, id) }
			if st := c.st; st.spec {
				rec := st.recov
				// The least-loaded slot scan is state-dependent: it runs
				// inside the closure, at replay time.
				st.deferFork(func(e *engine) {
					e.forkAt(e.leastLoadedSlot(lam, i), pending{space: space, jn: jn, fn: fn, label: "cgc-sb", recov: rec})
				})
				continue
			}
			e.forkAt(e.leastLoadedSlot(lam, i), pending{space: space, jn: jn, fn: fn, label: "cgc-sb", recov: c.st.recov})
		}
		c.waitJoin(jn)
		return
	}
	if t == lam.Level {
		// All subtasks stay at λ: round-robin its cores, nested in the
		// parent's reservation (see SpawnSB).
		for idx := 0; idx < m; idx++ {
			c.st.charge(1)
			id := idx
			fn := func(cc *Ctx) { task(cc, id) }
			// The round-robin core is a pure function of lam and idx, so it
			// may be computed while speculating.
			core := lam.CoreLo + idx%(lam.CoreHi-lam.CoreLo)
			if st := c.st; st.spec {
				rec := st.recov
				st.deferFork(func(e *engine) { e.forkNested(lam, core, jn, fn, space, "cgc-sb", rec) })
				continue
			}
			e.forkNested(lam, core, jn, fn, space, "cgc-sb", c.st.recov)
		}
		c.waitJoin(jn)
		return
	}
	targets := e.m.Under(lam, t)
	d := len(targets)
	for idx := 0; idx < m; idx++ {
		c.st.charge(1)
		id := idx
		fn := func(cc *Ctx) { task(cc, id) }
		// The even-contiguous target cache is immutable machine structure;
		// only the admission decision inside forkAt is engine state.
		slot := e.slotOf(targets[idx*d/m])
		if st := c.st; st.spec {
			rec := st.recov
			st.deferFork(func(e *engine) {
				e.forkAt(slot, pending{space: space, jn: jn, fn: fn, label: "cgc-sb", recov: rec})
			})
			continue
		}
		e.forkAt(slot, pending{space: space, jn: jn, fn: fn, label: "cgc-sb", recov: c.st.recov})
	}
	c.waitJoin(jn)
}

func (c *Ctx) nativeSpawn(tasks []Task) {
	var wg sync.WaitGroup
	for i, t := range tasks {
		if i == len(tasks)-1 || !c.s.gov.tryAcquire() {
			t.Fn(c)
			continue
		}
		wg.Add(1)
		//oblivcheck:allow determinism: native-mode executor — real parallelism is the point; joined before return, failures funneled through noteNativeFailure
		go func(fn func(*Ctx)) {
			defer wg.Done()
			defer c.s.gov.release()
			defer func() {
				if r := recover(); r != nil {
					c.s.noteNativeFailure(r)
				}
			}()
			fn(&Ctx{s: c.s})
		}(t.Fn)
	}
	wg.Wait()
	c.s.rethrowNative()
}

// waitJoin parks the calling strand until all children of jn have finished.
func (c *Ctx) waitJoin(jn *join) {
	// jn.pending is scheduler state: a speculatively executing strand (a
	// speculator picked mid-inline-chunk, whose fork pre-dates the epoch)
	// must pause HERE, before the park decision — reading pending during the
	// execution phase would see a value from the wrong virtual round (a
	// sibling's completion may commit earlier than this strand's report
	// round, or not yet have committed), silently forking the schedule.
	c.serialize()
	if jn.pending > 0 {
		jn.waiter = c.st
		// Record the join for failure recovery: a kill of this strand while
		// parked must orphan the join (killStrand), or its last child's
		// completion would resurrect the dead strand.
		c.st.waitingOn = jn
		c.st.park()
		c.st.waitingOn = nil
	}
	if c.st.spec {
		// Resumed into a speculative phase (the strand was re-enqueued when
		// its join completed, then picked as a speculator): the free list is
		// engine state, so park the recycle on the strand — the conductor
		// collects it at the end of the phase.  At most one can accumulate:
		// reaching a second waitJoin passes the serialize above, which pauses
		// the speculator until the commit walk consumes it (clearing spec),
		// so the later join is recycled through putJoin normally.
		c.st.putJn = jn
		return
	}
	c.s.eng.putJoin(jn)
}

// Session returns the owning session (for allocation from inside a task).
func (c *Ctx) Session() *Session { return c.s }
