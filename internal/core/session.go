// Package core implements the multicore-oblivious runtime of Chowdhury,
// Silvestri, Blakeley and Ramachandran (IPDPS 2010): a run-time scheduler
// that interprets the paper's three scheduler hints —
//
//   - CGC (coarse-grained contiguous) for parallel for loops,
//   - SB (space-bound) for recursive fork-join tasks with declared space
//     bounds, and
//   - CGC⇒SB for recursive forks with large fan-out,
//
// on top of either a simulated HM machine (package hm; deterministic
// virtual-time execution with per-level cache-miss accounting) or native
// goroutines (real execution, for correctness checks and wall-clock
// benchmarks).
//
// The obliviousness boundary is the Ctx type: algorithm code receives a
// *Ctx and can only issue memory accesses and hints through it.  Every
// machine parameter (p, h, C_i, B_i) is consumed exclusively by the
// scheduler behind that boundary, exactly as in the paper's model.
package core

import (
	"fmt"
	"runtime"
	"sync"

	"oblivhm/internal/hm"
)

// Addr is a word address in the session's shared memory.
type Addr = hm.Addr

// Session owns a memory space and an executor.  Create one with NewSim (to
// run on a simulated HM machine) or NewNative (to run on real goroutines),
// allocate arrays, then call Run one or more times.
type Session struct {
	mach    *hm.Machine // nil in native mode
	eng     *engine     // nil in native mode
	nmem    *nativeMem  // native backing store
	workers int         // native parallelism
	gov     *governor   // native goroutine governor

	nmu   sync.Mutex // guards nfail (native goroutines run concurrently)
	nfail any        // first panic recovered from a native worker goroutine
}

// nm returns the native memory, which exists only in native sessions.
func (s *Session) nm() *nativeMem { return s.nmem }

// Opt configures a session.
type Opt func(*Session)

// WithQuantum sets the virtual-time quantum (operations per core per
// lockstep round) of a simulated session.  Smaller quanta interleave cores
// more finely at higher simulation cost.  Default 32.
func WithQuantum(q int64) Opt {
	return func(s *Session) {
		if s.eng != nil && q > 0 {
			s.eng.quantum = q
		}
	}
}

// WithFlatScheduler disables anchoring above level 1: every SB / CGC⇒SB
// task is treated as if only private L1 caches existed, so tasks are spread
// across all cores with no regard for shared-cache reuse.  This is the
// "proportionate slice" baseline of paper §II used by the scheduler
// ablation experiment (E13).
func WithFlatScheduler() Opt {
	return func(s *Session) {
		if s.eng != nil {
			s.eng.flat = true
		}
	}
}

// WithParallel enables the parallel cache-replay backend on a simulated
// session: the scheduler and the algorithm code stay on the calling
// goroutine — so the frozen determinism contract holds by construction —
// while the cache-hierarchy simulation, the dominant cost of a run, streams
// to a pool of replay workers sharded by cache subtree plus an in-order
// chain worker for the shared upper levels (DESIGN.md §8).  Every metric
// (Steps, per-level miss counts, placements, steals, chaos streams) is
// byte-identical to the serial default.  workers <= 0 selects GOMAXPROCS.
func WithParallel(workers int) Opt {
	return func(s *Session) {
		if s.mach != nil {
			s.mach.EnableParallelReplay(workers)
		}
	}
}

// NewSim creates a session executing on the simulated HM machine m.
func NewSim(m *hm.Machine, opts ...Opt) *Session {
	s := &Session{mach: m}
	s.eng = newEngine(s, m)
	for _, o := range opts {
		o(s)
	}
	return s
}

// NewNative creates a session executing on real goroutines.  workers <= 0
// selects GOMAXPROCS.
func NewNative(workers int) *Session {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Session{workers: workers, gov: newGovernor(4 * workers), nmem: newNativeMem()}
}

// Simulated reports whether the session runs on a simulated HM machine.
func (s *Session) Simulated() bool { return s.mach != nil }

// Machine returns the underlying simulated machine, or nil in native mode.
func (s *Session) Machine() *hm.Machine { return s.mach }

// AllocWords reserves n words of shared memory and returns the base address.
func (s *Session) AllocWords(n int64) Addr {
	if s.mach != nil {
		return s.mach.Alloc(n)
	}
	return Addr(s.nmem.alloc(n))
}

// RunStats summarises one Run.
type RunStats struct {
	Steps int64       // virtual parallel steps (simulated sessions only)
	Sim   hm.Snapshot // machine counters at the end of the run (simulated only)

	// Recovery is the degraded-mode report of a failure-injected run
	// (WithFailures): dead cores, migrated and re-executed strands, the
	// re-executed work fraction and post-failure miss deltas.  nil when
	// failure injection is off.
	Recovery *RecoveryReport
}

// Run executes root to completion.  space is the space bound of the root
// task in words (the paper's S(n)); the root is anchored at the smallest
// cache that fits it (usually the top-level cache).  Run returns the
// machine counters accumulated during this run.  On failure it panics with
// the typed error TryRun would return (the historical contract; callers
// that want errors use TryRun).
func (s *Session) Run(space int64, root func(*Ctx)) RunStats {
	st, err := s.TryRun(space, root)
	if err != nil {
		panic(err)
	}
	return st
}

// TryRun is Run with panic-to-error recovery: a panicking task surfaces as
// a *RunError naming the failing strand's core, anchor and task label; a
// wedged schedule as a *DeadlockError carrying the full forensics report;
// a violated engine invariant (WithInvariants / WithChaos) as an
// *InvariantError.
func (s *Session) TryRun(space int64, root func(*Ctx)) (RunStats, error) {
	if s.mach == nil {
		return RunStats{}, s.nativeRun(root)
	}
	s.mach.ResetStats()
	err := s.eng.run(space, root)
	// Parallel replay (WithParallel) drains and parks its worker pool at the
	// end of every run — success or failure — so sessions need no Close and
	// a harness can create thousands without leaking goroutines.
	s.mach.StopReplay()
	if err != nil {
		return RunStats{}, err
	}
	s.mach.Steps = s.eng.clock
	st := RunStats{Steps: s.eng.clock, Sim: s.mach.Stats()}
	if s.eng.fail != nil {
		st.Recovery = s.eng.fail.report(s.eng)
	}
	return st, nil
}

// nativeRun executes root on the calling goroutine, recovering panics from
// it and from worker goroutines (noted by nativeSpawn/nativePFor) into a
// *RunError.
func (s *Session) nativeRun(root func(*Ctx)) (err error) {
	s.nmu.Lock()
	s.nfail = nil
	s.nmu.Unlock()
	defer func() {
		if r := recover(); r != nil {
			if re, ok := r.(*RunError); ok {
				err = re
				return
			}
			err = &RunError{Core: -1, Label: "native", Value: r}
		}
	}()
	root(&Ctx{s: s})
	return nil
}

// noteNativeFailure records the first panic recovered from a native worker
// goroutine; rethrowNative re-raises it on the forking goroutine once the
// fork's WaitGroup has drained.
func (s *Session) noteNativeFailure(r any) {
	s.nmu.Lock()
	if s.nfail == nil {
		s.nfail = r
	}
	s.nmu.Unlock()
}

func (s *Session) rethrowNative() {
	s.nmu.Lock()
	r := s.nfail
	s.nmu.Unlock()
	if r != nil {
		panic(&RunError{Core: -1, Label: "native", Value: r})
	}
}

// RunCold flushes all caches before running, so the measured traffic
// includes compulsory misses (the theorems assume input larger than the
// caches, i.e. a cold start).
func (s *Session) RunCold(space int64, root func(*Ctx)) RunStats {
	if s.mach != nil {
		s.mach.FlushCaches()
	}
	return s.Run(space, root)
}

// TryRunCold is RunCold with TryRun's panic-to-error recovery.
func (s *Session) TryRunCold(space int64, root func(*Ctx)) (RunStats, error) {
	if s.mach != nil {
		s.mach.FlushCaches()
	}
	return s.TryRun(space, root)
}

// governor bounds the number of live goroutines in native mode: fork sites
// spawn a real goroutine only while a token is available, otherwise they
// inline the child.  This keeps deep recursive algorithms (I-GEP forks at
// every level) from creating millions of goroutines.
type governor struct{ tokens chan struct{} }

func newGovernor(n int) *governor {
	g := &governor{tokens: make(chan struct{}, n)}
	for i := 0; i < n; i++ {
		g.tokens <- struct{}{}
	}
	return g
}

func (g *governor) tryAcquire() bool {
	select {
	case <-g.tokens:
		return true
	default:
		return false
	}
}

func (g *governor) release() { g.tokens <- struct{}{} }

func (s *Session) String() string {
	if s.mach != nil {
		return fmt.Sprintf("sim(%s)", s.mach.Cfg.String())
	}
	return fmt.Sprintf("native(workers=%d)", s.workers)
}

// WithStealing enables the work-stealing extension: a core whose run queue
// is empty may take an unstarted strand from the most loaded core.  This is
// an implementation of the paper's §VII suggestion that the hint set can be
// enhanced with a more general scheduler; it trades anchoring discipline
// (cache reuse) for load balance, and the E13-style benchmarks let the two
// be compared.
func WithStealing() Opt {
	return func(s *Session) {
		if s.eng != nil {
			s.eng.steal = true
		}
	}
}
