package core

// Parallel round execution (DESIGN.md §11): run the per-core strand work of
// many lockstep rounds on real OS threads at once, while keeping the
// schedule and every frozen observable byte-identical to the serial engine.
//
// The engine's rounds have a rigid structure the parallelism exploits:
//
//   - Run-to-completion within a core: the front strand of a non-empty run
//     queue receives the core's full quantum at the top of every round, and
//     strands enqueued behind it cannot run until it blocks or finishes.
//   - Front stability: other cores only push to the BACK of a queue, and
//     the stealing extension only takes from the back of queues holding at
//     least two strands, so nothing but the owning core's own turn can
//     change which strand is at the front.
//
// Together these mean that as long as a front strand performs only pure
// work — loads, stores, ticks — its execution for the next many rounds is
// already determined at the current round boundary: full quantum per round,
// no scheduler decisions in between.  An epoch therefore has three phases:
//
//  1. Serial pre-round (speculate): at a round boundary, pick the front
//     strand of each active core (in core order, up to prWorkers of them)
//     and resume them all concurrently.  Memory accesses divert into
//     per-core fan-in buffers (hm/fanin.go) with a mark at every round
//     boundary; data words are touched directly, which is sound because
//     concurrently runnable strands of a race-free fork-join program have
//     disjoint footprints (the property the chaos sweeps pin).
//  2. Parallel execution: each speculator runs pure rounds on its own OS
//     thread until it (a) exhausts the epoch's fixed sync window of
//     prEpochRounds rounds (reports yBudget), (b) reaches a scheduler
//     interaction whose RESULT its own execution depends on — a join wait,
//     an allocation, an inline-spawn decision (reports ySerialize and
//     pauses mid-round), or (c) returns (reports yDone).  A plain fork the
//     speculator itself causes is NOT an interaction anymore: its placement
//     is recorded into a per-strand deferral buffer (deferFork) tagged with
//     the current epoch round, and the speculator keeps running its pure
//     stretch — the fork's result is invisible to the parent until its next
//     waitJoin, which still serializes.  Each speculator pauses on its own
//     terms; pausing is never cross-coupled through shared flags, so epoch
//     depth is independent of OS thread scheduling.  The conductor collects
//     exactly one report per speculator; all of them are parked before the
//     commit starts.
//  3. Serial commit: the normal round loop continues, but a core with an
//     unconsumed speculator replays its recorded rounds instead of running
//     strands: at commit round r < specRound the turn is pop + flush the
//     round-r access chunk into the cache model + replay the forks the
//     speculator deferred in round r (live placement, exact serial state) +
//     requeue at the front — exactly the serial pop/grant/yield-budget/
//     requeue turn.  At the report round the speculator is consumed: a
//     yBudget reporter becomes a plain runnable front strand again (it is
//     parked in exactly the state a serial budget yield leaves it in); a
//     ySerialize reporter has its partial round flushed and same-round
//     deferred forks replayed, then is resumed live with its leftover
//     budget, its next real yield handled by the ordinary switch; a yDone
//     reporter has its partial round flushed and is finished.  Cores
//     without a speculator run plain serial turns throughout.  When the
//     active set is exactly the speculator set, bulkCommit collapses the
//     shared pure prefix of the replay — R rounds of identity pop/requeue
//     pairs — into one clock advance plus one multi-round flush
//     (FlushFanRounds), preserving the (round, core) flush order.
//
// Why every observable is byte-identical to serial:
//
//   - Schedule: all scheduler state (queues, loads, joins, slots, clock)
//     is mutated only in serial phases, in the serial order — speculation
//     touches none of it.  The commit walk visits cores in the same order
//     as the serial loop, and each replayed turn performs the same queue
//     transitions the serial turn would.
//   - Cache counters: chunks are flushed in (round, core) order — the
//     serial interleaving — and each flush either walks the hierarchy
//     in-line or bulk-feeds the PR 4 replay pipeline, which is itself
//     byte-identical by the stream-equivalence argument of DESIGN.md §8.
//     A speculator resumed live continues feeding the same stream from the
//     exact point its recording stopped, within the same turn.
//   - Clock and trace: speculative rounds emit no events (pure work never
//     does), and the commit walk advances e.clock once per round like any
//     other round, so events emitted by resumed strands carry the serial
//     timestamps.
//   - Budgets: every speculated round grants the front strand the full
//     quantum, which is what the serial engine grants the first strand of
//     a turn; overshoot forgiveness at boundaries matches chargeSlow.  The
//     solo-batch fast path never engages while speculators are outstanding
//     (their queued strands keep nrun >= 1), and its absence during an
//     epoch is unobservable by the same withReference() equivalence that
//     licenses its presence.
//   - Epoch depth: the sync window only decides how far ahead a speculator
//     records before pausing.  A strand consumed early at commit simply
//     continues live, executing the identical operations it would have
//     recorded, so speculation depth is a performance knob with no
//     observable effect — OS scheduling nondeterminism cannot leak in.
//
// Failure semantics: a panic inside a speculator is recovered and reported
// as its yDone; the commit surfaces it as a *RunError at the exact round
// the serial engine would have.  Chunks recorded beyond the failing round
// are discarded uncounted (the serial engine never executed them); as in
// the seed, memory contents after a failed run are unspecified.
//
// Chaos, invariant verification and withReference runs serialize the entire
// loop (their draw streams and checks are inherently order-sensitive), so
// WithChaos + WithParallelRounds is byte-identical by construction.

import (
	"math/bits"
	"runtime"
)

// prEpochRounds is the epoch sync window: the fixed number of whole rounds
// a speculator runs ahead before pausing, unless its own scheduler
// interaction pauses it earlier.  A fixed window makes epoch depth a pure
// function of the program — every pure speculator pauses at exactly this
// round — so bulkCommit's collapsible prefix does not depend on how the OS
// happens to schedule the worker threads (an abort-flag design, where the
// first reporter curtails everyone else, degenerates to 1-round epochs
// whenever the OS runs the speculators sequentially, e.g. on a single CPU).
// It also bounds fan-in buffer growth (quantum records per round per core)
// and the serial tail after an early interaction: once one speculator is
// consumed mid-window the rest of its window replays round by round, so the
// window is kept small enough that the tail stays short.
const prEpochRounds = 64

// WithParallelRounds runs the engine's lockstep rounds on a pool of real OS
// threads: at eligible round boundaries the front strands of up to workers
// active cores execute their upcoming rounds concurrently, and a serial
// commit phase replays the recorded rounds in the exact serial order.  The
// schedule and every frozen observable — Steps, per-cache miss counters,
// placements, steals, the trace stream — are byte-identical to the serial
// default.  Composes with WithParallel (the recorded access chunks feed the
// replay pipeline directly).  Chaos, invariant-checked and reference runs
// stay fully serial.  workers <= 0 selects GOMAXPROCS.
func WithParallelRounds(workers int) Opt {
	return func(s *Session) {
		if s.eng != nil {
			if workers <= 0 {
				workers = runtime.GOMAXPROCS(0)
			}
			s.eng.prWorkers = workers
		}
	}
}

// speculate runs phases 1 and 2 of an epoch: launch the front strand of
// each active core (core order, capped at prWorkers) into concurrent pure
// execution, collect one report per speculator, and leave the consumption
// of those reports to the commit turns of the following rounds.  Called at
// a round boundary with at least two active cores.
func (e *engine) speculate() {
	specs := e.specs[:0]
	mask := e.active
	for mask != 0 && len(specs) < e.prWorkers {
		c := bits.TrailingZeros64(mask)
		mask &= mask - 1
		specs = append(specs, e.runq[c].front())
	}
	e.specs = specs
	if len(specs) < 2 {
		return
	}
	if e.prReport == nil {
		// At most prWorkers reports are ever outstanding (one per
		// speculator, and speculators are capped at prWorkers and at the
		// core count).
		n := e.prWorkers
		if n > len(e.runq) {
			n = len(e.runq)
		}
		e.prReport = make(chan *strand, n)
	}
	e.m.StartRoundFanIn()
	for _, st := range specs {
		st.spec = true
		st.specRound = 0
		st.defFks, st.defNext = st.defFks[:0], 0
		st.grant = prEpochRounds - 1 // plus the initial budget = prEpochRounds rounds
		e.specOf[st.core] = st
		if !st.started {
			st.started = true
			if !st.spawned {
				st.spawned = true
				//oblivcheck:allow determinism: speculative strand launch — pure rounds recorded per core, replayed by the serial commit walk in (round, core) order, byte-identical to the serial schedule (see the package comment)
				go st.main()
			}
		}
		st.resume <- e.quantum
	}
	e.nspec = len(specs)
	// Collect exactly one report per speculator.  Receive order is OS
	// nondeterminism and is not consulted: reports live on the strands,
	// keyed by core.  Every speculator terminates its phase on its own —
	// at its scheduler interaction or at the fixed window — so no abort
	// signal is needed.
	for range specs {
		<-e.prReport
	}
	e.m.EndRoundFanIn()
	// Hand back join recycles the speculators could not perform themselves
	// (freeJoins is engine state).  Recycle order is unobservable.
	for _, st := range specs {
		if st.putJn != nil {
			e.putJoin(st.putJn)
			st.putJn = nil
		}
	}
	e.commitRound = 0
}

// commitCore replays core c's turn for the current commit round from its
// speculator's recording (phase 3).  See the package comment for the
// round-by-round correspondence with serial turns.
func (e *engine) commitCore(c int) bool {
	st := e.specOf[c]
	if e.commitRound < st.specRound {
		// A fully speculated pure round: the serial turn would pop the
		// front, grant it the quantum, and requeue it at the budget yield.
		// Forks the speculator deferred in this round replay after the
		// chunk flush: fork machinery touches no memory, so flushing the
		// whole round's accesses first is cache-equivalent, and events
		// carry round-granular clocks either way.
		if p := e.pop(c); p != st {
			e.specFail(p)
			return true
		}
		e.m.FlushFanChunk(c, e.commitRound)
		if st.defNext < len(st.defFks) && st.defFks[st.defNext].round == e.commitRound {
			st.applyDeferred(e, e.commitRound)
		}
		e.requeueFront(st)
		return true
	}
	// The report round: consume the speculator.
	e.specOf[c] = nil
	e.nspec--
	switch st.rep.kind {
	case yBudget:
		// Stopped exactly at a round boundary, still runnable: the strand is
		// parked precisely as a serial budget yield leaves it, so this turn
		// is a plain serial turn with it at the front.  (No deferral can be
		// tagged with the report round: a yBudget report happens at the
		// boundary after round specRound-1, so every recorded fork replayed
		// in an earlier commit turn.)
		st.spec = false
		return e.runCoreRest(c, e.quantum)
	case ySerialize:
		// Paused mid-round at a scheduler interaction: flush the partial
		// round, replay forks it deferred earlier in the same round, resume
		// it live with its leftover budget, and handle its next real yield
		// exactly as runStrand would.
		if p := e.pop(c); p != st {
			e.specFail(p)
			return true
		}
		e.m.FlushFanChunk(c, st.specRound)
		st.applyDeferred(e, st.specRound)
		st.spec = false
		st.grant = 0
		st.resume <- st.budget
		leftover := e.handleYield(st, <-st.yield)
		e.runCoreRest(c, leftover)
		return true
	case yDone:
		// Returned (or panicked) mid-round: flush the partial round, replay
		// same-round deferred forks (reachable only when the strand panicked
		// between a fork and its waitJoin — the serial engine would have
		// placed those children too), then finish the strand as the serial
		// yDone handler would and give the rest of the turn to whatever the
		// completion made runnable.
		if p := e.pop(c); p != st {
			e.specFail(p)
			return true
		}
		e.m.FlushFanChunk(c, st.specRound)
		st.applyDeferred(e, st.specRound)
		st.spec = false
		leftover := st.budget
		e.handleDone(st, st.rep.panicked)
		e.runCoreRest(c, leftover)
		return true
	}
	return true
}

// bulkCommit collapses the pure replay prefix shared by every speculator
// into one bulk transition.  Eligibility: the active set is exactly the
// speculator set (every turn of the next rounds is a replay turn), each
// speculator is at its queue front, and stealing is off (idle cores'
// stealFor turns could touch queues mid-range).  Under those conditions the
// next R rounds — R capped at each speculator's report round, at its first
// pending deferred fork, and at the watchdog horizon — consist solely of
// pop + flush + requeueFront turns: the pop/requeue pairs are identities on
// every queue, no events fire, and the loop's per-round checks are all
// vacuous (every round progresses, no failure can arise, the clock stays
// below the watchdog).  The only observable work is the chunk flushes in
// (round, core) order and R quantum ticks of the clock, both performed here
// in one step; FlushFanRounds keeps the exact (round, core) flush order
// internally.  Proven observably equivalent against withReference() by
// TestParallelRoundsMatchReference.
func (e *engine) bulkCommit() {
	if e.steal || bits.OnesCount64(e.active) != e.nspec {
		return
	}
	rmax := prEpochRounds
	cores := e.bulkCores[:0]
	mask := e.active
	for mask != 0 {
		c := bits.TrailingZeros64(mask)
		mask &= mask - 1
		st := e.specOf[c]
		if st == nil || e.runq[c].front() != st {
			e.bulkCores = cores
			return
		}
		if r := st.specRound - e.commitRound; r < rmax {
			rmax = r
		}
		if st.defNext < len(st.defFks) {
			if r := st.defFks[st.defNext].round - e.commitRound; r < rmax {
				rmax = r
			}
		}
		cores = append(cores, c)
	}
	e.bulkCores = cores
	if e.watchdog > 0 {
		// Advance only while the final clock stays strictly below the
		// horizon; the crossing round goes through the per-round loop so the
		// watchdog check fires exactly where the serial engine fires it.
		if r := int((e.wdClock - e.clock - 1) / e.quantum); r < rmax {
			rmax = r
		}
	}
	if rmax < 2 {
		return // nothing to collapse beyond the turn the scan runs anyway
	}
	e.m.FlushFanRounds(cores, e.commitRound, e.commitRound+rmax)
	e.clock += int64(rmax) * e.quantum
	e.commitRound += rmax
}

// deferFork records a fork the strand caused while speculating: the closure
// performs the placement against live engine state when the commit walk
// replays this strand's current round (admission-surviving speculation).
func (st *strand) deferFork(apply func(*engine)) {
	st.defFks = append(st.defFks, deferredFork{round: st.specRound, apply: apply})
}

// applyDeferred replays the strand's deferred forks tagged with the given
// epoch round, in record order — the serial fork order within the turn.
// Entries are cleared as they apply so consumed closures are not retained.
func (st *strand) applyDeferred(e *engine, round int) {
	for st.defNext < len(st.defFks) && st.defFks[st.defNext].round == round {
		st.defFks[st.defNext].apply(e)
		st.defFks[st.defNext] = deferredFork{}
		st.defNext++
	}
}

// specFail aborts the epoch on a front-stability violation — impossible by
// construction, kept as a typed failure rather than silent corruption.  The
// unconsumed speculators are removed from their run queues and stay parked
// (leaked, like blocked strands of any failed run): the conductor is gone,
// so a serial turn later in this round must not pop one and try to resume
// it.  The loop surfaces the error at the end of the round.
func (e *engine) specFail(got *strand) {
	if got != nil {
		e.requeueFront(got)
	}
	if e.failErr == nil {
		e.failErr = &InvariantError{
			Clock:  e.clock,
			Name:   "parallel-rounds-front",
			Detail: "speculated strand no longer at the front of its core's run queue at commit",
		}
	}
	e.nspec = 0
	for i := range e.specOf {
		st := e.specOf[i]
		if st == nil {
			continue
		}
		e.specOf[i] = nil
		// Raw deque ops on purpose: the engine's counters stay as they are
		// (the run is over at the end of this round), the queue just loses
		// the orphaned speculator wherever the corruption left it.
		q := &e.runq[i]
		for n := q.size(); n > 0; n-- {
			if p := q.popFront(); p != st {
				q.pushBack(p)
			}
		}
	}
}

// specSlow is the round-boundary crossing of a speculatively executing
// strand (the spec branch of chargeSlow): mark the completed round in the
// core's fan-in buffer and either continue into the next round locally or
// report to the conductor and pause.  The engine is not touched — clock and
// queue transitions happen at commit.
func (st *strand) specSlow() {
	e := st.eng
	for st.budget <= 0 {
		st.specRound++
		e.m.MarkRound(st.core)
		if st.rounds > 0 {
			st.rounds--
			st.budget = e.quantum // overshoot forgiven, as at every boundary
			continue
		}
		// Sync window exhausted: report and pause.  The commit walk
		// re-grants a positive budget (it treats the strand as a plain
		// front strand from its report round on), so the loop exits after
		// the resume.
		st.specReport(yieldMsg{kind: yBudget})
	}
}

// specReport hands the strand's report to the epoch conductor and pauses
// until the commit walk resumes it; the strand continues serially from the
// exact point it paused (st.spec is cleared by the engine before the
// resume).
func (st *strand) specReport(msg yieldMsg) {
	st.rep = msg
	st.eng.prReport <- st
	st.recv()
}
