package core

// Parallel round execution (DESIGN.md §11): run the per-core strand work of
// many lockstep rounds on real OS threads at once, while keeping the
// schedule and every frozen observable byte-identical to the serial engine.
//
// The engine's rounds have a rigid structure the parallelism exploits:
//
//   - Run-to-completion within a core: the front strand of a non-empty run
//     queue receives the core's full quantum at the top of every round, and
//     strands enqueued behind it cannot run until it blocks or finishes.
//   - Front stability: other cores only push to the BACK of a queue, and
//     the stealing extension only takes from the back of queues holding at
//     least two strands, so nothing but the owning core's own turn can
//     change which strand is at the front.
//
// Together these mean that as long as a front strand performs only pure
// work — loads, stores, ticks — its execution for the next many rounds is
// already determined at the current round boundary: full quantum per round,
// no scheduler decisions in between.  An epoch therefore has three phases:
//
//  1. Serial pre-round (speculate): at a round boundary, pick the front
//     strand of each active core (in core order, up to prWorkers of them)
//     and resume them all concurrently.  Memory accesses divert into
//     per-core fan-in buffers (hm/fanin.go) with a mark at every round
//     boundary; data words are touched directly, which is sound because
//     concurrently runnable strands of a race-free fork-join program have
//     disjoint footprints (the property the chaos sweeps pin).
//  2. Parallel execution: each speculator runs pure rounds on its own OS
//     thread until it (a) exhausts the epoch's round allowance or sees the
//     abort flag at a boundary (reports yBudget), (b) reaches a scheduler
//     interaction — a fork, a join recycle, an allocation (reports
//     ySerialize and pauses mid-round), or (c) returns (reports yDone).
//     The first report raises the abort flag, bounding the epoch at the
//     earliest interaction so the serial tail stays short.  The conductor
//     collects exactly one report per speculator; all of them are parked
//     before the commit starts.
//  3. Serial commit: the normal round loop continues, but a core with an
//     unconsumed speculator replays its recorded rounds instead of running
//     strands: at commit round r < specRound the turn is pop + flush the
//     round-r access chunk into the cache model + requeue at the front —
//     exactly the serial pop/grant/yield-budget/requeue turn.  At the
//     report round the speculator is consumed: a yBudget reporter becomes a
//     plain runnable front strand again (it is parked in exactly the state
//     a serial budget yield leaves it in); a ySerialize reporter has its
//     partial round flushed and is resumed live with its leftover budget,
//     its next real yield handled by the ordinary switch; a yDone reporter
//     has its partial round flushed and is finished.  Cores without a
//     speculator run plain serial turns throughout.
//
// Why every observable is byte-identical to serial:
//
//   - Schedule: all scheduler state (queues, loads, joins, slots, clock)
//     is mutated only in serial phases, in the serial order — speculation
//     touches none of it.  The commit walk visits cores in the same order
//     as the serial loop, and each replayed turn performs the same queue
//     transitions the serial turn would.
//   - Cache counters: chunks are flushed in (round, core) order — the
//     serial interleaving — and each flush either walks the hierarchy
//     in-line or bulk-feeds the PR 4 replay pipeline, which is itself
//     byte-identical by the stream-equivalence argument of DESIGN.md §8.
//     A speculator resumed live continues feeding the same stream from the
//     exact point its recording stopped, within the same turn.
//   - Clock and trace: speculative rounds emit no events (pure work never
//     does), and the commit walk advances e.clock once per round like any
//     other round, so events emitted by resumed strands carry the serial
//     timestamps.
//   - Budgets: every speculated round grants the front strand the full
//     quantum, which is what the serial engine grants the first strand of
//     a turn; overshoot forgiveness at boundaries matches chargeSlow.  The
//     solo-batch fast path never engages while speculators are outstanding
//     (their queued strands keep nrun >= 1), and its absence during an
//     epoch is unobservable by the same withReference() equivalence that
//     licenses its presence.
//   - Abort timing: the abort flag only decides how far ahead a speculator
//     records before pausing.  A strand consumed early at commit simply
//     continues live, executing the identical operations it would have
//     recorded, so speculation depth is a performance knob with no
//     observable effect — OS scheduling nondeterminism cannot leak in.
//
// Failure semantics: a panic inside a speculator is recovered and reported
// as its yDone; the commit surfaces it as a *RunError at the exact round
// the serial engine would have.  Chunks recorded beyond the failing round
// are discarded uncounted (the serial engine never executed them); as in
// the seed, memory contents after a failed run are unspecified.
//
// Chaos, invariant verification and withReference runs serialize the entire
// loop (their draw streams and checks are inherently order-sensitive), so
// WithChaos + WithParallelRounds is byte-identical by construction.

import (
	"math/bits"
	"runtime"
)

// prEpochRounds caps how many whole rounds one speculator may run ahead in
// a single epoch.  Epochs usually end much earlier — at the first
// speculator's scheduler interaction, via the abort flag — so the cap only
// bounds fan-in buffer growth on long pure phases (quantum words of
// recording per round per core).
const prEpochRounds = 1024

// WithParallelRounds runs the engine's lockstep rounds on a pool of real OS
// threads: at eligible round boundaries the front strands of up to workers
// active cores execute their upcoming rounds concurrently, and a serial
// commit phase replays the recorded rounds in the exact serial order.  The
// schedule and every frozen observable — Steps, per-cache miss counters,
// placements, steals, the trace stream — are byte-identical to the serial
// default.  Composes with WithParallel (the recorded access chunks feed the
// replay pipeline directly).  Chaos, invariant-checked and reference runs
// stay fully serial.  workers <= 0 selects GOMAXPROCS.
func WithParallelRounds(workers int) Opt {
	return func(s *Session) {
		if s.eng != nil {
			if workers <= 0 {
				workers = runtime.GOMAXPROCS(0)
			}
			s.eng.prWorkers = workers
		}
	}
}

// speculate runs phases 1 and 2 of an epoch: launch the front strand of
// each active core (core order, capped at prWorkers) into concurrent pure
// execution, collect one report per speculator, and leave the consumption
// of those reports to the commit turns of the following rounds.  Called at
// a round boundary with at least two active cores.
func (e *engine) speculate() {
	specs := e.specs[:0]
	mask := e.active
	for mask != 0 && len(specs) < e.prWorkers {
		c := bits.TrailingZeros64(mask)
		mask &= mask - 1
		specs = append(specs, e.runq[c].front())
	}
	e.specs = specs
	if len(specs) < 2 {
		return
	}
	if e.prReport == nil {
		e.prReport = make(chan *strand, len(e.runq))
	}
	e.prAbort.Store(false)
	e.m.StartRoundFanIn()
	for _, st := range specs {
		st.spec = true
		st.specRound = 0
		st.grant = prEpochRounds - 1 // plus the initial budget = prEpochRounds rounds
		e.specOf[st.core] = st
		if !st.started {
			st.started = true
			if !st.spawned {
				st.spawned = true
				//oblivcheck:allow determinism: speculative strand launch — pure rounds recorded per core, replayed by the serial commit walk in (round, core) order, byte-identical to the serial schedule (see the package comment)
				go st.main()
			}
		}
		st.resume <- e.quantum
	}
	e.nspec = len(specs)
	// Collect exactly one report per speculator.  Receive order is OS
	// nondeterminism and is not consulted: reports live on the strands,
	// keyed by core.  The first report raises the abort flag so the rest
	// pause at their next round boundary.
	for range specs {
		<-e.prReport
		e.prAbort.Store(true)
	}
	e.m.EndRoundFanIn()
	// Hand back join recycles the speculators could not perform themselves
	// (freeJoins is engine state).  Recycle order is unobservable.
	for _, st := range specs {
		if st.putJn != nil {
			e.putJoin(st.putJn)
			st.putJn = nil
		}
	}
	e.commitRound = 0
}

// commitCore replays core c's turn for the current commit round from its
// speculator's recording (phase 3).  See the package comment for the
// round-by-round correspondence with serial turns.
func (e *engine) commitCore(c int) bool {
	st := e.specOf[c]
	if e.commitRound < st.specRound {
		// A fully speculated pure round: the serial turn would pop the
		// front, grant it the quantum, and requeue it at the budget yield.
		if p := e.pop(c); p != st {
			e.specFail(p)
			return true
		}
		e.m.FlushFanChunk(c, e.commitRound)
		e.requeueFront(st)
		return true
	}
	// The report round: consume the speculator.
	e.specOf[c] = nil
	e.nspec--
	switch st.rep.kind {
	case yBudget:
		// Stopped exactly at a round boundary, still runnable: the strand is
		// parked precisely as a serial budget yield leaves it, so this turn
		// is a plain serial turn with it at the front.
		st.spec = false
		return e.runCoreRest(c, e.quantum)
	case ySerialize:
		// Paused mid-round at a scheduler interaction: flush the partial
		// round, resume it live with its leftover budget, and handle its
		// next real yield exactly as runStrand would.
		if p := e.pop(c); p != st {
			e.specFail(p)
			return true
		}
		e.m.FlushFanChunk(c, st.specRound)
		st.spec = false
		st.grant = 0
		st.resume <- st.budget
		leftover := e.handleYield(st, <-st.yield)
		e.runCoreRest(c, leftover)
		return true
	case yDone:
		// Returned (or panicked) mid-round: flush the partial round, then
		// finish the strand as the serial yDone handler would and give the
		// rest of the turn to whatever the completion made runnable.
		if p := e.pop(c); p != st {
			e.specFail(p)
			return true
		}
		e.m.FlushFanChunk(c, st.specRound)
		st.spec = false
		leftover := st.budget
		e.handleDone(st, st.rep.panicked)
		e.runCoreRest(c, leftover)
		return true
	}
	return true
}

// specFail aborts the epoch on a front-stability violation — impossible by
// construction, kept as a typed failure rather than silent corruption.  The
// unconsumed speculators stay parked (leaked, like blocked strands of any
// failed run).
func (e *engine) specFail(got *strand) {
	if got != nil {
		e.requeueFront(got)
	}
	if e.failErr == nil {
		e.failErr = &InvariantError{
			Clock:  e.clock,
			Name:   "parallel-rounds-front",
			Detail: "speculated strand no longer at the front of its core's run queue at commit",
		}
	}
	e.nspec = 0
	for i := range e.specOf {
		e.specOf[i] = nil
	}
}

// specSlow is the round-boundary crossing of a speculatively executing
// strand (the spec branch of chargeSlow): mark the completed round in the
// core's fan-in buffer and either continue into the next round locally or
// report to the conductor and pause.  The engine is not touched — clock and
// queue transitions happen at commit.
func (st *strand) specSlow() {
	e := st.eng
	for st.budget <= 0 {
		st.specRound++
		e.m.MarkRound(st.core)
		if st.rounds > 0 && !e.prAbort.Load() {
			st.rounds--
			st.budget = e.quantum // overshoot forgiven, as at every boundary
			continue
		}
		// Allowance exhausted or epoch aborted: report and pause.  The
		// commit walk re-grants a positive budget (it treats the strand as
		// a plain front strand from its report round on), so the loop exits
		// after the resume.
		st.specReport(yieldMsg{kind: yBudget})
	}
}

// specReport hands the strand's report to the epoch conductor and pauses
// until the commit walk resumes it; the strand continues serially from the
// exact point it paused (st.spec is cleared by the engine before the
// resume).
func (st *strand) specReport(msg yieldMsg) {
	st.rep = msg
	st.eng.prReport <- st
	st.recv()
}
