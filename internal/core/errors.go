package core

import (
	"errors"
	"fmt"
	"strings"
)

// Typed failures of the simulated engine.  A run can fail in three ways —
// a strand's task function panics, the scheduler wedges with every live
// strand blocked, or (with invariant checking enabled) the engine catches
// itself violating its own bookkeeping — and each failure mode carries
// enough structure for a caller to diagnose it without re-running under a
// debugger.  Session.Run keeps the historical contract and panics with the
// typed error; Session.TryRun and the harness entry points return it.

// RunError reports a panic recovered from a worker strand: the panic value
// together with where the scheduler had placed the failing task.
type RunError struct {
	Core        int    // core the strand was pinned to (-1 in native mode)
	AnchorLevel int    // cache level of the strand's anchor (0 if unknown)
	AnchorIndex int    // cache index within the level
	Label       string // task label: "root", "sb", "cgc-chunk", "cgc-sb", ...
	Value       any    // the recovered panic value
}

func (e *RunError) Error() string {
	where := fmt.Sprintf("core %d", e.Core)
	if e.AnchorLevel > 0 {
		where += fmt.Sprintf(", anchor L%d[%d]", e.AnchorLevel, e.AnchorIndex)
	}
	return fmt.Sprintf("core: task %q panicked (%s): %v", e.Label, where, e.Value)
}

// Unwrap exposes a panic value that was itself an error, so errors.Is /
// errors.As see through the recovery.
func (e *RunError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// InvariantError reports a violated engine invariant caught by the
// per-round checker (WithInvariants / WithChaos).
type InvariantError struct {
	Clock  int64
	Name   string // which invariant: "strand-conservation", "miss-monotone", ...
	Detail string
}

func (e *InvariantError) Error() string {
	return fmt.Sprintf("core: invariant %q violated at clock %d: %s", e.Name, e.Clock, e.Detail)
}

// ---- deadlock forensics ----

// CoreState is one core's scheduler state in a DeadlockReport.
type CoreState struct {
	Core       int
	QueueDepth int // runnable strands waiting on this core
	Load       int // live strands assigned to this core (runnable or blocked)
}

// BlockedStrand identifies one parked strand in a DeadlockReport.
type BlockedStrand struct {
	Core        int
	AnchorLevel int
	AnchorIndex int
	Label       string
}

// SlotState is the admission state of one cache slot in a DeadlockReport:
// occupancy versus capacity plus the space demands still waiting in Q(λ).
type SlotState struct {
	Level    int
	Index    int
	Used     int64 // words reserved by currently anchored tasks
	Capacity int64 // C_i in words
	Anchored int   // tasks currently holding reservations
	Queued   int   // tasks waiting in Q(λ)
	Demands  []int64
}

// Name renders the slot as "L<level>[<index>]".
func (s SlotState) Name() string { return fmt.Sprintf("L%d[%d]", s.Level, s.Index) }

// DeadlockReport is the structured diagnosis the engine assembles when a
// round completes without any strand making progress: which strands are
// parked where, what every core's queue looks like, and which cache slots
// hold reservations or starving queues.
type DeadlockReport struct {
	Clock    int64
	Live     int // strands not yet finished
	Runnable int // strands sitting in run queues
	Queued   int // tasks waiting in cache queues
	Cores    []CoreState
	Blocked  []BlockedStrand
	Slots    []SlotState // only slots with reservations or queued tasks
}

// Starved names the cache slots with tasks stuck in Q(λ) — the usual
// culprits of a wedged run.
func (r *DeadlockReport) Starved() []string {
	var out []string
	for _, s := range r.Slots {
		if s.Queued > 0 {
			out = append(out, s.Name())
		}
	}
	return out
}

func (r *DeadlockReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "core: deadlock at clock %d: %d live strands (%d runnable, %d blocked), %d queued tasks\n",
		r.Clock, r.Live, r.Runnable, len(r.Blocked), r.Queued)
	if len(r.Blocked) > 0 {
		b.WriteString("  blocked strands:\n")
		for _, s := range r.Blocked {
			fmt.Fprintf(&b, "    core %d: anchor L%d[%d] task %q\n", s.Core, s.AnchorLevel, s.AnchorIndex, s.Label)
		}
	}
	b.WriteString("  cores (queue depth / live load):\n")
	for _, c := range r.Cores {
		if c.QueueDepth == 0 && c.Load == 0 {
			continue
		}
		fmt.Fprintf(&b, "    core %d: %d queued, %d live\n", c.Core, c.QueueDepth, c.Load)
	}
	if len(r.Slots) > 0 {
		b.WriteString("  cache slots under pressure:\n")
		for _, s := range r.Slots {
			fmt.Fprintf(&b, "    %s: used %d/%d words, %d anchored, %d queued", s.Name(), s.Used, s.Capacity, s.Anchored, s.Queued)
			if len(s.Demands) > 0 {
				fmt.Fprintf(&b, " (pending space demands: %v)", s.Demands)
			}
			b.WriteByte('\n')
		}
	}
	if starved := r.Starved(); len(starved) > 0 {
		fmt.Fprintf(&b, "  starved: %s\n", strings.Join(starved, ", "))
	}
	return b.String()
}

// DeadlockError wraps a DeadlockReport as the error returned (or panicked,
// via Session.Run) when the engine's backstop trips.
type DeadlockError struct {
	Report DeadlockReport
}

func (e *DeadlockError) Error() string { return strings.TrimRight(e.Report.String(), "\n") }

// ---- failure injection ----

// ErrWatchdog is the sentinel a watchdog-tripped *FailureError matches via
// errors.Is, so callers can branch on "the run livelocked" without
// inspecting the structured fields.
var ErrWatchdog = errors.New("core: watchdog round budget exhausted")

// FailureError reports a failure-layer error: a watchdog trip (kind
// "watchdog" — the run was still live past the WithWatchdog round budget,
// a livelock turned into a typed error instead of a hang) or an invalid
// failure plan (kind "plan", rejected before the run starts).  Watchdog
// errors carry the scheduler forensics of the final round and, when failure
// injection was active, the recovery report accumulated so far.
type FailureError struct {
	Kind      string // "watchdog" | "plan"
	Clock     int64
	Detail    string
	Recovery  *RecoveryReport // nil unless WithFailures was active
	Forensics *DeadlockReport // nil for plan errors
}

func (e *FailureError) Error() string {
	switch e.Kind {
	case "watchdog":
		return fmt.Sprintf("core: watchdog tripped at clock %d: %s", e.Clock, e.Detail)
	case "plan":
		return fmt.Sprintf("core: invalid failure plan: %s", e.Detail)
	}
	return fmt.Sprintf("core: failure (%s): %s", e.Kind, e.Detail)
}

// Is matches watchdog-kind failures against the ErrWatchdog sentinel.
func (e *FailureError) Is(target error) bool {
	return target == ErrWatchdog && e.Kind == "watchdog"
}

// IsRunFailure reports whether err is one of the engine's typed run
// failures (RunError, DeadlockError, InvariantError, FailureError).  The
// harness uses it to decide which recovered panics become returned errors
// rather than crashes.
func IsRunFailure(err error) bool {
	switch err.(type) {
	case *RunError, *DeadlockError, *InvariantError, *FailureError:
		return true
	}
	return false
}
