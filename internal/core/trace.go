package core

import (
	"fmt"
	"sort"
	"strings"
)

// Scheduler tracing: with WithTrace, a simulated session records one event
// per scheduling decision — task anchorings (SB / CGC⇒SB), CGC chunk
// assignments, nested spawns, queue insertions in Q(λ), steals and
// completions — stamped with virtual time.  The trace renders as a summary
// (decisions per kind and cache level) or as a per-core text timeline,
// which is how the scheduler's behaviour in the EXPERIMENTS ablations was
// inspected.

// EventKind classifies a trace event.
type EventKind string

const (
	EvAnchor EventKind = "anchor" // task anchored at a cache (reserved space)
	EvChunk  EventKind = "chunk"  // CGC segment assigned to a core
	EvNested EventKind = "nested" // task run nested at its parent's cache
	EvQueue  EventKind = "queue"  // task enqueued in Q(λ) awaiting space
	EvSteal  EventKind = "steal"  // strand migrated by the stealing extension
	EvDone   EventKind = "done"   // strand completed

	// Failure-injection events (failures.go).
	EvCoreFail EventKind = "corefail" // fail-stop core death
	EvFault    EventKind = "fault"    // transient cache fault (level/cache, space = blocks dropped)
	EvMigrate  EventKind = "migrate"  // unstarted strand moved off a dead core
	EvReexec   EventKind = "reexec"   // killed in-flight strand re-executed on a survivor
)

// TraceEvent is one scheduling decision.
type TraceEvent struct {
	Time  int64
	Kind  EventKind
	Core  int
	Level int // cache level of the anchor (0 when not applicable)
	Cache int // cache index within the level
	Space int64
}

// Trace collects events for one or more runs on a session.
type Trace struct {
	Events []TraceEvent
}

// WithTrace attaches tr to a simulated session.
func WithTrace(tr *Trace) Opt {
	return func(s *Session) {
		if s.eng != nil {
			s.eng.trace = tr
		}
	}
}

func (e *engine) emit(kind EventKind, core, level, cache int, space int64) {
	if e.trace == nil {
		return
	}
	e.trace.Events = append(e.trace.Events, TraceEvent{
		Time: e.clock, Kind: kind, Core: core, Level: level, Cache: cache, Space: space,
	})
}

// Reset clears the recorded events.
func (t *Trace) Reset() { t.Events = t.Events[:0] }

// Summary renders decision counts per kind and, for anchors, per cache
// level.
func (t *Trace) Summary() string {
	kinds := map[EventKind]int{}
	anchorsPerLevel := map[int]int{}
	for _, e := range t.Events {
		kinds[e.Kind]++
		if e.Kind == EvAnchor {
			anchorsPerLevel[e.Level]++
		}
	}
	var b strings.Builder
	b.WriteString("scheduler trace summary:\n")
	var ks []string
	//oblivcheck:allow determinism: key collection — rendered order comes from the sort below
	for k := range kinds {
		ks = append(ks, string(k))
	}
	sort.Strings(ks)
	for _, k := range ks {
		fmt.Fprintf(&b, "  %-7s %d\n", k, kinds[EventKind(k)])
	}
	var lvls []int
	//oblivcheck:allow determinism: key collection — rendered order comes from the sort below
	for l := range anchorsPerLevel {
		lvls = append(lvls, l)
	}
	sort.Ints(lvls)
	for _, l := range lvls {
		fmt.Fprintf(&b, "  anchors at L%d: %d\n", l, anchorsPerLevel[l])
	}
	return b.String()
}

// Timeline renders a coarse per-core activity strip: one row per core,
// width buckets across the observed time span, with a mark in every bucket
// where the core received work ('#') or completed a strand ('.').
func (t *Trace) Timeline(cores, width int) string {
	if len(t.Events) == 0 || width <= 0 {
		return "(empty trace)\n"
	}
	maxT := int64(1)
	for _, e := range t.Events {
		if e.Time > maxT {
			maxT = e.Time
		}
	}
	grid := make([][]byte, cores)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for _, e := range t.Events {
		if e.Core < 0 || e.Core >= cores {
			continue
		}
		bkt := int(e.Time * int64(width-1) / maxT)
		switch e.Kind {
		case EvChunk, EvAnchor, EvNested, EvSteal:
			grid[e.Core][bkt] = '#'
		case EvDone:
			if grid[e.Core][bkt] == ' ' {
				grid[e.Core][bkt] = '.'
			}
		}
	}
	var b strings.Builder
	for i, row := range grid {
		fmt.Fprintf(&b, "core %2d |%s|\n", i, row)
	}
	return b.String()
}
