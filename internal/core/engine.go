package core

import (
	"math/bits"

	"oblivhm/internal/hm"
)

// The simulated executor is a cooperative fork-join engine over the virtual
// cores of an hm.Machine.  Exactly one strand (lightweight task) executes at
// any real instant — the engine hands a budget of virtual operations to one
// strand at a time via channels — so the simulation is fully deterministic:
// cores proceed in lockstep rounds of `quantum` operations, realising the
// model's "all cores run at the same rate" assumption.  Virtual parallel
// time is the number of rounds times the quantum.
//
// # Fast path and the determinism contract
//
// The engine freezes its observable behaviour — Steps, every per-cache miss
// counter, PlacedAt, Steals, and the trace event stream — while taking three
// shortcuts on the hot path (DESIGN.md §7):
//
//   - Batched budgets: when a strand is the only runnable strand anywhere
//     (e.nrun == 0 after it is popped), interleaving cannot be observed, so
//     the grant carries an effectively unbounded number of whole rounds.
//     The strand commits round boundaries locally in charge() — bumping the
//     clock and refilling its quantum without a channel crossing — and the
//     batch is truncated at the next boundary as soon as the strand makes
//     anything else runnable (every such transition funnels through
//     enqueue(), which sets batchAbort).  This is the adaptive quantum: one
//     live strand runs in arbitrarily long grants, concurrent strands fall
//     back to the exact per-round lockstep.
//   - Pooling: strand objects, their channels, and their goroutines are
//     recycled within a run.  A pooled goroutine parks on its resume channel
//     between assignments and keeps its grown stack, which matters for the
//     deeply recursive algorithms.
//   - Active-core scan: the round loop walks a bitmask of cores with
//     non-empty run queues (the machine model caps p at 64) instead of
//     scanning every runq slice; with stealing enabled it falls back to the
//     full scan because idle cores must get their stealFor turn.
//
// withReference() disables all of the above so tests can cross-check the
// fast path against the seed schedule operation for operation.

type yieldKind int

const (
	yBudget    yieldKind = iota // budget exhausted, still runnable
	yBlocked                    // parked on a join or a cache queue
	yRequeue                    // inline finish must reorder behind admitted strands
	yDone                       // function returned (or panicked)
	ySerialize                  // speculative strand reached a scheduler interaction (parround.go)
)

type yieldMsg struct {
	kind     yieldKind
	panicked any
}

// strand is one schedulable thread of the computation, pinned to a core.
type strand struct {
	eng     *engine
	core    int
	anchor  *hm.Cache // cache the strand's task is anchored at
	fn      func(*Ctx)
	ctx     *Ctx
	resume  chan int64
	yield   chan yieldMsg
	budget  int64
	rounds  int64 // whole rounds left in the current batch grant
	grant   int64 // batch rounds for the next resume, written by the engine
	started bool  // this assignment has received its first grant
	spawned bool  // a pooled goroutine is attached to the channels
	done    bool

	label    string     // task label carried into failure reports
	blockIdx int        // index in the engine's blocked list, -1 if not parked
	jn       *join      // join to signal on completion
	reserved *cacheSlot // space reservation to release on completion
	resSpace int64

	// Parallel-rounds speculation state (parround.go).  spec marks a strand
	// executing concurrently in an epoch's execution phase; specRound counts
	// the pure rounds it completed before reporting; rep carries the report
	// (written before the prReport send, read after the receive — the
	// channel is the happens-before edge); putJn parks a join recycle that
	// the strand could not hand to the engine while speculating; defFks and
	// defNext hold the forks the strand caused while speculating, recorded
	// instead of executed and replayed by the commit walk at their exact
	// serial rounds (appended by the speculator thread, read by the engine
	// thread — prReport is again the happens-before edge).
	spec      bool
	specRound int
	rep       yieldMsg
	putJn     *join
	defFks    []deferredFork
	defNext   int

	// Failure-recovery state (failures.go).  recov tags a strand whose work
	// is re-execution after a core death (replacements and their re-forked
	// descendants), feeding the re-executed work fraction; waitingOn is the
	// join the strand is parked on, so killStrand can orphan it; inline is
	// the stack of inline-spawn frames open on the strand's goroutine stack,
	// so a kill-panic's skipped epilogues can be rolled back.  All three are
	// only maintained while failures are enabled.
	recov     bool
	waitingOn *join
	inline    []inlineFrame
}

// deferredFork is one fork recorded by a speculating strand (parround.go):
// the epoch round it happened in and a closure that performs the placement
// against live engine state.  Placement decisions (least-loaded scans,
// admission checks) happen inside apply, at replay time, when the engine
// state is exactly what the serial schedule would present at that round.
type deferredFork struct {
	round int
	apply func(*engine)
}

// inlineFrame records the engine accounting of one open inline spawn
// (inlineSB / inlineAnchored): each frame holds a live/load increment, and
// anchored frames additionally a space reservation at slot.
type inlineFrame struct {
	slot  *cacheSlot
	space int64
}

// join is a fork-join counter: pending children plus the parked parent.
type join struct {
	pending int
	waiter  *strand
}

// cacheSlot carries the scheduler state attached to one cache: the space
// used by currently anchored tasks and the queue Q(λ) of tasks waiting for
// space (paper §III-B).
type cacheSlot struct {
	cache  *hm.Cache
	used   int64
	queue  []pending
	anchd  int // number of tasks currently anchored here
	placed int // lifetime count, for the stats/tests
}

// pending is a task admitted to Q(λ) but not yet running.  Held by value in
// the queue — spawning allocates nothing for it.
type pending struct {
	space int64
	fn    func(*Ctx)
	jn    *join
	label string
	recov bool // spawned by a recovery-tagged strand (failures.go)
}

// deque is a per-core run queue: strands leave at the front, join at the
// back, and a strand that exhausted its round budget is put back at the
// front without reallocating (the seed engine re-sliced on every round).
type deque struct {
	buf  []*strand
	head int
}

func (d *deque) size() int   { return len(d.buf) - d.head }
func (d *deque) empty() bool { return len(d.buf) == d.head }

// front peeks at the next strand to run without removing it.
func (d *deque) front() *strand {
	if d.empty() {
		return nil
	}
	return d.buf[d.head]
}

func (d *deque) pushBack(st *strand) { d.buf = append(d.buf, st) }

func (d *deque) pushFront(st *strand) {
	if d.head > 0 {
		d.head--
		d.buf[d.head] = st
		return
	}
	if len(d.buf) == 0 {
		d.buf = append(d.buf, st) // reuses the retained capacity
		return
	}
	d.buf = append([]*strand{st}, d.buf...)
}

func (d *deque) popFront() *strand {
	if d.empty() {
		return nil
	}
	st := d.buf[d.head]
	d.buf[d.head] = nil
	d.head++
	if d.head == len(d.buf) {
		d.buf, d.head = d.buf[:0], 0
	}
	return st
}

func (d *deque) popBack() *strand {
	if d.empty() {
		return nil
	}
	st := d.buf[len(d.buf)-1]
	d.buf[len(d.buf)-1] = nil
	d.buf = d.buf[:len(d.buf)-1]
	if d.head == len(d.buf) {
		d.buf, d.head = d.buf[:0], 0
	}
	return st
}

// batchRounds is the grant handed to a solo strand: effectively unbounded,
// truncated by the first enqueue.  Bounded only to keep clock arithmetic
// visibly safe (2^40 rounds of any quantum never overflows an int64 clock
// driven by real work).
const batchRounds = int64(1) << 40

type engine struct {
	s       *Session
	m       *hm.Machine
	quantum int64
	flat    bool // E13 ablation: ignore cache levels above L1 when placing
	steal   bool // extension: idle cores steal runnable strands (§VII)
	steals  int64
	trace   *Trace

	slots [][]*cacheSlot // mirrors m.ByLevel
	runq  []deque        // per-core runnable queues
	load  []int          // per-core count of live assigned strands
	live  int            // strands not yet done
	nrun  int            // strands currently sitting in run queues
	qd    int            // tasks sitting in cache queues
	clock int64

	active     uint64 // bitmask of cores with non-empty run queues
	batchAbort bool   // an enqueue happened during the outstanding grant
	reference  bool   // disable the fast paths (seed-equivalent schedule)
	pool       []*strand
	freeJoins  []*join
	failErr    error // first strand failure, as a typed *RunError

	chaos    *chaos    // nil unless WithChaos: deterministic fault injector
	verify   bool      // WithInvariants / WithChaos: per-round invariant checks
	blockedL []*strand // strands currently parked (joins), for forensics
	prevMiss [][]int64 // per-slot miss counters at the last verified round

	// Parallel-rounds state (parround.go).  prWorkers is the WithParallelRounds
	// setting (0 = off); the rest is per-epoch: specOf maps a core to its
	// speculator until the commit walk consumes its report, nspec counts
	// outstanding speculators, commitRound is the loop round index relative
	// to the epoch's start, and prReport collects reports from the
	// concurrently executing strands.
	prWorkers   int
	specOf      []*strand
	nspec       int
	commitRound int
	prReport    chan *strand
	specs       []*strand // epoch scratch
	bulkCores   []int     // bulkCommit scratch
	prSpecHook  func()    // test-only: runs right after speculate() arms an epoch

	// Failure injection (failures.go).  fail is the seeded failure domain
	// (nil unless WithFailures); watchdog is the round budget from
	// WithWatchdog (0 = off) and wdClock its clock equivalent, computed at
	// run start.
	fail     *failInj
	watchdog int64
	wdClock  int64
}

func newEngine(s *Session, m *hm.Machine) *engine {
	e := &engine{s: s, m: m, quantum: 32}
	e.slots = make([][]*cacheSlot, len(m.ByLevel))
	for i, level := range m.ByLevel {
		e.slots[i] = make([]*cacheSlot, len(level))
		for j, c := range level {
			e.slots[i][j] = &cacheSlot{cache: c}
		}
	}
	e.runq = make([]deque, m.Cores())
	e.load = make([]int, m.Cores())
	e.specOf = make([]*strand, m.Cores())
	return e
}

func (e *engine) slotOf(c *hm.Cache) *cacheSlot { return e.slots[c.Level-1][c.Index] }

// newJoin takes a join from the free list (joins churn at every fork site;
// waitJoin recycles them once the last child has signalled).
func (e *engine) newJoin() *join {
	if n := len(e.freeJoins); n > 0 {
		jn := e.freeJoins[n-1]
		e.freeJoins = e.freeJoins[:n-1]
		return jn
	}
	return &join{}
}

func (e *engine) putJoin(jn *join) {
	jn.pending, jn.waiter = 0, nil
	e.freeJoins = append(e.freeJoins, jn)
}

// newStrand creates (but does not start) a strand pinned to core, reusing a
// pooled strand (object, channels, goroutine) when one is free.
func (e *engine) newStrand(core int, anchor *hm.Cache, jn *join, fn func(*Ctx), label string) *strand {
	// Dead cores never receive new work: any placement that lands on one is
	// redirected to the least-loaded survivor under the same anchor.  The
	// anchor (and any reservation) stays put, exactly as under stealing.
	if f := e.fail; f != nil && f.dead&(1<<uint(core)) != 0 {
		core = e.redirectCore(anchor)
	}
	var st *strand
	if n := len(e.pool); n > 0 {
		st = e.pool[n-1]
		e.pool[n-1] = nil
		e.pool = e.pool[:n-1]
		st.core, st.anchor, st.fn, st.jn = core, anchor, fn, jn
		st.reserved, st.resSpace = nil, 0
		st.started, st.done = false, false
		st.budget, st.rounds, st.grant = 0, 0, 0
		st.spec, st.specRound, st.putJn = false, 0, nil
		st.defFks, st.defNext = st.defFks[:0], 0
		st.recov, st.waitingOn = false, nil
		st.inline = st.inline[:0]
		st.ctx.core, st.ctx.anchor = core, anchor
	} else {
		// Cap-1 channels: the protocol is strict ping-pong (at most one
		// message in flight per channel), and a buffered send lets the
		// sender proceed straight to its own blocking receive without the
		// unbuffered direct-handoff machinery.
		st = &strand{
			eng:    e,
			core:   core,
			anchor: anchor,
			fn:     fn,
			resume: make(chan int64, 1),
			yield:  make(chan yieldMsg, 1),
			jn:     jn,
		}
		st.ctx = &Ctx{s: e.s, core: core, anchor: anchor, st: st}
	}
	st.label = label
	st.blockIdx = -1
	e.live++
	e.load[core]++
	return st
}

// enqueue appends st to its core's run queue.  This is the single point at
// which anything becomes runnable, so it also truncates an outstanding solo
// batch grant: the next round boundary the granted strand crosses yields to
// the engine instead of continuing, restoring exact lockstep interleaving.
func (e *engine) enqueue(st *strand) {
	if st.blockIdx >= 0 {
		e.untrackBlocked(st)
	}
	e.runq[st.core].pushBack(st)
	e.nrun++
	e.active |= 1 << uint(st.core)
	e.batchAbort = true
}

// trackBlocked / untrackBlocked maintain the parked-strand list consumed by
// the deadlock forensics (swap-remove keyed by the index stored on the
// strand, so both are O(1)).  enqueue is the single point at which a parked
// strand becomes runnable again, so untracking there is complete.
func (e *engine) trackBlocked(st *strand) {
	st.blockIdx = len(e.blockedL)
	e.blockedL = append(e.blockedL, st)
}

func (e *engine) untrackBlocked(st *strand) {
	last := len(e.blockedL) - 1
	e.blockedL[st.blockIdx] = e.blockedL[last]
	e.blockedL[st.blockIdx].blockIdx = st.blockIdx
	e.blockedL[last] = nil
	e.blockedL = e.blockedL[:last]
	st.blockIdx = -1
}

// requeueFront puts a strand that exhausted its round budget back at the
// front of its queue (run-to-completion order within the core).
func (e *engine) requeueFront(st *strand) {
	e.runq[st.core].pushFront(st)
	e.nrun++
	e.active |= 1 << uint(st.core)
}

func (e *engine) pop(core int) *strand {
	st := e.runq[core].popFront()
	if st == nil {
		return nil
	}
	e.nrun--
	if e.runq[core].empty() {
		e.active &^= 1 << uint(core)
	}
	return st
}

// run executes root anchored at the smallest cache fitting space, returning
// a typed error (*RunError, *DeadlockError, *InvariantError) on failure.
func (e *engine) run(space int64, root func(*Ctx)) error {
	e.clock = 0
	e.failErr = nil
	e.nrun, e.active = 0, 0
	for i := range e.runq {
		e.runq[i] = deque{}
	}
	e.blockedL = e.blockedL[:0]
	e.nspec, e.commitRound = 0, 0
	for i := range e.specOf {
		e.specOf[i] = nil
	}
	if e.chaos != nil {
		e.chaos.deferred = e.chaos.deferred[:0]
	}
	if e.fail != nil {
		if err := e.fail.plan.validate(); err != nil {
			return err
		}
		e.fail.derive(e.m.Cores(), e.m)
	}
	e.wdClock = e.watchdog * e.quantum
	if e.verify {
		e.initInvariants()
	}
	defer e.drain()
	anchor := e.m.ByLevel[e.m.SmallestFit(space)-1][0]
	slot := e.slotOf(anchor)
	st := e.newStrand(anchor.CoreLo, anchor, nil, root, "root")
	st.reserved = slot
	st.resSpace = space
	slot.used += space
	slot.anchd++
	slot.placed++
	e.emit(EvAnchor, st.core, anchor.Level, anchor.Index, space)
	e.enqueue(st)
	if err := e.loop(); err != nil {
		return err
	}
	if e.verify {
		return e.checkRunEnd()
	}
	return nil
}

// drain releases the pooled worker goroutines at the end of a run (they
// would otherwise outlive the engine parked on their resume channels).
// Strands still blocked when a run fails leak exactly as in the seed.
func (e *engine) drain() {
	for i, st := range e.pool {
		if st.spawned {
			close(st.resume)
		}
		e.pool[i] = nil
	}
	e.pool = e.pool[:0]
}

func (e *engine) loop() error {
	scanAll := e.steal || e.reference
	// Parallel rounds are eligible only when nothing observes scheduling at
	// sub-round granularity: chaos draws, invariant checks, the reference
	// schedule and failure recovery (which mutates scheduler state between
	// rounds) are inherently serial, so those runs stay on the serial path
	// (and are byte-identical by construction).
	parOK := e.prWorkers >= 2 && e.chaos == nil && !e.verify && !e.reference && e.fail == nil
	for e.live > 0 || e.qd > 0 {
		// Chaos: admissions deferred at the previous round boundary fire
		// before the scan, so deferral perturbs timing without ever costing
		// liveness (the flush bypasses the deferral coin).
		if e.chaos != nil && len(e.chaos.deferred) > 0 {
			defs := e.chaos.deferred
			e.chaos.deferred = e.chaos.deferred[:0]
			for _, slot := range defs {
				e.admitNow(slot)
			}
		}
		// Failure events fire at round boundaries, before the scan: no strand
		// is mid-grant, so every live strand is in a queue or parked and the
		// recovery protocol sees a consistent scheduler state.
		recovered := false
		if e.fail != nil {
			recovered = e.fireFailures()
		}
		if parOK {
			if e.nspec == 0 && bits.OnesCount64(e.active) >= 2 {
				e.speculate()
				if e.nspec > 0 && e.prSpecHook != nil {
					e.prSpecHook()
				}
			}
			if e.nspec > 0 {
				// Collapse the pure replay prefix shared by every speculator
				// into one bulk transition (parround.go).  Re-checked every
				// round: an epoch capped by a deferred fork or a consumed
				// report may expose a second pure stretch.
				e.bulkCommit()
			}
		}
		progressed := false
		if scanAll {
			for c := range e.runq {
				if e.fail != nil && e.fail.dead&(1<<uint(c)) != 0 {
					continue
				}
				if e.runCore(c) {
					progressed = true
				}
			}
		} else {
			// Visit only cores with runnable strands, in core order.  The
			// mask is re-read after every visited core, so cores activated
			// mid-round by spawns still get their turn this round exactly as
			// in the full scan.
			for c := 0; c < len(e.runq); c++ {
				m := e.active >> uint(c)
				if m == 0 {
					break
				}
				c += bits.TrailingZeros64(m)
				if e.runCore(c) {
					progressed = true
				}
			}
		}
		e.clock += e.quantum
		e.commitRound++
		if e.failErr != nil {
			return e.failErr
		}
		if e.watchdog > 0 && e.clock >= e.wdClock && (e.live > 0 || e.qd > 0) {
			fr := e.forensics()
			fe := &FailureError{
				Kind:      "watchdog",
				Clock:     e.clock,
				Detail:    "round budget exhausted with work still live",
				Forensics: &fr,
			}
			if e.fail != nil {
				fe.Recovery = e.fail.report(e)
			}
			return fe
		}
		if !progressed && !recovered && (e.chaos == nil || len(e.chaos.deferred) == 0) {
			return &DeadlockError{Report: e.forensics()}
		}
		if e.verify {
			if err := e.checkInvariants(); err != nil {
				return err
			}
		}
	}
	return nil
}

// forensics assembles the structured deadlock report: per-core queue depths
// and loads, every parked strand's anchor, and the admission state of every
// cache slot holding reservations or starving queued tasks.
func (e *engine) forensics() DeadlockReport {
	r := DeadlockReport{Clock: e.clock, Live: e.live, Runnable: e.nrun, Queued: e.qd}
	for c := range e.runq {
		r.Cores = append(r.Cores, CoreState{Core: c, QueueDepth: e.runq[c].size(), Load: e.load[c]})
	}
	for _, st := range e.blockedL {
		b := BlockedStrand{Core: st.core, Label: st.label}
		if st.anchor != nil {
			b.AnchorLevel, b.AnchorIndex = st.anchor.Level, st.anchor.Index
		}
		r.Blocked = append(r.Blocked, b)
	}
	for _, level := range e.slots {
		for _, slot := range level {
			if slot.used == 0 && slot.anchd == 0 && len(slot.queue) == 0 {
				continue
			}
			s := SlotState{
				Level:    slot.cache.Level,
				Index:    slot.cache.Index,
				Used:     slot.used,
				Capacity: slot.cache.Cap * slot.cache.Block,
				Anchored: slot.anchd,
				Queued:   len(slot.queue),
			}
			for _, p := range slot.queue {
				s.Demands = append(s.Demands, p.space)
			}
			r.Slots = append(r.Slots, s)
		}
	}
	return r
}

// runCore gives core c its turn in the current round: up to quantum
// operations shared by the strands of its queue in order.  While an epoch's
// commit walk is in flight and this core has an unconsumed speculator, the
// turn replays the speculated round instead (parround.go).
func (e *engine) runCore(c int) bool {
	if e.nspec > 0 && e.specOf[c] != nil {
		return e.commitCore(c)
	}
	budget := e.quantum
	if e.chaos != nil {
		budget = e.chaos.budget(e.quantum)
	}
	if e.fail != nil {
		budget = e.fail.coreBudget(c, budget)
	}
	return e.runCoreRest(c, budget)
}

// runCoreRest runs the (rest of the) core's turn: strands of its queue in
// order, sharing the given budget.
func (e *engine) runCoreRest(c int, budget int64) bool {
	progressed := false
	for budget > 0 {
		st := e.pop(c)
		if st == nil && e.steal {
			st = e.stealFor(c)
		}
		if st == nil {
			break
		}
		progressed = true
		budget = e.runStrand(st, budget)
	}
	return progressed
}

// runStrand grants st up to budget operations and handles its yield,
// returning the unused budget.  When nothing else is runnable the grant is
// extended with batchRounds whole rounds (see the package comment).
func (e *engine) runStrand(st *strand, budget int64) int64 {
	st.grant = 0
	// Failures disable batching entirely: a locally committed batch would
	// skip the round boundaries failure events fire at.  A no-op plan is
	// still observably equivalent — batching never changes the schedule.
	if e.nrun == 0 && !e.reference && e.fail == nil && (e.chaos == nil || !e.chaos.coin(2)) {
		st.grant = batchRounds
		if e.watchdog > 0 {
			// Cap the batch at the watchdog horizon so a livelocked solo
			// strand returns control to the loop in time to be killed.
			// Observably equivalent: truncation is exactly what an enqueue
			// would do, and runs finishing under budget never hit the cap.
			rem := (e.wdClock-e.clock)/e.quantum + 1
			if rem < 1 {
				rem = 1
			}
			if st.grant > rem {
				st.grant = rem
			}
		}
	}
	e.batchAbort = false
	if !st.started {
		st.started = true
		if !st.spawned {
			st.spawned = true
			//oblivcheck:allow determinism: strand coroutine — lockstep resume/yield handoff, exactly one strand runs at a time, so the schedule is independent of OS interleaving
			go st.main()
		}
	}
	st.resume <- budget
	leftover := e.handleYield(st, <-st.yield)
	if f := e.fail; f != nil {
		used := budget - leftover
		f.rep.TotalOps += used
		if st.recov {
			f.rep.ReexecOps += used
		}
	}
	return leftover
}

// handleYield applies one strand yield to the scheduler state, returning the
// strand's unused budget.  Factored out of runStrand so the parallel-rounds
// commit walk (parround.go) can resume a paused speculator mid-turn and
// handle its next yield identically.
func (e *engine) handleYield(st *strand, msg yieldMsg) int64 {
	switch msg.kind {
	case yBudget:
		// Exhausted its grant; runnable again next round (front of queue
		// preserves run-to-completion order within the core).
		e.requeueFront(st)
		return 0
	case yBlocked:
		e.trackBlocked(st)
		return st.budget // leftover
	case yRequeue:
		// An inline finish admitted work onto this strand's core; the seed
		// schedule runs it first, so the strand rejoins at the back.
		e.enqueue(st)
		return st.budget
	case yDone:
		e.handleDone(st, msg.panicked)
		return st.budget
	}
	return 0
}

// handleDone records a strand failure (first one wins) and finishes it.
func (e *engine) handleDone(st *strand, panicked any) {
	if panicked != nil && e.failErr == nil {
		e.failErr = &RunError{
			Core:        st.core,
			AnchorLevel: st.anchor.Level,
			AnchorIndex: st.anchor.Index,
			Label:       st.label,
			Value:       panicked,
		}
	}
	e.finish(st)
}

// finish handles strand completion: join signalling, space release, queue
// admission, and recycling the strand into the pool.
func (e *engine) finish(st *strand) {
	st.done = true
	e.emit(EvDone, st.core, 0, 0, 0)
	e.live--
	e.load[st.core]--
	if st.reserved != nil {
		st.reserved.used -= st.resSpace
		st.reserved.anchd--
		e.admit(st.reserved)
	}
	if st.jn != nil {
		st.jn.pending--
		if st.jn.pending == 0 && st.jn.waiter != nil {
			w := st.jn.waiter
			st.jn.waiter = nil
			e.enqueue(w)
		}
	}
	st.fn, st.jn = nil, nil
	e.pool = append(e.pool, st)
}

// admit starts queued tasks at slot while capacity allows (paper: multiple
// tasks may be anchored simultaneously provided total space <= C_i).  Under
// chaos the admission pass may be deferred to the next round boundary (the
// loop flushes deferrals through admitNow, so nothing is ever lost) or the
// queue head rotated to the back, perturbing admission order and timing.
func (e *engine) admit(slot *cacheSlot) {
	if e.chaos != nil && len(slot.queue) > 0 {
		if e.chaos.coin(8) {
			e.chaos.deferSlot(slot)
			return
		}
		if len(slot.queue) > 1 && e.chaos.coin(4) {
			head := slot.queue[0]
			copy(slot.queue, slot.queue[1:])
			slot.queue[len(slot.queue)-1] = head
		}
	}
	e.admitNow(slot)
}

// admitNow is the admission pass proper, free of chaos perturbation.
func (e *engine) admitNow(slot *cacheSlot) {
	for len(slot.queue) > 0 {
		p := slot.queue[0]
		if slot.used+p.space > slot.cache.Cap*slot.cache.Block && slot.anchd > 0 {
			return
		}
		slot.queue[0] = pending{}
		slot.queue = slot.queue[1:]
		e.qd--
		e.startAnchored(slot, p)
	}
}

// startAnchored reserves space and creates the strand for task p anchored
// at slot's cache, on the least-loaded core in its shadow.
func (e *engine) startAnchored(slot *cacheSlot, p pending) {
	slot.used += p.space
	slot.anchd++
	slot.placed++
	core := e.leastLoadedCore(slot.cache)
	st := e.newStrand(core, slot.cache, p.jn, p.fn, p.label)
	st.reserved = slot
	st.resSpace = p.space
	e.markRecov(st, p.recov)
	e.emit(EvAnchor, st.core, slot.cache.Level, slot.cache.Index, p.space)
	e.enqueue(st)
}

// placeAnchored either starts task p at slot immediately (if it fits) or
// queues it in Q(λ).
func (e *engine) placeAnchored(slot *cacheSlot, p pending) {
	capWords := slot.cache.Cap * slot.cache.Block
	if len(slot.queue) == 0 && (slot.used+p.space <= capWords || slot.anchd == 0) {
		e.startAnchored(slot, p)
		return
	}
	slot.queue = append(slot.queue, p)
	e.qd++
	e.emit(EvQueue, -1, slot.cache.Level, slot.cache.Index, p.space)
}

// startsNow reports whether placeAnchored(slot, space) would start the task
// immediately rather than queueing it in Q(λ).
func (e *engine) startsNow(slot *cacheSlot, space int64) bool {
	capWords := slot.cache.Cap * slot.cache.Block
	return len(slot.queue) == 0 && (slot.used+space <= capWords || slot.anchd == 0)
}

// ---- fork placement bodies ----
//
// The per-child placement of every fork path lives in these helpers so the
// serial fork loops (ctx.go) and the parallel-rounds deferred-fork replay
// (parround.go) execute literally the same code: a speculating strand records
// a closure over one of these calls instead of running it, and the commit
// walk applies it at the exact serial round against live engine state.  Each
// helper counts its child on the join exactly once.

// forkAt places an anchored child task at the given slot (or queues it in
// Q(λ)).  The slot must be a pure function of immutable machine structure at
// the call site that chose it — state-dependent slot choices belong inside
// the deferred closure, not before it.
func (e *engine) forkAt(slot *cacheSlot, p pending) {
	p.jn.pending++
	e.placeAnchored(slot, p)
}

// forkNested creates a child strand nested in the parent's reservation at
// lam, pinned to core, and enqueues it.
func (e *engine) forkNested(lam *hm.Cache, core int, jn *join, fn func(*Ctx), space int64, lbl string, recov bool) {
	jn.pending++
	st := e.newStrand(core, lam, jn, fn, lbl)
	e.markRecov(st, recov)
	e.emit(EvNested, st.core, lam.Level, lam.Index, space)
	e.enqueue(st)
}

// forkSB is one SpawnSB child: anchored SB placement below lam, or nested at
// lam when the task is too big for the next level down (see SpawnSB).
func (e *engine) forkSB(lam *hm.Cache, jn *join, t Task, recov bool) {
	lbl := t.Label
	if lbl == "" {
		lbl = "sb"
	}
	switch {
	case e.flat:
		// Ablation: ignore every level above 1 — spread over L1s.
		e.forkAt(e.leastLoadedSlot(lam, 1), pending{space: t.Space, fn: t.Fn, jn: jn, label: lbl, recov: recov})
	case t.Space <= e.m.Cfg.Levels[lam.Level-2].Capacity:
		j := e.m.SmallestFit(t.Space)
		e.forkAt(e.leastLoadedSlot(lam, j), pending{space: t.Space, fn: t.Fn, jn: jn, label: lbl, recov: recov})
	default:
		// Too big for the next level down: stays under λ.  The paper queues
		// such tasks in Q(λ); since the forking parent itself holds λ's
		// reservation until its children finish, we run them nested inside
		// the parent's reservation (same shadow, no additional space) to
		// keep the discipline deadlock-free.
		e.forkNested(lam, e.leastLoadedCore(lam), jn, t.Fn, t.Space, lbl, recov)
	}
}

// forkChunk is one PFor chunk strand on its CGC target core.
func (e *engine) forkChunk(target int, jn *join, fn func(*Ctx), words int64, recov bool) {
	jn.pending++
	st := e.newStrand(target, e.m.CacheOf(target, 1), jn, fn, "cgc-chunk")
	e.markRecov(st, recov)
	e.emit(EvChunk, st.core, 1, target, words)
	e.enqueue(st)
}

// leastLoadedCore picks the core with the fewest live strands in the shadow
// of cache.  The scan runs in ascending core index over [CoreLo, CoreHi) and
// only a strictly smaller load displaces the running best, so ties resolve
// to the lowest-indexed core.  This total order is part of the determinism
// contract: placements must not depend on anything but engine state, which
// is what lets the parallel replay backend (WithParallel) reproduce the
// schedule byte for byte.  Chaos breaks the tie randomly instead — still
// among the least-loaded cores, so the placement rule itself is preserved.
func (e *engine) leastLoadedCore(c *hm.Cache) int {
	// Dead cores are excluded from the scan.  When the whole shadow is dead
	// the scan falls back to CoreLo and newStrand's redirect walks up the
	// hierarchy to a survivor.
	var dead uint64
	if e.fail != nil {
		dead = e.fail.dead
	}
	best, bestLoad := c.CoreLo, int(^uint(0)>>1)
	for i := c.CoreLo; i < c.CoreHi; i++ {
		if dead&(1<<uint(i)) != 0 {
			continue
		}
		if e.load[i] < bestLoad {
			best, bestLoad = i, e.load[i]
		}
	}
	if e.chaos != nil {
		cands := e.chaos.scratch[:0]
		for i := c.CoreLo; i < c.CoreHi; i++ {
			if dead&(1<<uint(i)) != 0 {
				continue
			}
			if e.load[i] == bestLoad {
				cands = append(cands, i)
			}
		}
		e.chaos.scratch = cands
		if len(cands) > 1 {
			best = e.chaos.pick(cands)
		}
	}
	return best
}

// leastLoadedSlot picks the cache slot minimising the load key
// used+len(queue) — reserved words plus tasks waiting in Q(λ), not reserved
// space alone — among the level-j caches under lambda.  Under yields those
// caches in ascending index order and only a strictly smaller key displaces
// the running best, so ties resolve to the lowest-indexed cache, the same
// deterministic total order leastLoadedCore pins.  Under chaos the tie is
// randomized among the slots sharing the minimal key.
func (e *engine) leastLoadedSlot(lambda *hm.Cache, j int) *cacheSlot {
	under := e.m.Under(lambda, j)
	var best *cacheSlot
	for _, c := range under {
		s := e.slotOf(c)
		if best == nil || s.used+int64(len(s.queue)) < best.used+int64(len(best.queue)) {
			best = s
		}
	}
	if e.chaos != nil && best != nil {
		key := best.used + int64(len(best.queue))
		cands := e.chaos.scratch[:0]
		for _, c := range under {
			s := e.slotOf(c)
			if s.used+int64(len(s.queue)) == key {
				cands = append(cands, c.Index)
			}
		}
		e.chaos.scratch = cands
		if len(cands) > 1 {
			best = e.slots[j-1][e.chaos.pick(cands)]
		}
	}
	return best
}

// strand goroutine body: a pooled worker loop.  Each iteration runs one
// assignment; between assignments the goroutine parks on the resume channel
// (keeping its grown stack), and exits when the engine closes the channel.
func (st *strand) main() {
	for {
		budget, ok := <-st.resume
		if !ok {
			return
		}
		st.budget = budget
		st.rounds = st.grant
		var failed any
		func() {
			defer func() {
				if r := recover(); r != nil {
					failed = r
				}
			}()
			st.fn(st.ctx)
		}()
		if st.spec {
			// Finished while speculating: report to the epoch conductor and
			// park at the top of the loop for the next assignment — the
			// commit walk finishes the strand (and surfaces the failure) at
			// its recorded round, without resuming this goroutine.
			st.rep = yieldMsg{kind: yDone, panicked: failed}
			st.eng.prReport <- st
			continue
		}
		st.yield <- yieldMsg{kind: yDone, panicked: failed}
	}
}

// recv blocks for the next grant and adopts its batch extension.  The
// poison grant (killStrand) unwinds the goroutine instead: the panic
// surfaces through the pooled worker loop's recover as a yDone.
func (st *strand) recv() {
	st.budget = <-st.resume
	if st.budget == poisonBudget {
		panic(killedStrand{})
	}
	st.rounds = st.grant
}

// charge consumes n operations of the strand's budget.  The decrement is
// the whole fast path and inlines into LoadU/StoreU/Tick; quantum
// exhaustion goes through chargeSlow.
func (st *strand) charge(n int64) {
	st.budget -= n
	if st.budget <= 0 {
		st.chargeSlow()
	}
}

// chargeSlow crosses round boundaries at quantum exhaustion: either locally
// — batch grant still open and nothing else runnable — or by yielding to
// the engine.  Overshoot is forgiven at every boundary exactly as when the
// engine re-grants: the new budget is a full quantum, not quantum minus the
// overdraft.
func (st *strand) chargeSlow() {
	if st.spec {
		st.specSlow()
		return
	}
	for st.budget <= 0 {
		e := st.eng
		if st.rounds > 0 && !e.batchAbort {
			st.rounds--
			e.clock += e.quantum
			st.budget = e.quantum
			continue
		}
		st.yield <- yieldMsg{kind: yBudget}
		st.recv()
	}
}

// park blocks the strand until the engine resumes it (join complete).
// Unreachable while speculating: every park is preceded by a serialize hook
// (waitJoin entry, fork entries) that pauses a speculator before the state
// reads deciding the park — a spec park here would mean that decision was
// made on stale scheduler state, so fail loudly (the panic surfaces through
// the speculator's yDone report as a *RunError) rather than corrupt the
// schedule.
func (st *strand) park() {
	if st.spec {
		panic("core: strand parked while speculating (missing serialize hook)")
	}
	st.yield <- yieldMsg{kind: yBlocked}
	st.recv()
}

// requeue yields the strand to the back of its core's queue, behind strands
// the inline finish admitted, and blocks until re-granted.  Unreachable
// while speculating for the same reason as park (inlineRejoin's queue check
// follows the inline epilogue serialize hook).
func (st *strand) requeue() {
	if st.spec {
		panic("core: strand requeued while speculating (missing serialize hook)")
	}
	st.yield <- yieldMsg{kind: yRequeue}
	st.recv()
}

// ---- inline leaf spawns ----

// inlineSB runs the single task t of a SpawnSB inline on the parent strand
// when the scheduler would have placed it on the parent's own core as the
// next strand to run, reporting whether it did.  The schedule is provably
// unchanged: with the parent's run queue empty, the seed engine would park
// the parent and immediately grant the child the parent's leftover budget on
// the same core; the child is never stealable (stealing disables this path),
// and on completion the parent either continues directly (queue still
// empty — the seed would pop it right back) or requeues itself behind
// whatever arrived (matching the seed's admit-then-wake order).  All
// engine accounting the child would have caused — live/load, reservation,
// placed counts, trace events, the charge(1) spawn cost — is replicated.
func (c *Ctx) inlineSB(t Task) bool {
	e := c.s.eng
	if e.reference || e.steal || !e.runq[c.core].empty() {
		return false
	}
	lam := c.anchor
	if e.flat {
		return c.inlineAnchored(e.leastLoadedSlot(lam, 1), t)
	}
	if t.Space <= e.m.Cfg.Levels[lam.Level-2].Capacity {
		j := e.m.SmallestFit(t.Space)
		return c.inlineAnchored(e.leastLoadedSlot(lam, j), t)
	}
	// Nested at λ: no reservation, same anchor.
	if e.leastLoadedCore(lam) != c.core {
		return false
	}
	c.st.charge(1)
	c.serialize() // the charge can suspend; a speculative wake must not touch e.live
	e.live++
	e.load[c.core]++
	if e.fail != nil {
		c.st.inline = append(c.st.inline, inlineFrame{})
	}
	e.emit(EvNested, c.core, lam.Level, lam.Index, t.Space)
	t.Fn(c) // child anchor and core equal the parent's
	// A speculator picked mid-inline-task reaches this epilogue without any
	// fork hook in between; the accounting below is engine state.
	c.serialize()
	if e.fail != nil {
		c.st.inline = c.st.inline[:len(c.st.inline)-1]
	}
	e.emit(EvDone, c.core, 0, 0, 0)
	e.live--
	e.load[c.core]--
	c.inlineRejoin()
	return true
}

// inlineAnchored is the anchored half of inlineSB: reserve space at slot,
// run the task under the child anchor, release and admit.
func (c *Ctx) inlineAnchored(slot *cacheSlot, t Task) bool {
	e := c.s.eng
	if !e.startsNow(slot, t.Space) || e.leastLoadedCore(slot.cache) != c.core {
		return false
	}
	c.st.charge(1)
	c.serialize() // as in inlineSB: the charge can suspend mid-machinery
	slot.used += t.Space
	slot.anchd++
	slot.placed++
	e.live++
	e.load[c.core]++
	if e.fail != nil {
		c.st.inline = append(c.st.inline, inlineFrame{slot: slot, space: t.Space})
	}
	e.emit(EvAnchor, c.core, slot.cache.Level, slot.cache.Index, t.Space)
	cc := &Ctx{s: c.s, core: c.core, anchor: slot.cache, st: c.st}
	t.Fn(cc)
	c.serialize() // mid-inline-task speculator: epilogue is engine state
	if e.fail != nil {
		c.st.inline = c.st.inline[:len(c.st.inline)-1]
	}
	e.emit(EvDone, c.core, 0, 0, 0)
	e.live--
	e.load[c.core]--
	slot.used -= t.Space
	slot.anchd--
	e.admit(slot)
	c.inlineRejoin()
	return true
}

// inlineRejoin restores the seed's post-join order: if the inline child's
// completion made anything runnable on this core (admitted tasks), the seed
// engine would run it before re-granting the joining parent, so the parent
// yields to the back of the queue.
func (c *Ctx) inlineRejoin() {
	if !c.s.eng.runq[c.core].empty() {
		c.st.requeue()
	}
}

// PlacedAt returns how many tasks have been anchored at the given cache
// level so far (CGC chunk strands are anchored at level 1 without a
// reservation and are not counted).  Used by the scheduler tests and the
// ablation experiment.
func (s *Session) PlacedAt(level int) int {
	if s.eng == nil {
		return 0
	}
	n := 0
	for _, slot := range s.eng.slots[level-1] {
		n += slot.placed
	}
	return n
}

// stealFor migrates a runnable strand from the most loaded core to the
// idle core c (the §VII "enhanced scheduler" extension, enabled by
// WithStealing).  The victim's newest queued strand is taken — its task
// has not started, so no execution state is lost.  Only the core changes:
// the anchor (and with it any space reservation and the shadow used by the
// strand's own CGC loops) stays put, which keeps the space-bound admission
// discipline deadlock-free — re-anchoring a reservation-holding task
// upward could let its own children queue behind its reservation.
func (e *engine) stealFor(c int) *strand {
	victim, best := -1, 1 // need at least 2 queued to be worth stealing
	for v := range e.runq {
		if e.runq[v].size() > best {
			victim, best = v, e.runq[v].size()
		}
	}
	if e.chaos != nil {
		// Chaos: any core with at least two queued strands is a valid
		// victim; pick one at random instead of the most loaded.
		cands := e.chaos.scratch[:0]
		for v := range e.runq {
			if e.runq[v].size() > 1 {
				cands = append(cands, v)
			}
		}
		e.chaos.scratch = cands
		if len(cands) > 0 {
			victim = e.chaos.pick(cands)
		}
	}
	if victim < 0 {
		return nil
	}
	st := e.runq[victim].buf[len(e.runq[victim].buf)-1]
	if st.started {
		// Mid-execution strands keep their core (their stack references the
		// old ctx); leave the queue untouched.
		return nil
	}
	e.runq[victim].popBack()
	e.nrun--
	if e.runq[victim].empty() {
		e.active &^= 1 << uint(victim)
	}
	e.load[victim]--
	e.load[c]++
	st.core = c
	st.ctx.core = c
	e.steals++
	e.emit(EvSteal, c, st.anchor.Level, st.anchor.Index, 0)
	return st
}

// Steals reports how many strands were migrated by the stealing extension.
func (s *Session) Steals() int64 {
	if s.eng == nil {
		return 0
	}
	return s.eng.steals
}

// withReference disables the engine fast paths — batched solo grants,
// inline leaf spawns, and the active-core scan — so that the schedule is
// the seed engine's, decision for decision.  Pooling stays on (it cannot
// affect the schedule).  Used by the equivalence tests to prove the fast
// path honours the determinism contract on arbitrary workloads.
func withReference() Opt {
	return func(s *Session) {
		if s.eng != nil {
			s.eng.reference = true
		}
	}
}
