package core

import (
	"fmt"

	"oblivhm/internal/hm"
)

// The simulated executor is a cooperative fork-join engine over the virtual
// cores of an hm.Machine.  Exactly one strand (lightweight task) executes at
// any real instant — the engine hands a budget of virtual operations to one
// strand at a time via channels — so the simulation is fully deterministic:
// cores proceed in lockstep rounds of `quantum` operations, realising the
// model's "all cores run at the same rate" assumption.  Virtual parallel
// time is the number of rounds times the quantum.

type yieldKind int

const (
	yBudget  yieldKind = iota // budget exhausted, still runnable
	yBlocked                  // parked on a join or a cache queue
	yDone                     // function returned (or panicked)
)

type yieldMsg struct {
	kind     yieldKind
	panicked any
}

// strand is one schedulable thread of the computation, pinned to a core.
type strand struct {
	core    int
	anchor  *hm.Cache // cache the strand's task is anchored at
	fn      func(*Ctx)
	ctx     *Ctx
	resume  chan int64
	yield   chan yieldMsg
	budget  int64
	started bool
	done    bool

	jn       *join      // join to signal on completion
	reserved *cacheSlot // space reservation to release on completion
	resSpace int64
}

// join is a fork-join counter: pending children plus the parked parent.
type join struct {
	pending int
	waiter  *strand
}

// cacheSlot carries the scheduler state attached to one cache: the space
// used by currently anchored tasks and the queue Q(λ) of tasks waiting for
// space (paper §III-B).
type cacheSlot struct {
	cache  *hm.Cache
	used   int64
	queue  []*pending
	anchd  int // number of tasks currently anchored here
	placed int // lifetime count, for the stats/tests
}

// pending is a task admitted to Q(λ) but not yet running.
type pending struct {
	space int64
	fn    func(*Ctx)
	jn    *join
}

type engine struct {
	s       *Session
	m       *hm.Machine
	quantum int64
	flat    bool // E13 ablation: ignore cache levels above L1 when placing
	steal   bool // extension: idle cores steal runnable strands (§VII)
	steals  int64
	trace   *Trace

	slots   [][]*cacheSlot // mirrors m.ByLevel
	runq    [][]*strand    // per-core runnable queues
	load    []int          // per-core count of live assigned strands
	live    int            // strands not yet done
	qd      int            // tasks sitting in cache queues
	clock   int64
	failure any
}

func newEngine(s *Session, m *hm.Machine) *engine {
	e := &engine{s: s, m: m, quantum: 32}
	e.slots = make([][]*cacheSlot, len(m.ByLevel))
	for i, level := range m.ByLevel {
		e.slots[i] = make([]*cacheSlot, len(level))
		for j, c := range level {
			e.slots[i][j] = &cacheSlot{cache: c}
		}
	}
	e.runq = make([][]*strand, m.Cores())
	e.load = make([]int, m.Cores())
	return e
}

func (e *engine) slotOf(c *hm.Cache) *cacheSlot { return e.slots[c.Level-1][c.Index] }

// newStrand creates (but does not start) a strand pinned to core.
func (e *engine) newStrand(core int, anchor *hm.Cache, jn *join, fn func(*Ctx)) *strand {
	st := &strand{
		core:   core,
		anchor: anchor,
		fn:     fn,
		resume: make(chan int64),
		yield:  make(chan yieldMsg),
		jn:     jn,
	}
	st.ctx = &Ctx{s: e.s, core: core, anchor: anchor, st: st}
	e.live++
	e.load[core]++
	return st
}

func (e *engine) enqueue(st *strand) { e.runq[st.core] = append(e.runq[st.core], st) }

func (e *engine) pop(core int) *strand {
	q := e.runq[core]
	if len(q) == 0 {
		return nil
	}
	st := q[0]
	e.runq[core] = q[1:]
	return st
}

// run executes root anchored at the smallest cache fitting space.
func (e *engine) run(space int64, root func(*Ctx)) {
	e.clock = 0
	e.failure = nil
	anchor := e.m.ByLevel[e.m.SmallestFit(space)-1][0]
	slot := e.slotOf(anchor)
	st := e.newStrand(anchor.CoreLo, anchor, nil, root)
	st.reserved = slot
	st.resSpace = space
	slot.used += space
	slot.anchd++
	slot.placed++
	e.emit(EvAnchor, st.core, anchor.Level, anchor.Index, space)
	e.enqueue(st)
	e.loop()
}

func (e *engine) loop() {
	for e.live > 0 {
		progressed := false
		for c := range e.runq {
			budget := e.quantum
			for budget > 0 {
				st := e.pop(c)
				if st == nil && e.steal {
					st = e.stealFor(c)
				}
				if st == nil {
					break
				}
				progressed = true
				budget = e.runStrand(st, budget)
			}
		}
		e.clock += e.quantum
		if e.failure != nil {
			panic(fmt.Sprintf("core: strand panicked: %v", e.failure))
		}
		if !progressed {
			panic(fmt.Sprintf("core: deadlock: %d live strands all blocked, %d queued tasks", e.live, e.qd))
		}
	}
}

// runStrand grants st up to budget operations and handles its yield,
// returning the unused budget.
func (e *engine) runStrand(st *strand, budget int64) int64 {
	if !st.started {
		st.started = true
		st.budget = budget
		go st.main()
	} else {
		st.resume <- budget
	}
	msg := <-st.yield
	switch msg.kind {
	case yBudget:
		// Exhausted its grant; runnable again next round (front of queue
		// preserves run-to-completion order within the core).
		e.runq[st.core] = append([]*strand{st}, e.runq[st.core]...)
		return 0
	case yBlocked:
		return st.budget // leftover
	case yDone:
		if msg.panicked != nil && e.failure == nil {
			e.failure = msg.panicked
		}
		e.finish(st)
		return st.budget
	}
	return 0
}

// finish handles strand completion: join signalling, space release, queue
// admission.
func (e *engine) finish(st *strand) {
	st.done = true
	e.emit(EvDone, st.core, 0, 0, 0)
	e.live--
	e.load[st.core]--
	if st.reserved != nil {
		st.reserved.used -= st.resSpace
		st.reserved.anchd--
		e.admit(st.reserved)
	}
	if st.jn != nil {
		st.jn.pending--
		if st.jn.pending == 0 && st.jn.waiter != nil {
			w := st.jn.waiter
			st.jn.waiter = nil
			e.enqueue(w)
		}
	}
}

// admit starts queued tasks at slot while capacity allows (paper: multiple
// tasks may be anchored simultaneously provided total space <= C_i).
func (e *engine) admit(slot *cacheSlot) {
	for len(slot.queue) > 0 {
		p := slot.queue[0]
		if slot.used+p.space > slot.cache.Cap*slot.cache.Block && slot.anchd > 0 {
			return
		}
		slot.queue = slot.queue[1:]
		e.qd--
		e.startAnchored(slot, p)
	}
}

// startAnchored reserves space and creates the strand for task p anchored
// at slot's cache, on the least-loaded core in its shadow.
func (e *engine) startAnchored(slot *cacheSlot, p *pending) {
	slot.used += p.space
	slot.anchd++
	slot.placed++
	core := e.leastLoadedCore(slot.cache)
	st := e.newStrand(core, slot.cache, p.jn, p.fn)
	st.reserved = slot
	st.resSpace = p.space
	e.emit(EvAnchor, core, slot.cache.Level, slot.cache.Index, p.space)
	e.enqueue(st)
}

// placeAnchored either starts task p at slot immediately (if it fits) or
// queues it in Q(λ).
func (e *engine) placeAnchored(slot *cacheSlot, p *pending) {
	capWords := slot.cache.Cap * slot.cache.Block
	if len(slot.queue) == 0 && (slot.used+p.space <= capWords || slot.anchd == 0) {
		e.startAnchored(slot, p)
		return
	}
	slot.queue = append(slot.queue, p)
	e.qd++
	e.emit(EvQueue, -1, slot.cache.Level, slot.cache.Index, p.space)
}

// leastLoadedCore picks the core with the fewest live strands in the shadow
// of cache, lowest index on ties (deterministic).
func (e *engine) leastLoadedCore(c *hm.Cache) int {
	best, bestLoad := c.CoreLo, int(^uint(0)>>1)
	for i := c.CoreLo; i < c.CoreHi; i++ {
		if e.load[i] < bestLoad {
			best, bestLoad = i, e.load[i]
		}
	}
	return best
}

// leastLoadedSlot picks the cache slot with the smallest reserved space
// among the level-j caches under lambda, lowest index on ties.
func (e *engine) leastLoadedSlot(lambda *hm.Cache, j int) *cacheSlot {
	var best *cacheSlot
	for _, c := range e.m.Under(lambda, j) {
		s := e.slotOf(c)
		if best == nil || s.used+int64(len(s.queue)) < best.used+int64(len(best.queue)) {
			best = s
		}
	}
	return best
}

// strand goroutine body.
func (st *strand) main() {
	defer func() {
		msg := yieldMsg{kind: yDone}
		if r := recover(); r != nil {
			msg.panicked = r
		}
		st.yield <- msg
	}()
	st.fn(st.ctx)
}

// charge consumes n operations of the strand's budget, yielding to the
// engine when the quantum is exhausted.
func (st *strand) charge(n int64) {
	st.budget -= n
	if st.budget <= 0 {
		st.yield <- yieldMsg{kind: yBudget}
		st.budget = <-st.resume
	}
}

// park blocks the strand until the engine resumes it (join complete).
func (st *strand) park() {
	st.yield <- yieldMsg{kind: yBlocked}
	st.budget = <-st.resume
}

// PlacedAt returns how many tasks have been anchored at the given cache
// level so far (CGC chunk strands are anchored at level 1 without a
// reservation and are not counted).  Used by the scheduler tests and the
// ablation experiment.
func (s *Session) PlacedAt(level int) int {
	if s.eng == nil {
		return 0
	}
	n := 0
	for _, slot := range s.eng.slots[level-1] {
		n += slot.placed
	}
	return n
}

// stealFor migrates a runnable strand from the most loaded core to the
// idle core c (the §VII "enhanced scheduler" extension, enabled by
// WithStealing).  The victim's newest queued strand is taken — its task
// has not started, so no execution state is lost.  Only the core changes:
// the anchor (and with it any space reservation and the shadow used by the
// strand's own CGC loops) stays put, which keeps the space-bound admission
// discipline deadlock-free — re-anchoring a reservation-holding task
// upward could let its own children queue behind its reservation.
func (e *engine) stealFor(c int) *strand {
	victim, best := -1, 1 // need at least 2 queued to be worth stealing
	for v := range e.runq {
		if len(e.runq[v]) > best {
			victim, best = v, len(e.runq[v])
		}
	}
	if victim < 0 {
		return nil
	}
	q := e.runq[victim]
	st := q[len(q)-1]
	if st.started {
		// Mid-execution strands keep their core (their stack references the
		// old ctx); leave the queue untouched.
		return nil
	}
	e.runq[victim] = q[:len(q)-1]
	e.load[victim]--
	e.load[c]++
	st.core = c
	st.ctx.core = c
	e.steals++
	e.emit(EvSteal, c, st.anchor.Level, st.anchor.Index, 0)
	return st
}

// Steals reports how many strands were migrated by the stealing extension.
func (s *Session) Steals() int64 {
	if s.eng == nil {
		return 0
	}
	return s.eng.steals
}
