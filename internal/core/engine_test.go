package core

import (
	"testing"

	"oblivhm/internal/hm"
)

// TestQuantumInvariance: the computed RESULT must be identical for any
// quantum (only the interleaving, hence steps/misses, may differ).
func TestQuantumInvariance(t *testing.T) {
	run := func(q int64) []int64 {
		m := hm.MustMachine(hm.HM4(4, 4))
		s := NewSim(m, WithQuantum(q))
		n := 1 << 10
		v := s.NewI64(n)
		s.Run(int64(4*n), func(c *Ctx) {
			c.PFor(n, 1, func(cc *Ctx, lo, hi int) {
				for i := lo; i < hi; i++ {
					v.Set(cc, i, int64(i)*3)
				}
			})
			c.SpawnCGCSB(int64(n/4), 4, func(cc *Ctx, idx int) {
				seg := n / 4
				for i := idx * seg; i < (idx+1)*seg; i++ {
					v.Set(cc, i, v.At(cc, i)+1)
				}
			})
		})
		out := make([]int64, n)
		for i := range out {
			out[i] = s.PeekI(v, i)
		}
		return out
	}
	base := run(32)
	for _, q := range []int64{1, 7, 128, 4096} {
		got := run(q)
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("quantum %d changes results at %d: %d vs %d", q, i, got[i], base[i])
			}
		}
	}
}

// TestSmallerQuantumMoreRounds: finer interleaving costs more rounds but
// both complete; steps scale sanely.
func TestQuantumAffectsOnlyAccounting(t *testing.T) {
	steps := func(q int64) int64 {
		m := hm.MustMachine(hm.MC3(4))
		s := NewSim(m, WithQuantum(q))
		n := 1 << 10
		v := s.NewF64(n)
		st := s.Run(int64(n), func(c *Ctx) {
			c.PFor(n, 1, func(cc *Ctx, lo, hi int) {
				for i := lo; i < hi; i++ {
					v.Set(cc, i, 1)
				}
			})
		})
		return st.Steps
	}
	s8, s512 := steps(8), steps(512)
	if s8 <= 0 || s512 <= 0 {
		t.Fatal("no steps recorded")
	}
	// Large quanta round time up to a multiple of the quantum, so they can
	// only overestimate.
	if s512 < s8/4 {
		t.Fatalf("coarse quantum lost time: %d vs %d", s512, s8)
	}
}

// TestStealingBalancesSkewedSpawn: a spawn pattern that SB places on one
// subtree of the hierarchy finishes faster with the stealing extension.
func TestStealingBalancesSkewedSpawn(t *testing.T) {
	run := func(opts ...Opt) (int64, int64) {
		m := hm.MustMachine(hm.HM4(4, 4))
		s := NewSim(m, opts...)
		// One heavy strand per task, all anchored small: SB spreads by
		// least-loaded, so to skew we spawn sequentially nested chains.
		work := func(cc *Ctx) { cc.Tick(5000) }
		st := s.Run(1<<17, func(c *Ctx) {
			var tasks []Task
			for i := 0; i < 3; i++ {
				tasks = append(tasks, Task{Space: 64, Fn: work})
			}
			// A second wave arrives while the first is running, landing on
			// the same least-loaded cores as seen at spawn time.
			c.SpawnSB(append(tasks,
				Task{Space: 64, Fn: func(cc *Ctx) {
					cc.SpawnSB(
						Task{Space: 32, Fn: work}, Task{Space: 32, Fn: work},
						Task{Space: 32, Fn: work}, Task{Space: 32, Fn: work},
					)
				}})...)
		})
		return st.Steps, s.Steals()
	}
	plain, steals0 := run()
	stolen, steals1 := run(WithStealing())
	if steals0 != 0 {
		t.Fatalf("stealing happened without the option: %d", steals0)
	}
	if steals1 == 0 {
		t.Skip("schedule happened to balance; no steals triggered")
	}
	if stolen > plain {
		t.Errorf("stealing made the skewed schedule slower: %d vs %d steps", stolen, plain)
	}
}

// TestDeadlockDetection: a strand that parks forever must be reported as a
// deadlock, not hang the engine.
func TestDeadlockDetection(t *testing.T) {
	m := hm.MustMachine(hm.MC3(2))
	s := NewSim(m)
	defer func() {
		if recover() == nil {
			t.Fatal("no deadlock panic")
		}
	}()
	s.Run(1<<12, func(c *Ctx) {
		jn := &join{pending: 1} // a join that can never be signalled
		c.waitJoin(jn)
	})
}

// TestManyConcurrentStrands: stress the engine with hundreds of strands
// forking and joining across quanta.
func TestManyConcurrentStrands(t *testing.T) {
	m := hm.MustMachine(hm.HM5(2, 4, 4))
	s := NewSim(m)
	n := 512
	v := s.NewI64(n)
	s.Run(1<<19, func(c *Ctx) {
		c.SpawnCGCSB(256, 64, func(cc *Ctx, i int) {
			cc.SpawnCGCSB(64, 8, func(c2 *Ctx, j int) {
				c2.Tick(10)
				idx := i*8 + j
				v.Set(c2, idx, int64(idx))
			})
		})
	})
	for i := 0; i < n; i++ {
		if s.PeekI(v, i) != int64(i) {
			t.Fatalf("strand %d lost its write", i)
		}
	}
}

// TestSpawnCGCSBSmallFanoutDescends: the §III-C provision — a binary fork
// whose subtasks fit a mid-level cache must be anchored there (not pinned
// at the top), so recursive binary forks descend the hierarchy.
func TestSpawnCGCSBSmallFanoutDescends(t *testing.T) {
	m := hm.MustMachine(hm.HM4(4, 4)) // C2 = 2^13
	s := NewSim(m)
	s.Run(1<<17, func(c *Ctx) {
		c.SpawnCGCSB(1<<12, 2, func(cc *Ctx, idx int) {}) // fits L2, m=2 < q2=4
	})
	if got := s.PlacedAt(2); got != 2 {
		t.Errorf("binary fork anchored %d tasks at L2, want 2", got)
	}
}

// TestRunTwiceOnSameSession: sessions are reusable; stats reset per run
// while memory persists.
func TestRunTwiceOnSameSession(t *testing.T) {
	m := hm.MustMachine(hm.MC3(2))
	s := NewSim(m)
	v := s.NewI64(4)
	s.Run(16, func(c *Ctx) { v.Set(c, 0, 7) })
	st := s.Run(16, func(c *Ctx) {
		if v.At(c, 0) != 7 {
			t.Error("memory lost between runs")
		}
	})
	if st.Steps <= 0 {
		t.Error("second run recorded no steps")
	}
}
