package core

import (
	"errors"
	"testing"

	"oblivhm/internal/hm"
)

// chaosWorkload is a recursive fork-join + CGC mix that exercises every
// spawn path (SB placement, nested fallback, CGC chunks, inline leaves) so
// chaos perturbation has real decisions to perturb.
func chaosWorkload(s *Session, n int) (sum int64) {
	v := s.NewI64(n)
	s.Run(int64(4*n), func(c *Ctx) {
		c.PFor(n, 1, func(cc *Ctx, lo, hi int) {
			for i := lo; i < hi; i++ {
				cc.StoreI(v.Base+Addr(i), int64(i))
			}
		})
		var rec func(cc *Ctx, lo, hi int)
		rec = func(cc *Ctx, lo, hi int) {
			if hi-lo <= 8 {
				for i := lo; i < hi; i++ {
					cc.StoreI(v.Base+Addr(i), cc.LoadI(v.Base+Addr(i))*2)
				}
				return
			}
			mid := (lo + hi) / 2
			cc.SpawnSB(
				Task{Space: int64(2 * (mid - lo)), Fn: func(c2 *Ctx) { rec(c2, lo, mid) }},
				Task{Space: int64(2 * (hi - mid)), Fn: func(c2 *Ctx) { rec(c2, mid, hi) }},
			)
		}
		rec(c, 0, n)
	})
	for i := 0; i < n; i++ {
		sum += s.PeekI(v, i)
	}
	return sum
}

// TestChaosCompletesAcrossSeeds: the same workload must complete correctly
// under every chaos seed, with the per-round invariants (enabled implicitly
// by WithChaos) passing throughout — on the plain scheduler and with the
// stealing extension.
func TestChaosCompletesAcrossSeeds(t *testing.T) {
	const n = 256
	want := int64(n * (n - 1)) // sum of 2*i over [0,n)
	for seed := int64(0); seed < 16; seed++ {
		for _, opts := range [][]Opt{
			{WithChaos(seed)},
			{WithChaos(seed), WithStealing()},
			{WithChaos(seed), WithFlatScheduler()},
		} {
			s := NewSim(hm.MustMachine(hm.HM4(2, 2)), opts...)
			if got := chaosWorkload(s, n); got != want {
				t.Fatalf("seed %d opts %d: wrong result %d, want %d", seed, len(opts), got, want)
			}
		}
	}
}

// TestChaosDeterministicPerSeed: chaos is a deterministic perturbation —
// the same seed must reproduce the exact schedule (steps and misses), and
// different seeds should disagree on at least one workload (the injector
// actually does something).
func TestChaosDeterministicPerSeed(t *testing.T) {
	measure := func(seed int64) (int64, int64) {
		s := NewSim(hm.MustMachine(hm.HM4(2, 2)), WithChaos(seed))
		v := s.NewI64(512)
		st := s.RunCold(2048, func(c *Ctx) {
			c.PFor(512, 1, func(cc *Ctx, lo, hi int) {
				for i := lo; i < hi; i++ {
					cc.StoreI(v.Base+Addr(i), int64(i))
				}
			})
		})
		return st.Steps, st.Sim.Levels[0].TotalMisses
	}
	s1, m1 := measure(7)
	s2, m2 := measure(7)
	if s1 != s2 || m1 != m2 {
		t.Fatalf("same seed diverged: (%d,%d) vs (%d,%d)", s1, m1, s2, m2)
	}
	diverged := false
	for seed := int64(0); seed < 8 && !diverged; seed++ {
		sd, md := measure(seed)
		diverged = sd != s1 || md != m1
	}
	if !diverged {
		t.Error("8 different seeds all produced the schedule of seed 7; injector appears inert")
	}
}

// TestInvariantCheckerCatchesCorruption: the per-round checker must turn
// deliberately corrupted engine bookkeeping into an *InvariantError rather
// than silent metric drift.
func TestInvariantCheckerCatchesCorruption(t *testing.T) {
	m := hm.MustMachine(hm.MC3(4))
	s := NewSim(m, WithInvariants())
	_, err := s.TryRun(1<<12, func(c *Ctx) {
		s.eng.live++ // phantom strand: load/live conservation now broken
		c.Tick(100)  // cross at least one round boundary
	})
	var ie *InvariantError
	if !errors.As(err, &ie) {
		t.Fatalf("corrupted engine returned %T (%v), want *InvariantError", err, err)
	}
	if ie.Name != "strand-conservation" {
		t.Errorf("invariant name = %q, want strand-conservation", ie.Name)
	}
}

// TestInvariantsPassOnCleanRuns: the checker is read-only and quiet on a
// healthy engine, including under the stealing and flat variants.
func TestInvariantsPassOnCleanRuns(t *testing.T) {
	for _, opts := range [][]Opt{
		{WithInvariants()},
		{WithInvariants(), WithStealing()},
		{WithInvariants(), WithFlatScheduler()},
	} {
		s := NewSim(hm.MustMachine(hm.HM5(2, 2, 2)), opts...)
		if got := chaosWorkload(s, 128); got != int64(128*127) {
			t.Fatalf("verified run computed %d, want %d", got, 128*127)
		}
	}
}

// TestRunErrorCarriesPlacement: a panicking task surfaces through TryRun as
// a *RunError naming its core, anchor and label, and unwraps to the panic
// value when that value was an error.
func TestRunErrorCarriesPlacement(t *testing.T) {
	boom := errors.New("boom")
	m := hm.MustMachine(hm.MC3(4))
	s := NewSim(m)
	// Two tasks so neither takes the inline fast path (an inline leaf runs
	// on the parent's strand and reports the parent's placement).
	_, err := s.TryRun(1<<12, func(c *Ctx) {
		c.SpawnSB(
			Task{Space: 64, Label: "fragile", Fn: func(cc *Ctx) { panic(boom) }},
			Task{Space: 64, Label: "sturdy", Fn: func(cc *Ctx) { cc.Tick(1) }},
		)
	})
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("TryRun returned %T (%v), want *RunError", err, err)
	}
	if re.Label != "fragile" {
		t.Errorf("label = %q, want fragile", re.Label)
	}
	if re.AnchorLevel != 1 {
		t.Errorf("anchor level = %d, want 1 (task space 64 fits an L1)", re.AnchorLevel)
	}
	if !errors.Is(err, boom) {
		t.Errorf("errors.Is(err, boom) = false; RunError should unwrap to the panic value")
	}
}

// TestChaosStrictlyAdditive: constructing a session with chaos wired but
// the injector replaced by nil must reproduce the chaos-free schedule —
// i.e. the chaos branches are only reachable through WithChaos.  (The
// golden-metrics suite pins the same property against on-disk snapshots.)
func TestChaosStrictlyAdditive(t *testing.T) {
	run := func(opts ...Opt) int64 {
		s := NewSim(hm.MustMachine(hm.HM4(2, 2)), opts...)
		v := s.NewI64(256)
		st := s.RunCold(1024, func(c *Ctx) {
			c.PFor(256, 1, func(cc *Ctx, lo, hi int) {
				for i := lo; i < hi; i++ {
					cc.StoreI(v.Base+Addr(i), 1)
				}
			})
		})
		return st.Steps
	}
	if a, b := run(), run(WithInvariants()); a != b {
		t.Errorf("WithInvariants changed the schedule: %d vs %d steps", a, b)
	}
}
