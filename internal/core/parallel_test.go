package core

// Engine-level tests for the parallel replay backend (WithParallel): full
// runs on identical machines, serial vs parallel, must agree on every
// observable the determinism contract freezes — Steps, the complete machine
// snapshot, placements, steals and the heap contents — including when chaos
// and the invariant checker (which drains the pipeline every round) are
// layered on top.  Plus white-box pins of the tie-break total orders the
// contract, and therefore the parallel backend's byte-identity claim,
// depends on.

import (
	"reflect"
	"testing"

	"oblivhm/internal/hm"
)

// parallelWorkload is a representative engine shape: binary SB recursion
// with PFor leaves over a shared array, enough strands to keep several
// cores busy and enough traffic to seal multiple replay batches.
func parallelWorkload(s *Session) func(*Ctx) {
	v := s.NewI64(1 << 12)
	var rec func(c *Ctx, lo, hi int64, space int64)
	rec = func(c *Ctx, lo, hi, space int64) {
		if hi-lo <= 1<<8 {
			c.PFor(int(hi-lo), 1, func(cc *Ctx, i0, i1 int) {
				for i := i0; i < i1; i++ {
					a := v.Base + Addr(lo+int64(i))
					cc.StoreI(a, cc.LoadI(a)+lo+int64(i))
				}
			})
			return
		}
		mid := (lo + hi) / 2
		c.SpawnSB(
			Task{Space: space / 2, Fn: func(cc *Ctx) { rec(cc, lo, mid, space/2) }},
			Task{Space: space / 2, Fn: func(cc *Ctx) { rec(cc, mid, hi, space/2) }},
		)
	}
	return func(c *Ctx) { rec(c, 0, 1<<12, 1<<14) }
}

func checkParallelEquiv(t *testing.T, name string, cfg hm.Config, opts []Opt) {
	t.Helper()
	t.Run(name, func(t *testing.T) {
		serial := runEquiv(cfg, 1<<15, opts, parallelWorkload, false)
		for _, w := range []int{2, 4, 8} {
			popts := append(append([]Opt{}, opts...), WithParallel(w))
			par := runEquiv(cfg, 1<<15, popts, parallelWorkload, false)
			if !reflect.DeepEqual(serial, par) {
				t.Errorf("workers=%d diverged from serial:\nserial   %+v\nparallel %+v", w, serial, par)
			}
		}
	})
}

// TestParallelBackendMatchesSerial: the base matrix across machine shapes
// and scheduler options.
func TestParallelBackendMatchesSerial(t *testing.T) {
	for mname, cfg := range equivMachines() {
		checkParallelEquiv(t, mname, cfg, nil)
		checkParallelEquiv(t, mname+"/steal", cfg, []Opt{WithStealing()})
		checkParallelEquiv(t, mname+"/flat", cfg, []Opt{WithFlatScheduler()})
		checkParallelEquiv(t, mname+"/q8", cfg, []Opt{WithQuantum(8)})
	}
}

// TestParallelBackendUnderChaos: chaos draws happen on the engine goroutine
// and never depend on cache state, so a chaos seed must perturb the serial
// and parallel runs identically — and the invariant checker, which drains
// the replay pipeline after every round, must stay green.
func TestParallelBackendUnderChaos(t *testing.T) {
	cfg := hm.HM4(4, 4)
	for seed := int64(0); seed < 4; seed++ {
		serial := runEquiv(cfg, 1<<15, []Opt{WithChaos(seed)}, parallelWorkload, false)
		par := runEquiv(cfg, 1<<15, []Opt{WithChaos(seed), WithParallel(4)}, parallelWorkload, false)
		if !reflect.DeepEqual(serial, par) {
			t.Errorf("seed %d: chaos schedule diverged between serial and parallel runs", seed)
		}
	}
}

// TestParallelBackendRepeatedRuns: one session, several runs — the pipeline
// is stopped at the end of every TryRun and must restart cleanly, with
// cold-start metrics repeating exactly.
func TestParallelBackendRepeatedRuns(t *testing.T) {
	m := hm.MustMachine(hm.MC3(8))
	s := NewSim(m, WithParallel(4))
	root := parallelWorkload(s)
	first := s.RunCold(1<<15, root)
	for i := 0; i < 3; i++ {
		again := s.RunCold(1<<15, root)
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("run %d diverged from the first cold run:\nfirst %+v\nagain %+v", i+2, first, again)
		}
	}
}

// TestLeastLoadedCoreTieBreak pins the deterministic total order of core
// placement: ascending scan over the shadow, strictly-smaller-load wins, so
// equal loads resolve to the lowest core index.  The parallel replay
// backend's byte-identity argument assumes exactly this order.
func TestLeastLoadedCoreTieBreak(t *testing.T) {
	m := hm.MustMachine(hm.MC3(8))
	e := NewSim(m).eng
	top := m.Top()

	if got := e.leastLoadedCore(top); got != 0 {
		t.Errorf("all loads zero: picked core %d, want 0", got)
	}
	for i := range e.load {
		e.load[i] = 5
	}
	e.load[3], e.load[6] = 2, 2
	if got := e.leastLoadedCore(top); got != 3 {
		t.Errorf("tie between cores 3 and 6: picked %d, want the lower index 3", got)
	}
	e.load[6] = 1
	if got := e.leastLoadedCore(top); got != 6 {
		t.Errorf("core 6 strictly least loaded: picked %d", got)
	}

	// Restricted shadow: the scan starts at CoreLo, not core 0.
	m4 := hm.MustMachine(hm.HM4(4, 4))
	e4 := NewSim(m4).eng
	l2 := m4.ByLevel[1][2] // covers cores [8, 12)
	if got := e4.leastLoadedCore(l2); got != l2.CoreLo {
		t.Errorf("empty shadow of L2[2]: picked core %d, want CoreLo %d", got, l2.CoreLo)
	}
	for i := l2.CoreLo; i < l2.CoreHi; i++ {
		e4.load[i] = 1
	}
	e4.load[9], e4.load[11] = 0, 0
	if got := e4.leastLoadedCore(l2); got != 9 {
		t.Errorf("tie between cores 9 and 11: picked %d, want 9", got)
	}
}

// TestLeastLoadedSlotTieBreak pins the slot placement order: the key is
// used+len(queue) (reserved words plus queued tasks), candidates come in
// ascending cache index, and ties resolve to the lowest index.
func TestLeastLoadedSlotTieBreak(t *testing.T) {
	m := hm.MustMachine(hm.HM4(4, 4))
	e := NewSim(m).eng
	top := m.Top()

	if got := e.leastLoadedSlot(top, 2); got != e.slots[1][0] {
		t.Errorf("all slots empty: picked L2[%d], want L2[0]", got.cache.Index)
	}
	for _, s := range e.slots[1] {
		s.used = 100
	}
	e.slots[1][1].used, e.slots[1][3].used = 40, 40
	if got := e.leastLoadedSlot(top, 2); got != e.slots[1][1] {
		t.Errorf("tie between L2[1] and L2[3]: picked L2[%d], want the lower index 1", got.cache.Index)
	}
	// Queue length is part of the key: one queued task breaks the tie.
	e.slots[1][1].queue = append(e.slots[1][1].queue, pending{})
	if got := e.leastLoadedSlot(top, 2); got != e.slots[1][3] {
		t.Errorf("L2[1] has a queued task: picked L2[%d], want L2[3]", got.cache.Index)
	}
	e.slots[1][1].queue = nil
	// A strictly smaller key at a higher index wins over lower indices.
	e.slots[1][2].used = 39
	if got := e.leastLoadedSlot(top, 2); got != e.slots[1][2] {
		t.Errorf("L2[2] strictly least loaded: picked L2[%d], want 2", got.cache.Index)
	}
}
