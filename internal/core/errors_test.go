package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// Unit coverage for the typed failure values themselves: wrapping,
// errors.Is/As round-trips, and the forensics-report rendering.  The
// integration paths (a real panicking strand, a really wedged schedule)
// are covered by the chaos and admission tests; these pin the error API.

var errRoot = errors.New("root cause")

func TestRunErrorUnwrapsErrorPanics(t *testing.T) {
	re := &RunError{Core: 3, AnchorLevel: 2, AnchorIndex: 1, Label: "sb", Value: fmt.Errorf("wrapped: %w", errRoot)}

	if !errors.Is(re, errRoot) {
		t.Error("errors.Is should see through RunError to the panic value's chain")
	}
	var got *RunError
	if !errors.As(error(re), &got) || got.Core != 3 {
		t.Error("errors.As should recover the *RunError with its placement intact")
	}
	msg := re.Error()
	for _, want := range []string{`task "sb"`, "core 3", "anchor L2[1]", "root cause"} {
		if !strings.Contains(msg, want) {
			t.Errorf("RunError message %q missing %q", msg, want)
		}
	}
}

func TestRunErrorNonErrorPanicValue(t *testing.T) {
	re := &RunError{Core: 0, Label: "root", Value: "slice index out of range"}
	if re.Unwrap() != nil {
		t.Error("Unwrap of a non-error panic value should be nil")
	}
	if errors.Is(re, errRoot) {
		t.Error("errors.Is must not match through a non-error panic value")
	}
	if msg := re.Error(); !strings.Contains(msg, "slice index out of range") || strings.Contains(msg, "anchor") {
		t.Errorf("message should carry the value and omit the unknown anchor: %q", msg)
	}
}

func TestInvariantErrorMessage(t *testing.T) {
	ie := &InvariantError{Clock: 42, Name: "strand-conservation", Detail: "live 3 != spawned 2 - done 0"}
	msg := ie.Error()
	for _, want := range []string{`"strand-conservation"`, "clock 42", "live 3"} {
		if !strings.Contains(msg, want) {
			t.Errorf("InvariantError message %q missing %q", msg, want)
		}
	}
	var got *InvariantError
	if !errors.As(error(ie), &got) || got.Name != "strand-conservation" {
		t.Error("errors.As round-trip lost the invariant name")
	}
}

func testReport() DeadlockReport {
	return DeadlockReport{
		Clock:    100,
		Live:     2,
		Runnable: 0,
		Queued:   1,
		Cores: []CoreState{
			{Core: 0, QueueDepth: 0, Load: 1},
			{Core: 1, QueueDepth: 0, Load: 0}, // idle: must be elided from the rendering
		},
		Blocked: []BlockedStrand{{Core: 0, AnchorLevel: 2, AnchorIndex: 0, Label: "sb"}},
		Slots: []SlotState{
			{Level: 2, Index: 0, Used: 90, Capacity: 128, Anchored: 1, Queued: 1, Demands: []int64{64}},
			{Level: 1, Index: 3, Used: 16, Capacity: 32, Anchored: 1, Queued: 0},
		},
	}
}

func TestDeadlockReportRendering(t *testing.T) {
	r := testReport()
	out := r.String()
	for _, want := range []string{
		"deadlock at clock 100",
		"2 live strands",
		`core 0: anchor L2[0] task "sb"`,
		"L2[0]: used 90/128 words, 1 anchored, 1 queued",
		"pending space demands: [64]",
		"starved: L2[0]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("forensics report missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "core 1:") {
		t.Errorf("idle core 1 should be elided from the report:\n%s", out)
	}
	if got := r.Starved(); len(got) != 1 || got[0] != "L2[0]" {
		t.Errorf("Starved() = %v, want [L2[0]]", got)
	}
	if name := r.Slots[0].Name(); name != "L2[0]" {
		t.Errorf("SlotState.Name() = %q, want L2[0]", name)
	}
}

func TestDeadlockErrorWrapsReport(t *testing.T) {
	de := &DeadlockError{Report: testReport()}
	var got *DeadlockError
	if !errors.As(error(de), &got) || got.Report.Clock != 100 {
		t.Error("errors.As round-trip lost the forensics report")
	}
	if msg := de.Error(); strings.HasSuffix(msg, "\n") {
		t.Errorf("DeadlockError message should be trimmed of trailing newlines: %q", msg)
	} else if !strings.Contains(msg, "starved: L2[0]") {
		t.Errorf("DeadlockError message should carry the full report: %q", msg)
	}
}

func TestIsRunFailure(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{&RunError{}, true},
		{&InvariantError{}, true},
		{&DeadlockError{}, true},
		{errRoot, false},
		{fmt.Errorf("wrapping: %w", &RunError{}), false}, // typed check is intentionally shallow
	}
	for _, c := range cases {
		if got := IsRunFailure(c.err); got != c.want {
			t.Errorf("IsRunFailure(%T) = %v, want %v", c.err, got, c.want)
		}
	}
}
