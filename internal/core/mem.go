package core

import (
	"sync"
	"sync/atomic"
)

// nativeMem is the word-addressed backing store of a native session.  It is
// a grow-only page table: pages never move once allocated, and the page
// directory is swapped atomically on growth, so concurrent readers in
// worker goroutines are safe while a task allocates mid-run.
const (
	pageShift = 16
	pageWords = 1 << pageShift
	pageMask  = pageWords - 1
)

type page [pageWords]uint64

type nativeMem struct {
	mu    sync.Mutex
	dir   atomic.Pointer[[]*page]
	heap  int64
	empty []*page
}

func newNativeMem() *nativeMem {
	nm := &nativeMem{}
	d := make([]*page, 0)
	nm.dir.Store(&d)
	return nm
}

func (nm *nativeMem) alloc(n int64) int64 {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	a := nm.heap
	nm.heap += n
	need := int((nm.heap + pageWords - 1) >> pageShift)
	cur := *nm.dir.Load()
	if need > len(cur) {
		grown := make([]*page, need)
		copy(grown, cur)
		for i := len(cur); i < need; i++ {
			grown[i] = new(page)
		}
		nm.dir.Store(&grown)
	}
	return a
}

func (nm *nativeMem) load(a Addr) uint64 {
	d := *nm.dir.Load()
	return d[a>>pageShift][a&pageMask]
}

func (nm *nativeMem) store(a Addr, v uint64) {
	d := *nm.dir.Load()
	d[a>>pageShift][a&pageMask] = v
}
