package core

// Engine-level tests for the parallel-rounds backend (WithParallelRounds):
// full runs on identical machines, serial vs phase-split, must agree on
// every observable the determinism contract freezes — Steps, the complete
// machine snapshot, placements, steals and the heap contents — alone, under
// every scheduler option, composed with the WithParallel replay pipeline,
// and on the failure path.  These run under -race in CI: the speculation
// phase is the only place the engine lets several strands execute at the
// same real instant, so the race detector doubles as a proof that the
// fan-in really has no shared mutable state.

import (
	"errors"
	"reflect"
	"testing"

	"oblivhm/internal/hm"
)

// tickHeavyWorkload runs long pure stretches (ticks + array walks) between
// rare forks — the best case for speculation, where epochs should span many
// rounds and nearly all execution happens on the worker threads.  Each task
// owns a disjoint 128-word range: concurrently runnable strands of a
// fork-join program must have disjoint footprints (the race-freedom the
// whole simulator assumes), and the speculation phase really does run them
// at the same real instant.
func tickHeavyWorkload(s *Session) func(*Ctx) {
	v := s.NewI64(1 << 10)
	return func(c *Ctx) {
		c.SpawnCGCSB(1<<11, 8, func(cc *Ctx, idx int) {
			base := v.Base + Addr(idx<<7)
			for i := 0; i < 1<<10; i++ {
				a := base + Addr(i%(1<<7))
				cc.StoreI(a, cc.LoadI(a)+int64(idx))
				cc.Tick(3)
			}
		})
		for i := 0; i < 256; i++ {
			c.StoreI(v.Base+Addr(i), c.LoadI(v.Base+Addr(i))+1)
		}
	}
}

// forkHeavyWorkload serializes constantly (single-task SB forks every few
// operations) — the worst case, where epochs degenerate to a round or two
// and the engine must still replay the exact serial schedule.
func forkHeavyWorkload(s *Session) func(*Ctx) {
	v := s.NewI64(512)
	var rec func(c *Ctx, lo Addr, d int)
	rec = func(c *Ctx, lo Addr, d int) {
		if d == 0 {
			// Each of the 64 leaves owns the disjoint 8-word range [lo, lo+8).
			for j := 0; j < 8; j++ {
				c.StoreI(v.Base+lo+Addr(j), c.LoadI(v.Base+lo+Addr(j))+1)
			}
			return
		}
		half := Addr(4) << uint(d) // child subtree width: 8<<(d-1) words
		c.SpawnSB(
			Task{Space: int64(64 << uint(d%3)), Fn: func(cc *Ctx) { rec(cc, lo, d-1) }},
			Task{Space: int64(64 << uint(d%3)), Fn: func(cc *Ctx) { rec(cc, lo+half, d-1) }},
		)
	}
	return func(c *Ctx) { rec(c, 0, 6) }
}

// pforHeavyWorkload is the admission-surviving speculation showcase: the
// parent forks a chunk to every sibling core and then runs its own chunk —
// fork, then a long pure stretch, then the join.  While speculating, the
// parent defers the chunk placements (deferFork) and keeps recording pure
// rounds, so the whole fan-out phase stays inside one epoch; the repeated
// outer rounds re-fork from a front strand that is usually mid-speculation.
func pforHeavyWorkload(s *Session) func(*Ctx) {
	v := s.NewI64(1 << 11)
	return func(c *Ctx) {
		for rep := 0; rep < 4; rep++ {
			c.PFor(1<<11, 1, func(cc *Ctx, lo, hi int) {
				for r := 0; r < 8; r++ {
					for i := lo; i < hi; i++ {
						a := v.Base + Addr(i)
						cc.StoreI(a, cc.LoadI(a)+1)
						cc.Tick(1)
					}
				}
			})
		}
	}
}

func parRoundWorkloads() map[string]func(*Session) func(*Ctx) {
	return map[string]func(*Session) func(*Ctx){
		"mixed": parallelWorkload,
		"tick":  tickHeavyWorkload,
		"fork":  forkHeavyWorkload,
		"pfor":  pforHeavyWorkload,
	}
}

func checkParRoundsEquiv(t *testing.T, name string, cfg hm.Config, opts []Opt, workload func(*Session) func(*Ctx), composed bool) {
	t.Helper()
	t.Run(name, func(t *testing.T) {
		serial := runEquiv(cfg, 1<<15, opts, workload, false)
		for _, w := range []int{2, 4, 8} {
			popts := append(append([]Opt{}, opts...), WithParallelRounds(w))
			if composed {
				popts = append(popts, WithParallel(w))
			}
			par := runEquiv(cfg, 1<<15, popts, workload, false)
			if !reflect.DeepEqual(serial, par) {
				t.Errorf("workers=%d diverged from serial:\nserial   %+v\nparallel %+v", w, serial, par)
			}
		}
	})
}

// TestParallelRoundsMatchSerial: the base matrix — machine shapes ×
// workloads × scheduler options, parallel-rounds alone.
func TestParallelRoundsMatchSerial(t *testing.T) {
	for mname, cfg := range equivMachines() {
		for wname, wl := range parRoundWorkloads() {
			checkParRoundsEquiv(t, mname+"/"+wname, cfg, nil, wl, false)
		}
		checkParRoundsEquiv(t, mname+"/steal", cfg, []Opt{WithStealing()}, parallelWorkload, false)
		checkParRoundsEquiv(t, mname+"/flat", cfg, []Opt{WithFlatScheduler()}, parallelWorkload, false)
		checkParRoundsEquiv(t, mname+"/q8", cfg, []Opt{WithQuantum(8)}, parallelWorkload, false)
	}
}

// TestParallelRoundsComposed: WithParallelRounds + WithParallel — recorded
// chunks bulk-feed the replay pipeline, and everything must still match the
// fully serial run.
func TestParallelRoundsComposed(t *testing.T) {
	for mname, cfg := range equivMachines() {
		for wname, wl := range parRoundWorkloads() {
			checkParRoundsEquiv(t, mname+"/"+wname, cfg, nil, wl, true)
		}
		checkParRoundsEquiv(t, mname+"/steal", cfg, []Opt{WithStealing()}, parallelWorkload, true)
	}
}

// TestParallelRoundsMatchReference: parallel-rounds runs against the
// reference engine (the seed schedule, every fast path disabled).  The
// serial fast path is already pinned to the reference by the Equiv suite;
// comparing the parallel backend to the reference DIRECTLY is the
// observational-equivalence proof for bulkCommit — the collapsed
// pop/flush/requeue turns must be indistinguishable from the reference
// engine's per-round decisions on every frozen observable.
func TestParallelRoundsMatchReference(t *testing.T) {
	for mname, cfg := range equivMachines() {
		for wname, wl := range parRoundWorkloads() {
			t.Run(mname+"/"+wname, func(t *testing.T) {
				ref := runEquiv(cfg, 1<<15, nil, wl, true)
				for _, w := range []int{2, 4, 8} {
					for _, composed := range []bool{false, true} {
						popts := []Opt{WithParallelRounds(w)}
						if composed {
							popts = append(popts, WithParallel(w))
						}
						par := runEquiv(cfg, 1<<15, popts, wl, false)
						if !reflect.DeepEqual(ref, par) {
							t.Errorf("workers=%d composed=%v diverged from reference:\nreference %+v\nparallel  %+v", w, composed, ref, par)
						}
					}
				}
			})
		}
	}
}

// TestParallelRoundsSpecFail drives the front-stability invariant directly:
// the condition is impossible by construction, so the test-only prSpecHook
// corrupts a run queue right after an epoch arms — rotating the speculator
// from the front to the back — and the commit walk must surface the typed
// *InvariantError with every speculator drained, not silently corrupt the
// schedule.
func TestParallelRoundsSpecFail(t *testing.T) {
	m := hm.MustMachine(hm.MC3(8))
	s := NewSim(m, WithParallelRounds(4))
	v := s.NewI64(1 << 10)
	root := func(c *Ctx) {
		// 16 uniform tasks over 8 cores: two strands per queue, so rotating
		// a queue genuinely changes its front.
		c.SpawnCGCSB(64, 16, func(cc *Ctx, idx int) {
			for i := 0; i < 512; i++ {
				a := v.Base + Addr(idx<<6+i%64)
				cc.StoreI(a, cc.LoadI(a)+1)
				cc.Tick(2)
			}
		})
	}
	corrupted := false
	s.eng.prSpecHook = func() {
		if corrupted {
			return
		}
		e := s.eng
		for c := range e.runq {
			if e.specOf[c] != nil && e.runq[c].size() >= 2 {
				e.runq[c].pushBack(e.runq[c].popFront())
				corrupted = true
				return
			}
		}
	}
	_, err := s.TryRunCold(1<<15, root)
	if !corrupted {
		t.Fatal("hook never found a speculator with queue depth >= 2 to corrupt")
	}
	var ie *InvariantError
	if !errors.As(err, &ie) {
		t.Fatalf("expected *InvariantError, got %v", err)
	}
	if ie.Name != "parallel-rounds-front" {
		t.Errorf("invariant name = %q, want parallel-rounds-front", ie.Name)
	}
	if s.eng.nspec != 0 {
		t.Errorf("nspec = %d after specFail, want 0 (speculators drained)", s.eng.nspec)
	}
	for c, st := range s.eng.specOf {
		if st != nil {
			t.Errorf("specOf[%d] still set after specFail", c)
		}
	}
}

// TestParallelRoundsUnderChaos: chaos runs serialize the whole loop (the
// draw stream is order-sensitive), so WithChaos + WithParallelRounds must be
// byte-identical to WithChaos alone — the documented fallback.
func TestParallelRoundsUnderChaos(t *testing.T) {
	cfg := hm.HM4(4, 4)
	for seed := int64(1); seed <= 4; seed++ {
		serial := runEquiv(cfg, 1<<15, []Opt{WithChaos(seed)}, parallelWorkload, false)
		par := runEquiv(cfg, 1<<15, []Opt{WithChaos(seed), WithParallelRounds(4)}, parallelWorkload, false)
		if !reflect.DeepEqual(serial, par) {
			t.Errorf("seed %d: chaos schedule diverged under WithParallelRounds", seed)
		}
	}
}

// TestParallelRoundsRepeatedRuns: one session, several cold runs — epoch
// state must reset completely between runs.
func TestParallelRoundsRepeatedRuns(t *testing.T) {
	m := hm.MustMachine(hm.MC3(8))
	s := NewSim(m, WithParallelRounds(4), WithParallel(2))
	root := parallelWorkload(s)
	first := s.RunCold(1<<15, root)
	for i := 0; i < 3; i++ {
		again := s.RunCold(1<<15, root)
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("run %d diverged from the first cold run:\nfirst %+v\nagain %+v", i+2, first, again)
		}
	}
}

// TestParallelRoundsFailure: a strand panicking inside a speculative phase
// must surface as the same *RunError the serial engine reports — same core,
// anchor and label — at the same virtual time.
func TestParallelRoundsFailure(t *testing.T) {
	build := func(opts ...Opt) (*Session, func(*Ctx)) {
		m := hm.MustMachine(hm.HM4(4, 4))
		s := NewSim(m, opts...)
		v := s.NewI64(256)
		root := func(c *Ctx) {
			c.SpawnCGCSB(1<<10, 8, func(cc *Ctx, idx int) {
				for i := 0; i < 200; i++ {
					cc.StoreI(v.Base+Addr(idx<<5+i%32), int64(i))
				}
				if idx == 5 {
					cc.LoadU(Addr(1 << 40)) // out of heap: *AddressError
				}
				for i := 0; i < 200; i++ {
					cc.Tick(1)
				}
			})
		}
		return s, root
	}

	s1, r1 := build()
	_, err1 := s1.TryRunCold(1<<15, r1)
	s2, r2 := build(WithParallelRounds(4))
	_, err2 := s2.TryRunCold(1<<15, r2)

	var re1, re2 *RunError
	if !errors.As(err1, &re1) || !errors.As(err2, &re2) {
		t.Fatalf("expected *RunError from both runs, got serial=%v parallel=%v", err1, err2)
	}
	if re1.Core != re2.Core || re1.Label != re2.Label ||
		re1.AnchorLevel != re2.AnchorLevel || re1.AnchorIndex != re2.AnchorIndex {
		t.Errorf("failure reports diverged:\nserial   %+v\nparallel %+v", re1, re2)
	}
	if s1.eng.clock != s2.eng.clock {
		t.Errorf("failure clock diverged: serial %d, parallel %d", s1.eng.clock, s2.eng.clock)
	}
	// Accesses flushed up to the failing round must match: speculated chunks
	// beyond it are discarded uncounted.
	if a1, a2 := s1.Machine().Accesses, s2.Machine().Accesses; a1 != a2 {
		t.Errorf("accesses at failure diverged: serial %d, parallel %d", a1, a2)
	}
}

// TestParallelRoundsWorkerCaps: workers <= 0 resolves to GOMAXPROCS and a
// single worker disables the backend (an epoch needs at least two
// speculators to exist).
func TestParallelRoundsWorkerCaps(t *testing.T) {
	m := hm.MustMachine(hm.MC3(8))
	s := NewSim(m, WithParallelRounds(0))
	if s.eng.prWorkers < 1 {
		t.Errorf("workers=0 should resolve to GOMAXPROCS, got %d", s.eng.prWorkers)
	}
	serial := runEquiv(hm.MC3(8), 1<<15, nil, parallelWorkload, false)
	one := runEquiv(hm.MC3(8), 1<<15, []Opt{WithParallelRounds(1)}, parallelWorkload, false)
	if !reflect.DeepEqual(serial, one) {
		t.Errorf("workers=1 must run the serial path unchanged")
	}
}
