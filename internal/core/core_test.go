package core

import (
	"testing"

	"oblivhm/internal/hm"
)

func simSession(t testing.TB, cfg hm.Config) *Session {
	t.Helper()
	m, err := hm.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return NewSim(m)
}

// sessions returns one simulated and one native session, so every behaviour
// test runs under both executors.
func sessions(t testing.TB) map[string]*Session {
	return map[string]*Session{
		"sim":    simSession(t, hm.HM4(4, 4)),
		"native": NewNative(4),
	}
}

func TestPForCoversRangeExactlyOnce(t *testing.T) {
	for name, s := range sessions(t) {
		t.Run(name, func(t *testing.T) {
			n := 1000
			v := s.NewI64(n)
			s.Run(int64(n), func(c *Ctx) {
				c.PFor(n, 1, func(cc *Ctx, lo, hi int) {
					for i := lo; i < hi; i++ {
						v.Set(cc, i, v.At(cc, i)+int64(i))
					}
				})
			})
			for i := 0; i < n; i++ {
				if got := s.PeekI(v, i); got != int64(i) {
					t.Fatalf("v[%d] = %d, want %d (covered zero or multiple times)", i, got, i)
				}
			}
		})
	}
}

func TestPForEmptyAndTiny(t *testing.T) {
	for name, s := range sessions(t) {
		t.Run(name, func(t *testing.T) {
			sum := 0
			s.Run(16, func(c *Ctx) {
				c.PFor(0, 1, func(cc *Ctx, lo, hi int) { sum += hi - lo })
				c.PFor(1, 1, func(cc *Ctx, lo, hi int) { sum += hi - lo })
			})
			if sum != 1 {
				t.Fatalf("sum = %d, want 1", sum)
			}
		})
	}
}

func TestPForNested(t *testing.T) {
	for name, s := range sessions(t) {
		t.Run(name, func(t *testing.T) {
			const n = 64
			mat := s.NewMat(n, n)
			s.Run(n*n, func(c *Ctx) {
				c.PFor(n, n, func(cc *Ctx, lo, hi int) {
					for i := lo; i < hi; i++ {
						cc.PFor(n, 1, func(c2 *Ctx, jlo, jhi int) {
							for j := jlo; j < jhi; j++ {
								mat.Set(c2, i, j, float64(i*n+j))
							}
						})
					}
				})
			})
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if got := s.PeekM(mat, i, j); got != float64(i*n+j) {
						t.Fatalf("mat[%d][%d] = %v", i, j, got)
					}
				}
			}
		})
	}
}

// TestPForUsesMultipleCores: in sim mode a big CGC loop must spread work
// over all cores — parallel steps must be well below serial steps.
func TestPForUsesMultipleCores(t *testing.T) {
	cfg := hm.MC3(8)
	run := func(s *Session, n int) int64 {
		v := s.NewF64(n)
		st := s.Run(int64(n), func(c *Ctx) {
			c.PFor(n, 1, func(cc *Ctx, lo, hi int) {
				for i := lo; i < hi; i++ {
					v.Set(cc, i, 1)
				}
			})
		})
		return st.Steps
	}
	par := run(simSession(t, cfg), 1<<14)
	seq := run(simSession(t, hm.Seq()), 1<<14)
	if par*4 > seq {
		t.Fatalf("8-core CGC loop took %d steps vs %d serial; want at least 4x speedup", par, seq)
	}
}

// TestPForRespectsBlockGrain: segments must not be shorter than B1, so a
// loop of 2*B1 elements uses at most 2 cores even when more exist.
func TestPForRespectsBlockGrain(t *testing.T) {
	s := simSession(t, hm.MC3(8))
	b1 := int(s.Machine().Cfg.Levels[0].Block)
	n := 2 * b1
	var segs [][2]int
	s.Run(int64(n), func(c *Ctx) {
		c.PFor(n, 1, func(cc *Ctx, lo, hi int) {
			segs = append(segs, [2]int{lo, hi}) // sim engine is serialised, safe
		})
	})
	if len(segs) > 2 {
		t.Fatalf("got %d segments for 2*B1 elements, want <= 2", len(segs))
	}
	for _, sg := range segs {
		if sg[1]-sg[0] < b1 {
			t.Fatalf("segment [%d,%d) shorter than B1=%d", sg[0], sg[1], b1)
		}
	}
}

func TestSpawnSBRunsAllChildren(t *testing.T) {
	for name, s := range sessions(t) {
		t.Run(name, func(t *testing.T) {
			v := s.NewI64(8)
			s.Run(1<<12, func(c *Ctx) {
				var tasks []Task
				for i := 0; i < 8; i++ {
					i := i
					tasks = append(tasks, Task{Space: 256, Fn: func(cc *Ctx) {
						v.Set(cc, i, int64(i)*10)
					}})
				}
				c.SpawnSB(tasks...)
			})
			for i := 0; i < 8; i++ {
				if got := s.PeekI(v, i); got != int64(i)*10 {
					t.Fatalf("child %d wrote %d", i, got)
				}
			}
		})
	}
}

// TestSBAnchorsAtSmallestFittingLevel: tasks with a small space bound must
// be anchored at L1, larger at L2, per the SB rule.
func TestSBAnchorsAtSmallestFittingLevel(t *testing.T) {
	cfg := hm.HM4(4, 4) // C1=2^9, C2=2^13, C3=2^18
	s := simSession(t, cfg)
	s.Run(1<<17, func(c *Ctx) {
		var small, big []Task
		for i := 0; i < 4; i++ {
			small = append(small, Task{Space: 128, Fn: func(cc *Ctx) {}})
			big = append(big, Task{Space: 1 << 12, Fn: func(cc *Ctx) {}})
		}
		c.SpawnSB(small...)
		c.SpawnSB(big...)
	})
	if got := s.PlacedAt(1); got != 4 {
		t.Errorf("L1 anchored = %d, want 4 (small tasks)", got)
	}
	if got := s.PlacedAt(2); got != 4 {
		t.Errorf("L2 anchored = %d, want 4 (big tasks)", got)
	}
}

// TestSBQueueSerialisesOverCapacity: two tasks each nearly filling a level-2
// cache that are sent to the same cache must serialise through Q(λ).
func TestSBQueueSerialisesOverCapacity(t *testing.T) {
	s := simSession(t, hm.HM4(1, 4)) // single L2 group of 4 cores
	c2 := s.Machine().Cfg.Levels[1].Capacity
	var maxConc, conc int
	s.Run(1<<17, func(c *Ctx) {
		mk := func() Task {
			return Task{Space: c2 * 3 / 4, Fn: func(cc *Ctx) {
				conc++
				if conc > maxConc {
					maxConc = conc
				}
				cc.Tick(200) // force several quanta so overlap would show
				conc--
			}}
		}
		c.SpawnSB(mk(), mk(), mk())
	})
	if maxConc != 1 {
		t.Fatalf("tasks of 3/4 C2 ran %d-way concurrent at one L2; want serialised", maxConc)
	}
}

func TestSpawnCGCSBDistributes(t *testing.T) {
	for name, s := range sessions(t) {
		t.Run(name, func(t *testing.T) {
			const m = 16
			v := s.NewI64(m)
			s.Run(1<<17, func(c *Ctx) {
				c.SpawnCGCSB(256, m, func(cc *Ctx, idx int) {
					v.Set(cc, idx, int64(idx)+1)
				})
			})
			for i := 0; i < m; i++ {
				if s.PeekI(v, i) != int64(i)+1 {
					t.Fatalf("task %d did not run", i)
				}
			}
		})
	}
}

// TestCGCSBPlacementLevel: subtasks whose space bound only fits L2 must be
// anchored at level >= 2 even though many L1s are available.
func TestCGCSBPlacementLevel(t *testing.T) {
	s := simSession(t, hm.HM4(4, 4)) // C1 = 2^9
	s.Run(1<<17, func(c *Ctx) {
		c.SpawnCGCSB(1<<12, 8, func(cc *Ctx, idx int) {}) // 2^12 > C1
	})
	if got := s.PlacedAt(1); got != 0 {
		t.Errorf("tasks bigger than C1 anchored at L1: %d", got)
	}
	if got := s.PlacedAt(2); got != 8 {
		t.Errorf("L2 anchored = %d, want 8", got)
	}
}

func TestRecursiveSpawnSB(t *testing.T) {
	for name, s := range sessions(t) {
		t.Run(name, func(t *testing.T) {
			// Recursive doubling: count leaves of a depth-6 binary fork tree.
			v := s.NewI64(64)
			var rec func(c *Ctx, lo, hi int, space int64)
			rec = func(c *Ctx, lo, hi int, space int64) {
				if hi-lo == 1 {
					v.Set(c, lo, 1)
					return
				}
				mid := (lo + hi) / 2
				c.SpawnSB(
					Task{Space: space / 2, Fn: func(cc *Ctx) { rec(cc, lo, mid, space/2) }},
					Task{Space: space / 2, Fn: func(cc *Ctx) { rec(cc, mid, hi, space/2) }},
				)
			}
			s.Run(1<<16, func(c *Ctx) { rec(c, 0, 64, 1<<16) })
			for i := 0; i < 64; i++ {
				if s.PeekI(v, i) != 1 {
					t.Fatalf("leaf %d missing", i)
				}
			}
		})
	}
}

func TestDeterministicSimulation(t *testing.T) {
	run := func() (int64, int64) {
		s := simSession(t, hm.HM4(4, 4))
		n := 1 << 12
		v := s.NewF64(n)
		st := s.RunCold(int64(n), func(c *Ctx) {
			c.PFor(n, 1, func(cc *Ctx, lo, hi int) {
				for i := lo; i < hi; i++ {
					v.Set(cc, i, float64(i))
				}
			})
			c.SpawnCGCSB(int64(n/8), 8, func(cc *Ctx, idx int) {
				seg := n / 8
				for i := idx * seg; i < (idx+1)*seg; i++ {
					v.Set(cc, i, v.At(cc, i)*2)
				}
			})
		})
		return st.Steps, st.Sim.Levels[0].TotalMisses
	}
	s1, m1 := run()
	s2, m2 := run()
	if s1 != s2 || m1 != m2 {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", s1, m1, s2, m2)
	}
}

func TestStrandPanicPropagates(t *testing.T) {
	s := simSession(t, hm.MC3(4))
	defer func() {
		if recover() == nil {
			t.Fatal("panic in a strand did not propagate")
		}
	}()
	s.Run(1<<12, func(c *Ctx) {
		c.PFor(1<<12, 1, func(cc *Ctx, lo, hi int) {
			panic("boom")
		})
	})
}

func TestTickAdvancesTime(t *testing.T) {
	s := simSession(t, hm.MC3(2))
	st1 := s.Run(16, func(c *Ctx) { c.Tick(10) })
	st2 := s.Run(16, func(c *Ctx) { c.Tick(100000) })
	if st2.Steps <= st1.Steps {
		t.Fatalf("Tick did not advance virtual time: %d vs %d", st1.Steps, st2.Steps)
	}
}

func TestArraysRoundTrip(t *testing.T) {
	for name, s := range sessions(t) {
		t.Run(name, func(t *testing.T) {
			f := s.NewF64(4)
			iv := s.NewI64(4)
			u := s.NewU64(4)
			cv := s.NewC128(4)
			pv := s.NewPairs(4)
			s.Run(64, func(c *Ctx) {
				f.Set(c, 2, 3.5)
				iv.Set(c, 1, -7)
				u.Set(c, 3, 1<<63)
				cv.Set(c, 0, complex(1, -2))
				pv.Set(c, 2, Pair{Key: 9, Val: 11})
				if f.At(c, 2) != 3.5 || iv.At(c, 1) != -7 || u.At(c, 3) != 1<<63 {
					t.Error("scalar round trip failed")
				}
				if cv.At(c, 0) != complex(1, -2) {
					t.Error("complex round trip failed")
				}
				if p := pv.At(c, 2); p.Key != 9 || p.Val != 11 {
					t.Error("pair round trip failed")
				}
				if pv.Key(c, 2) != 9 {
					t.Error("Key accessor failed")
				}
			})
			if s.PeekF(f, 2) != 3.5 || s.PeekI(iv, 1) != -7 || s.PeekU(u, 3) != 1<<63 {
				t.Error("peek mismatch")
			}
			if s.PeekC(cv, 0) != complex(1, -2) {
				t.Error("peek complex mismatch")
			}
			if p := s.PeekP(pv, 2); p.Val != 11 {
				t.Error("peek pair mismatch")
			}
		})
	}
}

func TestMatViews(t *testing.T) {
	s := NewNative(2)
	m := s.NewMat(8, 8)
	s.Run(64, func(c *Ctx) {
		for i := 0; i < 8; i++ {
			for j := 0; j < 8; j++ {
				m.Set(c, i, j, float64(10*i+j))
			}
		}
		m11, m12, m21, m22 := m.Quads()
		if m11.At(c, 0, 0) != 0 || m12.At(c, 0, 0) != 4 || m21.At(c, 0, 0) != 40 || m22.At(c, 0, 0) != 44 {
			t.Error("quadrant views wrong")
		}
		sub := m.Sub(2, 3, 2, 2)
		if sub.At(c, 1, 1) != 34 {
			t.Error("sub view wrong")
		}
		r := m.Row(5)
		if r.At(c, 7) != 57 {
			t.Error("row view wrong")
		}
	})
}

func TestFlatSchedulerPlacesOnlyL1(t *testing.T) {
	m := hm.MustMachine(hm.HM4(4, 4))
	s := NewSim(m, WithFlatScheduler())
	s.Run(1<<17, func(c *Ctx) {
		var tasks []Task
		for i := 0; i < 8; i++ {
			tasks = append(tasks, Task{Space: 1 << 12, Fn: func(cc *Ctx) {}})
		}
		c.SpawnSB(tasks...)
	})
	if got := s.PlacedAt(2); got != 0 {
		t.Errorf("flat scheduler anchored %d tasks at L2", got)
	}
	if got := s.PlacedAt(1); got != 8 {
		t.Errorf("flat scheduler anchored %d tasks at L1, want 8", got)
	}
}

func TestSessionString(t *testing.T) {
	if s := simSession(t, hm.MC3(2)).String(); s == "" {
		t.Fatal("empty sim string")
	}
	if s := NewNative(2).String(); s == "" {
		t.Fatal("empty native string")
	}
}

func TestSlicesAndPeeks(t *testing.T) {
	for name, s := range sessions(t) {
		t.Run(name, func(t *testing.T) {
			if (name == "sim") != s.Simulated() {
				t.Fatal("Simulated() wrong")
			}
			f := s.NewF64(10)
			iv := s.NewI64(10)
			u := s.NewU64(10)
			cv := s.NewC128(10)
			pv := s.NewPairs(10)
			s.PokeF(f, 7, 2.5)
			s.PokeI(iv, 7, -9)
			s.PokeU(u, 7, 88)
			s.PokeC(cv, 7, complex(1, 2))
			s.PokeP(pv, 7, Pair{Key: 4, Val: 5})
			fs := f.Slice(5, 10)
			is := iv.Slice(5, 10)
			us := u.Slice(5, 10)
			cs := cv.Slice(5, 10)
			ps := pv.Slice(5, 10)
			s.Run(64, func(c *Ctx) {
				if c.Session() != s {
					t.Error("Session accessor wrong")
				}
				if fs.At(c, 2) != 2.5 || is.At(c, 2) != -9 || us.At(c, 2) != 88 {
					t.Error("scalar slice views wrong")
				}
				if cs.At(c, 2) != complex(1, 2) {
					t.Error("complex slice view wrong")
				}
				if p := ps.At(c, 2); p.Key != 4 || p.Val != 5 {
					t.Error("pair slice view wrong")
				}
			})
		})
	}
}

// TestStealingDeterministicTrigger: construct a schedule guaranteed to
// leave one core with a deep queue while others idle, and verify steals
// happen and results stay correct.
func TestStealingDeterministicTrigger(t *testing.T) {
	m := hm.MustMachine(hm.MC3(8))
	s := NewSim(m, WithStealing())
	n := 64
	v := s.NewI64(n)
	s.Run(1<<15, func(c *Ctx) {
		// Nested spawns land on least-loaded cores at spawn time; spawning
		// a long chain of tiny tasks from one parent stacks them before
		// other cores' queues grow, so idle cores must steal.
		var tasks []Task
		for i := 0; i < n; i++ {
			i := i
			tasks = append(tasks, Task{Space: 32, Fn: func(cc *Ctx) {
				cc.Tick(500)
				v.Set(cc, i, int64(i))
			}})
		}
		c.SpawnSB(tasks...)
	})
	for i := 0; i < n; i++ {
		if s.PeekI(v, i) != int64(i) {
			t.Fatalf("task %d lost under stealing", i)
		}
	}
	// Steals may or may not trigger depending on placement, but the counter
	// must be readable and non-negative either way.
	if s.Steals() < 0 {
		t.Fatal("negative steal count")
	}
}
