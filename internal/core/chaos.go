package core

import "fmt"

// Chaos mode: a seeded, deterministic fault injector for the scheduler.
// The paper's central claim is that the SB/CGC discipline stays correct for
// any machine parameters; chaos mode stresses the complementary claim that
// the *engine* stays correct under adversarial scheduling decisions (in the
// spirit of Cole–Ramachandran's analysis of cache bounds under general
// schedulers).  With WithChaos(seed) the engine perturbs, deterministically
// per seed:
//
//   - per-round core budgets (quantum jitter in [1, 2·quantum)),
//   - solo batch grants (randomly suppressed, forcing lockstep),
//   - admission timing (Q(λ) admissions deferred to the next round
//     boundary, or the queue head rotated to the back),
//   - anchor-placement tie-breaks (least-loaded core/slot ties broken
//     randomly instead of lowest-index-first),
//   - steal-victim choice (a random eligible victim instead of the most
//     loaded).
//
// Every perturbation preserves the scheduler's semantics — tasks are still
// placed least-loaded at the level the SB/CGC rules pick, deferred
// admissions are flushed at the next round boundary — so any workload that
// completes without chaos must complete under every seed, with the runtime
// invariants (enabled implicitly by WithChaos) holding after every round.
// With chaos disabled the engine takes none of these branches and draws no
// random numbers: chaos mode is strictly additive to the determinism
// contract.
//
// Chaos composes with the parallel backend (WithParallel) without any
// per-core stream splitting: every chaos draw happens on the engine
// goroutine, whose scheduling decisions never depend on cache state, so the
// seeded stream — and therefore the perturbed schedule — is identical no
// matter how the replay workers interleave on real threads.

// chaosRNG is splitmix64: tiny, seedable, and good enough for schedule
// perturbation.  math/rand is avoided so the engine stays allocation-free
// and the stream is stable across Go releases.
type chaosRNG struct{ state uint64 }

func (r *chaosRNG) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *chaosRNG) intn(n int) int { return int(r.next() % uint64(n)) }

// chaos holds the injector state attached to an engine.
type chaos struct {
	rng      chaosRNG
	deferred []*cacheSlot // admissions postponed to the next round boundary
	scratch  []int        // candidate buffer for randomized tie-breaks
}

func newChaos(seed int64) *chaos {
	c := &chaos{rng: chaosRNG{state: uint64(seed)}}
	c.rng.next() // decorrelate nearby seeds
	return c
}

// coin returns true with probability 1/p.
func (c *chaos) coin(p int) bool { return c.rng.intn(p) == 0 }

// budget returns a jittered per-round core budget in [1, 2·quantum).
func (c *chaos) budget(quantum int64) int64 {
	return 1 + int64(c.rng.intn(int(2*quantum-1)))
}

// deferSlot postpones slot's admission pass to the next round boundary.
func (c *chaos) deferSlot(slot *cacheSlot) {
	for _, s := range c.deferred {
		if s == slot {
			return
		}
	}
	c.deferred = append(c.deferred, slot)
}

// pick returns a random element of the candidate buffer.
func (c *chaos) pick(cands []int) int { return cands[c.rng.intn(len(cands))] }

// WithChaos enables the deterministic fault injector with the given seed on
// a simulated session, and turns on the per-round invariant checker.  Two
// sessions with the same seed, workload and machine produce identical
// schedules and metrics; different seeds explore different interleavings.
func WithChaos(seed int64) Opt {
	return func(s *Session) {
		if s.eng != nil {
			s.eng.chaos = newChaos(seed)
			s.eng.verify = true
		}
	}
}

// WithInvariants enables the per-round engine invariant checker without any
// schedule perturbation: strand/join conservation, run-queue/bitmask
// agreement, cache-slot occupancy sanity and per-cache miss-count
// monotonicity are asserted after every round, and full conservation
// (nothing queued, nothing live, all reservations released) at the end of
// the run.  Violations surface as *InvariantError.  The checks are
// read-only: enabling them cannot change a schedule.
func WithInvariants() Opt {
	return func(s *Session) {
		if s.eng != nil {
			s.eng.verify = true
		}
	}
}

// ---- per-round invariant checks ----

// initInvariants snapshots the per-cache miss counters at the start of a
// verified run (the monotonicity baseline).  Under WithParallel the replay
// pipeline is drained first so the baseline — like every later check — sees
// settled counters; the drain is observation-only and cannot change the
// schedule.
func (e *engine) initInvariants() {
	e.m.SyncReplay()
	if e.prevMiss == nil {
		e.prevMiss = make([][]int64, len(e.slots))
		for i, level := range e.slots {
			e.prevMiss[i] = make([]int64, len(level))
		}
	}
	for i, level := range e.slots {
		for j, slot := range level {
			e.prevMiss[i][j] = slot.cache.Stats.Misses
		}
	}
}

// checkInvariants asserts the engine's bookkeeping after a round.  It is
// only called with e.verify set and never mutates scheduler state.  The
// miss-monotonicity check reads live cache counters, so any in-flight
// parallel replay is drained first (a per-round cost that only verified
// runs pay).
func (e *engine) checkInvariants() error {
	e.m.SyncReplay()
	fail := func(name, format string, args ...any) error {
		return &InvariantError{Clock: e.clock, Name: name, Detail: fmt.Sprintf(format, args...)}
	}
	sumLoad, sumRun := 0, 0
	for c := range e.runq {
		sumLoad += e.load[c]
		n := e.runq[c].size()
		sumRun += n
		if got := e.active&(1<<uint(c)) != 0; got != (n > 0) && !e.steal && !e.reference {
			return fail("active-mask", "core %d: queue size %d but active bit %v", c, n, got)
		}
	}
	if sumLoad != e.live {
		return fail("strand-conservation", "per-core loads sum to %d but %d strands are live", sumLoad, e.live)
	}
	if sumRun != e.nrun {
		return fail("runnable-count", "run queues hold %d strands but nrun=%d", sumRun, e.nrun)
	}
	if blocked := len(e.blockedL); e.live < e.nrun+blocked {
		return fail("strand-conservation", "%d live < %d runnable + %d blocked", e.live, e.nrun, blocked)
	}
	sumQ := 0
	for _, level := range e.slots {
		for _, slot := range level {
			sumQ += len(slot.queue)
			if slot.used < 0 || slot.anchd < 0 {
				return fail("slot-occupancy", "%s: used=%d anchored=%d went negative",
					slotName(slot), slot.used, slot.anchd)
			}
			if cap := slot.cache.Cap * slot.cache.Block; slot.used > cap && slot.anchd > 1 {
				return fail("slot-occupancy", "%s: %d anchored tasks reserve %d > capacity %d words",
					slotName(slot), slot.anchd, slot.used, cap)
			}
		}
	}
	if sumQ != e.qd {
		return fail("no-lost-tasks", "cache queues hold %d tasks but qd=%d", sumQ, e.qd)
	}
	for i, level := range e.slots {
		for j, slot := range level {
			if m := slot.cache.Stats.Misses; m < e.prevMiss[i][j] {
				return fail("miss-monotone", "L%d[%d]: miss counter went backwards (%d -> %d)",
					i+1, j, e.prevMiss[i][j], m)
			} else {
				e.prevMiss[i][j] = m
			}
		}
	}
	return nil
}

// checkRunEnd asserts full conservation once the loop has drained: every
// strand finished, every queued task admitted, every reservation released.
func (e *engine) checkRunEnd() error {
	fail := func(name, format string, args ...any) error {
		return &InvariantError{Clock: e.clock, Name: name, Detail: fmt.Sprintf(format, args...)}
	}
	if e.live != 0 || e.nrun != 0 || len(e.blockedL) != 0 {
		return fail("strand-conservation", "run ended with %d live, %d runnable, %d blocked strands",
			e.live, e.nrun, len(e.blockedL))
	}
	if e.qd != 0 {
		return fail("no-lost-tasks", "run ended with %d tasks still queued", e.qd)
	}
	if e.chaos != nil && len(e.chaos.deferred) != 0 {
		return fail("no-lost-tasks", "run ended with %d deferred admission passes", len(e.chaos.deferred))
	}
	for _, level := range e.slots {
		for _, slot := range level {
			if slot.used != 0 || slot.anchd != 0 || len(slot.queue) != 0 {
				return fail("slot-occupancy", "%s: run ended with used=%d anchored=%d queued=%d",
					slotName(slot), slot.used, slot.anchd, len(slot.queue))
			}
		}
	}
	return nil
}

func slotName(slot *cacheSlot) string {
	return fmt.Sprintf("L%d[%d]", slot.cache.Level, slot.cache.Index)
}
