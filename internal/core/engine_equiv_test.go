package core

// Equivalence tests for the engine fast path.  Each workload runs twice on
// identical machines: once on the fast engine (batched solo grants, inline
// leaf spawns, active-core scan) and once with withReference(), which takes
// the seed engine's schedule decision for decision.  The determinism
// contract requires the two runs to agree on every observable: virtual
// Steps, the full per-cache traffic snapshot, PlacedAt, Steals, and the
// entire heap contents.
//
// The workloads are chosen to drive the paths the algorithm goldens cannot
// reach — in particular single-task SpawnSB (no shipped algorithm forks a
// lone SB task), which exercises inlineSB / inlineAnchored / inlineRejoin.

import (
	"reflect"
	"testing"

	"oblivhm/internal/hm"
)

// equivResult is everything the contract freezes, in comparable form.
type equivResult struct {
	Steps  int64
	Sim    hm.Snapshot
	Placed []int
	Steals int64
	Heap   []uint64
}

func runEquiv(cfg hm.Config, space int64, opts []Opt, workload func(s *Session) func(*Ctx), ref bool) equivResult {
	m := hm.MustMachine(cfg)
	o := append([]Opt{}, opts...)
	if ref {
		o = append(o, withReference())
	}
	s := NewSim(m, o...)
	root := workload(s)
	st := s.RunCold(space, root)
	r := equivResult{Steps: st.Steps, Sim: st.Sim, Steals: s.Steals()}
	for lv := 1; lv < cfg.NumLevels(); lv++ {
		r.Placed = append(r.Placed, s.PlacedAt(lv))
	}
	for a := hm.Addr(0); int64(a) < m.HeapWords(); a++ {
		r.Heap = append(r.Heap, m.Peek(a))
	}
	return r
}

func checkEquiv(t *testing.T, name string, cfg hm.Config, space int64, opts []Opt, workload func(s *Session) func(*Ctx)) {
	t.Helper()
	t.Run(name, func(t *testing.T) {
		fast := runEquiv(cfg, space, opts, workload, false)
		ref := runEquiv(cfg, space, opts, workload, true)
		if fast.Steps != ref.Steps {
			t.Errorf("Steps: fast %d, reference %d", fast.Steps, ref.Steps)
		}
		if !reflect.DeepEqual(fast.Sim, ref.Sim) {
			t.Errorf("machine snapshot drifted:\nfast %+v\nref  %+v", fast.Sim, ref.Sim)
		}
		if !reflect.DeepEqual(fast.Placed, ref.Placed) {
			t.Errorf("PlacedAt: fast %v, reference %v", fast.Placed, ref.Placed)
		}
		if fast.Steals != ref.Steals {
			t.Errorf("Steals: fast %d, reference %d", fast.Steals, ref.Steals)
		}
		if !reflect.DeepEqual(fast.Heap, ref.Heap) {
			t.Errorf("heap contents differ (fast vs reference)")
		}
	})
}

// equivMachines are the hierarchy shapes the workloads run on: a 3-level
// multicore, a 4-level tree, a deeper 5-level tree and a single core (the
// pure solo-batching schedule).
func equivMachines() map[string]hm.Config {
	return map[string]hm.Config{
		"mc3": hm.MC3(8),
		"hm4": hm.HM4(4, 4),
		"hm5": hm.HM5(2, 2, 2),
		"seq": hm.Seq(),
	}
}

// TestEquivSingleTaskSpawnSB drives the inline leaf-spawn path: a chain of
// single-task SB forks at descending space bounds, each child touching
// memory before and after forking so the parent/child interleaving is
// observable through the caches.
func TestEquivSingleTaskSpawnSB(t *testing.T) {
	for mname, cfg := range equivMachines() {
		c2 := cfg.Levels[0].Capacity * 2 // fits below the top on every shape
		checkEquiv(t, "anchored/"+mname, cfg, 1<<16, nil, func(s *Session) func(*Ctx) {
			v := s.NewI64(256)
			return func(c *Ctx) {
				for i := 0; i < 4; i++ {
					i := i
					c.StoreI(v.Base+Addr(i), int64(i))
					c.SpawnSB(Task{Space: c2, Fn: func(cc *Ctx) {
						for j := 0; j < 32; j++ {
							cc.StoreI(v.Base+Addr(8*i+j%8), cc.LoadI(v.Base+Addr(j%16))+1)
						}
					}})
					c.StoreI(v.Base+Addr(64+i), c.LoadI(v.Base+Addr(i)))
				}
			}
		})
	}
}

// TestEquivSingleTaskNested drives the single-task fallback where the child
// is too big for the next level down and runs nested under the parent's
// anchor.
func TestEquivSingleTaskNested(t *testing.T) {
	for _, mname := range []string{"mc3", "hm4", "hm5"} {
		cfg := equivMachines()[mname]
		top := cfg.Levels[len(cfg.Levels)-1].Capacity
		below := cfg.Levels[len(cfg.Levels)-2].Capacity
		checkEquiv(t, mname, cfg, top, nil, func(s *Session) func(*Ctx) {
			v := s.NewI64(128)
			return func(c *Ctx) {
				c.SpawnSB(Task{Space: below * 2, Fn: func(cc *Ctx) {
					for j := 0; j < 64; j++ {
						cc.StoreI(v.Base+Addr(j), int64(j))
					}
				}})
				c.StoreI(v.Base, c.LoadI(v.Base+Addr(1)))
			}
		})
	}
}

// TestEquivRecursiveSpawn: binary SB recursion with PFor leaves — the usual
// algorithm shape, with odd sizes so chunking hits remainders.
func TestEquivRecursiveSpawn(t *testing.T) {
	for mname, cfg := range equivMachines() {
		checkEquiv(t, mname, cfg, 1<<16, nil, func(s *Session) func(*Ctx) {
			const n = 777
			v := s.NewI64(n)
			var rec func(c *Ctx, lo, hi int)
			rec = func(c *Ctx, lo, hi int) {
				if hi-lo <= 64 {
					c.PFor(hi-lo, 1, func(cc *Ctx, a, b int) {
						for i := a; i < b; i++ {
							v.Set(cc, lo+i, v.At(cc, lo+i)+int64(lo+i))
						}
					})
					return
				}
				mid := (lo + hi) / 2
				c.SpawnSB(
					Task{Space: int64(mid-lo) * 2, Fn: func(cc *Ctx) { rec(cc, lo, mid) }},
					Task{Space: int64(hi-mid) * 2, Fn: func(cc *Ctx) { rec(cc, mid, hi) }},
				)
			}
			return func(c *Ctx) { rec(c, 0, n) }
		})
	}
}

// TestEquivCGCSBFanouts covers the three SpawnCGCSB placement regimes
// (even-contiguous, small fan-out descent, nested at λ) across fan-out
// sizes.
func TestEquivCGCSBFanouts(t *testing.T) {
	for mname, cfg := range equivMachines() {
		for _, m := range []int{1, 2, 3, 7, 16} {
			m := m
			checkEquiv(t, mname+"/m"+string(rune('0'+m%10)), cfg, 1<<16, nil, func(s *Session) func(*Ctx) {
				v := s.NewI64(m * 32)
				return func(c *Ctx) {
					c.SpawnCGCSB(cfg.Levels[0].Capacity/2, m, func(cc *Ctx, idx int) {
						for j := 0; j < 32; j++ {
							v.Set(cc, idx*32+j, int64(idx*j))
						}
					})
				}
			})
		}
	}
}

// TestEquivStealing: an unbalanced fork pattern under WithStealing — the
// fast path must keep the same steal victims and counts (inline spawns are
// disabled under stealing precisely to preserve them).
func TestEquivStealing(t *testing.T) {
	cfg := hm.HM4(4, 4)
	checkEquiv(t, "hm4", cfg, 1<<16, []Opt{WithStealing()}, func(s *Session) func(*Ctx) {
		v := s.NewI64(1024)
		return func(c *Ctx) {
			var tasks []Task
			for k := 0; k < 9; k++ {
				k := k
				work := 16 << uint(k%4) // deliberately unequal
				tasks = append(tasks, Task{Space: 256, Fn: func(cc *Ctx) {
					for j := 0; j < work; j++ {
						v.Set(cc, (k*97+j)%1024, int64(k+j))
					}
				}})
			}
			c.SpawnSB(tasks...)
		}
	})
}

// TestEquivFlatScheduler pins the ablation scheduler.
func TestEquivFlatScheduler(t *testing.T) {
	cfg := hm.HM4(4, 4)
	checkEquiv(t, "hm4", cfg, 1<<16, []Opt{WithFlatScheduler()}, func(s *Session) func(*Ctx) {
		v := s.NewI64(512)
		return func(c *Ctx) {
			var tasks []Task
			for k := 0; k < 6; k++ {
				k := k
				tasks = append(tasks, Task{Space: 128, Fn: func(cc *Ctx) {
					for j := 0; j < 64; j++ {
						v.Set(cc, k*64+j, int64(k*j))
					}
				}})
			}
			c.SpawnSB(tasks...)
		}
	})
}

// TestEquivAdmissionPressure queues more concurrently forked space than the
// target level holds, so placement stalls in Q(λ) and admits run on strand
// completion — the reservation bookkeeping must match exactly.
func TestEquivAdmissionPressure(t *testing.T) {
	cfg := hm.HM4(2, 2)
	c2 := cfg.Levels[1].Capacity
	checkEquiv(t, "hm4", cfg, cfg.Levels[2].Capacity, nil, func(s *Session) func(*Ctx) {
		v := s.NewI64(64 * 8)
		return func(c *Ctx) {
			var tasks []Task
			for k := 0; k < 8; k++ {
				k := k
				tasks = append(tasks, Task{Space: c2, Fn: func(cc *Ctx) {
					for j := 0; j < 64; j++ {
						v.Set(cc, k*64+j, int64(k))
					}
				}})
			}
			c.SpawnSB(tasks...)
		}
	})
}

// TestEquivTickOvershoot: huge Tick charges overshoot the round budget by
// orders of magnitude; boundary forgiveness must batch identically.
func TestEquivTickOvershoot(t *testing.T) {
	for mname, cfg := range equivMachines() {
		checkEquiv(t, mname, cfg, 1<<12, nil, func(s *Session) func(*Ctx) {
			v := s.NewI64(16)
			return func(c *Ctx) {
				for i := 0; i < 8; i++ {
					c.Tick(1000)
					c.StoreI(v.Base+Addr(i), c.LoadI(v.Base+Addr((i+1)%16))+1)
					c.Tick(3)
				}
			}
		})
	}
}

// TestEquivDeepSerial: a long single-strand run — the batched solo grant in
// its purest form.
func TestEquivDeepSerial(t *testing.T) {
	for mname, cfg := range equivMachines() {
		checkEquiv(t, mname, cfg, 1<<12, nil, func(s *Session) func(*Ctx) {
			v := s.NewI64(256)
			return func(c *Ctx) {
				for i := 0; i < 5000; i++ {
					a := Addr(i % 256)
					c.StoreI(v.Base+a, c.LoadI(v.Base+a)+1)
				}
			}
		})
	}
}

// TestEquivInlineChildForks: a single-task SB child (inline candidate) that
// itself forks nested subtasks round-robin over its anchor's cores — some
// land on the parent's own run queue while the child is mid-flight, so the
// child's completion must requeue the parent behind them (inlineRejoin).
func TestEquivInlineChildForks(t *testing.T) {
	for _, mname := range []string{"mc3", "hm4", "hm5"} {
		cfg := equivMachines()[mname]
		c1 := cfg.Levels[0].Capacity
		checkEquiv(t, mname, cfg, 1<<18, nil, func(s *Session) func(*Ctx) {
			v := s.NewI64(1024)
			return func(c *Ctx) {
				// Child space is too big for an L1, so it anchors at level 2
				// over the parent's own core group.
				c.SpawnSB(Task{Space: c1 * 2, Fn: func(cc *Ctx) {
					cc.SpawnCGCSB(c1*2, 8, func(c2 *Ctx, idx int) {
						for j := 0; j < 16; j++ {
							c2.StoreI(v.Base+Addr(idx*16+j), int64(idx+j))
						}
					})
					for j := 0; j < 8; j++ {
						cc.StoreI(v.Base+Addr(512+j), cc.LoadI(v.Base+Addr(j))+1)
					}
				}})
				c.StoreI(v.Base+Addr(1000), c.LoadI(v.Base)+7)
			}
		})
	}
}

// TestEquivInlineUnderLoad: every core first gets a nested task, then each
// task forks a lone SB child.  With the siblings loading the other cores,
// the least-loaded placement lands some children on their parent's own core
// — the configuration where inlineSB actually fires — while others fall
// back to the queued path; both must match the reference schedule.
func TestEquivInlineUnderLoad(t *testing.T) {
	for _, mname := range []string{"mc3", "hm4", "hm5"} {
		cfg := equivMachines()[mname]
		p := cfg.Cores()
		c1 := cfg.Levels[0].Capacity
		top := cfg.Levels[len(cfg.Levels)-1].Capacity
		checkEquiv(t, mname, cfg, top, nil, func(s *Session) func(*Ctx) {
			v := s.NewI64(p * 64)
			return func(c *Ctx) {
				var tasks []Task
				for k := 0; k < p; k++ {
					k := k
					// Space above the next level's capacity: runs nested at
					// the top, round-robined over the cores.
					tasks = append(tasks, Task{Space: top, Fn: func(cc *Ctx) {
						cc.Tick(int64(k) * 7)
						// Small child: anchors at an L1.
						cc.SpawnSB(Task{Space: c1 / 2, Fn: func(c2 *Ctx) {
							for j := 0; j < 16; j++ {
								c2.StoreI(v.Base+Addr(k*64+j), int64(k+j))
							}
						}})
						// Medium child: anchors at an intermediate level.
						cc.SpawnSB(Task{Space: c1 * 2, Fn: func(c2 *Ctx) {
							for j := 0; j < 16; j++ {
								c2.StoreI(v.Base+Addr(k*64+32+j), c2.LoadI(v.Base+Addr(k*64+j))+1)
							}
						}})
					}})
				}
				c.SpawnSB(tasks...)
			}
		})
	}
}

// TestEquivQuantumVariants reruns a mixed workload under a non-default
// quantum, which shifts every round boundary.
func TestEquivQuantumVariants(t *testing.T) {
	cfg := hm.HM4(4, 4)
	for _, q := range []int64{1, 8, 57} {
		q := q
		checkEquiv(t, "q"+string(rune('0'+q%10)), cfg, 1<<16, []Opt{WithQuantum(q)}, func(s *Session) func(*Ctx) {
			v := s.NewI64(512)
			return func(c *Ctx) {
				c.PFor(500, 1, func(cc *Ctx, lo, hi int) {
					for i := lo; i < hi; i++ {
						v.Set(cc, i, int64(i*i))
					}
				})
				c.SpawnSB(
					Task{Space: 128, Fn: func(cc *Ctx) { cc.Tick(100) }},
					Task{Space: 128, Fn: func(cc *Ctx) {
						for i := 0; i < 50; i++ {
							v.Set(cc, i, v.At(cc, i)+1)
						}
					}},
				)
			}
		})
	}
}
