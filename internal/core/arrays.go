package core

import "math"

// Typed array handles over session memory.  A handle is a (base, length)
// view; element access goes through a Ctx so that simulated sessions charge
// virtual time and cache traffic.  Peek/Poke variants on the Session bypass
// the accounting and exist for initialisation and verification only.

// F64 is a vector of float64 (one word per element).
type F64 struct {
	Base Addr
	N    int
}

// NewF64 allocates an n-element float64 vector.
func (s *Session) NewF64(n int) F64 { return F64{Base: s.AllocWords(int64(n)), N: n} }

// At and Set are accounted element accesses.
func (v F64) At(c *Ctx, i int) float64     { return c.LoadF(v.Base + Addr(i)) }
func (v F64) Set(c *Ctx, i int, x float64) { c.StoreF(v.Base+Addr(i), x) }

// Slice returns the subvector [lo, hi).
func (v F64) Slice(lo, hi int) F64 { return F64{Base: v.Base + Addr(lo), N: hi - lo} }

// I64 is a vector of int64 (one word per element).
type I64 struct {
	Base Addr
	N    int
}

func (s *Session) NewI64(n int) I64 { return I64{Base: s.AllocWords(int64(n)), N: n} }

func (v I64) At(c *Ctx, i int) int64     { return c.LoadI(v.Base + Addr(i)) }
func (v I64) Set(c *Ctx, i int, x int64) { c.StoreI(v.Base+Addr(i), x) }
func (v I64) Slice(lo, hi int) I64       { return I64{Base: v.Base + Addr(lo), N: hi - lo} }

// U64 is a vector of uint64 (one word per element).
type U64 struct {
	Base Addr
	N    int
}

func (s *Session) NewU64(n int) U64 { return U64{Base: s.AllocWords(int64(n)), N: n} }

func (v U64) At(c *Ctx, i int) uint64     { return c.LoadU(v.Base + Addr(i)) }
func (v U64) Set(c *Ctx, i int, x uint64) { c.StoreU(v.Base+Addr(i), x) }
func (v U64) Slice(lo, hi int) U64        { return U64{Base: v.Base + Addr(lo), N: hi - lo} }

// C128 is a vector of complex128 (two words per element: real then imag).
type C128 struct {
	Base Addr
	N    int
}

func (s *Session) NewC128(n int) C128 { return C128{Base: s.AllocWords(2 * int64(n)), N: n} }

func (v C128) At(c *Ctx, i int) complex128 {
	a := v.Base + Addr(2*i)
	return complex(c.LoadF(a), c.LoadF(a+1))
}

func (v C128) Set(c *Ctx, i int, x complex128) {
	a := v.Base + Addr(2*i)
	c.StoreF(a, real(x))
	c.StoreF(a+1, imag(x))
}

func (v C128) Slice(lo, hi int) C128 { return C128{Base: v.Base + Addr(2*lo), N: hi - lo} }

// Pairs is a vector of two-word records (Key, Val), the record type used by
// the sorting and graph algorithms.
type Pairs struct {
	Base Addr
	N    int
}

func (s *Session) NewPairs(n int) Pairs { return Pairs{Base: s.AllocWords(2 * int64(n)), N: n} }

// Pair is one (key, value) record.
type Pair struct {
	Key uint64
	Val uint64
}

func (v Pairs) At(c *Ctx, i int) Pair {
	a := v.Base + Addr(2*i)
	return Pair{Key: c.LoadU(a), Val: c.LoadU(a + 1)}
}

func (v Pairs) Set(c *Ctx, i int, p Pair) {
	a := v.Base + Addr(2*i)
	c.StoreU(a, p.Key)
	c.StoreU(a+1, p.Val)
}

func (v Pairs) Key(c *Ctx, i int) uint64 { return c.LoadU(v.Base + Addr(2*i)) }

func (v Pairs) Slice(lo, hi int) Pairs { return Pairs{Base: v.Base + Addr(2*lo), N: hi - lo} }

// Mat is a row-major float64 matrix view with an explicit stride, so that
// quadrant views (for the recursive GEP and transpose algorithms) alias the
// parent storage.
type Mat struct {
	Base       Addr
	Rows, Cols int
	Stride     int
}

// NewMat allocates a rows x cols matrix.
func (s *Session) NewMat(rows, cols int) Mat {
	return Mat{Base: s.AllocWords(int64(rows) * int64(cols)), Rows: rows, Cols: cols, Stride: cols}
}

func (m Mat) addr(i, j int) Addr { return m.Base + Addr(i*m.Stride+j) }

func (m Mat) At(c *Ctx, i, j int) float64     { return c.LoadF(m.addr(i, j)) }
func (m Mat) Set(c *Ctx, i, j int, x float64) { c.StoreF(m.addr(i, j), x) }

// Sub returns the view of rows [r0,r0+rows) x cols [c0,c0+cols).
func (m Mat) Sub(r0, c0, rows, cols int) Mat {
	return Mat{Base: m.addr(r0, c0), Rows: rows, Cols: cols, Stride: m.Stride}
}

// Quads returns the four quadrants of a square matrix with even dimension:
// m11 m12 / m21 m22.
func (m Mat) Quads() (m11, m12, m21, m22 Mat) {
	h := m.Rows / 2
	return m.Sub(0, 0, h, h), m.Sub(0, h, h, h), m.Sub(h, 0, h, h), m.Sub(h, h, h, h)
}

// Row returns row i as a vector view.
func (m Mat) Row(i int) F64 { return F64{Base: m.addr(i, 0), N: m.Cols} }

// ---- allocation from inside a running task ----

// AllocWords reserves n words of shared memory from inside a task.  The
// allocator is engine/machine state, so a speculatively executing strand
// (parround.go) serializes first — mid-run allocation is the reason
// algorithms should allocate through the Ctx rather than through
// c.Session() once a run has started.
func (c *Ctx) AllocWords(n int64) Addr {
	if c.st != nil {
		c.serialize()
	}
	return c.s.AllocWords(n)
}

// NewF64 / NewI64 / NewU64 / NewC128 / NewPairs / NewMat are the Ctx
// counterparts of the Session allocators, safe to call mid-run under every
// engine backend.
func (c *Ctx) NewF64(n int) F64     { return F64{Base: c.AllocWords(int64(n)), N: n} }
func (c *Ctx) NewI64(n int) I64     { return I64{Base: c.AllocWords(int64(n)), N: n} }
func (c *Ctx) NewU64(n int) U64     { return U64{Base: c.AllocWords(int64(n)), N: n} }
func (c *Ctx) NewC128(n int) C128   { return C128{Base: c.AllocWords(2 * int64(n)), N: n} }
func (c *Ctx) NewPairs(n int) Pairs { return Pairs{Base: c.AllocWords(2 * int64(n)), N: n} }

func (c *Ctx) NewMat(rows, cols int) Mat {
	return Mat{Base: c.AllocWords(int64(rows) * int64(cols)), Rows: rows, Cols: cols, Stride: cols}
}

// ---- unaccounted access (setup & verification) ----

func (s *Session) peekWord(a Addr) uint64 {
	if s.mach != nil {
		return s.mach.Peek(a)
	}
	return s.nm().load(a)
}

func (s *Session) pokeWord(a Addr, v uint64) {
	if s.mach != nil {
		s.mach.Poke(a, v)
		return
	}
	s.nm().store(a, v)
}

// PeekF / PokeF access an F64 without accounting.
func (s *Session) PeekF(v F64, i int) float64 {
	return math.Float64frombits(s.peekWord(v.Base + Addr(i)))
}
func (s *Session) PokeF(v F64, i int, x float64) { s.pokeWord(v.Base+Addr(i), math.Float64bits(x)) }

// PeekI / PokeI access an I64 without accounting.
func (s *Session) PeekI(v I64, i int) int64    { return int64(s.peekWord(v.Base + Addr(i))) }
func (s *Session) PokeI(v I64, i int, x int64) { s.pokeWord(v.Base+Addr(i), uint64(x)) }

// PeekU / PokeU access a U64 without accounting.
func (s *Session) PeekU(v U64, i int) uint64    { return s.peekWord(v.Base + Addr(i)) }
func (s *Session) PokeU(v U64, i int, x uint64) { s.pokeWord(v.Base+Addr(i), x) }

// PeekC / PokeC access a C128 without accounting.
func (s *Session) PeekC(v C128, i int) complex128 {
	a := v.Base + Addr(2*i)
	return complex(math.Float64frombits(s.peekWord(a)), math.Float64frombits(s.peekWord(a+1)))
}

func (s *Session) PokeC(v C128, i int, x complex128) {
	a := v.Base + Addr(2*i)
	s.pokeWord(a, math.Float64bits(real(x)))
	s.pokeWord(a+1, math.Float64bits(imag(x)))
}

// PeekP / PokeP access a Pairs without accounting.
func (s *Session) PeekP(v Pairs, i int) Pair {
	a := v.Base + Addr(2*i)
	return Pair{Key: s.peekWord(a), Val: s.peekWord(a + 1)}
}

func (s *Session) PokeP(v Pairs, i int, p Pair) {
	a := v.Base + Addr(2*i)
	s.pokeWord(a, p.Key)
	s.pokeWord(a+1, p.Val)
}

// PeekM / PokeM access a Mat without accounting.
func (s *Session) PeekM(m Mat, i, j int) float64 {
	return math.Float64frombits(s.peekWord(m.addr(i, j)))
}

func (s *Session) PokeM(m Mat, i, j int, x float64) {
	s.pokeWord(m.addr(i, j), math.Float64bits(x))
}
