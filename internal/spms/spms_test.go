package spms

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"oblivhm/internal/core"
	"oblivhm/internal/hm"
)

func checkSorted(t *testing.T, s *core.Session, v core.Pairs) {
	t.Helper()
	for i := 1; i < v.N; i++ {
		a, b := s.PeekP(v, i-1), s.PeekP(v, i)
		if less(b, a) {
			t.Fatalf("not sorted at %d: %+v > %+v", i, a, b)
		}
	}
}

func fill(s *core.Session, v core.Pairs, keys []uint64) {
	for i, k := range keys {
		s.PokeP(v, i, core.Pair{Key: k, Val: uint64(i)})
	}
}

// checkPermutation verifies the output is a permutation of the input by
// checking that every original (key, index) record is present.
func checkPermutation(t *testing.T, s *core.Session, v core.Pairs, keys []uint64) {
	t.Helper()
	seen := make(map[core.Pair]bool, v.N)
	for i := 0; i < v.N; i++ {
		seen[s.PeekP(v, i)] = true
	}
	for i, k := range keys {
		if !seen[core.Pair{Key: k, Val: uint64(i)}] {
			t.Fatalf("record (%d,%d) lost", k, i)
		}
	}
}

func TestSortRandom(t *testing.T) {
	for _, mode := range []string{"sim", "native"} {
		t.Run(mode, func(t *testing.T) {
			for _, n := range []int{1, 2, 10, 33, 100, 1000, 5000} {
				var s *core.Session
				if mode == "sim" {
					s = core.NewSim(hm.MustMachine(hm.HM4(4, 4)))
				} else {
					s = core.NewNative(4)
				}
				rng := rand.New(rand.NewSource(int64(n)))
				keys := make([]uint64, n)
				for i := range keys {
					keys[i] = rng.Uint64()
				}
				v := s.NewPairs(n)
				fill(s, v, keys)
				s.Run(SpaceBound(n), func(c *core.Ctx) { Sort(c, v) })
				checkSorted(t, s, v)
				checkPermutation(t, s, v, keys)
			}
		})
	}
}

func TestSortAdversarialInputs(t *testing.T) {
	s := core.NewNative(4)
	n := 2000
	cases := map[string]func(i int) uint64{
		"sorted":    func(i int) uint64 { return uint64(i) },
		"reverse":   func(i int) uint64 { return uint64(n - i) },
		"allequal":  func(i int) uint64 { return 42 },
		"twovalues": func(i int) uint64 { return uint64(i % 2) },
		"oneoutlier": func(i int) uint64 {
			if i == n/2 {
				return 0
			}
			return 7
		},
		"sawtooth": func(i int) uint64 { return uint64(i % 17) },
	}
	for name, gen := range cases {
		t.Run(name, func(t *testing.T) {
			keys := make([]uint64, n)
			for i := range keys {
				keys[i] = gen(i)
			}
			v := s.NewPairs(n)
			fill(s, v, keys)
			s.Run(SpaceBound(n), func(c *core.Ctx) { Sort(c, v) })
			checkSorted(t, s, v)
			checkPermutation(t, s, v, keys)
		})
	}
}

func TestSortStableOrderProperty(t *testing.T) {
	// The lexicographic (Key, Val) order with Val = original index makes the
	// result exactly equal to a stable sort by key.
	prop := func(seed int64, nn uint16) bool {
		n := int(nn)%800 + 1
		rng := rand.New(rand.NewSource(seed))
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = uint64(rng.Intn(20)) // heavy duplicates
		}
		s := core.NewNative(3)
		v := s.NewPairs(n)
		fill(s, v, keys)
		s.Run(SpaceBound(n), func(c *core.Ctx) { Sort(c, v) })
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
		for i := 0; i < n; i++ {
			p := s.PeekP(v, i)
			if p.Key != keys[idx[i]] || p.Val != uint64(idx[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestTheorem3MissShape: sorting incurs O((n/(q_i·B_i))·log_{C_i} n) misses
// per level-i cache.  Absolute constants are machine-scale-dependent (the
// BP glue allocates Θ(n) scratch words per level), so the check is on the
// growth rate: doubling n must grow misses essentially linearly
// (ratio <= ~2.6, versus 4 for a quadratic-miss algorithm), plus a loose
// absolute cap.
func TestTheorem3MissShape(t *testing.T) {
	cfg := hm.MC3(4)
	run := func(n int) int64 {
		s := core.NewSim(hm.MustMachine(cfg))
		rng := rand.New(rand.NewSource(11))
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = rng.Uint64()
		}
		v := s.NewPairs(n)
		fill(s, v, keys)
		return s.RunCold(SpaceBound(n), func(c *core.Ctx) { Sort(c, v) }).Sim.Levels[0].TotalMisses
	}
	m1 := run(1 << 13)
	m2 := run(1 << 15)
	// Quadrupling n should grow misses by ~4·log(4n)/log(n) <= 4.8; a
	// per-comparison-miss algorithm would show ~4, an O(n²) one ~16.
	if ratio := float64(m2) / float64(m1); ratio > 4.8 {
		t.Errorf("L1 miss growth over 4x n = %.2f, want near-linear (<= 4.8)", ratio)
	}
	// Loose absolute sanity cap: well below one miss per record comparison.
	words := int64(2 << 15)
	b1 := cfg.Levels[0].Block
	logCn := math.Log(float64(words)) / math.Log(float64(cfg.Levels[0].Capacity))
	if cap := int64(120 * float64(words) / float64(b1) * logCn); m2 > cap {
		t.Errorf("L1 total misses = %d > loose cap %d", m2, cap)
	}
}

// TestTheorem3Speedup: parallel steps shrink with more cores.
func TestTheorem3Speedup(t *testing.T) {
	run := func(p int) int64 {
		s := core.NewSim(hm.MustMachine(hm.MC3(p)))
		n := 1 << 11
		rng := rand.New(rand.NewSource(13))
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = rng.Uint64()
		}
		v := s.NewPairs(n)
		fill(s, v, keys)
		return s.RunCold(SpaceBound(n), func(c *core.Ctx) { Sort(c, v) }).Steps
	}
	if p8, p1 := run(8), run(1); p8*2 > p1 {
		t.Errorf("8-core sort %d steps vs 1-core %d: speedup < 2", p8, p1)
	}
}

func TestInsertionBase(t *testing.T) {
	s := core.NewNative(1)
	v := s.NewPairs(16)
	for i := 0; i < 16; i++ {
		s.PokeP(v, i, core.Pair{Key: uint64(16 - i), Val: uint64(i)})
	}
	s.Run(SpaceBound(16), func(c *core.Ctx) { insertion(c, v) })
	checkSorted(t, s, v)
}

func TestIsqrt(t *testing.T) {
	for _, c := range []struct{ n, want int }{{1, 1}, {3, 1}, {4, 2}, {99, 9}, {100, 10}, {101, 10}} {
		if got := isqrt(c.n); got != c.want {
			t.Errorf("isqrt(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestFloatKeyOrderPreserving(t *testing.T) {
	vals := []float64{math.Inf(-1), -1e300, -3.5, -1e-300, 0, 1e-300, 2.25, 1e300, math.Inf(1)}
	for i := 1; i < len(vals); i++ {
		if !(FloatKey(vals[i-1]) < FloatKey(vals[i])) {
			t.Fatalf("FloatKey order broken between %v and %v", vals[i-1], vals[i])
		}
	}
	for _, v := range vals {
		if got := FloatFromKey(FloatKey(v)); got != v {
			t.Fatalf("round trip %v -> %v", v, got)
		}
	}
}

func TestSortFloatKeys(t *testing.T) {
	s := core.NewNative(3)
	n := 1000
	rng := rand.New(rand.NewSource(8))
	fs := make([]float64, n)
	v := s.NewPairs(n)
	for i := range fs {
		fs[i] = rng.NormFloat64() * 100
		s.PokeP(v, i, core.Pair{Key: FloatKey(fs[i]), Val: uint64(i)})
	}
	s.Run(SpaceBound(n), func(c *core.Ctx) { Sort(c, v) })
	sort.Float64s(fs)
	for i := 0; i < n; i++ {
		if got := FloatFromKey(s.PeekP(v, i).Key); got != fs[i] {
			t.Fatalf("float sort wrong at %d: %v vs %v", i, got, fs[i])
		}
	}
}
