// Package spms implements a multicore-oblivious sorting algorithm with the
// structure of Sample Partition Merge Sort (SPMS, Cole–Ramachandran), which
// paper §III-C schedules with the CGC and CGC⇒SB hints: a problem of size n
// is decomposed by O(1) balanced-parallel (BP) computations — sample
// gathering, partition counting, prefix sums, scattering — into ~√n
// independent subproblems of size O(√n), solved by two waves of recursive
// calls (sort the √n subarrays, then sort the sample-delimited buckets).
//
// Records are (key, value) word pairs ordered lexicographically.  Pivot
// bands are three-way: records strictly between two deduplicated pivots
// form a "strict" band that is sorted recursively, records equal to a pivot
// form an "equal" band that needs no further work.  This makes termination
// unconditional under arbitrary duplicate distributions (a strict band can
// contain at most ~n/c + √n records for sampling rate c).
//
// Deviation from the real SPMS (documented in DESIGN.md): buckets formed
// from sorted runs are re-sorted rather than multi-way merged; the
// recursion structure, the CGC/BP glue, and the Θ((n/B)·log_C n) cache
// behaviour that §III-C relies on are the same.
package spms

import (
	"oblivhm/internal/core"
	"oblivhm/internal/scan"
	"oblivhm/internal/transpose"
)

// SpaceBound is the declared space bound of Sort on n records, in words:
// the input, the scatter buffer, counts and samples are all linear.
func SpaceBound(n int) int64 { return 16 * int64(n) }

// baseSize is the cutoff below which a subproblem is sorted serially.
const baseSize = 32

// maxSamplesPerRun caps the regular-sampling rate.
const maxSamplesPerRun = 16

// less orders records lexicographically by (Key, Val).
func less(a, b core.Pair) bool {
	return a.Key < b.Key || (a.Key == b.Key && a.Val < b.Val)
}

// Sort sorts v in place by (Key, Val).
func Sort(c *core.Ctx, v core.Pairs) {
	n := v.N
	if n <= baseSize {
		insertion(c, v)
		return
	}
	l := isqrt(n)                         // subarray length ~ √n
	s := (n + l - 1) / l                  // number of subarrays
	cr := clamp(l/4, 1, maxSamplesPerRun) // samples per subarray

	// Phase 1 [CGC⇒SB]: sort the s runs of length <= l recursively.
	c.SpawnCGCSB(SpaceBound(l), s, func(cc *core.Ctx, i int) {
		lo, hi := i*l, (i+1)*l
		if hi > n {
			hi = n
		}
		Sort(cc, v.Slice(lo, hi))
	})

	// Phase 2 [CGC]: regular sampling — cr evenly spaced records per run.
	samples := c.NewPairs(s * cr)
	c.PFor(s*cr, 2, func(cc *core.Ctx, lo, hi int) {
		for t := lo; t < hi; t++ {
			i, j := t/cr, t%cr
			rlo, rhi := i*l, (i+1)*l
			if rhi > n {
				rhi = n
			}
			rlen := rhi - rlo
			pos := (j + 1) * rlen / (cr + 1)
			if pos >= rlen {
				pos = rlen - 1
			}
			samples.Set(cc, t, v.At(cc, rlo+pos))
		}
	})
	Sort(c, samples) // recursive: s*cr <= n/4 records

	// Choose every cr-th sample as a pivot and deduplicate.
	var pivots []core.Pair
	for t := cr - 1; t < s*cr; t += cr {
		p := samples.At(c, t)
		if len(pivots) == 0 || less(pivots[len(pivots)-1], p) {
			pivots = append(pivots, p)
		}
	}
	nb := 2*len(pivots) + 1 // strict, equal, strict, equal, ..., strict

	// Phase 2 [CGC]: per-run band counts in run-major layout
	// cntR[i*nb + b] = #records of run i in band b.  Each run's counter
	// index advances monotonically (runs are sorted), so the counting scan
	// is sequential — the band-major view needed for the global offsets is
	// produced by a cache-oblivious transpose.
	cntR := c.NewU64(s * nb)
	scan.FillU64(c, cntR, 0)
	c.PFor(s, l, func(cc *core.Ctx, ilo, ihi int) {
		for i := ilo; i < ihi; i++ {
			rlo, rhi := i*l, (i+1)*l
			if rhi > n {
				rhi = n
			}
			b := 0
			for t := rlo; t < rhi; t++ {
				p := v.At(cc, t)
				b = advanceBand(pivots, p, b)
				cntR.Set(cc, i*nb+b, cntR.At(cc, i*nb+b)+1)
			}
		}
	})
	cntB := c.NewU64(nb * s)
	transpose.RectWords(c, cntR, cntB, s, nb)

	// Prefix sums over the band-major counts give scatter offsets;
	// band b starts at off[b*s].
	scan.ExclusiveU64(c, cntB, core.U64{}, scan.AddU, 0)
	bandStart := make([]int, nb+1)
	for b := 0; b < nb; b++ {
		bandStart[b] = int(cntB.At(c, b*s))
	}
	bandStart[nb] = n

	// Transpose the offsets back so each run reads its own sequentially.
	offR := c.NewU64(s * nb)
	transpose.RectWords(c, cntB, offR, nb, s)

	// Phase 2 [CGC]: scatter into the band buffer.
	out := c.NewPairs(n)
	c.PFor(s, l, func(cc *core.Ctx, ilo, ihi int) {
		for i := ilo; i < ihi; i++ {
			rlo, rhi := i*l, (i+1)*l
			if rhi > n {
				rhi = n
			}
			offs := make([]int, nb)
			for b := 0; b < nb; b++ {
				offs[b] = int(offR.At(cc, i*nb+b))
			}
			b := 0
			for t := rlo; t < rhi; t++ {
				p := v.At(cc, t)
				b = advanceBand(pivots, p, b)
				out.Set(cc, offs[b], p)
				offs[b]++
			}
		}
	})

	// Phase 3 [CGC⇒SB]: sort the strict bands (even indices); equal bands
	// hold identical records and are already in order.
	c.SpawnCGCSB(SpaceBound(2*l), nb, func(cc *core.Ctx, b int) {
		if b%2 == 1 {
			return
		}
		lo, hi := bandStart[b], bandStart[b+1]
		if hi-lo > 1 {
			Sort(cc, out.Slice(lo, hi))
		}
	})

	scan.CopyPairs(c, v, out)
}

// advanceBand returns the band index of record p, starting the search at
// band b (valid because each run is scanned in sorted order).  Bands:
// 2k = strictly between pivot k-1 and pivot k, 2k+1 = equal to pivot k.
func advanceBand(pivots []core.Pair, p core.Pair, b int) int {
	for {
		k := b / 2
		if b%2 == 0 { // strict band before pivot k
			if k >= len(pivots) || less(p, pivots[k]) {
				return b
			}
		} else { // equal band of pivot k
			if p == pivots[k] {
				return b
			}
		}
		b++
	}
}

// insertion is the serial base-case sort.
func insertion(c *core.Ctx, v core.Pairs) {
	for i := 1; i < v.N; i++ {
		p := v.At(c, i)
		j := i - 1
		for j >= 0 {
			q := v.At(c, j)
			if !less(p, q) {
				break
			}
			v.Set(c, j+1, q)
			j--
		}
		v.Set(c, j+1, p)
	}
}

// SortByKey sorts v by Key only (payload order among equal keys follows the
// lexicographic tie-break, which is deterministic).
func SortByKey(c *core.Ctx, v core.Pairs) { Sort(c, v) }

func isqrt(n int) int {
	r := 1
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

func clamp(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// FloatKey maps a float64 to a uint64 whose unsigned order equals the
// float's total order (negative numbers first, -0 < +0 treated as equal up
// to the mapping, NaNs sort high).  Use it to sort records by float keys.
func FloatKey(f float64) uint64 {
	b := mathFloat64bits(f)
	if b&(1<<63) != 0 {
		return ^b // negative: flip everything
	}
	return b | 1<<63 // positive: set the sign bit
}

// FloatFromKey inverts FloatKey.
func FloatFromKey(k uint64) float64 {
	if k&(1<<63) != 0 {
		return mathFloat64frombits(k &^ (1 << 63))
	}
	return mathFloat64frombits(^k)
}
