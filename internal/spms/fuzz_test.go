package spms

// Native fuzz target for the SPMS sorter: arbitrary byte strings become key
// sequences (dense byte keys produce heavy duplication, which stresses the
// pivot bands), sorted on a small simulated machine and cross-checked
// against the obvious specification — output sorted, output a permutation
// of the input.  Run longer with `make fuzz`.

import (
	"testing"

	"oblivhm/internal/core"
	"oblivhm/internal/hm"
)

func FuzzSPMSSort(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{7})
	f.Add([]byte{3, 1, 2})
	f.Add([]byte{0xff, 0, 0xff, 0, 7, 7, 7, 7})
	f.Add([]byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0})
	f.Add([]byte("the quick brown fox jumps over the lazy dog"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		if len(data) > 256 {
			data = data[:256]
		}
		n := len(data)
		keys := make([]uint64, n)
		for i, b := range data {
			// Mix neighbouring bytes so keys span more than one byte while
			// staying deterministic in the input.
			keys[i] = uint64(b) | uint64(data[(i+1)%n])<<8
		}
		s := core.NewSim(hm.MustMachine(hm.HM4(2, 2)))
		v := s.NewPairs(n)
		fill(s, v, keys)
		s.Run(SpaceBound(n), func(c *core.Ctx) { Sort(c, v) })
		checkSorted(t, s, v)
		checkPermutation(t, s, v, keys)
	})
}
