// Package no implements the network-oblivious substrate of Bilardi et al.
// used in paper §IV: the M(N) machine (N processing elements with local
// memory communicating point-to-point in synchronous supersteps), its
// execution on M(p,B) (each processor simulates N/p consecutive PEs;
// messages between processors travel in blocks of B words), and the
// D-BSP(P, g, B) communication-time accounting.
//
// A network-oblivious algorithm is written against the Step API only — it
// sees N and its own PE index, never p or B.  The World records, per
// superstep, the exact word traffic between each processor pair, from which
// it derives:
//
//   - communication complexity on M(p,B): Σ_s h_s, where h_s is the
//     maximum over processors of max(blocks sent, blocks received), with
//     ceil(words/B) blocks per ordered processor pair;
//   - computation complexity: Σ_s of the maximum over processors of local
//     operations (explicit Work charges plus one per message word);
//   - D-BSP communication time: Σ_s h_s(B_i)·g_i, where i is the smallest
//     cluster level containing every message of superstep s.
package no

import (
	"errors"
	"fmt"
)

// ErrUsage is the sentinel wrapped by every machine-shape and PE-count
// validation failure in this package and package noalgo: p not dividing N,
// non-power-of-two PE counts, input slices of the wrong length.  The
// validations panic (the substrate has no error plumbing through the
// superstep API), but the panic values are errors wrapping ErrUsage, so
// harness.RunNO recovers them into ordinary returned errors and CLIs can
// errors.Is(err, no.ErrUsage) to print a usage hint instead of a stack
// trace.
var ErrUsage = errors.New("invalid machine or input shape")

// Usagef builds an ErrUsage-wrapping error for a validation panic.
func Usagef(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, ErrUsage)...)
}

// Msg is one received message.
type Msg struct {
	Src  int
	Tag  int
	Data []uint64
}

// World is an M(N) machine executed on M(p,B).
type World struct {
	N int // PEs
	P int // processors (must divide N, power of two for D-BSP accounting)
	B int // block size in words

	inbox  [][]Msg // delivered this superstep
	outbox [][]Msg // sent during the running superstep

	steps   int
	comm    int64 // Σ h_s with the configured B
	compTot int64 // Σ max-per-processor work

	work []int64 // per-processor work in the running superstep

	// pairWords[s] records cross-processor traffic of superstep s as a map
	// from src*P+dst to words, for D-BSP re-costing under different block
	// sizes.
	pairWords []map[int]int64
}

// NewWorld creates an M(N) machine executed on p processors with block
// size b.  p must divide N.
func NewWorld(n, p, b int) *World {
	if n <= 0 {
		panic(Usagef("no: machine size N=%d must be positive", n))
	}
	if p <= 0 || n%p != 0 {
		panic(Usagef("no: processor count p=%d must be positive and divide N=%d", p, n))
	}
	if b <= 0 {
		b = 1
	}
	return &World{
		N:     n,
		P:     p,
		B:     b,
		inbox: make([][]Msg, n),
		work:  make([]int64, p),
	}
}

// ProcOf returns the processor simulating PE pe (N/p consecutive PEs per
// processor, as the model prescribes).
func (w *World) ProcOf(pe int) int { return pe / (w.N / w.P) }

// Env is the per-PE view during a superstep.
type Env struct {
	w  *World
	pe int
}

// PE returns the executing processing element's index.
func (e *Env) PE() int { return e.pe }

// N returns the machine size (part of the M(N) specification, so network-
// oblivious algorithms may use it).
func (e *Env) N() int { return e.w.N }

// Inbox returns the messages delivered to this PE (sent in the previous
// superstep), in deterministic (src, send order) order.
func (e *Env) Inbox() []Msg { return e.w.inbox[e.pe] }

// Send queues a message for delivery at the start of the next superstep.
// The payload is copied.  One unit of work is charged per word.
func (e *Env) Send(dst, tag int, data ...uint64) {
	if dst < 0 || dst >= e.w.N {
		panic(fmt.Sprintf("no: send to PE %d of %d", dst, e.w.N))
	}
	cp := append([]uint64(nil), data...)
	e.w.outbox[dst] = append(e.w.outbox[dst], Msg{Src: e.pe, Tag: tag, Data: cp})
	e.w.work[e.w.ProcOf(e.pe)] += int64(len(data))
}

// Work charges n local operations to the executing PE's processor.
func (e *Env) Work(n int64) { e.w.work[e.w.ProcOf(e.pe)] += n }

// Step runs one superstep: f is invoked for every PE (in index order —
// the simulation is sequential and deterministic), messages sent during the
// superstep are delivered at the next one, and the communication accounts
// are updated.
func (w *World) Step(f func(e *Env)) {
	w.outbox = make([][]Msg, w.N)
	for i := range w.work {
		w.work[i] = 0
	}
	env := Env{w: w}
	for pe := 0; pe < w.N; pe++ {
		env.pe = pe
		f(&env)
	}
	// Account the traffic.
	pairs := make(map[int]int64)
	recvWork := make([]int64, w.P)
	for dst := 0; dst < w.N; dst++ {
		for _, m := range w.outbox[dst] {
			sp, dp := w.ProcOf(m.Src), w.ProcOf(dst)
			recvWork[dp] += int64(len(m.Data))
			if sp != dp {
				pairs[sp*w.P+dp] += int64(len(m.Data))
			}
		}
	}
	w.pairWords = append(w.pairWords, pairs)
	w.comm += hRelation(pairs, w.P, int64(w.B))
	maxWork := int64(0)
	for i := range w.work {
		if t := w.work[i] + recvWork[i]; t > maxWork {
			maxWork = t
		}
	}
	w.compTot += maxWork
	w.steps++
	w.inbox = w.outbox
	w.outbox = nil
}

// hRelation computes h_s = max over processors of max(sent, received)
// blocks for the given pair traffic and block size.
func hRelation(pairs map[int]int64, p int, b int64) int64 {
	sent := make([]int64, p)
	recv := make([]int64, p)
	//oblivcheck:allow determinism: commutative accumulation — per-processor sums are order-independent
	for key, words := range pairs {
		blocks := (words + b - 1) / b
		sent[key/p] += blocks
		recv[key%p] += blocks
	}
	h := int64(0)
	for i := 0; i < p; i++ {
		if sent[i] > h {
			h = sent[i]
		}
		if recv[i] > h {
			h = recv[i]
		}
	}
	return h
}

// Supersteps returns the number of supersteps executed.
func (w *World) Supersteps() int { return w.steps }

// Comm returns the communication complexity on M(p,B): Σ_s h_s.
func (w *World) Comm() int64 { return w.comm }

// Computation returns the computation complexity: Σ_s of the maximum
// per-processor work.
func (w *World) Computation() int64 { return w.compTot }

// DBSPTime returns the D-BSP(P, g, B) communication time of the recorded
// execution: for each superstep, the smallest enclosing cluster level i
// (every message stays within a cluster of size P/2^i) contributes
// h_s(B_i)·g_i.  g and bs are indexed by cluster level 0..log2(P)-1;
// P is the world's processor count, which must be a power of two.
func (w *World) DBSPTime(g []float64, bs []int64) float64 {
	logP := 0
	for 1<<logP < w.P {
		logP++
	}
	if 1<<logP != w.P {
		panic("no: D-BSP accounting requires power-of-two P")
	}
	if len(g) < logP || len(bs) < logP {
		panic("no: need g and B vectors of length log2(P)")
	}
	total := 0.0
	for _, pairs := range w.pairWords {
		if len(pairs) == 0 {
			continue
		}
		// Smallest cluster size 2^k covering every (src,dst) pair.
		k := 0
		//oblivcheck:allow determinism: commutative maximum — the covering cluster size is order-independent
		for key := range pairs {
			s, d := key/w.P, key%w.P
			for s>>k != d>>k {
				k++
			}
		}
		if k == 0 {
			continue // same processor (cannot happen: pairs are cross-proc)
		}
		i := logP - k // cluster size 2^k ⇔ level i with 2^i clusters
		if i < 0 {
			i = 0
		}
		total += float64(hRelation(pairs, w.P, bs[i])) * g[i]
	}
	return total
}
