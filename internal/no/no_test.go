package no

import "testing"

func TestMessageDelivery(t *testing.T) {
	w := NewWorld(8, 2, 4)
	w.Step(func(e *Env) {
		e.Send((e.PE()+1)%8, 7, uint64(e.PE()))
	})
	got := make([]uint64, 8)
	w.Step(func(e *Env) {
		for _, m := range e.Inbox() {
			if m.Tag != 7 {
				t.Errorf("tag %d", m.Tag)
			}
			got[e.PE()] = m.Data[0]
		}
	})
	for pe := 0; pe < 8; pe++ {
		want := uint64((pe + 7) % 8)
		if got[pe] != want {
			t.Fatalf("PE %d received %d, want %d", pe, got[pe], want)
		}
	}
}

func TestLocalMessagesAreFree(t *testing.T) {
	w := NewWorld(8, 2, 1)
	// PEs 0..3 on proc 0, 4..7 on proc 1; intra-proc sends cost nothing.
	w.Step(func(e *Env) {
		if e.PE() < 3 {
			e.Send(e.PE()+1, 0, 1)
		}
	})
	if w.Comm() != 0 {
		t.Fatalf("intra-processor traffic charged: %d", w.Comm())
	}
}

func TestBlockedCommAccounting(t *testing.T) {
	// 5 words from proc 0 to proc 1 with B=4 → 2 blocks.
	w := NewWorld(8, 2, 4)
	w.Step(func(e *Env) {
		if e.PE() == 0 {
			e.Send(4, 0, 1, 2, 3, 4, 5)
		}
	})
	if w.Comm() != 2 {
		t.Fatalf("comm = %d, want 2 blocks", w.Comm())
	}
}

func TestHRelationIsMaxOverProcs(t *testing.T) {
	// Proc 0 sends 1 block to proc 1 AND proc 2; proc 3 sends 1 to proc 0.
	// max(sent)=2 at proc 0 → h = 2.
	w := NewWorld(8, 4, 8)
	w.Step(func(e *Env) {
		switch e.PE() {
		case 0:
			e.Send(2, 0, 1)
			e.Send(4, 0, 1)
		case 6:
			e.Send(0, 0, 1)
		}
	})
	if w.Comm() != 2 {
		t.Fatalf("h = %d, want 2", w.Comm())
	}
}

func TestComputationIsMaxPerProc(t *testing.T) {
	w := NewWorld(4, 2, 1)
	w.Step(func(e *Env) {
		if e.PE() < 2 {
			e.Work(10) // both on proc 0: 20 total
		} else {
			e.Work(5)
		}
	})
	if w.Computation() != 20 {
		t.Fatalf("computation = %d, want 20", w.Computation())
	}
}

func TestDBSPClusterLevels(t *testing.T) {
	// P=4 → levels 0 (clusters of 4) and 1 (clusters of 2).
	g := []float64{10, 1}
	bs := []int64{1, 1}
	// Neighbour communication within 2-clusters: level 1, cost h·g1 = 1.
	w := NewWorld(8, 4, 1)
	w.Step(func(e *Env) {
		if e.PE() == 0 {
			e.Send(2, 0, 1) // proc 0 → proc 1: cluster {0,1} = level 1
		}
	})
	if got := w.DBSPTime(g, bs); got != 1 {
		t.Fatalf("near communication cost %v, want 1 (g1)", got)
	}
	// Far communication: proc 0 → proc 3 needs the full machine: level 0.
	w2 := NewWorld(8, 4, 1)
	w2.Step(func(e *Env) {
		if e.PE() == 0 {
			e.Send(6, 0, 1)
		}
	})
	if got := w2.DBSPTime(g, bs); got != 10 {
		t.Fatalf("far communication cost %v, want 10 (g0)", got)
	}
}

func TestSupersteps(t *testing.T) {
	w := NewWorld(4, 2, 1)
	for i := 0; i < 5; i++ {
		w.Step(func(e *Env) {})
	}
	if w.Supersteps() != 5 {
		t.Fatalf("supersteps = %d", w.Supersteps())
	}
}

func TestObliviousReexecution(t *testing.T) {
	// The same algorithm on different (p, B) gives identical results but
	// different communication counts — the essence of network-obliviousness.
	run := func(p, b int) (sum uint64, comm int64) {
		w := NewWorld(16, p, b)
		w.Step(func(e *Env) { e.Send(15-e.PE(), 0, uint64(e.PE())) })
		w.Step(func(e *Env) {
			for _, m := range e.Inbox() {
				if e.PE() == 0 {
					sum += m.Data[0]
				}
			}
		})
		return sum, w.Comm()
	}
	s1, c1 := run(2, 1)
	s2, c2 := run(8, 4)
	if s1 != s2 {
		t.Fatalf("results differ across machines: %d vs %d", s1, s2)
	}
	if c1 == c2 {
		t.Fatal("different (p,B) should cost differently for this pattern")
	}
}

func TestSendOutOfRangePanics(t *testing.T) {
	w := NewWorld(4, 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-range destination")
		}
	}()
	w.Step(func(e *Env) {
		if e.PE() == 0 {
			e.Send(99, 0, 1)
		}
	})
}

func TestNewWorldRejectsBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for p not dividing N")
		}
	}()
	NewWorld(10, 3, 1)
}

func TestDBSPRequiresPow2P(t *testing.T) {
	w := NewWorld(16, 4, 1)
	w.Step(func(e *Env) {})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for short g vector")
		}
	}()
	w.DBSPTime([]float64{1}, []int64{1}) // need log2(4)=2 entries
}

func TestEnvNAndProcOf(t *testing.T) {
	w := NewWorld(8, 4, 1)
	w.Step(func(e *Env) {
		if e.N() != 8 {
			t.Errorf("N() = %d", e.N())
		}
	})
	if w.ProcOf(0) != 0 || w.ProcOf(2) != 1 || w.ProcOf(7) != 3 {
		t.Error("ProcOf mapping wrong")
	}
}

func TestInboxOrderDeterministic(t *testing.T) {
	collect := func() []int {
		w := NewWorld(8, 2, 1)
		w.Step(func(e *Env) {
			e.Send(0, e.PE(), uint64(e.PE()))
		})
		var got []int
		w.Step(func(e *Env) {
			if e.PE() == 0 {
				for _, m := range e.Inbox() {
					got = append(got, m.Src)
				}
			}
		})
		return got
	}
	a, b := collect(), collect()
	if len(a) != 8 {
		t.Fatalf("received %d messages", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("inbox order differs between identical runs")
		}
	}
}
