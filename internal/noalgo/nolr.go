package noalgo

import (
	"oblivhm/internal/bitint"
	"oblivhm/internal/no"
)

// NO-LR (paper §VI-B): network-oblivious list ranking by list contraction.
// One list node per PE.  Each contraction level colors the current list by
// deterministic coin flipping (point-to-point color exchange), selects an
// independent set color by color (selection notifications block
// neighbours), splices the selected nodes out, and — the NO-IS refinement
// of §VI-B — relocates the survivors so they are evenly distributed across
// the leading PEs before recursing.  Ranks are propagated back through the
// recorded levels.

// noNode is the per-PE list state.
type noNode struct {
	succ, pred int // current-level PE indices; -1 at the ends
	w          int64
	alive      bool
	color      int64
	inS        bool
	blocked    bool
	origSucc   int // succ at removal time (current-level index), for unwind
}

// noLevel snapshots what the unwind phase needs.
type noLevel struct {
	n      int   // list size at this level
	newIdx []int // for survivors: PE index at the next level
	nodes  []noNode
}

const noLRColorRounds = 3

// ListRank computes rank[v] = distance from PE v's node to the end of the
// list.  succ/pred are PE indices with -1 ends; N must be a power of two
// (the prefix-sum compaction pads to the machine size).
func ListRank(w *no.World, succ, pred []int) []int64 {
	return ListRankWeighted(w, succ, pred, nil)
}

// ListRankWeighted ranks with explicit link weights:
// rank(v) = wts[v] + rank(succ(v)), with rank past the end = 0.  A nil wts
// selects unit weights (and zero at the tail), i.e. plain distances.
// Weighted ranking is what the Euler-tour tree computations consume.
func ListRankWeighted(w *no.World, succ, pred []int, wts []int64) []int64 {
	n := w.N
	if !bitint.IsPow2(n) || len(succ) != n || len(pred) != n {
		panic(no.Usagef("noalgo: list rank needs power-of-two N PEs and one node per PE, got N=%d len=%d", n, len(succ)))
	}
	nodes := make([]noNode, n)
	for v := 0; v < n; v++ {
		nodes[v] = noNode{succ: succ[v], pred: pred[v], alive: true}
		if wts != nil {
			nodes[v].w = wts[v]
		} else if succ[v] >= 0 {
			nodes[v].w = 1
		}
	}
	var levels []noLevel
	cur := n

	for cur > 2 {
		colorLevel(w, nodes, cur)
		selectIS(w, nodes, cur)
		splice(w, nodes, cur)
		lv, next := compact(w, nodes, cur)
		levels = append(levels, lv)
		nodes = next
		cur = lv.nSurvivors()
	}

	// Base: rank the remaining <= 2 nodes directly via messages.
	rank := make([]int64, len(nodes))
	baseRank(w, nodes, cur, rank)

	// Unwind.
	for li := len(levels) - 1; li >= 0; li-- {
		lv := levels[li]
		up := make([]int64, lv.n)
		// Survivors fetch their rank from the contracted level.
		w.Step(func(e *no.Env) {
			pe := e.PE()
			if pe < lv.n && lv.nodes[pe].alive && !lv.nodes[pe].inS {
				// rank[newIdx] lives at PE newIdx in the contracted world.
				e.Send(lv.newIdx[pe], 3, uint64(pe))
			}
		})
		w.Step(func(e *no.Env) {
			for _, m := range e.Inbox() {
				e.Send(int(m.Data[0]), 4, uint64(rank[e.PE()]))
			}
		})
		w.Step(func(e *no.Env) {
			for _, m := range e.Inbox() {
				up[e.PE()] = int64(m.Data[0])
			}
		})
		// Removed nodes ask their (surviving) successor for its rank.
		w.Step(func(e *no.Env) {
			pe := e.PE()
			if pe < lv.n && lv.nodes[pe].alive && lv.nodes[pe].inS && lv.nodes[pe].origSucc >= 0 {
				e.Send(lv.nodes[pe].origSucc, 5, uint64(pe))
			}
		})
		w.Step(func(e *no.Env) {
			for _, m := range e.Inbox() {
				if m.Tag == 5 {
					e.Send(int(m.Data[0]), 6, uint64(up[e.PE()]))
				}
			}
		})
		w.Step(func(e *no.Env) {
			for _, m := range e.Inbox() {
				up[e.PE()] = int64(m.Data[0]) + lv.nodes[e.PE()].w
			}
		})
		// Removed tails have rank = w.
		for pe := 0; pe < lv.n; pe++ {
			if lv.nodes[pe].alive && lv.nodes[pe].inS && lv.nodes[pe].origSucc < 0 {
				up[pe] = lv.nodes[pe].w
			}
		}
		rank = up
	}
	out := make([]int64, n)
	copy(out, rank)
	return out
}

func (lv noLevel) nSurvivors() int {
	c := 0
	for pe := 0; pe < lv.n; pe++ {
		if lv.nodes[pe].alive && !lv.nodes[pe].inS {
			c++
		}
	}
	return c
}

// colorLevel runs deterministic coin flipping on the live prefix [0, cur).
func colorLevel(w *no.World, nodes []noNode, cur int) {
	for pe := 0; pe < cur; pe++ {
		nodes[pe].color = int64(pe)
		nodes[pe].inS = false
		nodes[pe].blocked = false
	}
	head, tail := -1, -1
	for pe := 0; pe < cur; pe++ {
		if nodes[pe].pred < 0 {
			head = pe
		}
		if nodes[pe].succ < 0 {
			tail = pe
		}
	}
	for r := 0; r < noLRColorRounds; r++ {
		succColor := make([]int64, cur)
		w.Step(func(e *no.Env) {
			pe := e.PE()
			if pe >= cur {
				return
			}
			// Send own color to the predecessor; the head closes the ring
			// by also serving the tail.
			if p := nodes[pe].pred; p >= 0 {
				e.Send(p, 0, uint64(nodes[pe].color))
			}
			if pe == head {
				e.Send(tail, 0, uint64(nodes[pe].color))
			}
		})
		w.Step(func(e *no.Env) {
			for _, m := range e.Inbox() {
				succColor[e.PE()] = int64(m.Data[0])
			}
		})
		for pe := 0; pe < cur; pe++ {
			cv, cs := uint64(nodes[pe].color), uint64(succColor[pe])
			k := int64(0)
			if cv != cs {
				d := cv ^ cs
				for d&1 == 0 {
					d >>= 1
					k++
				}
			}
			nodes[pe].color = 2*k + int64((cv>>uint64(k))&1)
		}
	}
}

// selectIS processes colors in increasing order; selected nodes notify
// their neighbours, which become blocked (Figure 6 semantics, realised by
// messages instead of duplicate records).
func selectIS(w *no.World, nodes []noNode, cur int) {
	maxColor := int64(0)
	for pe := 0; pe < cur; pe++ {
		if nodes[pe].color > maxColor {
			maxColor = nodes[pe].color
		}
	}
	for j := int64(0); j <= maxColor; j++ {
		jj := j
		w.Step(func(e *no.Env) {
			pe := e.PE()
			if pe >= cur || nodes[pe].color != jj || nodes[pe].blocked {
				return
			}
			nodes[pe].inS = true
			e.Work(1)
			if s := nodes[pe].succ; s >= 0 {
				e.Send(s, 1, 1)
			}
			if p := nodes[pe].pred; p >= 0 {
				e.Send(p, 1, 1)
			}
		})
		w.Step(func(e *no.Env) {
			if len(e.Inbox()) > 0 {
				nodes[e.PE()].blocked = true
			}
		})
	}
}

// splice removes the selected nodes: each sends its bridge data to its
// neighbours.
func splice(w *no.World, nodes []noNode, cur int) {
	w.Step(func(e *no.Env) {
		pe := e.PE()
		if pe >= cur || !nodes[pe].inS {
			return
		}
		nodes[pe].origSucc = nodes[pe].succ
		if p := nodes[pe].pred; p >= 0 {
			e.Send(p, 2, uint64(int64(nodes[pe].succ)), uint64(nodes[pe].w))
		}
		if s := nodes[pe].succ; s >= 0 {
			e.Send(s, 3, uint64(int64(nodes[pe].pred)))
		}
	})
	w.Step(func(e *no.Env) {
		for _, m := range e.Inbox() {
			switch m.Tag {
			case 2:
				nodes[e.PE()].succ = int(int64(m.Data[0]))
				nodes[e.PE()].w += int64(m.Data[1])
			case 3:
				nodes[e.PE()].pred = int(int64(m.Data[0]))
			}
		}
	})
}

// compact relocates the survivors to the leading PEs (even distribution,
// §VI-B) using a prefix sum over survivor flags and two routing
// supersteps; returns the level snapshot and the next level's node state.
func compact(w *no.World, nodes []noNode, cur int) (noLevel, []noNode) {
	flags := make([]uint64, w.N)
	for pe := 0; pe < cur; pe++ {
		if nodes[pe].alive && !nodes[pe].inS {
			flags[pe] = 1
		}
	}
	PrefixSums(w, flags) // exclusive: flags[pe] = new index for survivors
	lv := noLevel{n: cur, newIdx: make([]int, cur), nodes: append([]noNode(nil), nodes[:cur]...)}
	for pe := 0; pe < cur; pe++ {
		lv.newIdx[pe] = int(flags[pe])
	}
	next := make([]noNode, len(nodes))
	// Survivors learn their neighbours' new indices, then move.
	newSucc := make([]int, cur)
	newPred := make([]int, cur)
	w.Step(func(e *no.Env) {
		pe := e.PE()
		if pe >= cur || !nodes[pe].alive || nodes[pe].inS {
			return
		}
		if s := nodes[pe].succ; s >= 0 {
			e.Send(s, 7, uint64(pe), uint64(lv.newIdx[pe]))
		}
		if p := nodes[pe].pred; p >= 0 {
			e.Send(p, 8, uint64(pe), uint64(lv.newIdx[pe]))
		}
	})
	w.Step(func(e *no.Env) {
		pe := e.PE()
		for _, m := range e.Inbox() {
			switch m.Tag {
			case 8: // message from my successor
				newSucc[pe] = int(m.Data[1])
			case 7: // message from my predecessor
				newPred[pe] = int(m.Data[1])
			}
		}
	})
	// Route records to their new PEs.
	w.Step(func(e *no.Env) {
		pe := e.PE()
		if pe >= cur || !nodes[pe].alive || nodes[pe].inS {
			return
		}
		s, p := int64(-1), int64(-1)
		if nodes[pe].succ >= 0 {
			s = int64(newSucc[pe])
		}
		if nodes[pe].pred >= 0 {
			p = int64(newPred[pe])
		}
		e.Send(lv.newIdx[pe], 9, uint64(s), uint64(p), uint64(nodes[pe].w))
	})
	w.Step(func(e *no.Env) {
		for _, m := range e.Inbox() {
			next[e.PE()] = noNode{
				succ:  int(int64(m.Data[0])),
				pred:  int(int64(m.Data[1])),
				w:     int64(m.Data[2]),
				alive: true,
			}
		}
	})
	return lv, next
}

// baseRank ranks a list of at most 2 live nodes.
func baseRank(w *no.World, nodes []noNode, cur int, rank []int64) {
	for pe := 0; pe < cur; pe++ {
		if !nodes[pe].alive {
			continue
		}
		if nodes[pe].succ < 0 {
			rank[pe] = nodes[pe].w
		}
	}
	w.Step(func(e *no.Env) {
		pe := e.PE()
		if pe < cur && nodes[pe].alive && nodes[pe].succ < 0 && nodes[pe].pred >= 0 {
			e.Send(nodes[pe].pred, 0, uint64(rank[pe]))
		}
	})
	w.Step(func(e *no.Env) {
		for _, m := range e.Inbox() {
			rank[e.PE()] = nodes[e.PE()].w + int64(m.Data[0])
		}
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
