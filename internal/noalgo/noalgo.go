// Package noalgo implements the network-oblivious algorithms of paper
// §III-§VI on the M(N) substrate of package no: matrix transposition and
// FFT (the [4] algorithms the paper's MO versions were adapted from),
// prefix sums, sorting, and list ranking (NO-LR with the evenly-distributed
// contraction of §VI-B).
//
// State convention: one element per PE, held in caller-owned slices indexed
// by PE.  All data movement goes through World messages so that the
// communication accounts are exact.
//
// Sorting comes in two flavours: ColumnSort (Leighton's columnsort, the
// structure behind the paper's NO sorting algorithm — communication
// Θ(n/(pB)) for p up to Θ(N^{1/3}) here, since its column sorts use bitonic
// subgroups) and BitonicSort (the fully oblivious baseline with a log²
// factor).  See DESIGN.md for the exact scope notes.
package noalgo

import (
	"math"

	"oblivhm/internal/bitint"
	"oblivhm/internal/no"
)

// Transpose performs NO-MT: with N = n² PEs holding A in row-major order
// (PE i·n+j holds A[i][j]), every PE sends its element to the transposed
// position.  One communication superstep plus one delivery superstep.
func Transpose(w *no.World, n int, val []uint64) {
	if len(val) != n*n || w.N != n*n {
		panic(no.Usagef("noalgo: transpose needs N = n^2 PEs, got N=%d for n=%d", w.N, n))
	}
	w.Step(func(e *no.Env) {
		i, j := e.PE()/n, e.PE()%n
		e.Send(j*n+i, 0, val[e.PE()])
	})
	w.Step(func(e *no.Env) {
		for _, m := range e.Inbox() {
			val[e.PE()] = m.Data[0]
		}
	})
}

// PrefixSums computes the exclusive prefix sums of val (one element per
// PE, N a power of two) with the Blelloch up-sweep/down-sweep tree: 2·log N
// supersteps, each with O(1) blocks per processor — only the top log p
// levels cross processors, giving Θ(log p) communication.
// Returns the total.
func PrefixSums(w *no.World, val []uint64) uint64 {
	n := w.N
	if !bitint.IsPow2(n) || len(val) != n {
		panic(no.Usagef("noalgo: prefix sums need power-of-two N PEs and one value per PE, got N=%d len=%d", n, len(val)))
	}
	// Up-sweep.
	for k := 1; k < n; k <<= 1 {
		kk := k
		w.Step(func(e *no.Env) {
			pe := e.PE()
			if (pe+1)%(2*kk) == kk { // left child of a merge sends right
				e.Send(pe+kk, 0, val[pe])
			}
		})
		w.Step(func(e *no.Env) {
			for _, m := range e.Inbox() {
				e.Work(1)
				val[e.PE()] += m.Data[0]
			}
		})
	}
	total := val[n-1]
	val[n-1] = 0
	// Down-sweep.
	for k := n / 2; k >= 1; k >>= 1 {
		kk := k
		w.Step(func(e *no.Env) {
			pe := e.PE()
			if (pe+1)%(2*kk) == 0 { // parent position sends both ways
				e.Send(pe-kk, 1, val[pe])         // its value goes left
				e.Send(pe, 2, val[pe-kk]+val[pe]) // left+own goes to itself
			}
		})
		w.Step(func(e *no.Env) {
			for _, m := range e.Inbox() {
				e.Work(1)
				val[e.PE()] = m.Data[0]
			}
		})
	}
	return total
}

// FFT computes the in-place DFT of x (one complex element per PE, N a
// power of two) with the recursive transpose-based network-oblivious
// algorithm: n = n1·n2, transpose, n2 parallel sub-FFTs of size n1 on
// contiguous PE subgroups, twiddle, transpose, n1 sub-FFTs of size n2,
// final transpose.
func FFT(w *no.World, x []complex128) {
	if !bitint.IsPow2(w.N) || len(x) != w.N {
		panic(no.Usagef("noalgo: FFT needs power-of-two N PEs and one point per PE, got N=%d len=%d", w.N, len(x)))
	}
	fftGroups(w, x, []int{0}, w.N)
}

func fftGroups(w *no.World, x []complex128, los []int, n int) {
	if n == 1 {
		return
	}
	if n == 2 {
		inGroup := groupIndex(los, 2)
		w.Step(func(e *no.Env) {
			if g, ok := inGroup[e.PE()]; ok {
				_ = g
				e.Work(1)
				e.Send(e.PE()^1, 0, cbits(x[e.PE()])...)
			}
		})
		w.Step(func(e *no.Env) {
			for _, m := range e.Inbox() {
				other := cfrom(m.Data)
				if e.PE()&1 == 0 {
					x[e.PE()] = x[e.PE()] + other
				} else {
					x[e.PE()] = other - x[e.PE()]
				}
			}
		})
		return
	}
	k := bitint.Log2(n)
	n1 := 1 << ((k + 1) / 2)
	n2 := 1 << (k / 2)
	inGroup := groupIndex(los, n)

	// Transpose the n1×n2 view: local index i·n2+j → j·n1+i.
	sendPerm(w, x, inGroup, func(idx int) int {
		i, j := idx/n2, idx%n2
		return j*n1 + i
	})
	// n2 sub-FFTs of size n1 (contiguous subgroups).
	sub := make([]int, 0, len(los)*n2)
	for _, lo := range los {
		for j := 0; j < n2; j++ {
			sub = append(sub, lo+j*n1)
		}
	}
	fftGroups(w, x, sub, n1)
	// Twiddle: PE at local j·n1+k1 multiplies by ω_n^{-j·k1}.
	w.Step(func(e *no.Env) {
		if g, ok := inGroup[e.PE()]; ok {
			j, k1 := g/n1, g%n1
			e.Work(1)
			x[e.PE()] *= twiddle(n, j*k1)
		}
	})
	// Transpose back: local j·n1+k1 → k1·n2+j.
	sendPerm(w, x, inGroup, func(idx int) int {
		j, k1 := idx/n1, idx%n1
		return k1*n2 + j
	})
	// n1 sub-FFTs of size n2.
	sub = sub[:0]
	for _, lo := range los {
		for k1 := 0; k1 < n1; k1++ {
			sub = append(sub, lo+k1*n2)
		}
	}
	fftGroups(w, x, sub, n2)
	// Final transpose: local k1·n2+k2 → k2·n1+k1 puts Y in order.
	sendPerm(w, x, inGroup, func(idx int) int {
		k1, k2 := idx/n2, idx%n2
		return k2*n1 + k1
	})
}

// groupIndex maps each member PE to its local index within its group.
func groupIndex(los []int, n int) map[int]int {
	m := make(map[int]int, len(los)*n)
	for _, lo := range los {
		for i := 0; i < n; i++ {
			m[lo+i] = i
		}
	}
	return m
}

// sendPerm routes every group element through the local permutation f
// (two supersteps: send, deliver).
func sendPerm(w *no.World, x []complex128, inGroup map[int]int, f func(idx int) int) {
	w.Step(func(e *no.Env) {
		if g, ok := inGroup[e.PE()]; ok {
			e.Send(e.PE()-g+f(g), 0, cbits(x[e.PE()])...)
		}
	})
	w.Step(func(e *no.Env) {
		for _, m := range e.Inbox() {
			x[e.PE()] = cfrom(m.Data)
		}
	})
}

func twiddle(n, e int) complex128 {
	th := -2 * math.Pi * float64(e%n) / float64(n)
	s, c := math.Sincos(th)
	return complex(c, s)
}

func cbits(x complex128) []uint64 {
	return []uint64{math.Float64bits(real(x)), math.Float64bits(imag(x))}
}

func cfrom(d []uint64) complex128 {
	return complex(math.Float64frombits(d[0]), math.Float64frombits(d[1]))
}

// BitonicSort sorts keys ascending (one key per PE, N a power of two):
// log²N compare-exchange stages, each two supersteps.  This is the fully
// network-oblivious sorting baseline (comm O((N/(pB))·log²(N/p') ) — a
// log² factor above the paper's columnsort-based NO sort).
func BitonicSort(w *no.World, keys []uint64) { BitonicSortPairs(w, keys, nil) }

// BitonicSortPairs is BitonicSort carrying one payload word per key (vals
// may be nil).
func BitonicSortPairs(w *no.World, keys, vals []uint64) {
	n := w.N
	if !bitint.IsPow2(n) || len(keys) != n || (vals != nil && len(vals) != n) {
		panic(no.Usagef("noalgo: bitonic sort needs power-of-two N PEs and one key per PE, got N=%d len=%d", n, len(keys)))
	}
	for k := 2; k <= n; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			kk, jj := k, j
			w.Step(func(e *no.Env) {
				e.Work(1)
				if vals != nil {
					e.Send(e.PE()^jj, 0, keys[e.PE()], vals[e.PE()])
				} else {
					e.Send(e.PE()^jj, 0, keys[e.PE()])
				}
			})
			w.Step(func(e *no.Env) {
				pe := e.PE()
				msg := e.Inbox()[0].Data
				other := msg[0]
				asc := pe&kk == 0
				keepMin := (pe&jj == 0) == asc
				take := false
				e.Work(1)
				if keepMin {
					take = other < keys[pe]
				} else {
					take = other > keys[pe]
				}
				if take {
					keys[pe] = other
					if vals != nil {
						vals[pe] = msg[1]
					}
				}
			})
		}
	}
}
