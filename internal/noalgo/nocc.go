package noalgo

import "oblivhm/internal/no"

// NO connected components (paper Theorem 10): one vertex per PE with its
// adjacency list in local memory; hook-and-contract entirely by
// point-to-point messages.  Each round: every live vertex hooks to
// min(itself, its minimum neighbour), the pseudo-forest is contracted by
// pointer jumping (request/reply supersteps), edges are relabelled by
// querying each endpoint's root, and each contracted vertex's adjacency
// moves to its representative.  O(log n) rounds; per round the edge
// traffic is a Θ(m/p)-relation.

// ConnectedComponents returns comp with comp[u] == comp[v] iff u and v are
// connected.  adj is the symmetric adjacency list, one entry per vertex
// (= per PE).
func ConnectedComponents(w *no.World, adj [][]int) []int {
	n := w.N
	if len(adj) != n {
		panic(no.Usagef("noalgo: connected components need one adjacency list per PE, got %d lists for N=%d", len(adj), n))
	}
	// Working copies: cur[v] = current-round adjacency of representative v.
	cur := make([][]int, n)
	for v := range adj {
		cur[v] = append([]int(nil), adj[v]...)
	}
	comp := make([]int, n)
	rep := make([]int, n) // current representative of each original vertex
	for v := range comp {
		comp[v] = v
		rep[v] = v
	}
	parent := make([]int, n)

	edges := 0
	for _, a := range cur {
		edges += len(a)
	}
	for round := 0; edges > 0 && round < 64; round++ {
		// Hook to the minimum neighbour (local: adjacency is resident).
		w.Step(func(e *no.Env) {
			v := e.PE()
			parent[v] = v
			for _, u := range cur[v] {
				e.Work(1)
				if u < parent[v] {
					parent[v] = u
				}
			}
		})
		// Pointer-jump to roots: request/reply doubling.
		for j := 1; j < 2*n; j *= 2 {
			next := make([]int, n)
			w.Step(func(e *no.Env) {
				e.Send(parent[e.PE()], 0, uint64(e.PE()))
			})
			w.Step(func(e *no.Env) {
				for _, m := range e.Inbox() {
					e.Send(int(m.Data[0]), 1, uint64(parent[e.PE()]))
				}
			})
			w.Step(func(e *no.Env) {
				next[e.PE()] = parent[e.PE()]
				for _, m := range e.Inbox() {
					next[e.PE()] = int(m.Data[0])
				}
			})
			copy(parent, next)
		}
		// Update each original vertex's representative.
		newRep := make([]int, n)
		w.Step(func(e *no.Env) {
			e.Send(rep[e.PE()], 2, uint64(e.PE()))
		})
		w.Step(func(e *no.Env) {
			for _, m := range e.Inbox() {
				e.Send(int(m.Data[0]), 3, uint64(parent[e.PE()]))
			}
		})
		w.Step(func(e *no.Env) {
			newRep[e.PE()] = rep[e.PE()]
			for _, m := range e.Inbox() {
				newRep[e.PE()] = int(m.Data[0])
			}
		})
		copy(rep, newRep)

		// Relabel edges: each vertex asks the root of every neighbour,
		// then ships the surviving (non-loop) edges to its own root.
		nbrRoot := make([][]int, n)
		w.Step(func(e *no.Env) {
			v := e.PE()
			nbrRoot[v] = make([]int, len(cur[v]))
			for k, u := range cur[v] {
				e.Send(u, 4, uint64(v), uint64(k))
			}
		})
		w.Step(func(e *no.Env) {
			for _, m := range e.Inbox() {
				e.Send(int(m.Data[0]), 5, m.Data[1], uint64(parent[e.PE()]))
			}
		})
		w.Step(func(e *no.Env) {
			v := e.PE()
			for _, m := range e.Inbox() {
				nbrRoot[v][int(m.Data[0])] = int(m.Data[1])
			}
		})
		next := make([][]int, n)
		w.Step(func(e *no.Env) {
			v := e.PE()
			pv := parent[v]
			for _, ru := range nbrRoot[v] {
				if ru != pv {
					e.Send(pv, 6, uint64(ru))
				}
			}
		})
		w.Step(func(e *no.Env) {
			v := e.PE()
			seen := map[int]bool{}
			for _, m := range e.Inbox() {
				u := int(m.Data[0])
				if !seen[u] {
					seen[u] = true
					next[v] = append(next[v], u)
					e.Work(1)
				}
			}
		})
		cur = next
		edges = 0
		for _, a := range cur {
			edges += len(a)
		}
	}
	copy(comp, rep)
	return comp
}
