package noalgo

import (
	"oblivhm/internal/bitint"
	"oblivhm/internal/no"
)

// NO Euler-tour tree computations (paper §VI-B: "it is easy to derive NO
// algorithms with the same complexities as NO-LR for Euler tour and many
// tree problems").  The machine holds one tree arc per PE (N = 2(n-1), a
// power of two); the tour is built with O(1) sorts (payload-carrying
// columnsort) and point-to-point queries, then three weighted NO-LR
// rankings yield tour positions, vertex depths and preorder numbers, from
// which parents and subtree sizes follow.

// TreeResult holds per-vertex outputs (host slices indexed by vertex).
type TreeResult struct {
	Parent []int   // Parent[root] = -1
	Depth  []int64 // edge distance from the root
	Pre    []int64 // preorder number (root = 0)
	Size   []int64 // subtree size (root = n)
}

// packArc / unpackArc mirror the MO graph package's key encoding.
func packArc(u, v int) uint64       { return uint64(u)<<32 | uint64(v) }
func unpackArc(k uint64) (int, int) { return int(k >> 32), int(k & 0xffffffff) }

// EulerTreeOps computes parent, depth, preorder and subtree size of every
// vertex of the rooted tree with the given undirected edges.  The machine
// must have N = 2·len(edges) PEs (one per arc), N a power of two.
func EulerTreeOps(w *no.World, n, root int, edges [][2]int) TreeResult {
	m := 2 * len(edges)
	if w.N != m || !bitint.IsPow2(m) {
		panic(no.Usagef("noalgo: tree ops need N = 2·(n-1) PEs, a power of two, got N=%d for %d edges", w.N, len(edges)))
	}
	// Arcs, one per PE, then sorted by (src, dst).
	arcs := make([]uint64, m)
	for i, e := range edges {
		arcs[2*i] = packArc(e[0], e[1])
		arcs[2*i+1] = packArc(e[1], e[0])
	}
	ColumnSort(w, arcs)

	// rev[i]: sort (reversed key, index); the sorted multiset matches the
	// arc order, so position k's payload j means rev[j] = k.
	rkeys := make([]uint64, m)
	rvals := make([]uint64, m)
	rev := make([]int, m)
	w.Step(func(e *no.Env) {
		u, v := unpackArc(arcs[e.PE()])
		rkeys[e.PE()] = packArc(v, u)
		rvals[e.PE()] = uint64(e.PE())
	})
	ColumnSortPairs(w, rkeys, rvals)
	w.Step(func(e *no.Env) {
		e.Send(int(rvals[e.PE()]), 0, uint64(e.PE()))
	})
	w.Step(func(e *no.Env) {
		for _, msg := range e.Inbox() {
			rev[e.PE()] = int(msg.Data[0])
		}
	})

	// Group boundaries: isFirst[i] = arc i starts its source's out-group.
	isFirst := make([]bool, m)
	w.Step(func(e *no.Env) {
		if e.PE() > 0 {
			u, _ := unpackArc(arcs[e.PE()])
			e.Send(e.PE()-1, 1, uint64(u))
		}
	})
	w.Step(func(e *no.Env) {
		pe := e.PE()
		if pe == 0 {
			isFirst[0] = true
		}
		for _, msg := range e.Inbox() {
			u, _ := unpackArc(arcs[pe])
			if int(msg.Data[0]) != u {
				isFirst[pe+1] = true
			}
		}
	})
	// first[v] lives on PE v (vertices fit: n <= m for n >= 2).
	first := make([]int, n)
	w.Step(func(e *no.Env) {
		if isFirst[e.PE()] {
			u, _ := unpackArc(arcs[e.PE()])
			e.Send(u, 2, uint64(e.PE()))
		}
	})
	w.Step(func(e *no.Env) {
		for _, msg := range e.Inbox() {
			first[e.PE()] = int(msg.Data[0])
		}
	})

	// Tour successor: succ(i) = arc after rev(i) in its source's cyclic
	// group; the cycle is cut before the root's first arc.
	head := first[root]
	succ := make([]int, m)
	pred := make([]int, m)
	w.Step(func(e *no.Env) {
		i := e.PE()
		j := rev[i]
		v, _ := unpackArc(arcs[j])
		nxt := j + 1
		if nxt >= m || isFirst[nxt] {
			nxt = first[v]
		}
		if nxt == head {
			succ[i] = -1
		} else {
			succ[i] = nxt
		}
	})
	w.Step(func(e *no.Env) {
		if s := succ[e.PE()]; s >= 0 {
			e.Send(s, 3, uint64(e.PE()))
		}
	})
	w.Step(func(e *no.Env) {
		pred[e.PE()] = -1
		for _, msg := range e.Inbox() {
			pred[e.PE()] = int(msg.Data[0])
		}
	})

	// Positions from unit ranking, then down flags via rev exchange.
	rank := ListRank(w, succ, pred)
	pos := make([]int64, m)
	down := make([]bool, m)
	w.Step(func(e *no.Env) {
		pos[e.PE()] = int64(m-1) - rank[e.PE()]
		e.Send(rev[e.PE()], 4, uint64(pos[e.PE()]))
	})
	revPos := make([]int64, m)
	w.Step(func(e *no.Env) {
		for _, msg := range e.Inbox() {
			revPos[e.PE()] = int64(msg.Data[0])
		}
		down[e.PE()] = pos[e.PE()] < revPos[e.PE()]
	})

	// Weighted rankings: ±1 for depth, down-flag for preorder.
	wpm := make([]int64, m)
	wdn := make([]int64, m)
	for i := 0; i < m; i++ {
		if down[i] {
			wpm[i], wdn[i] = 1, 1
		} else {
			wpm[i], wdn[i] = -1, 0
		}
	}
	sufPM := ListRankWeighted(w, succ, pred, wpm)
	sufDN := ListRankWeighted(w, succ, pred, wdn)

	// Scatter per down arc to the vertex PEs; collect host-side.
	res := TreeResult{
		Parent: make([]int, n),
		Depth:  make([]int64, n),
		Pre:    make([]int64, n),
		Size:   make([]int64, n),
	}
	totalDown := int64(n - 1)
	type vrec struct {
		parent         int
		depth, pre, sz int64
	}
	got := make([]vrec, n)
	w.Step(func(e *no.Env) {
		i := e.PE()
		if !down[i] {
			return
		}
		u, v := unpackArc(arcs[i])
		e.Send(v, 5, uint64(u),
			uint64(1-sufPM[i]),
			uint64(totalDown-sufDN[i]+1),
			uint64((revPos[i]-pos[i]+1)/2))
	})
	w.Step(func(e *no.Env) {
		for _, msg := range e.Inbox() {
			got[e.PE()] = vrec{
				parent: int(msg.Data[0]),
				depth:  int64(msg.Data[1]),
				pre:    int64(msg.Data[2]),
				sz:     int64(msg.Data[3]),
			}
		}
	})
	for v := 0; v < n; v++ {
		res.Parent[v] = got[v].parent
		res.Depth[v] = got[v].depth
		res.Pre[v] = got[v].pre
		res.Size[v] = got[v].sz
	}
	res.Parent[root] = -1
	res.Depth[root] = 0
	res.Pre[root] = 0
	res.Size[root] = int64(n)
	return res
}
