package noalgo

import (
	"math/cmplx"
	"math/rand"
	"sort"
	"testing"

	"oblivhm/internal/fft"
	"oblivhm/internal/no"
)

func TestTranspose(t *testing.T) {
	n := 8
	w := no.NewWorld(n*n, 4, 4)
	val := make([]uint64, n*n)
	for i := range val {
		val[i] = uint64(i)
	}
	Transpose(w, n, val)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if val[j*n+i] != uint64(i*n+j) {
				t.Fatalf("val[%d][%d] = %d", j, i, val[j*n+i])
			}
		}
	}
}

// TestTransposeCommScaling: communication is Θ(n²/(pB)) — doubling B
// should roughly halve the block count while the result is unchanged.
func TestTransposeCommScaling(t *testing.T) {
	n := 32
	comm := func(p, b int) int64 {
		w := no.NewWorld(n*n, p, b)
		val := make([]uint64, n*n)
		for i := range val {
			val[i] = uint64(i)
		}
		Transpose(w, n, val)
		return w.Comm()
	}
	c1 := comm(4, 4)
	c2 := comm(4, 8)
	if c2*3 > c1*2 {
		t.Errorf("doubling B: comm %d -> %d, want ~halving", c1, c2)
	}
	// Communication formula check with slack: n²/(pB) per paper.
	want := int64(n * n / (4 * 4))
	if c1 < want/2 || c1 > 4*want {
		t.Errorf("comm %d far from n²/(pB) = %d", c1, want)
	}
}

func TestPrefixSums(t *testing.T) {
	n := 64
	w := no.NewWorld(n, 8, 2)
	val := make([]uint64, n)
	want := make([]uint64, n)
	acc := uint64(0)
	for i := range val {
		val[i] = uint64(i%5 + 1)
		want[i] = acc
		acc += val[i]
	}
	total := PrefixSums(w, val)
	if total != acc {
		t.Fatalf("total = %d, want %d", total, acc)
	}
	for i := range val {
		if val[i] != want[i] {
			t.Fatalf("prefix[%d] = %d, want %d", i, val[i], want[i])
		}
	}
}

// TestPrefixCommIsLogP: the tree scan's cross-processor traffic is
// Θ(log p) blocks, independent of n.
func TestPrefixCommIsLogP(t *testing.T) {
	comm := func(n int) int64 {
		w := no.NewWorld(n, 8, 1)
		val := make([]uint64, n)
		for i := range val {
			val[i] = 1
		}
		PrefixSums(w, val)
		return w.Comm()
	}
	c256, c4096 := comm(256), comm(4096)
	if c4096 > 2*c256 {
		t.Errorf("prefix comm grows with n: %d vs %d (should be Θ(log p))", c256, c4096)
	}
	if c256 > 64 {
		t.Errorf("prefix comm %d way above O(log p)", c256)
	}
}

func TestNOFFTMatchesOracle(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16, 64, 256} {
		p := 4
		if n < 4 {
			p = n
		}
		w := no.NewWorld(n, p, 2)
		rng := rand.New(rand.NewSource(int64(n)))
		in := make([]complex128, n)
		for i := range in {
			in[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
		}
		x := append([]complex128(nil), in...)
		FFT(w, x)
		want := fft.NaiveDFT(in)
		for i := range want {
			if cmplx.Abs(x[i]-want[i]) > 1e-6*float64(n) {
				t.Fatalf("n=%d: FFT[%d] = %v, want %v", n, i, x[i], want[i])
			}
		}
	}
}

func TestBitonicSort(t *testing.T) {
	for _, n := range []int{2, 8, 64, 512} {
		p := 4
		if n < p {
			p = n
		}
		w := no.NewWorld(n, p, 2)
		rng := rand.New(rand.NewSource(int64(n)))
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = uint64(rng.Intn(1000))
		}
		want := append([]uint64(nil), keys...)
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		BitonicSort(w, keys)
		for i := range keys {
			if keys[i] != want[i] {
				t.Fatalf("n=%d: keys[%d] = %d, want %d", n, i, keys[i], want[i])
			}
		}
	}
}

func TestListRank(t *testing.T) {
	for _, n := range []int{4, 8, 16, 64, 256} {
		w := no.NewWorld(n, 4, 2)
		perm := rand.New(rand.NewSource(int64(n))).Perm(n)
		succ := make([]int, n)
		pred := make([]int, n)
		for i := 0; i < n; i++ {
			if i+1 < n {
				succ[perm[i]] = perm[i+1]
			} else {
				succ[perm[i]] = -1
			}
			if i > 0 {
				pred[perm[i]] = perm[i-1]
			} else {
				pred[perm[i]] = -1
			}
		}
		rank := ListRank(w, succ, pred)
		for pos, v := range perm {
			if rank[v] != int64(n-1-pos) {
				t.Fatalf("n=%d: rank[%d] = %d, want %d", n, v, rank[v], n-1-pos)
			}
		}
	}
}

// TestTheorem9CompComplexity: NO-LR computation complexity is
// Θ((n/p)·log n) — quadrupling n at fixed p should grow work by ~4·(log
// ratio), well under 8x.
func TestTheorem9CompComplexity(t *testing.T) {
	run := func(n int) int64 {
		w := no.NewWorld(n, 4, 2)
		perm := rand.New(rand.NewSource(1)).Perm(n)
		succ := make([]int, n)
		pred := make([]int, n)
		for i := 0; i < n; i++ {
			succ[perm[i]] = -1
			pred[perm[i]] = -1
			if i+1 < n {
				succ[perm[i]] = perm[i+1]
			}
			if i > 0 {
				pred[perm[i]] = perm[i-1]
			}
		}
		ListRank(w, succ, pred)
		return w.Computation()
	}
	c1, c2 := run(256), run(1024)
	if ratio := float64(c2) / float64(c1); ratio > 8 {
		t.Errorf("computation grew %.1fx over 4x n (want ~<5x)", ratio)
	}
}

func TestColumnSort(t *testing.T) {
	for _, n := range []int{4, 16, 64, 256, 1024, 4096} {
		p := 4
		if n < p {
			p = n
		}
		w := no.NewWorld(n, p, 2)
		rng := rand.New(rand.NewSource(int64(n) * 7))
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = rng.Uint64() % 5000
		}
		want := append([]uint64(nil), keys...)
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		ColumnSort(w, keys)
		for i := range keys {
			if keys[i] != want[i] {
				t.Fatalf("n=%d: keys[%d] = %d, want %d", n, i, keys[i], want[i])
			}
		}
	}
}

func TestColumnSortAdversarial(t *testing.T) {
	n := 512
	cases := map[string]func(i int) uint64{
		"sorted":   func(i int) uint64 { return uint64(i) },
		"reverse":  func(i int) uint64 { return uint64(n - i) },
		"allequal": func(i int) uint64 { return 9 },
		"sawtooth": func(i int) uint64 { return uint64(i % 7) },
	}
	for name, gen := range cases {
		w := no.NewWorld(n, 8, 4)
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = gen(i)
		}
		want := append([]uint64(nil), keys...)
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		ColumnSort(w, keys)
		for i := range keys {
			if keys[i] != want[i] {
				t.Fatalf("%s: keys[%d] = %d, want %d", name, i, keys[i], want[i])
			}
		}
	}
}

// TestColumnSortBeatsBitonicComm: for p <= s the column sorts are
// processor-local, so columnsort's cross-processor traffic (the two
// transposes) undercuts full bitonic's log²-stage traffic — the reason
// the paper's NO sort is columnsort-based.
func TestColumnSortBeatsBitonicComm(t *testing.T) {
	n, p, b := 4096, 8, 4
	rng := rand.New(rand.NewSource(5))
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	w1 := no.NewWorld(n, p, b)
	k1 := append([]uint64(nil), keys...)
	ColumnSort(w1, k1)
	w2 := no.NewWorld(n, p, b)
	k2 := append([]uint64(nil), keys...)
	BitonicSort(w2, k2)
	if w1.Comm()*2 > w2.Comm() {
		t.Errorf("columnsort comm %d not well below bitonic %d", w1.Comm(), w2.Comm())
	}
}

func TestNOCC(t *testing.T) {
	for _, tc := range []struct{ n, m int }{{8, 5}, {32, 20}, {64, 100}, {128, 60}} {
		w := no.NewWorld(tc.n, 4, 2)
		rng := rand.New(rand.NewSource(int64(tc.n)))
		adj := make([][]int, tc.n)
		type edge [2]int
		var edges []edge
		seen := map[edge]bool{}
		for len(edges) < tc.m {
			u, v := rng.Intn(tc.n), rng.Intn(tc.n)
			if u == v || seen[edge{u, v}] {
				continue
			}
			seen[edge{u, v}] = true
			seen[edge{v, u}] = true
			edges = append(edges, edge{u, v})
			adj[u] = append(adj[u], v)
			adj[v] = append(adj[v], u)
		}
		comp := ConnectedComponents(w, adj)
		// Union-find oracle.
		parent := make([]int, tc.n)
		for i := range parent {
			parent[i] = i
		}
		var find func(int) int
		find = func(x int) int {
			for parent[x] != x {
				parent[x] = parent[parent[x]]
				x = parent[x]
			}
			return x
		}
		for _, e := range edges {
			a, b := find(e[0]), find(e[1])
			if a != b {
				parent[a] = b
			}
		}
		for u := 0; u < tc.n; u++ {
			for v := 0; v < tc.n; v++ {
				same := find(u) == find(v)
				if (comp[u] == comp[v]) != same {
					t.Fatalf("n=%d m=%d: vertices %d,%d partition mismatch", tc.n, tc.m, u, v)
				}
			}
		}
	}
}

func TestNOCCNoEdges(t *testing.T) {
	n := 16
	w := no.NewWorld(n, 4, 2)
	comp := ConnectedComponents(w, make([][]int, n))
	for v := 0; v < n; v++ {
		if comp[v] != v {
			t.Fatalf("isolated vertex %d got label %d", v, comp[v])
		}
	}
}

func TestSortPairsCarryPayload(t *testing.T) {
	n := 256
	w := no.NewWorld(n, 4, 2)
	rng := rand.New(rand.NewSource(44))
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(rng.Intn(100))
		vals[i] = uint64(i)
	}
	orig := append([]uint64(nil), keys...)
	ColumnSortPairs(w, keys, vals)
	for i := 1; i < n; i++ {
		if keys[i-1] > keys[i] {
			t.Fatalf("not sorted at %d", i)
		}
	}
	for i := 0; i < n; i++ {
		if orig[vals[i]] != keys[i] {
			t.Fatalf("payload decoupled from key at %d", i)
		}
	}
}

func TestListRankWeighted(t *testing.T) {
	n := 16
	w := no.NewWorld(n, 4, 2)
	// Identity list 0 -> 1 -> ... -> 15 with weight v+1 on node v.
	succ := make([]int, n)
	pred := make([]int, n)
	wts := make([]int64, n)
	for v := 0; v < n; v++ {
		succ[v], pred[v] = v+1, v-1
		wts[v] = int64(v + 1)
	}
	succ[n-1] = -1
	rank := ListRankWeighted(w, succ, pred, wts)
	for v := 0; v < n; v++ {
		want := int64(0)
		for u := v; u < n; u++ {
			want += int64(u + 1)
		}
		if rank[v] != want {
			t.Fatalf("rank[%d] = %d, want %d", v, rank[v], want)
		}
	}
}

func TestEulerTreeOpsAgainstDFS(t *testing.T) {
	for _, n := range []int{3, 5, 9, 33, 129} { // 2(n-1) is a power of two
		w := no.NewWorld(2*(n-1), 4, 2)
		rng := rand.New(rand.NewSource(int64(n)))
		var edges [][2]int
		children := make([][]int, n)
		for v := 1; v < n; v++ {
			p := rng.Intn(v)
			edges = append(edges, [2]int{p, v})
			children[p] = append(children[p], v)
		}
		res := EulerTreeOps(w, n, 0, edges)
		depth := make([]int64, n)
		size := make([]int64, n)
		parent := make([]int, n)
		parent[0] = -1
		var dfs func(v int) int64
		dfs = func(v int) int64 {
			size[v] = 1
			for _, c := range children[v] {
				parent[c] = v
				depth[c] = depth[v] + 1
				size[v] += dfs(c)
			}
			return size[v]
		}
		dfs(0)
		seen := make([]bool, n)
		for v := 0; v < n; v++ {
			if res.Parent[v] != parent[v] {
				t.Fatalf("n=%d: parent[%d] = %d, want %d", n, v, res.Parent[v], parent[v])
			}
			if res.Depth[v] != depth[v] {
				t.Fatalf("n=%d: depth[%d] = %d, want %d", n, v, res.Depth[v], depth[v])
			}
			if res.Size[v] != size[v] {
				t.Fatalf("n=%d: size[%d] = %d, want %d", n, v, res.Size[v], size[v])
			}
			p := res.Pre[v]
			if p < 0 || p >= int64(n) || seen[p] {
				t.Fatalf("n=%d: preorder not a permutation at %d", n, v)
			}
			seen[p] = true
			if parent[v] >= 0 && res.Pre[parent[v]] >= p {
				t.Fatalf("n=%d: parent numbered after child %d", n, v)
			}
		}
	}
}
