package noalgo

import (
	"oblivhm/internal/bitint"
	"oblivhm/internal/no"
)

// Columnsort (Leighton) — the basis of the paper's network-oblivious
// sorting algorithm [4]: view the N keys as an r×s matrix (column-major,
// one key per PE, columns contiguous) with r ≥ 2(s−1)²; then
//
//	1. sort every column;
//	2. "transpose": pick entries up column by column, lay them down row
//	   by row (a fixed permutation);
//	3. sort every column;
//	4. invert the step-2 permutation;
//	5. sort every column;
//	6. sort every window of r consecutive entries starting at offset r/2
//	   (equivalent to the classical shift / sort / unshift with ±∞
//	   padding, since windows are exactly the column boundaries).
//
// Column and window sorts run on contiguous PE subranges: for p ≤ s
// processors they are processor-local and free, so the cross-processor
// communication is dominated by the two transposes — Θ(n/(pB)), the
// paper's NO sorting bound (versus bitonic's extra log² factor).
//
// Column sorts use bitonic sorting restricted to the subrange; with
// r = N/s and s ≈ N^{1/3} those are size-N^{2/3} subproblems.

// ColumnSort sorts keys ascending (one per PE, N a power of two >= 4).
func ColumnSort(w *no.World, keys []uint64) { ColumnSortPairs(w, keys, nil) }

// ColumnSortPairs sorts (key, value) records by key; vals may be nil for
// key-only sorting.  Records travel together through every permutation and
// compare-exchange.
func ColumnSortPairs(w *no.World, keys, vals []uint64) {
	n := w.N
	if !bitint.IsPow2(n) || len(keys) != n || (vals != nil && len(vals) != n) {
		panic(no.Usagef("noalgo: columnsort needs power-of-two N PEs and one key per PE, got N=%d len=%d", n, len(keys)))
	}
	s := pickColumns(n)
	if s < 2 {
		BitonicSortPairs(w, keys, vals)
		return
	}
	r := n / s

	sortCols := func() {
		los := make([]int, s)
		for c := 0; c < s; c++ {
			los[c] = c * r
		}
		bitonicGroups(w, keys, vals, los, r)
	}

	sortCols()                               // step 1
	permute(w, keys, vals, func(k int) int { // step 2: transpose r×s
		return (k%s)*r + k/s
	})
	sortCols()                               // step 3
	permute(w, keys, vals, func(k int) int { // step 4: untranspose
		return (k%r)*s + k/r
	})
	sortCols() // step 5
	// Step 6: sort the s-1 boundary windows of length r at offset r/2.
	los := make([]int, s-1)
	for c := 0; c < s-1; c++ {
		los[c] = c*r + r/2
	}
	bitonicGroups(w, keys, vals, los, r)
}

// pickColumns returns the largest power-of-two s >= 2 with
// N/s >= 2(s-1)², or 1 if none exists.
func pickColumns(n int) int {
	best := 1
	for s := 2; s*s*s <= 8*n; s <<= 1 {
		if n/s >= 2*(s-1)*(s-1) {
			best = s
		}
	}
	return best
}

// permute routes every record through the global permutation f (two
// supersteps).
func permute(w *no.World, keys, vals []uint64, f func(k int) int) {
	w.Step(func(e *no.Env) {
		if vals != nil {
			e.Send(f(e.PE()), 0, keys[e.PE()], vals[e.PE()])
		} else {
			e.Send(f(e.PE()), 0, keys[e.PE()])
		}
	})
	w.Step(func(e *no.Env) {
		for _, m := range e.Inbox() {
			keys[e.PE()] = m.Data[0]
			if vals != nil {
				vals[e.PE()] = m.Data[1]
			}
		}
	})
}

// bitonicGroups runs bitonic sorting simultaneously on the given
// contiguous PE subranges of identical length r (a power of two); each
// compare-exchange stage is one send plus one resolve superstep shared by
// all groups.
func bitonicGroups(w *no.World, keys, vals []uint64, los []int, r int) {
	inGroup := make(map[int]int, len(los)*r) // PE -> group base
	for _, lo := range los {
		for i := 0; i < r; i++ {
			inGroup[lo+i] = lo
		}
	}
	for k := 2; k <= r; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			kk, jj := k, j
			w.Step(func(e *no.Env) {
				lo, ok := inGroup[e.PE()]
				if !ok {
					return
				}
				g := e.PE() - lo
				e.Work(1)
				if vals != nil {
					e.Send(lo+(g^jj), 0, keys[e.PE()], vals[e.PE()])
				} else {
					e.Send(lo+(g^jj), 0, keys[e.PE()])
				}
			})
			w.Step(func(e *no.Env) {
				lo, ok := inGroup[e.PE()]
				if !ok || len(e.Inbox()) == 0 {
					return
				}
				g := e.PE() - lo
				msg := e.Inbox()[0].Data
				other := msg[0]
				asc := g&kk == 0
				keepMin := (g&jj == 0) == asc
				take := false
				e.Work(1)
				if keepMin {
					take = other < keys[e.PE()]
				} else {
					take = other > keys[e.PE()]
				}
				if take {
					keys[e.PE()] = other
					if vals != nil {
						vals[e.PE()] = msg[1]
					}
				}
			})
		}
	}
}
