package oblivhm_test

// One benchmark per reproduced experiment (see DESIGN.md §4 and
// EXPERIMENTS.md).  Simulated-machine benches report the model's own
// metrics (virtual steps, per-level cache misses / communication blocks)
// via b.ReportMetric; the Native* benches measure real goroutine execution
// time of the same algorithm code.

import (
	"math/rand"
	"os"
	"reflect"
	"runtime"
	"strconv"
	"testing"

	"oblivhm/internal/core"
	"oblivhm/internal/fft"
	"oblivhm/internal/gep"
	"oblivhm/internal/harness"
	"oblivhm/internal/hm"
	"oblivhm/internal/spms"
)

// parallelEnvWorkers reads OBLIVHM_PARALLEL / OBLIVHM_PARALLEL_ROUNDS:
// when either is set to a positive worker count, every simulated MO bench
// runs under the corresponding backend (core.WithParallel /
// core.WithParallelRounds; both set = composed) and is checked against an
// untimed serial reference run — the CI bench-smoke job uses this to fail
// on metric divergence (never on wall-clock).
func parallelEnvWorkers(b *testing.B, name string) int {
	v := os.Getenv(name)
	if v == "" {
		return 0
	}
	w, err := strconv.Atoi(v)
	if err != nil || w <= 0 {
		b.Fatalf("%s=%q: want a positive worker count", name, v)
	}
	return w
}

// moMetricsEqual compares the metric tuple the determinism contract pins.
func moMetricsEqual(a, b harness.MOResult) bool {
	if a.Steps != b.Steps || a.Steals != b.Steals || !reflect.DeepEqual(a.PlacedAt, b.PlacedAt) {
		return false
	}
	if len(a.Levels) != len(b.Levels) {
		return false
	}
	for i := range a.Levels {
		if a.Levels[i].MaxMisses != b.Levels[i].MaxMisses {
			return false
		}
	}
	return true
}

// benchMO runs a simulated MO workload once per iteration and reports the
// model metrics of the final run.
func benchMO(b *testing.B, algo, machine string, n int, opts ...core.Opt) {
	b.Helper()
	var serial *harness.MOResult
	wp := parallelEnvWorkers(b, "OBLIVHM_PARALLEL")
	wr := parallelEnvWorkers(b, "OBLIVHM_PARALLEL_ROUNDS")
	if wp > 0 || wr > 0 {
		ref, err := harness.RunMO(algo, machine, n, opts...)
		if err != nil {
			b.Fatal(err)
		}
		serial = &ref
		opts = append([]core.Opt{}, opts...)
		if wr > 0 {
			opts = append(opts, core.WithParallelRounds(wr))
		}
		if wp > 0 {
			opts = append(opts, core.WithParallel(wp))
		}
		b.ResetTimer() // the serial reference run is not part of the measurement
	}
	var res harness.MOResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = harness.RunMO(algo, machine, n, opts...)
		if err != nil {
			b.Fatal(err)
		}
	}
	if serial != nil && !moMetricsEqual(*serial, res) {
		b.Fatalf("parallel metrics diverged from serial:\n  serial   %+v steals=%d placed=%v\n  parallel %+v steals=%d placed=%v",
			serial.Steps, serial.Steals, serial.PlacedAt, res.Steps, res.Steals, res.PlacedAt)
	}
	b.ReportMetric(float64(res.Steps), "vsteps")
	for _, l := range res.Levels {
		b.ReportMetric(float64(l.MaxMisses), "L"+string(rune('0'+l.Level))+"miss")
	}
}

// benchNO runs an NO workload once per iteration and reports communication
// metrics.
func benchNO(b *testing.B, algo string, n, p, blk int) {
	b.Helper()
	var res harness.NOResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = harness.RunNO(algo, n, p, blk)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Comm), "comm")
	b.ReportMetric(float64(res.Comp), "comp")
	b.ReportMetric(float64(res.Supersteps), "ssteps")
}

// E1 — Table II "Prefix sum": Θ(n/p) time, Θ(n/(q_i·B_i)) misses.
func BenchmarkE1PrefixSum(b *testing.B) { benchMO(b, "scan", "hm4", 1<<14) }

// E2 — Table II "Matrix transposition", Theorem 1.
func BenchmarkE2Transpose(b *testing.B)      { benchMO(b, "mt", "hm4", 1<<14) }
func BenchmarkE2TransposeNaive(b *testing.B) { benchMO(b, "mt-naive", "hm4", 1<<14) }

// E3 — Table II "Matrix multiplication" via I-GEP function 𝒟, Theorem 5.
func BenchmarkE3MatMul(b *testing.B)      { benchMO(b, "mm", "mc3", 1<<12) }
func BenchmarkE3MatMulTiled(b *testing.B) { benchMO(b, "mm-tiled", "mc3", 1<<12) }

// E4 — Table II "GEP" (Floyd–Warshall instance), Theorem 5.
func BenchmarkE4GEP(b *testing.B)          { benchMO(b, "gep", "mc3", 1<<12) }
func BenchmarkE4GEPReference(b *testing.B) { benchMO(b, "gep-ref", "mc3", 1<<12) }

// E5 — Table II "FFT", Theorem 2.
func BenchmarkE5FFT(b *testing.B)          { benchMO(b, "fft", "hm4", 1<<13) }
func BenchmarkE5FFTIterative(b *testing.B) { benchMO(b, "fft-iter", "hm4", 1<<13) }

// E6 — Table II "Sorting" (SPMS structure), Theorem 3.
func BenchmarkE6Sort(b *testing.B) { benchMO(b, "sort", "hm4", 1<<12) }

// E7 — Table II "List ranking", Theorem 7.
func BenchmarkE7ListRank(b *testing.B)       { benchMO(b, "lr", "mc3", 1<<10) }
func BenchmarkE7ListRankWyllie(b *testing.B) { benchMO(b, "lr-wyllie", "mc3", 1<<10) }

// E8 — Theorem 4 (SpM-DV on separator-reordered grid matrices).
func BenchmarkE8SpMDV(b *testing.B)            { benchMO(b, "spmdv", "hm4", 1<<14) }
func BenchmarkE8SpMDVRandomOrder(b *testing.B) { benchMO(b, "spmdv-rand", "hm4", 1<<14) }

// E9 — Theorem 8 (connected components).
func BenchmarkE9CC(b *testing.B) { benchMO(b, "cc", "mc3", 1<<9) }

// E10 — Table I: N-GEP with 𝒟* vs I-GEP's 𝒟 ordering on M(p,B).
func BenchmarkE10DStar(b *testing.B) { benchNO(b, "ngep", 1<<10, 8, 4) }
func BenchmarkE10D(b *testing.B)     { benchNO(b, "ngep-d", 1<<10, 8, 4) }

// E11 — Table II NO column: communication of NO-MT / NO-FFT / prefix.
func BenchmarkE11NOTranspose(b *testing.B) { benchNO(b, "mt", 1<<12, 16, 4) }
func BenchmarkE11NOFFT(b *testing.B)       { benchNO(b, "fft", 1<<10, 16, 4) }
func BenchmarkE11NOPrefix(b *testing.B)    { benchNO(b, "prefix", 1<<12, 16, 4) }
func BenchmarkE11NOSort(b *testing.B)      { benchNO(b, "sort", 1<<10, 16, 4) }

// E12 — Theorem 9: NO list ranking.
func BenchmarkE12NOListRank(b *testing.B) { benchNO(b, "lr", 1<<10, 16, 4) }

// E13 — scheduler ablation: the SB hierarchy vs the flat
// proportionate-slice baseline of §II.
func BenchmarkE13MatMulSB(b *testing.B) { benchMO(b, "mm", "hm4", 1<<12) }
func BenchmarkE13MatMulFlat(b *testing.B) {
	benchMO(b, "mm", "hm4", 1<<12, core.WithFlatScheduler())
}

// E15 — Theorem 6: N-GEP communication (D-BSP time is printed by
// cmd/tables; here the M(p,B) communication at two block sizes).
func BenchmarkE15NGEPB2(b *testing.B) { benchNO(b, "ngep", 1<<10, 16, 2) }
func BenchmarkE15NGEPB8(b *testing.B) { benchNO(b, "ngep", 1<<10, 16, 8) }

// ---- scheduler round-loop microbenchmarks (DESIGN.md §11) ----

// benchRoundLoop runs a Tick-only fork-join workload on hm4: strands
// consume virtual time without touching memory, so the cache hierarchy and
// the replay pipeline stay idle and the measurement isolates the scheduler
// round loop itself — resume/yield handoffs, budget accounting, queue
// churn, and (under WithParallelRounds) the speculation/commit machinery.
// The E-benches above are dominated by cache replay; these give round-loop
// work a direct signal.
func benchRoundLoop(b *testing.B, tasks, ticks int, opts ...core.Opt) {
	b.Helper()
	cfg, err := harness.Machine("hm4")
	if err != nil {
		b.Fatal(err)
	}
	root := func(c *core.Ctx) {
		c.SpawnCGCSB(1<<10, tasks, func(cc *core.Ctx, idx int) {
			for k := 0; k < ticks; k++ {
				cc.Tick(4)
			}
		})
	}
	run := func(extra ...core.Opt) int64 {
		m, err := hm.NewMachine(cfg)
		if err != nil {
			b.Fatal(err)
		}
		return core.NewSim(m, extra...).Run(1<<16, root).Steps
	}
	refSteps := int64(-1)
	if len(opts) > 0 {
		// Untimed serial reference: like benchMO's env-driven check, any
		// non-default backend must land on the identical virtual schedule.
		refSteps = run()
		b.ResetTimer()
	}
	var steps int64
	for i := 0; i < b.N; i++ {
		steps = run(opts...)
	}
	if refSteps >= 0 && steps != refSteps {
		b.Fatalf("vsteps diverged from serial: serial %d, got %d", refSteps, steps)
	}
	b.ReportMetric(float64(steps), "vsteps")
}

// prBenchWorkers sizes WithParallelRounds for the RoundLoop benches: all
// host CPUs, floored at the backend's >= 2 eligibility threshold so the
// speculation/commit machinery is actually measured (time-shared) even on a
// single-CPU host instead of silently benching the disabled path.
func prBenchWorkers() int {
	if w := runtime.GOMAXPROCS(0); w > 2 {
		return w
	}
	return 2
}

// BenchmarkRoundLoopSerial: long-running strands, rare scheduler events —
// the cost of the per-round lockstep itself.
func BenchmarkRoundLoopSerial(b *testing.B) { benchRoundLoop(b, 64, 2048) }

// BenchmarkRoundLoopForkHeavy: many tiny tasks, so admissions, placements
// and joins dominate over in-round execution.
func BenchmarkRoundLoopForkHeavy(b *testing.B) { benchRoundLoop(b, 1024, 16) }

// BenchmarkRoundLoopParallelRounds: the tick workload under the phase-split
// backend — epochs of pure rounds run on worker threads, so the delta vs
// Serial is the speculation win (or, on one CPU, its overhead).
func BenchmarkRoundLoopParallelRounds(b *testing.B) {
	benchRoundLoop(b, 64, 2048, core.WithParallelRounds(prBenchWorkers()))
}

// BenchmarkRoundLoopForkHeavyParallelRounds: many tiny tasks under the
// backend.  Deferred admissions keep speculators alive through their own
// forks, so epochs stay multi-round instead of degenerating to serial the
// moment a strand spawns.
func BenchmarkRoundLoopForkHeavyParallelRounds(b *testing.B) {
	benchRoundLoop(b, 1024, 16, core.WithParallelRounds(prBenchWorkers()))
}

// BenchmarkRoundLoopCommitHeavy: few strands, very long pure stretches —
// thousands of rounds between scheduler events, so the per-round commit
// walk (pop, flush, requeue, clock bump) is the dominant serial cost this
// PR's bulk commit collapses into one queue transition per epoch.
func BenchmarkRoundLoopCommitHeavy(b *testing.B) { benchRoundLoop(b, 16, 8192) }

func BenchmarkRoundLoopCommitHeavyParallelRounds(b *testing.B) {
	benchRoundLoop(b, 16, 8192, core.WithParallelRounds(prBenchWorkers()))
}

// benchRoundMem is benchRoundLoop with real memory traffic: PFor strands
// stream over disjoint slices of one array, so under the composed backends
// every pure round records into the fan-in buffers and the commit path
// carries the full access stream — the epoch dispatch into the replay
// pipeline is what's being measured, not the tick loop.
func benchRoundMem(b *testing.B, opts ...core.Opt) {
	b.Helper()
	cfg, err := harness.Machine("hm4")
	if err != nil {
		b.Fatal(err)
	}
	run := func(extra ...core.Opt) (int64, hm.Snapshot) {
		m, err := hm.NewMachine(cfg)
		if err != nil {
			b.Fatal(err)
		}
		s := core.NewSim(m, extra...)
		v := s.NewI64(1 << 12)
		st := s.Run(1<<15, func(c *core.Ctx) {
			for rep := 0; rep < 4; rep++ {
				c.PFor(1<<12, 1, func(cc *core.Ctx, lo, hi int) {
					for i := lo; i < hi; i++ {
						a := v.Base + core.Addr(i)
						cc.StoreI(a, cc.LoadI(a)+1)
					}
				})
			}
		})
		return st.Steps, m.Stats()
	}
	refSteps, refSnap := run()
	b.ResetTimer()
	var steps int64
	var snap hm.Snapshot
	for i := 0; i < b.N; i++ {
		steps, snap = run(opts...)
	}
	if steps != refSteps || !reflect.DeepEqual(snap, refSnap) {
		b.Fatalf("metrics diverged from serial:\n  serial %d %+v\n  got    %d %+v", refSteps, refSnap, steps, snap)
	}
	b.ReportMetric(float64(steps), "vsteps")
}

// BenchmarkRoundLoopMemSerial / BenchmarkRoundLoopComposedDispatch: the
// memory-streaming workload serial vs fully composed (parallel rounds +
// replay pipeline), where bulk commits hand whole epochs of recorded
// chunks to the pipeline as single zero-copy batches.
func BenchmarkRoundLoopMemSerial(b *testing.B) { benchRoundMem(b) }

func BenchmarkRoundLoopComposedDispatch(b *testing.B) {
	w := prBenchWorkers()
	benchRoundMem(b, core.WithParallelRounds(w), core.WithParallel(w))
}

// ---- native (real goroutine) throughput of the same algorithm code ----

func BenchmarkNativeSort(b *testing.B) {
	s := core.NewNative(0)
	n := 1 << 16
	v := s.NewPairs(n)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for k := 0; k < n; k++ {
			s.PokeP(v, k, core.Pair{Key: rng.Uint64(), Val: uint64(k)})
		}
		b.StartTimer()
		s.Run(spms.SpaceBound(n), func(c *core.Ctx) { spms.Sort(c, v) })
	}
	b.SetBytes(int64(16 * n))
}

func BenchmarkNativeFFT(b *testing.B) {
	s := core.NewNative(0)
	n := 1 << 14
	x := s.NewC128(n)
	for i := 0; i < n; i++ {
		s.PokeC(x, i, complex(float64(i%17), 0))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(fft.SpaceBound(n), func(c *core.Ctx) { fft.MOFFT(c, x) })
	}
	b.SetBytes(int64(16 * n))
}

func BenchmarkNativeMatMul(b *testing.B) {
	s := core.NewNative(0)
	n := 128
	A := s.NewMat(n, n)
	B := s.NewMat(n, n)
	C := s.NewMat(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s.PokeM(A, i, j, float64(i+j))
			s.PokeM(B, i, j, float64(i-j))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(gep.MatMulSpace(n), func(c *core.Ctx) { gep.MatMul(c, C, A, B) })
	}
}

// ---- design-choice ablations (DESIGN.md §5) ----

// Associativity: ideal (fully associative) vs 8-way set-associative caches
// running the same oblivious schedule.
func BenchmarkAblationIdealCache(b *testing.B) { benchMO(b, "fft", "mc3", 1<<12) }
func BenchmarkAblation8WayCache(b *testing.B)  { benchMO(b, "fft", "mc3a", 1<<12) }

// Virtual-time quantum: finer interleaving vs the default.
func BenchmarkAblationQuantum4(b *testing.B) {
	benchMO(b, "mt", "hm4", 1<<14, core.WithQuantum(4))
}
func BenchmarkAblationQuantum256(b *testing.B) {
	benchMO(b, "mt", "hm4", 1<<14, core.WithQuantum(256))
}

// Work stealing extension vs plain hint-driven placement.
func BenchmarkAblationStealing(b *testing.B) {
	benchMO(b, "sort", "hm4", 1<<12, core.WithStealing())
}

// NO sorting: the columnsort-based algorithm (the paper's choice) against
// the bitonic baseline at the same (n, p, B).
func BenchmarkE11NOSortBitonic(b *testing.B) { benchNO(b, "sort-bitonic", 1<<10, 16, 4) }

// E12 extension: NO connected components (Theorem 10).
func BenchmarkE12NOCC(b *testing.B) { benchNO(b, "cc", 1<<8, 16, 4) }
