module oblivhm

go 1.22
