// Netgraph: the paper's §VI pipeline on a synthetic network — list ranking
// with MO-LR, Euler-tour tree statistics, and connected components — on
// both the simulated HM machine (for cache accounting) and natively.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"oblivhm/internal/core"
	"oblivhm/internal/graph"
	"oblivhm/internal/hm"
	"oblivhm/internal/listrank"
)

// newMachine builds the machine, exiting with a readable error (not a
// stack trace) if the configuration is invalid.
func newMachine(cfg hm.Config) *hm.Machine {
	m, err := hm.NewMachine(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "invalid machine config:", err)
		os.Exit(1)
	}
	return m
}

func main() {
	rng := rand.New(rand.NewSource(3))

	// --- list ranking on a scrambled linked list ---
	n := 1 << 10
	m := newMachine(hm.HM4(4, 4))
	s := core.NewSim(m)
	perm := rng.Perm(n)
	l := listrank.FromPerm(s, perm)
	rank := s.NewI64(n)
	st := s.RunCold(listrank.SpaceBound(n), func(c *core.Ctx) { listrank.MOLR(c, l, rank) })
	fmt.Printf("MO-LR on %d nodes: steps=%d, L1 max misses=%d\n", n, st.Steps, st.Sim.Levels[0].MaxMisses)
	fmt.Printf("  head node %d has rank %d (list length - 1 = %d)\n",
		perm[0], s.PeekI(rank, perm[0]), n-1)

	// --- Euler tour tree statistics on a random organisation chart ---
	sn := core.NewNative(0)
	nt := 500
	var edges [][2]int
	for v := 1; v < nt; v++ {
		edges = append(edges, [2]int{rng.Intn(v), v})
	}
	tr := graph.Tree{N: nt, Root: 0, Arcs: graph.BuildArcs(sn, edges)}
	var ts graph.TreeStats
	sn.Run(graph.SpaceBound(nt, 4*nt), func(c *core.Ctx) { ts = graph.TreeOps(c, tr) })
	maxDepth, deepest := int64(-1), 0
	for v := 0; v < nt; v++ {
		if d := sn.PeekI(ts.Depth, v); d > maxDepth {
			maxDepth, deepest = d, v
		}
	}
	fmt.Printf("\nEuler-tour tree stats on a %d-node random tree:\n", nt)
	fmt.Printf("  deepest node: %d at depth %d (parent %d, subtree size %d)\n",
		deepest, maxDepth, sn.PeekI(ts.Parent, deepest), sn.PeekI(ts.Subsize, deepest))
	fmt.Printf("  root subtree size: %d (= n)\n", sn.PeekI(ts.Subsize, 0))

	// --- connected components on a fragmented network ---
	ng := 600
	var ge [][2]int
	for k := 0; k < 500; k++ {
		u, v := rng.Intn(ng), rng.Intn(ng)
		if u != v {
			ge = append(ge, [2]int{u, v})
		}
	}
	arcs := graph.BuildArcs(sn, ge)
	comp := sn.NewI64(ng)
	sn.Run(graph.SpaceBound(ng, arcs.N), func(c *core.Ctx) { graph.CC(c, ng, arcs, comp) })
	seen := map[int64]int{}
	for v := 0; v < ng; v++ {
		seen[sn.PeekI(comp, v)]++
	}
	largest := 0
	for _, sz := range seen {
		if sz > largest {
			largest = sz
		}
	}
	fmt.Printf("\nconnected components of a %d-node, %d-edge network: %d components, largest %d\n",
		ng, len(ge), len(seen), largest)
}
