// APSP: all-pairs shortest paths on a synthetic road network with the
// Gaussian Elimination Paradigm (paper §V).  Demonstrates I-GEP under the
// SB scheduler against the definitional triple loop: identical distances,
// a fraction of the cache misses.
package main

import (
	"fmt"
	"math"
	"math/rand"
	"os"

	"oblivhm/internal/core"
	"oblivhm/internal/gep"
	"oblivhm/internal/hm"
)

// newMachine builds the machine, exiting with a readable error (not a
// stack trace) if the configuration is invalid.
func newMachine(cfg hm.Config) *hm.Machine {
	m, err := hm.NewMachine(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "invalid machine config:", err)
		os.Exit(1)
	}
	return m
}

func main() {
	const side = 8 // 8x8 grid of "cities", n = 64
	n := side * side
	rng := rand.New(rand.NewSource(7))

	// Build a grid road network with random road lengths and a few
	// diagonal highways.
	inf := math.Inf(1)
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
		for j := range w[i] {
			if i != j {
				w[i][j] = inf
			}
		}
	}
	addRoad := func(a, b int, d float64) { w[a][b], w[b][a] = d, d }
	for x := 0; x < side; x++ {
		for y := 0; y < side; y++ {
			v := x*side + y
			if x+1 < side {
				addRoad(v, v+side, 1+rng.Float64())
			}
			if y+1 < side {
				addRoad(v, v+1, 1+rng.Float64())
			}
		}
	}
	for k := 0; k < side; k++ {
		addRoad(rng.Intn(n), rng.Intn(n), 0.5) // highways
	}

	run := func(name string, algo func(c *core.Ctx, x core.Mat)) core.Mat {
		m := newMachine(hm.HM4(4, 4))
		s := core.NewSim(m)
		x := s.NewMat(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				s.PokeM(x, i, j, w[i][j])
			}
		}
		st := s.RunCold(gep.SpaceBound(n), func(c *core.Ctx) { algo(c, x) })
		fmt.Printf("%s: steps=%d  L1 max misses=%d  L2 max misses=%d\n",
			name, st.Steps, st.Sim.Levels[0].MaxMisses, st.Sim.Levels[1].MaxMisses)
		// Stash results back for comparison.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				w2[name][i*n+j] = s.PeekM(x, i, j)
			}
		}
		return x
	}
	w2 = map[string][]float64{
		"I-GEP (SB scheduler) ": make([]float64, n*n),
		"Reference triple loop": make([]float64, n*n),
	}
	run("I-GEP (SB scheduler) ", func(c *core.Ctx, x core.Mat) { gep.IGEP(c, x, gep.Floyd()) })
	run("Reference triple loop", func(c *core.Ctx, x core.Mat) { gep.Reference(c, x, gep.Floyd()) })

	a := w2["I-GEP (SB scheduler) "]
	b := w2["Reference triple loop"]
	worst := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	fmt.Printf("max distance disagreement: %g\n", worst)
	fmt.Printf("example: dist(city 0 -> city %d) = %.2f\n", n-1, a[n-1])
}

var w2 map[string][]float64
