// Solver: a dense linear system solved end-to-end with the Gaussian
// elimination GEP instance — I-GEP factorisation under the SB scheduler,
// triangular solves, determinant — on the simulated HM machine, with the
// scheduler trace showing where the work was anchored.
package main

import (
	"fmt"
	"math"
	"math/rand"
	"os"

	"oblivhm/internal/core"
	"oblivhm/internal/gep"
	"oblivhm/internal/hm"
)

// newMachine builds the machine, exiting with a readable error (not a
// stack trace) if the configuration is invalid.
func newMachine(cfg hm.Config) *hm.Machine {
	m, err := hm.NewMachine(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "invalid machine config:", err)
		os.Exit(1)
	}
	return m
}

func main() {
	n := 64
	rng := rand.New(rand.NewSource(42))

	m := newMachine(hm.HM4(4, 4))
	tr := &core.Trace{}
	s := core.NewSim(m, core.WithTrace(tr))

	// Build a diagonally dominant system A·x = b with known solution.
	a := s.NewMat(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := rng.Float64()
			if i == j {
				v += float64(2 * n)
			}
			s.PokeM(a, i, j, v)
		}
	}
	xstar := make([]float64, n)
	for i := range xstar {
		xstar[i] = math.Sin(float64(i))
	}
	b := s.NewF64(n)
	for i := 0; i < n; i++ {
		acc := 0.0
		for j := 0; j < n; j++ {
			acc += s.PeekM(a, i, j) * xstar[j]
		}
		s.PokeF(b, i, acc)
	}

	st := s.RunCold(gep.SpaceBound(n), func(c *core.Ctx) {
		gep.IGEP(c, a, gep.Gauss()) // LU factorisation in place
		gep.SolveLU(c, a, b)        // forward + back substitution
	})

	worst := 0.0
	for i := 0; i < n; i++ {
		if d := math.Abs(s.PeekF(b, i) - xstar[i]); d > worst {
			worst = d
		}
	}
	fmt.Printf("solved %dx%d system: max |x - x*| = %.2e\n", n, n, worst)
	fmt.Printf("det(A) = %.3e\n", gep.Determinant(s, a))
	fmt.Printf("virtual steps = %d, L1/L2/L3 max misses = %d/%d/%d\n",
		st.Steps, st.Sim.Levels[0].MaxMisses, st.Sim.Levels[1].MaxMisses, st.Sim.Levels[2].MaxMisses)
	fmt.Println()
	fmt.Print(tr.Summary())
}
