// Quickstart: build a simulated HM machine, run three multicore-oblivious
// algorithms on it, and print the per-level cache traffic the scheduler
// achieved — the 60-second tour of the library.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"oblivhm/internal/core"
	"oblivhm/internal/fft"
	"oblivhm/internal/hm"
	"oblivhm/internal/spms"
	"oblivhm/internal/transpose"
)

// newMachine builds the machine, exiting with a readable error (not a
// stack trace) if the configuration is invalid.
func newMachine(cfg hm.Config) *hm.Machine {
	m, err := hm.NewMachine(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "invalid machine config:", err)
		os.Exit(1)
	}
	return m
}

func main() {
	// A 4-level HM machine: 16 cores, private L1s, four L2s, one L3.
	cfg := hm.HM4(4, 4)
	fmt.Println("machine:", cfg)

	// --- matrix transposition (MO-MT, Figure 2) ---
	m := newMachine(cfg)
	s := core.NewSim(m)
	n := 64
	A := s.NewMat(n, n)
	AT := s.NewMat(n, n)
	I := s.NewF64(n * n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s.PokeM(A, i, j, float64(i*n+j))
		}
	}
	st := s.RunCold(transpose.SpaceBound(n), func(c *core.Ctx) { transpose.MOMT(c, A, AT, I) })
	fmt.Printf("\nMO-MT %dx%d:\n%s", n, n, st.Sim)

	// --- FFT (MO-FFT, Figure 3) ---
	m2 := newMachine(cfg)
	s2 := core.NewSim(m2)
	nf := 1 << 12
	x := s2.NewC128(nf)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < nf; i++ {
		s2.PokeC(x, i, complex(rng.Float64(), 0))
	}
	st2 := s2.RunCold(fft.SpaceBound(nf), func(c *core.Ctx) { fft.MOFFT(c, x) })
	fmt.Printf("\nMO-FFT n=%d:\n%s", nf, st2.Sim)

	// --- sorting (SPMS structure, §III-C) ---
	m3 := newMachine(cfg)
	s3 := core.NewSim(m3)
	ns := 1 << 12
	v := s3.NewPairs(ns)
	for i := 0; i < ns; i++ {
		s3.PokeP(v, i, core.Pair{Key: rng.Uint64(), Val: uint64(i)})
	}
	st3 := s3.RunCold(spms.SpaceBound(ns), func(c *core.Ctx) { spms.Sort(c, v) })
	fmt.Printf("\nSort n=%d:\n%s", ns, st3.Sim)
	ok := true
	for i := 1; i < ns; i++ {
		if s3.PeekP(v, i-1).Key > s3.PeekP(v, i).Key {
			ok = false
		}
	}
	fmt.Println("sorted:", ok)

	// The same code runs natively (real goroutines) with zero changes:
	sn := core.NewNative(0)
	vn := sn.NewPairs(ns)
	for i := 0; i < ns; i++ {
		sn.PokeP(vn, i, core.Pair{Key: rng.Uint64(), Val: uint64(i)})
	}
	sn.Run(spms.SpaceBound(ns), func(c *core.Ctx) { spms.Sort(c, vn) })
	fmt.Println("native run complete:", sn)
}
