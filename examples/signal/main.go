// Signal: spectral analysis and polynomial multiplication with MO-FFT —
// the workloads the cache-oblivious FFT literature motivates.  Runs
// natively (real goroutines) and verifies against direct evaluation.
package main

import (
	"fmt"
	"math"
	"math/cmplx"

	"oblivhm/internal/core"
	"oblivhm/internal/fft"
)

func main() {
	s := core.NewNative(0)

	// --- spectral peak detection ---
	n := 1 << 12
	x := s.NewC128(n)
	f1, f2 := 37.0, 120.0
	for i := 0; i < n; i++ {
		t := float64(i) / float64(n)
		v := math.Sin(2*math.Pi*f1*t) + 0.5*math.Sin(2*math.Pi*f2*t)
		s.PokeC(x, i, complex(v, 0))
	}
	s.Run(fft.SpaceBound(n), func(c *core.Ctx) { fft.MOFFT(c, x) })
	type peak struct {
		bin int
		mag float64
	}
	var peaks []peak
	for i := 1; i < n/2; i++ {
		m := cmplx.Abs(s.PeekC(x, i))
		if m > float64(n)/8 {
			peaks = append(peaks, peak{i, m})
		}
	}
	fmt.Println("detected spectral peaks (bin, magnitude):")
	for _, p := range peaks {
		fmt.Printf("  bin %4d  |X| = %.0f\n", p.bin, p.mag)
	}

	// --- polynomial multiplication via FFT ---
	// (1 + 2t + 3t²) * (4 + 5t) = 4 + 13t + 22t² + 15t³
	pa := []float64{1, 2, 3}
	pb := []float64{4, 5}
	prod := polyMul(s, pa, pb)
	fmt.Printf("\n(1+2t+3t²)(4+5t) = %v\n", prod[:4])
}

// polyMul multiplies two real polynomials with the convolution theorem:
// FFT both (zero padded), multiply pointwise, inverse FFT.
func polyMul(s *core.Session, a, b []float64) []float64 {
	n := 1
	for n < len(a)+len(b) {
		n <<= 1
	}
	fa := s.NewC128(n)
	fb := s.NewC128(n)
	for i, v := range a {
		s.PokeC(fa, i, complex(v, 0))
	}
	for i, v := range b {
		s.PokeC(fb, i, complex(v, 0))
	}
	s.Run(2*fft.SpaceBound(n), func(c *core.Ctx) {
		fft.MOFFT(c, fa)
		fft.MOFFT(c, fb)
		c.PFor(n, 2, func(cc *core.Ctx, lo, hi int) {
			for i := lo; i < hi; i++ {
				fa.Set(cc, i, fa.At(cc, i)*fb.At(cc, i))
			}
		})
		// Inverse FFT via conjugation: IFFT(X) = conj(FFT(conj(X)))/n.
		c.PFor(n, 2, func(cc *core.Ctx, lo, hi int) {
			for i := lo; i < hi; i++ {
				fa.Set(cc, i, cmplx.Conj(fa.At(cc, i)))
			}
		})
		fft.MOFFT(c, fa)
		c.PFor(n, 2, func(cc *core.Ctx, lo, hi int) {
			for i := lo; i < hi; i++ {
				fa.Set(cc, i, cmplx.Conj(fa.At(cc, i))/complex(float64(n), 0))
			}
		})
	})
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Round(real(s.PeekC(fa, i))*1e9) / 1e9
	}
	return out
}
