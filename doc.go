// Package oblivhm is a Go reproduction of "Oblivious Algorithms for
// Multicores and Network of Processors" (Chowdhury, Silvestri, Blakeley,
// Ramachandran; IPDPS 2010): the HM multicore model with hierarchical
// multi-level caching, a run-time scheduler driven by the paper's CGC, SB
// and CGC⇒SB hints, the multicore-oblivious algorithms built on it
// (transposition, scans, FFT, sorting, SpM-DV, the Gaussian Elimination
// Paradigm, list ranking, Euler tours, connected components), and the
// network-oblivious counterparts on the M(N)/M(p,B)/D-BSP models
// (NO-MT, NO-FFT, prefix sums, sorting, NO-LR, N-GEP with the 𝒟*
// ordering).
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and per-experiment index, and EXPERIMENTS.md for measured
// results against every table and figure of the paper.
package oblivhm
