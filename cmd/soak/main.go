// Command soak stress-tests the simulated engine's robustness contract: a
// randomized sweep of algorithm × machine × input-size × scheduler-option
// combinations runs under seeded chaos (WithChaos perturbs steal victims,
// admission timing, quantum sizes and placement tie-breaks) with the runtime
// invariant checker enabled, until the time budget runs out.  Interleaved
// determinism probes re-run a pair chaos-off twice and require the metric
// tuple (Steps, per-level MaxMisses, PlacedAt, Steals) to repeat exactly,
// and a slice of iterations exercises the network-oblivious substrate,
// including shape-violation inputs that must come back as no.ErrUsage
// errors rather than stack traces.  A -failures slice (on by default)
// re-runs random points under random seeded failure plans — core kills,
// stragglers, cache faults, watchdog armed — and requires the outcome
// (metrics plus recovery report, or the typed error) to repeat exactly.
//
// Run it under the race detector — that is the point:
//
//	go run -race ./cmd/soak -duration 60s
//	make soak                               # the same, via the Makefile
//
// Any invariant violation, deadlock, unexpected error, metric divergence or
// race exits non-zero.
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"strings"
	"time"

	"oblivhm/internal/core"
	"oblivhm/internal/harness"
	"oblivhm/internal/no"
)

// moSizes gives each MO algorithm a ladder of input sizes small enough that
// one run takes milliseconds, so a 30-second soak covers thousands of
// (algo, machine, n, opts, seed) points.
var moSizes = map[string][]int{
	"mt": {1 << 8, 1 << 10}, "mt-naive": {1 << 8, 1 << 10},
	"scan": {1 << 10, 1 << 12},
	"fft":  {1 << 7, 1 << 9}, "fft-iter": {1 << 7, 1 << 9},
	"sort": {1 << 7, 1 << 9},
	"mm":   {1 << 8, 1 << 10}, "mm-tiled": {1 << 8, 1 << 10},
	"gep": {1 << 8, 1 << 10}, "gep-ref": {1 << 8, 1 << 10},
	"spmdv": {1 << 8, 1 << 10}, "spmdv-rand": {1 << 8, 1 << 10},
	"lr": {1 << 6, 1 << 8}, "lr-wyllie": {1 << 6, 1 << 8},
	"cc": {1 << 5, 1 << 7},
}

// noShapes are valid (algo, n, p, B) points for the NO substrate slice of
// the soak, plus the invalid shapes that must produce usage errors.
var noShapes = []struct {
	algo    string
	n, p, b int
}{
	{"mt", 1024, 8, 4},
	{"prefix", 1 << 10, 8, 4},
	{"fft", 1 << 9, 8, 4},
	{"sort", 1 << 9, 8, 4},
	{"lr", 1 << 8, 8, 4},
}

var noBadShapes = []struct {
	algo    string
	n, p, b int
}{
	{"fft", 1000, 7, 4},
	{"sort", 1000, 8, 4},
	{"prefix", 1000, 8, 4},
}

type metrics struct {
	Steps     int64
	MaxMisses []int64
	PlacedAt  []int
	Steals    int64
}

func metricsOf(r harness.MOResult) metrics {
	m := metrics{Steps: r.Steps, PlacedAt: r.PlacedAt, Steals: r.Steals}
	for _, l := range r.Levels {
		m.MaxMisses = append(m.MaxMisses, l.MaxMisses)
	}
	return m
}

func main() {
	duration := flag.Duration("duration", 30*time.Second, "soak time budget")
	seed := flag.Int64("seed", 1, "master seed for the randomized sweep")
	machines := flag.String("machines", "mc3,hm4,hm5", "comma-separated machine presets to sweep")
	parallel := flag.Int("parallel", 0, "force this many cache-replay workers on every iteration (0 = mixed sweep incl. par2/par4 sets)")
	failures := flag.Bool("failures", true, "include failure-injection iterations (seeded core kills, stragglers, cache faults)")
	verbose := flag.Bool("v", false, "log every iteration")
	flag.Parse()

	var machineList []string
	for _, m := range strings.Split(*machines, ",") {
		if m = strings.TrimSpace(m); m != "" {
			machineList = append(machineList, m)
		}
	}
	algos := harness.MOAlgos()
	rng := rand.New(rand.NewSource(*seed))
	deadline := time.Now().Add(*duration)

	optSets := []struct {
		name string
		opts []core.Opt
	}{
		{"", nil},
		{"steal", []core.Opt{core.WithStealing()}},
		{"flat", []core.Opt{core.WithFlatScheduler()}},
		{"q8", []core.Opt{core.WithQuantum(8)}},
		// Parallel cache replay: same metrics, real threads underneath —
		// the determinism probes and chaos runs that land on these sets
		// exercise the pipeline's drain points under the race detector.
		{"par2", []core.Opt{core.WithParallel(2)}},
		{"par4+steal", []core.Opt{core.WithParallel(4), core.WithStealing()}},
		// Parallel round execution (DESIGN.md §11): the speculation phase
		// runs per-core strands concurrently, so chaos runs landing on these
		// sets pin the documented chaos fallback (chaos serializes the loop)
		// and the determinism probes pin metric equality; composed sets also
		// drive the replay pipeline from execution-phase threads.
		{"pr2", []core.Opt{core.WithParallelRounds(2)}},
		{"pr4", []core.Opt{core.WithParallelRounds(4)}},
		{"pr2+par2", []core.Opt{core.WithParallelRounds(2), core.WithParallel(2)}},
		{"pr4+steal", []core.Opt{core.WithParallelRounds(4), core.WithStealing()}},
	}
	if *parallel > 0 {
		for i := range optSets {
			optSets[i].name += fmt.Sprintf("+par%d", *parallel)
			optSets[i].opts = append(append([]core.Opt(nil), optSets[i].opts...), core.WithParallel(*parallel))
		}
	}

	var iters, chaosRuns, detProbes, noRuns, noBad, failRuns int
	start := time.Now()
	for time.Now().Before(deadline) {
		iters++
		switch {
		case iters%23 == 0:
			// NO substrate slice: a valid shape must run clean...
			s := noShapes[rng.Intn(len(noShapes))]
			if _, err := harness.RunNO(s.algo, s.n, s.p, s.b); err != nil {
				fail("NO %s(n=%d,p=%d,B=%d): %v", s.algo, s.n, s.p, s.b, err)
			}
			noRuns++
			// ...and an invalid one must error through RunNO, not panic.
			bad := noBadShapes[rng.Intn(len(noBadShapes))]
			if _, err := harness.RunNO(bad.algo, bad.n, bad.p, bad.b); !errors.Is(err, no.ErrUsage) {
				fail("NO %s(n=%d,p=%d): want a no.ErrUsage error, got %v", bad.algo, bad.n, bad.p, err)
			}
			noBad++

		case iters%11 == 0:
			// Determinism probe: with chaos off, two runs of the same point
			// must agree on every pinned metric.
			algo := algos[rng.Intn(len(algos))]
			sizes := moSizes[algo]
			n := sizes[rng.Intn(len(sizes))]
			machine := machineList[rng.Intn(len(machineList))]
			ov := optSets[rng.Intn(len(optSets))]
			a, err := harness.RunMO(algo, machine, n, ov.opts...)
			if err != nil {
				fail("probe %s/%s/n=%d/%s: %v", algo, machine, n, ov.name, err)
			}
			b, err := harness.RunMO(algo, machine, n, ov.opts...)
			if err != nil {
				fail("probe rerun %s/%s/n=%d/%s: %v", algo, machine, n, ov.name, err)
			}
			if ma, mb := metricsOf(a), metricsOf(b); !reflect.DeepEqual(ma, mb) {
				fail("determinism violated: %s/%s/n=%d/%s\n  run 1: %+v\n  run 2: %+v",
					algo, machine, n, ov.name, ma, mb)
			}
			detProbes++
			if *verbose {
				fmt.Printf("probe %s/%s/n=%d/%s ok\n", algo, machine, n, ov.name)
			}

		case *failures && iters%7 == 0:
			// Failure probe: a random point under a random seeded failure
			// plan must produce the same outcome when re-run — metrics plus
			// recovery report, or the same typed error.  The watchdog bounds
			// the livelock a lossy in-place re-execution could cause, turning
			// it into a *core.FailureError that must itself repeat.
			algo := algos[rng.Intn(len(algos))]
			sizes := moSizes[algo]
			n := sizes[rng.Intn(len(sizes))]
			machine := machineList[rng.Intn(len(machineList))]
			ov := optSets[rng.Intn(len(optSets))]
			plan := core.FailurePlan{
				KillCores:     rng.Intn(3),
				Stragglers:    rng.Intn(3),
				CacheFaults:   rng.Intn(5),
				HorizonRounds: 16 << rng.Intn(4),
			}
			if plan.Stragglers > 0 {
				plan.SlowFactor = int64(2 + rng.Intn(3))
			}
			fseed := rng.Int63()
			opts := append(append([]core.Opt(nil), ov.opts...),
				core.WithFailures(fseed, plan), core.WithWatchdog(1<<20))
			run := func() (metrics, *core.RecoveryReport, string) {
				res, err := harness.RunMO(algo, machine, n, opts...)
				if err != nil {
					return metrics{}, nil, err.Error()
				}
				return metricsOf(res), res.Recovery, ""
			}
			m1, r1, e1 := run()
			m2, r2, e2 := run()
			if e1 != e2 || !reflect.DeepEqual(m1, m2) || !reflect.DeepEqual(r1, r2) {
				fail("failure outcome diverged: %s/%s/n=%d/%s fseed=%d plan=%+v\n  run 1: %+v %+v %q\n  run 2: %+v %+v %q",
					algo, machine, n, ov.name, fseed, plan, m1, r1, e1, m2, r2, e2)
			}
			failRuns++
			if *verbose {
				fmt.Printf("failure %s/%s/n=%d/%s fseed=%d ok\n", algo, machine, n, ov.name, fseed)
			}

		default:
			// Chaos run: random point, random chaos seed, invariants on.
			algo := algos[rng.Intn(len(algos))]
			sizes := moSizes[algo]
			n := sizes[rng.Intn(len(sizes))]
			machine := machineList[rng.Intn(len(machineList))]
			ov := optSets[rng.Intn(len(optSets))]
			cs := rng.Int63()
			opts := append(append([]core.Opt(nil), ov.opts...), core.WithChaos(cs))
			if _, err := harness.RunMO(algo, machine, n, opts...); err != nil {
				fail("chaos %s/%s/n=%d/%s seed=%d: %v", algo, machine, n, ov.name, cs, err)
			}
			chaosRuns++
			if *verbose {
				fmt.Printf("chaos %s/%s/n=%d/%s seed=%d ok\n", algo, machine, n, ov.name, cs)
			}
		}
	}
	fmt.Printf("soak ok: %d iterations in %v (%d chaos runs, %d determinism probes, %d failure probes, %d NO runs, %d NO usage errors)\n",
		iters, time.Since(start).Round(time.Millisecond), chaosRuns, detProbes, failRuns, noRuns, noBad)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "soak: FAIL: "+format+"\n", args...)
	os.Exit(1)
}
