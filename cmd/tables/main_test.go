package main

// Equivalence tests for the internal/sweep rebase: every MO section of
// cmd/tables now runs through the sweep grid runner instead of its own
// run loop.  The reference implementations below are the deleted loops,
// verbatim — direct harness.RunMO calls in the original iteration order —
// and the rendered section output must match byte for byte, at every
// worker count.

import (
	"bytes"
	"fmt"
	"testing"

	"oblivhm/internal/core"
	"oblivhm/internal/harness"
	"oblivhm/internal/sweep"
)

// refTableIIMO is the pre-sweep tableIIMO run loop (machines outer, sizes
// inner, direct harness.RunMO), restricted like -quick for test time.
func refTableIIMO(w *bytes.Buffer) {
	rows := []struct {
		algo    string
		formula string
		sizes   []int
	}{
		{"scan", "Θ(n/(q_i·B_i))", []int{1 << 12}},
		{"mm", "Θ(n³/(q_i·B_i·√C_i))", []int{1 << 10}},
		{"sort", "Θ((n/(q_i·B_i))·log_{C_i} n)", []int{1 << 11}},
	}
	machines := []string{"mc3"}
	for _, row := range rows {
		fmt.Fprintf(w, "--- %s: %s\n", row.algo, row.formula)
		for _, mach := range machines {
			for _, n := range row.sizes {
				res, err := harness.RunMO(row.algo, mach, n)
				if err != nil {
					fmt.Fprintln(w, "  error:", err)
					continue
				}
				fmt.Fprint(w, indent(res.String()))
			}
		}
	}
}

// sweepTableIIMO is the same subset rendered through the sweep runner,
// mirroring tableIIMO's structure.
func sweepTableIIMO(w *bytes.Buffer, workers int, t *testing.T) {
	rows := []struct {
		algo    string
		formula string
		sizes   []int
	}{
		{"scan", "Θ(n/(q_i·B_i))", []int{1 << 12}},
		{"mm", "Θ(n³/(q_i·B_i·√C_i))", []int{1 << 10}},
		{"sort", "Θ((n/(q_i·B_i))·log_{C_i} n)", []int{1 << 11}},
	}
	for _, row := range rows {
		fmt.Fprintf(w, "--- %s: %s\n", row.algo, row.formula)
		for _, r := range mustCollect(t, row.algo, []string{"mc3"}, row.sizes, nil, workers) {
			if r.Err != "" {
				fmt.Fprintln(w, "  error:", r.Err)
				continue
			}
			fmt.Fprint(w, indent(r.Result().String()))
		}
	}
}

func TestTableIIMOSweepEquivalence(t *testing.T) {
	var want bytes.Buffer
	refTableIIMO(&want)
	if want.Len() == 0 {
		t.Fatal("reference produced no output")
	}
	for _, workers := range []int{1, 4} {
		var got bytes.Buffer
		sweepTableIIMO(&got, workers, t)
		if got.String() != want.String() {
			t.Errorf("workers=%d: sweep-backed tableIIMO diverges from the direct run loop\n--- want ---\n%s--- got ---\n%s",
				workers, want.String(), got.String())
		}
	}
}

// refAblation is the pre-sweep E13 loop: per algorithm, one default run
// and one flat-scheduler run, compared level by level.
func refAblation(w *bytes.Buffer, t *testing.T) {
	n := 1 << 10
	for _, algo := range []string{"mm", "sort"} {
		sb, err := harness.RunMO(algo, "hm4", n)
		if err != nil {
			t.Fatalf("ref ablation %s: %v", algo, err)
		}
		flat, err := harness.RunMO(algo, "hm4", n, core.WithFlatScheduler())
		if err != nil {
			t.Fatalf("ref ablation %s flat: %v", algo, err)
		}
		fmt.Fprintf(w, "--- %s n=%d on hm4 (higher-level misses: SB vs flat)\n", algo, n)
		for i := range sb.Levels {
			f := flat.Levels[i]
			s := sb.Levels[i]
			ratio := float64(f.MaxMisses) / float64(maxI64(s.MaxMisses, 1))
			fmt.Fprintf(w, "  L%d: SB=%-10d flat=%-10d flat/SB=%.2f\n", s.Level, s.MaxMisses, f.MaxMisses, ratio)
		}
	}
}

func TestAblationSweepEquivalence(t *testing.T) {
	var want bytes.Buffer
	refAblation(&want, t)
	for _, workers := range []int{1, 4} {
		var got bytes.Buffer
		ablation(&got, true, workers)
		if got.String() != want.String() {
			t.Errorf("workers=%d: sweep-backed ablation diverges from the direct run loop\n--- want ---\n%s--- got ---\n%s",
				workers, want.String(), got.String())
		}
	}
}

// refAssocAblation is the pre-sweep associativity loop: per algorithm, one
// ideal (mc3) run paired with one 8-way (mc3a) run.
func refAssocAblation(w *bytes.Buffer, t *testing.T) {
	n := 1 << 10
	for _, algo := range []string{"fft", "sort", "mm"} {
		ideal, err := harness.RunMO(algo, "mc3", n)
		if err != nil {
			t.Fatalf("ref assoc %s: %v", algo, err)
		}
		assoc, err := harness.RunMO(algo, "mc3a", n)
		if err != nil {
			t.Fatalf("ref assoc %s mc3a: %v", algo, err)
		}
		fmt.Fprintf(w, "--- %s n=%d: per-level max misses, ideal vs 8-way\n", algo, n)
		for i := range ideal.Levels {
			a, b := ideal.Levels[i], assoc.Levels[i]
			fmt.Fprintf(w, "  L%d: ideal=%-10d 8way=%-10d 8way/ideal=%.2f\n",
				a.Level, a.MaxMisses, b.MaxMisses, float64(b.MaxMisses)/float64(maxI64(a.MaxMisses, 1)))
		}
	}
}

func TestAssocAblationSweepEquivalence(t *testing.T) {
	var want bytes.Buffer
	refAssocAblation(&want, t)
	for _, workers := range []int{1, 4} {
		var got bytes.Buffer
		assocAblation(&got, true, workers)
		if got.String() != want.String() {
			t.Errorf("workers=%d: sweep-backed assocAblation diverges from the direct run loop\n--- want ---\n%s--- got ---\n%s",
				workers, want.String(), got.String())
		}
	}
}

func mustCollect(t *testing.T, algo string, machines []string, sizes []int, options []string, workers int) []sweep.Row {
	t.Helper()
	rows, err := sweep.Collect(&sweep.Spec{
		Algos: []string{algo}, Machines: machines, Sizes: sizes, Options: options,
	}, workers)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestMainCollectSmoke(t *testing.T) {
	// collect must return rows in grid order for the table sections to
	// pair them; a tiny two-cell grid pins that assumption.
	rows := collect(&sweep.Spec{
		Algos:    []string{"scan"},
		Machines: []string{"mc3", "hm4"},
		Sizes:    []int{1 << 10},
	}, 2)
	if len(rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(rows))
	}
	if rows[0].Machine != "mc3" || rows[1].Machine != "hm4" {
		t.Fatalf("rows out of grid order: %s, %s", rows[0].Key(), rows[1].Key())
	}
}
