// Command tables regenerates the paper's evaluation artifacts:
//
//   - Table I: the 𝒟 vs 𝒟* recursion orderings and their measured
//     communication on M(p,B) (experiment E10);
//   - Table II: for every problem row, measured per-level HM cache misses
//     against the MO cache-complexity formula and measured M(p,B)
//     communication against the NO formula, over size sweeps so the
//     *shape* (scaling and constants stability) is visible;
//   - the E13 scheduler ablation (SB vs flat proportionate-slice);
//   - the E15 D-BSP communication-time sweep for N-GEP.
//
// Run with -quick for a fast subset.
package main

import (
	"flag"
	"fmt"

	"oblivhm/internal/core"
	"oblivhm/internal/gep"
	"oblivhm/internal/harness"
	"oblivhm/internal/hm"
	"oblivhm/internal/no"
	"oblivhm/internal/nogep"
)

func main() {
	quick := flag.Bool("quick", false, "smaller sweeps")
	flag.Parse()

	fmt.Println("==================================================================")
	fmt.Println("Table I — D vs D* recursion orderings (N-GEP, experiment E10)")
	fmt.Println("==================================================================")
	tableI(*quick)

	fmt.Println()
	fmt.Println("==================================================================")
	fmt.Println("Table II — MO cache complexity (per-level max misses vs formula)")
	fmt.Println("==================================================================")
	tableIIMO(*quick)

	fmt.Println()
	fmt.Println("==================================================================")
	fmt.Println("Table II — NO communication complexity (vs formula)")
	fmt.Println("==================================================================")
	tableIINO(*quick)

	fmt.Println()
	fmt.Println("==================================================================")
	fmt.Println("E13 — scheduler ablation: SB hierarchy vs flat proportionate slice")
	fmt.Println("==================================================================")
	ablation(*quick)

	fmt.Println()
	fmt.Println("==================================================================")
	fmt.Println("E15 — N-GEP on D-BSP: communication time vs block-size vector")
	fmt.Println("==================================================================")
	dbspSweep(*quick)

	fmt.Println()
	fmt.Println("==================================================================")
	fmt.Println("Ablation — ideal (fully associative) vs 8-way set-associative")
	fmt.Println("==================================================================")
	assocAblation(*quick)

	fmt.Println()
	fmt.Println("==================================================================")
	fmt.Println("Table II \"Time\" column — virtual steps vs core count")
	fmt.Println("==================================================================")
	speedupSweep(*quick)
}

// speedupSweep measures parallel steps on the 3-level machine as p grows —
// the Θ(work/p) time column of Table II (optimal while p stays below each
// row's "max value of p").
func speedupSweep(quick bool) {
	rows := []struct {
		algo string
		n    int
	}{
		{"mt", 1 << 14}, {"scan", 1 << 14}, {"fft", 1 << 12},
		{"sort", 1 << 12}, {"mm", 1 << 12}, {"lr", 1 << 10},
	}
	ps := []int{1, 2, 4, 8}
	fmt.Printf("%-6s %-8s", "algo", "n")
	for _, p := range ps {
		fmt.Printf(" %12s", fmt.Sprintf("steps(p=%d)", p))
	}
	fmt.Printf(" %10s\n", "spdup(8)")
	for _, row := range rows {
		n := row.n
		if quick {
			n /= 4
		}
		fmt.Printf("%-6s %-8d", row.algo, n)
		var s1, s8 int64
		for _, p := range ps {
			res, err := harness.RunMOOnConfig(row.algo, hm.MC3(p), n)
			if err != nil {
				fmt.Println(" error:", err)
				break
			}
			if p == 1 {
				s1 = res.Steps
			}
			if p == 8 {
				s8 = res.Steps
			}
			fmt.Printf(" %12d", res.Steps)
		}
		if s8 > 0 {
			fmt.Printf(" %10.2f", float64(s1)/float64(s8))
		}
		fmt.Println()
	}
}

func assocAblation(quick bool) {
	n := 1 << 12
	if quick {
		n = 1 << 10
	}
	for _, algo := range []string{"fft", "sort", "mm"} {
		ideal, err := harness.RunMO(algo, "mc3", n)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		assoc, err := harness.RunMO(algo, "mc3a", n)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("--- %s n=%d: per-level max misses, ideal vs 8-way\n", algo, n)
		for i := range ideal.Levels {
			a, b := ideal.Levels[i], assoc.Levels[i]
			fmt.Printf("  L%d: ideal=%-10d 8way=%-10d 8way/ideal=%.2f\n",
				a.Level, a.MaxMisses, b.MaxMisses, float64(b.MaxMisses)/float64(maxI64(a.MaxMisses, 1)))
		}
	}
}

func tableI(quick bool) {
	fmt.Println("Round structure (quadrants read per round of one D/D* call):")
	fmt.Println("  D  round 1: U11 x2, U21 x2, V11 x2, V12 x2, W11 x4")
	fmt.Println("  D* round 1: U11, U12, U21, U22, V11, V12, V21, V22, W11 x2, W22 x2")
	fmt.Println("  (with D*, no U or V quadrant is requested twice in a round)")
	fmt.Println()
	m := 32
	if quick {
		m = 16
	}
	fmt.Printf("%-8s %-6s %-4s %-10s %-10s %-8s\n", "matrix", "p", "B", "comm(D)", "comm(D*)", "D*/D")
	for _, p := range []int{4, 8, 16} {
		for _, b := range []int{2, 8} {
			cd := ngepComm(m, p, b, false)
			cs := ngepComm(m, p, b, true)
			fmt.Printf("%-8d %-6d %-4d %-10d %-10d %-8.2f\n", m, p, b, cd, cs, float64(cs)/float64(cd))
		}
	}
}

func ngepComm(m, p, b int, star bool) int64 {
	pes := m * m / 4
	w := no.NewWorld(pes, p, b)
	e := &nogep.Engine{W: w, Spec: gep.Floyd(), UseDStar: star}
	in := make([]float64, m*m)
	for i := range in {
		in[i] = float64(i%17) + 1
	}
	e.RunGEP(m, in)
	return w.Comm()
}

func tableIIMO(quick bool) {
	rows := []struct {
		algo    string
		formula string
		sizes   []int
	}{
		{"scan", "Θ(n/(q_i·B_i))", []int{1 << 12, 1 << 14, 1 << 16}},
		{"mt", "Θ(n²/(q_i·B_i))  [n = elements]", []int{1 << 12, 1 << 14, 1 << 16}},
		{"mm", "Θ(n³/(q_i·B_i·√C_i))", []int{1 << 10, 1 << 12}},
		{"gep", "Θ(n³/(q_i·B_i·√C_i))", []int{1 << 10, 1 << 12}},
		{"fft", "Θ((n/(q_i·B_i))·log_{C_i} n)", []int{1 << 12, 1 << 14}},
		{"sort", "Θ((n/(q_i·B_i))·log_{C_i} n)", []int{1 << 11, 1 << 13}},
		{"lr", "O((n/(q_i·B_i))·log_{C_i} n + ...)", []int{1 << 10, 1 << 12}},
		{"spmdv", "O((n/q_i)(1/B_i + 1/C_i^{1/2}))", []int{1 << 12, 1 << 14}},
		{"cc", "O((N/(q_i·B_i))·log_{C_i} N·log N + ...)", []int{1 << 9, 1 << 11}},
	}
	machines := []string{"mc3", "hm4"}
	if quick {
		machines = machines[:1]
	}
	for _, row := range rows {
		sizes := row.sizes
		if quick {
			sizes = sizes[:1]
		}
		fmt.Printf("--- %s: %s\n", row.algo, row.formula)
		for _, mach := range machines {
			for _, n := range sizes {
				res, err := harness.RunMO(row.algo, mach, n)
				if err != nil {
					fmt.Println("  error:", err)
					continue
				}
				fmt.Print(indent(res.String()))
			}
		}
	}
}

func tableIINO(quick bool) {
	rows := []struct {
		algo  string
		sizes []int
	}{
		{"mt", []int{1 << 10, 1 << 12}},
		{"prefix", []int{1 << 10, 1 << 14}},
		{"fft", []int{1 << 8, 1 << 10}},
		{"sort", []int{1 << 8, 1 << 10}},
		{"sort-bitonic", []int{1 << 10}},
		{"lr", []int{1 << 8, 1 << 10}},
		{"cc", []int{1 << 8}},
		{"ngep", []int{1 << 8, 1 << 10}},
	}
	for _, row := range rows {
		sizes := row.sizes
		if quick {
			sizes = sizes[:1]
		}
		for _, n := range sizes {
			for _, p := range []int{4, 16} {
				for _, b := range []int{2, 8} {
					res, err := harness.RunNO(row.algo, n, p, b)
					if err != nil {
						fmt.Println("error:", err)
						continue
					}
					fmt.Println(" ", res)
				}
			}
		}
	}
}

func ablation(quick bool) {
	n := 1 << 12
	if quick {
		n = 1 << 10
	}
	for _, algo := range []string{"mm", "sort"} {
		sb, err := harness.RunMO(algo, "hm4", n)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		flat, err := harness.RunMO(algo, "hm4", n, core.WithFlatScheduler())
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("--- %s n=%d on hm4 (higher-level misses: SB vs flat)\n", algo, n)
		for i := range sb.Levels {
			f := flat.Levels[i]
			s := sb.Levels[i]
			ratio := float64(f.MaxMisses) / float64(maxI64(s.MaxMisses, 1))
			fmt.Printf("  L%d: SB=%-10d flat=%-10d flat/SB=%.2f\n", s.Level, s.MaxMisses, f.MaxMisses, ratio)
		}
	}
}

func dbspSweep(quick bool) {
	m := 32
	if quick {
		m = 16
	}
	pes := m * m / 4
	fmt.Printf("%-4s %-26s %-12s\n", "p", "B vector (per level)", "D-BSP time")
	for _, p := range []int{4, 16} {
		for _, scale := range []int64{1, 4, 16} {
			w := no.NewWorld(pes, p, 1)
			e := &nogep.Engine{W: w, Spec: gep.Floyd(), UseDStar: true}
			in := make([]float64, m*m)
			for i := range in {
				in[i] = float64(i%11) + 1
			}
			e.RunGEP(m, in)
			logP := 0
			for 1<<logP < p {
				logP++
			}
			g := make([]float64, logP)
			bs := make([]int64, logP)
			for i := range g {
				g[i] = float64(int64(1) << uint(logP-i))
				bs[i] = scale << uint(i/2) // larger blocks deeper in the hierarchy
			}
			fmt.Printf("%-4d B0=%-3d (x%d per 2 lvls)      %-12.0f\n", p, scale, 2, w.DBSPTime(g, bs))
		}
	}
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "  " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
