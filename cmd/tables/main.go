// Command tables regenerates the paper's evaluation artifacts:
//
//   - Table I: the 𝒟 vs 𝒟* recursion orderings and their measured
//     communication on M(p,B) (experiment E10);
//   - Table II: for every problem row, measured per-level HM cache misses
//     against the MO cache-complexity formula and measured M(p,B)
//     communication against the NO formula, over size sweeps so the
//     *shape* (scaling and constants stability) is visible;
//   - the E13 scheduler ablation (SB vs flat proportionate-slice);
//   - the E15 D-BSP communication-time sweep for N-GEP.
//
// Every simulated-machine (MO) section runs through internal/sweep — the
// same grid expansion and runner as cmd/sweep — so a table cell and a
// sweep row are guaranteed to be the same measurement; the equivalence
// test in main_test.go pins the rendered output against direct
// harness.RunMO loops byte for byte.
//
// Run with -quick for a fast subset.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"oblivhm/internal/gep"
	"oblivhm/internal/harness"
	"oblivhm/internal/hm"
	"oblivhm/internal/no"
	"oblivhm/internal/nogep"
	"oblivhm/internal/sweep"
)

func main() {
	quick := flag.Bool("quick", false, "smaller sweeps")
	workers := flag.Int("workers", 4, "concurrent simulated runs per section (output is identical for any value)")
	flag.Parse()
	w := os.Stdout

	fmt.Fprintln(w, "==================================================================")
	fmt.Fprintln(w, "Table I — D vs D* recursion orderings (N-GEP, experiment E10)")
	fmt.Fprintln(w, "==================================================================")
	tableI(w, *quick)

	fmt.Fprintln(w)
	fmt.Fprintln(w, "==================================================================")
	fmt.Fprintln(w, "Table II — MO cache complexity (per-level max misses vs formula)")
	fmt.Fprintln(w, "==================================================================")
	tableIIMO(w, *quick, *workers)

	fmt.Fprintln(w)
	fmt.Fprintln(w, "==================================================================")
	fmt.Fprintln(w, "Table II — NO communication complexity (vs formula)")
	fmt.Fprintln(w, "==================================================================")
	tableIINO(w, *quick)

	fmt.Fprintln(w)
	fmt.Fprintln(w, "==================================================================")
	fmt.Fprintln(w, "E13 — scheduler ablation: SB hierarchy vs flat proportionate slice")
	fmt.Fprintln(w, "==================================================================")
	ablation(w, *quick, *workers)

	fmt.Fprintln(w)
	fmt.Fprintln(w, "==================================================================")
	fmt.Fprintln(w, "E15 — N-GEP on D-BSP: communication time vs block-size vector")
	fmt.Fprintln(w, "==================================================================")
	dbspSweep(w, *quick)

	fmt.Fprintln(w)
	fmt.Fprintln(w, "==================================================================")
	fmt.Fprintln(w, "Ablation — ideal (fully associative) vs 8-way set-associative")
	fmt.Fprintln(w, "==================================================================")
	assocAblation(w, *quick, *workers)

	fmt.Fprintln(w)
	fmt.Fprintln(w, "==================================================================")
	fmt.Fprintln(w, "Table II \"Time\" column — virtual steps vs core count")
	fmt.Fprintln(w, "==================================================================")
	speedupSweep(w, *quick)
}

// collect expands and runs a programmatic spec through the sweep runner,
// exiting loudly on spec mistakes (a bug in this command, not user input).
func collect(spec *sweep.Spec, workers int) []sweep.Row {
	rows, err := sweep.Collect(spec, workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tables: internal spec error:", err)
		os.Exit(1)
	}
	return rows
}

// speedupSweep measures parallel steps on the 3-level machine as p grows —
// the Θ(work/p) time column of Table II (optimal while p stays below each
// row's "max value of p").  The core-count axis varies the machine *shape*
// (hm.MC3(p)), which has no preset name, so this section drives the
// harness directly rather than through a sweep grid.
func speedupSweep(w io.Writer, quick bool) {
	rows := []struct {
		algo string
		n    int
	}{
		{"mt", 1 << 14}, {"scan", 1 << 14}, {"fft", 1 << 12},
		{"sort", 1 << 12}, {"mm", 1 << 12}, {"lr", 1 << 10},
	}
	ps := []int{1, 2, 4, 8}
	fmt.Fprintf(w, "%-6s %-8s", "algo", "n")
	for _, p := range ps {
		fmt.Fprintf(w, " %12s", fmt.Sprintf("steps(p=%d)", p))
	}
	fmt.Fprintf(w, " %10s\n", "spdup(8)")
	for _, row := range rows {
		n := row.n
		if quick {
			n /= 4
		}
		fmt.Fprintf(w, "%-6s %-8d", row.algo, n)
		var s1, s8 int64
		for _, p := range ps {
			res, err := harness.RunMOOnConfig(row.algo, hm.MC3(p), n)
			if err != nil {
				fmt.Fprintln(w, " error:", err)
				break
			}
			if p == 1 {
				s1 = res.Steps
			}
			if p == 8 {
				s8 = res.Steps
			}
			fmt.Fprintf(w, " %12d", res.Steps)
		}
		if s8 > 0 {
			fmt.Fprintf(w, " %10.2f", float64(s1)/float64(s8))
		}
		fmt.Fprintln(w)
	}
}

func assocAblation(w io.Writer, quick bool, workers int) {
	n := 1 << 12
	if quick {
		n = 1 << 10
	}
	// Grid order (machines innermost of the two axes) pairs each
	// algorithm's ideal run with its 8-way run.
	rows := collect(&sweep.Spec{
		Algos:    []string{"fft", "sort", "mm"},
		Machines: []string{"mc3", "mc3a"},
		Sizes:    []int{n},
	}, workers)
	for i := 0; i+1 < len(rows); i += 2 {
		ideal, assoc := rows[i], rows[i+1]
		if ideal.Err != "" || assoc.Err != "" {
			fmt.Fprintln(w, "error:", firstErr(ideal, assoc))
			return
		}
		fmt.Fprintf(w, "--- %s n=%d: per-level max misses, ideal vs 8-way\n", ideal.Algo, n)
		for j := range ideal.Levels {
			a, b := ideal.Levels[j], assoc.Levels[j]
			fmt.Fprintf(w, "  L%d: ideal=%-10d 8way=%-10d 8way/ideal=%.2f\n",
				a.Level, a.MaxMisses, b.MaxMisses, float64(b.MaxMisses)/float64(maxI64(a.MaxMisses, 1)))
		}
	}
}

func tableI(w io.Writer, quick bool) {
	fmt.Fprintln(w, "Round structure (quadrants read per round of one D/D* call):")
	fmt.Fprintln(w, "  D  round 1: U11 x2, U21 x2, V11 x2, V12 x2, W11 x4")
	fmt.Fprintln(w, "  D* round 1: U11, U12, U21, U22, V11, V12, V21, V22, W11 x2, W22 x2")
	fmt.Fprintln(w, "  (with D*, no U or V quadrant is requested twice in a round)")
	fmt.Fprintln(w)
	m := 32
	if quick {
		m = 16
	}
	fmt.Fprintf(w, "%-8s %-6s %-4s %-10s %-10s %-8s\n", "matrix", "p", "B", "comm(D)", "comm(D*)", "D*/D")
	for _, p := range []int{4, 8, 16} {
		for _, b := range []int{2, 8} {
			cd := ngepComm(m, p, b, false)
			cs := ngepComm(m, p, b, true)
			fmt.Fprintf(w, "%-8d %-6d %-4d %-10d %-10d %-8.2f\n", m, p, b, cd, cs, float64(cs)/float64(cd))
		}
	}
}

func ngepComm(m, p, b int, star bool) int64 {
	pes := m * m / 4
	w := no.NewWorld(pes, p, b)
	e := &nogep.Engine{W: w, Spec: gep.Floyd(), UseDStar: star}
	in := make([]float64, m*m)
	for i := range in {
		in[i] = float64(i%17) + 1
	}
	e.RunGEP(m, in)
	return w.Comm()
}

func tableIIMO(w io.Writer, quick bool, workers int) {
	rows := []struct {
		algo    string
		formula string
		sizes   []int
	}{
		{"scan", "Θ(n/(q_i·B_i))", []int{1 << 12, 1 << 14, 1 << 16}},
		{"mt", "Θ(n²/(q_i·B_i))  [n = elements]", []int{1 << 12, 1 << 14, 1 << 16}},
		{"mm", "Θ(n³/(q_i·B_i·√C_i))", []int{1 << 10, 1 << 12}},
		{"gep", "Θ(n³/(q_i·B_i·√C_i))", []int{1 << 10, 1 << 12}},
		{"fft", "Θ((n/(q_i·B_i))·log_{C_i} n)", []int{1 << 12, 1 << 14}},
		{"sort", "Θ((n/(q_i·B_i))·log_{C_i} n)", []int{1 << 11, 1 << 13}},
		{"lr", "O((n/(q_i·B_i))·log_{C_i} n + ...)", []int{1 << 10, 1 << 12}},
		{"spmdv", "O((n/q_i)(1/B_i + 1/C_i^{1/2}))", []int{1 << 12, 1 << 14}},
		{"cc", "O((N/(q_i·B_i))·log_{C_i} N·log N + ...)", []int{1 << 9, 1 << 11}},
	}
	machines := []string{"mc3", "hm4"}
	if quick {
		machines = machines[:1]
	}
	for _, row := range rows {
		sizes := row.sizes
		if quick {
			sizes = sizes[:1]
		}
		fmt.Fprintf(w, "--- %s: %s\n", row.algo, row.formula)
		// One grid per table row: machines outer, sizes inner — the
		// paper's presentation order.
		for _, r := range collect(&sweep.Spec{
			Algos:    []string{row.algo},
			Machines: machines,
			Sizes:    sizes,
		}, workers) {
			if r.Err != "" {
				fmt.Fprintln(w, "  error:", r.Err)
				continue
			}
			fmt.Fprint(w, indent(r.Result().String()))
		}
	}
}

func tableIINO(w io.Writer, quick bool) {
	rows := []struct {
		algo  string
		sizes []int
	}{
		{"mt", []int{1 << 10, 1 << 12}},
		{"prefix", []int{1 << 10, 1 << 14}},
		{"fft", []int{1 << 8, 1 << 10}},
		{"sort", []int{1 << 8, 1 << 10}},
		{"sort-bitonic", []int{1 << 10}},
		{"lr", []int{1 << 8, 1 << 10}},
		{"cc", []int{1 << 8}},
		{"ngep", []int{1 << 8, 1 << 10}},
	}
	for _, row := range rows {
		sizes := row.sizes
		if quick {
			sizes = sizes[:1]
		}
		for _, n := range sizes {
			for _, p := range []int{4, 16} {
				for _, b := range []int{2, 8} {
					res, err := harness.RunNO(row.algo, n, p, b)
					if err != nil {
						fmt.Fprintln(w, "error:", err)
						continue
					}
					fmt.Fprintln(w, " ", res)
				}
			}
		}
	}
}

func ablation(w io.Writer, quick bool, workers int) {
	n := 1 << 12
	if quick {
		n = 1 << 10
	}
	// Grid order (options innermost) pairs each algorithm's SB run with
	// its flat-scheduler run — the E13 comparison cmd/sweep's demo spec
	// (specs/sb_vs_flat.json) turns into a checked hypothesis.
	rows := collect(&sweep.Spec{
		Algos:    []string{"mm", "sort"},
		Machines: []string{"hm4"},
		Sizes:    []int{n},
		Options:  []string{"default", "flat"},
	}, workers)
	for i := 0; i+1 < len(rows); i += 2 {
		sb, flat := rows[i], rows[i+1]
		if sb.Err != "" || flat.Err != "" {
			fmt.Fprintln(w, "error:", firstErr(sb, flat))
			return
		}
		fmt.Fprintf(w, "--- %s n=%d on hm4 (higher-level misses: SB vs flat)\n", sb.Algo, n)
		for j := range sb.Levels {
			f := flat.Levels[j]
			s := sb.Levels[j]
			ratio := float64(f.MaxMisses) / float64(maxI64(s.MaxMisses, 1))
			fmt.Fprintf(w, "  L%d: SB=%-10d flat=%-10d flat/SB=%.2f\n", s.Level, s.MaxMisses, f.MaxMisses, ratio)
		}
	}
}

func dbspSweep(w io.Writer, quick bool) {
	m := 32
	if quick {
		m = 16
	}
	pes := m * m / 4
	fmt.Fprintf(w, "%-4s %-26s %-12s\n", "p", "B vector (per level)", "D-BSP time")
	for _, p := range []int{4, 16} {
		for _, scale := range []int64{1, 4, 16} {
			world := no.NewWorld(pes, p, 1)
			e := &nogep.Engine{W: world, Spec: gep.Floyd(), UseDStar: true}
			in := make([]float64, m*m)
			for i := range in {
				in[i] = float64(i%11) + 1
			}
			e.RunGEP(m, in)
			logP := 0
			for 1<<logP < p {
				logP++
			}
			g := make([]float64, logP)
			bs := make([]int64, logP)
			for i := range g {
				g[i] = float64(int64(1) << uint(logP-i))
				bs[i] = scale << uint(i/2) // larger blocks deeper in the hierarchy
			}
			fmt.Fprintf(w, "%-4d B0=%-3d (x%d per 2 lvls)      %-12.0f\n", p, scale, 2, world.DBSPTime(g, bs))
		}
	}
}

func firstErr(rows ...sweep.Row) string {
	for _, r := range rows {
		if r.Err != "" {
			return r.Err
		}
	}
	return ""
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "  " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
