// Command hmsim runs a multicore-oblivious algorithm on a simulated HM
// machine and prints the per-level cache-miss table against the paper's
// Table II prediction.
//
// Usage:
//
//	hmsim -algo fft -n 4096 -machine hm4
//	hmsim -algo gep -n 4096 -machine mc3 -flat   (E13 scheduler ablation)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"oblivhm/internal/core"
	"oblivhm/internal/harness"
)

func main() {
	algo := flag.String("algo", "mt", "algorithm: "+strings.Join(harness.MOAlgos(), "|"))
	n := flag.Int("n", 4096, "input size (elements; matrices use side=sqrt(n))")
	machine := flag.String("machine", "hm4", "machine preset: seq|mc3|hm4|hm5")
	flat := flag.Bool("flat", false, "ablation: flat scheduler ignoring shared-cache levels")
	steal := flag.Bool("steal", false, "extension: idle cores steal unstarted strands")
	trace := flag.Bool("trace", false, "print a scheduler trace summary and core timeline")
	quantum := flag.Int64("quantum", 32, "virtual-time quantum (ops per core per round)")
	flag.Parse()

	var opts []core.Opt
	opts = append(opts, core.WithQuantum(*quantum))
	if *flat {
		opts = append(opts, core.WithFlatScheduler())
	}
	if *steal {
		opts = append(opts, core.WithStealing())
	}
	tr := &core.Trace{}
	if *trace {
		opts = append(opts, core.WithTrace(tr))
	}
	res, err := harness.RunMO(*algo, *machine, *n, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hmsim:", err)
		os.Exit(1)
	}
	fmt.Print(res)
	if *trace {
		cfg, _ := harness.Machine(*machine)
		fmt.Println()
		fmt.Print(tr.Summary())
		fmt.Print(tr.Timeline(cfg.Cores(), 72))
	}
}
