// Command hmsim runs a multicore-oblivious algorithm on a simulated HM
// machine and prints the per-level cache-miss table against the paper's
// Table II prediction.
//
// Usage:
//
//	hmsim -algo fft -n 4096 -machine hm4
//	hmsim -algo gep -n 4096 -machine mc3 -flat   (E13 scheduler ablation)
//	hmsim -algo sort -n 4096 -parallel 4         (parallel cache replay)
//	hmsim -algo sort -n 4096 -parallel-rounds 4  (parallel round execution)
//	hmsim -algo mm -n 4096 -repeat 10 -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"oblivhm/internal/core"
	"oblivhm/internal/harness"
)

func main() {
	algo := flag.String("algo", "mt", "algorithm: "+strings.Join(harness.MOAlgos(), "|"))
	n := flag.Int("n", 4096, "input size (elements; matrices use side=sqrt(n))")
	machine := flag.String("machine", "hm4", "machine preset: seq|mc3|hm4|hm5")
	flat := flag.Bool("flat", false, "ablation: flat scheduler ignoring shared-cache levels")
	steal := flag.Bool("steal", false, "extension: idle cores steal unstarted strands")
	trace := flag.Bool("trace", false, "print a scheduler trace summary and core timeline")
	quantum := flag.Int64("quantum", 32, "virtual-time quantum (ops per core per round)")
	parallel := flag.Int("parallel", 0, "parallel cache-replay workers (0 = serial, -1 = GOMAXPROCS); metrics are byte-identical either way")
	parRounds := flag.Int("parallel-rounds", 0, "parallel round-execution workers (0 = serial, -1 = GOMAXPROCS); metrics are byte-identical either way, composes with -parallel")
	repeat := flag.Int("repeat", 1, "run the workload this many times (profiling/timing)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()

	var opts []core.Opt
	opts = append(opts, core.WithQuantum(*quantum))
	if *flat {
		opts = append(opts, core.WithFlatScheduler())
	}
	if *steal {
		opts = append(opts, core.WithStealing())
	}
	if *parallel != 0 {
		opts = append(opts, core.WithParallel(*parallel))
	}
	if *parRounds != 0 {
		w := *parRounds
		if w < 0 {
			w = runtime.GOMAXPROCS(0)
		}
		opts = append(opts, core.WithParallelRounds(w))
	}
	tr := &core.Trace{}
	if *trace {
		opts = append(opts, core.WithTrace(tr))
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	if *repeat < 1 {
		*repeat = 1
	}
	var res harness.MOResult
	var err error
	start := time.Now()
	for i := 0; i < *repeat; i++ {
		res, err = harness.RunMO(*algo, *machine, *n, opts...)
		if err != nil {
			fatal(err)
		}
	}
	elapsed := time.Since(start)

	fmt.Print(res)
	if *repeat > 1 {
		fmt.Printf("wall-clock: %v total, %v/run over %d runs\n",
			elapsed.Round(time.Millisecond), (elapsed / time.Duration(*repeat)).Round(time.Microsecond), *repeat)
	}
	if *trace {
		cfg, _ := harness.Machine(*machine)
		fmt.Println()
		fmt.Print(tr.Summary())
		fmt.Print(tr.Timeline(cfg.Cores(), 72))
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hmsim:", err)
	os.Exit(1)
}
