// Command nosim runs a network-oblivious algorithm on M(p,B) and prints
// the communication/computation accounting against the paper's Table II
// prediction, plus the D-BSP communication time under a geometric g vector.
//
// Usage:
//
//	nosim -algo fft -n 1024 -p 8 -B 4
//	nosim -algo ngep-d -n 1024 -p 8 -B 4   (I-GEP's 𝒟 ordering, Table I)
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"oblivhm/internal/harness"
	"oblivhm/internal/no"
)

func main() {
	algo := flag.String("algo", "mt", "algorithm: "+strings.Join(harness.NOAlgos(), "|"))
	n := flag.Int("n", 1024, "input size")
	p := flag.Int("p", 8, "processors")
	b := flag.Int("B", 4, "block size (words)")
	flag.Parse()

	res, err := harness.RunNO(*algo, *n, *p, *b)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nosim:", err)
		if errors.Is(err, no.ErrUsage) {
			fmt.Fprintln(os.Stderr, "hint: -p must divide -n and both must fit the algorithm's shape (powers of two for fft/sort/psum, n a square for mt); try e.g. -n 1024 -p 8")
		}
		os.Exit(1)
	}
	fmt.Println(res)
}
