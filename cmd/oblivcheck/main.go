// Command oblivcheck is the repository's vettool: it runs the five
// static analyzers of internal/analysis (oblivious, determinism,
// hinthygiene, dataoblivious, specsafe) over every package, enforcing the
// paper's obliviousness boundary, the engine's determinism contract, the
// data-obliviousness of annotated kernels and the speculation-safety rule
// of DESIGN.md §11 at vet time.
//
// It speaks cmd/go's vettool protocol directly — the same JSON unit-config
// exchange golang.org/x/tools' unitchecker implements — using only the
// standard library, so the repo stays dependency-free:
//
//	go build -o bin/oblivcheck ./cmd/oblivcheck
//	go vet -vettool=$(pwd)/bin/oblivcheck ./...
//
// For each package unit, cmd/go hands the tool a *.cfg file naming the
// Go sources and the export-data files of every dependency; the tool
// type-checks the unit via go/importer, runs the analyzers, prints
// findings as file:line:col diagnostics, and exits 2 if any survive the
// //oblivcheck:allow annotations.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"oblivhm/internal/analysis"
)

// vetConfig mirrors the JSON unit description cmd/go writes for vettools
// (cmd/go/internal/work.vetConfig); unknown fields are ignored.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func main() {
	args := os.Args[1:]
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		printVersion()
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		// Flag discovery: the suite takes no flags of its own.
		fmt.Println("[]")
		return
	}
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		fmt.Fprintf(os.Stderr, "usage: oblivcheck unit.cfg\n\n"+
			"oblivcheck is a vettool; run it through the go command:\n"+
			"  go vet -vettool=$(pwd)/bin/oblivcheck ./...\n")
		os.Exit(1)
	}
	os.Exit(checkUnit(args[0]))
}

// printVersion answers `oblivcheck -V=full`. cmd/go hashes this line into
// the build cache key, so it must change whenever the analyzers do: embed
// a digest of the executable itself.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("oblivcheck version devel buildID=%x\n", h.Sum(nil)[:12])
}

func checkUnit(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "oblivcheck: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "oblivcheck: parsing %s: %v\n", cfgFile, err)
		return 1
	}
	// The suite exports no facts, so dependency-only units need no work
	// beyond the (empty) facts file cmd/go expects.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "oblivcheck: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	path := analysis.LogicalPath(cfg.ImportPath)
	if !strings.HasPrefix(path, "oblivhm") {
		// Standard library or out-of-module unit: nothing to check, and
		// skipping the type-check keeps `go vet` fast.
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "oblivcheck: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	base := importer.ForCompiler(fset, compiler, func(importPath string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[importPath]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", importPath)
		}
		return os.Open(file)
	})
	tc := &types.Config{
		Importer:  mapImporter{m: cfg.ImportMap, base: base},
		Sizes:     types.SizesFor(compiler, build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
		Error:     func(error) {}, // collect everything, report the first below
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tc.Check(path, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "oblivcheck: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	diags := analysis.Run(analysis.Analyzers(), fset, files, pkg, info, path)
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%v: %s (oblivcheck/%s)\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// mapImporter resolves source-level import paths through the unit's
// ImportMap (vendoring, test variants) before loading export data.
type mapImporter struct {
	m    map[string]string
	base types.Importer
}

func (mi mapImporter) Import(path string) (*types.Package, error) {
	if p, ok := mi.m[path]; ok {
		path = p
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return mi.base.Import(path)
}
