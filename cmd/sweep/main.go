// Command sweep is the controlled-experiment engine: it expands a JSON
// spec into a grid of (algorithm, machine, size, seed, options) configs,
// fans the runs out across worker goroutines, and streams one row per run
// to JSONL or CSV — in grid order, byte-identical for every worker count,
// because each run is an independent deterministic simulation.
//
// Usage:
//
//	sweep -spec specs/sb_vs_flat.json [-out results.jsonl] [-format jsonl|csv]
//	      [-workers N] [-resume] [-hypothesis] [-quiet]
//
// With -resume, rows whose config hash is already present in -out are
// skipped and the file is appended to, so a killed sweep picks up where it
// stopped.  With -hypothesis, the spec's declared predictions are evaluated
// over the full row set (resumed rows included) after the sweep finishes;
// any failing hypothesis makes the process exit 1, so a sweep run is a
// CI-gateable experiment.
//
// Grids can put failure-injection option sets (failstop1, straggler2x,
// faulty) on the options axis; rows then carry degraded-mode columns
// (deadCores, migrated, reexec, reexecFrac) and a "survivability"
// hypothesis can bound the degraded/healthy metric ratio — see
// specs/survivability.json.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"oblivhm/internal/sweep"
)

func main() {
	var (
		specPath   = flag.String("spec", "", "path to the sweep spec (JSON, required)")
		outPath    = flag.String("out", "", "output file (default stdout)")
		format     = flag.String("format", "jsonl", "output format: jsonl or csv")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent runs (output is identical for any value)")
		resume     = flag.Bool("resume", false, "skip configs already present in -out and append (jsonl only)")
		hypothesis = flag.Bool("hypothesis", false, "evaluate the spec's hypotheses after the sweep; exit 1 on any failure")
		quiet      = flag.Bool("quiet", false, "suppress progress reporting on stderr")
	)
	flag.Parse()
	if err := run(*specPath, *outPath, *format, *workers, *resume, *hypothesis, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run(specPath, outPath, format string, workers int, resume, hypothesis, quiet bool) error {
	if specPath == "" {
		return fmt.Errorf("-spec is required")
	}
	data, err := os.ReadFile(specPath)
	if err != nil {
		return err
	}
	spec, err := sweep.Parse(data)
	if err != nil {
		return err
	}
	grid := sweep.Expand(spec)

	// Resume: recover the completed set (and its rows, for hypothesis
	// evaluation) from the existing output file.
	var done map[string]bool
	var prior []sweep.Row
	if resume {
		if format != "jsonl" {
			return fmt.Errorf("-resume needs -format jsonl (rows are keyed by the hash field)")
		}
		if outPath == "" {
			return fmt.Errorf("-resume needs -out")
		}
		if f, err := os.Open(outPath); err == nil {
			done, prior, err = sweep.ReadDone(f)
			f.Close()
			if err != nil {
				return fmt.Errorf("reading %s for resume: %w", outPath, err)
			}
		} else if !os.IsNotExist(err) {
			return err
		}
	}

	var out io.Writer = os.Stdout
	if outPath != "" {
		flags := os.O_CREATE | os.O_WRONLY
		if resume {
			flags |= os.O_APPEND
		} else {
			flags |= os.O_TRUNC
		}
		f, err := os.OpenFile(outPath, flags, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	var w sweep.Writer
	switch format {
	case "jsonl":
		w = sweep.NewJSONLWriter(out)
	case "csv":
		w = sweep.NewCSVWriter(out)
	default:
		return fmt.Errorf("unknown format %q (want jsonl or csv)", format)
	}

	if !quiet {
		fmt.Fprintf(os.Stderr, "sweep %s: %d configs (%d done), workers=%d\n",
			name(spec.Name, specPath), len(grid), len(done), workers)
	}
	start := time.Now()
	var rows []sweep.Row
	opts := sweep.RunnerOpts{Workers: workers, Done: done}
	if !quiet {
		opts.Progress = func(finished, total int) {
			el := time.Since(start).Seconds()
			rate := float64(finished) / el
			fmt.Fprintf(os.Stderr, "\r%d/%d runs (%.1f runs/s, %.0fs elapsed)", finished, total, rate, el)
			if finished == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	err = sweep.Run(spec, opts, func(r sweep.Row) error {
		rows = append(rows, r)
		return w.Write(r)
	})
	if ferr := w.Flush(); err == nil {
		err = ferr
	}
	if err != nil {
		return err
	}

	failures := 0
	if hypothesis {
		all := append(prior, rows...)
		verdicts := sweep.Evaluate(spec, all)
		if len(verdicts) == 0 {
			fmt.Fprintln(os.Stderr, "sweep: -hypothesis set but the spec declares no hypotheses")
		}
		for _, v := range verdicts {
			fmt.Println(v)
			if !v.Pass {
				failures++
			}
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d hypothesis(es) failed", failures)
	}
	return nil
}

func name(specName, path string) string {
	if specName != "" {
		return specName
	}
	return path
}
